// Figure 8: the guideline flowchart for picking the most energy-efficient
// AutoML solution, rendered as ASCII, plus a table of representative
// queries and the recommendation each receives.

#include <cstdio>

#include "green/automl/guideline.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

int Main() {
  PrintBanner("Figure 8: guideline flowchart");
  std::fputs(RenderGuidelineChart().c_str(), stdout);

  PrintBanner("Guideline applied to representative scenarios");
  TablePrinter table({"scenario", "recommendation", "why"});

  struct Scenario {
    const char* name;
    GuidelineQuery query;
  };
  std::vector<Scenario> scenarios;
  {
    GuidelineQuery q;
    q.has_development_resources = true;
    q.planned_executions = 5000;
    scenarios.push_back({"AutoML-as-a-service (5000 runs planned)", q});
  }
  {
    GuidelineQuery q;
    q.search_budget_seconds = 5.0;
    q.num_classes = 2;
    q.gpu_available = true;
    scenarios.push_back({"ad-hoc binary task, <10s, GPU at hand", q});
  }
  {
    GuidelineQuery q;
    q.search_budget_seconds = 5.0;
    q.num_classes = 355;  // dionis.
    scenarios.push_back({"ad-hoc 355-class task, <10s", q});
  }
  {
    GuidelineQuery q;
    q.search_budget_seconds = 300.0;
    q.priority = GuidelineQuery::Priority::kFastInference;
    scenarios.push_back(
        {"fraud scoring: millions of predictions/day", q});
  }
  {
    GuidelineQuery q;
    q.search_budget_seconds = 300.0;
    q.priority = GuidelineQuery::Priority::kAccuracy;
    scenarios.push_back({"rare medical diagnosis: accuracy first", q});
  }
  {
    GuidelineQuery q;
    q.search_budget_seconds = 60.0;
    q.priority = GuidelineQuery::Priority::kParetoOptimal;
    scenarios.push_back({"balanced cost/quality deployment", q});
  }

  for (const Scenario& scenario : scenarios) {
    const GuidelineRecommendation rec = RecommendSystem(scenario.query);
    table.AddRow({scenario.name, rec.system, rec.rationale});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
