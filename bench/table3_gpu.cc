// Table 3: experiments with and without GPU acceleration. For AutoGluon
// and TabPFN we report GPU-machine / CPU-machine quotients for execution
// and inference (energy and time). Paper: TabPFN inference is ~8x cheaper
// and ~16x faster on the GPU; AutoGluon gets WORSE on both stages because
// its models cannot use the GPU, which idles and burns power.

#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

namespace green {
namespace {

struct StageNumbers {
  double exec_kwh = 0.0;
  double exec_seconds = 0.0;
  double infer_kwh = 0.0;
  double infer_seconds = 0.0;
};

Result<StageNumbers> Measure(ExperimentRunner* runner,
                             const MachineModel& machine,
                             const std::string& system_name,
                             const ExperimentConfig& config) {
  EnergyModel energy_model(machine);
  StageNumbers total;
  int n = 0;
  for (const Dataset& dataset : runner->suite()) {
    for (int rep = 0; rep < config.repetitions; ++rep) {
      GREEN_ASSIGN_OR_RETURN(
          std::unique_ptr<AutoMlSystem> system,
          runner->MakeSystem(system_name, 300.0));
      VirtualClock clock;
      ExecutionContext ctx(&clock, &energy_model, config.cores);
      Rng rng(HashCombine(config.seed, rep + 3));
      TrainTestData data =
          Materialize(dataset, StratifiedSplit(dataset, 0.66, &rng));
      AutoMlOptions options;
      options.search_budget_seconds = 300.0 * config.budget_scale;
      options.seed = HashCombine(config.seed, rep + 5);
      auto run = system->Fit(data.train, options, &ctx);
      if (!run.ok()) continue;
      EnergyMeter meter(&energy_model);
      meter.Start(clock.Now());
      ctx.SetMeter(&meter);
      const double infer_start = clock.Now();
      if (!run->artifact.Predict(data.test, &ctx).ok()) continue;
      const EnergyReading inference = meter.Stop(clock.Now());
      total.exec_kwh += run->execution.kwh();
      total.exec_seconds += run->actual_seconds;
      total.infer_kwh += inference.kwh();
      total.infer_seconds += clock.Now() - infer_start;
      ++n;
    }
  }
  if (n == 0) return Status::Internal("no successful runs");
  total.exec_kwh /= n;
  total.exec_seconds /= n;
  total.infer_kwh /= n;
  total.infer_seconds /= n;
  return total;
}

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  if (config.dataset_limit == 0 || config.dataset_limit > 5) {
    config.dataset_limit = 5;
  }
  ExperimentRunner runner(config);

  PrintBanner(
      "Table 3: GPU/CPU quotients per metric (green in the paper = "
      "GPU better, i.e. ratio < 1)");
  TablePrinter table({"system", "exec energy", "exec time",
                      "inference energy", "inference time"});
  for (const std::string& system : {"autogluon", "tabpfn"}) {
    auto cpu = Measure(&runner, MachineModel::XeonGold6132(), system,
                       config);
    auto gpu = Measure(&runner, MachineModel::GpuNodeT4(), system,
                       config);
    if (!cpu.ok() || !gpu.ok()) {
      std::fprintf(stderr, "measurement failed for %s\n",
                   system.c_str());
      continue;
    }
    table.AddRow(
        {system, StrFormat("%.2f", gpu->exec_kwh / cpu->exec_kwh),
         StrFormat("%.2f", gpu->exec_seconds / cpu->exec_seconds),
         StrFormat("%.2f", gpu->infer_kwh / cpu->infer_kwh),
         StrFormat("%.2f", gpu->infer_seconds / cpu->infer_seconds)});
  }
  table.Print();
  std::printf(
      "\nPaper values: AutoGluon 1.35 / 1.03 / 2.39 / 1.96 (GPU worse "
      "everywhere); TabPFN 1.37 / 0.96 / 0.13 / 0.07 (GPU slashes "
      "inference).\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
