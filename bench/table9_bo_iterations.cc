// Table 9: tuning quality/cost for different numbers of BO iterations
// (paper: {75, 150, 300, 600} at top-20 datasets; 600 OVERFITS the tuning
// datasets and scores worse than 300 while costing the most).

#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/data/meta_corpus.h"
#include "green/metaopt/automl_tuner.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  const bool full = config.repetitions >= 10;

  MetaCorpusOptions corpus_options;
  corpus_options.num_datasets = full ? 124 : 24;
  SimulationProfile corpus_profile = config.profile;
  if (!full) corpus_profile.max_rows = 400;
  auto corpus = GenerateMetaCorpus(corpus_options, corpus_profile);
  if (!corpus.ok()) return 1;

  const std::vector<int> iteration_counts =
      full ? std::vector<int>{75, 150, 300, 600}
           : std::vector<int>{4, 8, 16, 32};
  const int top_k = full ? 20 : 4;

  PrintBanner(StrFormat(
      "Table 9: tuning with different BO iteration counts (10s budget, "
      "top-%d datasets)", top_k));
  TablePrinter table({"BO iterations", "mean bal.acc on tuning tasks",
                      "energy (kWh)", "virtual time (h)"});
  EnergyModel energy_model(config.machine);
  for (int iterations : iteration_counts) {
    AutoMlTunerOptions options;
    options.search_time_seconds = 10.0 * config.budget_scale;
    options.bo_iterations = iterations;
    options.top_k_datasets = top_k;
    options.repetitions = full ? 2 : 1;
    options.seed = config.seed;
    AutoMlTuner tuner(options);
    VirtualClock clock;
    ExecutionContext ctx(&clock, &energy_model, config.cores);
    auto result = tuner.Tune(*corpus, &ctx);
    if (!result.ok()) {
      std::fprintf(stderr, "tuning failed for %d iterations\n",
                   iterations);
      continue;
    }
    table.AddRow(
        {StrFormat("%d", iterations),
         StrFormat("%.2f%%", 100.0 * result->best_mean_accuracy),
         StrFormat("%.3f",
                   result->development.kwh() / config.budget_scale),
         StrFormat("%.2f", result->development_seconds /
                               config.budget_scale / 3600.0)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: energy grows linearly with iterations; accuracy "
      "peaks at an intermediate count (300) — the largest budget (600) "
      "overfits the tuning datasets and scores slightly WORSE.\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
