// Mixed-task sweep: every AutoML system (including the multi-fidelity
// AutoPt ladder) runs over a synthetic suite that mixes binary,
// multiclass, and regression datasets in ONE sweep grid, then the whole
// grid is re-run through the parallel, sharded, and fault+resume paths.
//
// Hard gates (exit nonzero on violation):
//   1. Parallel (--jobs 4), sharded (3 shards, journals merged), and
//      interrupted+resumed sweeps each reproduce the sequential record
//      stream BYTE-identically — task-typed cells inherit the same
//      determinism contract the binary-only benches always had.
//   2. Total execution energy is invariant across all four modes.
//   3. Per-record scope energies conserve (dynamic sums bounded by the
//      headline totals) for every ok cell, regression included.
//   4. Unsupported (system, task) combos surface as `skipped` records —
//      never as failures and never silently dropped.
//
// The clean sequential stream is a pure function of the seed: `--json
// PATH` writes it as JSONL for CI to diff against the checked-in
// BENCH_mixed_tasks.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "green/bench_util/experiment.h"
#include "green/bench_util/record_io.h"
#include "green/common/stringutil.h"
#include "green/data/synthetic.h"

namespace green {
namespace {

std::vector<Dataset> MixedSuite() {
  std::vector<Dataset> suite;

  SyntheticSpec binary;
  binary.name = "syn_binary";
  binary.num_rows = 160;
  binary.num_features = 10;
  binary.num_informative = 6;
  binary.num_categorical = 2;
  binary.seed = 71;
  suite.push_back(GenerateSynthetic(binary).value());

  SyntheticSpec multiclass;
  multiclass.name = "syn_4class";
  multiclass.num_rows = 200;
  multiclass.num_features = 12;
  multiclass.num_classes = 4;
  multiclass.num_informative = 8;
  multiclass.separation = 2.5;
  multiclass.seed = 72;
  suite.push_back(GenerateSynthetic(multiclass).value());

  SyntheticRegressionSpec regression;
  regression.name = "syn_regression";
  regression.num_rows = 180;
  regression.num_features = 10;
  regression.num_informative = 6;
  regression.num_categorical = 2;
  regression.seed = 73;
  suite.push_back(GenerateSyntheticRegression(regression).value());

  return suite;
}

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.budget_scale = 0.05;
  config.repetitions = 1;
  config.seed = 404;
  config.collect_scopes = true;
  return config;
}

std::string Serialize(const std::vector<RunRecord>& records) {
  std::string out;
  for (const RunRecord& record : records) {
    out += RecordToJson(record);
    out += '\n';
  }
  return out;
}

double TotalExecutionKwh(const std::vector<RunRecord>& records) {
  double total = 0.0;
  for (const RunRecord& record : records) total += record.execution_kwh;
  return total;
}

/// Journal-loaded records round-trip through %.10g text, so their
/// doubles can differ from the in-memory originals at ulp level even
/// when the serialized streams are byte-identical. Energy invariance is
/// therefore judged at just below the serialization precision.
bool SameKwh(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= 1e-9 * std::max(scale, 1e-300);
}

bool CheckScopeConservation(const std::vector<RunRecord>& records) {
  for (const RunRecord& record : records) {
    if (!record.ok()) continue;
    if (record.scopes.empty()) {
      std::fprintf(stderr, "FAIL: ok cell %s has no scopes\n",
                   RunRecordCellKey(record).c_str());
      return false;
    }
    double execution_sum = 0.0, inference_sum = 0.0;
    for (const RunScope& scope : record.scopes) {
      if (scope.kwh < 0.0) {
        std::fprintf(stderr, "FAIL: negative scope energy %s in %s\n",
                     scope.path.c_str(), RunRecordCellKey(record).c_str());
        return false;
      }
      if (scope.path.rfind("execution/", 0) == 0) execution_sum += scope.kwh;
      if (scope.path.rfind("inference/", 0) == 0) inference_sum += scope.kwh;
    }
    // Scope rows carry dynamic energy; headline totals add the idle
    // baseline, so the sums are strict lower bounds.
    if (execution_sum <= 0.0 ||
        execution_sum > record.execution_kwh * (1.0 + 1e-9) ||
        inference_sum > record.inference_kwh_per_instance * (1.0 + 1e-9)) {
      std::fprintf(stderr, "FAIL: scope sums do not conserve in %s\n",
                   RunRecordCellKey(record).c_str());
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const std::vector<std::string> systems = AllSystemNames();
  const std::vector<double> budgets = {10.0, 60.0};

  // --- Mode 1: sequential reference ---------------------------------
  ExperimentConfig sequential_config = BaseConfig();
  ExperimentRunner sequential(sequential_config);
  sequential.SetSuite(MixedSuite());
  auto reference = sequential.Sweep(systems, budgets);
  if (!reference.ok()) {
    std::fprintf(stderr, "sequential sweep failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  const std::string reference_stream = Serialize(*reference);
  const double reference_kwh = TotalExecutionKwh(*reference);

  size_t ok_cells = 0, skipped_cells = 0, failed_cells = 0;
  size_t regression_cells = 0, multiclass_cells = 0;
  for (const RunRecord& record : *reference) {
    if (record.ok()) ++ok_cells;
    if (record.outcome == RunOutcome::kSkipped) ++skipped_cells;
    if (record.outcome == RunOutcome::kFailed) ++failed_cells;
    if (record.ok() && record.task == TaskType::kRegression) {
      ++regression_cells;
    }
    if (record.ok() && record.dataset == "syn_4class") ++multiclass_cells;
  }
  std::printf("cells: %zu total, %zu ok, %zu skipped, %zu failed\n",
              reference->size(), ok_cells, skipped_cells, failed_cells);
  std::printf("ok regression cells: %zu, ok multiclass cells: %zu\n",
              regression_cells, multiclass_cells);
  if (regression_cells == 0 || multiclass_cells == 0) {
    std::fprintf(stderr, "FAIL: a task type produced no ok cells\n");
    return 1;
  }
  // tabpfn rejects regression: those cells must be typed skips.
  for (const RunRecord& record : *reference) {
    if (record.system == "tabpfn" && record.dataset == "syn_regression" &&
        record.outcome != RunOutcome::kSkipped) {
      std::fprintf(stderr,
                   "FAIL: tabpfn regression cell is %s, want skipped\n",
                   RunOutcomeName(record.outcome));
      return 1;
    }
  }
  if (failed_cells != 0) {
    std::fprintf(stderr, "FAIL: %zu cells failed in the clean sweep\n",
                 failed_cells);
    return 1;
  }
  if (!CheckScopeConservation(*reference)) return 1;

  // --- Mode 2: parallel workers -------------------------------------
  ExperimentConfig parallel_config = BaseConfig();
  parallel_config.jobs = 4;
  ExperimentRunner parallel(parallel_config);
  parallel.SetSuite(MixedSuite());
  auto parallel_records = parallel.Sweep(systems, budgets);
  if (!parallel_records.ok()) {
    std::fprintf(stderr, "parallel sweep failed: %s\n",
                 parallel_records.status().ToString().c_str());
    return 1;
  }
  if (Serialize(*parallel_records) != reference_stream) {
    std::fprintf(stderr, "FAIL: parallel stream != sequential stream\n");
    return 1;
  }
  std::printf("parallel (4 jobs): byte-identical, %.0f%% wall of ref\n",
              sequential.last_sweep_wall_seconds() > 0
                  ? 100.0 * parallel.last_sweep_wall_seconds() /
                        sequential.last_sweep_wall_seconds()
                  : 0.0);

  // --- Mode 3: three shards, journals merged ------------------------
  std::vector<std::string> shard_paths;
  for (int i = 0; i < 3; ++i) {
    ExperimentConfig shard_config = BaseConfig();
    shard_config.shard_index = i;
    shard_config.shard_count = 3;
    shard_config.jobs = 2;
    shard_config.journal_path = StrFormat("/tmp/mixed_shard%d.jsonl", i);
    shard_paths.push_back(shard_config.journal_path);
    ExperimentRunner shard(shard_config);
    shard.SetSuite(MixedSuite());
    auto shard_records = shard.Sweep(systems, budgets);
    if (!shard_records.ok()) {
      std::fprintf(stderr, "shard %d sweep failed: %s\n", i,
                   shard_records.status().ToString().c_str());
      return 1;
    }
  }
  const std::string merged_path = "/tmp/mixed_merged.jsonl";
  auto merged = MergeShardJournals(shard_paths, merged_path);
  if (!merged.ok()) {
    std::fprintf(stderr, "journal merge failed: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  auto merged_records = ReadRecordsJsonl(merged_path);
  if (!merged_records.ok()) {
    std::fprintf(stderr, "cannot read merged journal: %s\n",
                 merged_records.status().ToString().c_str());
    return 1;
  }
  if (Serialize(*merged_records) != reference_stream) {
    std::fprintf(stderr, "FAIL: merged shard stream != sequential\n");
    return 1;
  }
  std::printf("sharded (3 x --jobs 2, merged): byte-identical\n");

  // --- Mode 4: faults injected, journal truncated mid-sweep, resumed -
  // run.fit faults are retried per the policy; fault draws are keyed by
  // (cell, attempt) so every mode — and the resumed rerun — re-rolls the
  // SAME dice, keeping even fault-hit cells byte-identical.
  ExperimentConfig faulty_config = BaseConfig();
  faulty_config.faults = "run.fit@0.15";
  faulty_config.journal_path = "/tmp/mixed_faulty.jsonl";
  ExperimentRunner faulty(faulty_config);
  faulty.SetSuite(MixedSuite());
  auto faulty_records = faulty.Sweep(systems, budgets);
  if (!faulty_records.ok()) {
    std::fprintf(stderr, "faulted sweep failed: %s\n",
                 faulty_records.status().ToString().c_str());
    return 1;
  }
  const std::string faulty_stream = Serialize(*faulty_records);
  const double faulty_kwh = TotalExecutionKwh(*faulty_records);
  if (!CheckScopeConservation(*faulty_records)) return 1;

  // Simulate a crash: keep only the first half of the journal, then
  // resume. Loaded + re-run cells must reproduce the full faulted
  // stream byte-for-byte.
  auto journal = ReadJournalJsonl(faulty_config.journal_path);
  if (!journal.ok()) {
    std::fprintf(stderr, "cannot read faulty journal: %s\n",
                 journal.status().ToString().c_str());
    return 1;
  }
  std::vector<RunRecord> half(journal->begin(),
                              journal->begin() + journal->size() / 2);
  Status truncate =
      WriteRecordsJsonl(half, faulty_config.journal_path);
  if (!truncate.ok()) {
    std::fprintf(stderr, "cannot truncate journal: %s\n",
                 truncate.ToString().c_str());
    return 1;
  }
  ExperimentConfig resume_config = faulty_config;
  resume_config.resume = true;
  ExperimentRunner resumed(resume_config);
  resumed.SetSuite(MixedSuite());
  auto resumed_records = resumed.Sweep(systems, budgets);
  if (!resumed_records.ok()) {
    std::fprintf(stderr, "resumed sweep failed: %s\n",
                 resumed_records.status().ToString().c_str());
    return 1;
  }
  if (Serialize(*resumed_records) != faulty_stream) {
    std::fprintf(stderr, "FAIL: resumed stream != faulted stream\n");
    return 1;
  }
  if (!SameKwh(TotalExecutionKwh(*resumed_records), faulty_kwh)) {
    std::fprintf(stderr, "FAIL: resumed energy != faulted energy\n");
    return 1;
  }
  std::printf(
      "faulted + interrupted + resumed: byte-identical "
      "(%zu cells loaded from journal)\n",
      resumed.last_sweep_resumed_cells());

  // --- Energy invariance across modes -------------------------------
  const double parallel_kwh = TotalExecutionKwh(*parallel_records);
  const double merged_kwh = TotalExecutionKwh(*merged_records);
  if (!SameKwh(parallel_kwh, reference_kwh) ||
      !SameKwh(merged_kwh, reference_kwh)) {
    std::fprintf(stderr,
                 "FAIL: energy not invariant: seq %.12g par %.12g "
                 "sharded %.12g\n",
                 reference_kwh, parallel_kwh, merged_kwh);
    return 1;
  }
  std::printf("execution energy invariant across modes: %.6f kWh\n",
              reference_kwh);

  if (!json_path.empty()) {
    Status wrote = WriteRecordsJsonl(*reference, json_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", json_path.c_str(),
                   wrote.ToString().c_str());
      return 1;
    }
    std::printf("snapshot: %s (%zu records)\n", json_path.c_str(),
                reference->size());
  }
  std::printf("mixed_task_sweep: all gates passed\n");
  return 0;
}

}  // namespace
}  // namespace green

int main(int argc, char** argv) { return green::Main(argc, argv); }
