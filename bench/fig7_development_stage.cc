// Figure 7: the holistic three-stage picture. Runs the §2.5
// development-stage optimizer (K-Means representatives + BO with median
// pruning) on the binary meta-corpus, then compares CAML(tuned) against
// the other systems on the evaluation suite, reporting development,
// execution, and inference energy plus the amortization point (the paper
// measures 21 kWh and ~885 runs at the 5-minute budget).

#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/data/meta_corpus.h"
#include "green/energy/stage_ledger.h"
#include "green/metaopt/automl_tuner.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  const bool full = config.repetitions >= 10;
  ExperimentRunner runner(config);

  // --- Development stage: tune CAML's AutoML parameters. ---
  MetaCorpusOptions corpus_options;
  corpus_options.num_datasets = full ? 124 : 24;
  SimulationProfile corpus_profile = config.profile;
  corpus_profile.max_rows = full ? corpus_profile.max_rows : 400;
  auto corpus = GenerateMetaCorpus(corpus_options, corpus_profile);
  if (!corpus.ok()) return 1;

  AutoMlTunerOptions tuner_options;
  tuner_options.search_time_seconds = 10.0 * config.budget_scale;
  tuner_options.bo_iterations = full ? 300 : 12;
  tuner_options.top_k_datasets = full ? 20 : 5;
  tuner_options.repetitions = full ? 2 : 1;
  tuner_options.seed = config.seed;
  AutoMlTuner tuner(tuner_options);

  EnergyModel energy_model(config.machine);
  VirtualClock clock;
  ExecutionContext ctx(&clock, &energy_model, config.cores);
  auto tuned = tuner.Tune(*corpus, &ctx);
  if (!tuned.ok()) {
    std::fprintf(stderr, "tuner failed: %s\n",
                 tuned.status().ToString().c_str());
    return 1;
  }
  const double development_kwh =
      tuned->development.kwh() / config.budget_scale;

  PrintBanner("Figure 7: development stage (AutoML-parameter tuning)");
  TablePrinter dev_table({"quantity", "value"});
  dev_table.AddRow({"BO trials run",
                    StrFormat("%d", tuned->trials_run)});
  dev_table.AddRow({"trials median-pruned",
                    StrFormat("%d", tuned->trials_pruned)});
  dev_table.AddRow({"representative datasets",
                    StrFormat("%zu",
                              tuned->representative_indices.size())});
  dev_table.AddRow(
      {"development energy (kWh)", StrFormat("%.3f", development_kwh)});
  dev_table.AddRow({"best tuning objective",
                    StrFormat("%.3f", tuned->best_objective)});
  dev_table.AddRow(
      {"tuned search space",
       Join(tuned->best_params.models, ", ")});
  dev_table.Print();

  // --- Execution + inference: CAML(tuned) vs the field. ---
  const std::vector<std::string> systems = {
      "tabpfn", "caml", "caml_tuned", "flaml", "autogluon"};
  auto sweep = runner.Sweep(systems, {10.0, 30.0, 60.0, 300.0});
  if (!sweep.ok()) return 1;
  const std::vector<RunRecord> records = OkOnly(*sweep);

  PrintBanner(
      "Figure 7: accuracy and energy per stage (CAML(tuned) included)");
  TablePrinter table({"system", "budget", "bal.acc", "exec kWh",
                      "inference kWh/inst"});
  for (const std::string& system : DistinctSystems(records)) {
    for (double budget : DistinctBudgets(records, system)) {
      const auto cell = Filter(records, system, budget);
      table.AddRow(
          {system, StrFormat("%gs", budget),
           StrFormat("%.3f",
                     BootstrapAcrossDatasets(
                         cell,
                         [](const RunRecord& r) {
                           return r.test_balanced_accuracy;
                         },
                         200, 1)
                         .mean),
           StrFormat("%.5f",
                     BootstrapAcrossDatasets(
                         cell,
                         [](const RunRecord& r) {
                           return r.execution_kwh;
                         },
                         200, 2)
                         .mean),
           FormatSci(BootstrapAcrossDatasets(
                         cell,
                         [](const RunRecord& r) {
                           return r.inference_kwh_per_instance;
                         },
                         200, 3)
                         .mean)});
    }
  }
  table.Print();

  // --- Amortization: after how many executions does tuning pay off? ---
  auto mean_exec = [&](const std::string& system, double budget) {
    return BootstrapAcrossDatasets(
               Filter(records, system, budget),
               [](const RunRecord& r) { return r.execution_kwh; }, 200,
               4)
        .mean;
  };
  const double saving_per_run =
      mean_exec("autogluon", 30.0) - mean_exec("caml_tuned", 30.0);
  const double runs =
      StageLedger::AmortizationRuns(development_kwh, saving_per_run);
  std::printf(
      "\nAmortization: tuning cost %.3f kWh; vs autogluon@9s saving "
      "%.5f kWh/run -> pays off after ~%.0f executions (paper: ~885; "
      "scale differs with the simulation profile).\n",
      development_kwh, saving_per_run, runs);
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
