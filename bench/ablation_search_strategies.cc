// Ablation: the value of guided search. The paper's premise (its §1 and
// the amortization argument of §3.7) is that the development investment
// behind advanced search strategies pays off against the naive baseline
// of random search [Bergstra & Bengio]. Here the baseline runs in the
// SAME harness with the SAME search space and budget policy, isolating
// the strategy itself: random sampling vs BO (CAML) vs BO + successive
// halving + tuned AutoML parameters (CAML(tuned)).

#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  ExperimentRunner runner(config);

  const std::vector<std::string> systems = {"random_search", "caml",
                                            "caml_tuned"};
  auto sweep = runner.Sweep(systems, {10.0, 30.0, 60.0, 300.0});
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }
  const std::vector<RunRecord> records = OkOnly(*sweep);

  PrintBanner(
      "Ablation A3: search strategy value at equal budget "
      "(random -> BO -> BO+SH+tuned)");
  TablePrinter table({"budget", "system", "bal.acc (mean±std)",
                      "exec kWh", "pipelines evaluated"});
  for (double budget : {10.0, 30.0, 60.0, 300.0}) {
    for (const std::string& system : systems) {
      const auto cell = Filter(records, system, budget);
      if (cell.empty()) continue;
      const Stats acc = BootstrapAcrossDatasets(
          cell,
          [](const RunRecord& r) { return r.test_balanced_accuracy; },
          200, 1);
      const Stats kwh = BootstrapAcrossDatasets(
          cell, [](const RunRecord& r) { return r.execution_kwh; }, 200,
          2);
      std::vector<double> evals;
      for (const RunRecord& r : cell) {
        evals.push_back(static_cast<double>(r.pipelines_evaluated));
      }
      table.AddRow({StrFormat("%gs", budget), system,
                    StrFormat("%.3f ± %.3f", acc.mean, acc.stddev),
                    StrFormat("%.5f", kwh.mean),
                    StrFormat("%.1f", ComputeStats(evals).mean)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: from ~30s upward, accuracy orders as random <= "
      "BO <= BO+tuned at equal budget and energy — the gap is what the "
      "development-stage investment buys (Fig. 7). At the tiniest "
      "budgets random sampling can WIN: BO's random initialization eats "
      "the whole budget before the surrogate contributes, one more "
      "reason the paper's guideline sends <10s users to TabPFN/CAML "
      "rather than heavier search.\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
