// Figure 4: total (execution + inference) energy as a function of the
// number of predictions, per system, plus the TabPFN cross-over point —
// the paper finds TabPFN most energy-efficient below ~26k predictions.

#include <cmath>
#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

struct SystemCost {
  std::string system;
  double execution_kwh = 0.0;
  double inference_kwh_per_instance = 0.0;
};

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  ExperimentRunner runner(config);

  // The paper evaluates each system at its best budget; we use 1 min for
  // the searchers (a good accuracy/energy point) and TabPFN's single dot.
  const std::vector<std::string> systems = {"tabpfn", "caml", "flaml",
                                            "autogluon", "autosklearn1"};
  auto sweep = runner.Sweep(systems, {60.0});
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }
  const std::vector<RunRecord> records = OkOnly(*sweep);

  std::vector<SystemCost> costs;
  for (const std::string& system : DistinctSystems(records)) {
    SystemCost cost;
    cost.system = system;
    const double budget = DistinctBudgets(records, system).front();
    const auto cell = Filter(records, system, budget);
    cost.execution_kwh =
        BootstrapAcrossDatasets(
            cell, [](const RunRecord& r) { return r.execution_kwh; },
            200, 1)
            .mean;
    cost.inference_kwh_per_instance =
        BootstrapAcrossDatasets(
            cell,
            [](const RunRecord& r) {
              return r.inference_kwh_per_instance;
            },
            200, 2)
            .mean;
    costs.push_back(cost);
  }

  PrintBanner(
      "Figure 4: total energy (kWh) vs number of prediction instances");
  std::vector<std::string> headers = {"predictions"};
  for (const auto& cost : costs) headers.push_back(cost.system);
  headers.push_back("cheapest");
  TablePrinter table(headers);
  for (double n = 1e2; n <= 1e9; n *= 10.0) {
    std::vector<std::string> row = {FormatWithCommas(
        static_cast<int64_t>(n))};
    double best = 1e300;
    std::string best_system;
    for (const auto& cost : costs) {
      const double total =
          cost.execution_kwh + n * cost.inference_kwh_per_instance;
      row.push_back(FormatSci(total, 2));
      if (total < best) {
        best = total;
        best_system = cost.system;
      }
    }
    row.push_back(best_system);
    table.AddRow(std::move(row));
  }
  table.Print();

  // Cross-over: the prediction count where TabPFN stops being cheapest
  // against the best searcher (paper: ~26k).
  const SystemCost* tabpfn = nullptr;
  for (const auto& cost : costs) {
    if (cost.system == "tabpfn") tabpfn = &cost;
  }
  if (tabpfn != nullptr) {
    double crossover = 1e300;
    std::string against;
    for (const auto& cost : costs) {
      if (cost.system == "tabpfn") continue;
      const double d_infer = tabpfn->inference_kwh_per_instance -
                             cost.inference_kwh_per_instance;
      if (d_infer <= 0.0) continue;  // TabPFN never loses to this one.
      const double n_star =
          (cost.execution_kwh - tabpfn->execution_kwh) / d_infer;
      if (n_star > 0.0 && n_star < crossover) {
        crossover = n_star;
        against = cost.system;
      }
    }
    if (!against.empty()) {
      std::printf(
          "\nTabPFN is the most energy-efficient choice below ~%s "
          "predictions (first overtaken by %s; the paper reports ~26k "
          "on its hardware).\n",
          FormatWithCommas(static_cast<int64_t>(crossover)).c_str(),
          against.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
