// Figure 5: average balanced accuracy and CPU energy during execution of
// CAML and AutoGluon across 1/2/4/8 cores. The paper's finding: one core
// is Pareto-optimal for (sequential, budget-filling) CAML, while
// AutoGluon's embarrassingly parallel bagging makes multiple cores MORE
// energy-efficient.

#include <cstdio>
#include <optional>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/common/thread_pool.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  // Parallelism sweep multiplies runs by 4; trim the suite a little.
  if (config.dataset_limit == 0 || config.dataset_limit > 6) {
    config.dataset_limit = 6;
  }
  ExperimentRunner runner(config);

  const std::vector<int> core_counts = {1, 2, 4, 8};
  const std::vector<double> budgets = {10.0, 30.0, 60.0, 300.0};

  for (const std::string& system : {"caml", "autogluon"}) {
    PrintBanner(StrFormat(
        "Figure 5: %s across CPU cores (accuracy / execution kWh)",
        system.c_str()));
    TablePrinter table({"budget", "cores", "bal.acc", "exec kWh",
                        "exec seconds", "kWh vs 1 core"});
    for (double budget : budgets) {
      double one_core_kwh = 0.0;
      for (int cores : core_counts) {
        // Host-parallel over (dataset, repetition): seeds are cell-local,
        // so slot i is identical whichever worker computes it; aggregation
        // below walks slots in enumeration order for deterministic stats.
        const size_t reps = static_cast<size_t>(config.repetitions);
        const size_t n = runner.suite().size() * reps;
        std::vector<std::optional<RunRecord>> slots(n);
        ParallelFor(n, config.jobs, [&](size_t i) {
          const Dataset& dataset = runner.suite()[i / reps];
          const int rep = static_cast<int>(i % reps);
          auto record = runner.RunOne(system, dataset, budget, rep, cores);
          if (record.ok()) slots[i] = std::move(record).value();
        });
        std::vector<double> accs;
        std::vector<double> kwhs;
        std::vector<double> secs;
        for (const std::optional<RunRecord>& record : slots) {
          if (!record.has_value()) continue;
          accs.push_back(record->test_balanced_accuracy);
          kwhs.push_back(record->execution_kwh);
          secs.push_back(record->execution_seconds);
        }
        const double kwh = ComputeStats(kwhs).mean;
        if (cores == 1) one_core_kwh = kwh;
        table.AddRow(
            {StrFormat("%gs", budget), StrFormat("%d", cores),
             StrFormat("%.3f", ComputeStats(accs).mean),
             StrFormat("%.5f", kwh),
             StrFormat("%.1f", ComputeStats(secs).mean),
             StrFormat("%.2fx", one_core_kwh > 0 ? kwh / one_core_kwh
                                                 : 0.0)});
      }
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape check: CAML's energy should rise sublinearly with "
      "cores (<= ~2.7x at 8); AutoGluon should get FASTER and no more "
      "expensive with more cores; accuracy should never degrade "
      "materially.\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
