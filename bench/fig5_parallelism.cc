// Figure 5: average balanced accuracy and CPU energy during execution of
// CAML and AutoGluon across 1/2/4/8 cores. The paper's finding: one core
// is Pareto-optimal for (sequential, budget-filling) CAML, while
// AutoGluon's embarrassingly parallel bagging makes multiple cores MORE
// energy-efficient.

#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  // Parallelism sweep multiplies runs by 4; trim the suite a little.
  if (config.dataset_limit == 0 || config.dataset_limit > 6) {
    config.dataset_limit = 6;
  }
  ExperimentRunner runner(config);

  const std::vector<int> core_counts = {1, 2, 4, 8};
  const std::vector<double> budgets = {10.0, 30.0, 60.0, 300.0};

  // The core count is Sweep's option-override axis: one sweep per system
  // covers the whole (budget, cores, dataset, rep) grid with the
  // harness's retry/journal/jobs machinery, and run seeds are
  // variant-independent, so every cores= variant of a cell shares its
  // split and search trajectory — the controlled comparison the figure
  // plots.
  std::vector<SweepVariant> variants;
  for (int cores : core_counts) {
    SweepVariant variant;
    variant.name = StrFormat("cores=%d", cores);
    variant.cores = cores;
    variants.push_back(std::move(variant));
  }

  for (const char* system : {"caml", "autogluon"}) {
    PrintBanner(StrFormat(
        "Figure 5: %s across CPU cores (accuracy / execution kWh)",
        system));
    auto swept = runner.Sweep({system}, budgets, variants);
    if (!swept.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   swept.status().ToString().c_str());
      return 1;
    }
    const std::vector<RunRecord> records = OkOnly(*swept);
    TablePrinter table({"budget", "cores", "bal.acc", "exec kWh",
                        "exec seconds", "kWh vs 1 core"});
    for (double budget : budgets) {
      double one_core_kwh = 0.0;
      for (const SweepVariant& variant : variants) {
        std::vector<double> accs;
        std::vector<double> kwhs;
        std::vector<double> secs;
        for (const RunRecord& record :
             Filter(records, system, budget, variant.name)) {
          accs.push_back(record.test_balanced_accuracy);
          kwhs.push_back(record.execution_kwh);
          secs.push_back(record.execution_seconds);
        }
        const double kwh = ComputeStats(kwhs).mean;
        if (variant.cores == 1) one_core_kwh = kwh;
        table.AddRow(
            {StrFormat("%gs", budget), StrFormat("%d", variant.cores),
             StrFormat("%.3f", ComputeStats(accs).mean),
             StrFormat("%.5f", kwh),
             StrFormat("%.1f", ComputeStats(secs).mean),
             StrFormat("%.2fx", one_core_kwh > 0 ? kwh / one_core_kwh
                                                 : 0.0)});
      }
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape check: CAML's energy should rise sublinearly with "
      "cores (<= ~2.7x at 8); AutoGluon should get FASTER and no more "
      "expensive with more cores; accuracy should never degrade "
      "materially.\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
