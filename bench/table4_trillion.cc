// Table 4: the cost of one trillion predictions per AutoML system — the
// Meta-scale workload example. For each system we take the
// highest-accuracy configuration from the Fig. 3 sweep and scale its
// per-instance inference energy to 10^12 predictions, converting to kg
// CO2 (0.222 kg/kWh, Germany) and EUR (0.20 EUR/kWh).

#include <algorithm>
#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/energy/co2.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  ExperimentRunner runner(config);
  const std::vector<std::string> systems = {
      "tabpfn",       "autogluon",    "autosklearn1", "autosklearn2",
      "caml",         "tpot",         "flaml"};
  auto sweep = runner.Sweep(systems, config.paper_budgets);
  if (!sweep.ok()) return 1;
  const std::vector<RunRecord> records = OkOnly(*sweep);

  const EmissionFactors factors = EmissionFactors::Germany2023();
  constexpr double kTrillion = 1e12;

  struct Row {
    std::string system;
    double kwh;
  };
  std::vector<Row> rows;
  for (const std::string& system : DistinctSystems(records)) {
    // Pick the budget with the highest mean accuracy (the paper uses the
    // best-performing model per system).
    double best_acc = -1.0;
    double best_inference = 0.0;
    for (double budget : DistinctBudgets(records, system)) {
      const auto cell = Filter(records, system, budget);
      const double acc =
          BootstrapAcrossDatasets(
              cell,
              [](const RunRecord& r) {
                return r.test_balanced_accuracy;
              },
              200, 1)
              .mean;
      const double inference =
          BootstrapAcrossDatasets(
              cell,
              [](const RunRecord& r) {
                return r.inference_kwh_per_instance;
              },
              200, 2)
              .mean;
      if (acc > best_acc) {
        best_acc = acc;
        best_inference = inference;
      }
    }
    rows.push_back({system, best_inference * kTrillion});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.kwh > b.kwh; });

  PrintBanner("Table 4: cost of 1 trillion predictions");
  TablePrinter table({"AutoML", "Energy (kWh)", "CO2 (kg)", "Cost (EUR)"});
  for (const Row& row : rows) {
    const ImpactEstimate impact = EstimateImpact(row.kwh, factors);
    table.AddRow({row.system,
                  FormatWithCommas(static_cast<int64_t>(impact.kwh)),
                  FormatWithCommas(static_cast<int64_t>(impact.kg_co2)),
                  FormatWithCommas(static_cast<int64_t>(impact.eur))});
  }
  table.Print();
  std::printf(
      "\nPaper shape: TabPFN by far the most expensive (404,649 kWh), "
      "ensembling systems next, single-model searchers (CAML/TPOT/FLAML) "
      "orders of magnitude cheaper.\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
