// Table 7: actual execution time (mean ± std) for each specified search
// time — the budget-adherence study. Paper shape: TabPFN constant ~0.29s;
// CAML strictly on budget; FLAML slightly over; AutoGluon ~2x over at
// small budgets; AutoSklearn worst (post-deadline ensemble weighting).

#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  ExperimentRunner runner(config);
  const std::vector<std::string> systems = {
      "tabpfn", "caml",        "caml_tuned",   "flaml",
      "autogluon", "tpot",     "autosklearn2", "autosklearn1"};
  auto sweep = runner.Sweep(systems, config.paper_budgets);
  if (!sweep.ok()) return 1;
  const std::vector<RunRecord> records = OkOnly(*sweep);

  // TPOT / ASKL skip their sub-minimum budgets by design; anything else
  // non-ok here deserves a look.
  const std::string failures = RenderFailureSummary(*sweep);
  if (!failures.empty()) {
    PrintBanner("Cell outcomes (skips expected at sub-minimum budgets)");
    std::printf("%s", failures.c_str());
  }

  PrintBanner(
      "Table 7: actual execution time (s) for specified search times");
  TablePrinter table({"AutoML", "10s", "30s", "1min", "5min"});
  for (const std::string& system : systems) {
    std::vector<std::string> row = {system};
    for (double budget : config.paper_budgets) {
      std::vector<RunRecord> cell;
      if (system == "tabpfn") {
        // TabPFN has no search-time parameter: one column, repeated.
        cell = Filter(records, system,
                      DistinctBudgets(records, system).front());
      } else {
        cell = Filter(records, system, budget);
      }
      if (cell.empty()) {
        row.push_back("-");
        continue;
      }
      std::vector<double> seconds;
      for (const RunRecord& r : cell) {
        seconds.push_back(r.execution_seconds);
      }
      const Stats s = ComputeStats(seconds);
      row.push_back(StrFormat("%.2f ± %.2f", s.mean, s.stddev));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper row order (30s column): TabPFN 0.29 << CAML 30.9 <= "
      "FLAML 33.3 < AutoGluon 51.2 < ASKL2 128.7 < ASKL1 176.5.\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
