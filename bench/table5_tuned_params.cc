// Table 5: the AutoML system parameters the development-stage optimizer
// selects per search budget. Prints the shipped reference configurations
// (Table 5's qualitative structure adapted to simulation scale) and, when
// GREEN_TUNE=1, re-runs the tuner to regenerate them live.

#include <cstdio>
#include <cstdlib>

#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/data/meta_corpus.h"
#include "green/metaopt/automl_tuner.h"
#include "green/metaopt/tuned_config_store.h"

namespace green {
namespace {

void PrintParams(const std::string& label, const CamlParams& p) {
  PrintBanner(label);
  TablePrinter table({"AutoML system parameter", "value"});
  table.AddRow({"ML hyperparameter search space", Join(p.models, ", ")});
  table.AddRow({"hold-out validation fraction",
                StrFormat("%.2f", p.holdout_fraction)});
  table.AddRow({"evaluation fraction",
                StrFormat("%.2f", p.evaluation_fraction)});
  table.AddRow(
      {"sampling (fraction of instances used)",
       StrFormat("%.2f", p.sampling_fraction)});
  table.AddRow({"refit on train+validation", p.refit ? "yes" : "no"});
  table.AddRow({"random validation split per BO iteration",
                p.random_validation_split ? "yes" : "no"});
  table.AddRow({"incremental training (successive-halving style)",
                p.incremental_training ? "yes" : "no"});
  table.Print();
}

int Main() {
  const TunedConfigStore store = TunedConfigStore::PaperDefaults();
  for (double budget : {10.0, 30.0, 60.0, 300.0}) {
    auto params = store.Get(budget);
    if (!params.ok()) continue;
    PrintParams(StrFormat("Table 5: tuned parameters for %gs search time",
                          budget),
                *params);
  }
  std::printf(
      "\nTable 5 regularities reproduced: decision trees in every "
      "space; the space grows with the budget; expensive families (MLP) "
      "only at 5 min; sampling, incremental training and random "
      "validation splitting always selected; refit at 1 min but not 5 "
      "min.\n");

  const char* tune = std::getenv("GREEN_TUNE");
  if (tune != nullptr && tune[0] == '1') {
    ExperimentConfig config = ExperimentConfig::FromEnv();
    MetaCorpusOptions corpus_options;
    corpus_options.num_datasets = 24;
    auto corpus = GenerateMetaCorpus(corpus_options, config.profile);
    if (!corpus.ok()) return 1;
    AutoMlTunerOptions tuner_options;
    tuner_options.search_time_seconds = 10.0 * config.budget_scale;
    tuner_options.bo_iterations = 16;
    tuner_options.top_k_datasets = 5;
    tuner_options.repetitions = 1;
    AutoMlTuner tuner(tuner_options);
    EnergyModel energy_model(config.machine);
    VirtualClock clock;
    ExecutionContext ctx(&clock, &energy_model, 1);
    auto tuned = tuner.Tune(*corpus, &ctx);
    if (tuned.ok()) {
      PrintParams("Live tuner output (10s budget, reduced settings)",
                  tuned->best_params);
    }
  } else {
    std::printf(
        "\n(Set GREEN_TUNE=1 to regenerate the 10s column with a live "
        "tuning run.)\n");
  }
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
