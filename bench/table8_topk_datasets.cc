// Table 8: tuning quality/cost for different numbers of top-k
// representative datasets (paper: k in {10, 20, 40} at 300 BO iterations;
// more datasets generalize better but cost linearly more energy/time).
// The fast profile scales k and the iteration count down proportionally.

#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/data/meta_corpus.h"
#include "green/metaopt/automl_tuner.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  const bool full = config.repetitions >= 10;

  MetaCorpusOptions corpus_options;
  corpus_options.num_datasets = full ? 124 : 24;
  SimulationProfile corpus_profile = config.profile;
  if (!full) corpus_profile.max_rows = 400;
  auto corpus = GenerateMetaCorpus(corpus_options, corpus_profile);
  if (!corpus.ok()) return 1;

  const std::vector<int> top_ks =
      full ? std::vector<int>{10, 20, 40} : std::vector<int>{2, 4, 8};
  const int iterations = full ? 300 : 8;

  PrintBanner(StrFormat(
      "Table 8: tuning with different top-k representative datasets "
      "(10s budget, %d BO iterations)", iterations));
  TablePrinter table({"top-k datasets", "mean bal.acc on tuning tasks",
                      "energy (kWh)", "virtual time (h)"});
  EnergyModel energy_model(config.machine);
  for (int k : top_ks) {
    AutoMlTunerOptions options;
    options.search_time_seconds = 10.0 * config.budget_scale;
    options.bo_iterations = iterations;
    options.top_k_datasets = k;
    options.repetitions = full ? 2 : 1;
    options.seed = config.seed;
    AutoMlTuner tuner(options);
    VirtualClock clock;
    ExecutionContext ctx(&clock, &energy_model, config.cores);
    auto result = tuner.Tune(*corpus, &ctx);
    if (!result.ok()) {
      std::fprintf(stderr, "tuning failed for k=%d\n", k);
      continue;
    }
    table.AddRow(
        {StrFormat("%d", k),
         StrFormat("%.2f%%", 100.0 * result->best_mean_accuracy),
         StrFormat("%.3f",
                   result->development.kwh() / config.budget_scale),
         StrFormat("%.2f", result->development_seconds /
                               config.budget_scale / 3600.0)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: accuracy rises then saturates with k while energy "
      "and time grow roughly linearly — k=20 was the paper's "
      "accuracy/cost sweet spot (68.6%% -> 73.5%% from k=10 to 20, flat "
      "to k=40 at double the energy).\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
