// Serving-layer bench: replay diurnal and bursty open-loop request
// traces against one fitted artifact's degrade ladder under a matrix of
// serving policies. Reports tail latency (p50/p95/p99, virtual ms),
// outcome counts (completed / degraded / rejected / deadline), and
// Joules per request for every (trace, policy) cell, and enforces the
// request-conservation invariant on each cell.
//
// Everything reported is virtual-clock state, so the numbers are a pure
// function of the seed: `--json PATH` writes a machine-readable snapshot
// that CI diffs byte-for-byte against the checked-in BENCH_serve.json.
// GREEN_FAULTS is honored (the CI soak job injects at serve.admit /
// serve.batch / serve.predict and asserts conservation still holds);
// the snapshot job runs without injections.

#include <cstdio>
#include <string>
#include <vector>

#include "green/automl/automl_system.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/fault.h"
#include "green/common/stringutil.h"
#include "green/data/synthetic.h"
#include "green/energy/energy_model.h"
#include "green/serve/inference_server.h"
#include "green/sim/execution_context.h"
#include "green/table/split.h"

namespace green {
namespace {

struct PolicyCell {
  std::string name;
  ServePolicy policy;
};

struct CellResult {
  std::string name;  ///< "trace/policy".
  ServeReport report;
};

std::vector<PolicyCell> PolicyMatrix() {
  std::vector<PolicyCell> cells;
  {
    PolicyCell cell;
    cell.name = "baseline";
    cells.push_back(std::move(cell));
  }
  {
    PolicyCell cell;
    cell.name = "deadline-fail";
    cell.policy.deadline_seconds = 0.020;
    cell.policy.on_deadline = ServePolicy::DeadlineAction::kFail;
    cells.push_back(std::move(cell));
  }
  {
    PolicyCell cell;
    cell.name = "deadline-degrade";
    cell.policy.deadline_seconds = 0.005;
    cell.policy.on_deadline = ServePolicy::DeadlineAction::kDegrade;
    cells.push_back(std::move(cell));
  }
  {
    PolicyCell cell;
    cell.name = "energy-slo";
    cell.policy.energy_slo_joules = 0.001;
    cells.push_back(std::move(cell));
  }
  {
    PolicyCell cell;
    cell.name = "tight-queue";
    cell.policy.queue_capacity = 8;
    cell.policy.shed = ServePolicy::ShedPolicy::kOldest;
    cells.push_back(std::move(cell));
  }
  return cells;
}

/// JSON snapshot: integer counts plus %.6g virtual metrics only — no
/// host time, no pointers — so reruns are byte-identical.
bool WriteJson(const std::string& path,
               const std::vector<CellResult>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const ServeReport& r = cells[i].report;
    std::fprintf(
        f,
        "  {\"name\": \"%s\", \"arrived\": %zu, \"completed\": %zu, "
        "\"degraded\": %zu, \"rejected\": %zu, \"deadline\": %zu, "
        "\"batches\": %zu, \"p50_ms\": %.6g, \"p95_ms\": %.6g, "
        "\"p99_ms\": %.6g, \"joules_per_request\": %.6g}%s\n",
        cells[i].name.c_str(), r.arrived, r.completed, r.degraded,
        r.rejected, r.deadline_exceeded, r.batches,
        r.LatencyPercentile(0.50) * 1e3, r.LatencyPercentile(0.95) * 1e3,
        r.LatencyPercentile(0.99) * 1e3, r.JoulesPerRequest(),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  // Deliberately NOT ExperimentConfig::FromEnv(): the snapshot must be a
  // pure function of the seed, so profile/scale knobs cannot shift it.
  // Fault injection is the one env input the soak job needs.
  ExperimentConfig config;
  config.faults = FaultsFromEnv();

  SyntheticSpec spec;
  spec.name = "serve-bench";
  spec.num_rows = 600;
  spec.num_features = 12;
  spec.num_informative = 7;
  spec.num_categorical = 3;
  spec.num_classes = 3;
  spec.separation = 2.2;
  spec.label_noise = 0.05;
  spec.seed = 4242;
  const Dataset dataset = GenerateSynthetic(spec).value();
  Rng split_rng(1);
  TrainTestData data =
      Materialize(dataset, StratifiedSplit(dataset, 0.66, &split_rng));
  EnergyModel energy_model(config.machine);

  // One ensembling artifact serves every cell: AutoGluon gives the
  // ladder all three rungs (full stack -> best single -> constant).
  ExperimentRunner runner(config);
  auto system = runner.MakeSystem("autogluon", 60.0);
  if (!system.ok()) {
    std::fprintf(stderr, "serve bench: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }
  VirtualClock fit_clock;
  ExecutionContext fit_ctx(&fit_clock, &energy_model, config.cores);
  AutoMlOptions options;
  options.search_budget_seconds = 60.0 * config.budget_scale;
  options.cores = config.cores;
  options.seed = config.seed;
  auto run = (*system)->Fit(data.train, options, &fit_ctx);
  if (!run.ok()) {
    std::fprintf(stderr, "serve bench: fit failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  auto ladder =
      ArtifactLadder::Build(run->artifact, data.train, &energy_model);
  if (!ladder.ok()) {
    std::fprintf(stderr, "serve bench: %s\n",
                 ladder.status().ToString().c_str());
    return 1;
  }

  const FaultInjector faults =
      FaultInjector::Lenient(config.faults, config.seed);

  std::vector<TraceSpec> traces(2);
  traces[0].kind = TraceSpec::Kind::kDiurnal;
  traces[0].rate_rps = 60.0;
  traces[0].duration_seconds = 10.0;
  traces[0].seed = config.seed;
  traces[1].kind = TraceSpec::Kind::kBurst;
  traces[1].rate_rps = 30.0;
  traces[1].duration_seconds = 10.0;
  traces[1].seed = config.seed;

  const std::vector<PolicyCell> policies = PolicyMatrix();
  std::vector<CellResult> cells;
  for (const TraceSpec& trace_spec : traces) {
    const std::vector<ServeRequest> trace =
        GenerateTrace(trace_spec, data.test.num_rows());
    PrintBanner(StrFormat(
        "Serving: %s trace (%zu requests over %.0f s) x %zu policies",
        TraceKindName(trace_spec.kind), trace.size(),
        trace_spec.duration_seconds, policies.size()));
    TablePrinter table({"policy", "completed", "degraded", "rejected",
                        "deadline", "p50 ms", "p95 ms", "p99 ms",
                        "J/request"});
    for (const PolicyCell& cell : policies) {
      InferenceServer server(ladder.value(), data.test, &energy_model,
                             cell.policy, &faults, config.cores);
      auto report = server.Replay(trace);
      if (!report.ok()) {
        std::fprintf(stderr, "serve bench: %s/%s: %s\n",
                     TraceKindName(trace_spec.kind), cell.name.c_str(),
                     report.status().ToString().c_str());
        return 1;
      }
      const Status conserved = report->CheckConservation();
      if (!conserved.ok()) {
        std::fprintf(stderr,
                     "serve bench: %s/%s: conservation FAILED: %s\n",
                     TraceKindName(trace_spec.kind), cell.name.c_str(),
                     conserved.ToString().c_str());
        return 1;
      }
      table.AddRow({cell.name, StrFormat("%zu", report->completed),
                    StrFormat("%zu", report->degraded),
                    StrFormat("%zu", report->rejected),
                    StrFormat("%zu", report->deadline_exceeded),
                    StrFormat("%.2f", report->LatencyPercentile(0.50) * 1e3),
                    StrFormat("%.2f", report->LatencyPercentile(0.95) * 1e3),
                    StrFormat("%.2f", report->LatencyPercentile(0.99) * 1e3),
                    StrFormat("%.4g", report->JoulesPerRequest())});
      CellResult result;
      result.name = StrFormat("%s/%s", TraceKindName(trace_spec.kind),
                              cell.name.c_str());
      result.report = std::move(report).value();
      cells.push_back(std::move(result));
    }
    table.Print();
  }

  std::printf(
      "\nShape check: the degrade policy trades accuracy tier for tail "
      "latency (p99 falls, degraded count rises); the energy SLO caps "
      "J/request; the tight queue sheds under the burst's peak load. "
      "Every cell conserves requests: arrived == completed + degraded + "
      "rejected + deadline.\n");

  if (!json_path.empty() && !WriteJson(json_path, cells)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace green

int main(int argc, char** argv) { return green::Main(argc, argv); }
