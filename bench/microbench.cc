// Kernel microbenchmarks (google-benchmark): host-side throughput of the
// instrumented substrates. These measure REAL wall time of the library's
// kernels — complementary to the virtual-time experiment harnesses, and
// useful for spotting performance regressions in the simulator itself.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "green/automl/caml_system.h"
#include "green/automl/fitted_artifact.h"
#include "green/bench_util/experiment.h"
#include "green/common/thread_pool.h"
#include "green/data/synthetic.h"
#include "green/ml/kernels/histogram.h"
#include "green/ml/model_registry.h"
#include "green/ml/models/attention_few_shot.h"
#include "green/ml/models/decision_tree.h"
#include "green/ml/models/gradient_boosting.h"
#include "green/ml/models/knn.h"
#include "green/ml/models/random_forest.h"
#include "green/search/caruana.h"
#include "green/search/rf_surrogate.h"
#include "green/table/split.h"

namespace green {
namespace {

Dataset BenchData(size_t rows, size_t features, int classes) {
  SyntheticSpec spec;
  spec.name = "bench";
  spec.num_rows = rows;
  spec.num_features = features;
  spec.num_informative = features / 2;
  spec.num_classes = classes;
  spec.seed = 99;
  auto data = GenerateSynthetic(spec);
  return std::move(data).value();
}

struct Ctx {
  VirtualClock clock;
  EnergyModel model{MachineModel::Minimal()};
  ExecutionContext ctx{&clock, &model, 1};
};

void BM_DecisionTreeFit(benchmark::State& state) {
  const Dataset data =
      BenchData(static_cast<size_t>(state.range(0)), 16, 2);
  Ctx c;
  for (auto _ : state) {
    DecisionTreeParams params;
    params.max_depth = 8;
    DecisionTree tree(params);
    benchmark::DoNotOptimize(tree.Fit(data, &c.ctx));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(200)->Arg(800);

void BM_RandomForestPredict(benchmark::State& state) {
  const Dataset data = BenchData(400, 16, 3);
  Ctx c;
  RandomForestParams params;
  params.num_trees = static_cast<int>(state.range(0));
  RandomForest forest(params);
  if (!forest.Fit(data, &c.ctx).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.PredictProba(data, &c.ctx));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_RandomForestPredict)->Arg(8)->Arg(32);

void BM_GradientBoostingFit(benchmark::State& state) {
  const Dataset data = BenchData(300, 12, 2);
  Ctx c;
  for (auto _ : state) {
    GradientBoostingParams params;
    params.num_rounds = static_cast<int>(state.range(0));
    GradientBoosting gb(params);
    benchmark::DoNotOptimize(gb.Fit(data, &c.ctx));
  }
}
BENCHMARK(BM_GradientBoostingFit)->Arg(10)->Arg(30);

void BM_AttentionFewShotInference(benchmark::State& state) {
  const Dataset data =
      BenchData(static_cast<size_t>(state.range(0)), 16, 2);
  Ctx c;
  AttentionFewShot model{AttentionFewShotParams{}};
  if (!model.Fit(data, &c.ctx).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictProba(data, &c.ctx));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_AttentionFewShotInference)->Arg(128)->Arg(512);

// Brute-force neighbour scan: the distance kernel dominates. Arg = rows
// in the memorized training set (queries reuse the same rows).
void BM_KnnPredict(benchmark::State& state) {
  const Dataset data =
      BenchData(static_cast<size_t>(state.range(0)), 16, 3);
  Ctx c;
  Knn knn{KnnParams{}};
  if (!knn.Fit(data, &c.ctx).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.PredictProba(data, &c.ctx));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_KnnPredict)->Arg(400)->Arg(1600);

// Weighted blend across an ensemble of fitted pipelines. Arg = member
// count; the blend accumulation itself is what the kernel path flattens.
void BM_BlendedPredict(benchmark::State& state) {
  const Dataset data = BenchData(400, 12, 3);
  Ctx c;
  std::vector<FittedArtifact::Member> members;
  for (int j = 0; j < state.range(0); ++j) {
    PipelineConfig config;
    config.model = "decision_tree";
    config.seed = static_cast<uint64_t>(j + 1);
    auto pipeline = BuildPipeline(config);
    if (!pipeline.ok() || !pipeline->Fit(data, &c.ctx).ok()) {
      state.SkipWithError("fit failed");
      return;
    }
    FittedArtifact::Member member;
    member.folds.push_back(
        std::make_shared<Pipeline>(std::move(pipeline).value()));
    member.weight = 1.0 / static_cast<double>(state.range(0));
    members.push_back(std::move(member));
  }
  const FittedArtifact artifact =
      FittedArtifact::Weighted(std::move(members));
  for (auto _ : state) {
    benchmark::DoNotOptimize(artifact.PredictProba(data, &c.ctx));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_BlendedPredict)->Arg(4)->Arg(16);

// The fixed-bin histogram split scan in isolation: one node's worth of
// gathered column values and labels, scanned for the best edge.
void BM_TreeSplitScan(benchmark::State& state) {
  Rng rng(5);
  const size_t n = static_cast<size_t>(state.range(0));
  const int k = 3;
  const int bins = 32;
  std::vector<double> vals(n);
  std::vector<int32_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    vals[i] = rng.NextDouble();
    labels[i] = static_cast<int32_t>(rng.NextBounded(k));
  }
  std::vector<double> scratch((bins + 2) * k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HistogramSplitScanCls(
        vals.data(), labels.data(), n, k, 0.0, 1.0, bins, 2,
        scratch.data()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_TreeSplitScan)->Arg(1024)->Arg(8192);

void BM_RfSurrogateFit(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<double> x(12);
    for (double& v : x) v = rng.NextDouble();
    ys.push_back(x[0] * x[1]);
    xs.push_back(std::move(x));
  }
  for (auto _ : state) {
    RfSurrogate surrogate(RfSurrogate::Options{});
    benchmark::DoNotOptimize(surrogate.Fit(xs, ys));
  }
}
BENCHMARK(BM_RfSurrogateFit)->Arg(50)->Arg(200);

void BM_CaruanaSelection(benchmark::State& state) {
  Rng rng(2);
  const int n = 128;
  const int members = static_cast<int>(state.range(0));
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = i % 2;
  std::vector<ProbaMatrix> library(members);
  for (auto& proba : library) {
    proba.resize(n);
    for (auto& row : proba) {
      const double p = rng.NextDouble();
      row = {p, 1.0 - p};
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CaruanaEnsembleSelection(library, labels, 2, CaruanaOptions{}));
  }
}
BENCHMARK(BM_CaruanaSelection)->Arg(8)->Arg(32);

void BM_CamlFullRun(benchmark::State& state) {
  const Dataset data = BenchData(260, 12, 2);
  for (auto _ : state) {
    Ctx c;
    CamlSystem caml;
    AutoMlOptions options;
    options.search_budget_seconds = 2.0;
    options.seed = 7;
    benchmark::DoNotOptimize(caml.Fit(data, options, &c.ctx));
  }
}
BENCHMARK(BM_CamlFullRun);

// Full experiment sweep across host worker threads. The records are
// bit-identical for every Arg; only the real wall time changes — compare
// /1 vs /4 for the harness speedup. MeasureProcessCPUTime would hide the
// win, so the benchmark uses real time. On a single-hardware-thread host
// the two Args tie (nothing to parallelize onto); the speedup shows on
// any multi-core machine.
void BM_ExperimentSweep(benchmark::State& state) {
  ExperimentConfig config;
  config.dataset_limit = 4;
  config.repetitions = 2;
  config.jobs = static_cast<int>(state.range(0));
  ExperimentRunner runner(config);
  for (auto _ : state) {
    auto records = runner.Sweep({"caml", "flaml"}, {10.0, 30.0});
    if (!records.ok() || records->empty()) {
      state.SkipWithError("sweep failed");
      return;
    }
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() * 4 * 2 * 2);  // Cells/run.
}
BENCHMARK(BM_ExperimentSweep)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int> done{0};
    for (int i = 0; i < 256; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    pool.Wait();
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4)->UseRealTime();

void BM_EnergyMeterOverhead(benchmark::State& state) {
  Ctx c;
  EnergyMeter meter(&c.model);
  meter.Start(0.0);
  c.ctx.SetMeter(&meter);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.ctx.ChargeCpu(100.0, 64.0));
  }
}
BENCHMARK(BM_EnergyMeterOverhead);

// Console output plus an optional machine-readable JSON array (one object
// per measured run: name, iterations, ns_per_op, plus any rate counters
// such as items_per_second / bytes_per_second) for CI artifacts.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      rows_.push_back(run);
    }
  }

  bool WriteJson(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("[\n", f);
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Run& run = rows_[i];
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9
              : run.real_accumulated_time * 1e9;
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"iterations\": %lld, "
                   "\"ns_per_op\": %.3f",
                   run.benchmark_name().c_str(),
                   static_cast<long long>(run.iterations), ns_per_op);
      for (const auto& [counter_name, counter] : run.counters) {
        std::fprintf(f, ", \"%s\": %.3f", counter_name.c_str(),
                     counter.value);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

 private:
  std::vector<Run> rows_;
};

}  // namespace
}  // namespace green

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  green::JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.WriteJson(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
