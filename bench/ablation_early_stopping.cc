// Ablation (§3.8 follow-up): the paper observes that systems overfit on
// small datasets when run for 5 min instead of 1 min and argues "early
// stopping should be enforced to save energy". This bench quantifies the
// claim with CAML's early-stopping extension: patience sweep vs energy
// spent and accuracy reached, plus the CO2-aware search objective.

#include <cstdio>

#include "green/automl/caml_system.h"
#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

namespace green {
namespace {

struct Cell {
  double accuracy = 0.0;
  double exec_kwh = 0.0;
  double exec_seconds = 0.0;
  double inference_flops = 0.0;
};

Cell Measure(const CamlParams& params, ExperimentRunner& runner,
             const ExperimentConfig& config, double budget) {
  EnergyModel energy_model(config.machine);
  std::vector<double> accs;
  std::vector<double> kwhs;
  std::vector<double> secs;
  std::vector<double> flops;
  for (const Dataset& dataset : runner.suite()) {
    for (int rep = 0; rep < config.repetitions; ++rep) {
      CamlSystem system(params, "caml_ablation");
      VirtualClock clock;
      ExecutionContext ctx(&clock, &energy_model, config.cores);
      Rng rng(HashCombine(config.seed, rep * 31 + 1));
      TrainTestData data =
          Materialize(dataset, StratifiedSplit(dataset, 0.66, &rng));
      AutoMlOptions options;
      options.search_budget_seconds = budget * config.budget_scale;
      options.seed = HashCombine(config.seed, rep + 71);
      auto run = system.Fit(data.train, options, &ctx);
      if (!run.ok()) continue;
      auto preds = run->artifact.Predict(data.test, &ctx);
      if (!preds.ok()) continue;
      accs.push_back(BalancedAccuracy(data.test.labels(), preds.value(),
                                      data.test.num_classes()));
      kwhs.push_back(run->execution.kwh() / config.budget_scale);
      secs.push_back(run->actual_seconds / config.budget_scale);
      flops.push_back(
          run->artifact.InferenceFlopsPerRow(dataset.num_features()));
    }
  }
  return Cell{ComputeStats(accs).mean, ComputeStats(kwhs).mean,
              ComputeStats(secs).mean, ComputeStats(flops).mean};
}

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  if (config.dataset_limit == 0 || config.dataset_limit > 6) {
    config.dataset_limit = 6;
  }
  ExperimentRunner runner(config);
  const double budget = 300.0;  // The budget where overfitting bites.

  PrintBanner(
      "Ablation A1: early-stopping patience (CAML, 5min budget)");
  TablePrinter es_table({"patience", "bal.acc", "exec kWh",
                         "exec seconds", "energy saved"});
  double baseline_kwh = 0.0;
  for (int patience : {0, 20, 10, 5}) {
    CamlParams params;
    params.early_stopping_patience = patience;
    const Cell cell = Measure(params, runner, config, budget);
    if (patience == 0) baseline_kwh = cell.exec_kwh;
    es_table.AddRow(
        {patience == 0 ? "off" : StrFormat("%d", patience),
         StrFormat("%.3f", cell.accuracy),
         StrFormat("%.5f", cell.exec_kwh),
         StrFormat("%.1f", cell.exec_seconds),
         patience == 0 || baseline_kwh <= 0.0
             ? "-"
             : StrFormat("%.0f%%",
                         100.0 * (1.0 - cell.exec_kwh / baseline_kwh))});
  }
  es_table.Print();

  PrintBanner(
      "Ablation A2: CO2-aware objective weight (CAML, 1min budget)");
  TablePrinter ew_table({"energy weight", "bal.acc",
                         "inference FLOPs/row", "vs weight 0"});
  double baseline_flops = 0.0;
  for (double weight : {0.0, 0.2, 0.5, 1.0}) {
    CamlParams params;
    params.energy_weight = weight;
    const Cell cell = Measure(params, runner, config, 60.0);
    if (weight == 0.0) baseline_flops = cell.inference_flops;
    ew_table.AddRow(
        {StrFormat("%.1f", weight), StrFormat("%.3f", cell.accuracy),
         StrFormat("%.0f", cell.inference_flops),
         weight == 0.0 || baseline_flops <= 0.0
             ? "-"
             : StrFormat("%.2fx",
                         cell.inference_flops / baseline_flops)});
  }
  ew_table.Print();
  std::printf(
      "\nExpected shapes: early stopping trims execution energy with "
      "little accuracy loss (the search had converged); growing the "
      "CO2 weight pushes the chosen pipeline toward cheaper inference "
      "at a mild accuracy cost.\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
