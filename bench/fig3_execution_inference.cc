// Figure 3: search time vs average balanced accuracy vs energy during
// execution (left chart) and inference (right chart), for every AutoML
// system. Reported numbers are scaled back to paper scale; see DESIGN.md.

#include <cstdio>
#include <cstring>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

int Main(int argc, char** argv) {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--breakdown") == 0) {
      config.collect_scopes = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  ExperimentRunner runner(config);

  const std::vector<std::string> systems = {
      "tabpfn",       "caml",  "flaml",        "autogluon",
      "autosklearn1", "autosklearn2", "tpot"};
  auto sweep = runner.Sweep(systems, config.paper_budgets);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }
  // Aggregate over measured cells only; failures are reported below.
  const std::vector<RunRecord> records = OkOnly(*sweep);

  const std::string failures = RenderFailureSummary(*sweep);
  if (!failures.empty()) {
    PrintBanner("Non-ok cells (excluded from the charts)");
    std::printf("%s", failures.c_str());
  }

  PrintBanner(
      "Figure 3 (left): execution — balanced accuracy vs energy (kWh)");
  TablePrinter exec_table({"system", "budget", "bal.acc (mean±std)",
                           "exec kWh", "exec seconds"});
  for (const std::string& system : DistinctSystems(records)) {
    for (double budget : DistinctBudgets(records, system)) {
      const auto cell = Filter(records, system, budget);
      const Stats acc = BootstrapAcrossDatasets(
          cell,
          [](const RunRecord& r) { return r.test_balanced_accuracy; },
          200, 1);
      const Stats kwh = BootstrapAcrossDatasets(
          cell, [](const RunRecord& r) { return r.execution_kwh; }, 200,
          2);
      const Stats secs = BootstrapAcrossDatasets(
          cell, [](const RunRecord& r) { return r.execution_seconds; },
          200, 3);
      exec_table.AddRow({system, StrFormat("%gs", budget),
                         StrFormat("%.3f ± %.3f", acc.mean, acc.stddev),
                         StrFormat("%.5f", kwh.mean),
                         StrFormat("%.1f", secs.mean)});
    }
  }
  exec_table.Print();

  PrintBanner(
      "Figure 3 (right): inference — balanced accuracy vs energy "
      "(kWh per predicted instance)");
  TablePrinter infer_table(
      {"system", "budget", "bal.acc", "inference kWh/instance"});
  for (const std::string& system : DistinctSystems(records)) {
    for (double budget : DistinctBudgets(records, system)) {
      const auto cell = Filter(records, system, budget);
      const Stats acc = BootstrapAcrossDatasets(
          cell,
          [](const RunRecord& r) { return r.test_balanced_accuracy; },
          200, 1);
      const Stats inf = BootstrapAcrossDatasets(
          cell,
          [](const RunRecord& r) {
            return r.inference_kwh_per_instance;
          },
          200, 4);
      infer_table.AddRow({system, StrFormat("%gs", budget),
                          StrFormat("%.3f", acc.mean),
                          FormatSci(inf.mean)});
    }
  }
  infer_table.Print();

  // §3.2.1-style footnote: execution-energy variability across datasets.
  PrintBanner("Dataset-level execution-energy std at 5min (cf. §3.2.1)");
  TablePrinter std_table({"system", "kWh std across datasets"});
  for (const std::string& system : {"caml", "autogluon"}) {
    std::vector<double> per_dataset;
    for (const RunRecord& r : Filter(records, system, 300.0)) {
      per_dataset.push_back(r.execution_kwh);
    }
    std_table.AddRow({system,
                      StrFormat("%.5f", ComputeStats(per_dataset).stddev)});
  }
  std_table.Print();

  if (config.collect_scopes) {
    PrintBanner("Per-operator energy attribution (--breakdown)");
    const std::string breakdown = RenderEnergyBreakdown(*sweep);
    std::printf("%s", breakdown.empty()
                          ? "(no scope data collected)\n"
                          : breakdown.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace green

int main(int argc, char** argv) { return green::Main(argc, argv); }
