// Figure 6: configuring AutoML systems for inference. CAML is run with
// per-instance inference-time constraints; AutoGluon with its
// refit-for-faster-inference setting. The paper's finding: constraints
// save up to 69% (CAML) / 79% (AutoGluon) of inference energy at a 5-6%
// accuracy cost.

#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  if (config.dataset_limit == 0 || config.dataset_limit > 6) {
    config.dataset_limit = 6;
  }
  ExperimentRunner runner(config);
  const std::vector<double> budgets = {10.0, 30.0, 60.0, 300.0};

  // The paper constrains inference to 0.001-0.003 s/instance on its
  // machine; we scale those limits to the simulated machine's throughput
  // (same fraction of a virtual second).
  const std::vector<double> constraints = {0.0, 3e-3, 1.5e-3, 5e-4};

  PrintBanner(
      "Figure 6 (CAML): inference-time constraints vs accuracy & energy");
  // The constraint is Sweep's option-override axis: the unconstrained
  // default variant ("") plus one variant per limit, all through the
  // harness's retry/journal/jobs machinery. Variants share their run
  // seed, so a constrained cell differs from its unconstrained twin only
  // through the constraint itself.
  std::vector<SweepVariant> caml_variants;
  for (double constraint : constraints) {
    SweepVariant variant;
    if (constraint > 0.0) {
      variant.name = StrFormat("constraint=%g", constraint);
      variant.max_inference_seconds_per_row = constraint;
    }
    caml_variants.push_back(std::move(variant));
  }
  auto caml_sweep = runner.Sweep({"caml"}, budgets, caml_variants);
  if (!caml_sweep.ok()) {
    std::fprintf(stderr, "caml sweep failed: %s\n",
                 caml_sweep.status().ToString().c_str());
    return 1;
  }
  const std::vector<RunRecord> caml_records = OkOnly(*caml_sweep);

  TablePrinter caml_table({"budget", "constraint s/inst", "bal.acc",
                           "inference kWh/inst", "saving vs none"});
  for (double budget : budgets) {
    double unconstrained_kwh = -1.0;
    for (size_t c = 0; c < constraints.size(); ++c) {
      const double constraint = constraints[c];
      std::vector<double> accs;
      std::vector<double> kwhs;
      for (const RunRecord& record :
           Filter(caml_records, "caml", budget, caml_variants[c].name)) {
        accs.push_back(record.test_balanced_accuracy);
        kwhs.push_back(record.inference_kwh_per_instance);
      }
      const double kwh = ComputeStats(kwhs).mean;
      if (constraint == 0.0) unconstrained_kwh = kwh;
      caml_table.AddRow(
          {StrFormat("%gs", budget),
           constraint == 0.0 ? "none" : StrFormat("%.4f", constraint),
           StrFormat("%.3f", ComputeStats(accs).mean), FormatSci(kwh),
           constraint == 0.0 || unconstrained_kwh <= 0.0
               ? "-"
               : StrFormat("%.0f%%",
                           100.0 * (1.0 - kwh / unconstrained_kwh))});
    }
  }
  caml_table.Print();

  PrintBanner(
      "Figure 6 (AutoGluon): deployment-optimized refit configuration");
  auto gluon_sweep =
      runner.Sweep({"autogluon", "autogluon_refit"}, budgets);
  if (!gluon_sweep.ok()) {
    std::fprintf(stderr, "autogluon sweep failed: %s\n",
                 gluon_sweep.status().ToString().c_str());
    return 1;
  }
  const std::vector<RunRecord> gluon_records = OkOnly(*gluon_sweep);
  const std::string failures = RenderFailureSummary(*gluon_sweep);
  if (!failures.empty()) std::printf("%s", failures.c_str());

  TablePrinter gluon_table({"budget", "mode", "bal.acc",
                            "inference kWh/inst", "saving vs default"});
  for (double budget : budgets) {
    double default_kwh = -1.0;
    for (const std::string& mode : {"autogluon", "autogluon_refit"}) {
      std::vector<double> accs;
      std::vector<double> kwhs;
      for (const RunRecord& record : Filter(gluon_records, mode, budget)) {
        accs.push_back(record.test_balanced_accuracy);
        kwhs.push_back(record.inference_kwh_per_instance);
      }
      const double kwh = ComputeStats(kwhs).mean;
      if (mode == "autogluon") default_kwh = kwh;
      gluon_table.AddRow(
          {StrFormat("%gs", budget),
           mode == "autogluon" ? "default" : "refit (fast inference)",
           StrFormat("%.3f", ComputeStats(accs).mean), FormatSci(kwh),
           mode == "autogluon" || default_kwh <= 0.0
               ? "-"
               : StrFormat("%.0f%%", 100.0 * (1.0 - kwh / default_kwh))});
    }
  }
  gluon_table.Print();
  std::printf(
      "\nPaper shape check: tighter constraints / refit reduce inference "
      "energy substantially at a modest accuracy cost; even optimized "
      "AutoGluon stays above unconstrained CAML (it still ensembles).\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
