// Figure 6: configuring AutoML systems for inference. CAML is run with
// per-instance inference-time constraints; AutoGluon with its
// refit-for-faster-inference setting. The paper's finding: constraints
// save up to 69% (CAML) / 79% (AutoGluon) of inference energy at a 5-6%
// accuracy cost.

#include <cstdio>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

namespace green {
namespace {

struct CellStats {
  double accuracy = 0.0;
  double inference_kwh = 0.0;
};

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  if (config.dataset_limit == 0 || config.dataset_limit > 6) {
    config.dataset_limit = 6;
  }
  ExperimentRunner runner(config);
  EnergyModel energy_model(config.machine);
  const std::vector<double> budgets = {10.0, 30.0, 60.0, 300.0};

  // The paper constrains inference to 0.001-0.003 s/instance on its
  // machine; we scale those limits to the simulated machine's throughput
  // (same fraction of a virtual second).
  const std::vector<double> constraints = {0.0, 3e-3, 1.5e-3, 5e-4};

  PrintBanner(
      "Figure 6 (CAML): inference-time constraints vs accuracy & energy");
  TablePrinter caml_table({"budget", "constraint s/inst", "bal.acc",
                           "inference kWh/inst", "saving vs none"});
  for (double budget : budgets) {
    double unconstrained_kwh = -1.0;
    for (double constraint : constraints) {
      std::vector<double> accs;
      std::vector<double> kwhs;
      for (const Dataset& dataset : runner.suite()) {
        for (int rep = 0; rep < config.repetitions; ++rep) {
          auto system = runner.MakeSystem("caml", budget);
          if (!system.ok()) continue;
          VirtualClock clock;
          ExecutionContext ctx(&clock, &energy_model, config.cores);
          Rng rng(HashCombine(config.seed, rep + 1));
          TrainTestData data = Materialize(
              dataset, StratifiedSplit(dataset, 0.66, &rng));
          AutoMlOptions options;
          options.search_budget_seconds = budget * config.budget_scale;
          options.seed = HashCombine(config.seed, rep + 17);
          if (constraint > 0.0) {
            options.max_inference_seconds_per_row = constraint;
          }
          auto run = (*system)->Fit(data.train, options, &ctx);
          if (!run.ok()) continue;
          EnergyMeter meter(&energy_model);
          meter.Start(clock.Now());
          ctx.SetMeter(&meter);
          auto preds = run->artifact.Predict(data.test, &ctx);
          const EnergyReading inference = meter.Stop(clock.Now());
          ctx.SetMeter(nullptr);
          if (!preds.ok()) continue;
          accs.push_back(BalancedAccuracy(data.test.labels(),
                                          preds.value(),
                                          data.test.num_classes()));
          kwhs.push_back(inference.kwh() /
                         static_cast<double>(data.test.num_rows()) /
                         config.budget_scale);
        }
      }
      const double kwh = ComputeStats(kwhs).mean;
      if (constraint == 0.0) unconstrained_kwh = kwh;
      caml_table.AddRow(
          {StrFormat("%gs", budget),
           constraint == 0.0 ? "none" : StrFormat("%.4f", constraint),
           StrFormat("%.3f", ComputeStats(accs).mean), FormatSci(kwh),
           constraint == 0.0 || unconstrained_kwh <= 0.0
               ? "-"
               : StrFormat("%.0f%%",
                           100.0 * (1.0 - kwh / unconstrained_kwh))});
    }
  }
  caml_table.Print();

  PrintBanner(
      "Figure 6 (AutoGluon): deployment-optimized refit configuration");
  // Both AutoGluon modes go through Sweep: parallel workers, retry/
  // taxonomy, and journaling all apply. (The CAML half above cannot —
  // it varies max_inference_seconds_per_row, which is not a sweep axis.)
  auto gluon_sweep =
      runner.Sweep({"autogluon", "autogluon_refit"}, budgets);
  if (!gluon_sweep.ok()) {
    std::fprintf(stderr, "autogluon sweep failed: %s\n",
                 gluon_sweep.status().ToString().c_str());
    return 1;
  }
  const std::vector<RunRecord> gluon_records = OkOnly(*gluon_sweep);
  const std::string failures = RenderFailureSummary(*gluon_sweep);
  if (!failures.empty()) std::printf("%s", failures.c_str());

  TablePrinter gluon_table({"budget", "mode", "bal.acc",
                            "inference kWh/inst", "saving vs default"});
  for (double budget : budgets) {
    double default_kwh = -1.0;
    for (const std::string& mode : {"autogluon", "autogluon_refit"}) {
      std::vector<double> accs;
      std::vector<double> kwhs;
      for (const RunRecord& record : Filter(gluon_records, mode, budget)) {
        accs.push_back(record.test_balanced_accuracy);
        kwhs.push_back(record.inference_kwh_per_instance);
      }
      const double kwh = ComputeStats(kwhs).mean;
      if (mode == "autogluon") default_kwh = kwh;
      gluon_table.AddRow(
          {StrFormat("%gs", budget),
           mode == "autogluon" ? "default" : "refit (fast inference)",
           StrFormat("%.3f", ComputeStats(accs).mean), FormatSci(kwh),
           mode == "autogluon" || default_kwh <= 0.0
               ? "-"
               : StrFormat("%.0f%%", 100.0 * (1.0 - kwh / default_kwh))});
    }
  }
  gluon_table.Print();
  std::printf(
      "\nPaper shape check: tighter constraints / refit reduce inference "
      "energy substantially at a modest accuracy cost; even optimized "
      "AutoGluon stays above unconstrained CAML (it still ensembles).\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
