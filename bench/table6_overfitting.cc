// Table 6: how often AutoML systems achieve WORSE accuracy with 5 minutes
// than with 1 minute of search — the overfitting count motivating early
// stopping (the paper finds up to 11/39 datasets, mostly small ones).

#include <cstdio>
#include <map>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/table_printer.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

int Main() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  ExperimentRunner runner(config);
  const std::vector<std::string> systems = {"caml", "flaml", "autogluon",
                                            "autosklearn1", "tpot"};
  auto sweep = runner.Sweep(systems, {60.0, 300.0});
  if (!sweep.ok()) return 1;
  const std::vector<RunRecord> records = OkOnly(*sweep);

  PrintBanner(
      "Table 6: datasets where 5min accuracy < 1min accuracy "
      "(overfitting / no early stopping)");
  TablePrinter table({"system", "overfitted datasets", "of", "worst set"});
  for (const std::string& system : DistinctSystems(records)) {
    // Mean accuracy per dataset per budget.
    std::map<std::string, std::map<double, std::vector<double>>> per_set;
    for (const RunRecord& r : records) {
      if (r.system != system) continue;
      per_set[r.dataset][r.paper_budget_seconds].push_back(
          r.test_balanced_accuracy);
    }
    int overfitted = 0;
    int total = 0;
    std::string worst;
    double worst_gap = 0.0;
    for (const auto& [dataset, by_budget] : per_set) {
      auto at_1m = by_budget.find(60.0);
      auto at_5m = by_budget.find(300.0);
      if (at_1m == by_budget.end() || at_5m == by_budget.end()) continue;
      ++total;
      const double gap = ComputeStats(at_1m->second).mean -
                         ComputeStats(at_5m->second).mean;
      if (gap > 1e-9) {
        ++overfitted;
        if (gap > worst_gap) {
          worst_gap = gap;
          worst = dataset;
        }
      }
    }
    table.AddRow({system, StrFormat("%d", overfitted),
                  StrFormat("%d", total),
                  worst.empty() ? "-" : worst});
  }
  table.Print();
  std::printf(
      "\nPaper shape: every system overfits on SOME datasets (up to "
      "11/39), concentrated on the small (<3k row) tasks — early "
      "stopping would save that energy outright.\n");
  return 0;
}

}  // namespace
}  // namespace green

int main() { return green::Main(); }
