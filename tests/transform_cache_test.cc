// Tests for zero-copy dataset views and the charge-replaying transform
// cache: CoW semantics, tape record/replay bit-identity, pipeline-level
// cache hits, LRU byte bounding, truncation safety, config signatures,
// and end-to-end record/scope-tree identity with the cache on vs off and
// across host worker counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "green/bench_util/experiment.h"
#include "green/bench_util/record_io.h"
#include "green/data/synthetic.h"
#include "green/ml/models/decision_tree.h"
#include "green/ml/pipeline.h"
#include "green/ml/preprocess/binning.h"
#include "green/ml/preprocess/feature_selection.h"
#include "green/ml/preprocess/imputer.h"
#include "green/ml/preprocess/one_hot.h"
#include "green/ml/preprocess/pca.h"
#include "green/ml/preprocess/scaler.h"
#include "green/ml/transform_cache.h"
#include "green/sim/execution_context.h"
#include "green/table/dataset.h"

namespace green {
namespace {

Dataset TestData(size_t rows, size_t features, int classes,
                 uint64_t seed = 7) {
  SyntheticSpec spec;
  spec.name = "tcache";
  spec.num_rows = rows;
  spec.num_features = features;
  spec.num_informative = features / 2;
  spec.num_classes = classes;
  spec.seed = seed;
  auto data = GenerateSynthetic(spec);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

// --- Dataset views / copy-on-write -----------------------------------

TEST(DatasetViewTest, SubsetIsAnO1StorageView) {
  const Dataset base = TestData(50, 6, 2);
  const Dataset view = base.Subset({3, 1, 4, 1, 40});
  EXPECT_TRUE(view.IsView());
  EXPECT_EQ(view.StorageId(), base.StorageId());
  EXPECT_EQ(view.num_rows(), 5u);
  EXPECT_EQ(view.num_features(), base.num_features());
  for (size_t j = 0; j < base.num_features(); ++j) {
    EXPECT_EQ(view.At(0, j), base.At(3, j));
    EXPECT_EQ(view.At(1, j), base.At(1, j));
    EXPECT_EQ(view.At(3, j), base.At(1, j));
    EXPECT_EQ(view.At(4, j), base.At(40, j));
  }
  EXPECT_EQ(view.Label(4), base.Label(40));
  // Views compose: a subset of a view maps through to the base rows.
  const Dataset nested = view.Subset({4, 0});
  EXPECT_EQ(nested.StorageId(), base.StorageId());
  EXPECT_EQ(nested.At(0, 0), base.At(40, 0));
  EXPECT_EQ(nested.At(1, 0), base.At(3, 0));
}

TEST(DatasetViewTest, MutationCopiesOnWriteAndNeverLeaks) {
  Dataset base = TestData(20, 4, 2);
  Dataset copy = base;
  EXPECT_EQ(copy.StorageId(), base.StorageId());  // Shared until mutated.
  const double before = base.At(0, 0);
  copy.Set(0, 0, before + 100.0);
  EXPECT_NE(copy.StorageId(), base.StorageId());
  EXPECT_EQ(base.At(0, 0), before);
  EXPECT_EQ(copy.At(0, 0), before + 100.0);

  Dataset view = base.Subset({5, 6});
  view.Set(1, 2, -77.0);
  EXPECT_FALSE(view.IsView());  // Collapsed by the write.
  EXPECT_EQ(view.At(1, 2), -77.0);
  EXPECT_NE(base.At(6, 2), -77.0);
}

TEST(DatasetViewTest, MaterializeCollapsesAndRoundTrips) {
  const Dataset base = TestData(30, 5, 3);
  Dataset view = base.Subset({2, 9, 17});
  Dataset dense = view;
  dense.Materialize();
  EXPECT_FALSE(dense.IsView());
  EXPECT_NE(dense.StorageId(), base.StorageId());
  ASSERT_EQ(dense.num_rows(), view.num_rows());
  for (size_t r = 0; r < dense.num_rows(); ++r) {
    EXPECT_EQ(dense.Label(r), view.Label(r));
    for (size_t j = 0; j < dense.num_features(); ++j) {
      EXPECT_EQ(dense.At(r, j), view.At(r, j));
    }
  }
  // Modeled footprint is representation-independent.
  EXPECT_EQ(dense.FeatureBytes(), view.FeatureBytes());
}

TEST(DatasetViewTest, ViewFingerprintSeparatesDistinctViews) {
  const Dataset base = TestData(25, 4, 2);
  EXPECT_NE(base.Subset({1, 2, 3}).ViewFingerprint(),
            base.Subset({3, 2, 1}).ViewFingerprint());
  EXPECT_EQ(base.Subset({1, 2, 3}).ViewFingerprint(),
            base.Subset({1, 2, 3}).ViewFingerprint());
}

// --- Charge tape record / replay -------------------------------------

TEST(ChargeTapeTest, ReplayIsBitIdenticalToRecording) {
  EnergyModel model(MachineModel::Minimal());
  VirtualClock clock_a, clock_b;
  ExecutionContext recorded(&clock_a, &model, 1);
  ExecutionContext replayed(&clock_b, &model, 1);
  EnergyMeter meter_a(&model), meter_b(&model);
  meter_a.Start(0.0);
  meter_b.Start(0.0);
  recorded.SetMeter(&meter_a);
  replayed.SetMeter(&meter_b);

  ChargeTape tape;
  {
    ChargeScope fit(&recorded, "fit");
    ASSERT_TRUE(recorded.StartTapeRecording(&tape));
    {
      ChargeScope t(&recorded, "scaler");
      recorded.ChargeCpu(3e6, 128.0);
    }
    {
      ChargeScope t(&recorded, "pca");
      recorded.ChargeCpu(7e6, 256.0, /*parallel_fraction=*/0.85);
      recorded.ChargeCpu(1e5, 0.0);
    }
    recorded.StopTapeRecording();
  }
  ASSERT_EQ(tape.entries.size(), 3u);
  EXPECT_GT(tape.ApproxBytes(), 0u);

  {
    ChargeScope fit(&replayed, "fit");
    replayed.ReplayTape(tape);
  }

  EXPECT_EQ(replayed.Now(), recorded.Now());
  const EnergyReading a = meter_a.Stop(recorded.Now());
  const EnergyReading b = meter_b.Stop(replayed.Now());
  EXPECT_EQ(a.breakdown.TotalJoules(), b.breakdown.TotalJoules());
  ASSERT_EQ(a.scopes.size(), b.scopes.size());
  for (const auto& [path, charge] : a.scopes) {
    ASSERT_EQ(b.scopes.count(path), 1u) << path;
    EXPECT_EQ(b.scopes.at(path).joules, charge.joules) << path;
    EXPECT_EQ(b.scopes.at(path).seconds, charge.seconds) << path;
    EXPECT_EQ(b.scopes.at(path).charges, charge.charges) << path;
  }
}

// --- Pipeline-level cache behavior -----------------------------------

Pipeline MakePipeline() {
  Pipeline p;
  p.AddTransformer(std::make_unique<MeanModeImputer>());
  p.AddTransformer(std::make_unique<Scaler>(ScalerKind::kStandard));
  DecisionTreeParams params;
  params.max_depth = 4;
  p.SetModel(std::make_unique<DecisionTree>(params));
  return p;
}

TEST(TransformCachePipelineTest, HitIsBitIdenticalAndSkipsRefit) {
  const Dataset base = TestData(120, 6, 2);
  const Dataset train = base.Subset({0,  1,  2,  3,  4,  5,  6,  7,
                                     8,  9,  10, 11, 12, 13, 14, 15,
                                     16, 17, 18, 19, 20, 21, 22, 23});
  const Dataset test = base.Subset({30, 31, 32, 33, 34, 35, 36, 37});
  EnergyModel model(MachineModel::Minimal());
  TransformCache cache(64 * 1024 * 1024);

  auto run = [&](TransformCache* c) {
    VirtualClock clock;
    ExecutionContext ctx(&clock, &model, 1);
    EnergyMeter meter(&model);
    meter.Start(0.0);
    ctx.SetMeter(&meter);
    if (c != nullptr) ctx.SetTransformCache(c);
    Pipeline p = MakePipeline();
    EXPECT_TRUE(p.Fit(train, &ctx).ok());
    auto pred = p.Predict(test, &ctx);
    EXPECT_TRUE(pred.ok());
    return std::make_tuple(ctx.Now(), meter.Stop(ctx.Now()),
                           std::move(pred).value());
  };

  const auto cold = run(&cache);      // Miss: fits and records.
  const auto warm = run(&cache);      // Hit: replays the tape.
  const auto uncached = run(nullptr);  // No cache at all.

  const TransformCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.insertions, 1u);
  EXPECT_EQ(stats.predict_hits, 1u);

  EXPECT_EQ(std::get<0>(cold), std::get<0>(warm));
  EXPECT_EQ(std::get<0>(cold), std::get<0>(uncached));
  EXPECT_EQ(std::get<1>(cold).breakdown.TotalJoules(),
            std::get<1>(warm).breakdown.TotalJoules());
  EXPECT_EQ(std::get<1>(cold).breakdown.TotalJoules(),
            std::get<1>(uncached).breakdown.TotalJoules());
  EXPECT_EQ(std::get<2>(cold), std::get<2>(warm));
  EXPECT_EQ(std::get<2>(cold), std::get<2>(uncached));
}

TEST(TransformCachePipelineTest, AdoptedPipelineRefusesRefit) {
  const Dataset train = TestData(60, 5, 2);
  EnergyModel model(MachineModel::Minimal());
  TransformCache cache(16 * 1024 * 1024);
  VirtualClock clock;
  ExecutionContext ctx(&clock, &model, 1);
  ctx.SetTransformCache(&cache);

  Pipeline p = MakePipeline();
  ASSERT_TRUE(p.Fit(train, &ctx).ok());
  // The chain was donated to the cache on the miss: the pipeline now
  // shares transformer instances with it and must refuse a refit.
  EXPECT_EQ(p.Fit(train, &ctx).code(), Status::Code::kFailedPrecondition);
}

TEST(TransformCachePipelineTest, TruncatedFitIsNeverMemoized) {
  const Dataset train = TestData(200, 8, 2);
  EnergyModel model(MachineModel::Minimal());
  TransformCache cache(16 * 1024 * 1024);
  VirtualClock clock;
  ExecutionContext ctx(&clock, &model, 1);
  ctx.SetTransformCache(&cache);
  // Hard-deadline mode with the deadline already expired and slicing
  // forced on: the first sliced charge truncates mid-way.
  ctx.SetMaxSliceSeconds(1e-12);
  ctx.SetHardDeadline(true);
  ctx.SetDeadline(clock.Now());

  Pipeline p = MakePipeline();
  EXPECT_FALSE(p.Fit(train, &ctx).ok());
  EXPECT_TRUE(ctx.charge_truncated());
  const TransformCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// --- Cache bounding --------------------------------------------------

TEST(TransformCacheTest, LruStaysWithinByteBudgetAndEvicts) {
  const Dataset data = TestData(500, 10, 2);  // ~40 KB dense.
  TransformCache cache(100 * 1024);
  for (int i = 0; i < 6; ++i) {
    cache.Insert(data, "chain" + std::to_string(i), {}, data, ChargeTape{});
  }
  const TransformCacheStats stats = cache.Stats();
  EXPECT_LE(stats.bytes, 100u * 1024u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.insertions, 6u);
  EXPECT_LT(stats.entries, 6u);
  // The most recent chain survived; the oldest was evicted.
  EXPECT_NE(cache.Lookup(data, "chain5"), nullptr);
  EXPECT_EQ(cache.Lookup(data, "chain0"), nullptr);
}

TEST(TransformCacheTest, OversizedEntryIsNeverAdmitted) {
  const Dataset data = TestData(500, 10, 2);
  TransformCache cache(1024);  // Smaller than one entry.
  EXPECT_EQ(cache.Insert(data, "chain", {}, data, ChargeTape{}), nullptr);
  const TransformCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(TransformCacheTest, LookupIsExactOnViewNotJustFingerprint) {
  const Dataset base = TestData(40, 4, 2);
  const Dataset view_a = base.Subset({1, 2, 3});
  const Dataset view_b = base.Subset({1, 2, 4});
  TransformCache cache(16 * 1024 * 1024);
  ASSERT_NE(cache.Insert(view_a, "chain", {}, view_a, ChargeTape{}),
            nullptr);
  EXPECT_NE(cache.Lookup(view_a, "chain"), nullptr);
  EXPECT_EQ(cache.Lookup(view_b, "chain"), nullptr);
  EXPECT_EQ(cache.Lookup(view_a, "other"), nullptr);
}

// --- Config signatures -----------------------------------------------

TEST(ConfigSignatureTest, HyperparametersAreEncoded) {
  EXPECT_NE(QuantileBinner(4).ConfigSignature(),
            QuantileBinner(8).ConfigSignature());
  EXPECT_NE(SelectKBest(2).ConfigSignature(),
            SelectKBest(3).ConfigSignature());
  EXPECT_NE(VarianceThreshold(0.0).ConfigSignature(),
            VarianceThreshold(0.5).ConfigSignature());
  EXPECT_NE(Pca(2).ConfigSignature(), Pca(3).ConfigSignature());
  EXPECT_NE(OneHotEncoder(8).ConfigSignature(),
            OneHotEncoder(16).ConfigSignature());
  EXPECT_NE(Scaler(ScalerKind::kStandard).ConfigSignature(),
            Scaler(ScalerKind::kMinMax).ConfigSignature());
  EXPECT_EQ(Pca(2).ConfigSignature(), Pca(2).ConfigSignature());
}

// --- End-to-end sweep identity ---------------------------------------

std::string SerializeAll(const std::vector<RunRecord>& records) {
  std::string out;
  for (const RunRecord& r : records) out += RecordToJson(r) + "\n";
  return out;
}

ExperimentConfig SmallSweepConfig() {
  ExperimentConfig config;
  config.dataset_limit = 2;
  config.repetitions = 1;
  config.collect_scopes = true;  // Identity must cover the scope trees.
  return config;
}

TEST(TransformCacheSweepTest, RecordsAndScopesIdenticalCacheOnOff) {
  ExperimentConfig on = SmallSweepConfig();
  on.transform_cache = true;
  ExperimentConfig off = SmallSweepConfig();
  off.transform_cache = false;

  ExperimentRunner runner_on(on), runner_off(off);
  auto records_on = runner_on.Sweep({"caml", "flaml"}, {10.0});
  auto records_off = runner_off.Sweep({"caml", "flaml"}, {10.0});
  ASSERT_TRUE(records_on.ok());
  ASSERT_TRUE(records_off.ok());
  EXPECT_EQ(SerializeAll(records_on.value()),
            SerializeAll(records_off.value()));

  const TransformCacheStats stats = runner_on.transform_cache_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_EQ(runner_off.transform_cache_stats().hits, 0u);
}

TEST(TransformCacheSweepTest, RecordsIdenticalAcrossWorkerCounts) {
  ExperimentConfig seq = SmallSweepConfig();
  seq.jobs = 1;
  ExperimentConfig par = SmallSweepConfig();
  par.jobs = 4;

  ExperimentRunner runner_seq(seq), runner_par(par);
  auto records_seq = runner_seq.Sweep({"caml", "flaml"}, {10.0});
  auto records_par = runner_par.Sweep({"caml", "flaml"}, {10.0});
  ASSERT_TRUE(records_seq.ok());
  ASSERT_TRUE(records_par.ok());
  EXPECT_EQ(SerializeAll(records_seq.value()),
            SerializeAll(records_par.value()));
}

TEST(TransformCacheSweepTest, EnvKnobsParse) {
  EXPECT_GE(TransformCacheMbFromEnv(), 1.0);
  TransformCacheFromEnv();  // Must not crash; value depends on env.
}

}  // namespace
}  // namespace green
