#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "green/common/logging.h"
#include "green/common/mathutil.h"
#include "green/common/rng.h"
#include "green/common/status.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OUT_OF_RANGE: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FAILED_PRECONDITION: x");
  EXPECT_EQ(Status::Unimplemented("x").ToString(), "UNIMPLEMENTED: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
  EXPECT_EQ(Status::IoError("x").ToString(), "IO_ERROR: x");
  EXPECT_EQ(Status::ResourceExhausted("x").ToString(),
            "RESOURCE_EXHAUSTED: x");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  GREEN_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(UseHalf(3, &out).code(), Status::Code::kInvalidArgument);
}

// --- Rng ---

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleEmptyIsNoop) {
  Rng rng(1);
  std::vector<int> v;
  rng.Shuffle(&v);
  EXPECT_TRUE(v.empty());
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, HashCombineAndStringStable) {
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashString("credit-g"), HashString("credit-g"));
  EXPECT_NE(HashString("credit-g"), HashString("adult"));
}

// --- mathutil ---

TEST(MathTest, SoftmaxNormalizes) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  SoftmaxInPlace(&v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_GT(v[2], v[1]);
  EXPECT_GT(v[1], v[0]);
}

TEST(MathTest, SoftmaxHandlesLargeValues) {
  std::vector<double> v = {1000.0, 1000.0};
  SoftmaxInPlace(&v);
  EXPECT_NEAR(v[0], 0.5, 1e-12);
}

TEST(MathTest, LogSumExp) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, MeanStdDevMedian) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_NEAR(Mean(v), 3.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(Median(v), 3.0, 1e-12);
  EXPECT_NEAR(Median({1, 2, 3, 4}), 2.5, 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
}

TEST(MathTest, QuantileInterpolates) {
  std::vector<double> v = {0, 10, 20, 30, 40};
  EXPECT_NEAR(Quantile(v, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 1.0), 40.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.5), 20.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.25), 10.0, 1e-12);
}

TEST(MathTest, DotAndDistance) {
  EXPECT_NEAR(Dot({1, 2}, {3, 4}), 11.0, 1e-12);
  EXPECT_NEAR(SquaredDistance({0, 0}, {3, 4}), 25.0, 1e-12);
}

TEST(MathTest, SigmoidBoundsAndMidpoint) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_GT(Sigmoid(100.0), 0.999);
  EXPECT_LT(Sigmoid(-100.0), 0.001);
}

TEST(MathTest, ArgMaxAndClamp) {
  EXPECT_EQ(ArgMax({0.1, 0.7, 0.2}), 1u);
  EXPECT_EQ(ArgMax({}), 0u);
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

// --- stringutil ---

TEST(StringTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StringTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(404649), "404,649");
  EXPECT_EQ(FormatWithCommas(1000000), "1,000,000");
  EXPECT_EQ(FormatWithCommas(-1234), "-1,234");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("intel-rapl:0", "intel-rapl"));
  EXPECT_FALSE(StartsWith("x", "xy"));
  EXPECT_TRUE(EndsWith("col#cat", "#cat"));
  EXPECT_FALSE(EndsWith("cat", "#cat"));
}

// --- logging ---

TEST(LoggingTest, LevelFilterRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  LogInfo("should be invisible");  // Must not crash.
  SetLogLevel(original);
}

}  // namespace
}  // namespace green
