#include <gtest/gtest.h>

#include <cmath>

#include "green/common/rng.h"
#include "green/ml/preprocess/feature_selection.h"
#include "green/ml/preprocess/imputer.h"
#include "green/ml/preprocess/one_hot.h"
#include "green/ml/preprocess/scaler.h"

namespace green {
namespace {

class PreprocessTest : public ::testing::Test {
 protected:
  PreprocessTest()
      : model_(MachineModel::Minimal()), ctx_(&clock_, &model_, 1) {}

  VirtualClock clock_;
  EnergyModel model_;
  ExecutionContext ctx_;
};

Dataset WithMissing() {
  Dataset data("m", 2, 2);
  data.SetFeatureType(1, FeatureType::kCategorical);
  EXPECT_TRUE(data.AppendRow({1.0, 0.0}, 0).ok());
  EXPECT_TRUE(data.AppendRow({NAN, 1.0}, 1).ok());
  EXPECT_TRUE(data.AppendRow({3.0, NAN}, 0).ok());
  EXPECT_TRUE(data.AppendRow({5.0, 1.0}, 1).ok());
  return data;
}

// --- Imputer ---

TEST_F(PreprocessTest, ImputerFillsMeanAndMode) {
  MeanModeImputer imputer;
  const Dataset data = WithMissing();
  ASSERT_TRUE(imputer.Fit(data, &ctx_).ok());
  auto out = imputer.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->At(1, 0), 3.0, 1e-12);  // Mean of {1,3,5}.
  EXPECT_DOUBLE_EQ(out->At(2, 1), 1.0);    // Mode of {0,1,1}.
  for (size_t r = 0; r < out->num_rows(); ++r) {
    for (size_t j = 0; j < out->num_features(); ++j) {
      EXPECT_FALSE(std::isnan(out->At(r, j)));
    }
  }
}

TEST_F(PreprocessTest, ImputerErrors) {
  MeanModeImputer imputer;
  const Dataset data = WithMissing();
  EXPECT_FALSE(imputer.Transform(data, &ctx_).ok());  // Not fitted.
  ASSERT_TRUE(imputer.Fit(data, &ctx_).ok());
  Dataset wrong("w", 3, 2);
  ASSERT_TRUE(wrong.AppendRow({1, 2, 3}, 0).ok());
  EXPECT_FALSE(imputer.Transform(wrong, &ctx_).ok());
  Dataset empty("e", 2, 2);
  EXPECT_FALSE(imputer.Fit(empty, &ctx_).ok());
}

TEST_F(PreprocessTest, ImputerChargesWork) {
  MeanModeImputer imputer;
  const Dataset data = WithMissing();
  const double before = ctx_.counter()->total_flops();
  ASSERT_TRUE(imputer.Fit(data, &ctx_).ok());
  EXPECT_GT(ctx_.counter()->total_flops(), before);
}

// --- Scaler ---

TEST_F(PreprocessTest, StandardScalerNormalizes) {
  Dataset data("s", 1, 2);
  for (double v : {2.0, 4.0, 6.0, 8.0}) {
    ASSERT_TRUE(data.AppendRow({v}, 0).ok());
  }
  Scaler scaler(ScalerKind::kStandard);
  ASSERT_TRUE(scaler.Fit(data, &ctx_).ok());
  auto out = scaler.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  double mean = 0.0;
  for (size_t r = 0; r < 4; ++r) mean += out->At(r, 0);
  EXPECT_NEAR(mean / 4.0, 0.0, 1e-12);
  double var = 0.0;
  for (size_t r = 0; r < 4; ++r) var += out->At(r, 0) * out->At(r, 0);
  EXPECT_NEAR(var / 4.0, 1.0, 1e-12);
}

TEST_F(PreprocessTest, MinMaxScalerToUnitRange) {
  Dataset data("s", 1, 2);
  for (double v : {-10.0, 0.0, 30.0}) {
    ASSERT_TRUE(data.AppendRow({v}, 0).ok());
  }
  Scaler scaler(ScalerKind::kMinMax);
  ASSERT_TRUE(scaler.Fit(data, &ctx_).ok());
  auto out = scaler.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out->At(2, 0), 1.0);
  EXPECT_NEAR(out->At(1, 0), 0.25, 1e-12);
}

TEST_F(PreprocessTest, ScalerSkipsCategorical) {
  Dataset data("s", 2, 2);
  data.SetFeatureType(1, FeatureType::kCategorical);
  ASSERT_TRUE(data.AppendRow({10.0, 3.0}, 0).ok());
  ASSERT_TRUE(data.AppendRow({20.0, 5.0}, 1).ok());
  Scaler scaler(ScalerKind::kStandard);
  ASSERT_TRUE(scaler.Fit(data, &ctx_).ok());
  auto out = scaler.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->At(0, 1), 3.0);  // Untouched.
  EXPECT_DOUBLE_EQ(out->At(1, 1), 5.0);
}

TEST_F(PreprocessTest, ScalerConstantColumnSafe) {
  Dataset data("s", 1, 2);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(data.AppendRow({7.0}, 0).ok());
  Scaler scaler(ScalerKind::kStandard);
  ASSERT_TRUE(scaler.Fit(data, &ctx_).ok());
  auto out = scaler.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(std::isnan(out->At(0, 0)));
  EXPECT_FALSE(std::isinf(out->At(0, 0)));
}

// --- OneHot ---

TEST_F(PreprocessTest, OneHotExpandsCategoricals) {
  Dataset data("o", 2, 2);
  data.SetFeatureType(1, FeatureType::kCategorical);
  ASSERT_TRUE(data.AppendRow({1.5, 0.0}, 0).ok());
  ASSERT_TRUE(data.AppendRow({2.5, 2.0}, 1).ok());
  ASSERT_TRUE(data.AppendRow({3.5, 1.0}, 0).ok());
  OneHotEncoder encoder;
  ASSERT_TRUE(encoder.Fit(data, &ctx_).ok());
  EXPECT_EQ(encoder.output_width(), 1u + 3u);
  auto out = encoder.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_features(), 4u);
  EXPECT_DOUBLE_EQ(out->At(0, 0), 1.5);  // Numeric pass-through.
  EXPECT_DOUBLE_EQ(out->At(0, 1), 1.0);  // Code 0 indicator.
  EXPECT_DOUBLE_EQ(out->At(1, 3), 1.0);  // Code 2 indicator.
  EXPECT_DOUBLE_EQ(out->At(1, 1), 0.0);
}

TEST_F(PreprocessTest, OneHotUnseenCategoryAllZeros) {
  Dataset train("o", 1, 2);
  train.SetFeatureType(0, FeatureType::kCategorical);
  ASSERT_TRUE(train.AppendRow({0.0}, 0).ok());
  ASSERT_TRUE(train.AppendRow({1.0}, 1).ok());
  OneHotEncoder encoder;
  ASSERT_TRUE(encoder.Fit(train, &ctx_).ok());
  Dataset test("o", 1, 2);
  test.SetFeatureType(0, FeatureType::kCategorical);
  ASSERT_TRUE(test.AppendRow({5.0}, 0).ok());  // Unseen code.
  auto out = encoder.Transform(test, &ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out->At(0, 1), 0.0);
}

TEST_F(PreprocessTest, OneHotHighCardinalityGuard) {
  Dataset data("o", 1, 2);
  data.SetFeatureType(0, FeatureType::kCategorical);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(data.AppendRow({static_cast<double>(i)}, i % 2).ok());
  }
  OneHotEncoder encoder(/*max_cardinality=*/32);
  ASSERT_TRUE(encoder.Fit(data, &ctx_).ok());
  // 100 categories exceed the guard: passed through as a single column.
  EXPECT_EQ(encoder.output_width(), 1u);
}

TEST_F(PreprocessTest, OneHotOutputWidthHelper) {
  OneHotEncoder encoder;
  EXPECT_EQ(encoder.OutputWidth(7), 7u);  // Before fit: identity.
}

// --- VarianceThreshold ---

TEST_F(PreprocessTest, VarianceThresholdDropsConstant) {
  Dataset data("v", 3, 2);
  ASSERT_TRUE(data.AppendRow({1.0, 5.0, 0.0}, 0).ok());
  ASSERT_TRUE(data.AppendRow({2.0, 5.0, 0.0}, 1).ok());
  ASSERT_TRUE(data.AppendRow({3.0, 5.0, 0.0}, 0).ok());
  VarianceThreshold selector(0.0);
  ASSERT_TRUE(selector.Fit(data, &ctx_).ok());
  EXPECT_EQ(selector.kept_columns(), std::vector<size_t>{0});
  auto out = selector.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_features(), 1u);
}

TEST_F(PreprocessTest, VarianceThresholdKeepsAtLeastOne) {
  Dataset data("v", 2, 2);
  ASSERT_TRUE(data.AppendRow({5.0, 5.0}, 0).ok());
  ASSERT_TRUE(data.AppendRow({5.0, 5.0}, 1).ok());
  VarianceThreshold selector(0.0);
  ASSERT_TRUE(selector.Fit(data, &ctx_).ok());
  EXPECT_EQ(selector.kept_columns().size(), 1u);
}

// --- SelectKBest ---

TEST_F(PreprocessTest, SelectKBestPrefersInformative) {
  // Column 0 separates classes; column 1 is noise.
  Dataset data("k", 2, 2);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int y = i % 2;
    ASSERT_TRUE(
        data.AppendRow({y == 0 ? -2.0 + rng.NextGaussian() * 0.1
                               : 2.0 + rng.NextGaussian() * 0.1,
                        rng.NextGaussian()},
                       y)
            .ok());
  }
  SelectKBest selector(1);
  ASSERT_TRUE(selector.Fit(data, &ctx_).ok());
  EXPECT_EQ(selector.kept_columns(), std::vector<size_t>{0});
}

TEST_F(PreprocessTest, SelectKBestCapsAtWidth) {
  Dataset data("k", 2, 2);
  ASSERT_TRUE(data.AppendRow({1.0, 2.0}, 0).ok());
  ASSERT_TRUE(data.AppendRow({2.0, 1.0}, 1).ok());
  SelectKBest selector(10);
  ASSERT_TRUE(selector.Fit(data, &ctx_).ok());
  EXPECT_EQ(selector.kept_columns().size(), 2u);
  EXPECT_EQ(selector.OutputWidth(2), 2u);
}

TEST_F(PreprocessTest, SelectorsRequireFit) {
  Dataset data = WithMissing();
  SelectKBest sk(1);
  VarianceThreshold vt(0.0);
  EXPECT_FALSE(sk.Transform(data, &ctx_).ok());
  EXPECT_FALSE(vt.Transform(data, &ctx_).ok());
}

}  // namespace
}  // namespace green
