// Tests for the optional/extension features beyond the paper's core
// measurement campaign: PCA and quantile binning preprocessors, AdaBoost,
// the random-search baseline system, CAML early stopping (§3.8) and the
// CO2-aware search objective (§1 / [47]).

#include <gtest/gtest.h>

#include <cmath>

#include "green/automl/caml_system.h"
#include "green/automl/random_search_system.h"
#include "green/data/synthetic.h"
#include "green/ml/metrics.h"
#include "green/ml/model_registry.h"
#include "green/ml/models/adaboost.h"
#include "green/ml/preprocess/binning.h"
#include "green/ml/preprocess/pca.h"
#include "green/table/split.h"

namespace green {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest()
      : energy_model_(MachineModel::Minimal()),
        ctx_(&clock_, &energy_model_, 1) {}

  Dataset MakeTask(int classes = 2, size_t rows = 300,
                   double separation = 3.0, uint64_t seed = 17) {
    SyntheticSpec spec;
    spec.name = "ext";
    spec.num_rows = rows;
    spec.num_features = 10;
    spec.num_informative = 6;
    spec.num_classes = classes;
    spec.separation = separation;
    spec.seed = seed;
    auto data = GenerateSynthetic(spec);
    EXPECT_TRUE(data.ok());
    return std::move(data).value();
  }

  VirtualClock clock_;
  EnergyModel energy_model_;
  ExecutionContext ctx_;
};

// --- PCA ---

TEST_F(ExtensionsTest, PcaProjectsToRequestedWidth) {
  const Dataset data = MakeTask();
  Pca pca(3);
  ASSERT_TRUE(pca.Fit(data, &ctx_).ok());
  EXPECT_EQ(pca.components_fitted(), 3u);
  auto out = pca.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_features(), 3u);
  EXPECT_EQ(out->num_rows(), data.num_rows());
  EXPECT_EQ(pca.OutputWidth(10), 3u);
}

TEST_F(ExtensionsTest, PcaFirstComponentCapturesMostVariance) {
  const Dataset data = MakeTask();
  Pca pca(4);
  ASSERT_TRUE(pca.Fit(data, &ctx_).ok());
  const auto& ratios = pca.explained_variance_ratio();
  ASSERT_EQ(ratios.size(), 4u);
  for (size_t i = 1; i < ratios.size(); ++i) {
    EXPECT_GE(ratios[i - 1], ratios[i] - 0.05);
  }
  double total = 0.0;
  for (double r : ratios) {
    EXPECT_GE(r, 0.0);
    total += r;
  }
  EXPECT_LE(total, 1.0 + 1e-6);
}

TEST_F(ExtensionsTest, PcaRecoversDominantDirection) {
  // Data on a line y = 2x (plus tiny noise): one component captures
  // nearly everything.
  Dataset data("line", 2, 2);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.NextGaussian();
    ASSERT_TRUE(
        data.AppendRow({t, 2.0 * t + rng.NextGaussian() * 0.01}, i % 2)
            .ok());
  }
  Pca pca(1);
  ASSERT_TRUE(pca.Fit(data, &ctx_).ok());
  EXPECT_GT(pca.explained_variance_ratio()[0], 0.99);
}

TEST_F(ExtensionsTest, PcaErrors) {
  Pca pca(2);
  const Dataset data = MakeTask();
  EXPECT_FALSE(pca.Transform(data, &ctx_).ok());  // Not fitted.
  Dataset one_row("o", 3, 2);
  ASSERT_TRUE(one_row.AppendRow({1, 2, 3}, 0).ok());
  EXPECT_FALSE(pca.Fit(one_row, &ctx_).ok());
}

TEST_F(ExtensionsTest, PcaCapsComponentsAtWidth) {
  const Dataset data = MakeTask();
  Pca pca(100);
  ASSERT_TRUE(pca.Fit(data, &ctx_).ok());
  EXPECT_EQ(pca.components_fitted(), data.num_features());
}

// --- QuantileBinner ---

TEST_F(ExtensionsTest, BinnerProducesIntegerCodesInRange) {
  const Dataset data = MakeTask();
  QuantileBinner binner(4);
  ASSERT_TRUE(binner.Fit(data, &ctx_).ok());
  auto out = binner.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  for (size_t r = 0; r < out->num_rows(); ++r) {
    for (size_t j = 0; j < out->num_features(); ++j) {
      const double v = out->At(r, j);
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 4.0);
      EXPECT_DOUBLE_EQ(v, std::floor(v));
    }
  }
}

TEST_F(ExtensionsTest, BinnerQuantilesAreBalanced) {
  Dataset data("u", 1, 2);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(data.AppendRow({rng.NextDouble()}, i % 2).ok());
  }
  QuantileBinner binner(4);
  ASSERT_TRUE(binner.Fit(data, &ctx_).ok());
  auto out = binner.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  std::vector<int> counts(4, 0);
  for (size_t r = 0; r < out->num_rows(); ++r) {
    ++counts[static_cast<size_t>(out->At(r, 0))];
  }
  for (int c : counts) EXPECT_NEAR(c, 250, 30);
}

TEST_F(ExtensionsTest, BinnerSkipsCategoricalAndMissing) {
  Dataset data("c", 2, 2);
  data.SetFeatureType(1, FeatureType::kCategorical);
  ASSERT_TRUE(data.AppendRow({1.0, 7.0}, 0).ok());
  ASSERT_TRUE(data.AppendRow({NAN, 7.0}, 1).ok());
  ASSERT_TRUE(data.AppendRow({3.0, 7.0}, 0).ok());
  QuantileBinner binner(2);
  ASSERT_TRUE(binner.Fit(data, &ctx_).ok());
  auto out = binner.Transform(data, &ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->At(0, 1), 7.0);          // Categorical untouched.
  EXPECT_TRUE(std::isnan(out->At(1, 0)));        // Missing stays missing.
}

TEST_F(ExtensionsTest, BinnerRejectsBadConfig) {
  QuantileBinner binner(1);
  EXPECT_FALSE(binner.Fit(MakeTask(), &ctx_).ok());
}

// --- AdaBoost ---

TEST_F(ExtensionsTest, AdaBoostLearnsSeparableData) {
  const Dataset data = MakeTask(2, 300, 4.0);
  AdaBoost model{AdaBoostParams{}};
  ASSERT_TRUE(model.Fit(data, &ctx_).ok());
  auto preds = model.Predict(data, &ctx_);
  ASSERT_TRUE(preds.ok());
  EXPECT_GT(BalancedAccuracy(data.labels(), preds.value(), 2), 0.9);
  EXPECT_GT(model.rounds_fitted(), 0);
}

TEST_F(ExtensionsTest, AdaBoostHandlesMulticlass) {
  const Dataset data = MakeTask(4, 400, 4.0);
  AdaBoostParams params;
  params.num_rounds = 40;
  params.max_depth = 3;
  AdaBoost model(params);
  ASSERT_TRUE(model.Fit(data, &ctx_).ok());
  auto proba = model.PredictProba(data, &ctx_);
  ASSERT_TRUE(proba.ok());
  for (const auto& row : *proba) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  auto preds = model.Predict(data, &ctx_);
  EXPECT_GT(BalancedAccuracy(data.labels(), preds.value(), 4), 0.75);
}

TEST_F(ExtensionsTest, AdaBoostStumpsBeatSingleStump) {
  const Dataset data = MakeTask(2, 400, 1.6, 23);
  AdaBoostParams boosted_params;
  boosted_params.num_rounds = 30;
  boosted_params.max_depth = 1;
  AdaBoost boosted(boosted_params);
  DecisionTreeParams stump_params;
  stump_params.max_depth = 1;
  DecisionTree stump(stump_params);
  ASSERT_TRUE(boosted.Fit(data, &ctx_).ok());
  ASSERT_TRUE(stump.Fit(data, &ctx_).ok());
  const double boosted_acc = BalancedAccuracy(
      data.labels(), boosted.Predict(data, &ctx_).value(), 2);
  const double stump_acc = BalancedAccuracy(
      data.labels(), stump.Predict(data, &ctx_).value(), 2);
  EXPECT_GE(boosted_acc, stump_acc - 0.02);
}

TEST_F(ExtensionsTest, AdaBoostInRegistry) {
  PipelineConfig config;
  config.model = "adaboost";
  config.params["num_rounds"] = 10;
  auto pipeline = BuildPipeline(config);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(pipeline->Fit(MakeTask(), &ctx_).ok());
  EXPECT_GT(EstimateTrainCost(config, 1000, 10, 2), 0.0);
  EXPECT_GT(EstimatePredictCost(config, 1000, 10, 10, 2), 0.0);
}

// --- pipeline configs with the new preprocessors ---

TEST_F(ExtensionsTest, PipelineWithPcaAndBinning) {
  const Dataset data = MakeTask();
  PipelineConfig config;
  config.model = "logistic_regression";
  config.pca_components = 4;
  config.quantile_binning = true;
  auto pipeline = BuildPipeline(config);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(pipeline->Fit(data, &ctx_).ok());
  auto preds = pipeline->Predict(data, &ctx_);
  ASSERT_TRUE(preds.ok());
  EXPECT_GT(BalancedAccuracy(data.labels(), preds.value(), 2), 0.7);
  const std::string desc = config.Describe();
  EXPECT_NE(desc.find("pca4"), std::string::npos);
  EXPECT_NE(desc.find("bin"), std::string::npos);
}

// --- RandomSearchSystem ---

TEST_F(ExtensionsTest, RandomSearchFindsWorkingPipeline) {
  const Dataset data = MakeTask(2, 260, 2.6);
  Rng rng(8);
  TrainTestData split =
      Materialize(data, StratifiedSplit(data, 0.66, &rng));
  RandomSearchSystem system;
  AutoMlOptions options;
  options.search_budget_seconds = 3.0;
  options.seed = 42;
  auto run = system.Fit(split.train, options, &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->artifact.NumPipelines(), 1u);
  auto preds = run->artifact.Predict(split.test, &ctx_);
  ASSERT_TRUE(preds.ok());
  EXPECT_GT(BalancedAccuracy(split.test.labels(), preds.value(), 2), 0.7);
  EXPECT_EQ(system.budget_policy(), BudgetPolicyKind::kStrict);
  EXPECT_LE(run->actual_seconds, 3.0 * 1.3);  // Strict-ish adherence.
}

TEST_F(ExtensionsTest, BayesOptBeatsRandomSearchOnAverage) {
  // The premise behind the paper's amortization argument [2, 64]: with
  // equal budgets, guided search should not lose to random sampling.
  const Dataset data = MakeTask(3, 300, 1.8, 31);
  double bo_sum = 0.0;
  double random_sum = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Rng rng(100 + rep);
    TrainTestData split =
        Materialize(data, StratifiedSplit(data, 0.66, &rng));
    AutoMlOptions options;
    options.search_budget_seconds = 4.0;
    options.seed = 500 + rep;
    CamlSystem caml;
    RandomSearchSystem random;
    auto bo_run = caml.Fit(split.train, options, &ctx_);
    auto random_run = random.Fit(split.train, options, &ctx_);
    ASSERT_TRUE(bo_run.ok() && random_run.ok());
    auto bo_preds = bo_run->artifact.Predict(split.test, &ctx_);
    auto random_preds = random_run->artifact.Predict(split.test, &ctx_);
    ASSERT_TRUE(bo_preds.ok() && random_preds.ok());
    bo_sum += BalancedAccuracy(split.test.labels(), bo_preds.value(), 3);
    random_sum +=
        BalancedAccuracy(split.test.labels(), random_preds.value(), 3);
  }
  EXPECT_GE(bo_sum, random_sum - 0.15);
}

// --- CAML early stopping (§3.8) ---

TEST_F(ExtensionsTest, EarlyStoppingSavesEnergy) {
  const Dataset data = MakeTask(2, 260, 4.0);  // Easy: converges fast.
  Rng rng(9);
  TrainTestData split =
      Materialize(data, StratifiedSplit(data, 0.66, &rng));
  AutoMlOptions options;
  options.search_budget_seconds = 6.0;
  options.seed = 77;

  CamlSystem unlimited;
  CamlParams stopping_params;
  stopping_params.early_stopping_patience = 3;
  CamlSystem stopping(stopping_params, "caml_es");

  auto run_unlimited = unlimited.Fit(split.train, options, &ctx_);
  auto run_stopping = stopping.Fit(split.train, options, &ctx_);
  ASSERT_TRUE(run_unlimited.ok() && run_stopping.ok());
  // On an easy task the stopper ends well before the budget and burns
  // less energy, at (near-)equal accuracy.
  EXPECT_LT(run_stopping->actual_seconds,
            run_unlimited->actual_seconds * 0.9);
  EXPECT_LT(run_stopping->execution.kwh(),
            run_unlimited->execution.kwh());
  auto preds_unlimited =
      run_unlimited->artifact.Predict(split.test, &ctx_);
  auto preds_stopping = run_stopping->artifact.Predict(split.test, &ctx_);
  ASSERT_TRUE(preds_unlimited.ok() && preds_stopping.ok());
  EXPECT_GE(BalancedAccuracy(split.test.labels(), preds_stopping.value(),
                             2),
            BalancedAccuracy(split.test.labels(),
                             preds_unlimited.value(), 2) -
                0.08);
}

// --- CO2-aware objective (§1 / [47]) ---

TEST_F(ExtensionsTest, EnergyWeightPrefersCheaperPipelines) {
  const Dataset data = MakeTask(2, 300, 2.2, 41);
  Rng rng(10);
  TrainTestData split =
      Materialize(data, StratifiedSplit(data, 0.66, &rng));
  AutoMlOptions options;
  options.search_budget_seconds = 5.0;
  options.seed = 99;

  CamlSystem plain;
  CamlParams green_params;
  green_params.energy_weight = 0.5;
  CamlSystem green(green_params, "caml_green");

  auto run_plain = plain.Fit(split.train, options, &ctx_);
  auto run_green = green.Fit(split.train, options, &ctx_);
  ASSERT_TRUE(run_plain.ok() && run_green.ok());
  EXPECT_LE(run_green->artifact.InferenceFlopsPerRow(data.num_features()),
            run_plain->artifact.InferenceFlopsPerRow(
                data.num_features()) *
                1.5);
}

}  // namespace
}  // namespace green
