#include <gtest/gtest.h>

#include <memory>

#include "green/automl/askl_system.h"
#include "green/automl/autopt_system.h"
#include "green/automl/caml_system.h"
#include "green/automl/flaml_system.h"
#include "green/automl/gluon_system.h"
#include "green/automl/guideline.h"
#include "green/automl/tabpfn_system.h"
#include "green/automl/tpot_system.h"
#include "green/data/meta_corpus.h"
#include "green/data/synthetic.h"
#include "green/ml/metrics.h"
#include "green/table/split.h"

namespace green {
namespace {

class SystemsTest : public ::testing::Test {
 protected:
  SystemsTest()
      : energy_model_(MachineModel::Minimal()),
        ctx_(&clock_, &energy_model_, 1) {
    SyntheticSpec spec;
    spec.name = "task";
    spec.num_rows = 260;
    spec.num_features = 10;
    spec.num_informative = 8;
    spec.num_categorical = 2;
    spec.separation = 2.6;
    spec.label_noise = 0.03;
    spec.seed = 8;
    auto data = GenerateSynthetic(spec);
    EXPECT_TRUE(data.ok());
    Rng rng(8);
    TrainTestData split =
        Materialize(*data, StratifiedSplit(*data, 0.66, &rng));
    train_ = std::move(split.train);
    test_ = std::move(split.test);
  }

  double TestAccuracy(const FittedArtifact& artifact) {
    auto preds = artifact.Predict(test_, &ctx_);
    EXPECT_TRUE(preds.ok());
    return BalancedAccuracy(test_.labels(), preds.value(),
                            test_.num_classes());
  }

  AutoMlOptions Budget(double seconds) {
    AutoMlOptions options;
    options.search_budget_seconds = seconds;
    options.seed = 42;
    return options;
  }

  VirtualClock clock_;
  EnergyModel energy_model_;
  ExecutionContext ctx_;
  Dataset train_;
  Dataset test_;
};

// --- CAML ---

TEST_F(SystemsTest, CamlLearnsAndAdheresStrictly) {
  CamlSystem caml;
  auto run = caml.Fit(train_, Budget(3.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(TestAccuracy(run->artifact), 0.7);
  EXPECT_EQ(run->artifact.NumPipelines(), 1u);  // Single pipeline.
  EXPECT_GT(run->pipelines_evaluated, 0);
  EXPECT_GT(run->execution.kwh(), 0.0);
  // Strict policy: small tolerance only (refit may run within estimate).
  EXPECT_LE(run->actual_seconds, 3.0 * 1.25);
}

TEST_F(SystemsTest, CamlHonoursInferenceConstraint) {
  CamlSystem caml;
  AutoMlOptions unconstrained = Budget(3.0);
  auto free_run = caml.Fit(train_, unconstrained, &ctx_);
  ASSERT_TRUE(free_run.ok());

  AutoMlOptions constrained = Budget(3.0);
  // Tight per-row budget in virtual seconds.
  constrained.max_inference_seconds_per_row = 2e-4;
  auto tight_run = caml.Fit(train_, constrained, &ctx_);
  ASSERT_TRUE(tight_run.ok());
  EXPECT_LE(
      tight_run->artifact.InferenceFlopsPerRow(train_.num_features()),
      free_run->artifact.InferenceFlopsPerRow(train_.num_features()) +
          1e-9);
}

TEST_F(SystemsTest, CamlSamplingParameterShrinksTraining) {
  CamlParams params;
  params.sampling_fraction = 0.3;
  params.refit = false;
  CamlSystem caml(params, "caml_sampled");
  auto run = caml.Fit(train_, Budget(2.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(caml.Name(), "caml_sampled");
  EXPECT_GT(run->pipelines_evaluated, 0);
}

TEST_F(SystemsTest, CamlRestrictedSpaceOnlyUsesAllowedModels) {
  CamlParams params;
  params.models = {"naive_bayes"};
  params.refit = false;
  params.incremental_training = false;
  CamlSystem caml(params, "caml_nb");
  auto run = caml.Fit(train_, Budget(2.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_NE(run->artifact.Describe().find("naive_bayes"),
            std::string::npos);
}

TEST_F(SystemsTest, CamlRejectsTinyDataset) {
  Dataset tiny("tiny", 2, 2);
  ASSERT_TRUE(tiny.AppendRow({0.0, 0.0}, 0).ok());
  CamlSystem caml;
  EXPECT_FALSE(caml.Fit(tiny, Budget(1.0), &ctx_).ok());
}

// --- FLAML ---

TEST_F(SystemsTest, FlamlFindsCheapModel) {
  FlamlSystem flaml;
  auto run = flaml.Fit(train_, Budget(3.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(TestAccuracy(run->artifact), 0.7);
  EXPECT_EQ(run->artifact.NumPipelines(), 1u);
  EXPECT_GT(run->pipelines_evaluated, 3);
}

TEST_F(SystemsTest, FlamlOverrunIsBounded) {
  FlamlSystem flaml;
  auto run = flaml.Fit(train_, Budget(2.0), &ctx_);
  ASSERT_TRUE(run.ok());
  // Finish-last-evaluation: may overrun, but only by one evaluation.
  EXPECT_GE(run->actual_seconds, 2.0);
  EXPECT_LE(run->actual_seconds, 2.0 * 2.5);
}

TEST_F(SystemsTest, FlamlInferenceCheaperThanEnsembles) {
  FlamlSystem flaml;
  GluonSystem gluon;
  auto flaml_run = flaml.Fit(train_, Budget(3.0), &ctx_);
  auto gluon_run = gluon.Fit(train_, Budget(3.0), &ctx_);
  ASSERT_TRUE(flaml_run.ok() && gluon_run.ok());
  EXPECT_LT(
      flaml_run->artifact.InferenceFlopsPerRow(train_.num_features()),
      gluon_run->artifact.InferenceFlopsPerRow(train_.num_features()));
}

// --- TabPFN ---

TEST_F(SystemsTest, TabPfnNeedsNoSearch) {
  TabPfnSystem tabpfn;
  auto run = tabpfn.Fit(train_, Budget(300.0), &ctx_);
  ASSERT_TRUE(run.ok());
  // Execution is a fixed sub-second load regardless of the budget.
  EXPECT_LT(run->actual_seconds, 1.0);
  EXPECT_EQ(run->pipelines_evaluated, 1);
  EXPECT_GT(TestAccuracy(run->artifact), 0.6);
}

TEST_F(SystemsTest, TabPfnExecutionConstantAcrossBudgets) {
  TabPfnSystem tabpfn;
  auto run_a = tabpfn.Fit(train_, Budget(10.0), &ctx_);
  auto run_b = tabpfn.Fit(train_, Budget(300.0), &ctx_);
  ASSERT_TRUE(run_a.ok() && run_b.ok());
  EXPECT_NEAR(run_a->actual_seconds, run_b->actual_seconds, 1e-9);
}

TEST_F(SystemsTest, TabPfnInferenceDominatesItsExecution) {
  TabPfnSystem tabpfn;
  auto run = tabpfn.Fit(train_, Budget(10.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EnergyMeter meter(&energy_model_);
  meter.Start(clock_.Now());
  ctx_.SetMeter(&meter);
  ASSERT_TRUE(run->artifact.Predict(test_, &ctx_).ok());
  const EnergyReading inference = meter.Stop(clock_.Now());
  ctx_.SetMeter(nullptr);
  EXPECT_GT(inference.kwh(), run->execution.kwh());
}

// --- AutoGluon ---

TEST_F(SystemsTest, GluonBuildsStackedEnsemble) {
  GluonSystem gluon;
  auto run = gluon.Fit(train_, Budget(20.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->artifact.stacked());
  EXPECT_GT(run->artifact.NumPipelines(), 4u);
  EXPECT_GT(TestAccuracy(run->artifact), 0.75);
}

TEST_F(SystemsTest, GluonRefitShrinksInference) {
  GluonSystem normal;
  GluonParams refit_params;
  refit_params.refit_for_inference = true;
  GluonSystem refit(refit_params);
  auto run_normal = normal.Fit(train_, Budget(20.0), &ctx_);
  auto run_refit = refit.Fit(train_, Budget(20.0), &ctx_);
  ASSERT_TRUE(run_normal.ok() && run_refit.ok());
  EXPECT_LT(run_refit->artifact.NumPipelines(),
            run_normal->artifact.NumPipelines());
  EXPECT_EQ(refit.Name(), "autogluon_refit");
}

TEST_F(SystemsTest, GluonOvershootsSmallBudgets) {
  GluonSystem gluon;
  auto run = gluon.Fit(train_, Budget(0.5), &ctx_);
  ASSERT_TRUE(run.ok());
  // Estimated-plan policy: the minimum ensemble runs to completion even
  // when the budget cannot hold it (Table 7's small-budget overshoot).
  EXPECT_GT(run->actual_seconds, 0.5);
}

// --- AutoSklearn ---

TEST_F(SystemsTest, Askl1BuildsWeightedEnsemble) {
  AsklParams params;
  AsklSystem askl(params, nullptr);
  auto run = askl.Fit(train_, Budget(6.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(TestAccuracy(run->artifact), 0.7);
  EXPECT_FALSE(run->artifact.stacked());
  EXPECT_EQ(askl.Name(), "autosklearn1");
  EXPECT_EQ(askl.MinBudgetSeconds(), 30.0);
}

TEST_F(SystemsTest, AsklOverrunsForEnsembling) {
  AsklParams params;
  AsklSystem askl(params, nullptr);
  auto run = askl.Fit(train_, Budget(4.0), &ctx_);
  ASSERT_TRUE(run.ok());
  // Search may start right before the deadline, and Caruana weighting is
  // not budget-counted: actual > configured.
  EXPECT_GT(run->actual_seconds, 4.0);
}

TEST_F(SystemsTest, Askl2WarmStartUsesMetaStore) {
  // Build a small meta store, then check ASKL2 runs and names itself.
  MetaCorpusOptions corpus_options;
  corpus_options.num_datasets = 4;
  auto corpus =
      GenerateMetaCorpus(corpus_options, SimulationProfile::Fast());
  ASSERT_TRUE(corpus.ok());
  auto store = AsklMetaStore::BuildFromCorpus(*corpus, 3, 1, &ctx_);
  ASSERT_TRUE(store.ok());
  EXPECT_GT(store->size(), 0u);

  AsklParams params;
  params.warm_start = true;
  AsklSystem askl2(params, &store.value());
  EXPECT_EQ(askl2.Name(), "autosklearn2");
  auto run = askl2.Fit(train_, Budget(6.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(TestAccuracy(run->artifact), 0.65);
}

TEST_F(SystemsTest, MetaStoreNearestNeighbourLookup) {
  AsklMetaStore store;
  AsklMetaStore::Entry small;
  small.meta.log_rows = 2.0;
  PipelineConfig nb;
  nb.model = "naive_bayes";
  small.top_configs = {nb};
  AsklMetaStore::Entry big;
  big.meta.log_rows = 6.0;
  PipelineConfig rf;
  rf.model = "random_forest";
  big.top_configs = {rf};
  store.AddEntry(small);
  store.AddEntry(big);

  MetaFeatures query;
  query.log_rows = 5.5;
  const auto configs = store.WarmStartConfigs(query, 5);
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].model, "random_forest");
}

// --- TPOT ---

TEST_F(SystemsTest, TpotEvolvesPipelines) {
  TpotSystem tpot;
  EXPECT_EQ(tpot.MinBudgetSeconds(), 60.0);
  auto run = tpot.Fit(train_, Budget(8.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(TestAccuracy(run->artifact), 0.65);
  EXPECT_EQ(run->artifact.NumPipelines(), 1u);
  EXPECT_GT(run->pipelines_evaluated, 0);
}

TEST_F(SystemsTest, TpotCvMultipliesEvaluationCost) {
  // Per distinct pipeline, TPOT trains cv_folds models; with equal
  // budgets it evaluates fewer DISTINCT pipelines than CAML.
  TpotSystem tpot;
  CamlSystem caml;
  auto tpot_run = tpot.Fit(train_, Budget(6.0), &ctx_);
  auto caml_run = caml.Fit(train_, Budget(6.0), &ctx_);
  ASSERT_TRUE(tpot_run.ok() && caml_run.ok());
  EXPECT_LT(tpot_run->pipelines_evaluated,
            caml_run->pipelines_evaluated + 40);
}

TEST_F(SystemsTest, TpotRejectsTooFewRows) {
  Dataset tiny("tiny", 2, 2);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(tiny.AppendRow({0.0, 1.0}, i % 2).ok());
  }
  TpotSystem tpot;
  EXPECT_FALSE(tpot.Fit(tiny, Budget(60.0), &ctx_).ok());
}

// --- autopt (joint MLP architecture + hyperparameter ladder) ---

TEST_F(SystemsTest, AutoPtFindsCompetentMlp) {
  AutoPtSystem autopt;
  auto run = autopt.Fit(train_, Budget(8.0), &ctx_);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->pipelines_evaluated, 1);
  EXPECT_GT(TestAccuracy(run->artifact), 0.7);
  // Multi-fidelity: the ladder proposes more configs than survive to the
  // top rung, and the winner's score is a real holdout number.
  EXPECT_GT(run->best_validation_score, 0.5);
}

TEST_F(SystemsTest, AutoPtChargesUnderItsOwnScopeSubtree) {
  AutoPtSystem autopt;
  auto run = autopt.Fit(train_, Budget(6.0), &ctx_);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run->execution.scopes.empty());
  bool has_search_subtree = false;
  for (const auto& [path, charge] : run->execution.scopes) {
    EXPECT_EQ(path.rfind("autopt", 0), 0u) << path;
    if (path.rfind("autopt/search", 0) == 0) has_search_subtree = true;
  }
  EXPECT_TRUE(has_search_subtree);
}

TEST_F(SystemsTest, AutoPtRespectsBudgetWithFinishLastEvaluation) {
  AutoPtSystem autopt;
  EXPECT_EQ(autopt.budget_policy(),
            BudgetPolicyKind::kFinishLastEvaluation);
  const double start = ctx_.Now();
  auto run = autopt.Fit(train_, Budget(5.0), &ctx_);
  ASSERT_TRUE(run.ok());
  // May finish the in-flight evaluation but not arbitrarily overrun.
  EXPECT_LT(ctx_.Now() - start, 5.0 * 3.0);
}

TEST_F(SystemsTest, AutoPtDeterministicInSeed) {
  AutoPtSystem a, b;
  VirtualClock clock_a, clock_b;
  ExecutionContext ctx_a(&clock_a, &energy_model_, 1);
  ExecutionContext ctx_b(&clock_b, &energy_model_, 1);
  auto run_a = a.Fit(train_, Budget(6.0), &ctx_a);
  auto run_b = b.Fit(train_, Budget(6.0), &ctx_b);
  ASSERT_TRUE(run_a.ok() && run_b.ok());
  EXPECT_EQ(run_a->best_validation_score, run_b->best_validation_score);
  EXPECT_EQ(run_a->pipelines_evaluated, run_b->pipelines_evaluated);
  EXPECT_EQ(clock_a.Now(), clock_b.Now());
}

// --- regression across systems ---

class RegressionSystemsTest : public ::testing::Test {
 protected:
  RegressionSystemsTest()
      : energy_model_(MachineModel::Minimal()),
        ctx_(&clock_, &energy_model_, 1) {
    SyntheticRegressionSpec spec;
    spec.name = "reg_task";
    spec.num_rows = 240;
    spec.num_features = 8;
    spec.num_informative = 6;
    spec.num_categorical = 2;
    spec.noise = 0.3;
    spec.seed = 9;
    Dataset data = GenerateSyntheticRegression(spec).value();
    Rng rng(9);
    TrainTestData split = Materialize(data, SplitForTask(data, 0.7, &rng));
    train_ = std::move(split.train);
    test_ = std::move(split.test);
  }

  AutoMlOptions Budget(double seconds) {
    AutoMlOptions options;
    options.search_budget_seconds = seconds;
    options.seed = 42;
    return options;
  }

  VirtualClock clock_;
  EnergyModel energy_model_;
  ExecutionContext ctx_;
  Dataset train_ = Dataset::Regression("empty", 1);
  Dataset test_ = Dataset::Regression("empty", 1);
};

TEST_F(RegressionSystemsTest, SystemsBeatTargetMeanBaseline) {
  CamlSystem caml;
  FlamlSystem flaml;
  AutoPtSystem autopt;
  for (AutoMlSystem* system :
       std::initializer_list<AutoMlSystem*>{&caml, &flaml, &autopt}) {
    SCOPED_TRACE(system->Name());
    ASSERT_TRUE(system->SupportsTask(TaskType::kRegression));
    auto run = system->Fit(train_, Budget(6.0), &ctx_);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    auto pred = run->artifact.PredictProba(test_, &ctx_);
    ASSERT_TRUE(pred.ok());
    ASSERT_EQ((*pred)[0].size(), 1u);
    std::vector<double> flat;
    flat.reserve(pred->size());
    for (const auto& row : *pred) flat.push_back(row[0]);
    EXPECT_GT(R2(test_.targets(), flat), 0.0);
    // The recorded validation score is the negated-RMSE adapter value.
    EXPECT_LT(run->best_validation_score, 0.0);
    EXPECT_GT(MetricFromScore(TaskType::kRegression,
                              run->best_validation_score),
              0.0);
  }
}

TEST_F(RegressionSystemsTest, HardLabelPredictionIsATypedError) {
  CamlSystem caml;
  auto run = caml.Fit(train_, Budget(4.0), &ctx_);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->artifact.task(), TaskType::kRegression);
  auto preds = run->artifact.Predict(test_, &ctx_);
  ASSERT_FALSE(preds.ok());
  EXPECT_EQ(preds.status().code(), Status::Code::kFailedPrecondition);
}

TEST_F(RegressionSystemsTest, TabPfnDeclinesRegression) {
  TabPfnSystem tabpfn;
  EXPECT_FALSE(tabpfn.SupportsTask(TaskType::kRegression));
  const auto run = tabpfn.Fit(train_, Budget(4.0), &ctx_);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), Status::Code::kUnimplemented);
}

// --- budget policies across systems ---

TEST_F(SystemsTest, PolicyKindsMatchTable7) {
  EXPECT_EQ(CamlSystem().budget_policy(), BudgetPolicyKind::kStrict);
  EXPECT_EQ(FlamlSystem().budget_policy(),
            BudgetPolicyKind::kFinishLastEvaluation);
  EXPECT_EQ(GluonSystem().budget_policy(),
            BudgetPolicyKind::kEstimatedPlan);
  EXPECT_EQ(TabPfnSystem().budget_policy(), BudgetPolicyKind::kNoBudget);
  EXPECT_EQ(TpotSystem().budget_policy(),
            BudgetPolicyKind::kFinishLastEvaluation);
  AsklParams params;
  EXPECT_EQ(AsklSystem(params, nullptr).budget_policy(),
            BudgetPolicyKind::kEnsemblingNotCounted);
}

// --- guideline (Fig. 8) ---

TEST(GuidelineTest, DevelopmentBranch) {
  GuidelineQuery query;
  query.has_development_resources = true;
  query.planned_executions = 1000;
  EXPECT_EQ(RecommendSystem(query).system, "caml_tuned");
  query.planned_executions = 10;  // Below the 885-run amortization.
  EXPECT_NE(RecommendSystem(query).system, "caml_tuned");
}

TEST(GuidelineTest, TinyBudgetBranch) {
  GuidelineQuery query;
  query.search_budget_seconds = 5.0;
  query.num_classes = 2;
  EXPECT_EQ(RecommendSystem(query).system, "tabpfn");
  query.gpu_available = true;
  EXPECT_EQ(RecommendSystem(query).system, "tabpfn(gpu)");
  query.num_classes = 50;  // Beyond TabPFN's limit.
  EXPECT_EQ(RecommendSystem(query).system, "caml");
}

TEST(GuidelineTest, PriorityBranch) {
  GuidelineQuery query;
  query.search_budget_seconds = 300.0;
  query.priority = GuidelineQuery::Priority::kFastInference;
  EXPECT_EQ(RecommendSystem(query).system, "flaml");
  query.priority = GuidelineQuery::Priority::kAccuracy;
  EXPECT_EQ(RecommendSystem(query).system, "autogluon");
  query.priority = GuidelineQuery::Priority::kParetoOptimal;
  EXPECT_EQ(RecommendSystem(query).system, "caml");
}

TEST(GuidelineTest, RationaleAndChartNonEmpty) {
  EXPECT_FALSE(RecommendSystem(GuidelineQuery{}).rationale.empty());
  const std::string chart = RenderGuidelineChart();
  EXPECT_NE(chart.find("TabPFN"), std::string::npos);
  EXPECT_NE(chart.find("885"), std::string::npos);
}

}  // namespace
}  // namespace green
