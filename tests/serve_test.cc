// Tests for the serving layer: trace generation/loading, the artifact
// degrade ladder, admission control and shedding, deadline policies,
// per-request energy SLOs, fault injection at the serve.* sites, the
// GREEN_SERVE_* environment overrides, and — above all — the request
// conservation invariant: every arrival reaches exactly one terminal
// outcome and per-request Joules sum to the metered total, under every
// policy/fault combination.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "green/automl/fitted_artifact.h"
#include "green/common/fault.h"
#include "green/common/stringutil.h"
#include "green/data/synthetic.h"
#include "green/ml/model_registry.h"
#include "green/serve/artifact_ladder.h"
#include "green/serve/inference_server.h"
#include "green/serve/request_stream.h"
#include "green/serve/serve_policy.h"
#include "green/sim/execution_context.h"

namespace green {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : model_(MachineModel::Minimal()) {
    SyntheticSpec spec;
    spec.name = "serve";
    spec.num_rows = 200;
    spec.num_features = 8;
    spec.num_informative = 8;
    spec.num_classes = 3;
    spec.separation = 3.0;
    spec.seed = 6;
    data_ = GenerateSynthetic(spec).value();
  }

  std::shared_ptr<Pipeline> FitConfig(const std::string& model,
                                      uint64_t seed = 1) {
    VirtualClock clock;
    ExecutionContext ctx(&clock, &model_, 1);
    PipelineConfig config;
    config.model = model;
    config.seed = seed;
    auto pipeline = BuildPipeline(config);
    EXPECT_TRUE(pipeline.ok());
    EXPECT_TRUE(pipeline->Fit(data_, &ctx).ok());
    return std::make_shared<Pipeline>(std::move(pipeline).value());
  }

  /// A two-member weighted ensemble: enough structure for a full ->
  /// single -> constant ladder. The decision tree carries the higher
  /// weight, so it is the distilled single tier.
  FittedArtifact WeightedArtifact() {
    FittedArtifact::Member a;
    a.folds.push_back(FitConfig("naive_bayes", 1));
    a.weight = 1.0;
    FittedArtifact::Member b;
    b.folds.push_back(FitConfig("decision_tree", 2));
    b.weight = 2.0;
    return FittedArtifact::Weighted({std::move(a), std::move(b)});
  }

  ArtifactLadder BuildLadder() {
    auto ladder = ArtifactLadder::Build(WeightedArtifact(), data_, &model_);
    EXPECT_TRUE(ladder.ok());
    return std::move(ladder).value();
  }

  ServeReport MustReplay(const ServePolicy& policy,
                         const std::vector<ServeRequest>& trace,
                         const FaultInjector* faults = nullptr) {
    InferenceServer server(BuildLadder(), data_, &model_, policy, faults);
    auto report = server.Replay(trace);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    const Status conserved = report->CheckConservation();
    EXPECT_TRUE(conserved.ok()) << conserved.ToString();
    return std::move(report).value();
  }

  EnergyModel model_;
  Dataset data_;
};

// --- Trace generation -------------------------------------------------

TEST_F(ServeTest, GeneratedTraceIsDeterministicSortedAndBounded) {
  TraceSpec spec;
  spec.kind = TraceSpec::Kind::kDiurnal;
  spec.duration_seconds = 20.0;
  spec.rate_rps = 15.0;
  const std::vector<ServeRequest> a = GenerateTrace(spec, 100);
  const std::vector<ServeRequest> b = GenerateTrace(spec, 100);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_LT(a[i].row, 100u);
    EXPECT_LT(a[i].arrival_seconds, spec.duration_seconds);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
    }
  }
}

TEST_F(ServeTest, BurstTraceCarriesMoreArrivalsThanConstant) {
  TraceSpec constant;
  constant.kind = TraceSpec::Kind::kConstant;
  constant.duration_seconds = 10.0;
  constant.rate_rps = 20.0;
  TraceSpec burst = constant;
  burst.kind = TraceSpec::Kind::kBurst;  // 10% of time at 10x the rate.
  EXPECT_GT(GenerateTrace(burst, 50).size(),
            GenerateTrace(constant, 50).size());
}

TEST_F(ServeTest, EmptySpecsYieldEmptyTraces) {
  TraceSpec spec;
  spec.rate_rps = 0.0;
  EXPECT_TRUE(GenerateTrace(spec, 10).empty());
  spec.rate_rps = 5.0;
  EXPECT_TRUE(GenerateTrace(spec, 0).empty());
}

TEST_F(ServeTest, TraceCsvParsesCommentsRowsAndSorts) {
  const std::string path = ::testing::TempDir() + "/trace.csv";
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "0.5, 3\n"
        << "\n"
        << "0.25\n"
        << "1.0,999\n";
  }
  auto trace = LoadTraceCsv(path, 10);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->size(), 3u);
  EXPECT_DOUBLE_EQ((*trace)[0].arrival_seconds, 0.25);
  EXPECT_DOUBLE_EQ((*trace)[1].arrival_seconds, 0.5);
  EXPECT_EQ((*trace)[1].row, 3u);
  EXPECT_DOUBLE_EQ((*trace)[2].arrival_seconds, 1.0);
  EXPECT_EQ((*trace)[2].row, 999u % 10u);
  std::remove(path.c_str());
}

TEST_F(ServeTest, TraceCsvRejectsMalformedLines) {
  const std::string path = ::testing::TempDir() + "/bad_trace.csv";
  for (const char* body : {"abc\n", "-1.0\n", "0.5,3,junk\n", "0.5,-2\n"}) {
    std::ofstream(path) << body;
    EXPECT_FALSE(LoadTraceCsv(path, 10).ok()) << body;
  }
  std::remove(path.c_str());
}

// --- Artifact ladder --------------------------------------------------

TEST_F(ServeTest, LadderTiersAreOrderedCheapestLast) {
  const ArtifactLadder ladder = BuildLadder();
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder.tier(0).name, "full");
  EXPECT_EQ(ladder.tier(1).name, "single");
  EXPECT_EQ(ladder.tier(2).name, "constant");
  EXPECT_FALSE(ladder.tier(0).IsConstant());
  EXPECT_TRUE(ladder.tier(2).IsConstant());
  // Probed per-row cost strictly falls down the ladder — that is the
  // whole point of degrading.
  EXPECT_GT(ladder.tier(0).est_joules_per_row,
            ladder.tier(1).est_joules_per_row);
  EXPECT_GT(ladder.tier(1).est_joules_per_row,
            ladder.tier(2).est_joules_per_row);
  EXPECT_GT(ladder.tier(2).est_joules_per_row, 0.0);
}

TEST_F(ServeTest, SinglePipelineArtifactSkipsTheSingleTier) {
  const FittedArtifact single =
      FittedArtifact::Single(FitConfig("decision_tree"));
  auto ladder = ArtifactLadder::Build(single, data_, &model_);
  ASSERT_TRUE(ladder.ok());
  ASSERT_EQ(ladder->size(), 2u);
  EXPECT_EQ(ladder->tier(0).name, "full");
  EXPECT_EQ(ladder->tier(1).name, "constant");
}

TEST_F(ServeTest, ConstantTierPredictsClassPriors) {
  const ArtifactLadder ladder = BuildLadder();
  const ArtifactTier& constant = ladder.tier(2);
  VirtualClock clock;
  ExecutionContext ctx(&clock, &model_, 1);
  const Dataset batch = data_.Subset({0, 1, 2});
  auto proba = constant.PredictProba(batch, &ctx);
  ASSERT_TRUE(proba.ok());
  ASSERT_EQ(proba->size(), 3u);
  for (const std::vector<double>& row : *proba) {
    ASSERT_EQ(row.size(), constant.constant_proba.size());
    double sum = 0.0;
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_DOUBLE_EQ(row[c], constant.constant_proba[c]);
      sum += row[c];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(clock.Now(), 0.0);  // Even the constant tier charges work.
}

// --- Admission control and shedding -----------------------------------

std::vector<ServeRequest> SimultaneousArrivals(size_t n) {
  std::vector<ServeRequest> trace(n);
  for (size_t i = 0; i < n; ++i) trace[i].row = i;
  return trace;
}

TEST_F(ServeTest, ShedNewestRejectsTheLateArrivals) {
  ServePolicy policy;
  policy.queue_capacity = 1;
  policy.max_batch = 1;
  policy.batch_delay_seconds = 0.0;
  policy.shed = ServePolicy::ShedPolicy::kNewest;
  const ServeReport report = MustReplay(policy, SimultaneousArrivals(10));
  EXPECT_EQ(report.rejected, 9u);
  EXPECT_EQ(report.completed, 1u);
  // Tail drop: the request that arrived first is the one that survives.
  EXPECT_EQ(report.results[0].outcome, RequestOutcome::kCompleted);
}

TEST_F(ServeTest, ShedOldestEvictsTheQueueHead) {
  ServePolicy policy;
  policy.queue_capacity = 1;
  policy.max_batch = 1;
  policy.batch_delay_seconds = 0.0;
  policy.shed = ServePolicy::ShedPolicy::kOldest;
  const ServeReport report = MustReplay(policy, SimultaneousArrivals(10));
  EXPECT_EQ(report.rejected, 9u);
  EXPECT_EQ(report.completed, 1u);
  // Head drop: each newcomer evicts its predecessor; the last survives.
  EXPECT_EQ(report.results[9].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(report.results[0].outcome, RequestOutcome::kRejected);
}

// --- Deadline policies ------------------------------------------------

std::vector<ServeRequest> SteadyTrace(size_t n, double gap, size_t rows) {
  std::vector<ServeRequest> trace(n);
  for (size_t i = 0; i < n; ++i) {
    trace[i].arrival_seconds = static_cast<double>(i) * gap;
    trace[i].row = i % rows;
  }
  return trace;
}

TEST_F(ServeTest, StrictPolicyFailsRequestsPastTheirDeadline) {
  ServePolicy policy;
  policy.deadline_seconds = 1e-6;  // Infeasible for any artifact tier.
  policy.on_deadline = ServePolicy::DeadlineAction::kFail;
  const ServeReport report =
      MustReplay(policy, SteadyTrace(40, 0.002, data_.num_rows()));
  EXPECT_GT(report.deadline_exceeded, 0u);
  EXPECT_EQ(report.degraded, 0u);
}

TEST_F(ServeTest, DegradePolicyAnswersFromCheaperTiers) {
  ServePolicy policy;
  policy.deadline_seconds = 1e-6;
  policy.on_deadline = ServePolicy::DeadlineAction::kDegrade;
  const ServeReport report =
      MustReplay(policy, SteadyTrace(40, 0.002, data_.num_rows()));
  // Every request still gets an answer — from a cheaper rung.
  EXPECT_EQ(report.deadline_exceeded, 0u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_GT(report.degraded, 0u);
  EXPECT_EQ(report.completed + report.degraded, report.arrived);
  for (const RequestResult& r : report.results) {
    if (r.outcome == RequestOutcome::kDegraded) {
      EXPECT_NE(r.tier, "full");
      EXPECT_GE(r.predicted_class, 0);
    }
  }
}

TEST_F(ServeTest, EnergySloPreselectsACheaperTier) {
  const std::vector<ServeRequest> trace =
      SteadyTrace(40, 0.002, data_.num_rows());
  ServePolicy baseline;
  const ServeReport unconstrained = MustReplay(baseline, trace);

  ServePolicy slo = baseline;
  // Only the constant tier fits this budget.
  slo.energy_slo_joules = 1e-12;
  const ServeReport capped = MustReplay(slo, trace);
  // SLO-preselected requests count as completed: the SLO *is* the
  // requested service level.
  EXPECT_EQ(capped.completed, capped.arrived);
  EXPECT_LT(capped.total_joules, unconstrained.total_joules);
  for (const RequestResult& r : capped.results) {
    EXPECT_EQ(r.tier, "constant");
  }
}

// --- Fault injection at the serve.* sites -----------------------------

TEST_F(ServeTest, AdmitFaultRejectsEveryRequest) {
  const FaultInjector faults = FaultInjector::Lenient("serve.admit@1", 7);
  ServePolicy policy;
  const ServeReport report = MustReplay(
      policy, SteadyTrace(20, 0.001, data_.num_rows()), &faults);
  EXPECT_EQ(report.rejected, report.arrived);
  EXPECT_EQ(report.admitted, 0u);
  // Rejected requests still carry their admission-check energy.
  EXPECT_GT(report.total_joules, 0.0);
}

TEST_F(ServeTest, SinglePredictFaultDegradesOneBatch) {
  const FaultInjector faults =
      FaultInjector::Lenient("serve.predict#1", 7);
  ServePolicy policy;
  const ServeReport report = MustReplay(
      policy, SteadyTrace(20, 0.001, data_.num_rows()), &faults);
  // The first batch fell one rung; everything else served at full tier.
  EXPECT_GT(report.degraded, 0u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.completed + report.degraded, report.arrived);
}

TEST_F(ServeTest, PersistentBatchFaultFailsAfterRetries) {
  const FaultInjector faults = FaultInjector::Lenient("serve.batch@1", 7);
  ServePolicy policy;
  const ServeReport report = MustReplay(
      policy, SteadyTrace(20, 0.001, data_.num_rows()), &faults);
  EXPECT_EQ(report.rejected, report.arrived);
  // Admission succeeded — the batches failed after dispatch retries.
  EXPECT_EQ(report.admitted, report.arrived);
  EXPECT_EQ(report.rejected_unserved, 0u);
}

TEST_F(ServeTest, ConservationHoldsAcrossPolicyAndFaultMatrix) {
  const std::vector<ServeRequest> trace =
      SteadyTrace(30, 0.0015, data_.num_rows());
  std::vector<ServePolicy> policies(5);
  policies[1].deadline_seconds = 0.005;
  policies[2].deadline_seconds = 0.001;
  policies[2].on_deadline = ServePolicy::DeadlineAction::kDegrade;
  policies[3].energy_slo_joules = 1e-5;
  policies[4].queue_capacity = 2;
  policies[4].shed = ServePolicy::ShedPolicy::kOldest;
  const std::vector<std::string> fault_specs = {
      "", "serve.admit@0.3", "serve.predict@0.4", "serve.batch#2",
      "serve.admit@0.2,serve.batch@0.1,serve.predict@0.3"};
  for (size_t p = 0; p < policies.size(); ++p) {
    for (const std::string& spec : fault_specs) {
      SCOPED_TRACE(StrFormat("policy %zu faults '%s'", p, spec.c_str()));
      const FaultInjector faults = FaultInjector::Lenient(spec, 11);
      // MustReplay asserts CheckConservation internally.
      const ServeReport report = MustReplay(policies[p], trace, &faults);
      EXPECT_EQ(report.arrived, trace.size());
    }
  }
}

// --- Replay surface ---------------------------------------------------

TEST_F(ServeTest, ReplayIsDeterministic) {
  ServePolicy policy;
  policy.deadline_seconds = 0.004;
  policy.on_deadline = ServePolicy::DeadlineAction::kDegrade;
  const std::vector<ServeRequest> trace =
      SteadyTrace(25, 0.002, data_.num_rows());
  const FaultInjector faults =
      FaultInjector::Lenient("serve.predict@0.2", 3);
  const ServeReport a = MustReplay(policy, trace, &faults);
  const ServeReport b = MustReplay(policy, trace, &faults);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.deadline_exceeded, b.deadline_exceeded);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_DOUBLE_EQ(a.total_joules, b.total_joules);
  EXPECT_LE(a.LatencyPercentile(0.50), a.LatencyPercentile(0.95));
  EXPECT_LE(a.LatencyPercentile(0.95), a.LatencyPercentile(0.99));
}

TEST_F(ServeTest, UnsortedTraceIsRejected) {
  std::vector<ServeRequest> trace(2);
  trace[0].arrival_seconds = 1.0;
  trace[1].arrival_seconds = 0.5;
  ServePolicy policy;
  InferenceServer server(BuildLadder(), data_, &model_, policy);
  EXPECT_FALSE(server.Replay(trace).ok());
}

// --- GREEN_SERVE_* environment overrides ------------------------------

struct EnvGuard {
  explicit EnvGuard(const char* name) : name(name) {}
  ~EnvGuard() { ::unsetenv(name); }
  const char* name;
};

TEST_F(ServeTest, PolicyFromEnvClampsOverflowAndIgnoresGarbage) {
  EnvGuard queue("GREEN_SERVE_QUEUE");
  EnvGuard batch("GREEN_SERVE_BATCH");
  EnvGuard deadline("GREEN_SERVE_DEADLINE_MS");
  EnvGuard action("GREEN_SERVE_POLICY");
  EnvGuard shed("GREEN_SERVE_SHED");
  // Overflows strtol/strtod's range: must clamp, not wrap or crash.
  ::setenv("GREEN_SERVE_QUEUE", "99999999999999999999", 1);
  ::setenv("GREEN_SERVE_BATCH", "-7", 1);
  ::setenv("GREEN_SERVE_DEADLINE_MS", "1e30", 1);
  ::setenv("GREEN_SERVE_POLICY", "degrade", 1);
  ::setenv("GREEN_SERVE_SHED", "bogus", 1);
  const ServePolicy policy = ServePolicyFromEnv();
  EXPECT_EQ(policy.queue_capacity, 1048576u);
  EXPECT_EQ(policy.max_batch, 1u);
  EXPECT_DOUBLE_EQ(policy.deadline_seconds, 3600.0);  // 3600000 ms cap.
  EXPECT_EQ(policy.on_deadline, ServePolicy::DeadlineAction::kDegrade);
  EXPECT_EQ(policy.shed, ServePolicy::ShedPolicy::kNewest);  // Fallback.

  ::setenv("GREEN_SERVE_QUEUE", "12abc", 1);
  EXPECT_EQ(ServePolicyFromEnv().queue_capacity, 64u);  // Malformed.
}

TEST_F(ServeTest, NameRoundTrips) {
  EXPECT_EQ(DeadlineActionFromName("fail").value(),
            ServePolicy::DeadlineAction::kFail);
  EXPECT_EQ(DeadlineActionFromName("degrade").value(),
            ServePolicy::DeadlineAction::kDegrade);
  EXPECT_FALSE(DeadlineActionFromName("explode").ok());
  EXPECT_EQ(ShedPolicyFromName("oldest").value(),
            ServePolicy::ShedPolicy::kOldest);
  EXPECT_FALSE(ShedPolicyFromName("").ok());
  EXPECT_EQ(TraceKindFromName("burst").value(), TraceSpec::Kind::kBurst);
  EXPECT_FALSE(TraceKindFromName("tsunami").ok());
}

}  // namespace
}  // namespace green
