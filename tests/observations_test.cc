// Integration tests asserting the paper's headline observations O1-O4 as
// *shape* properties of the reproduction (who wins, direction of effects)
// on a reduced suite, mirroring DESIGN.md's validation strategy.

#include <gtest/gtest.h>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/table/split.h"

namespace green {
namespace {

class ObservationsTest : public ::testing::Test {
 protected:
  static ExperimentRunner& SharedRunner() {
    static ExperimentRunner* runner = [] {
      ExperimentConfig config;
      config.dataset_limit = 4;
      config.repetitions = 2;
      config.seed = 11;
      return new ExperimentRunner(config);
    }();
    return *runner;
  }

  static double MeanMetric(
      const std::vector<RunRecord>& records, const std::string& system,
      double budget, double (*metric)(const RunRecord&)) {
    std::vector<double> values;
    for (const RunRecord& r : Filter(records, system, budget)) {
      values.push_back(metric(r));
    }
    EXPECT_FALSE(values.empty()) << system << "@" << budget;
    return ComputeStats(values).mean;
  }
};

TEST_F(ObservationsTest, O1EnsemblesCostMoreAtInference) {
  // O1: systems with ensembling (AutoGluon, ASKL) need at least an order
  // of magnitude more inference energy than single-model CAML(tuned) /
  // FLAML output.
  auto records = SharedRunner().Sweep(
      {"autogluon", "autosklearn1", "flaml", "caml_tuned"}, {300.0});
  ASSERT_TRUE(records.ok());
  auto inference = [](const RunRecord& r) {
    return r.inference_kwh_per_instance;
  };
  const double gluon = MeanMetric(*records, "autogluon", 300.0, inference);
  const double askl =
      MeanMetric(*records, "autosklearn1", 300.0, inference);
  const double flaml = MeanMetric(*records, "flaml", 300.0, inference);
  const double tuned =
      MeanMetric(*records, "caml_tuned", 300.0, inference);
  EXPECT_GT(gluon, 5.0 * flaml);
  EXPECT_GT(askl, 2.0 * flaml);
  EXPECT_GT(gluon, 5.0 * tuned);
}

TEST_F(ObservationsTest, O2TabPfnCheapExecutionExpensiveInference) {
  // O2's mechanism: TabPFN spends near-zero energy executing but far more
  // than single-model systems per prediction, so it only wins for few
  // predictions.
  auto records =
      SharedRunner().Sweep({"tabpfn", "flaml", "caml"}, {30.0});
  ASSERT_TRUE(records.ok());
  auto execution = [](const RunRecord& r) { return r.execution_kwh; };
  auto inference = [](const RunRecord& r) {
    return r.inference_kwh_per_instance;
  };
  const double tabpfn_exec = MeanMetric(*records, "tabpfn", 30.0,
                                        execution);
  const double flaml_exec = MeanMetric(*records, "flaml", 30.0, execution);
  const double tabpfn_infer =
      MeanMetric(*records, "tabpfn", 30.0, inference);
  const double flaml_infer =
      MeanMetric(*records, "flaml", 30.0, inference);
  EXPECT_LT(tabpfn_exec, 0.1 * flaml_exec);
  EXPECT_GT(tabpfn_infer, 10.0 * flaml_infer);

  // Crossover: below some prediction volume TabPFN's total energy is the
  // lowest; beyond it the cheap-inference searchers win. The crossover
  // position scales with the simulation profile (the paper reports ~26k
  // at testbed scale); its EXISTENCE is the invariant we assert.
  const double few = 3.0;
  const double many = 1e7;
  const double tabpfn_few = tabpfn_exec + few * tabpfn_infer;
  const double flaml_few = flaml_exec + few * flaml_infer;
  const double tabpfn_many = tabpfn_exec + many * tabpfn_infer;
  const double flaml_many = flaml_exec + many * flaml_infer;
  EXPECT_LT(tabpfn_few, flaml_few);
  EXPECT_GT(tabpfn_many, flaml_many);
}

TEST_F(ObservationsTest, O2TunedCamlWinsWithDevelopmentInvestment) {
  // O2 second half / Fig. 7: the tuned CAML reaches at least the accuracy
  // of default CAML without spending more execution energy.
  auto records = SharedRunner().Sweep({"caml", "caml_tuned"}, {30.0});
  ASSERT_TRUE(records.ok());
  auto accuracy = [](const RunRecord& r) {
    return r.test_balanced_accuracy;
  };
  auto execution = [](const RunRecord& r) { return r.execution_kwh; };
  EXPECT_GE(MeanMetric(*records, "caml_tuned", 30.0, accuracy) + 0.03,
            MeanMetric(*records, "caml", 30.0, accuracy));
  EXPECT_LE(MeanMetric(*records, "caml_tuned", 30.0, execution),
            MeanMetric(*records, "caml", 30.0, execution) * 1.1);
}

TEST_F(ObservationsTest, O3InferenceConstraintsSaveEnergy) {
  // O3: constraining inference time lets CAML trade accuracy for
  // inference energy.
  ExperimentRunner& runner = SharedRunner();
  const Dataset& dataset = runner.suite()[1];
  auto free_run = runner.RunOne("caml", dataset, 30.0, 0);
  ASSERT_TRUE(free_run.ok());

  // Re-run with a constraint through a dedicated context.
  auto system = runner.MakeSystem("caml", 30.0);
  ASSERT_TRUE(system.ok());
  EnergyModel model(runner.config().machine);
  VirtualClock clock;
  ExecutionContext ctx(&clock, &model, 1);
  Rng rng(1);
  TrainTestData data =
      Materialize(dataset, StratifiedSplit(dataset, 0.66, &rng));
  AutoMlOptions options;
  options.search_budget_seconds =
      30.0 * runner.config().budget_scale;
  options.seed = 1;
  options.max_inference_seconds_per_row = 3e-4;
  auto constrained = (*system)->Fit(data.train, options, &ctx);
  ASSERT_TRUE(constrained.ok());
  EXPECT_LE(constrained->artifact.InferenceFlopsPerRow(
                dataset.num_features()),
            3e-4 * runner.config().machine.cpu_flops_per_core * 1.05);
}

TEST_F(ObservationsTest, O4ParallelismShapes) {
  // O4: for budget-filling sequential CAML, more cores cost more energy
  // (sublinearly); for fixed-workload AutoGluon, more cores reduce wall
  // time without an energy penalty. Averaged over the reduced suite.
  ExperimentRunner& runner = SharedRunner();

  auto mean_for = [&](const std::string& system, int cores,
                      double (*metric)(const RunRecord&)) {
    std::vector<double> values;
    for (const Dataset& dataset : runner.suite()) {
      for (int rep = 0; rep < 2; ++rep) {
        auto record = runner.RunOne(system, dataset, 30.0, rep, cores);
        if (record.ok()) values.push_back(metric(*record));
      }
    }
    EXPECT_FALSE(values.empty());
    return ComputeStats(values).mean;
  };
  auto kwh = [](const RunRecord& r) { return r.execution_kwh; };
  auto secs = [](const RunRecord& r) { return r.execution_seconds; };

  const double caml_1 = mean_for("caml", 1, kwh);
  const double caml_8 = mean_for("caml", 8, kwh);
  EXPECT_GT(caml_8, caml_1 * 1.02);  // More cores cost more energy...
  EXPECT_LT(caml_8, caml_1 * 6.0);   // ...but far sublinearly.

  const double gluon_secs_1 = mean_for("autogluon", 1, secs);
  const double gluon_secs_8 = mean_for("autogluon", 8, secs);
  const double gluon_kwh_1 = mean_for("autogluon", 1, kwh);
  const double gluon_kwh_8 = mean_for("autogluon", 8, kwh);
  EXPECT_LT(gluon_secs_8, gluon_secs_1);
  EXPECT_LT(gluon_kwh_8, gluon_kwh_1 * 1.05);
}

TEST_F(ObservationsTest, BudgetAdherenceShapesMatchTable7) {
  auto records = SharedRunner().Sweep(
      {"tabpfn", "caml", "flaml", "autosklearn1"}, {30.0});
  ASSERT_TRUE(records.ok());
  auto seconds = [](const RunRecord& r) { return r.execution_seconds; };
  const double tabpfn = MeanMetric(*records, "tabpfn", 30.0, seconds);
  const double caml = MeanMetric(*records, "caml", 30.0, seconds);
  const double flaml = MeanMetric(*records, "flaml", 30.0, seconds);
  const double askl =
      MeanMetric(*records, "autosklearn1", 30.0, seconds);
  // Table 7 row order at 30 s: TabPFN < CAML <= FLAML < ASKL1.
  EXPECT_LT(tabpfn, 5.0);
  EXPECT_LE(caml, flaml * 1.15);
  EXPECT_GT(askl, caml);
}

TEST_F(ObservationsTest, AccuracyImprovesWithBudgetForSearchers) {
  auto records = SharedRunner().Sweep({"caml"}, {10.0, 300.0});
  ASSERT_TRUE(records.ok());
  auto accuracy = [](const RunRecord& r) {
    return r.test_balanced_accuracy;
  };
  EXPECT_GE(MeanMetric(*records, "caml", 300.0, accuracy) + 0.05,
            MeanMetric(*records, "caml", 10.0, accuracy));
}

}  // namespace
}  // namespace green
