#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "green/data/amlb_suite.h"
#include "green/data/meta_corpus.h"
#include "green/data/synthetic.h"

namespace green {
namespace {

// --- synthetic generator ---

TEST(SyntheticTest, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.name = "s";
  spec.num_rows = 200;
  spec.num_features = 12;
  spec.num_classes = 3;
  spec.num_categorical = 4;
  auto data = GenerateSynthetic(spec);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_rows(), 200u);
  EXPECT_EQ(data->num_features(), 12u);
  EXPECT_EQ(data->num_classes(), 3);
  EXPECT_EQ(data->NumCategorical(), 4u);
}

TEST(SyntheticTest, RejectsDegenerateSpecs) {
  SyntheticSpec spec;
  spec.num_rows = 0;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
  spec.num_rows = 3;
  spec.num_classes = 10;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
}

TEST(SyntheticTest, AllClassesPopulated) {
  SyntheticSpec spec;
  spec.num_rows = 100;
  spec.num_classes = 7;
  spec.label_noise = 0.0;
  auto data = GenerateSynthetic(spec);
  ASSERT_TRUE(data.ok());
  for (int c : data->ClassCounts()) EXPECT_GT(c, 0);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.num_rows = 50;
  spec.seed = 77;
  auto a = GenerateSynthetic(spec);
  auto b = GenerateSynthetic(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < a->num_rows(); ++r) {
    EXPECT_EQ(a->Label(r), b->Label(r));
    for (size_t j = 0; j < a->num_features(); ++j) {
      EXPECT_DOUBLE_EQ(a->At(r, j), b->At(r, j));
    }
  }
}

TEST(SyntheticTest, SeedChangesData) {
  SyntheticSpec spec;
  spec.num_rows = 50;
  spec.seed = 1;
  auto a = GenerateSynthetic(spec);
  spec.seed = 2;
  auto b = GenerateSynthetic(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (size_t r = 0; r < a->num_rows() && !any_diff; ++r) {
    for (size_t j = 0; j < a->num_features(); ++j) {
      if (a->At(r, j) != b->At(r, j)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, MissingFractionApproximatelyHonored) {
  SyntheticSpec spec;
  spec.num_rows = 1000;
  spec.num_features = 10;
  spec.missing_fraction = 0.1;
  auto data = GenerateSynthetic(spec);
  ASSERT_TRUE(data.ok());
  size_t missing = 0;
  for (size_t r = 0; r < data->num_rows(); ++r) {
    for (size_t j = 0; j < data->num_features(); ++j) {
      if (std::isnan(data->At(r, j))) ++missing;
    }
  }
  EXPECT_NEAR(static_cast<double>(missing) / 10000.0, 0.1, 0.02);
}

TEST(SyntheticTest, CategoricalCodesWithinCardinality) {
  SyntheticSpec spec;
  spec.num_rows = 300;
  spec.num_features = 10;
  spec.num_categorical = 10;
  auto data = GenerateSynthetic(spec);
  ASSERT_TRUE(data.ok());
  for (size_t j = 0; j < data->num_features(); ++j) {
    ASSERT_EQ(data->feature_type(j), FeatureType::kCategorical);
    for (size_t r = 0; r < data->num_rows(); ++r) {
      const double v = data->At(r, j);
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 8.0);
      EXPECT_DOUBLE_EQ(v, std::floor(v));
    }
  }
}

TEST(SyntheticTest, SeparationControlsDifficulty) {
  // Classes drawn far apart should be separable by a nearest-mean rule;
  // nearly-overlapping ones should not.
  auto accuracy_at = [](double separation) {
    SyntheticSpec spec;
    spec.num_rows = 400;
    spec.num_features = 6;
    spec.num_informative = 6;
    spec.num_classes = 2;
    spec.clusters_per_class = 1;
    spec.separation = separation;
    spec.label_noise = 0.0;
    spec.seed = 5;
    auto data = GenerateSynthetic(spec);
    EXPECT_TRUE(data.ok());
    // Class means from the first half, score on the second half.
    std::vector<std::vector<double>> means(
        2, std::vector<double>(data->num_features(), 0.0));
    std::vector<int> counts(2, 0);
    for (size_t r = 0; r < 200; ++r) {
      const int y = data->Label(r);
      ++counts[static_cast<size_t>(y)];
      for (size_t j = 0; j < data->num_features(); ++j) {
        means[static_cast<size_t>(y)][j] += data->At(r, j);
      }
    }
    for (int c = 0; c < 2; ++c) {
      for (double& m : means[static_cast<size_t>(c)]) {
        m /= std::max(1, counts[static_cast<size_t>(c)]);
      }
    }
    int correct = 0;
    for (size_t r = 200; r < 400; ++r) {
      double d0 = 0.0;
      double d1 = 0.0;
      for (size_t j = 0; j < data->num_features(); ++j) {
        d0 += (data->At(r, j) - means[0][j]) * (data->At(r, j) - means[0][j]);
        d1 += (data->At(r, j) - means[1][j]) * (data->At(r, j) - means[1][j]);
      }
      if ((d1 < d0 ? 1 : 0) == data->Label(r)) ++correct;
    }
    return correct / 200.0;
  };
  EXPECT_GT(accuracy_at(4.0), 0.9);
  EXPECT_LT(accuracy_at(0.05), accuracy_at(4.0));
}

// --- AMLB suite ---

TEST(AmlbTest, TableHas39PaperRows) {
  const auto& specs = AmlbTable2();
  ASSERT_EQ(specs.size(), 39u);
  EXPECT_EQ(specs.front().name, "robert");
  EXPECT_EQ(specs.front().features, 7200);
  EXPECT_EQ(specs.back().name, "blood-transfusion-service-center");
  // Spot-check a few well-known rows of Table 2.
  bool found_covertype = false;
  bool found_dionis = false;
  for (const auto& spec : specs) {
    if (spec.name == "covertype") {
      found_covertype = true;
      EXPECT_EQ(spec.instances, 581012);
      EXPECT_EQ(spec.num_classes, 7);
    }
    if (spec.name == "dionis") {
      found_dionis = true;
      EXPECT_EQ(spec.num_classes, 355);
    }
  }
  EXPECT_TRUE(found_covertype);
  EXPECT_TRUE(found_dionis);
}

TEST(AmlbTest, UniqueOpenMlIds) {
  std::set<int> ids;
  for (const auto& spec : AmlbTable2()) {
    EXPECT_TRUE(ids.insert(spec.openml_id).second);
  }
}

TEST(AmlbTest, InstantiationRespectsProfileCaps) {
  const SimulationProfile profile = SimulationProfile::Fast();
  for (const auto& spec : AmlbTable2()) {
    auto data = InstantiateAmlbTask(spec, profile, 1);
    ASSERT_TRUE(data.ok()) << spec.name;
    EXPECT_LE(data->num_rows(), profile.max_rows);
    EXPECT_GE(data->num_rows(), profile.min_rows);
    EXPECT_LE(data->num_features(), profile.max_features);
    EXPECT_LE(data->num_classes(), profile.max_classes);
    EXPECT_EQ(data->nominal_rows(), spec.instances);
    EXPECT_EQ(data->nominal_features(), spec.features);
  }
}

TEST(AmlbTest, RelativeSizeOrderingPreserved) {
  const SimulationProfile profile = SimulationProfile::Fast();
  auto covertype = InstantiateAmlbTask(
      AmlbTable2()[17], profile, 1);  // covertype, 581k rows.
  auto credit = InstantiateAmlbTask(
      AmlbTable2()[25], profile, 1);  // credit-g, 1k rows.
  ASSERT_TRUE(covertype.ok() && credit.ok());
  EXPECT_GT(covertype->num_rows(), credit->num_rows());
}

TEST(AmlbTest, DifficultyIsNameDeterministic) {
  // Different run seeds re-draw the data but keep the task's identity
  // (same shape, same difficulty knobs) — same name, same problem.
  const SimulationProfile profile = SimulationProfile::Fast();
  auto a = InstantiateAmlbTask(AmlbTable2()[25], profile, 1);
  auto b = InstantiateAmlbTask(AmlbTable2()[25], profile, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_rows(), b->num_rows());
  EXPECT_EQ(a->num_features(), b->num_features());
  EXPECT_EQ(a->NumCategorical(), b->NumCategorical());
}

TEST(AmlbTest, SuiteLimit) {
  auto suite = InstantiateAmlbSuite(SimulationProfile::Fast(), 1, 5);
  ASSERT_TRUE(suite.ok());
  EXPECT_EQ(suite->size(), 5u);
  EXPECT_EQ((*suite)[0].name(), "robert");
}

TEST(AmlbTest, ProfilesDiffer) {
  const SimulationProfile fast = SimulationProfile::Fast();
  const SimulationProfile full = SimulationProfile::Full();
  EXPECT_LT(fast.max_rows, full.max_rows);
  EXPECT_LT(fast.repetitions, full.repetitions);
}

// --- meta corpus ---

TEST(MetaCorpusTest, GeneratesRequestedCount) {
  MetaCorpusOptions options;
  options.num_datasets = 24;
  auto corpus = GenerateMetaCorpus(options, SimulationProfile::Fast());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 24u);
}

TEST(MetaCorpusTest, AllBinary) {
  MetaCorpusOptions options;
  options.num_datasets = 10;
  auto corpus = GenerateMetaCorpus(options, SimulationProfile::Fast());
  ASSERT_TRUE(corpus.ok());
  for (const Dataset& d : *corpus) {
    EXPECT_EQ(d.num_classes(), 2);
    EXPECT_GT(d.num_rows(), 0u);
  }
}

TEST(MetaCorpusTest, SpansSizeRange) {
  MetaCorpusOptions options;
  options.num_datasets = 40;
  auto corpus = GenerateMetaCorpus(options, SimulationProfile::Fast());
  ASSERT_TRUE(corpus.ok());
  int64_t min_rows = 1LL << 60;
  int64_t max_rows = 0;
  for (const Dataset& d : *corpus) {
    min_rows = std::min(min_rows, d.nominal_rows());
    max_rows = std::max(max_rows, d.nominal_rows());
  }
  // Log-uniform draws across [500, 120000] should span a wide range.
  EXPECT_LT(min_rows, 5000);
  EXPECT_GT(max_rows, 20000);
}

TEST(MetaCorpusTest, RejectsEmpty) {
  MetaCorpusOptions options;
  options.num_datasets = 0;
  EXPECT_FALSE(
      GenerateMetaCorpus(options, SimulationProfile::Fast()).ok());
}

TEST(MetaCorpusTest, Deterministic) {
  MetaCorpusOptions options;
  options.num_datasets = 5;
  auto a = GenerateMetaCorpus(options, SimulationProfile::Fast());
  auto b = GenerateMetaCorpus(options, SimulationProfile::Fast());
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].num_rows(), (*b)[i].num_rows());
    EXPECT_EQ((*a)[i].At(0, 0), (*b)[i].At(0, 0));
  }
}

}  // namespace
}  // namespace green
