#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "green/data/meta_corpus.h"
#include "green/metaopt/automl_tuner.h"
#include "green/metaopt/representative.h"
#include "green/metaopt/tuned_config_store.h"

namespace green {
namespace {

std::vector<Dataset> SmallCorpus(size_t n) {
  MetaCorpusOptions options;
  options.num_datasets = n;
  SimulationProfile profile = SimulationProfile::Fast();
  profile.max_rows = 240;  // Keep the tuner test fast.
  auto corpus = GenerateMetaCorpus(options, profile);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).value();
}

// --- representative selection ---

TEST(RepresentativeTest, SelectsRequestedCount) {
  const auto corpus = SmallCorpus(20);
  auto picks = SelectRepresentativeDatasets(corpus, 5, 1);
  ASSERT_TRUE(picks.ok());
  EXPECT_LE(picks->size(), 5u);
  EXPECT_GE(picks->size(), 2u);
  for (size_t idx : *picks) EXPECT_LT(idx, corpus.size());
}

TEST(RepresentativeTest, NoDuplicates) {
  const auto corpus = SmallCorpus(20);
  auto picks = SelectRepresentativeDatasets(corpus, 8, 2);
  ASSERT_TRUE(picks.ok());
  std::set<size_t> unique(picks->begin(), picks->end());
  EXPECT_EQ(unique.size(), picks->size());
}

TEST(RepresentativeTest, DeterministicForSeed) {
  const auto corpus = SmallCorpus(16);
  auto a = SelectRepresentativeDatasets(corpus, 4, 7);
  auto b = SelectRepresentativeDatasets(corpus, 4, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(RepresentativeTest, RejectsBadInput) {
  EXPECT_FALSE(SelectRepresentativeDatasets({}, 5, 1).ok());
  EXPECT_FALSE(
      SelectRepresentativeDatasets(SmallCorpus(3), 0, 1).ok());
}

// --- trial decoding ---

TEST(TunerDecodeTest, DimensionStable) {
  EXPECT_EQ(AutoMlTuner::TrialDimension(), 14u);
}

TEST(TunerDecodeTest, AllSwitchesOff) {
  // No model switch set: falls back to the decision-tree core.
  std::vector<double> unit(AutoMlTuner::TrialDimension(), 0.0);
  const CamlParams params = AutoMlTuner::DecodeTrial(unit);
  ASSERT_EQ(params.models.size(), 1u);
  EXPECT_EQ(params.models[0], "decision_tree");
  EXPECT_FALSE(params.refit);
  EXPECT_FALSE(params.random_validation_split);
  EXPECT_FALSE(params.incremental_training);
  EXPECT_NEAR(params.holdout_fraction, 0.15, 1e-9);
  EXPECT_NEAR(params.sampling_fraction, 0.15, 1e-9);
  EXPECT_NEAR(params.evaluation_fraction, 0.03, 1e-6);
}

TEST(TunerDecodeTest, AllSwitchesOn) {
  std::vector<double> unit(AutoMlTuner::TrialDimension(), 1.0);
  const CamlParams params = AutoMlTuner::DecodeTrial(unit);
  EXPECT_EQ(params.models.size(), 8u);
  EXPECT_TRUE(params.refit);
  EXPECT_TRUE(params.random_validation_split);
  EXPECT_TRUE(params.incremental_training);
  EXPECT_NEAR(params.holdout_fraction, 0.5, 1e-9);
  EXPECT_NEAR(params.sampling_fraction, 1.0, 1e-9);
  EXPECT_NEAR(params.evaluation_fraction, 0.35, 1e-6);
}

TEST(TunerDecodeTest, BoundsRespectedForRandomPoints) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> unit(AutoMlTuner::TrialDimension());
    for (double& u : unit) u = rng.NextDouble();
    const CamlParams p = AutoMlTuner::DecodeTrial(unit);
    EXPECT_GE(p.holdout_fraction, 0.15);
    EXPECT_LE(p.holdout_fraction, 0.5);
    EXPECT_GE(p.evaluation_fraction, 0.03 - 1e-9);
    EXPECT_LE(p.evaluation_fraction, 0.35 + 1e-9);
    EXPECT_GE(p.sampling_fraction, 0.15);
    EXPECT_LE(p.sampling_fraction, 1.0);
    EXPECT_GE(p.models.size(), 1u);
  }
}

// --- tuner end-to-end (small) ---

TEST(TunerTest, TunesAndMetersDevelopment) {
  const auto corpus = SmallCorpus(8);
  AutoMlTunerOptions options;
  options.search_time_seconds = 0.5;
  options.bo_iterations = 6;
  options.top_k_datasets = 3;
  options.repetitions = 1;
  options.seed = 5;
  AutoMlTuner tuner(options);

  VirtualClock clock;
  EnergyModel model(MachineModel::Minimal());
  ExecutionContext ctx(&clock, &model, 1);
  auto result = tuner.Tune(corpus, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trials_run, 6);
  EXPECT_GE(result->trials_pruned, 0);
  EXPECT_LE(result->trials_pruned, result->trials_run);
  EXPECT_GT(result->development.kwh(), 0.0);
  EXPECT_GT(result->development_seconds, 0.0);
  EXPECT_GE(result->best_objective, -3.0);
  EXPECT_FALSE(result->best_params.models.empty());
  EXPECT_FALSE(result->representative_indices.empty());
}

TEST(TunerTest, RejectsEmptyCorpus) {
  AutoMlTuner tuner(AutoMlTunerOptions{});
  VirtualClock clock;
  EnergyModel model(MachineModel::Minimal());
  ExecutionContext ctx(&clock, &model, 1);
  EXPECT_FALSE(tuner.Tune({}, &ctx).ok());
}

// --- tuned config store ---

TEST(TunedStoreTest, EmptyIsNotFound) {
  TunedConfigStore store;
  EXPECT_FALSE(store.Get(30.0).ok());
}

TEST(TunedStoreTest, NearestBudgetLookup) {
  TunedConfigStore store;
  CamlParams fast;
  fast.models = {"naive_bayes"};
  CamlParams slow;
  slow.models = {"mlp"};
  store.Put(10.0, fast);
  store.Put(300.0, slow);
  EXPECT_EQ(store.Get(12.0).value().models[0], "naive_bayes");
  EXPECT_EQ(store.Get(200.0).value().models[0], "mlp");
  EXPECT_EQ(store.size(), 2u);
}

TEST(TunedStoreTest, PaperDefaultsCoverAllBudgets) {
  const TunedConfigStore store = TunedConfigStore::PaperDefaults();
  EXPECT_EQ(store.size(), 4u);
  for (double budget : {10.0, 30.0, 60.0, 300.0}) {
    auto params = store.Get(budget);
    ASSERT_TRUE(params.ok());
    EXPECT_FALSE(params->models.empty());
    // Table 5 regularities: incremental training and random validation
    // splitting are always selected; sampling is always enabled.
    EXPECT_TRUE(params->incremental_training);
    EXPECT_TRUE(params->random_validation_split);
    EXPECT_GT(params->sampling_fraction, 0.0);
  }
  // The search space grows with the budget.
  EXPECT_LT(store.Get(10.0)->models.size(),
            store.Get(300.0)->models.size() + 1);
  // Decision trees are in every tuned space.
  for (double budget : {10.0, 30.0, 60.0, 300.0}) {
    const std::vector<std::string> models = store.Get(budget)->models;
    EXPECT_NE(std::find(models.begin(), models.end(), "decision_tree"),
              models.end());
  }
  // Refit at 1 min but not at 5 min (Table 5).
  EXPECT_TRUE(store.Get(60.0)->refit);
  EXPECT_FALSE(store.Get(300.0)->refit);
}

TEST(TunedStoreTest, RenderMentionsParameters) {
  const std::string text = TunedConfigStore::PaperDefaults().Render();
  EXPECT_NE(text.find("decision_tree"), std::string::npos);
  EXPECT_NE(text.find("incremental"), std::string::npos);
  EXPECT_NE(text.find("budget=300"), std::string::npos);
}

}  // namespace
}  // namespace green
