#include "green/common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "green/common/cancel.h"
#include "green/common/retry.h"

namespace green {
namespace {

// --- spec parsing ---

TEST(ParseFaultSpecsTest, EmptyConfigParsesToNoSpecs) {
  auto specs = ParseFaultSpecs("");
  ASSERT_TRUE(specs.ok());
  EXPECT_TRUE(specs->empty());

  specs = ParseFaultSpecs(" ,  , ");
  ASSERT_TRUE(specs.ok());
  EXPECT_TRUE(specs->empty());
}

TEST(ParseFaultSpecsTest, ValidClauses) {
  auto specs = ParseFaultSpecs(
      "run.fit@0.05, run.predict#7=timeout, sweep.cell#5=abort,"
      "powercap.read@1.0=skip");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 4u);

  EXPECT_EQ((*specs)[0].site, "run.fit");
  EXPECT_DOUBLE_EQ((*specs)[0].probability, 0.05);
  EXPECT_EQ((*specs)[0].nth, 0);
  EXPECT_EQ((*specs)[0].kind, FaultKind::kFail);

  EXPECT_EQ((*specs)[1].site, "run.predict");
  EXPECT_EQ((*specs)[1].nth, 7);
  EXPECT_EQ((*specs)[1].kind, FaultKind::kTimeout);

  EXPECT_EQ((*specs)[2].site, "sweep.cell");
  EXPECT_EQ((*specs)[2].nth, 5);
  EXPECT_EQ((*specs)[2].kind, FaultKind::kAbort);

  EXPECT_EQ((*specs)[3].site, "powercap.read");
  EXPECT_DOUBLE_EQ((*specs)[3].probability, 1.0);
  EXPECT_EQ((*specs)[3].kind, FaultKind::kSkip);
}

TEST(ParseFaultSpecsTest, GarbageAndOverflowRejected) {
  // No @/# separator.
  EXPECT_FALSE(ParseFaultSpecs("run.fit").ok());
  // Empty site.
  EXPECT_FALSE(ParseFaultSpecs("@0.5").ok());
  EXPECT_FALSE(ParseFaultSpecs("#3").ok());
  // Probability out of (0, 1].
  EXPECT_FALSE(ParseFaultSpecs("run.fit@0").ok());
  EXPECT_FALSE(ParseFaultSpecs("run.fit@2").ok());
  EXPECT_FALSE(ParseFaultSpecs("run.fit@-0.1").ok());
  // Non-numeric / trailing garbage probability.
  EXPECT_FALSE(ParseFaultSpecs("run.fit@abc").ok());
  EXPECT_FALSE(ParseFaultSpecs("run.fit@0.5x").ok());
  // nth out of range or overflowing.
  EXPECT_FALSE(ParseFaultSpecs("run.fit#0").ok());
  EXPECT_FALSE(ParseFaultSpecs("run.fit#-3").ok());
  EXPECT_FALSE(ParseFaultSpecs("run.fit#9999999999999").ok());
  EXPECT_FALSE(ParseFaultSpecs("run.fit#99999999999999999999999").ok());
  // Both @ and # in one clause.
  EXPECT_FALSE(ParseFaultSpecs("run.fit@0.5#3").ok());
  // Unknown kind.
  EXPECT_FALSE(ParseFaultSpecs("run.fit#1=explode").ok());
  // One bad clause fails the whole strict parse.
  EXPECT_FALSE(ParseFaultSpecs("run.fit#1, run.fit@2").ok());
}

TEST(ParseFaultSpecsTest, LenientDropsBadClausesKeepsGood) {
  const FaultInjector injector = FaultInjector::Lenient(
      "run.fit#1, garbage, run.predict@0.5, @1.0, x#0", 42);
  EXPECT_EQ(injector.size(), 2u);

  const FaultInjector all_bad = FaultInjector::Lenient("nope, @, #", 42);
  EXPECT_TRUE(all_bad.empty());
}

// --- injected status ---

TEST(MakeInjectedStatusTest, KindsMapToCodes) {
  const Status fail = MakeInjectedStatus(FaultKind::kFail, "s");
  EXPECT_EQ(fail.code(), Status::Code::kInternal);
  EXPECT_NE(fail.message().find("injected fault at s"), std::string::npos);

  const Status timeout = MakeInjectedStatus(FaultKind::kTimeout, "s");
  EXPECT_EQ(timeout.code(), Status::Code::kDeadlineExceeded);

  const Status skip = MakeInjectedStatus(FaultKind::kSkip, "s");
  EXPECT_EQ(skip.code(), Status::Code::kUnimplemented);
}

TEST(MakeInjectedStatusDeathTest, AbortAborts) {
  EXPECT_DEATH(MakeInjectedStatus(FaultKind::kAbort, "boom"),
               "injected abort at boom");
}

// --- firing semantics ---

TEST(FaultInjectorTest, EmptyInjectorNeverFires) {
  const FaultInjector injector;
  EXPECT_TRUE(injector.empty());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.Check("run.fit").ok());
  }
}

TEST(FaultInjectorTest, NthFiresExactlyOnceAtNthCall) {
  auto injector = FaultInjector::Parse("run.fit#3", 1);
  ASSERT_TRUE(injector.ok());
  EXPECT_TRUE(injector->Check("run.fit").ok());   // Call 1.
  EXPECT_TRUE(injector->Check("run.fit").ok());   // Call 2.
  EXPECT_FALSE(injector->Check("run.fit").ok());  // Call 3: fires.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(injector->Check("run.fit").ok());  // Never again.
  }
}

TEST(FaultInjectorTest, SiteMismatchNeverFires) {
  auto injector = FaultInjector::Parse("run.fit@1.0,run.predict#1", 1);
  ASSERT_TRUE(injector.ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector->Check("powercap.read").ok());
  }
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFires) {
  auto injector = FaultInjector::Parse("run.fit@1.0", 1);
  ASSERT_TRUE(injector.ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector->Check("run.fit").ok());
  }
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  auto draw = [](uint64_t seed) {
    FaultInjector injector = FaultInjector::Lenient("run.fit@0.5", seed);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(!injector.Check("run.fit").ok());
    }
    return out;
  };
  const std::vector<bool> a = draw(7);
  const std::vector<bool> b = draw(7);
  EXPECT_EQ(a, b);
  // Sanity: p=0.5 over 200 draws hits both outcomes.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 200);

  // A different seed gives a different decision sequence.
  EXPECT_NE(a, draw(8));
}

// --- scoped determinism ---

TEST(FaultScopeTest, CurrentTracksNesting) {
  EXPECT_EQ(FaultScope::Current(), nullptr);
  {
    FaultScope outer("outer");
    EXPECT_EQ(FaultScope::Current(), &outer);
    EXPECT_EQ(FaultScope::Current()->key(), "outer");
    {
      FaultScope inner("inner");
      EXPECT_EQ(FaultScope::Current(), &inner);
    }
    EXPECT_EQ(FaultScope::Current(), &outer);
  }
  EXPECT_EQ(FaultScope::Current(), nullptr);
}

TEST(FaultScopeTest, OrdinalsAdvancePerCheck) {
  FaultScope scope("k");
  EXPECT_EQ(scope.NextOrdinal(), 0u);
  EXPECT_EQ(scope.NextOrdinal(), 1u);
  EXPECT_EQ(scope.NextOrdinal(), 2u);
}

TEST(FaultScopeTest, ScopedDecisionsIndependentOfExecutionOrder) {
  // The same (scope key, ordinal) must draw the same fault decision no
  // matter in which order scopes are visited or interleaved — this is
  // what makes parallel sweeps bit-identical to sequential ones.
  const std::vector<std::string> keys = {"cell-a", "cell-b", "cell-c",
                                         "cell-d"};
  auto draw_all = [&](bool reversed) {
    FaultInjector injector = FaultInjector::Lenient("run.fit@0.5", 11);
    std::vector<std::pair<std::string, bool>> decisions;
    std::vector<std::string> order = keys;
    if (reversed) std::reverse(order.begin(), order.end());
    for (const std::string& key : order) {
      FaultScope scope(key);
      for (int i = 0; i < 8; ++i) {
        decisions.emplace_back(key, !injector.Check("run.fit").ok());
      }
    }
    std::sort(decisions.begin(), decisions.end());
    return decisions;
  };
  EXPECT_EQ(draw_all(false), draw_all(true));
}

// --- concurrency (run under TSan via the `concurrency` ctest label) ---

TEST(FaultInjectorConcurrencyTest, NthFiresExactlyOnceUnderContention) {
  auto injector = FaultInjector::Parse("hammer#100", 3);
  ASSERT_TRUE(injector.ok());
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (!injector->Check("hammer").ok()) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fired.load(), 1);  // Single-shot latch, no double fire.
}

TEST(FaultInjectorConcurrencyTest, ScopedChecksRaceFree) {
  const FaultInjector injector =
      FaultInjector::Lenient("hammer@0.5", 5);
  std::vector<std::thread> threads;
  std::atomic<int> fired{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      FaultScope scope("thread-" + std::to_string(t));
      for (int i = 0; i < 200; ++i) {
        if (!injector.Check("hammer").ok()) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(fired.load(), 0);
  EXPECT_LT(fired.load(), 8 * 200);
}

TEST(CancelTokenConcurrencyTest, SetOnceVisibleEverywhere) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  std::vector<std::thread> threads;
  std::atomic<int> observed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!token.cancelled()) {
      }
      observed.fetch_add(1);
    });
  }
  token.Cancel();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(observed.load(), 4);
  EXPECT_TRUE(token.cancelled());  // Cancellation is monotonic.
}

// --- retry policy ---

TEST(RetryPolicyTest, BackoffSequenceAndCap) {
  RetryPolicy policy;  // 0.5s initial, x2, 30s cap.
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(7), 30.0);   // Capped.
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(50), 30.0);  // No overflow.
}

TEST(RetryPolicyTest, RetryableClassification) {
  EXPECT_TRUE(IsRetryable(Status::Internal("transient")));
  EXPECT_TRUE(IsRetryable(Status::IoError("disk hiccup")));
  EXPECT_TRUE(IsRetryable(Status::ResourceExhausted("oom")));
  EXPECT_FALSE(IsRetryable(Status::Ok()));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("semantic")));
  EXPECT_FALSE(IsRetryable(Status::Unimplemented("unsupported")));
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("would repeat")));
  EXPECT_FALSE(IsRetryable(Status::NotFound("missing")));
}

}  // namespace
}  // namespace green
