#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "green/common/rng.h"
#include "green/ml/metrics.h"

namespace green {
namespace {

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({1}, {1}), 1.0);
}

TEST(BalancedAccuracyTest, EqualsAccuracyWhenBalanced) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> pred = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(BalancedAccuracy(truth, pred, 2), 0.75);
}

TEST(BalancedAccuracyTest, HandlesImbalance) {
  // 90 of class 0, 10 of class 1; predicting all-zero has 50% balanced
  // accuracy regardless of the skew — the reason the paper uses it.
  std::vector<int> truth(100, 0);
  std::fill(truth.begin() + 90, truth.end(), 1);
  const std::vector<int> all_zero(100, 0);
  EXPECT_DOUBLE_EQ(BalancedAccuracy(truth, all_zero, 2), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy(truth, all_zero), 0.9);
}

TEST(BalancedAccuracyTest, SkipsAbsentClasses) {
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0, 0}, {0, 0}, 3), 1.0);
}

TEST(BalancedAccuracyTest, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0, 1, 2}, {0, 1, 2}, 3), 1.0);
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0, 1, 2}, {1, 2, 0}, 3), 0.0);
}

TEST(LogLossTest, PerfectPredictionIsZero) {
  EXPECT_NEAR(LogLoss({0, 1}, {{1.0, 0.0}, {0.0, 1.0}}), 0.0, 1e-9);
}

TEST(LogLossTest, UniformIsLogK) {
  EXPECT_NEAR(LogLoss({0, 1}, {{0.5, 0.5}, {0.5, 0.5}}), std::log(2.0),
              1e-12);
}

TEST(LogLossTest, ClipsZeros) {
  const double loss = LogLoss({0}, {{0.0, 1.0}});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 30.0);
}

TEST(MacroF1Test, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
}

TEST(MacroF1Test, KnownValue) {
  // Class 0: P=1, R=0.5 -> F1=2/3. Class 1: P=0.5, R=1 -> F1=2/3.
  EXPECT_NEAR(MacroF1({0, 0, 1}, {0, 1, 1}, 2), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixTest, Counts) {
  const auto cm = ConfusionMatrix({0, 0, 1, 1, 1}, {0, 1, 1, 1, 0}, 2);
  EXPECT_EQ(cm[0][0], 1);
  EXPECT_EQ(cm[0][1], 1);
  EXPECT_EQ(cm[1][0], 1);
  EXPECT_EQ(cm[1][1], 2);
}

// --- property sweeps ---

class MetricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricPropertyTest, MetricsBoundedAndPermutationInvariant) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k) * 101);
  const size_t n = 200;
  std::vector<int> truth(n);
  std::vector<int> pred(n);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(k)));
    pred[i] = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(k)));
  }
  const double acc = Accuracy(truth, pred);
  const double bacc = BalancedAccuracy(truth, pred, k);
  const double f1 = MacroF1(truth, pred, k);
  for (double m : {acc, bacc, f1}) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }

  // Shuffling (truth, pred) pairs jointly must not change any metric.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<int> truth2(n);
  std::vector<int> pred2(n);
  for (size_t i = 0; i < n; ++i) {
    truth2[i] = truth[order[i]];
    pred2[i] = pred[order[i]];
  }
  EXPECT_DOUBLE_EQ(Accuracy(truth2, pred2), acc);
  EXPECT_DOUBLE_EQ(BalancedAccuracy(truth2, pred2, k), bacc);
  EXPECT_DOUBLE_EQ(MacroF1(truth2, pred2, k), f1);

  // Random guessing has expected balanced accuracy ~ 1/k.
  EXPECT_NEAR(bacc, 1.0 / k, 0.15);

  // Confusion matrix row sums equal class supports.
  const auto cm = ConfusionMatrix(truth, pred, k);
  for (int c = 0; c < k; ++c) {
    int row_sum = 0;
    for (int o = 0; o < k; ++o) row_sum += cm[c][o];
    int support = 0;
    for (int t : truth) {
      if (t == c) ++support;
    }
    EXPECT_EQ(row_sum, support);
  }
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, MetricPropertyTest,
                         ::testing::Values(2, 3, 5, 10, 20));

}  // namespace
}  // namespace green
