#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/record_io.h"
#include "green/bench_util/table_printer.h"
#include "green/common/cancel.h"
#include "green/common/fault.h"
#include "green/common/retry.h"

namespace green {
namespace {

// --- aggregate ---

TEST(AggregateTest, ComputeStats) {
  const Stats s = ComputeStats({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
  EXPECT_EQ(s.n, 3u);
  EXPECT_EQ(ComputeStats({}).n, 0u);
}

RunRecord MakeRecord(const std::string& system,
                     const std::string& dataset, double budget,
                     double acc) {
  RunRecord r;
  r.system = system;
  r.dataset = dataset;
  r.paper_budget_seconds = budget;
  r.test_balanced_accuracy = acc;
  return r;
}

TEST(AggregateTest, BootstrapMeanNearTrueMean) {
  std::vector<RunRecord> records;
  for (int rep = 0; rep < 5; ++rep) {
    records.push_back(MakeRecord("caml", "a", 30, 0.8));
    records.push_back(MakeRecord("caml", "b", 30, 0.6));
  }
  const Stats s = BootstrapAcrossDatasets(
      records,
      [](const RunRecord& r) { return r.test_balanced_accuracy; }, 200,
      1);
  EXPECT_NEAR(s.mean, 0.7, 1e-9);   // No variance across repetitions.
  EXPECT_NEAR(s.stddev, 0.0, 1e-9);
}

TEST(AggregateTest, BootstrapCapturesRunVariance) {
  std::vector<RunRecord> records;
  records.push_back(MakeRecord("caml", "a", 30, 0.5));
  records.push_back(MakeRecord("caml", "a", 30, 0.9));
  const Stats s = BootstrapAcrossDatasets(
      records,
      [](const RunRecord& r) { return r.test_balanced_accuracy; }, 500,
      1);
  EXPECT_NEAR(s.mean, 0.7, 0.05);
  EXPECT_GT(s.stddev, 0.1);
}

TEST(AggregateTest, FilterAndDistinct) {
  std::vector<RunRecord> records;
  records.push_back(MakeRecord("caml", "a", 30, 0.5));
  records.push_back(MakeRecord("caml", "a", 60, 0.6));
  records.push_back(MakeRecord("flaml", "a", 30, 0.7));
  EXPECT_EQ(Filter(records, "caml", 30).size(), 1u);
  EXPECT_EQ(Filter(records, "caml", 10).size(), 0u);
  EXPECT_EQ(DistinctSystems(records).size(), 2u);
  EXPECT_EQ(DistinctBudgets(records, "caml").size(), 2u);
  EXPECT_EQ(DistinctBudgets(records, "flaml").size(), 1u);
}

// --- table printer ---

TEST(TablePrinterTest, RendersAligned) {
  TablePrinter printer({"system", "kWh"});
  printer.AddRow({"caml", "0.5"});
  printer.AddRow({"autogluon", "1.25"});
  const std::string out = printer.Render();
  EXPECT_NE(out.find("| system    | kWh  |"), std::string::npos);
  EXPECT_NE(out.find("| autogluon | 1.25 |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter printer({"a", "b", "c"});
  printer.AddRow({"only"});
  EXPECT_NE(printer.Render().find("| only |"), std::string::npos);
}

// --- experiment runner ---

class RunnerTest : public ::testing::Test {
 protected:
  static ExperimentConfig SmallConfig() {
    ExperimentConfig config;
    config.dataset_limit = 2;
    config.repetitions = 1;
    config.seed = 7;
    return config;
  }
};

TEST_F(RunnerTest, AllSystemNamesConstructible) {
  ExperimentRunner runner(SmallConfig());
  for (const std::string& name : AllSystemNames()) {
    auto system = runner.MakeSystem(name, 30.0);
    ASSERT_TRUE(system.ok()) << name;
    EXPECT_FALSE((*system)->Name().empty());
  }
  EXPECT_FALSE(runner.MakeSystem("nonexistent", 30.0).ok());
}

TEST_F(RunnerTest, MinBudgetsMatchPaper) {
  ExperimentRunner runner(SmallConfig());
  EXPECT_EQ(runner.MinBudget("autosklearn1"), 30.0);
  EXPECT_EQ(runner.MinBudget("autosklearn2"), 30.0);
  EXPECT_EQ(runner.MinBudget("tpot"), 60.0);
  EXPECT_EQ(runner.MinBudget("caml"), 0.0);
}

TEST_F(RunnerTest, RunOneProducesSaneRecord) {
  ExperimentRunner runner(SmallConfig());
  auto record = runner.RunOne("caml", runner.suite()[0], 30.0, 0);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->system, "caml");
  EXPECT_EQ(record->paper_budget_seconds, 30.0);
  EXPECT_GT(record->test_balanced_accuracy, 0.0);
  EXPECT_LE(record->test_balanced_accuracy, 1.0);
  EXPECT_GT(record->execution_kwh, 0.0);
  EXPECT_GT(record->execution_seconds, 0.0);
  EXPECT_GT(record->inference_kwh_per_instance, 0.0);
  EXPECT_GE(record->num_pipelines, 1u);
}

TEST_F(RunnerTest, RunsAreReproducible) {
  ExperimentRunner runner(SmallConfig());
  auto a = runner.RunOne("flaml", runner.suite()[0], 10.0, 0);
  auto b = runner.RunOne("flaml", runner.suite()[0], 10.0, 0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->test_balanced_accuracy, b->test_balanced_accuracy);
  EXPECT_DOUBLE_EQ(a->execution_kwh, b->execution_kwh);
}

TEST_F(RunnerTest, RepetitionsDiffer) {
  ExperimentRunner runner(SmallConfig());
  auto a = runner.RunOne("caml", runner.suite()[0], 60.0, 0);
  auto b = runner.RunOne("caml", runner.suite()[0], 60.0, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  // Different repetition seeds — the runs must not be bit-identical in
  // every reported metric (they draw different splits and proposals).
  const bool all_equal =
      a->execution_kwh == b->execution_kwh &&
      a->test_balanced_accuracy == b->test_balanced_accuracy &&
      a->inference_kwh_per_instance == b->inference_kwh_per_instance;
  EXPECT_FALSE(all_equal);
}

TEST_F(RunnerTest, SweepRecordsUnsupportedBudgetsAsSkipped) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  ExperimentRunner runner(config);
  // TPOT's minimum budget is 60 s: the 10 s cells are enumerated but
  // recorded as skipped — no cell silently disappears from the stream.
  auto records = runner.Sweep({"tpot"}, {10.0, 60.0});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);  // 1 dataset x 2 budgets x 1 rep.
  for (const RunRecord& r : *records) {
    if (r.paper_budget_seconds == 10.0) {
      EXPECT_EQ(r.outcome, RunOutcome::kSkipped);
      EXPECT_EQ(r.attempts, 0);
      EXPECT_NE(r.error.find("below system minimum"), std::string::npos);
    } else {
      EXPECT_EQ(r.outcome, RunOutcome::kOk);
      EXPECT_GT(r.test_balanced_accuracy, 0.0);
    }
  }
  EXPECT_EQ(OkOnly(*records).size(), 1u);
}

TEST_F(RunnerTest, TabPfnSweepCollapsesBudgets) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"tabpfn"}, {10.0, 30.0, 60.0});
  ASSERT_TRUE(records.ok());
  // One budget point only: TabPFN has no search-time parameter.
  EXPECT_EQ(DistinctBudgets(*records, "tabpfn").size(), 1u);
}

TEST_F(RunnerTest, CoresOverrideChangesEnergy) {
  ExperimentRunner runner(SmallConfig());
  auto one = runner.RunOne("caml", runner.suite()[0], 10.0, 0, 1);
  auto eight = runner.RunOne("caml", runner.suite()[0], 10.0, 0, 8);
  ASSERT_TRUE(one.ok() && eight.ok());
  EXPECT_NE(one->execution_kwh, eight->execution_kwh);
}

TEST_F(RunnerTest, Askl2BuildsMetaStoreAndChargesDevelopment) {
  ExperimentRunner runner(SmallConfig());
  EXPECT_EQ(runner.development_kwh(), 0.0);
  auto record = runner.RunOne("autosklearn2", runner.suite()[0], 30.0, 0);
  ASSERT_TRUE(record.ok());
  EXPECT_GT(runner.development_kwh(), 0.0);
}

TEST_F(RunnerTest, ParallelSweepBitIdenticalToSequential) {
  ExperimentConfig config = SmallConfig();
  config.repetitions = 2;
  ExperimentRunner sequential(config);
  auto seq = sequential.Sweep({"caml", "flaml"}, {10.0, 30.0});
  ASSERT_TRUE(seq.ok());
  ASSERT_FALSE(seq->empty());

  config.jobs = 4;
  ExperimentRunner parallel(config);
  auto par = parallel.Sweep({"caml", "flaml"}, {10.0, 30.0});
  ASSERT_TRUE(par.ok());

  // Same cells, same order, byte-identical serialized records: run seeds
  // are cell-local, so worker interleaving must not leak into results.
  ASSERT_EQ(seq->size(), par->size());
  for (size_t i = 0; i < seq->size(); ++i) {
    EXPECT_EQ(RecordToJson((*seq)[i]), RecordToJson((*par)[i])) << i;
  }
}

TEST_F(RunnerTest, ParallelSweepBuildsMetaStoreExactlyOnce) {
  ExperimentConfig config = SmallConfig();
  config.jobs = 4;
  ExperimentRunner runner(config);
  // Several concurrent ASKL cells race to EnsureMetaStore; call_once
  // must charge development energy a single time.
  auto records = runner.Sweep({"autosklearn2"}, {30.0});
  ASSERT_TRUE(records.ok());
  ASSERT_FALSE(records->empty());
  const double dev_kwh = runner.development_kwh();
  EXPECT_GT(dev_kwh, 0.0);

  ExperimentRunner once(SmallConfig());
  ASSERT_TRUE(once.RunOne("autosklearn2", once.suite()[0], 30.0, 0).ok());
  EXPECT_DOUBLE_EQ(dev_kwh, once.development_kwh());
}

TEST_F(RunnerTest, SweepReportsWallClock) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  ExperimentRunner runner(config);
  EXPECT_EQ(runner.last_sweep_wall_seconds(), 0.0);
  ASSERT_TRUE(runner.Sweep({"caml"}, {10.0}).ok());
  EXPECT_GT(runner.last_sweep_wall_seconds(), 0.0);
}

TEST_F(RunnerTest, MinBudgetTracksSystemDeclaration) {
  ExperimentRunner runner(SmallConfig());
  // The harness gate must agree with each system's own declaration —
  // the values can never drift apart again.
  for (const std::string& name : AllSystemNames()) {
    auto probe = runner.MakeSystem(name, 60.0);
    ASSERT_TRUE(probe.ok()) << name;
    EXPECT_EQ(runner.MinBudget(name), (*probe)->MinBudgetSeconds())
        << name;
  }
  EXPECT_EQ(runner.MinBudget("nonexistent"), 0.0);
}

TEST_F(RunnerTest, JobsFromEnvParsing) {
  EXPECT_GE(JobsFromEnv(), 1);  // Whatever the environment, never < 1.
}

TEST_F(RunnerTest, ConfigFromEnvDefaultsToFast) {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  EXPECT_GT(config.dataset_limit, 0u);  // Fast subset unless GREEN_FULL.
  EXPECT_GT(config.budget_scale, 0.0);
}

// --- env parser edge cases ---

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_value_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(EnvParserTest, JobsEmptyGarbageOverflow) {
  {
    EnvGuard guard("GREEN_JOBS", nullptr);
    EXPECT_EQ(JobsFromEnv(), 1);
  }
  {
    EnvGuard guard("GREEN_JOBS", "");
    EXPECT_EQ(JobsFromEnv(), 1);
  }
  {
    EnvGuard guard("GREEN_JOBS", "banana");
    EXPECT_EQ(JobsFromEnv(), 1);
  }
  {
    EnvGuard guard("GREEN_JOBS", "4x");  // Trailing garbage.
    EXPECT_EQ(JobsFromEnv(), 1);
  }
  {
    // LONG_MAX-scale input must clamp, not overflow the int cast.
    EnvGuard guard("GREEN_JOBS", "99999999999999999999");
    EXPECT_EQ(JobsFromEnv(), 4096);
  }
  {
    EnvGuard guard("GREEN_JOBS", "-17");
    EXPECT_EQ(JobsFromEnv(), 1);
  }
  {
    EnvGuard guard("GREEN_JOBS", "3");
    EXPECT_EQ(JobsFromEnv(), 3);
  }
  {
    EnvGuard guard("GREEN_JOBS", "0");
    EXPECT_GE(JobsFromEnv(), 1);  // Hardware concurrency.
  }
}

TEST(EnvParserTest, FaultsAndJournalPassThrough) {
  {
    EnvGuard faults("GREEN_FAULTS", nullptr);
    EnvGuard journal("GREEN_JOURNAL", nullptr);
    EXPECT_EQ(FaultsFromEnv(), "");
    EXPECT_EQ(JournalFromEnv(), "");
  }
  {
    EnvGuard faults("GREEN_FAULTS", "run.fit@0.5");
    EnvGuard journal("GREEN_JOURNAL", "/tmp/journal.jsonl");
    EXPECT_EQ(FaultsFromEnv(), "run.fit@0.5");
    EXPECT_EQ(JournalFromEnv(), "/tmp/journal.jsonl");
  }
  {
    // A garbage GREEN_FAULTS must not break startup: Lenient drops the
    // bad clauses and keeps the good ones.
    const FaultInjector injector = FaultInjector::Lenient(
        "garbage, run.fit@2.0, run.fit#0, @0.5, run.fit#3", 1);
    EXPECT_EQ(injector.size(), 1u);  // Only run.fit#3 survives.
  }
}

TEST(EnvParserTest, RetriesAndCellTimeout) {
  const int fallback = RetryPolicy().max_attempts;
  {
    EnvGuard guard("GREEN_RETRIES", nullptr);
    EXPECT_EQ(RetriesFromEnv(), fallback);
  }
  {
    EnvGuard guard("GREEN_RETRIES", "nope");
    EXPECT_EQ(RetriesFromEnv(), fallback);
  }
  {
    EnvGuard guard("GREEN_RETRIES", "99999999999999999999");
    EXPECT_EQ(RetriesFromEnv(), 100);  // Clamped.
  }
  {
    EnvGuard guard("GREEN_RETRIES", "-2");
    EXPECT_EQ(RetriesFromEnv(), 1);  // Clamped: at least one attempt.
  }
  {
    EnvGuard guard("GREEN_RETRIES", "5");
    EXPECT_EQ(RetriesFromEnv(), 5);
  }
  {
    EnvGuard guard("GREEN_CELL_TIMEOUT", nullptr);
    EXPECT_EQ(CellTimeoutFromEnv(), 0.0);
  }
  {
    EnvGuard guard("GREEN_CELL_TIMEOUT", "abc");
    EXPECT_EQ(CellTimeoutFromEnv(), 0.0);
  }
  {
    EnvGuard guard("GREEN_CELL_TIMEOUT", "-5");
    EXPECT_EQ(CellTimeoutFromEnv(), 0.0);
  }
  {
    EnvGuard guard("GREEN_CELL_TIMEOUT", "2.5");
    EXPECT_EQ(CellTimeoutFromEnv(), 2.5);
  }
  {
    EnvGuard resume("GREEN_RESUME", "1");
    EXPECT_TRUE(ResumeFromEnv());
  }
  {
    EnvGuard resume("GREEN_RESUME", "0");
    EXPECT_FALSE(ResumeFromEnv());
  }
}

// --- fault tolerance ---

class FaultyRunnerTest : public RunnerTest {};

TEST_F(FaultyRunnerTest, AlwaysFiringFaultFailsEveryCellAfterRetries) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  config.faults = "run.fit@1.0";
  config.retry.max_attempts = 2;
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  for (const RunRecord& r : *records) {
    EXPECT_EQ(r.outcome, RunOutcome::kFailed);
    EXPECT_EQ(r.attempts, 2);  // Retried, then gave up.
    EXPECT_NE(r.error.find("injected fault"), std::string::npos);
  }
  EXPECT_TRUE(OkOnly(*records).empty());
}

TEST_F(FaultyRunnerTest, ExactlyKCellsFailWithCorrectTaxonomy) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 2;
  config.repetitions = 2;
  // Two single-shot faults with different kinds; retries disabled so
  // the taxonomy is visible in the records.
  config.faults = "run.fit#2,run.fit#4=timeout";
  config.retry.max_attempts = 1;
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 8u);  // 2 datasets x 2 budgets x 2 reps.
  size_t failed = 0, timeouts = 0;
  for (const RunRecord& r : *records) {
    if (r.outcome == RunOutcome::kFailed) ++failed;
    if (r.outcome == RunOutcome::kTimeout) ++timeouts;
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(timeouts, 1u);
  EXPECT_EQ(OkOnly(*records).size(), 6u);

  const std::string summary = RenderFailureSummary(*records);
  EXPECT_NE(summary.find("caml"), std::string::npos);
  const auto counts = CountOutcomes(*records);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].second.ok, 6u);
  EXPECT_EQ(counts[0].second.failed, 1u);
  EXPECT_EQ(counts[0].second.timeout, 1u);
}

TEST_F(FaultyRunnerTest, FailureSummaryBreaksFailuresDownPerFaultSite) {
  std::vector<RunRecord> records(4);
  records[0].system = "caml";
  records[0].outcome = RunOutcome::kFailed;
  records[0].error = "run failed: injected fault at run.fit (attempt 1)";
  records[1].system = "caml";
  records[1].outcome = RunOutcome::kTimeout;
  records[1].error = "injected timeout at serve.predict";
  records[2].system = "flaml";
  records[2].outcome = RunOutcome::kFailed;
  records[2].error = "organic: singular matrix";  // No marker: no site row.
  records[3].system = "flaml";
  records[3].outcome = RunOutcome::kOk;

  const std::string summary = RenderFailureSummary(records);
  EXPECT_NE(summary.find("failures by injected fault site"),
            std::string::npos);
  EXPECT_NE(summary.find("run.fit"), std::string::npos);
  EXPECT_NE(summary.find("serve.predict"), std::string::npos);
  EXPECT_EQ(summary.find("singular"), std::string::npos);

  // Purely organic failures keep the original one-table output.
  const std::string organic =
      RenderFailureSummary({records[2], records[3]});
  EXPECT_NE(organic.find("flaml"), std::string::npos);
  EXPECT_EQ(organic.find("fault site"), std::string::npos);
}

TEST_F(FaultyRunnerTest, FailureSummaryAppendsExtraFailureSites) {
  std::vector<RunRecord> records(1);
  records[0].system = "caml";
  records[0].outcome = RunOutcome::kOk;

  // All cells ok, but the harness lost journal writes: the summary must
  // still surface them as a site row.
  const std::string summary =
      RenderFailureSummary(records, {{"journal.append", 3}});
  EXPECT_NE(summary.find("journal.append"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);
  // Zero-count extras render nothing at all.
  EXPECT_TRUE(RenderFailureSummary(records, {{"journal.append", 0}})
                  .empty());
}

TEST_F(FaultyRunnerTest, InjectedFaultSiteExtraction) {
  EXPECT_EQ(InjectedFaultSite("injected fault at run.fit"), "run.fit");
  EXPECT_EQ(InjectedFaultSite("x: injected timeout at serve.batch (y)"),
            "serve.batch");
  EXPECT_EQ(InjectedFaultSite("no marker here"), "");
}

TEST_F(FaultyRunnerTest, RetryRecoversSingleShotFault) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 2;
  config.faults = "run.fit#2";  // Transient: fires once, ever.
  config.retry.max_attempts = 2;
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 4u);
  int retried_cells = 0;
  for (const RunRecord& r : *records) {
    EXPECT_EQ(r.outcome, RunOutcome::kOk);
    if (r.attempts == 2) ++retried_cells;
  }
  EXPECT_EQ(retried_cells, 1);  // Exactly the cell that drew the fault.
}

TEST_F(FaultyRunnerTest, ProbabilisticFaultsIdenticalAcrossJobCounts) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 2;
  config.repetitions = 2;
  config.faults = "run.fit@0.5";
  config.retry.max_attempts = 2;
  ExperimentRunner sequential(config);
  auto seq = sequential.Sweep({"caml", "flaml"}, {10.0, 30.0});
  ASSERT_TRUE(seq.ok());

  config.jobs = 4;
  ExperimentRunner parallel(config);
  auto par = parallel.Sweep({"caml", "flaml"}, {10.0, 30.0});
  ASSERT_TRUE(par.ok());

  // Probabilistic draws are keyed by (cell, attempt), never by thread
  // interleaving: the faulty sweep is as reproducible as a clean one.
  ASSERT_EQ(seq->size(), par->size());
  bool any_failed = false;
  for (size_t i = 0; i < seq->size(); ++i) {
    EXPECT_EQ(RecordToJson((*seq)[i]), RecordToJson((*par)[i])) << i;
    any_failed |= (*seq)[i].outcome != RunOutcome::kOk;
  }
  EXPECT_TRUE(any_failed);  // p=0.5 over 16 cells: some must draw it.
}

TEST_F(FaultyRunnerTest, PreCancelledCellRecordsTimeout) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  ExperimentRunner runner(config);
  CancelToken cancelled;
  cancelled.Cancel();
  for (const std::string& system :
       {std::string("caml"), std::string("flaml"), std::string("tabpfn"),
        std::string("autogluon"), std::string("random_search")}) {
    const RunRecord record = runner.RunCell(
        system, runner.suite()[0], 60.0, 0, /*cores=*/0, &cancelled);
    EXPECT_EQ(record.outcome, RunOutcome::kTimeout) << system;
    EXPECT_NE(record.error.find("cancelled"), std::string::npos)
        << system;
  }
}

TEST_F(FaultyRunnerTest, WatchdogSweepAlwaysTerminates) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  config.cell_timeout_seconds = 1e-6;  // Cancels anything measurable.
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"caml"}, {300.0});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  // A cancelled cell is a recorded timeout, never a stuck sweep. (A cell
  // can still finish before the watchdog's first scan; both outcomes
  // are legal, hanging is not.)
  EXPECT_TRUE((*records)[0].outcome == RunOutcome::kOk ||
              (*records)[0].outcome == RunOutcome::kTimeout);
}

TEST_F(FaultyRunnerTest, MetaStoreBuildFailureRecoversOnRetry) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  config.faults = "askl.metastore.build#1";
  config.retry.max_attempts = 2;
  ExperimentRunner runner(config);
  // Attempt 1 hits the injected build failure; the store must NOT be
  // poisoned — attempt 2 rebuilds and succeeds.
  const RunRecord record =
      runner.RunCell("autosklearn2", runner.suite()[0], 30.0, 0);
  EXPECT_EQ(record.outcome, RunOutcome::kOk);
  EXPECT_EQ(record.attempts, 2);
  EXPECT_GT(runner.development_kwh(), 0.0);
}

// --- journal / resume ---

class JournalTest : public RunnerTest {
 protected:
  static std::string JournalPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(JournalTest, SweepWritesJournalMatchingRecords) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  config.journal_path = JournalPath("journal_basic.jsonl");
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(records.ok());

  auto journaled = ReadJournalJsonl(config.journal_path);
  ASSERT_TRUE(journaled.ok());
  ASSERT_EQ(journaled->size(), records->size());
  // Journal lines round-trip to the records byte-identically (order may
  // differ under parallel sweeps; here jobs=1 keeps it aligned).
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ(RecordToJson((*journaled)[i]), RecordToJson((*records)[i]));
  }
  std::remove(config.journal_path.c_str());
}

TEST_F(JournalTest, ResumeLoadsInsteadOfRerunning) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  config.journal_path = JournalPath("journal_resume.jsonl");
  ExperimentRunner first(config);
  auto original = first.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(original.ok());

  // Resume over a COMPLETE journal with an always-firing fault: if any
  // cell were re-run it would come back failed, so all-ok proves every
  // cell was loaded from the journal.
  config.resume = true;
  config.faults = "run.fit@1.0";
  ExperimentRunner second(config);
  auto resumed = second.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed->size(), original->size());
  for (size_t i = 0; i < resumed->size(); ++i) {
    EXPECT_EQ((*resumed)[i].outcome, RunOutcome::kOk);
    EXPECT_EQ(RecordToJson((*resumed)[i]), RecordToJson((*original)[i]));
  }
  EXPECT_EQ(second.last_sweep_resumed_cells(), original->size());
  std::remove(config.journal_path.c_str());
}

TEST_F(JournalTest, AbortedSweepResumesByteIdentical) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 2;
  config.journal_path = JournalPath("journal_abort.jsonl");
  std::remove(config.journal_path.c_str());

  // Reference: the same sweep uninterrupted, without a journal.
  ExperimentConfig ref_config = config;
  ref_config.journal_path.clear();
  ExperimentRunner reference(ref_config);
  auto expected = reference.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 4u);

  // Kill the sweep on its third cell via an injected abort. The death
  // test's child process journals the first two cells, then dies.
  ExperimentConfig crash_config = config;
  crash_config.faults = "sweep.cell#3=abort";
  EXPECT_DEATH(
      {
        ExperimentRunner crashing(crash_config);
        (void)crashing.Sweep({"caml"}, {10.0, 30.0});
      },
      "injected abort");

  auto journaled = ReadJournalJsonl(config.journal_path);
  ASSERT_TRUE(journaled.ok());
  EXPECT_EQ(journaled->size(), 2u);

  // Restart with --resume: only the missing cells run; the record
  // stream is byte-identical to the uninterrupted sweep.
  ExperimentConfig resume_config = config;
  resume_config.resume = true;
  ExperimentRunner resumed(resume_config);
  auto records = resumed.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), expected->size());
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ(RecordToJson((*records)[i]), RecordToJson((*expected)[i]))
        << i;
  }
  EXPECT_EQ(resumed.last_sweep_resumed_cells(), 2u);
  std::remove(config.journal_path.c_str());
}

}  // namespace
}  // namespace green
