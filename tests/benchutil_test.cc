#include <gtest/gtest.h>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/record_io.h"
#include "green/bench_util/table_printer.h"

namespace green {
namespace {

// --- aggregate ---

TEST(AggregateTest, ComputeStats) {
  const Stats s = ComputeStats({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
  EXPECT_EQ(s.n, 3u);
  EXPECT_EQ(ComputeStats({}).n, 0u);
}

RunRecord MakeRecord(const std::string& system,
                     const std::string& dataset, double budget,
                     double acc) {
  RunRecord r;
  r.system = system;
  r.dataset = dataset;
  r.paper_budget_seconds = budget;
  r.test_balanced_accuracy = acc;
  return r;
}

TEST(AggregateTest, BootstrapMeanNearTrueMean) {
  std::vector<RunRecord> records;
  for (int rep = 0; rep < 5; ++rep) {
    records.push_back(MakeRecord("caml", "a", 30, 0.8));
    records.push_back(MakeRecord("caml", "b", 30, 0.6));
  }
  const Stats s = BootstrapAcrossDatasets(
      records,
      [](const RunRecord& r) { return r.test_balanced_accuracy; }, 200,
      1);
  EXPECT_NEAR(s.mean, 0.7, 1e-9);   // No variance across repetitions.
  EXPECT_NEAR(s.stddev, 0.0, 1e-9);
}

TEST(AggregateTest, BootstrapCapturesRunVariance) {
  std::vector<RunRecord> records;
  records.push_back(MakeRecord("caml", "a", 30, 0.5));
  records.push_back(MakeRecord("caml", "a", 30, 0.9));
  const Stats s = BootstrapAcrossDatasets(
      records,
      [](const RunRecord& r) { return r.test_balanced_accuracy; }, 500,
      1);
  EXPECT_NEAR(s.mean, 0.7, 0.05);
  EXPECT_GT(s.stddev, 0.1);
}

TEST(AggregateTest, FilterAndDistinct) {
  std::vector<RunRecord> records;
  records.push_back(MakeRecord("caml", "a", 30, 0.5));
  records.push_back(MakeRecord("caml", "a", 60, 0.6));
  records.push_back(MakeRecord("flaml", "a", 30, 0.7));
  EXPECT_EQ(Filter(records, "caml", 30).size(), 1u);
  EXPECT_EQ(Filter(records, "caml", 10).size(), 0u);
  EXPECT_EQ(DistinctSystems(records).size(), 2u);
  EXPECT_EQ(DistinctBudgets(records, "caml").size(), 2u);
  EXPECT_EQ(DistinctBudgets(records, "flaml").size(), 1u);
}

// --- table printer ---

TEST(TablePrinterTest, RendersAligned) {
  TablePrinter printer({"system", "kWh"});
  printer.AddRow({"caml", "0.5"});
  printer.AddRow({"autogluon", "1.25"});
  const std::string out = printer.Render();
  EXPECT_NE(out.find("| system    | kWh  |"), std::string::npos);
  EXPECT_NE(out.find("| autogluon | 1.25 |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter printer({"a", "b", "c"});
  printer.AddRow({"only"});
  EXPECT_NE(printer.Render().find("| only |"), std::string::npos);
}

// --- experiment runner ---

class RunnerTest : public ::testing::Test {
 protected:
  static ExperimentConfig SmallConfig() {
    ExperimentConfig config;
    config.dataset_limit = 2;
    config.repetitions = 1;
    config.seed = 7;
    return config;
  }
};

TEST_F(RunnerTest, AllSystemNamesConstructible) {
  ExperimentRunner runner(SmallConfig());
  for (const std::string& name : AllSystemNames()) {
    auto system = runner.MakeSystem(name, 30.0);
    ASSERT_TRUE(system.ok()) << name;
    EXPECT_FALSE((*system)->Name().empty());
  }
  EXPECT_FALSE(runner.MakeSystem("nonexistent", 30.0).ok());
}

TEST_F(RunnerTest, MinBudgetsMatchPaper) {
  ExperimentRunner runner(SmallConfig());
  EXPECT_EQ(runner.MinBudget("autosklearn1"), 30.0);
  EXPECT_EQ(runner.MinBudget("autosklearn2"), 30.0);
  EXPECT_EQ(runner.MinBudget("tpot"), 60.0);
  EXPECT_EQ(runner.MinBudget("caml"), 0.0);
}

TEST_F(RunnerTest, RunOneProducesSaneRecord) {
  ExperimentRunner runner(SmallConfig());
  auto record = runner.RunOne("caml", runner.suite()[0], 30.0, 0);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->system, "caml");
  EXPECT_EQ(record->paper_budget_seconds, 30.0);
  EXPECT_GT(record->test_balanced_accuracy, 0.0);
  EXPECT_LE(record->test_balanced_accuracy, 1.0);
  EXPECT_GT(record->execution_kwh, 0.0);
  EXPECT_GT(record->execution_seconds, 0.0);
  EXPECT_GT(record->inference_kwh_per_instance, 0.0);
  EXPECT_GE(record->num_pipelines, 1u);
}

TEST_F(RunnerTest, RunsAreReproducible) {
  ExperimentRunner runner(SmallConfig());
  auto a = runner.RunOne("flaml", runner.suite()[0], 10.0, 0);
  auto b = runner.RunOne("flaml", runner.suite()[0], 10.0, 0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->test_balanced_accuracy, b->test_balanced_accuracy);
  EXPECT_DOUBLE_EQ(a->execution_kwh, b->execution_kwh);
}

TEST_F(RunnerTest, RepetitionsDiffer) {
  ExperimentRunner runner(SmallConfig());
  auto a = runner.RunOne("caml", runner.suite()[0], 60.0, 0);
  auto b = runner.RunOne("caml", runner.suite()[0], 60.0, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  // Different repetition seeds — the runs must not be bit-identical in
  // every reported metric (they draw different splits and proposals).
  const bool all_equal =
      a->execution_kwh == b->execution_kwh &&
      a->test_balanced_accuracy == b->test_balanced_accuracy &&
      a->inference_kwh_per_instance == b->inference_kwh_per_instance;
  EXPECT_FALSE(all_equal);
}

TEST_F(RunnerTest, SweepSkipsUnsupportedBudgets) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"tpot"}, {10.0, 60.0});
  ASSERT_TRUE(records.ok());
  for (const RunRecord& r : *records) {
    EXPECT_EQ(r.paper_budget_seconds, 60.0);
  }
  EXPECT_FALSE(records->empty());
}

TEST_F(RunnerTest, TabPfnSweepCollapsesBudgets) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"tabpfn"}, {10.0, 30.0, 60.0});
  ASSERT_TRUE(records.ok());
  // One budget point only: TabPFN has no search-time parameter.
  EXPECT_EQ(DistinctBudgets(*records, "tabpfn").size(), 1u);
}

TEST_F(RunnerTest, CoresOverrideChangesEnergy) {
  ExperimentRunner runner(SmallConfig());
  auto one = runner.RunOne("caml", runner.suite()[0], 10.0, 0, 1);
  auto eight = runner.RunOne("caml", runner.suite()[0], 10.0, 0, 8);
  ASSERT_TRUE(one.ok() && eight.ok());
  EXPECT_NE(one->execution_kwh, eight->execution_kwh);
}

TEST_F(RunnerTest, Askl2BuildsMetaStoreAndChargesDevelopment) {
  ExperimentRunner runner(SmallConfig());
  EXPECT_EQ(runner.development_kwh(), 0.0);
  auto record = runner.RunOne("autosklearn2", runner.suite()[0], 30.0, 0);
  ASSERT_TRUE(record.ok());
  EXPECT_GT(runner.development_kwh(), 0.0);
}

TEST_F(RunnerTest, ParallelSweepBitIdenticalToSequential) {
  ExperimentConfig config = SmallConfig();
  config.repetitions = 2;
  ExperimentRunner sequential(config);
  auto seq = sequential.Sweep({"caml", "flaml"}, {10.0, 30.0});
  ASSERT_TRUE(seq.ok());
  ASSERT_FALSE(seq->empty());

  config.jobs = 4;
  ExperimentRunner parallel(config);
  auto par = parallel.Sweep({"caml", "flaml"}, {10.0, 30.0});
  ASSERT_TRUE(par.ok());

  // Same cells, same order, byte-identical serialized records: run seeds
  // are cell-local, so worker interleaving must not leak into results.
  ASSERT_EQ(seq->size(), par->size());
  for (size_t i = 0; i < seq->size(); ++i) {
    EXPECT_EQ(RecordToJson((*seq)[i]), RecordToJson((*par)[i])) << i;
  }
}

TEST_F(RunnerTest, ParallelSweepBuildsMetaStoreExactlyOnce) {
  ExperimentConfig config = SmallConfig();
  config.jobs = 4;
  ExperimentRunner runner(config);
  // Several concurrent ASKL cells race to EnsureMetaStore; call_once
  // must charge development energy a single time.
  auto records = runner.Sweep({"autosklearn2"}, {30.0});
  ASSERT_TRUE(records.ok());
  ASSERT_FALSE(records->empty());
  const double dev_kwh = runner.development_kwh();
  EXPECT_GT(dev_kwh, 0.0);

  ExperimentRunner once(SmallConfig());
  ASSERT_TRUE(once.RunOne("autosklearn2", once.suite()[0], 30.0, 0).ok());
  EXPECT_DOUBLE_EQ(dev_kwh, once.development_kwh());
}

TEST_F(RunnerTest, SweepReportsWallClock) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  ExperimentRunner runner(config);
  EXPECT_EQ(runner.last_sweep_wall_seconds(), 0.0);
  ASSERT_TRUE(runner.Sweep({"caml"}, {10.0}).ok());
  EXPECT_GT(runner.last_sweep_wall_seconds(), 0.0);
}

TEST_F(RunnerTest, MinBudgetTracksSystemDeclaration) {
  ExperimentRunner runner(SmallConfig());
  // The harness gate must agree with each system's own declaration —
  // the values can never drift apart again.
  for (const std::string& name : AllSystemNames()) {
    auto probe = runner.MakeSystem(name, 60.0);
    ASSERT_TRUE(probe.ok()) << name;
    EXPECT_EQ(runner.MinBudget(name), (*probe)->MinBudgetSeconds())
        << name;
  }
  EXPECT_EQ(runner.MinBudget("nonexistent"), 0.0);
}

TEST_F(RunnerTest, JobsFromEnvParsing) {
  EXPECT_GE(JobsFromEnv(), 1);  // Whatever the environment, never < 1.
}

TEST_F(RunnerTest, ConfigFromEnvDefaultsToFast) {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  EXPECT_GT(config.dataset_limit, 0u);  // Fast subset unless GREEN_FULL.
  EXPECT_GT(config.budget_scale, 0.0);
}

}  // namespace
}  // namespace green
