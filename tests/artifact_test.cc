#include <gtest/gtest.h>

#include "green/automl/fitted_artifact.h"
#include "green/data/synthetic.h"
#include "green/ml/metrics.h"
#include "green/ml/model_registry.h"
#include "green/table/split.h"

namespace green {
namespace {

class ArtifactTest : public ::testing::Test {
 protected:
  ArtifactTest()
      : model_(MachineModel::Minimal()), ctx_(&clock_, &model_, 1) {
    SyntheticSpec spec;
    spec.name = "task";
    spec.num_rows = 200;
    spec.num_features = 8;
    spec.num_informative = 8;
    spec.separation = 3.0;
    spec.seed = 6;
    auto data = GenerateSynthetic(spec);
    EXPECT_TRUE(data.ok());
    data_ = std::move(data).value();
  }

  std::shared_ptr<Pipeline> FitConfig(const std::string& model,
                                      uint64_t seed = 1) {
    PipelineConfig config;
    config.model = model;
    config.seed = seed;
    auto pipeline = BuildPipeline(config);
    EXPECT_TRUE(pipeline.ok());
    EXPECT_TRUE(pipeline->Fit(data_, &ctx_).ok());
    return std::make_shared<Pipeline>(std::move(pipeline).value());
  }

  VirtualClock clock_;
  EnergyModel model_;
  ExecutionContext ctx_;
  Dataset data_;
};

TEST_F(ArtifactTest, EmptyArtifactRejectsPredict) {
  FittedArtifact artifact;
  EXPECT_TRUE(artifact.empty());
  EXPECT_FALSE(artifact.PredictProba(data_, &ctx_).ok());
}

TEST_F(ArtifactTest, SingleMatchesUnderlyingPipeline) {
  auto pipeline = FitConfig("decision_tree");
  const FittedArtifact artifact = FittedArtifact::Single(pipeline);
  EXPECT_EQ(artifact.NumPipelines(), 1u);
  EXPECT_FALSE(artifact.stacked());
  auto artifact_preds = artifact.Predict(data_, &ctx_);
  auto pipeline_preds = pipeline->Predict(data_, &ctx_);
  ASSERT_TRUE(artifact_preds.ok() && pipeline_preds.ok());
  EXPECT_EQ(artifact_preds.value(), pipeline_preds.value());
}

TEST_F(ArtifactTest, WeightedBlendIsConvex) {
  FittedArtifact::Member a;
  a.folds.push_back(FitConfig("naive_bayes"));
  a.weight = 0.5;
  FittedArtifact::Member b;
  b.folds.push_back(FitConfig("logistic_regression"));
  b.weight = 0.5;
  const FittedArtifact artifact =
      FittedArtifact::Weighted({std::move(a), std::move(b)});
  auto proba = artifact.PredictProba(data_, &ctx_);
  ASSERT_TRUE(proba.ok());
  for (const auto& row : *proba) {
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST_F(ArtifactTest, ZeroWeightMemberIgnored) {
  FittedArtifact::Member a;
  a.folds.push_back(FitConfig("naive_bayes", 1));
  a.weight = 1.0;
  FittedArtifact::Member b;
  b.folds.push_back(FitConfig("decision_tree", 2));
  b.weight = 0.0;
  const FittedArtifact blended =
      FittedArtifact::Weighted({std::move(a), std::move(b)});
  FittedArtifact::Member only;
  only.folds.push_back(FitConfig("naive_bayes", 1));
  const FittedArtifact single =
      FittedArtifact::Weighted({std::move(only)});
  auto pa = blended.PredictProba(data_, &ctx_);
  auto pb = single.PredictProba(data_, &ctx_);
  ASSERT_TRUE(pa.ok() && pb.ok());
  for (size_t i = 0; i < pa->size(); ++i) {
    EXPECT_NEAR((*pa)[i][0], (*pb)[i][0], 1e-12);
  }
}

TEST_F(ArtifactTest, FoldAveragingUsesAllFolds) {
  FittedArtifact::Member member;
  member.folds.push_back(FitConfig("decision_tree", 1));
  member.folds.push_back(FitConfig("decision_tree", 2));
  member.folds.push_back(FitConfig("decision_tree", 3));
  const FittedArtifact artifact =
      FittedArtifact::Weighted({std::move(member)});
  EXPECT_EQ(artifact.NumPipelines(), 3u);
  auto proba = artifact.PredictProba(data_, &ctx_);
  ASSERT_TRUE(proba.ok());
}

TEST_F(ArtifactTest, StackedPredictsAndChargesMore) {
  std::vector<FittedArtifact::Member> base;
  for (const char* m : {"naive_bayes", "decision_tree"}) {
    FittedArtifact::Member member;
    member.folds.push_back(FitConfig(m));
    base.push_back(std::move(member));
  }
  // Meta layer trained on augmented features (raw + 2 members x 2
  // classes).
  Dataset augmented(data_.name(), data_.num_features() + 4,
                    data_.num_classes());
  {
    std::vector<double> row(augmented.num_features(), 0.25);
    for (size_t r = 0; r < data_.num_rows(); ++r) {
      for (size_t j = 0; j < data_.num_features(); ++j) {
        row[j] = data_.At(r, j);
      }
      ASSERT_TRUE(augmented.AppendRow(row, data_.Label(r)).ok());
    }
  }
  PipelineConfig meta_config;
  meta_config.model = "logistic_regression";
  auto meta_pipeline = BuildPipeline(meta_config);
  ASSERT_TRUE(meta_pipeline.ok());
  ASSERT_TRUE(meta_pipeline->Fit(augmented, &ctx_).ok());
  FittedArtifact::Member meta;
  meta.folds.push_back(
      std::make_shared<Pipeline>(std::move(meta_pipeline).value()));

  const FittedArtifact stacked =
      FittedArtifact::Stacked(std::move(base), {std::move(meta)});
  EXPECT_TRUE(stacked.stacked());
  EXPECT_EQ(stacked.NumPipelines(), 3u);

  const double before = ctx_.counter()->total_flops();
  auto proba = stacked.PredictProba(data_, &ctx_);
  ASSERT_TRUE(proba.ok());
  const double stack_work = ctx_.counter()->total_flops() - before;

  const FittedArtifact single = FittedArtifact::Single(
      FitConfig("naive_bayes"));
  const double before_single = ctx_.counter()->total_flops();
  ASSERT_TRUE(single.PredictProba(data_, &ctx_).ok());
  const double single_work =
      ctx_.counter()->total_flops() - before_single;
  // Observation O1 at artifact granularity: stacking costs strictly more
  // per prediction than a single model.
  EXPECT_GT(stack_work, 2.0 * single_work);
}

TEST_F(ArtifactTest, InferenceFlopsSumOverMembers) {
  auto p1 = FitConfig("decision_tree");
  auto p2 = FitConfig("random_forest");
  FittedArtifact::Member m1;
  m1.folds.push_back(p1);
  FittedArtifact::Member m2;
  m2.folds.push_back(p2);
  const FittedArtifact ensemble =
      FittedArtifact::Weighted({std::move(m1), std::move(m2)});
  const double sum = p1->InferenceFlopsPerRow(data_.num_features()) +
                     p2->InferenceFlopsPerRow(data_.num_features());
  EXPECT_NEAR(ensemble.InferenceFlopsPerRow(data_.num_features()), sum,
              1e-9);
}

TEST_F(ArtifactTest, DescribeMentionsMembers) {
  const FittedArtifact artifact =
      FittedArtifact::Single(FitConfig("naive_bayes"));
  EXPECT_NE(artifact.Describe().find("naive_bayes"), std::string::npos);
}

}  // namespace
}  // namespace green
