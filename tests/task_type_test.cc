// TaskType plumbing: inference from raw targets, the per-task splitter
// and primary-metric dispatch, the higher-is-better score adapter,
// regression dataset/CSV round trips, the synthetic regression
// generator's determinism, and which model families admit which tasks.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "green/common/rng.h"
#include "green/data/synthetic.h"
#include "green/energy/machine_model.h"
#include "green/ml/metrics.h"
#include "green/ml/model_registry.h"
#include "green/sim/execution_context.h"
#include "green/sim/virtual_clock.h"
#include "green/table/csv.h"
#include "green/table/dataset.h"
#include "green/table/split.h"
#include "green/table/task_type.h"

namespace green {
namespace {

// --- Task inference ---------------------------------------------------

TEST(TaskTypeTest, NamesRoundTrip) {
  for (TaskType task : {TaskType::kBinary, TaskType::kMulticlass,
                        TaskType::kRegression}) {
    auto parsed = ParseTaskType(TaskTypeName(task));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, task);
  }
  EXPECT_FALSE(ParseTaskType("ordinal").ok());
  EXPECT_FALSE(ParseTaskType("").ok());
}

TEST(TaskTypeTest, ClassCountsImplyTask) {
  EXPECT_EQ(TaskTypeForClasses(1), TaskType::kBinary);
  EXPECT_EQ(TaskTypeForClasses(2), TaskType::kBinary);
  EXPECT_EQ(TaskTypeForClasses(3), TaskType::kMulticlass);
  EXPECT_EQ(TaskTypeForClasses(17), TaskType::kMulticlass);
}

TEST(TaskTypeTest, InfersBinaryFromTwoIntegerLevels) {
  EXPECT_EQ(InferTaskType({0, 1, 1, 0, 1}), TaskType::kBinary);
  EXPECT_EQ(InferTaskType({0, 0, 0}), TaskType::kBinary);
}

TEST(TaskTypeTest, InfersMulticlassFromFewIntegerLevels) {
  EXPECT_EQ(InferTaskType({0, 1, 2, 1, 0, 2}), TaskType::kMulticlass);
  std::vector<double> ten_levels;
  for (int i = 0; i < 40; ++i) {
    ten_levels.push_back(static_cast<double>(i % 10));
  }
  EXPECT_EQ(InferTaskType(ten_levels), TaskType::kMulticlass);
}

TEST(TaskTypeTest, FractionalTargetsAreRegression) {
  EXPECT_EQ(InferTaskType({0.5, 1.25, -3.75}), TaskType::kRegression);
  EXPECT_EQ(InferTaskType({1.0, 2.0, 2.0000001}), TaskType::kRegression);
}

TEST(TaskTypeTest, NegativeIntegersAreRegression) {
  EXPECT_EQ(InferTaskType({-1, 0, 1, 2}), TaskType::kRegression);
}

TEST(TaskTypeTest, HighCardinalityIntegersAreRegression) {
  std::vector<double> many;
  for (int i = 0; i < 80; ++i) many.push_back(static_cast<double>(i));
  EXPECT_EQ(InferTaskType(many), TaskType::kRegression);
  // The same column under a higher cap flips back to classification.
  EXPECT_EQ(InferTaskType(many, /*max_classes=*/100),
            TaskType::kMulticlass);
}

// --- Regression dataset invariants -------------------------------------

TEST(RegressionDatasetTest, FactorySetsTaskAndGuardsAppend) {
  Dataset data = Dataset::Regression("house_prices", 3);
  EXPECT_EQ(data.task(), TaskType::kRegression);
  EXPECT_EQ(data.num_classes(), 1);
  ASSERT_TRUE(data.AppendTargetRow({1.0, 2.0, 3.0}, 41.5).ok());
  ASSERT_TRUE(data.AppendTargetRow({2.0, 1.0, 0.0}, 38.5).ok());
  EXPECT_DOUBLE_EQ(data.TargetMean(), 40.0);
  EXPECT_DOUBLE_EQ(data.Target(1), 38.5);
  // Label-style appends are a typed error, never a silent cast.
  EXPECT_FALSE(data.AppendRow({1.0, 2.0, 3.0}, 1).ok());

  Dataset classification("spam", 3, 2);
  EXPECT_EQ(classification.task(), TaskType::kBinary);
  EXPECT_FALSE(classification.AppendTargetRow({1.0, 2.0, 3.0}, 0.5).ok());
}

// --- Splitter dispatch --------------------------------------------------

TEST(SplitDispatchTest, SplitterNames) {
  EXPECT_STREQ(SplitterNameForTask(TaskType::kBinary), "stratified");
  EXPECT_STREQ(SplitterNameForTask(TaskType::kMulticlass), "stratified");
  EXPECT_STREQ(SplitterNameForTask(TaskType::kRegression), "plain");
}

TEST(SplitDispatchTest, ClassificationSplitMatchesStratifiedExactly) {
  SyntheticSpec spec;
  spec.name = "clf";
  spec.num_rows = 120;
  spec.num_features = 6;
  spec.num_classes = 3;
  spec.seed = 5;
  const Dataset data = GenerateSynthetic(spec).value();

  Rng rng_a(7), rng_b(7);
  const TrainTestIndices dispatched = SplitForTask(data, 0.7, &rng_a);
  const TrainTestIndices stratified = StratifiedSplit(data, 0.7, &rng_b);
  EXPECT_EQ(dispatched.train, stratified.train);
  EXPECT_EQ(dispatched.test, stratified.test);
  // Identical RNG consumption too: the next draw must agree.
  EXPECT_EQ(rng_a.NextBounded(1u << 30), rng_b.NextBounded(1u << 30));
}

TEST(SplitDispatchTest, RegressionSplitMatchesPlainAndCoversAllRows) {
  SyntheticRegressionSpec spec;
  spec.name = "reg";
  spec.num_rows = 100;
  spec.num_features = 5;
  spec.seed = 5;
  const Dataset data = GenerateSyntheticRegression(spec).value();

  Rng rng_a(7), rng_b(7);
  const TrainTestIndices dispatched = SplitForTask(data, 0.7, &rng_a);
  const TrainTestIndices plain = PlainSplit(data, 0.7, &rng_b);
  EXPECT_EQ(dispatched.train, plain.train);
  EXPECT_EQ(dispatched.test, plain.test);
  EXPECT_EQ(dispatched.train.size() + dispatched.test.size(),
            data.num_rows());

  Rng rng_c(9), rng_d(9);
  const auto folds = KFoldForTask(data, 4, &rng_c);
  const auto plain_folds = PlainKFold(data, 4, &rng_d);
  EXPECT_EQ(folds, plain_folds);
}

// --- Regression metrics and the score adapter ---------------------------

TEST(RegressionMetricsTest, HandComputedValues) {
  const std::vector<double> truth = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pred = {1.5, 2.0, 2.5, 5.0};
  EXPECT_NEAR(Rmse(truth, pred), std::sqrt((0.25 + 0.0 + 0.25 + 1.0) / 4),
              1e-12);
  EXPECT_NEAR(Mae(truth, pred), (0.5 + 0.0 + 0.5 + 1.0) / 4, 1e-12);
  // R2 = 1 - SSE/SST; SST around the truth mean 2.5 is 5.0.
  EXPECT_NEAR(R2(truth, pred), 1.0 - 1.5 / 5.0, 1e-12);
}

TEST(RegressionMetricsTest, PerfectPrediction) {
  const std::vector<double> truth = {3.0, -1.0, 7.0};
  const std::vector<double> pred = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(Rmse(truth, pred), 0.0);
  EXPECT_DOUBLE_EQ(Mae(truth, pred), 0.0);
  EXPECT_DOUBLE_EQ(R2(truth, pred), 1.0);
}

TEST(MetricDispatchTest, PrimaryMetricNames) {
  EXPECT_STREQ(PrimaryMetricName(TaskType::kBinary), "balanced_accuracy");
  EXPECT_STREQ(PrimaryMetricName(TaskType::kMulticlass),
               "balanced_accuracy");
  EXPECT_STREQ(PrimaryMetricName(TaskType::kRegression), "rmse");
}

TEST(MetricDispatchTest, ClassificationPrimaryIsBalancedAccuracy) {
  for (int classes : {2, 4}) {
    SyntheticSpec spec;
    spec.name = "clf";
    spec.num_rows = 90;
    spec.num_features = 6;
    spec.num_classes = classes;
    spec.seed = 11;
    const Dataset data = GenerateSynthetic(spec).value();
    // A one-hot "prediction" of the true labels scores 1.0 on both the
    // metric and the score side.
    ProbaMatrix proba(data.num_rows(),
                      std::vector<double>(data.num_classes(), 0.0));
    for (size_t i = 0; i < data.num_rows(); ++i) {
      proba[i][static_cast<size_t>(data.Label(i))] = 1.0;
    }
    EXPECT_DOUBLE_EQ(PrimaryMetric(data, proba), 1.0);
    EXPECT_DOUBLE_EQ(PrimaryScore(data, proba), 1.0);

    std::vector<int> argmax_preds(data.num_rows());
    for (size_t i = 0; i < data.num_rows(); ++i) {
      argmax_preds[i] = data.Label(i);
    }
    EXPECT_DOUBLE_EQ(
        BalancedAccuracy(data.labels(), argmax_preds, data.num_classes()),
        PrimaryMetric(data, proba));
  }
}

TEST(MetricDispatchTest, RegressionPrimaryIsRmseAndScoreIsNegated) {
  Dataset data = Dataset::Regression("reg", 1);
  ASSERT_TRUE(data.AppendTargetRow({0.0}, 1.0).ok());
  ASSERT_TRUE(data.AppendTargetRow({0.0}, 3.0).ok());
  const ProbaMatrix pred = {{2.0}, {2.0}};

  const double rmse = Rmse(data.targets(), {2.0, 2.0});
  EXPECT_DOUBLE_EQ(PrimaryMetric(data, pred), rmse);
  EXPECT_DOUBLE_EQ(PrimaryScore(data, pred), -rmse);
  // The adapter makes "higher is better" hold for every task, and
  // MetricFromScore inverts it back to the reported metric.
  EXPECT_GT(PrimaryScore(data, {{1.0}, {3.0}}),
            PrimaryScore(data, pred));
  EXPECT_DOUBLE_EQ(
      MetricFromScore(TaskType::kRegression, PrimaryScore(data, pred)),
      rmse);
  EXPECT_DOUBLE_EQ(MetricFromScore(TaskType::kBinary, 0.75), 0.75);
}

// --- Synthetic regression generator -------------------------------------

TEST(SyntheticRegressionTest, DeterministicInSeed) {
  SyntheticRegressionSpec spec;
  spec.name = "reg";
  spec.num_rows = 60;
  spec.num_features = 7;
  spec.num_categorical = 2;
  spec.seed = 33;
  const Dataset a = GenerateSyntheticRegression(spec).value();
  const Dataset b = GenerateSyntheticRegression(spec).value();
  EXPECT_EQ(ToCsvString(a), ToCsvString(b));

  spec.seed = 34;
  const Dataset c = GenerateSyntheticRegression(spec).value();
  EXPECT_NE(ToCsvString(a), ToCsvString(c));
}

TEST(SyntheticRegressionTest, ShapeAndTask) {
  SyntheticRegressionSpec spec;
  spec.name = "reg";
  spec.num_rows = 50;
  spec.num_features = 6;
  spec.num_categorical = 2;
  spec.seed = 2;
  const Dataset data = GenerateSyntheticRegression(spec).value();
  EXPECT_EQ(data.task(), TaskType::kRegression);
  EXPECT_EQ(data.num_rows(), 50u);
  EXPECT_EQ(data.num_features(), 6u);
  EXPECT_EQ(data.targets().size(), 50u);
  // Targets spread around the configured shift, not collapsed.
  double lo = data.Target(0), hi = data.Target(0);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    lo = std::min(lo, data.Target(i));
    hi = std::max(hi, data.Target(i));
  }
  EXPECT_GT(hi - lo, 1.0);
}

TEST(SyntheticRegressionTest, RejectsDegenerateSpecs) {
  SyntheticRegressionSpec empty;
  empty.num_rows = 0;
  EXPECT_FALSE(GenerateSyntheticRegression(empty).ok());
  SyntheticRegressionSpec no_features;
  no_features.num_features = 0;
  EXPECT_FALSE(GenerateSyntheticRegression(no_features).ok());
}

// --- CSV round trip ------------------------------------------------------

TEST(RegressionCsvTest, RoundTripPreservesTaskAndTargets) {
  SyntheticRegressionSpec spec;
  spec.name = "reg";
  spec.num_rows = 40;
  spec.num_features = 5;
  spec.num_categorical = 1;
  spec.missing_fraction = 0.05;
  spec.seed = 12;
  const Dataset data = GenerateSyntheticRegression(spec).value();

  const std::string csv = ToCsvString(data);
  auto parsed = FromCsvString(csv, "reg");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->task(), TaskType::kRegression);
  ASSERT_EQ(parsed->num_rows(), data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(parsed->Target(i), data.Target(i)) << i;
  }
  EXPECT_EQ(ToCsvString(*parsed), csv);
}

TEST(RegressionCsvTest, NonNumericTargetIsAnErrorNotZero) {
  EXPECT_FALSE(FromCsvString("x,target\n1.0,abc\n", "bad").ok());
  EXPECT_FALSE(FromCsvString("x,target\n1.0,1.5extra\n", "bad").ok());
  EXPECT_FALSE(FromCsvString("x,target\n1.0,\n", "bad").ok());
}

// --- Model-family admissibility ------------------------------------------

TEST(ModelTaskSupportTest, EveryFamilyHandlesClassification) {
  for (const std::string& model : KnownModels()) {
    EXPECT_TRUE(ModelSupportsTask(model, TaskType::kBinary)) << model;
    EXPECT_TRUE(ModelSupportsTask(model, TaskType::kMulticlass)) << model;
  }
  // Filtering is the identity on classification, preserving search-space
  // enumeration order (and hence RNG draws) for every existing bench.
  EXPECT_EQ(FilterModelsForTask(KnownModels(), TaskType::kBinary),
            KnownModels());
}

TEST(ModelTaskSupportTest, RegressionSubset) {
  EXPECT_TRUE(ModelSupportsTask("decision_tree", TaskType::kRegression));
  EXPECT_TRUE(ModelSupportsTask("random_forest", TaskType::kRegression));
  EXPECT_TRUE(ModelSupportsTask("gradient_boosting",
                                TaskType::kRegression));
  EXPECT_TRUE(ModelSupportsTask("knn", TaskType::kRegression));
  EXPECT_TRUE(ModelSupportsTask("mlp", TaskType::kRegression));
  EXPECT_FALSE(ModelSupportsTask("naive_bayes", TaskType::kRegression));
  EXPECT_FALSE(ModelSupportsTask("adaboost", TaskType::kRegression));
  EXPECT_FALSE(
      ModelSupportsTask("attention_few_shot", TaskType::kRegression));
}

// --- Regression learners fit signal --------------------------------------

class RegressionModelsTest : public ::testing::Test {
 protected:
  RegressionModelsTest()
      : model_(MachineModel::Minimal()), ctx_(&clock_, &model_, 1) {
    SyntheticRegressionSpec spec;
    spec.name = "easy_reg";
    spec.num_rows = 260;
    spec.num_features = 8;
    spec.num_informative = 8;
    spec.noise = 0.2;
    spec.seed = 6;
    const Dataset data = GenerateSyntheticRegression(spec).value();
    Rng rng(4);
    TrainTestData split = Materialize(data, SplitForTask(data, 0.7, &rng));
    train_ = std::move(split.train);
    test_ = std::move(split.test);
  }

  /// Held-out R2 of the named model fitted through a standard pipeline.
  double FitAndScore(const std::string& model) {
    PipelineConfig config;
    config.model = model;
    config.seed = 17;
    if (model == "mlp") config.params["epochs"] = 40.0;
    auto pipeline = BuildPipeline(config);
    EXPECT_TRUE(pipeline.ok()) << model;
    Status fitted = pipeline->Fit(train_, &ctx_);
    EXPECT_TRUE(fitted.ok()) << model << ": " << fitted.ToString();
    auto pred = pipeline->PredictProba(test_, &ctx_);
    EXPECT_TRUE(pred.ok()) << model;
    EXPECT_EQ((*pred)[0].size(), 1u) << model;
    std::vector<double> flat;
    flat.reserve(pred->size());
    for (const auto& row : *pred) flat.push_back(row[0]);
    return R2(test_.targets(), flat);
  }

  VirtualClock clock_;
  EnergyModel model_;
  ExecutionContext ctx_;
  Dataset train_;
  Dataset test_;
};

TEST_F(RegressionModelsTest, RegressionCapableFamiliesExplainVariance) {
  // An easy near-linear task: every capable family should beat the
  // target-mean baseline (R2 = 0) by a wide margin.
  EXPECT_GT(FitAndScore("decision_tree"), 0.3);
  EXPECT_GT(FitAndScore("random_forest"), 0.4);
  EXPECT_GT(FitAndScore("extra_trees"), 0.4);
  EXPECT_GT(FitAndScore("gradient_boosting"), 0.5);
  EXPECT_GT(FitAndScore("logistic_regression"), 0.5);  // Linear model.
  EXPECT_GT(FitAndScore("knn"), 0.2);
  EXPECT_GT(FitAndScore("mlp"), 0.3);
}

TEST_F(RegressionModelsTest, UnsupportedFamiliesReturnTypedStatus) {
  for (const std::string& model :
       {std::string("naive_bayes"), std::string("adaboost"),
        std::string("attention_few_shot")}) {
    PipelineConfig config;
    config.model = model;
    auto pipeline = BuildPipeline(config);
    ASSERT_TRUE(pipeline.ok()) << model;
    const Status fitted = pipeline->Fit(train_, &ctx_);
    EXPECT_FALSE(fitted.ok()) << model;
    EXPECT_EQ(fitted.code(), Status::Code::kUnimplemented)
        << model << ": " << fitted.ToString();
  }
}

}  // namespace
}  // namespace green
