#include <gtest/gtest.h>

#include "green/sim/budget_policy.h"
#include "green/sim/execution_context.h"
#include "green/sim/task_scheduler.h"
#include "green/sim/virtual_clock.h"
#include "green/sim/work_counter.h"

namespace green {
namespace {

TEST(VirtualClockTest, AdvancesAndResets) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0.0);
  clock.Advance(1.5);
  clock.Advance(0.5);
  EXPECT_DOUBLE_EQ(clock.Now(), 2.0);
  clock.Reset();
  EXPECT_EQ(clock.Now(), 0.0);
}

TEST(WorkCounterTest, AccumulatesByDevice) {
  WorkCounter counter;
  Work cpu;
  cpu.flops = 100;
  cpu.bytes = 10;
  Work gpu;
  gpu.flops = 200;
  gpu.device = Device::kGpu;
  counter.Add(cpu);
  counter.Add(gpu);
  EXPECT_DOUBLE_EQ(counter.cpu_flops(), 100.0);
  EXPECT_DOUBLE_EQ(counter.gpu_flops(), 200.0);
  EXPECT_DOUBLE_EQ(counter.total_flops(), 300.0);
  EXPECT_DOUBLE_EQ(counter.bytes(), 10.0);
  EXPECT_EQ(counter.num_charges(), 2u);
  counter.Reset();
  EXPECT_EQ(counter.total_flops(), 0.0);
}

class ExecutionContextTest : public ::testing::Test {
 protected:
  ExecutionContextTest()
      : model_(MachineModel::Minimal()), ctx_(&clock_, &model_, 1) {}

  VirtualClock clock_;
  EnergyModel model_;
  ExecutionContext ctx_;
};

TEST_F(ExecutionContextTest, ChargeAdvancesClock) {
  const double seconds = ctx_.ChargeCpu(2e6, 0.0, 1.0);
  EXPECT_NEAR(seconds, 2.0, 1e-9);
  EXPECT_NEAR(ctx_.Now(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(ctx_.counter()->cpu_flops(), 2e6);
}

TEST_F(ExecutionContextTest, ChargeFeedsMeter) {
  EnergyMeter meter(&model_);
  meter.Start(ctx_.Now());
  ctx_.SetMeter(&meter);
  ctx_.ChargeCpu(1e6, 0.0);
  const EnergyReading r = meter.Stop(ctx_.Now());
  EXPECT_GT(r.breakdown.cpu_dynamic_j, 0.0);
  EXPECT_GT(r.seconds, 0.0);
}

TEST_F(ExecutionContextTest, NoMeterIsFine) {
  EXPECT_GT(ctx_.ChargeCpu(1e5, 0.0), 0.0);  // Must not crash.
}

TEST_F(ExecutionContextTest, DeadlineSemantics) {
  EXPECT_FALSE(ctx_.DeadlineExceeded());  // Infinite by default.
  ctx_.SetDeadline(1.0);
  EXPECT_FALSE(ctx_.DeadlineExceeded());
  EXPECT_NEAR(ctx_.RemainingBudget(), 1.0, 1e-12);
  ctx_.ChargeCpu(2e6, 0.0, 1.0);  // 2 virtual seconds.
  EXPECT_TRUE(ctx_.DeadlineExceeded());
  EXPECT_LT(ctx_.RemainingBudget(), 0.0);
  ctx_.ClearDeadline();
  EXPECT_FALSE(ctx_.DeadlineExceeded());
}

TEST_F(ExecutionContextTest, AcceleratedFallsBackWithoutGpu) {
  EXPECT_FALSE(ctx_.HasGpu());
  ctx_.ChargeAccelerated(1e6, 0.0);
  EXPECT_DOUBLE_EQ(ctx_.counter()->cpu_flops(), 1e6);
  EXPECT_DOUBLE_EQ(ctx_.counter()->gpu_flops(), 0.0);
}

TEST(ExecutionContextGpuTest, AcceleratedUsesGpu) {
  VirtualClock clock;
  EnergyModel model(MachineModel::GpuNodeT4());
  ExecutionContext ctx(&clock, &model, 1);
  EXPECT_TRUE(ctx.HasGpu());
  ctx.ChargeAccelerated(1e6, 0.0);
  EXPECT_DOUBLE_EQ(ctx.counter()->gpu_flops(), 1e6);
}

TEST(ExecutionContextGpuTest, GpuFasterThanWeakCpu) {
  VirtualClock clock;
  EnergyModel model(MachineModel::GpuNodeT4());
  ExecutionContext ctx(&clock, &model, 1);
  const double gpu_s = ctx.ChargeAccelerated(6e6, 0.0);
  const double cpu_s = ctx.ChargeCpu(6e6, 0.0, 0.98);
  EXPECT_LT(gpu_s, cpu_s);
}

// --- TaskGraphScheduler ---

TEST(SchedulerTest, EmptyBatch) {
  const auto s = TaskGraphScheduler::ScheduleBatch({}, 4);
  EXPECT_EQ(s.makespan_seconds, 0.0);
  EXPECT_EQ(s.busy_core_seconds, 0.0);
}

TEST(SchedulerTest, SingleCoreIsSequential) {
  const auto s = TaskGraphScheduler::ScheduleBatch({1, 2, 3}, 1);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 6.0);
  EXPECT_DOUBLE_EQ(s.busy_core_seconds, 6.0);
  EXPECT_DOUBLE_EQ(s.utilization, 1.0);
}

TEST(SchedulerTest, PerfectParallelism) {
  const auto s = TaskGraphScheduler::ScheduleBatch({2, 2, 2, 2}, 4);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.utilization, 1.0);
}

TEST(SchedulerTest, LongestTaskBoundsMakespan) {
  const auto s = TaskGraphScheduler::ScheduleBatch({10, 1, 1, 1}, 4);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 10.0);
  EXPECT_LT(s.utilization, 1.0);
}

TEST(SchedulerTest, MoreCoresThanTasks) {
  // Extra cores stay idle; makespan is the longest task and busy time is
  // the plain sum.
  const auto s = TaskGraphScheduler::ScheduleBatch({5.0, 3.0}, 8);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 5.0);
  EXPECT_DOUBLE_EQ(s.busy_core_seconds, 8.0);
  EXPECT_DOUBLE_EQ(s.utilization, 8.0 / (5.0 * 8.0));
}

TEST(SchedulerTest, ZeroLengthTasksContributeNothing) {
  const auto s = TaskGraphScheduler::ScheduleBatch({0.0, 4.0, 0.0, 2.0}, 2);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 4.0);
  EXPECT_DOUBLE_EQ(s.busy_core_seconds, 6.0);
}

TEST(SchedulerTest, AllZeroLengthTasksNoDivisionByZero) {
  const auto s = TaskGraphScheduler::ScheduleBatch({0.0, 0.0, 0.0}, 4);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.busy_core_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.utilization, 0.0);  // Guarded, not NaN.
}

TEST(SchedulerTest, SingleTaskManyCores) {
  const auto s = TaskGraphScheduler::ScheduleBatch({7.5}, 16);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 7.5);
  EXPECT_DOUBLE_EQ(s.utilization, 1.0 / 16.0);
}

TEST(SchedulerTest, LptSpreadsLongTasks) {
  // LPT puts the two long tasks on different cores. The classic
  // worst-case instance: LPT yields 7 while the optimum is 6 (LPT is a
  // 4/3-approximation) — the scheduler must match LPT exactly.
  const auto s = TaskGraphScheduler::ScheduleBatch({3, 3, 2, 2, 2}, 2);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 7.0);
}

TEST(SchedulerTest, MakespanNeverBelowTheoreticalBounds) {
  const std::vector<double> tasks = {5, 4, 3, 3, 2, 2, 1, 1, 1};
  double total = 0.0;
  double longest = 0.0;
  for (double t : tasks) {
    total += t;
    longest = std::max(longest, t);
  }
  for (int cores = 1; cores <= 8; ++cores) {
    const auto s = TaskGraphScheduler::ScheduleBatch(tasks, cores);
    EXPECT_GE(s.makespan_seconds, longest);
    EXPECT_GE(s.makespan_seconds, total / cores - 1e-9);
    EXPECT_DOUBLE_EQ(s.busy_core_seconds, total);
  }
}

TEST(SchedulerTest, MakespanMonotoneNonIncreasingInCores) {
  const std::vector<double> tasks = {7, 5, 4, 4, 3, 2, 2, 1};
  double prev = 1e300;
  for (int cores = 1; cores <= 8; ++cores) {
    const auto s = TaskGraphScheduler::ScheduleBatch(tasks, cores);
    EXPECT_LE(s.makespan_seconds, prev + 1e-9);
    prev = s.makespan_seconds;
  }
}

// --- BudgetPolicy ---

TEST(BudgetPolicyTest, StrictRefusesOverrun) {
  const BudgetPolicy policy(BudgetPolicyKind::kStrict);
  EXPECT_TRUE(policy.MayStartEvaluation(0.0, 10.0, 5.0));
  EXPECT_FALSE(policy.MayStartEvaluation(6.0, 10.0, 5.0));
  EXPECT_TRUE(policy.MayStartEvaluation(5.0, 10.0, 5.0));
}

TEST(BudgetPolicyTest, FinishLastAllowsStartBeforeDeadline) {
  const BudgetPolicy policy(BudgetPolicyKind::kFinishLastEvaluation);
  EXPECT_TRUE(policy.MayStartEvaluation(9.99, 10.0, 100.0));
  EXPECT_FALSE(policy.MayStartEvaluation(10.0, 10.0, 0.0));
}

TEST(BudgetPolicyTest, EnsemblingNotCountedBehavesLikeFinishLast) {
  const BudgetPolicy policy(BudgetPolicyKind::kEnsemblingNotCounted);
  EXPECT_TRUE(policy.MayStartEvaluation(9.0, 10.0, 50.0));
  EXPECT_FALSE(policy.MayStartEvaluation(11.0, 10.0, 0.0));
}

TEST(BudgetPolicyTest, PlannedAndNoBudgetAlwaysRun) {
  EXPECT_TRUE(BudgetPolicy(BudgetPolicyKind::kEstimatedPlan)
                  .MayStartEvaluation(100.0, 10.0, 5.0));
  EXPECT_TRUE(BudgetPolicy(BudgetPolicyKind::kNoBudget)
                  .MayStartEvaluation(100.0, 10.0, 5.0));
}

}  // namespace
}  // namespace green
