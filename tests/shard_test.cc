// Sharded multi-process sweeps: round-robin cell ownership, journal
// merge bit-identity against a single-process sweep, per-shard resume,
// and journal-health accounting (lost appends, truncated tails).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/record_io.h"
#include "green/common/shard.h"
#include "green/common/stringutil.h"

namespace green {
namespace {

// --- shard spec ---

TEST(ShardSpecTest, ParseValidSpecs) {
  auto spec = ParseShardSpec("0/1");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->index, 0);
  EXPECT_EQ(spec->count, 1);
  spec = ParseShardSpec("2/4");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->index, 2);
  EXPECT_EQ(spec->count, 4);
  EXPECT_EQ(spec->ToString(), "2/4");
}

TEST(ShardSpecTest, ParseRejectsGarbage) {
  for (const char* bad :
       {"", "/", "1", "1/", "/3", "a/3", "1/b", "1/3x", "-1/3", "3/3",
        "4/3", "1/0", "1/99999"}) {
    EXPECT_FALSE(ParseShardSpec(bad).ok()) << bad;
  }
  // Surrounding whitespace is trimmed, not rejected.
  EXPECT_TRUE(ParseShardSpec(" 1/3 ").ok());
}

TEST(ShardSpecTest, RoundRobinPartitionsEveryIndexExactlyOnce) {
  for (int count : {1, 2, 3, 5, 8}) {
    for (size_t cell = 0; cell < 100; ++cell) {
      int owners = 0;
      for (int index = 0; index < count; ++index) {
        const ShardSpec shard{index, count};
        ASSERT_TRUE(shard.valid());
        if (shard.Owns(cell)) ++owners;
      }
      EXPECT_EQ(owners, 1) << "cell " << cell << " of " << count;
    }
  }
}

TEST(ShardSpecTest, InvalidSpecsDetected) {
  EXPECT_FALSE((ShardSpec{1, 1}).valid());
  EXPECT_FALSE((ShardSpec{-1, 2}).valid());
  EXPECT_FALSE((ShardSpec{0, 0}).valid());
  EXPECT_TRUE((ShardSpec{0, 1}).valid());
  EXPECT_TRUE((ShardSpec{3, 4}).valid());
}

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~EnvGuard() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(ShardSpecTest, FromEnv) {
  {
    EnvGuard guard("GREEN_SHARD", nullptr);
    const ShardSpec shard = ShardFromEnv();
    EXPECT_EQ(shard.index, 0);
    EXPECT_EQ(shard.count, 1);
  }
  {
    EnvGuard guard("GREEN_SHARD", "1/3");
    const ShardSpec shard = ShardFromEnv();
    EXPECT_EQ(shard.index, 1);
    EXPECT_EQ(shard.count, 3);
  }
  {
    EnvGuard guard("GREEN_SHARD", "nonsense");
    const ShardSpec shard = ShardFromEnv();  // Warns, falls back.
    EXPECT_EQ(shard.index, 0);
    EXPECT_EQ(shard.count, 1);
  }
}

// --- sharded sweeps ---

class ShardSweepTest : public ::testing::Test {
 protected:
  static ExperimentConfig SmallConfig() {
    ExperimentConfig config;
    config.dataset_limit = 2;
    config.repetitions = 1;
    config.seed = 7;
    return config;
  }

  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  static std::string ReadFile(const std::string& path) {
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr) return std::string();
    std::string text;
    char buf[65536];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
    return text;
  }
};

TEST_F(ShardSweepTest, MergedShardJournalsByteIdenticalToSingleProcess) {
  const std::vector<std::string> systems = {"caml", "flaml"};
  const std::vector<double> budgets = {10.0, 30.0};

  // Reference: one process, one thread, scope trees on — the strictest
  // byte-identity target.
  ExperimentConfig ref_config = SmallConfig();
  ref_config.collect_scopes = true;
  ExperimentRunner reference(ref_config);
  auto expected = reference.Sweep(systems, budgets);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 8u);
  const std::string ref_path = TempPath("shard_reference.jsonl");
  ASSERT_TRUE(WriteRecordsJsonl(*expected, ref_path).ok());

  for (int count : {2, 3, 5}) {
    std::vector<std::string> shard_paths;
    for (int index = 0; index < count; ++index) {
      ExperimentConfig config = ref_config;
      config.shard_index = index;
      config.shard_count = count;
      config.jobs = 2;  // Shards must be jobs-independent too.
      config.journal_path =
          TempPath(StrFormat("shard_%d_of_%d.jsonl", index, count));
      shard_paths.push_back(config.journal_path);
      ExperimentRunner runner(config);
      auto records = runner.Sweep(systems, budgets);
      ASSERT_TRUE(records.ok()) << index << "/" << count;
      // Each shard returns exactly its round-robin slice, stamped with
      // the global enumeration index.
      for (const RunRecord& record : *records) {
        ASSERT_GE(record.cell_index, 0);
        EXPECT_EQ(record.cell_index % count, index);
      }
    }
    const std::string merged_path =
        TempPath(StrFormat("merged_%d.jsonl", count));
    auto merged = MergeShardJournals(shard_paths, merged_path);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(*merged, expected->size());
    EXPECT_EQ(ReadFile(merged_path), ReadFile(ref_path))
        << count << " shards";
    for (const std::string& path : shard_paths) std::remove(path.c_str());
    std::remove(merged_path.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST_F(ShardSweepTest, InvalidShardConfigRejected) {
  ExperimentConfig config = SmallConfig();
  config.shard_index = 3;
  config.shard_count = 2;
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"caml"}, {10.0});
  EXPECT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(ShardSweepTest, MergeRejectsMissingShard) {
  const std::vector<double> budgets = {10.0, 30.0};
  std::vector<std::string> shard_paths;
  for (int index = 0; index < 2; ++index) {
    ExperimentConfig config = SmallConfig();
    config.shard_index = index;
    config.shard_count = 3;  // Shard 2/3 never runs.
    config.journal_path = TempPath(StrFormat("missing_%d.jsonl", index));
    shard_paths.push_back(config.journal_path);
    ExperimentRunner runner(config);
    ASSERT_TRUE(runner.Sweep({"caml"}, budgets).ok());
  }
  const std::string out = TempPath("missing_merged.jsonl");
  auto merged = MergeShardJournals(shard_paths, out);
  EXPECT_FALSE(merged.ok());
  EXPECT_NE(merged.status().ToString().find("missing"),
            std::string::npos);

  // The same shard twice is a duplicate, not a completion.
  auto duplicated = MergeShardJournals(
      {shard_paths[0], shard_paths[0], shard_paths[1]}, out);
  EXPECT_FALSE(duplicated.ok());
  EXPECT_NE(duplicated.status().ToString().find("duplicate"),
            std::string::npos);
  for (const std::string& path : shard_paths) std::remove(path.c_str());
}

TEST_F(ShardSweepTest, MergeRejectsUnshardedJournal) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  config.journal_path = TempPath("unsharded.jsonl");
  ExperimentRunner runner(config);
  ASSERT_TRUE(runner.Sweep({"caml"}, {10.0}).ok());
  auto merged = MergeShardJournals({config.journal_path},
                                   TempPath("unsharded_merged.jsonl"));
  EXPECT_FALSE(merged.ok());  // No cell indices: not a sharded journal.
  std::remove(config.journal_path.c_str());
}

TEST_F(ShardSweepTest, PerShardCrashResumeThenMergeByteIdentical) {
  const std::vector<std::string> systems = {"caml"};
  const std::vector<double> budgets = {10.0, 30.0};

  ExperimentConfig ref_config = SmallConfig();
  ExperimentRunner reference(ref_config);
  auto expected = reference.Sweep(systems, budgets);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 4u);
  const std::string ref_path = TempPath("crash_reference.jsonl");
  ASSERT_TRUE(WriteRecordsJsonl(*expected, ref_path).ok());

  // Shard 0 (owns cells 0 and 2) dies on its second cell...
  ExperimentConfig crash_config = SmallConfig();
  crash_config.shard_index = 0;
  crash_config.shard_count = 2;
  crash_config.journal_path = TempPath("crash_shard0.jsonl");
  std::remove(crash_config.journal_path.c_str());
  crash_config.faults = "sweep.cell#2=abort";
  EXPECT_DEATH(
      {
        ExperimentRunner crashing(crash_config);
        (void)crashing.Sweep(systems, budgets);
      },
      "injected abort");

  // ...and resumes with the fault gone: only the missing cell re-runs.
  ExperimentConfig resume_config = crash_config;
  resume_config.faults.clear();
  resume_config.resume = true;
  ExperimentRunner resumed(resume_config);
  auto shard0 = resumed.Sweep(systems, budgets);
  ASSERT_TRUE(shard0.ok());
  EXPECT_EQ(resumed.last_sweep_resumed_cells(), 1u);

  ExperimentConfig other_config = SmallConfig();
  other_config.shard_index = 1;
  other_config.shard_count = 2;
  other_config.journal_path = TempPath("crash_shard1.jsonl");
  ExperimentRunner other(other_config);
  ASSERT_TRUE(other.Sweep(systems, budgets).ok());

  const std::string merged_path = TempPath("crash_merged.jsonl");
  auto merged = MergeShardJournals(
      {crash_config.journal_path, other_config.journal_path},
      merged_path);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(ReadFile(merged_path), ReadFile(ref_path));
  std::remove(crash_config.journal_path.c_str());
  std::remove(other_config.journal_path.c_str());
  std::remove(merged_path.c_str());
  std::remove(ref_path.c_str());
}

// --- sweep variants (per-cell option overrides) ---

TEST_F(ShardSweepTest, VariantAxisSharesSeedsAndKeepsCellsApart) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  ExperimentRunner runner(config);
  SweepVariant quad;
  quad.name = "cores=4";
  quad.cores = 4;
  auto records =
      runner.Sweep({"caml"}, {30.0}, {SweepVariant{}, quad});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  const RunRecord& base = (*records)[0];
  const RunRecord& cores4 = (*records)[1];
  EXPECT_EQ(base.variant, "");
  EXPECT_EQ(cores4.variant, "cores=4");
  // Same run seed (variants share split and seeding); the core override
  // must actually reach the execution model.
  EXPECT_NE(base.execution_kwh, cores4.execution_kwh);
  // The default variant's record is byte-identical to a variant-less
  // sweep's (the axis is invisible until used).
  auto plain = runner.Sweep({"caml"}, {30.0});
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->size(), 1u);
  EXPECT_EQ(RecordToJson((*plain)[0]), RecordToJson(base));
  // 4-arg Filter selects by variant.
  EXPECT_EQ(Filter(*records, "caml", 30.0, "cores=4").size(), 1u);
  EXPECT_EQ(Filter(*records, "caml", 30.0, "").size(), 1u);
  EXPECT_EQ(Filter(*records, "caml", 30.0).size(), 2u);
}

TEST_F(ShardSweepTest, DuplicateVariantNamesRejected) {
  ExperimentRunner runner(SmallConfig());
  SweepVariant a;
  a.cores = 2;
  SweepVariant b;
  b.cores = 4;  // Same (empty) name, different settings.
  auto records = runner.Sweep({"caml"}, {10.0}, {a, b});
  EXPECT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(ShardSweepTest, VariantsResumeFromJournal) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  config.journal_path = TempPath("variant_journal.jsonl");
  SweepVariant quad;
  quad.name = "cores=4";
  quad.cores = 4;
  const std::vector<SweepVariant> variants = {SweepVariant{}, quad};
  ExperimentRunner first(config);
  auto original = first.Sweep({"caml"}, {10.0, 30.0}, variants);
  ASSERT_TRUE(original.ok());

  // All-ok under an always-firing fault proves every (cell, variant)
  // was loaded from the journal, i.e. variant names key the journal.
  config.resume = true;
  config.faults = "run.fit@1.0";
  ExperimentRunner second(config);
  auto resumed = second.Sweep({"caml"}, {10.0, 30.0}, variants);
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed->size(), original->size());
  for (size_t i = 0; i < resumed->size(); ++i) {
    EXPECT_EQ((*resumed)[i].outcome, RunOutcome::kOk);
    EXPECT_EQ(RecordToJson((*resumed)[i]), RecordToJson((*original)[i]));
  }
  std::remove(config.journal_path.c_str());
}

// --- journal health: lost appends, truncated tails ---

class JournalHealthTest : public ShardSweepTest {};

TEST_F(JournalHealthTest, TransientAppendFailureRecoversAtSweepEnd) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  config.journal_path = TempPath("transient_append.jsonl");
  // Single-shot: the first append fails, the end-of-sweep retry lands.
  config.faults = "journal.append#1=fail";
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(runner.last_sweep_journal_append_failures(), 0u);

  auto journal = ReadJournal(config.journal_path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->append_failures, 0u);
  EXPECT_EQ(journal->records.size(), records->size());
  std::remove(config.journal_path.c_str());
}

TEST_F(JournalHealthTest, LostAppendsMarkJournalAndResumeReruns) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 1;
  config.journal_path = TempPath("lost_append.jsonl");
  std::remove(config.journal_path.c_str());

  ExperimentConfig ref_config = config;
  ref_config.journal_path.clear();
  ExperimentRunner reference(ref_config);
  auto expected = reference.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 2u);

  // Probability 1: every append fails, including the retry pass — both
  // records are lost and the journal is marked incomplete.
  ExperimentConfig lossy_config = config;
  lossy_config.faults = "journal.append@1.0=fail";
  ExperimentRunner lossy(lossy_config);
  auto records = lossy.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(lossy.last_sweep_journal_append_failures(), 2u);

  auto journal = ReadJournal(config.journal_path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->records.size(), 0u);
  EXPECT_EQ(journal->append_failures, 2u);

  // A marked-incomplete journal cannot be merged...
  EXPECT_FALSE(MergeShardJournals({config.journal_path},
                                  TempPath("lost_merged.jsonl"))
                   .ok());

  // ...and resume refuses to treat it as complete: the missing cells
  // re-run, and full recovery rewrites the journal clean.
  ExperimentConfig resume_config = config;
  resume_config.resume = true;
  ExperimentRunner resumed(resume_config);
  auto rerun = resumed.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(rerun.ok());
  EXPECT_TRUE(resumed.last_sweep_resumed_from_incomplete_journal());
  EXPECT_EQ(resumed.last_sweep_resumed_cells(), 0u);
  EXPECT_EQ(resumed.last_sweep_journal_append_failures(), 0u);
  ASSERT_EQ(rerun->size(), expected->size());
  for (size_t i = 0; i < rerun->size(); ++i) {
    EXPECT_EQ(RecordToJson((*rerun)[i]), RecordToJson((*expected)[i]));
  }
  auto recovered = ReadJournal(config.journal_path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->append_failures, 0u);
  EXPECT_EQ(recovered->records.size(), expected->size());
  std::remove(config.journal_path.c_str());
}

TEST_F(JournalHealthTest, CompactionPreservesIncompletenessMarker) {
  const std::string path = TempPath("compact_marker.jsonl");
  RunRecord record;
  record.system = "caml";
  record.dataset = "d";
  record.paper_budget_seconds = 10.0;
  ASSERT_TRUE(AppendRecordJsonl(record, path).ok());
  ASSERT_TRUE(AppendRecordJsonl(record, path).ok());  // Superseded.
  ASSERT_TRUE(AppendJournalIncompleteMarker(3, path).ok());

  auto removed = CompactJournalJsonl(path);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  auto journal = ReadJournal(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->records.size(), 1u);
  EXPECT_EQ(journal->append_failures, 3u);  // Marker survived.
  std::remove(path.c_str());
}

TEST_F(JournalHealthTest, KilledMidAppendResumesByteIdentical) {
  ExperimentConfig config = SmallConfig();
  config.dataset_limit = 2;
  config.journal_path = TempPath("midappend.jsonl");
  std::remove(config.journal_path.c_str());

  ExperimentConfig ref_config = config;
  ref_config.journal_path.clear();
  ExperimentRunner reference(ref_config);
  auto expected = reference.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 4u);

  // The process dies on cell 3, after journaling two complete lines.
  ExperimentConfig crash_config = config;
  crash_config.faults = "sweep.cell#3=abort";
  EXPECT_DEATH(
      {
        ExperimentRunner crashing(crash_config);
        (void)crashing.Sweep({"caml"}, {10.0, 30.0});
      },
      "injected abort");

  // Simulate the kill landing mid-append: chop the tail so the last
  // line loses its closing bytes and its newline. The truncated line
  // STILL PARSES (numeric fields just come back shorter) — which is
  // exactly why resume must drop it instead of trusting it.
  std::string text = ReadFile(config.journal_path);
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  text.resize(text.size() - 10);
  {
    FILE* f = std::fopen(config.journal_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
    std::fclose(f);
  }
  auto damaged = ReadJournal(config.journal_path);
  ASSERT_TRUE(damaged.ok());
  EXPECT_TRUE(damaged->truncated_tail);
  EXPECT_EQ(damaged->records.size(), 1u);  // The partial line is gone.

  // Resume re-runs the dropped cell (and the never-run ones); the final
  // stream is byte-identical to the uninterrupted sweep.
  ExperimentConfig resume_config = config;
  resume_config.resume = true;
  ExperimentRunner resumed(resume_config);
  auto records = resumed.Sweep({"caml"}, {10.0, 30.0});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(resumed.last_sweep_resumed_cells(), 1u);
  ASSERT_EQ(records->size(), expected->size());
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ(RecordToJson((*records)[i]), RecordToJson((*expected)[i]))
        << i;
  }
  std::remove(config.journal_path.c_str());
}

}  // namespace
}  // namespace green
