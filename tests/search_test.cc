#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "green/search/bayes_opt.h"
#include "green/ml/metrics.h"
#include "green/search/caruana.h"
#include "green/search/kmeans.h"
#include "green/search/median_pruner.h"
#include "green/search/nsga2.h"
#include "green/search/param_space.h"
#include "green/search/random_search.h"
#include "green/search/rf_surrogate.h"
#include "green/search/successive_halving.h"

namespace green {
namespace {

// --- ParamSpace ---

TEST(ParamSpaceTest, DecodeLinearDouble) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", -1.0, 3.0));
  auto p = space.Decode({0.5});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->values.at("x"), 1.0, 1e-12);
}

TEST(ParamSpaceTest, DecodeLogDouble) {
  ParamSpace space;
  space.Add(ParamSpec::Double("lr", 0.01, 1.0, /*log_scale=*/true));
  auto lo = space.Decode({0.0});
  auto mid = space.Decode({0.5});
  auto hi = space.Decode({1.0});
  ASSERT_TRUE(lo.ok() && mid.ok() && hi.ok());
  EXPECT_NEAR(lo->values.at("lr"), 0.01, 1e-9);
  EXPECT_NEAR(mid->values.at("lr"), 0.1, 1e-9);
  EXPECT_NEAR(hi->values.at("lr"), 1.0, 1e-9);
}

TEST(ParamSpaceTest, DecodeIntInclusive) {
  ParamSpace space;
  space.Add(ParamSpec::Int("n", 1, 4));
  std::set<double> seen;
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    seen.insert(space.Sample(&rng).values.at("n"));
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 1.0);
  EXPECT_EQ(*seen.rbegin(), 4.0);
}

TEST(ParamSpaceTest, DecodeCategorical) {
  ParamSpace space;
  space.Add(ParamSpec::Categorical("m", {"a", "b", "c"}));
  auto lo = space.Decode({0.0});
  auto hi = space.Decode({0.999});
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_EQ(lo->choices.at("m"), "a");
  EXPECT_EQ(hi->choices.at("m"), "c");
}

TEST(ParamSpaceTest, DimensionMismatchRejected) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0, 1));
  EXPECT_FALSE(space.Decode({0.1, 0.2}).ok());
}

TEST(ParamSpaceTest, IndexOf) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0, 1));
  space.Add(ParamSpec::Double("y", 0, 1));
  EXPECT_EQ(space.IndexOf("y").value(), 1u);
  EXPECT_FALSE(space.IndexOf("z").ok());
}

TEST(ParamSpaceTest, SampleClampsOutOfRangeUnit) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0.0, 1.0));
  auto p = space.Decode({1.7});
  ASSERT_TRUE(p.ok());
  EXPECT_LE(p->values.at("x"), 1.0);
}

// --- RandomSearch ---

double Sphere(const ParamPoint& p) {
  // Maximum 1.0 at x = 0.7.
  const double x = p.values.at("x");
  return 1.0 - (x - 0.7) * (x - 0.7);
}

TEST(RandomSearchTest, FindsNearOptimum) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0.0, 1.0));
  Rng rng(3);
  auto result = RandomSearch(
      space, 200, &rng,
      [](const ParamPoint& p) -> Result<double> { return Sphere(p); });
  EXPECT_EQ(result.evaluations, 200);
  EXPECT_GT(result.best_score, 0.99);
}

TEST(RandomSearchTest, SkipsErrorsAndStops) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0.0, 1.0));
  Rng rng(3);
  int calls = 0;
  auto result = RandomSearch(
      space, 100, &rng,
      [&](const ParamPoint& p) -> Result<double> {
        ++calls;
        if (calls % 2 == 0) return Status::Internal("boom");
        return Sphere(p);
      },
      [&]() { return calls >= 10; });
  EXPECT_LE(calls, 10);
  EXPECT_EQ(result.evaluations, 5);
}

// --- RfSurrogate ---

TEST(RfSurrogateTest, FitsSimpleFunction) {
  RfSurrogate::Options options;
  options.num_trees = 32;
  RfSurrogate surrogate(options);
  Rng rng(5);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble();
    xs.push_back({x});
    ys.push_back(x * x);
  }
  EXPECT_GT(surrogate.Fit(xs, ys), 0.0);
  ASSERT_TRUE(surrogate.fitted());
  EXPECT_NEAR(surrogate.Predict({0.9}).mean, 0.81, 0.15);
  EXPECT_NEAR(surrogate.Predict({0.1}).mean, 0.01, 0.15);
}

TEST(RfSurrogateTest, UncertaintyNonNegative) {
  RfSurrogate surrogate(RfSurrogate::Options{});
  std::vector<std::vector<double>> xs = {{0.0}, {1.0}};
  std::vector<double> ys = {0.0, 1.0};
  surrogate.Fit(xs, ys);
  EXPECT_GE(surrogate.Predict({0.5}).stddev, 0.0);
}

TEST(RfSurrogateTest, EmptyFitHandled) {
  RfSurrogate surrogate(RfSurrogate::Options{});
  EXPECT_EQ(surrogate.Fit({}, {}), 0.0);
  EXPECT_FALSE(surrogate.fitted());
  EXPECT_EQ(surrogate.Predict({0.5}).mean, 0.0);
}

TEST(RfSurrogateTest, ExpectedImprovementPositiveWhereBetter) {
  RfSurrogate surrogate(RfSurrogate::Options{});
  Rng rng(7);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble();
    xs.push_back({x});
    ys.push_back(x);  // Higher x is better.
  }
  surrogate.Fit(xs, ys);
  EXPECT_GT(surrogate.ExpectedImprovement({0.95}, 0.5),
            surrogate.ExpectedImprovement({0.05}, 0.5));
}

// --- BayesOpt ---

TEST(BayesOptTest, ImprovesOverInitialRandomPhase) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0.0, 1.0));
  space.Add(ParamSpec::Double("y", 0.0, 1.0));
  BayesOpt::Options options;
  options.num_initial_random = 8;
  options.seed = 11;
  BayesOpt optimizer(&space, options);
  auto objective = [](const ParamPoint& p) {
    const double x = p.values.at("x");
    const double y = p.values.at("y");
    return 2.0 - (x - 0.3) * (x - 0.3) - (y - 0.8) * (y - 0.8);
  };
  double best_after_init = -1e300;
  for (int i = 0; i < 60; ++i) {
    const ParamPoint p = optimizer.Ask();
    optimizer.Tell(p, objective(p));
    if (i == options.num_initial_random - 1) {
      best_after_init = optimizer.best_score();
    }
  }
  EXPECT_GE(optimizer.best_score(), best_after_init);
  EXPECT_GT(optimizer.best_score(), 1.95);
  EXPECT_EQ(optimizer.num_observations(), 60);
}

TEST(BayesOptTest, TellManySeedsBest) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0.0, 1.0));
  BayesOpt optimizer(&space, BayesOpt::Options{});
  Rng rng(1);
  std::vector<ParamPoint> points = {space.Sample(&rng),
                                    space.Sample(&rng)};
  optimizer.TellMany(points, {0.4, 0.9});
  EXPECT_DOUBLE_EQ(optimizer.best_score(), 0.9);
  EXPECT_EQ(optimizer.num_observations(), 2);
}

TEST(BayesOptTest, DeterministicGivenSeed) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0.0, 1.0));
  BayesOpt::Options options;
  options.seed = 77;
  BayesOpt a(&space, options);
  BayesOpt b(&space, options);
  for (int i = 0; i < 20; ++i) {
    const ParamPoint pa = a.Ask();
    const ParamPoint pb = b.Ask();
    ASSERT_EQ(pa.unit, pb.unit);
    a.Tell(pa, pa.unit[0]);
    b.Tell(pb, pb.unit[0]);
  }
}

// --- SuccessiveHalving ---

TEST(SuccessiveHalvingTest, KeepsBestArm) {
  // Arm quality is its index; evaluation is noisy but order-preserving.
  SuccessiveHalvingOptions options;
  options.num_rungs = 3;
  options.eta = 2.0;
  auto result = SuccessiveHalving(
      8, options,
      [](int arm, int rung, double fraction) -> Result<double> {
        return static_cast<double>(arm) + 0.1 * fraction;
      });
  EXPECT_EQ(result.best_arm, 7);
  EXPECT_GT(result.evaluations, 8);  // More than one rung ran.
}

TEST(SuccessiveHalvingTest, BudgetFractionGrows) {
  // Track the budget fraction of the winning arm (3), which survives
  // every rung; it must grow strictly and reach 1.0 at the top rung.
  std::vector<double> fractions;
  SuccessiveHalvingOptions options;
  options.num_rungs = 3;
  options.min_fraction = 0.111;
  SuccessiveHalving(4, options,
                    [&](int arm, int rung, double f) -> Result<double> {
                      if (arm == 3) fractions.push_back(f);
                      return static_cast<double>(arm);
                    });
  ASSERT_GE(fractions.size(), 2u);
  for (size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_GT(fractions[i], fractions[i - 1]);
  }
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
}

TEST(SuccessiveHalvingTest, ErrorsEliminateArms) {
  SuccessiveHalvingOptions options;
  options.num_rungs = 2;
  auto result = SuccessiveHalving(
      4, options, [](int arm, int rung, double f) -> Result<double> {
        if (arm == 3) return Status::Internal("always fails");
        return static_cast<double>(arm);
      });
  EXPECT_EQ(result.best_arm, 2);
}

TEST(SuccessiveHalvingTest, StopsOnBudget) {
  int evals = 0;
  SuccessiveHalvingOptions options;
  options.num_rungs = 4;
  auto result = SuccessiveHalving(
      16, options,
      [&](int arm, int rung, double f) -> Result<double> {
        ++evals;
        return static_cast<double>(arm);
      },
      [&]() { return evals >= 5; });
  EXPECT_LE(evals, 6);
  EXPECT_GE(result.best_arm, 0);  // Still returns a provisional best.
}

TEST(SuccessiveHalvingTest, ZeroArms) {
  auto result = SuccessiveHalving(
      0, SuccessiveHalvingOptions{},
      [](int, int, double) -> Result<double> { return 0.0; });
  EXPECT_EQ(result.best_arm, -1);
}

// --- NSGA-II ---

TEST(Nsga2Test, NonDominatedSortRanks) {
  std::vector<Nsga2Individual> pop(3);
  pop[0].objectives = {1.0, 1.0};  // Dominates both others.
  pop[1].objectives = {0.5, 0.9};
  pop[2].objectives = {0.4, 0.4};  // Dominated by both others.
  auto fronts = NonDominatedSort(&pop);
  EXPECT_EQ(pop[0].rank, 0);
  EXPECT_EQ(pop[1].rank, 1);
  EXPECT_EQ(pop[2].rank, 2);
  EXPECT_EQ(fronts.size(), 3u);
}

TEST(Nsga2Test, IncomparableShareFront) {
  std::vector<Nsga2Individual> pop(2);
  pop[0].objectives = {1.0, 0.0};
  pop[1].objectives = {0.0, 1.0};
  auto fronts = NonDominatedSort(&pop);
  EXPECT_EQ(fronts.size(), 1u);
  EXPECT_EQ(pop[0].rank, 0);
  EXPECT_EQ(pop[1].rank, 0);
}

TEST(Nsga2Test, CrowdingBoundaryInfinite) {
  std::vector<Nsga2Individual> pop(3);
  pop[0].objectives = {0.0, 1.0};
  pop[1].objectives = {0.5, 0.5};
  pop[2].objectives = {1.0, 0.0};
  AssignCrowdingDistance({0, 1, 2}, &pop);
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[2].crowding));
  EXPECT_TRUE(std::isfinite(pop[1].crowding));
}

TEST(Nsga2Test, OptimizesTwoObjectives) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0.0, 1.0));
  Nsga2Options options;
  options.population_size = 12;
  options.generations = 8;
  options.seed = 13;
  // Classic trade-off: f1 = 1-x, f2 = x. The front is the whole segment;
  // evolution should cover both ends.
  auto result =
      Nsga2(space, options,
            [](const ParamPoint& p) -> Result<std::vector<double>> {
              const double x = p.values.at("x");
              return std::vector<double>{1.0 - x, x};
            });
  ASSERT_FALSE(result.population.empty());
  double min_x = 1.0;
  double max_x = 0.0;
  for (const auto& ind : result.population) {
    if (ind.rank != 0) continue;
    min_x = std::min(min_x, ind.unit[0]);
    max_x = std::max(max_x, ind.unit[0]);
  }
  EXPECT_LT(min_x, 0.3);
  EXPECT_GT(max_x, 0.7);
}

TEST(Nsga2Test, StopsOnBudget) {
  ParamSpace space;
  space.Add(ParamSpec::Double("x", 0.0, 1.0));
  Nsga2Options options;
  options.population_size = 4;
  options.generations = 100;
  int evals = 0;
  auto result = Nsga2(
      space, options,
      [&](const ParamPoint& p) -> Result<std::vector<double>> {
        ++evals;
        return std::vector<double>{p.values.at("x")};
      },
      [&]() { return evals >= 10; });
  EXPECT_LE(evals, 11);
}

// --- Caruana ---

TEST(CaruanaTest, PrefersAccurateMember) {
  const std::vector<int> labels = {0, 0, 1, 1};
  ProbaMatrix good = {{0.9, 0.1}, {0.8, 0.2}, {0.1, 0.9}, {0.2, 0.8}};
  ProbaMatrix bad = {{0.1, 0.9}, {0.2, 0.8}, {0.9, 0.1}, {0.8, 0.2}};
  auto result = CaruanaEnsembleSelection({good, bad}, labels, 2,
                                         CaruanaOptions{});
  EXPECT_GT(result.weights[0], result.weights[1]);
  EXPECT_NEAR(result.weights[0] + result.weights[1], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.validation_score, 1.0);
  EXPECT_GT(result.work, 0.0);
}

TEST(CaruanaTest, EnsembleAtLeastAsGoodAsBestSingle) {
  Rng rng(17);
  const int n = 60;
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = i % 2;
  // Three noisy members with different error patterns.
  std::vector<ProbaMatrix> library;
  double best_single = 0.0;
  for (int m = 0; m < 3; ++m) {
    ProbaMatrix proba(n);
    std::vector<int> preds(n);
    for (int i = 0; i < n; ++i) {
      const bool correct = rng.NextBool(0.75);
      const int label = correct ? labels[i] : 1 - labels[i];
      proba[i] = label == 0 ? std::vector<double>{0.8, 0.2}
                            : std::vector<double>{0.2, 0.8};
      preds[i] = label;
    }
    best_single =
        std::max(best_single, BalancedAccuracy(labels, preds, 2));
    library.push_back(std::move(proba));
  }
  auto result =
      CaruanaEnsembleSelection(library, labels, 2, CaruanaOptions{});
  EXPECT_GE(result.validation_score, best_single - 1e-9);
}

TEST(CaruanaTest, EmptyLibrary) {
  auto result = CaruanaEnsembleSelection({}, {}, 2, CaruanaOptions{});
  EXPECT_TRUE(result.weights.empty());
}

TEST(CaruanaTest, BlendProbaWeighted) {
  ProbaMatrix a = {{1.0, 0.0}};
  ProbaMatrix b = {{0.0, 1.0}};
  const ProbaMatrix blended = BlendProba({a, b}, {0.75, 0.25});
  EXPECT_NEAR(blended[0][0], 0.75, 1e-12);
  EXPECT_NEAR(blended[0][1], 0.25, 1e-12);
}

// --- KMeans ---

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  Rng rng(19);
  for (int i = 0; i < 30; ++i) {
    points.push_back({rng.NextGaussian() * 0.1, rng.NextGaussian() * 0.1});
    points.push_back(
        {10.0 + rng.NextGaussian() * 0.1, rng.NextGaussian() * 0.1});
  }
  KMeansOptions options;
  options.k = 2;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centroids.size(), 2u);
  // One centroid near x=0, the other near x=10.
  const double x0 = result->centroids[0][0];
  const double x1 = result->centroids[1][0];
  EXPECT_NEAR(std::min(x0, x1), 0.0, 0.5);
  EXPECT_NEAR(std::max(x0, x1), 10.0, 0.5);
  // Points in the same physical cluster share the assignment.
  EXPECT_EQ(result->assignment[0], result->assignment[2]);
  EXPECT_NE(result->assignment[0], result->assignment[1]);
}

TEST(KMeansTest, KLargerThanPoints) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  KMeansOptions options;
  options.k = 10;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->centroids.size(), 2u);
}

TEST(KMeansTest, RejectsBadInput) {
  EXPECT_FALSE(KMeans({}, KMeansOptions{}).ok());
  KMeansOptions bad;
  bad.k = 0;
  EXPECT_FALSE(KMeans({{1.0}}, bad).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, KMeansOptions{}).ok());
}

TEST(KMeansTest, ClosestPointPerCentroidDedups) {
  std::vector<std::vector<double>> points = {{0.0}, {0.1}, {10.0}};
  KMeansOptions options;
  options.k = 2;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  const auto representatives = ClosestPointPerCentroid(points, *result);
  EXPECT_GE(representatives.size(), 1u);
  EXPECT_LE(representatives.size(), 2u);
  std::set<size_t> unique(representatives.begin(), representatives.end());
  EXPECT_EQ(unique.size(), representatives.size());
}

TEST(KMeansTest, InertiaDecreasesWithK) {
  std::vector<std::vector<double>> points;
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.NextDouble() * 10, rng.NextDouble() * 10});
  }
  double prev = 1e300;
  for (int k = 1; k <= 8; k *= 2) {
    KMeansOptions options;
    options.k = k;
    auto result = KMeans(points, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->inertia, prev + 1e-9);
    prev = result->inertia;
  }
}

// --- MedianPruner ---

TEST(MedianPrunerTest, NoPruningBeforeMinTrials) {
  MedianPruner pruner;
  EXPECT_FALSE(pruner.ShouldPrune(0, -100.0));
  pruner.ReportIntermediate(0, 1.0);
  pruner.ReportIntermediate(0, 2.0);
  EXPECT_FALSE(pruner.ShouldPrune(0, -100.0));  // Only 2 < min_trials.
}

TEST(MedianPrunerTest, PrunesBelowMedian) {
  MedianPruner pruner;
  for (double v : {1.0, 2.0, 3.0}) pruner.ReportIntermediate(0, v);
  EXPECT_TRUE(pruner.ShouldPrune(0, 1.5));   // Below median 2.
  EXPECT_FALSE(pruner.ShouldPrune(0, 2.5));  // Above median.
  EXPECT_EQ(pruner.NumObservations(0), 3u);
  EXPECT_EQ(pruner.NumObservations(7), 0u);
}

TEST(MedianPrunerTest, StepsIndependent) {
  MedianPruner pruner;
  for (double v : {10.0, 20.0, 30.0}) pruner.ReportIntermediate(1, v);
  EXPECT_FALSE(pruner.ShouldPrune(0, 0.0));  // Step 0 has no history.
  EXPECT_TRUE(pruner.ShouldPrune(1, 5.0));
}

}  // namespace
}  // namespace green
