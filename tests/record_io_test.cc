#include <gtest/gtest.h>

#include "green/bench_util/record_io.h"

namespace green {
namespace {

RunRecord SampleRecord() {
  RunRecord r;
  r.system = "caml";
  r.dataset = "credit-g";
  r.paper_budget_seconds = 30.0;
  r.repetition = 2;
  r.test_balanced_accuracy = 0.8125;
  r.execution_seconds = 30.89;
  r.execution_kwh = 0.00029;
  r.inference_kwh_per_instance = 4.5e-08;
  r.inference_seconds_per_instance = 1.5e-06;
  r.num_pipelines = 1;
  r.pipelines_evaluated = 17;
  r.best_validation_score = 0.83;
  return r;
}

TEST(RecordIoTest, JsonRoundTrip) {
  const RunRecord original = SampleRecord();
  auto parsed = RecordFromJson(RecordToJson(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->system, original.system);
  EXPECT_EQ(parsed->dataset, original.dataset);
  EXPECT_DOUBLE_EQ(parsed->paper_budget_seconds,
                   original.paper_budget_seconds);
  EXPECT_EQ(parsed->repetition, original.repetition);
  EXPECT_DOUBLE_EQ(parsed->test_balanced_accuracy,
                   original.test_balanced_accuracy);
  EXPECT_DOUBLE_EQ(parsed->execution_kwh, original.execution_kwh);
  EXPECT_DOUBLE_EQ(parsed->inference_kwh_per_instance,
                   original.inference_kwh_per_instance);
  EXPECT_EQ(parsed->num_pipelines, original.num_pipelines);
  EXPECT_EQ(parsed->pipelines_evaluated, original.pipelines_evaluated);
}

TEST(RecordIoTest, JsonEscapesSpecialCharacters) {
  RunRecord r = SampleRecord();
  r.dataset = "weird\"name\\with\nstuff";
  auto parsed = RecordFromJson(RecordToJson(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->dataset, r.dataset);
}

TEST(RecordIoTest, HostileNamesRoundTripAndStayValidJson) {
  // Control characters that the old escaper passed through raw, which
  // produced invalid JSON: \t, \r, \b, \f, and arbitrary control bytes.
  const std::vector<std::string> hostile = {
      "tab\there",
      "cr\rlf\n",
      "bell\x07squash\x01\x02",
      "quote\"back\\slash",
      "mix\t\"\\\r\n\f\b\x1f",
      "trailing-backslash\\",
  };
  for (const std::string& name : hostile) {
    RunRecord r = SampleRecord();
    r.dataset = name;
    r.system = name;
    const std::string json = RecordToJson(r);
    // Valid JSON strings contain no raw control characters.
    bool in_string = false;
    bool escaped = false;
    for (char c : json) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20) << "raw control char";
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = !in_string;
      }
    }
    EXPECT_FALSE(in_string) << "unbalanced quotes: " << json;
    auto parsed = RecordFromJson(json);
    ASSERT_TRUE(parsed.ok()) << json;
    EXPECT_EQ(parsed->dataset, name);
    EXPECT_EQ(parsed->system, name);
  }
}

TEST(RecordIoTest, HostileNamesSurviveJsonlFile) {
  std::vector<RunRecord> records = {SampleRecord()};
  records[0].dataset = "line\nbreak\tand\rreturn";
  const std::string path =
      ::testing::TempDir() + "/green_records_hostile.jsonl";
  ASSERT_TRUE(WriteRecordsJsonl(records, path).ok());
  auto loaded = ReadRecordsJsonl(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);  // \n stayed escaped: still one line.
  EXPECT_EQ((*loaded)[0].dataset, records[0].dataset);
}

TEST(RecordIoTest, RejectsMalformedJson) {
  EXPECT_FALSE(RecordFromJson("{}").ok());
  EXPECT_FALSE(RecordFromJson("not json at all").ok());
  EXPECT_FALSE(
      RecordFromJson("{\"system\":\"caml\"}").ok());  // Missing fields.
}

TEST(RecordIoTest, JsonlFileRoundTrip) {
  std::vector<RunRecord> records = {SampleRecord(), SampleRecord()};
  records[1].system = "flaml";
  records[1].repetition = 9;
  const std::string path =
      ::testing::TempDir() + "/green_records_test.jsonl";
  ASSERT_TRUE(WriteRecordsJsonl(records, path).ok());
  auto loaded = ReadRecordsJsonl(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].system, "caml");
  EXPECT_EQ((*loaded)[1].system, "flaml");
  EXPECT_EQ((*loaded)[1].repetition, 9);
  EXPECT_FALSE(ReadRecordsJsonl("/nonexistent/records.jsonl").ok());
}

TEST(RecordIoTest, CsvHasHeaderAndRows) {
  const std::string csv = RecordsToCsv({SampleRecord()});
  EXPECT_NE(csv.find("system,dataset,budget_s"), std::string::npos);
  EXPECT_NE(csv.find("caml,credit-g,30"), std::string::npos);
  // Header + one row + trailing newline.
  int lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(RecordIoTest, CsvFileWrite) {
  const std::string path = ::testing::TempDir() + "/green_records.csv";
  EXPECT_TRUE(WriteRecordsCsv({SampleRecord()}, path).ok());
  EXPECT_FALSE(WriteRecordsCsv({}, "/nonexistent/dir/records.csv").ok());
}

}  // namespace
}  // namespace green
