#include <gtest/gtest.h>

#include "green/data/synthetic.h"
#include "green/ml/metrics.h"
#include "green/ml/model_registry.h"
#include "green/ml/pipeline.h"
#include "green/table/split.h"

namespace green {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : model_(MachineModel::Minimal()), ctx_(&clock_, &model_, 1) {}

  Dataset MakeTask(double missing = 0.0) {
    SyntheticSpec spec;
    spec.name = "task";
    spec.num_rows = 240;
    spec.num_features = 10;
    spec.num_informative = 8;
    spec.num_categorical = 3;
    spec.separation = 3.0;
    spec.missing_fraction = missing;
    spec.seed = 4;
    auto data = GenerateSynthetic(spec);
    EXPECT_TRUE(data.ok());
    return std::move(data).value();
  }

  VirtualClock clock_;
  EnergyModel model_;
  ExecutionContext ctx_;
};

TEST_F(PipelineTest, BuildsEveryKnownModel) {
  for (const std::string& name : KnownModels()) {
    PipelineConfig config;
    config.model = name;
    auto pipeline = BuildPipeline(config);
    EXPECT_TRUE(pipeline.ok()) << name;
  }
}

TEST_F(PipelineTest, UnknownModelRejected) {
  PipelineConfig config;
  config.model = "quantum_svm";
  EXPECT_FALSE(BuildPipeline(config).ok());
  config.model = "decision_tree";
  config.scaler = "bogus";
  EXPECT_FALSE(BuildPipeline(config).ok());
}

TEST_F(PipelineTest, EndToEndWithMissingAndCategorical) {
  const Dataset data = MakeTask(/*missing=*/0.05);
  Rng rng(5);
  const TrainTestData split =
      Materialize(data, StratifiedSplit(data, 0.66, &rng));
  PipelineConfig config;
  config.model = "random_forest";
  config.params["num_trees"] = 16;
  auto pipeline = BuildPipeline(config);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(pipeline->Fit(split.train, &ctx_).ok());
  auto preds = pipeline->Predict(split.test, &ctx_);
  ASSERT_TRUE(preds.ok());
  EXPECT_GT(BalancedAccuracy(split.test.labels(), preds.value(),
                             data.num_classes()),
            0.75);
}

TEST_F(PipelineTest, PredictBeforeFitRejected) {
  PipelineConfig config;
  auto pipeline = BuildPipeline(config);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_FALSE(pipeline->Predict(MakeTask(), &ctx_).ok());
}

TEST_F(PipelineTest, PipelineWithoutModelRejected) {
  Pipeline pipeline;
  EXPECT_FALSE(pipeline.Fit(MakeTask(), &ctx_).ok());
}

TEST_F(PipelineTest, DescribeListsStages) {
  PipelineConfig config;
  config.model = "naive_bayes";
  config.select_k_best = 4;
  auto pipeline = BuildPipeline(config);
  ASSERT_TRUE(pipeline.ok());
  const std::string description = pipeline->Describe();
  EXPECT_NE(description.find("imputer"), std::string::npos);
  EXPECT_NE(description.find("select_k_best"), std::string::npos);
  EXPECT_NE(description.find("naive_bayes"), std::string::npos);
}

TEST_F(PipelineTest, ConfigDescribeIsCompact) {
  PipelineConfig config;
  config.model = "random_forest";
  config.params["num_trees"] = 8;
  const std::string s = config.Describe();
  EXPECT_NE(s.find("random_forest"), std::string::npos);
  EXPECT_NE(s.find("num_trees=8"), std::string::npos);
}

TEST_F(PipelineTest, InferenceFlopsComposeAcrossStages) {
  const Dataset data = MakeTask();
  PipelineConfig bare;
  bare.model = "logistic_regression";
  bare.impute = false;
  bare.one_hot = false;
  bare.scaler = "none";
  PipelineConfig full;
  full.model = "logistic_regression";
  auto p_bare = BuildPipeline(bare);
  auto p_full = BuildPipeline(full);
  ASSERT_TRUE(p_bare.ok() && p_full.ok());
  ASSERT_TRUE(p_bare->Fit(data, &ctx_).ok());
  ASSERT_TRUE(p_full->Fit(data, &ctx_).ok());
  EXPECT_GT(p_full->InferenceFlopsPerRow(data.num_features()),
            p_bare->InferenceFlopsPerRow(data.num_features()));
}

TEST_F(PipelineTest, SelectKReducesModelInputWidth) {
  const Dataset data = MakeTask();
  PipelineConfig narrow;
  narrow.model = "logistic_regression";
  narrow.one_hot = false;
  narrow.select_k_best = 3;
  auto pipeline = BuildPipeline(narrow);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(pipeline->Fit(data, &ctx_).ok());
  auto preds = pipeline->Predict(data, &ctx_);
  EXPECT_TRUE(preds.ok());
}

TEST_F(PipelineTest, TrainCostEstimatesOrdering) {
  // NB must be estimated cheaper than a forest, which is cheaper than a
  // big MLP — the ordering FLAML's ladder and the planners rely on.
  PipelineConfig nb;
  nb.model = "naive_bayes";
  PipelineConfig forest;
  forest.model = "random_forest";
  forest.params["num_trees"] = 32;
  PipelineConfig mlp;
  mlp.model = "mlp";
  mlp.params["hidden_units"] = 64;
  mlp.params["epochs"] = 60;
  const double nb_cost = EstimateTrainCost(nb, 1000, 20, 2);
  const double forest_cost = EstimateTrainCost(forest, 1000, 20, 2);
  const double mlp_cost = EstimateTrainCost(mlp, 1000, 20, 2);
  EXPECT_LT(nb_cost, forest_cost);
  EXPECT_LT(nb_cost, mlp_cost);
}

TEST_F(PipelineTest, PredictCostEstimates) {
  PipelineConfig knn;
  knn.model = "knn";
  PipelineConfig logistic;
  logistic.model = "logistic_regression";
  // kNN prediction cost grows with training size; logistic's does not.
  EXPECT_GT(EstimatePredictCost(knn, 10000, 100, 20, 2),
            10.0 * EstimatePredictCost(knn, 100, 100, 20, 2));
  EXPECT_NEAR(EstimatePredictCost(logistic, 10000, 100, 20, 2),
              EstimatePredictCost(logistic, 100, 100, 20, 2), 1e-9);
}

TEST_F(PipelineTest, TrainCostMonotoneInRows) {
  for (const std::string& name : KnownModels()) {
    PipelineConfig config;
    config.model = name;
    EXPECT_LE(EstimateTrainCost(config, 100, 10, 2),
              EstimateTrainCost(config, 10000, 10, 2))
        << name;
  }
}

TEST_F(PipelineTest, ParamsForwardedToModel) {
  const Dataset data = MakeTask();
  PipelineConfig small;
  small.model = "random_forest";
  small.params["num_trees"] = 4;
  PipelineConfig big = small;
  big.params["num_trees"] = 32;
  auto a = BuildPipeline(small);
  auto b = BuildPipeline(big);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->Fit(data, &ctx_).ok());
  ASSERT_TRUE(b->Fit(data, &ctx_).ok());
  EXPECT_GT(b->ModelComplexity(), a->ModelComplexity());
}

}  // namespace
}  // namespace green
