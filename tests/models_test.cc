#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "green/data/synthetic.h"
#include "green/ml/metrics.h"
#include "green/ml/models/attention_few_shot.h"
#include "green/ml/models/decision_tree.h"
#include "green/ml/models/extra_trees.h"
#include "green/ml/models/gradient_boosting.h"
#include "green/ml/models/knn.h"
#include "green/ml/models/logistic_regression.h"
#include "green/ml/models/mlp.h"
#include "green/ml/models/naive_bayes.h"
#include "green/ml/models/random_forest.h"
#include "green/table/split.h"

namespace green {
namespace {

/// Easy, well-separated task every competent learner should ace.
Dataset EasyTask(int classes = 2, size_t rows = 300, uint64_t seed = 3) {
  SyntheticSpec spec;
  spec.name = "easy";
  spec.num_rows = rows;
  spec.num_features = 8;
  spec.num_informative = 8;
  spec.num_classes = classes;
  spec.clusters_per_class = 1;
  spec.separation = 4.0;
  spec.label_noise = 0.0;
  spec.seed = seed;
  auto data = GenerateSynthetic(spec);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

struct ModelCase {
  std::string name;
  std::function<std::unique_ptr<Estimator>()> make;
  double min_easy_accuracy;
};

const std::vector<ModelCase>& AllModels() {
  static const std::vector<ModelCase>* kCases = [] {
  auto* cases_ptr = new std::vector<ModelCase>();
  auto& cases = *cases_ptr;
  cases.push_back({"decision_tree",
                   [] {
                     DecisionTreeParams p;
                     p.max_depth = 8;
                     return std::make_unique<DecisionTree>(p);
                   },
                   0.9});
  cases.push_back({"random_forest",
                   [] {
                     RandomForestParams p;
                     p.num_trees = 16;
                     return std::make_unique<RandomForest>(p);
                   },
                   0.9});
  cases.push_back({"extra_trees",
                   [] {
                     ExtraTreesParams p;
                     p.num_trees = 16;
                     return std::make_unique<ExtraTrees>(p);
                   },
                   0.9});
  cases.push_back({"gradient_boosting",
                   [] {
                     GradientBoostingParams p;
                     p.num_rounds = 20;
                     return std::make_unique<GradientBoosting>(p);
                   },
                   0.9});
  cases.push_back({"logistic_regression",
                   [] {
                     LogisticRegressionParams p;
                     p.epochs = 25;
                     return std::make_unique<LogisticRegression>(p);
                   },
                   0.9});
  cases.push_back({"knn",
                   [] { return std::make_unique<Knn>(KnnParams{}); },
                   0.9});
  cases.push_back({"naive_bayes",
                   [] {
                     return std::make_unique<GaussianNaiveBayes>(
                         NaiveBayesParams{});
                   },
                   0.9});
  cases.push_back({"mlp",
                   [] {
                     MlpParams p;
                     p.epochs = 30;
                     return std::make_unique<Mlp>(p);
                   },
                   0.85});
  cases.push_back({"attention_few_shot",
                   [] {
                     return std::make_unique<AttentionFewShot>(
                         AttentionFewShotParams{});
                   },
                   0.85});
  return cases_ptr;
  }();
  return *kCases;
}

class AllModelsTest : public ::testing::TestWithParam<size_t> {
 protected:
  AllModelsTest()
      : model_(MachineModel::Minimal()), ctx_(&clock_, &model_, 1) {}

  VirtualClock clock_;
  EnergyModel model_;
  ExecutionContext ctx_;
};

TEST_P(AllModelsTest, LearnsSeparableData) {
  const ModelCase& c = AllModels()[GetParam()];
  const Dataset data = EasyTask();
  Rng rng(1);
  const TrainTestData split =
      Materialize(data, StratifiedSplit(data, 0.66, &rng));
  auto estimator = c.make();
  ASSERT_TRUE(estimator->Fit(split.train, &ctx_).ok()) << c.name;
  auto preds = estimator->Predict(split.test, &ctx_);
  ASSERT_TRUE(preds.ok()) << c.name;
  const double acc = BalancedAccuracy(split.test.labels(), preds.value(),
                                      data.num_classes());
  EXPECT_GE(acc, c.min_easy_accuracy) << c.name;
}

TEST_P(AllModelsTest, ProbabilitiesAreDistributions) {
  const ModelCase& c = AllModels()[GetParam()];
  const Dataset data = EasyTask(3);
  auto estimator = c.make();
  ASSERT_TRUE(estimator->Fit(data, &ctx_).ok());
  auto proba = estimator->PredictProba(data, &ctx_);
  ASSERT_TRUE(proba.ok());
  ASSERT_EQ(proba->size(), data.num_rows());
  for (const auto& row : *proba) {
    ASSERT_EQ(row.size(), 3u);
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-9);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST_P(AllModelsTest, RefusesUnfittedPredict) {
  const ModelCase& c = AllModels()[GetParam()];
  auto estimator = c.make();
  EXPECT_FALSE(estimator->PredictProba(EasyTask(), &ctx_).ok());
}

TEST_P(AllModelsTest, RefusesEmptyTraining) {
  const ModelCase& c = AllModels()[GetParam()];
  Dataset empty("e", 3, 2);
  auto estimator = c.make();
  EXPECT_FALSE(estimator->Fit(empty, &ctx_).ok());
}

TEST_P(AllModelsTest, ChargesTrainingWork) {
  const ModelCase& c = AllModels()[GetParam()];
  const Dataset data = EasyTask();
  const double before = ctx_.counter()->total_flops();
  auto estimator = c.make();
  ASSERT_TRUE(estimator->Fit(data, &ctx_).ok());
  EXPECT_GT(ctx_.counter()->total_flops(), before) << c.name;
}

TEST_P(AllModelsTest, InferenceCostPositiveAfterFit) {
  const ModelCase& c = AllModels()[GetParam()];
  const Dataset data = EasyTask();
  auto estimator = c.make();
  ASSERT_TRUE(estimator->Fit(data, &ctx_).ok());
  EXPECT_GT(estimator->InferenceFlopsPerRow(data.num_features()), 0.0);
  EXPECT_GT(estimator->ComplexityProxy(), 0.0);
  EXPECT_EQ(estimator->num_classes(), 2);
  EXPECT_TRUE(estimator->fitted());
}

INSTANTIATE_TEST_SUITE_P(EveryModel, AllModelsTest,
                         ::testing::Range<size_t>(0, 9));

// --- model-specific behaviours ---

class ModelsTest : public ::testing::Test {
 protected:
  ModelsTest()
      : model_(MachineModel::Minimal()), ctx_(&clock_, &model_, 1) {}

  VirtualClock clock_;
  EnergyModel model_;
  ExecutionContext ctx_;
};

TEST_F(ModelsTest, TreeDepthLimitRespected) {
  const Dataset data = EasyTask(2, 400);
  DecisionTreeParams shallow;
  shallow.max_depth = 2;
  DecisionTree small(shallow);
  ASSERT_TRUE(small.Fit(data, &ctx_).ok());
  EXPECT_LE(small.num_nodes(), 7u);  // Depth 2 => at most 7 nodes.
  DecisionTreeParams deep;
  deep.max_depth = 10;
  DecisionTree big(deep);
  ASSERT_TRUE(big.Fit(data, &ctx_).ok());
  EXPECT_GE(big.num_nodes(), small.num_nodes());
}

TEST_F(ModelsTest, TreeDeterministicForSeed) {
  const Dataset data = EasyTask();
  DecisionTreeParams p;
  p.max_features_fraction = 0.5;
  p.seed = 9;
  DecisionTree a(p);
  DecisionTree b(p);
  ASSERT_TRUE(a.Fit(data, &ctx_).ok());
  ASSERT_TRUE(b.Fit(data, &ctx_).ok());
  auto pa = a.Predict(data, &ctx_);
  auto pb = b.Predict(data, &ctx_);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_EQ(pa.value(), pb.value());
}

TEST_F(ModelsTest, ForestBeatsSingleTreeOnNoisyData) {
  SyntheticSpec spec;
  spec.num_rows = 500;
  spec.num_features = 12;
  spec.num_informative = 6;
  spec.separation = 1.4;
  spec.label_noise = 0.1;
  spec.clusters_per_class = 2;
  spec.seed = 11;
  auto data = GenerateSynthetic(spec);
  ASSERT_TRUE(data.ok());
  Rng rng(2);
  const TrainTestData split =
      Materialize(*data, StratifiedSplit(*data, 0.66, &rng));

  DecisionTreeParams tp;
  tp.max_depth = 10;
  DecisionTree tree(tp);
  RandomForestParams fp;
  fp.num_trees = 32;
  fp.max_depth = 10;
  RandomForest forest(fp);
  ASSERT_TRUE(tree.Fit(split.train, &ctx_).ok());
  ASSERT_TRUE(forest.Fit(split.train, &ctx_).ok());
  const double tree_acc =
      BalancedAccuracy(split.test.labels(),
                       tree.Predict(split.test, &ctx_).value(), 2);
  const double forest_acc =
      BalancedAccuracy(split.test.labels(),
                       forest.Predict(split.test, &ctx_).value(), 2);
  EXPECT_GE(forest_acc, tree_acc - 0.02);
}

TEST_F(ModelsTest, ForestInferenceCostScalesWithTrees) {
  const Dataset data = EasyTask();
  RandomForestParams small;
  small.num_trees = 4;
  RandomForestParams big;
  big.num_trees = 32;
  RandomForest a(small);
  RandomForest b(big);
  ASSERT_TRUE(a.Fit(data, &ctx_).ok());
  ASSERT_TRUE(b.Fit(data, &ctx_).ok());
  EXPECT_GT(b.InferenceFlopsPerRow(8), 4.0 * a.InferenceFlopsPerRow(8));
}

TEST_F(ModelsTest, BoostingRoundsIncreaseComplexity) {
  const Dataset data = EasyTask();
  GradientBoostingParams few;
  few.num_rounds = 5;
  GradientBoostingParams many;
  many.num_rounds = 25;
  GradientBoosting a(few);
  GradientBoosting b(many);
  ASSERT_TRUE(a.Fit(data, &ctx_).ok());
  ASSERT_TRUE(b.Fit(data, &ctx_).ok());
  EXPECT_EQ(a.rounds_fitted(), 5);
  EXPECT_EQ(b.rounds_fitted(), 25);
  EXPECT_GT(b.ComplexityProxy(), a.ComplexityProxy());
}

TEST_F(ModelsTest, KnnInferenceDominatedByTrainSize) {
  const Dataset small_train = EasyTask(2, 100);
  const Dataset big_train = EasyTask(2, 400);
  Knn a{KnnParams{}};
  Knn b{KnnParams{}};
  ASSERT_TRUE(a.Fit(small_train, &ctx_).ok());
  ASSERT_TRUE(b.Fit(big_train, &ctx_).ok());
  EXPECT_NEAR(b.InferenceFlopsPerRow(8) / a.InferenceFlopsPerRow(8), 4.0,
              0.1);
}

TEST_F(ModelsTest, KnnFeatureMismatchRejected) {
  Knn knn{KnnParams{}};
  ASSERT_TRUE(knn.Fit(EasyTask(), &ctx_).ok());
  Dataset wrong("w", 3, 2);
  ASSERT_TRUE(wrong.AppendRow({1, 2, 3}, 0).ok());
  EXPECT_FALSE(knn.PredictProba(wrong, &ctx_).ok());
}

TEST_F(ModelsTest, LinearModelsCheapestAtInference) {
  const Dataset data = EasyTask();
  LogisticRegression logistic{LogisticRegressionParams{}};
  Knn knn{KnnParams{}};
  ASSERT_TRUE(logistic.Fit(data, &ctx_).ok());
  ASSERT_TRUE(knn.Fit(data, &ctx_).ok());
  EXPECT_LT(logistic.InferenceFlopsPerRow(8),
            knn.InferenceFlopsPerRow(8));
}

TEST_F(ModelsTest, FewShotRespectsClassLimit) {
  const Dataset data = EasyTask(12, 360);  // 12 > the 10-class limit.
  AttentionFewShot model{AttentionFewShotParams{}};
  ASSERT_TRUE(model.Fit(data, &ctx_).ok());
  EXPECT_TRUE(model.class_limit_exceeded());
  auto proba = model.PredictProba(data, &ctx_);
  ASSERT_TRUE(proba.ok());
  // Degrades to the class prior: near-uniform on balanced data.
  for (double p : (*proba)[0]) EXPECT_NEAR(p, 1.0 / 12.0, 0.02);
}

TEST_F(ModelsTest, FewShotSubsamplesLargeContext) {
  AttentionFewShotParams params;
  params.max_context = 64;
  AttentionFewShot model(params);
  ASSERT_TRUE(model.Fit(EasyTask(2, 500), &ctx_).ok());
  EXPECT_LE(model.context_size(), 64u);
}

TEST_F(ModelsTest, FewShotExecutionCheapInferenceExpensive) {
  // TabPFN's signature asymmetry, at the model level.
  const Dataset data = EasyTask(2, 400);
  AttentionFewShot model{AttentionFewShotParams{}};
  const double before_fit = ctx_.counter()->total_flops();
  ASSERT_TRUE(model.Fit(data, &ctx_).ok());
  const double fit_work = ctx_.counter()->total_flops() - before_fit;
  const double before_predict = ctx_.counter()->total_flops();
  ASSERT_TRUE(model.PredictProba(data, &ctx_).ok());
  const double predict_work =
      ctx_.counter()->total_flops() - before_predict;
  EXPECT_GT(predict_work, 5.0 * fit_work);
}

TEST_F(ModelsTest, FewShotPretrainedWeightsIndependentOfData) {
  // Two models fit on different data produce identical predictions for
  // the same context — the "pretrained" weights never adapt.
  AttentionFewShotParams params;
  AttentionFewShot a(params);
  AttentionFewShot b(params);
  const Dataset data = EasyTask(2, 200, 5);
  ASSERT_TRUE(a.Fit(data, &ctx_).ok());
  ASSERT_TRUE(b.Fit(data, &ctx_).ok());
  auto pa = a.PredictProba(data, &ctx_);
  auto pb = b.PredictProba(data, &ctx_);
  ASSERT_TRUE(pa.ok() && pb.ok());
  for (size_t i = 0; i < pa->size(); ++i) {
    EXPECT_DOUBLE_EQ((*pa)[i][0], (*pb)[i][0]);
  }
}

TEST_F(ModelsTest, MlpImprovesWithTraining) {
  SyntheticSpec spec;
  spec.num_rows = 400;
  spec.num_features = 10;
  spec.num_informative = 10;
  spec.separation = 2.0;
  spec.seed = 21;
  auto data = GenerateSynthetic(spec);
  ASSERT_TRUE(data.ok());
  MlpParams short_train;
  short_train.epochs = 1;
  MlpParams long_train;
  long_train.epochs = 40;
  Mlp a(short_train);
  Mlp b(long_train);
  ASSERT_TRUE(a.Fit(*data, &ctx_).ok());
  ASSERT_TRUE(b.Fit(*data, &ctx_).ok());
  const double acc_a = BalancedAccuracy(
      data->labels(), a.Predict(*data, &ctx_).value(), 2);
  const double acc_b = BalancedAccuracy(
      data->labels(), b.Predict(*data, &ctx_).value(), 2);
  EXPECT_GE(acc_b, acc_a - 0.02);
  EXPECT_GT(acc_b, 0.8);
}

TEST_F(ModelsTest, NaiveBayesIsCheapestToTrain) {
  const Dataset data = EasyTask(2, 400);
  auto work_of = [&](Estimator* estimator) {
    const double before = ctx_.counter()->total_flops();
    EXPECT_TRUE(estimator->Fit(data, &ctx_).ok());
    return ctx_.counter()->total_flops() - before;
  };
  GaussianNaiveBayes nb{NaiveBayesParams{}};
  RandomForestParams fp;
  fp.num_trees = 32;
  RandomForest forest(fp);
  MlpParams mp;
  Mlp mlp(mp);
  const double nb_work = work_of(&nb);
  EXPECT_LT(nb_work, work_of(&forest));
  EXPECT_LT(nb_work, work_of(&mlp));
}

}  // namespace
}  // namespace green
