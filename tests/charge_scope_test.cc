// Tests for the scoped charge tree: ChargeScope paths, sliced charges
// (bit-identity and truncation), mid-fit cancellation, per-scope energy
// conservation, the StageLedger scope rollups, GREEN_TRACE, the ASKL
// meta-store cache, journal compaction, and the RunRecord scope surface.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "green/automl/askl_meta_cache.h"
#include "green/automl/caml_system.h"
#include "green/automl/fitted_artifact.h"
#include "green/bench_util/aggregate.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/record_io.h"
#include "green/common/cancel.h"
#include "green/data/synthetic.h"
#include "green/energy/stage_ledger.h"
#include "green/ml/models/random_forest.h"
#include "green/sim/charge_trace.h"
#include "green/sim/execution_context.h"
#include "green/table/split.h"

namespace green {
namespace {

double DynamicJoules(const EnergyBreakdown& b) {
  return b.cpu_dynamic_j + b.gpu_dynamic_j + b.dram_j;
}

double SumScopeJoules(const EnergyReading& reading) {
  double sum = 0.0;
  for (const auto& [path, charge] : reading.scopes) sum += charge.joules;
  return sum;
}

class ChargeScopeTest : public ::testing::Test {
 protected:
  ChargeScopeTest()
      : energy_model_(MachineModel::Minimal()),
        ctx_(&clock_, &energy_model_, 1) {}

  VirtualClock clock_;
  EnergyModel energy_model_;
  ExecutionContext ctx_;
};

// --- Scope paths -----------------------------------------------------

TEST_F(ChargeScopeTest, ScopePathNestsAndRestores) {
  EXPECT_EQ(ctx_.scope_path(), "");
  EXPECT_EQ(ctx_.scope_depth(), 0u);
  {
    ChargeScope outer(&ctx_, "caml");
    EXPECT_EQ(ctx_.scope_path(), "caml");
    {
      ChargeScope mid(&ctx_, "search");
      ChargeScope inner(&ctx_, "pipeline");
      EXPECT_EQ(ctx_.scope_path(), "caml/search/pipeline");
      EXPECT_EQ(ctx_.scope_depth(), 3u);
    }
    EXPECT_EQ(ctx_.scope_path(), "caml");
    EXPECT_EQ(ctx_.scope_depth(), 1u);
  }
  EXPECT_EQ(ctx_.scope_path(), "");
  EXPECT_EQ(ctx_.scope_depth(), 0u);
}

TEST_F(ChargeScopeTest, ChargesLandOnActiveScopePath) {
  EnergyMeter meter(&energy_model_);
  meter.Start(clock_.Now());
  ctx_.SetMeter(&meter);

  ctx_.ChargeCpu(1e5, 100.0);  // No scope open: "(unscoped)".
  {
    ChargeScope sys(&ctx_, "caml");
    ctx_.ChargeCpu(1e5, 100.0);
    {
      ChargeScope fit(&ctx_, "fit");
      ctx_.ChargeCpu(2e5, 0.0);
      ctx_.ChargeCpu(2e5, 0.0);
    }
  }
  EnergyReading reading = meter.Stop(clock_.Now());

  ASSERT_EQ(reading.scopes.size(), 3u);
  EXPECT_EQ(reading.scopes.count(kUnscopedPath), 1u);
  EXPECT_EQ(reading.scopes.count("caml"), 1u);
  EXPECT_EQ(reading.scopes.count("caml/fit"), 1u);
  EXPECT_EQ(reading.scopes.at("caml/fit").charges, 2u);
  EXPECT_DOUBLE_EQ(reading.scopes.at("caml/fit").flops, 4e5);
  // Every charge lands on exactly one path: scope joules sum to the
  // dynamic part of the flat breakdown.
  const double dynamic = DynamicJoules(reading.breakdown);
  EXPECT_NEAR(SumScopeJoules(reading), dynamic, 1e-12 * dynamic);
}

// --- Sliced charges --------------------------------------------------

TEST_F(ChargeScopeTest, SlicedChargeIsBitIdenticalToUnsliced) {
  VirtualClock sliced_clock, whole_clock;
  ExecutionContext sliced(&sliced_clock, &energy_model_, 1);
  ExecutionContext whole(&whole_clock, &energy_model_, 1);
  sliced.SetMaxSliceSeconds(1e-4);
  whole.SetMaxSliceSeconds(0.0);  // Slicing disabled.

  EnergyMeter sliced_meter(&energy_model_), whole_meter(&energy_model_);
  sliced_meter.Start(0.0);
  whole_meter.Start(0.0);
  sliced.SetMeter(&sliced_meter);
  whole.SetMeter(&whole_meter);

  for (int i = 0; i < 5; ++i) {
    ChargeScope a(&sliced, "op"), b(&whole, "op");
    EXPECT_EQ(sliced.ChargeCpu(3e7 + i * 1e6, 512.0),
              whole.ChargeCpu(3e7 + i * 1e6, 512.0));
  }
  EXPECT_GT(sliced.charge_slices(), whole.charge_slices());
  EXPECT_EQ(whole.charge_slices(), 5u);

  // Exact equality, not near: the final slice lands on start + seconds.
  EXPECT_EQ(sliced.Now(), whole.Now());
  EnergyReading a = sliced_meter.Stop(sliced.Now());
  EnergyReading b = whole_meter.Stop(whole.Now());
  EXPECT_EQ(a.breakdown.TotalJoules(), b.breakdown.TotalJoules());
  EXPECT_EQ(a.scopes.at("op").joules, b.scopes.at("op").joules);
  EXPECT_EQ(a.scopes.at("op").seconds, b.scopes.at("op").seconds);
  EXPECT_EQ(sliced.counter()->total_flops(),
            whole.counter()->total_flops());
}

TEST_F(ChargeScopeTest, WholeSystemRunIsBitIdenticalUnderSlicing) {
  SyntheticSpec spec;
  spec.name = "task";
  spec.num_rows = 200;
  spec.num_features = 8;
  spec.num_informative = 6;
  spec.separation = 2.5;
  spec.seed = 3;
  Dataset data = GenerateSynthetic(spec).value();

  auto run = [&](double max_slice) {
    VirtualClock clock;
    ExecutionContext ctx(&clock, &energy_model_, 1);
    ctx.SetMaxSliceSeconds(max_slice);
    CamlSystem caml;
    AutoMlOptions options;
    options.search_budget_seconds = 2.0;
    options.seed = 7;
    auto result = caml.Fit(data, options, &ctx);
    EXPECT_TRUE(result.ok());
    return std::make_pair(ctx.Now(), result->execution.kwh());
  };
  const auto sliced = run(1e-3);
  const auto whole = run(0.0);
  EXPECT_EQ(sliced.first, whole.first);
  EXPECT_EQ(sliced.second, whole.second);
}

TEST_F(ChargeScopeTest, PreCancelledTokenTruncatesAfterFirstSlice) {
  CancelToken token;
  token.Cancel();
  ctx_.SetCancelToken(&token);
  ctx_.SetMaxSliceSeconds(1e-4);

  EnergyMeter meter(&energy_model_);
  meter.Start(0.0);
  ctx_.SetMeter(&meter);

  const double charged = ctx_.ChargeCpu(5e7, 0.0);
  EXPECT_TRUE(ctx_.charge_truncated());
  EXPECT_TRUE(ctx_.Interrupted());
  EXPECT_EQ(ctx_.charge_slices(), 1u);  // First slice always completes.
  EXPECT_GT(charged, 0.0);

  // Only the completed fraction is metered; the clock stopped with it.
  EnergyReading reading = meter.Stop(ctx_.Now());
  EXPECT_NEAR(reading.scopes.at(kUnscopedPath).seconds, ctx_.Now(),
              1e-12);
}

TEST_F(ChargeScopeTest, HardDeadlineTruncatesMidCharge) {
  // Calibrate: how many virtual seconds does 1e6 flops take?
  VirtualClock probe_clock;
  ExecutionContext probe(&probe_clock, &energy_model_, 1);
  probe.SetMaxSliceSeconds(0.0);
  const double per_1e6 = probe.ChargeCpu(1e6, 0.0);
  ASSERT_GT(per_1e6, 0.0);
  const double flops_for_10s = 1e6 * (10.0 / per_1e6);

  ctx_.SetMaxSliceSeconds(0.05);
  ctx_.SetHardDeadline(true);
  ctx_.SetDeadline(2.0);
  ctx_.ChargeCpu(flops_for_10s, 0.0);

  EXPECT_TRUE(ctx_.charge_truncated());
  EXPECT_TRUE(ctx_.Interrupted());
  EXPECT_GE(ctx_.Now(), 2.0);        // Stops at the slice boundary...
  EXPECT_LT(ctx_.Now(), 2.0 + 0.2);  // ...just past the deadline.

  // Fraction of the work counted matches the fraction of time elapsed.
  EXPECT_NEAR(ctx_.counter()->total_flops(),
              flops_for_10s * (ctx_.Now() / 10.0),
              1e-6 * flops_for_10s);
}

TEST_F(ChargeScopeTest, SoftDeadlineDoesNotTruncate) {
  // Default (Table 7 semantics): the virtual deadline alone never stops a
  // charge; systems finish the evaluation that straddles the budget.
  ctx_.SetMaxSliceSeconds(1e-3);
  ctx_.SetDeadline(1e-6);
  ctx_.ChargeCpu(5e7, 0.0);
  EXPECT_FALSE(ctx_.charge_truncated());
  EXPECT_FALSE(ctx_.Interrupted());
  EXPECT_TRUE(ctx_.DeadlineExceeded());
}

// --- Mid-fit cancellation (watchdog-style, threaded) -----------------

TEST_F(ChargeScopeTest, WatchdogCancelsRandomForestMidFit) {
  SyntheticSpec spec;
  spec.name = "big";
  spec.num_rows = 900;
  spec.num_features = 14;
  spec.num_informative = 10;
  spec.seed = 11;
  Dataset data = GenerateSynthetic(spec).value();

  RandomForestParams params;
  params.num_trees = 600;
  params.max_depth = 12;
  params.seed = 5;

  // Reference: the same fit run to completion.
  VirtualClock full_clock;
  ExecutionContext full_ctx(&full_clock, &energy_model_, 1);
  full_ctx.SetMaxSliceSeconds(1e-4);
  RandomForest full_forest(params);
  ASSERT_TRUE(full_forest.Fit(data, &full_ctx).ok());
  ASSERT_GT(full_ctx.charge_slices(), 1u);

  // Cancelled: a watchdog thread flips the token while Fit is running.
  CancelToken token;
  ctx_.SetCancelToken(&token);
  ctx_.SetMaxSliceSeconds(1e-4);
  std::thread watchdog([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    token.Cancel();
  });
  RandomForest forest(params);
  Status status = forest.Fit(data, &ctx_);
  watchdog.join();

  // The fit must unwind with DEADLINE_EXCEEDED before completing: fewer
  // trees built and fewer charge slices than the full fit.
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_LT(forest.num_trees(), static_cast<size_t>(params.num_trees));
  EXPECT_LT(ctx_.charge_slices(), full_ctx.charge_slices());
  EXPECT_TRUE(ctx_.Interrupted());
}

// --- Mid-predict cancellation (the serving-side mirror) ---------------

TEST_F(ChargeScopeTest, WatchdogCancelsArtifactMidPredict) {
  SyntheticSpec spec;
  spec.name = "big";
  spec.num_rows = 900;
  spec.num_features = 14;
  spec.num_informative = 10;
  spec.seed = 11;
  Dataset data = GenerateSynthetic(spec).value();

  // A heavyweight ensemble: two large forests, so PredictProba issues
  // enough sliced charges for a watchdog to land mid-predict.
  RandomForestParams params;
  params.num_trees = 400;
  params.max_depth = 12;
  std::vector<FittedArtifact::Member> members;
  for (uint64_t seed : {5u, 6u}) {
    VirtualClock fit_clock;
    ExecutionContext fit_ctx(&fit_clock, &energy_model_, 1);
    params.seed = seed;
    auto pipeline = std::make_shared<Pipeline>();
    pipeline->SetModel(std::make_unique<RandomForest>(params));
    ASSERT_TRUE(pipeline->Fit(data, &fit_ctx).ok());
    FittedArtifact::Member member;
    member.folds.push_back(std::move(pipeline));
    members.push_back(std::move(member));
  }
  const FittedArtifact artifact =
      FittedArtifact::Weighted(std::move(members));

  // Reference: the same predict run to completion.
  VirtualClock full_clock;
  ExecutionContext full_ctx(&full_clock, &energy_model_, 1);
  full_ctx.SetMaxSliceSeconds(1e-4);
  ASSERT_TRUE(artifact.PredictProba(data, &full_ctx).ok());
  ASSERT_GT(full_ctx.charge_slices(), 1u);

  // Cancelled: a watchdog thread flips the token while PredictProba is
  // running — the serving-side mirror of the mid-fit unwind above.
  EnergyMeter meter(&energy_model_);
  meter.Start(clock_.Now());
  ctx_.SetMeter(&meter);
  CancelToken token;
  ctx_.SetCancelToken(&token);
  ctx_.SetMaxSliceSeconds(1e-4);
  std::thread watchdog([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.Cancel();
  });
  auto proba = artifact.PredictProba(data, &ctx_);
  watchdog.join();
  EnergyReading reading = meter.Stop(clock_.Now());

  // The predict must unwind with DEADLINE_EXCEEDED before completing:
  // fewer charge slices than the full predict, and the meter only saw
  // the completed fraction — scope joules still sum to the dynamic total.
  ASSERT_FALSE(proba.ok());
  EXPECT_EQ(proba.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_LT(ctx_.charge_slices(), full_ctx.charge_slices());
  EXPECT_TRUE(ctx_.Interrupted());
  EXPECT_NEAR(SumScopeJoules(reading), DynamicJoules(reading.breakdown),
              1e-9 + 1e-6 * DynamicJoules(reading.breakdown));
}

// --- Conservation across every system --------------------------------

TEST_F(ChargeScopeTest, ScopeJoulesSumToDynamicEnergyForEverySystem) {
  ExperimentConfig config;
  config.dataset_limit = 1;
  config.budget_scale = 0.05;
  config.collect_scopes = true;
  ExperimentRunner runner(config);
  ASSERT_FALSE(runner.suite().empty());
  const Dataset& dataset = runner.suite()[0];

  for (const std::string& name : AllSystemNames()) {
    SCOPED_TRACE(name);
    RunRecord record = runner.RunCell(name, dataset, 60.0, 0);
    ASSERT_TRUE(record.ok()) << record.error;
    ASSERT_FALSE(record.scopes.empty());

    double execution_sum = 0.0, inference_sum = 0.0;
    for (const RunScope& scope : record.scopes) {
      const bool is_execution = scope.path.rfind("execution/", 0) == 0;
      const bool is_inference = scope.path.rfind("inference/", 0) == 0;
      EXPECT_TRUE(is_execution || is_inference) << scope.path;
      EXPECT_GE(scope.kwh, 0.0);
      if (is_execution) execution_sum += scope.kwh;
      if (is_inference) inference_sum += scope.kwh;
    }
    // Scope rows carry the dynamic energy; the headline totals add the
    // static/idle baseline on top, so the sums are a strict lower bound.
    EXPECT_GT(execution_sum, 0.0);
    EXPECT_LE(execution_sum, record.execution_kwh * (1.0 + 1e-9));
    EXPECT_LE(inference_sum,
              record.inference_kwh_per_instance * (1.0 + 1e-9));
  }
}

TEST_F(ChargeScopeTest, DirectFitScopesConserveAndNestUnderSystemName) {
  SyntheticSpec spec;
  spec.name = "task";
  spec.num_rows = 240;
  spec.num_features = 10;
  spec.num_informative = 8;
  spec.separation = 2.4;
  spec.seed = 21;
  Dataset data = GenerateSynthetic(spec).value();

  CamlSystem caml;
  AutoMlOptions options;
  options.search_budget_seconds = 2.0;
  options.seed = 9;
  auto run = caml.Fit(data, options, &ctx_);
  ASSERT_TRUE(run.ok());

  const EnergyReading& reading = run->execution;
  ASSERT_FALSE(reading.scopes.empty());
  for (const auto& [path, charge] : reading.scopes) {
    EXPECT_EQ(path.rfind("caml", 0), 0u) << path;
  }
  // The search phase drills down to named operators.
  bool has_operator_path = false;
  for (const auto& [path, charge] : reading.scopes) {
    if (path.find("/pipeline/fit/") != std::string::npos) {
      has_operator_path = true;
    }
  }
  EXPECT_TRUE(has_operator_path);
  const double dynamic = DynamicJoules(reading.breakdown);
  EXPECT_NEAR(SumScopeJoules(reading), dynamic, 1e-9 * dynamic);
}

// --- StageLedger scope tree ------------------------------------------

TEST_F(ChargeScopeTest, LedgerScopeRowsRollupAndAttribution) {
  EnergyMeter meter(&energy_model_);
  meter.Start(clock_.Now());
  ctx_.SetMeter(&meter);
  {
    ChargeScope sys(&ctx_, "caml");
    {
      ChargeScope search(&ctx_, "search");
      ctx_.ChargeCpu(1e6, 0.0);
    }
    {
      ChargeScope search_like(&ctx_, "searchmore");
      ctx_.ChargeCpu(1e6, 0.0);
    }
  }
  EnergyReading reading = meter.Stop(clock_.Now());

  StageLedger ledger;
  ledger.Add("caml", Stage::kExecution, reading);

  const std::vector<ScopeRow> rows = ledger.ScopeRows("caml");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].path, "execution/caml/search");
  EXPECT_EQ(rows[1].path, "execution/caml/searchmore");

  // Rollup respects the '/' boundary: "search" must not match
  // "searchmore".
  const ScopeCharge search_only =
      ledger.Rollup("caml", "execution/caml/search");
  EXPECT_EQ(search_only.charges, 1u);
  const ScopeCharge subtree = ledger.Rollup("caml", "execution/caml");
  EXPECT_EQ(subtree.charges, 2u);

  // Attribution + flat totals: attributed kWh is the dynamic part; the
  // flat Get() keeps the full reading (baseline included).
  const double attributed = ledger.AttributedKwh("caml", Stage::kExecution);
  EXPECT_NEAR(attributed * 3.6e6, DynamicJoules(reading.breakdown),
              1e-9 * DynamicJoules(reading.breakdown));
  EXPECT_DOUBLE_EQ(ledger.Get("caml", Stage::kExecution).kwh(),
                   reading.kwh());
  EXPECT_GE(ledger.TotalKwh("caml"), attributed);
}

// --- GREEN_TRACE ------------------------------------------------------

TEST_F(ChargeScopeTest, TraceEmitsBalancedEnterExitEvents) {
  const std::string path = ::testing::TempDir() + "/green_trace.jsonl";
  std::remove(path.c_str());
  ::setenv("GREEN_TRACE", path.c_str(), 1);
  ChargeTrace::Instance().ReopenFromEnv();
  ASSERT_TRUE(ChargeTrace::Instance().enabled());

  {
    ChargeScope sys(&ctx_, "caml");
    ChargeScope fit(&ctx_, "fit");
    ctx_.ChargeCpu(1e6, 0.0);
  }

  ::unsetenv("GREEN_TRACE");
  ChargeTrace::Instance().ReopenFromEnv();
  ASSERT_FALSE(ChargeTrace::Instance().enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  size_t enters = 0, exits = 0;
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    lines.push_back(line);
    if (line.rfind("{\"ev\":\"enter\"", 0) == 0) ++enters;
    if (line.rfind("{\"ev\":\"exit\"", 0) == 0) ++exits;
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(enters, 2u);
  EXPECT_EQ(exits, 2u);
  EXPECT_NE(lines[0].find("\"path\":\"caml\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"path\":\"caml/fit\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"dt\":"), std::string::npos);
  std::remove(path.c_str());
}

// --- ASKL meta-store cache -------------------------------------------

TEST_F(ChargeScopeTest, MetaStoreCacheHitsAndFailureRetry) {
  AsklMetaStoreCache& cache = AsklMetaStoreCache::Instance();
  cache.Clear();

  int builds = 0;
  auto builder = [&builds]() -> Result<AsklMetaStoreCache::Entry> {
    ++builds;
    AsklMetaStoreCache::Entry entry;
    entry.development_kwh = 1.25;
    return entry;
  };

  auto first = cache.GetOrBuild("key-a", builder);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrBuild("key-a", builder);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // A cache hit reports exactly the energy a fresh build would have.
  EXPECT_EQ(first->development_kwh, second->development_kwh);

  // Failed builds are not memoized: the next caller retries.
  int failures = 0;
  auto failing = [&failures]() -> Result<AsklMetaStoreCache::Entry> {
    ++failures;
    return Status::Internal("boom");
  };
  EXPECT_FALSE(cache.GetOrBuild("key-b", failing).ok());
  EXPECT_FALSE(cache.GetOrBuild("key-b", failing).ok());
  EXPECT_EQ(failures, 2);
  cache.Clear();
}

TEST_F(ChargeScopeTest, RunnersShareOneMetaStoreBuild) {
  AsklMetaStoreCache::Instance().Clear();
  ExperimentConfig config;
  config.dataset_limit = 1;
  config.budget_scale = 0.05;

  ExperimentRunner first(config);
  ExperimentRunner second(config);
  const Dataset& dataset = first.suite()[0];

  RunRecord a = first.RunCell("autosklearn2", dataset, 60.0, 0);
  ASSERT_TRUE(a.ok()) << a.error;
  const size_t misses_after_first = AsklMetaStoreCache::Instance().misses();

  RunRecord b = second.RunCell("autosklearn2", dataset, 60.0, 0);
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(AsklMetaStoreCache::Instance().misses(), misses_after_first);
  EXPECT_GE(AsklMetaStoreCache::Instance().hits(), 1u);

  // Identical development energy reported, and identical measurements:
  // a cache hit is observationally equivalent to a fresh build.
  EXPECT_EQ(first.development_kwh(), second.development_kwh());
  EXPECT_EQ(RecordToJson(a), RecordToJson(b));
}

// --- Journal compaction ----------------------------------------------

RunRecord MakeRecord(const std::string& system, const std::string& dataset,
                     double budget, int rep, double kwh) {
  RunRecord r;
  r.system = system;
  r.dataset = dataset;
  r.paper_budget_seconds = budget;
  r.repetition = rep;
  r.execution_kwh = kwh;
  return r;
}

TEST_F(ChargeScopeTest, CompactJournalKeepsLastRecordPerCell) {
  const std::string path = ::testing::TempDir() + "/journal.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(
      AppendRecordJsonl(MakeRecord("caml", "d1", 10.0, 0, 1.0), path).ok());
  ASSERT_TRUE(
      AppendRecordJsonl(MakeRecord("flaml", "d1", 10.0, 0, 2.0), path).ok());
  ASSERT_TRUE(  // Supersedes the first record (same cell key).
      AppendRecordJsonl(MakeRecord("caml", "d1", 10.0, 0, 3.0), path).ok());

  auto removed = CompactJournalJsonl(path);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);

  auto records = ReadJournalJsonl(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  // First-appearance order, last-write-wins content.
  EXPECT_EQ((*records)[0].system, "caml");
  EXPECT_DOUBLE_EQ((*records)[0].execution_kwh, 3.0);
  EXPECT_EQ((*records)[1].system, "flaml");

  // Idempotent: a second compaction removes nothing.
  auto again = CompactJournalJsonl(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  std::remove(path.c_str());
}

// --- RunRecord scope surface -----------------------------------------

TEST_F(ChargeScopeTest, RecordScopesRoundTripByteExactly) {
  RunRecord record = MakeRecord("caml", "d1", 30.0, 1, 0.5);
  record.scopes.push_back(
      {"execution/caml/search/pipeline/fit/random_forest", 1.25e-4,
       0.75, 3.5e9, 42});
  record.scopes.push_back({"inference/caml/blend", 2e-9, 1e-6, 1.5e4, 7});

  const std::string json = RecordToJson(record);
  EXPECT_NE(json.find("\"scopes\":["), std::string::npos);
  auto parsed = RecordFromJson(json);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->scopes.size(), 2u);
  EXPECT_EQ(parsed->scopes[0].path,
            "execution/caml/search/pipeline/fit/random_forest");
  EXPECT_EQ(parsed->scopes[1].charges, 7u);
  EXPECT_EQ(RecordToJson(*parsed), json);

  // Without scopes the serialization has no "scopes" field at all, so
  // default record streams stay byte-identical to earlier releases.
  record.scopes.clear();
  EXPECT_EQ(RecordToJson(record).find("\"scopes\""), std::string::npos);
}

TEST_F(ChargeScopeTest, RenderEnergyBreakdownReportsBaselineAndTotal) {
  ExperimentConfig config;
  config.dataset_limit = 1;
  config.budget_scale = 0.05;
  config.collect_scopes = true;
  ExperimentRunner runner(config);
  auto record = runner.RunOne("caml", runner.suite()[0], 60.0, 0);
  ASSERT_TRUE(record.ok());

  const std::string table = RenderEnergyBreakdown({*record});
  ASSERT_FALSE(table.empty());
  EXPECT_NE(table.find("(baseline: static+idle)"), std::string::npos);
  EXPECT_NE(table.find("100.0%"), std::string::npos);
  EXPECT_NE(table.find("pipeline/fit/"), std::string::npos)
      << "expected a per-operator row in:\n" << table;

  // Without scope data the breakdown renders nothing.
  RunRecord bare = *record;
  bare.scopes.clear();
  EXPECT_TRUE(RenderEnergyBreakdown({bare}).empty());
}

}  // namespace
}  // namespace green
