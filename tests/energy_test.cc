#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstdio>

#include "green/energy/co2.h"
#include "green/energy/energy_meter.h"
#include "green/energy/energy_model.h"
#include "green/energy/machine_model.h"
#include "green/energy/powercap_reader.h"
#include "green/energy/rapl_simulator.h"
#include "green/energy/stage_ledger.h"

namespace green {
namespace {

// --- MachineModel ---

TEST(MachineModelTest, PresetsAreSane) {
  const MachineModel cpu = MachineModel::XeonGold6132();
  EXPECT_EQ(cpu.num_cores, 28);
  EXPECT_FALSE(cpu.has_gpu);
  const MachineModel gpu = MachineModel::GpuNodeT4();
  EXPECT_TRUE(gpu.has_gpu);
  EXPECT_LT(gpu.num_cores, cpu.num_cores);
  // The GPU machine's CPU cores are weaker — the Table 3 setup.
  EXPECT_LT(gpu.cpu_flops_per_core, cpu.cpu_flops_per_core);
}

TEST(MachineModelTest, ThroughputScalesWithCores) {
  const MachineModel m = MachineModel::XeonGold6132();
  EXPECT_DOUBLE_EQ(m.Throughput(Device::kCpu, 2),
                   2.0 * m.Throughput(Device::kCpu, 1));
  // Clamped at the physical core count.
  EXPECT_DOUBLE_EQ(m.Throughput(Device::kCpu, 100),
                   m.Throughput(Device::kCpu, 28));
}

TEST(MachineModelTest, GpuThroughputZeroWithoutGpu) {
  EXPECT_EQ(MachineModel::Minimal().Throughput(Device::kGpu, 1), 0.0);
  EXPECT_GT(MachineModel::GpuNodeT4().Throughput(Device::kGpu, 1), 0.0);
}

// --- EnergyModel ---

Work CpuWork(double flops, double pf = 0.9) {
  Work w;
  w.flops = flops;
  w.parallel_fraction = pf;
  return w;
}

TEST(EnergyModelTest, ZeroWorkIsFree) {
  EnergyModel model(MachineModel::Minimal());
  const WorkExecution exec = model.Execute(Work{}, 1);
  EXPECT_EQ(exec.seconds, 0.0);
  EXPECT_EQ(exec.dynamic_joules, 0.0);
}

TEST(EnergyModelTest, DurationMatchesThroughputSingleCore) {
  EnergyModel model(MachineModel::Minimal());
  const WorkExecution exec = model.Execute(CpuWork(2.0e6), 1);
  EXPECT_NEAR(exec.seconds, 2.0, 1e-9);
  EXPECT_NEAR(exec.busy_core_seconds, 2.0, 1e-9);
}

TEST(EnergyModelTest, AmdahlSpeedup) {
  MachineModel m = MachineModel::Minimal();
  m.num_cores = 4;
  EnergyModel model(m);
  // parallel fraction 0.5 on 4 cores: T = 0.5 + 0.5/4 = 0.625 of T1.
  const WorkExecution exec1 = model.Execute(CpuWork(1e6, 0.5), 1);
  const WorkExecution exec4 = model.Execute(CpuWork(1e6, 0.5), 4);
  EXPECT_NEAR(exec4.seconds / exec1.seconds, 0.625, 1e-9);
}

TEST(EnergyModelTest, BusyCoreSecondsInvariantInCores) {
  // The key property behind Fig. 5: total busy core-seconds (and hence
  // dynamic energy) of one work item does not depend on the core count.
  MachineModel m = MachineModel::Minimal();
  m.num_cores = 8;
  EnergyModel model(m);
  const Work w = CpuWork(3e6, 0.7);
  const double busy1 = model.Execute(w, 1).busy_core_seconds;
  const double busy8 = model.Execute(w, 8).busy_core_seconds;
  EXPECT_NEAR(busy1, busy8, 1e-9);
}

TEST(EnergyModelTest, DynamicEnergyMonotoneInWork) {
  EnergyModel model(MachineModel::Minimal());
  double prev = 0.0;
  for (double flops = 1e5; flops <= 1e7; flops *= 2) {
    const double j = model.Execute(CpuWork(flops), 1).dynamic_joules;
    EXPECT_GT(j, prev);
    prev = j;
  }
}

TEST(EnergyModelTest, GpuWorkRunsOnGpu) {
  EnergyModel model(MachineModel::GpuNodeT4());
  Work w;
  w.flops = 6.0e7;
  w.device = Device::kGpu;
  const WorkExecution exec = model.Execute(w, 1);
  EXPECT_NEAR(exec.seconds, 1.0, 1e-9);
  EXPECT_NEAR(exec.gpu_busy_seconds, 1.0, 1e-9);
  EXPECT_EQ(exec.busy_core_seconds, 0.0);
}

TEST(EnergyModelTest, GpuWorkFallsBackToCpu) {
  EnergyModel model(MachineModel::Minimal());
  Work w;
  w.flops = 1e6;
  w.device = Device::kGpu;
  const WorkExecution exec = model.Execute(w, 1);
  EXPECT_GT(exec.busy_core_seconds, 0.0);
  EXPECT_EQ(exec.gpu_busy_seconds, 0.0);
}

TEST(EnergyModelTest, BaselineIncludesGpuIdle) {
  EnergyModel cpu_only(MachineModel::XeonGold6132());
  EnergyModel with_gpu(MachineModel::GpuNodeT4());
  EXPECT_DOUBLE_EQ(cpu_only.BaselineWatts(),
                   MachineModel::XeonGold6132().cpu_static_watts);
  EXPECT_DOUBLE_EQ(with_gpu.BaselineWatts(),
                   MachineModel::GpuNodeT4().cpu_static_watts +
                       MachineModel::GpuNodeT4().gpu_idle_watts);
}

TEST(EnergyModelTest, DramEnergyCharged) {
  EnergyModel model(MachineModel::Minimal());
  Work w = CpuWork(1e6);
  w.bytes = 1e9;
  const double with_bytes = model.Execute(w, 1).dynamic_joules;
  w.bytes = 0;
  const double without = model.Execute(w, 1).dynamic_joules;
  EXPECT_NEAR(with_bytes - without,
              MachineModel::Minimal().dram_joules_per_byte * 1e9, 1e-9);
}

// --- EnergyBreakdown ---

TEST(EnergyBreakdownTest, TotalsAndAccumulate) {
  EnergyBreakdown a;
  a.cpu_dynamic_j = 1.0;
  a.cpu_static_j = 2.0;
  a.dram_j = 3.0;
  EnergyBreakdown b;
  b.gpu_dynamic_j = 4.0;
  b.gpu_idle_j = 5.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.TotalJoules(), 15.0);
  EXPECT_DOUBLE_EQ(a.TotalKwh(), 15.0 / 3.6e6);
}

// --- EnergyMeter ---

TEST(EnergyMeterTest, StaticPowerChargedOverScope) {
  EnergyModel model(MachineModel::Minimal());
  EnergyMeter meter(&model);
  meter.Start(10.0);
  const EnergyReading r = meter.Stop(20.0);
  EXPECT_NEAR(r.seconds, 10.0, 1e-12);
  EXPECT_NEAR(r.breakdown.cpu_static_j,
              10.0 * MachineModel::Minimal().cpu_static_watts, 1e-9);
  EXPECT_EQ(r.breakdown.cpu_dynamic_j, 0.0);
}

TEST(EnergyMeterTest, DynamicAttribution) {
  EnergyModel model(MachineModel::Minimal());
  EnergyMeter meter(&model);
  meter.Start(0.0);
  Work w = CpuWork(1e6);
  meter.Record(w, model.Execute(w, 1));
  const EnergyReading r = meter.Stop(1.0);
  EXPECT_GT(r.breakdown.cpu_dynamic_j, 0.0);
}

TEST(EnergyMeterTest, PeekDoesNotStop) {
  EnergyModel model(MachineModel::Minimal());
  EnergyMeter meter(&model);
  meter.Start(0.0);
  const EnergyReading mid = meter.Peek(5.0);
  EXPECT_TRUE(meter.running());
  const EnergyReading end = meter.Stop(10.0);
  EXPECT_NEAR(end.seconds, 2.0 * mid.seconds, 1e-12);
}

TEST(EnergyMeterTest, GpuIdleChargedOnGpuMachine) {
  EnergyModel model(MachineModel::GpuNodeT4());
  EnergyMeter meter(&model);
  meter.Start(0.0);
  const EnergyReading r = meter.Stop(10.0);
  EXPECT_NEAR(r.breakdown.gpu_idle_j,
              10.0 * MachineModel::GpuNodeT4().gpu_idle_watts, 1e-9);
}

TEST(EnergyMeterTest, ReadingAccumulates) {
  EnergyReading a;
  a.seconds = 1.0;
  a.breakdown.cpu_static_j = 10.0;
  EnergyReading b;
  b.seconds = 2.0;
  b.breakdown.cpu_static_j = 20.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds, 3.0);
  EXPECT_DOUBLE_EQ(a.joules(), 30.0);
}

// --- RaplSimulator ---

TEST(RaplTest, CountsDeposits) {
  RaplSimulator rapl;
  const uint32_t before = rapl.ReadPackageCounter();
  rapl.Deposit(/*package_joules=*/1.0, /*dram_joules=*/0.5);
  const uint32_t after = rapl.ReadPackageCounter();
  EXPECT_NEAR(RaplSimulator::CounterDeltaJoules(before, after), 1.0,
              2 * RaplSimulator::kJoulesPerUnit);
}

TEST(RaplTest, DramCounterSeparate) {
  RaplSimulator rapl;
  rapl.Deposit(0.0, 2.0);
  EXPECT_EQ(rapl.ReadPackageCounter(), 0u);
  EXPECT_GT(rapl.ReadDramCounter(), 0u);
}

TEST(RaplTest, WraparoundHandled) {
  // 32-bit counter wraps at 2^32 units = 65536 J; delta math must survive
  // one wrap like CodeCarbon's sampler does.
  const uint32_t before = 0xfffffff0u;
  const uint32_t after = 0x10u;
  EXPECT_NEAR(RaplSimulator::CounterDeltaJoules(before, after),
              32.0 * RaplSimulator::kJoulesPerUnit, 1e-9);
}

TEST(RaplTest, ManyDepositsMatchMeterTotal) {
  // The high-level meter and the low-level RAPL substrate must agree.
  EnergyModel model(MachineModel::Minimal());
  RaplSimulator rapl;
  double expected = 0.0;
  const uint32_t before = rapl.ReadPackageCounter();
  for (int i = 0; i < 100; ++i) {
    const WorkExecution exec = model.Execute(CpuWork(1e5), 1);
    rapl.Deposit(exec.dynamic_joules, 0.0);
    expected += exec.dynamic_joules;
  }
  const uint32_t after = rapl.ReadPackageCounter();
  EXPECT_NEAR(RaplSimulator::CounterDeltaJoules(before, after), expected,
              100 * RaplSimulator::kJoulesPerUnit);
}

// --- Powercap ---

TEST(PowercapTest, MissingRootIsNotFound) {
  auto reader = PowercapReader::Discover("/nonexistent/powercap");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kNotFound);
}

TEST(PowercapTest, WrapCorrectedDelta) {
  // Plain forward delta.
  EXPECT_DOUBLE_EQ(
      PowercapReader::WrapCorrectedDeltaUj(1000.0, 1500.0, 262144.0),
      500.0);
  // Counter wrapped: delta spans the wrap point.
  EXPECT_DOUBLE_EQ(
      PowercapReader::WrapCorrectedDeltaUj(262000.0, 1000.0, 262144.0),
      1144.0);
  // Unknown range: clamp to zero instead of reporting negative energy.
  EXPECT_DOUBLE_EQ(PowercapReader::WrapCorrectedDeltaUj(5000.0, 100.0, 0.0),
                   0.0);
  // Zero-length interval.
  EXPECT_DOUBLE_EQ(
      PowercapReader::WrapCorrectedDeltaUj(42.0, 42.0, 262144.0), 0.0);
}

// Fake sysfs tree exercising Discover + the wrap-corrected interval API.
class PowercapFakeSysfsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetUpRoot("powercap_fake"); }

  // Each fixture gets its own root: TempDir persists across test runs,
  // so a shared tree would leak zones between fixtures.
  void SetUpRoot(const std::string& subdir) {
    root_ = ::testing::TempDir() + "/" + subdir;
    zone_ = root_ + "/intel-rapl:0";
    ASSERT_EQ(mkdir(root_.c_str(), 0755) == 0 || errno == EEXIST, true);
    ASSERT_EQ(mkdir(zone_.c_str(), 0755) == 0 || errno == EEXIST, true);
    WriteFile(zone_ + "/name", "package-0\n");
    WriteFile(zone_ + "/max_energy_range_uj", "2000000\n");
    WriteFile(zone_ + "/energy_uj", "1000000\n");
  }

  static void WriteFile(const std::string& path,
                        const std::string& content) {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << path;
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  }

  std::string root_;
  std::string zone_;
};

TEST_F(PowercapFakeSysfsTest, DiscoverReadsZoneAndRange) {
  auto reader = PowercapReader::Discover(root_);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->zones().size(), 1u);
  EXPECT_EQ(reader->zones()[0].name, "package-0");
  EXPECT_DOUBLE_EQ(reader->zones()[0].max_energy_range_uj, 2000000.0);
  auto joules = reader->ReadZoneJoules(0);
  ASSERT_TRUE(joules.ok());
  EXPECT_DOUBLE_EQ(*joules, 1.0);  // 1e6 uJ.
}

TEST_F(PowercapFakeSysfsTest, IntervalAcrossWrapStaysPositive) {
  auto reader = PowercapReader::Discover(root_);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->BeginInterval().ok());
  // Counter wraps at 2e6 uJ: 1e6 -> (2e6) -> 0 -> 5e5. True consumption
  // is 1.5e6 uJ = 1.5 J; a naive delta would be -0.5 J.
  WriteFile(zone_ + "/energy_uj", "500000\n");
  auto delta = reader->IntervalJoules();
  ASSERT_TRUE(delta.ok());
  EXPECT_DOUBLE_EQ(*delta, 1.5);
}

TEST_F(PowercapFakeSysfsTest, IntervalWithoutBeginFails) {
  auto reader = PowercapReader::Discover(root_);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->IntervalJoules().ok());
}

// Second zone for the degradation tests.
class PowercapTwoZoneTest : public PowercapFakeSysfsTest {
 protected:
  void SetUp() override {
    SetUpRoot("powercap_fake_two_zone");
    zone1_ = root_ + "/intel-rapl:1";
    ASSERT_EQ(mkdir(zone1_.c_str(), 0755) == 0 || errno == EEXIST, true);
    WriteFile(zone1_ + "/name", "dram\n");
    WriteFile(zone1_ + "/max_energy_range_uj", "2000000\n");
    WriteFile(zone1_ + "/energy_uj", "100000\n");
  }

  std::string zone1_;
};

TEST_F(PowercapTwoZoneTest, ZoneVanishingMidIntervalDegradesGracefully) {
  auto reader = PowercapReader::Discover(root_);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->zones().size(), 2u);
  ASSERT_TRUE(reader->BeginInterval().ok());
  // One zone advances; the other's counter file disappears (hotplug,
  // permission flip). The interval must still report the surviving
  // zone's energy instead of failing the whole measurement.
  WriteFile(zone_ + "/energy_uj", "1400000\n");
  ASSERT_EQ(std::remove((zone1_ + "/energy_uj").c_str()), 0);
  auto delta = reader->IntervalJoules();
  ASSERT_TRUE(delta.ok());
  EXPECT_DOUBLE_EQ(*delta, 0.4);  // Only zone 0's 4e5 uJ.
}

TEST_F(PowercapTwoZoneTest, ZoneAbsentAtIntervalStartIsExcluded) {
  auto reader = PowercapReader::Discover(root_);
  ASSERT_TRUE(reader.ok());
  // Zone 1 is already gone when the interval begins: no baseline, so it
  // must not contribute even if it reappears before the read-back.
  ASSERT_EQ(std::remove((zone1_ + "/energy_uj").c_str()), 0);
  ASSERT_TRUE(reader->BeginInterval().ok());
  WriteFile(zone_ + "/energy_uj", "1200000\n");
  WriteFile(zone1_ + "/energy_uj", "900000\n");  // Reappears: ignored.
  auto delta = reader->IntervalJoules();
  ASSERT_TRUE(delta.ok());
  EXPECT_DOUBLE_EQ(*delta, 0.2);
}

TEST_F(PowercapTwoZoneTest, AllZonesGoneIsAnError) {
  auto reader = PowercapReader::Discover(root_);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->BeginInterval().ok());
  ASSERT_EQ(std::remove((zone_ + "/energy_uj").c_str()), 0);
  ASSERT_EQ(std::remove((zone1_ + "/energy_uj").c_str()), 0);
  EXPECT_FALSE(reader->IntervalJoules().ok());
  EXPECT_FALSE(reader->ReadTotalJoules().ok());
  EXPECT_FALSE(reader->BeginInterval().ok());
}

TEST_F(PowercapTwoZoneTest, InjectedReadFaultsExerciseDegradation) {
  auto reader = PowercapReader::Discover(root_);
  ASSERT_TRUE(reader.ok());
  const FaultInjector always =
      FaultInjector::Lenient("powercap.read@1.0", 9);
  reader->set_fault_injector(&always);
  EXPECT_FALSE(reader->ReadTotalJoules().ok());  // Every read fails.
  reader->set_fault_injector(nullptr);
  EXPECT_TRUE(reader->ReadTotalJoules().ok());  // Recovers when cleared.

  // A single-shot fault kills exactly one zone read; the total degrades
  // to the surviving zone instead of erroring.
  const FaultInjector once = FaultInjector::Lenient("powercap.read#1", 9);
  reader->set_fault_injector(&once);
  auto total = reader->ReadTotalJoules();
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(*total, 0.1);  // Zone 1 only: 1e5 uJ.
}

// --- CO2 ---

TEST(Co2Test, PaperConstants) {
  const EmissionFactors f = EmissionFactors::Germany2023();
  EXPECT_DOUBLE_EQ(f.kg_co2_per_kwh, 0.222);
  EXPECT_DOUBLE_EQ(f.eur_per_kwh, 0.20);
}

TEST(Co2Test, ImpactEstimate) {
  // Table 4's TabPFN row: 404,649 kWh -> ~89,832 kg CO2 and ~80,930 EUR.
  const ImpactEstimate impact =
      EstimateImpact(404649.0, EmissionFactors::Germany2023());
  EXPECT_NEAR(impact.kg_co2, 89832.0, 10.0);
  EXPECT_NEAR(impact.eur, 80929.8, 1.0);
}

TEST(Co2Test, GridTableLookup) {
  GridIntensityTable table;
  auto de = table.KgCo2PerKwh("DE");
  ASSERT_TRUE(de.ok());
  EXPECT_DOUBLE_EQ(de.value(), 0.222);
  EXPECT_FALSE(table.KgCo2PerKwh("ZZ").ok());
  // France's grid is far cleaner than Poland's.
  EXPECT_LT(table.KgCo2PerKwh("FR").value(),
            table.KgCo2PerKwh("PL").value());
}

// --- StageLedger ---

TEST(StageLedgerTest, AccumulatesPerStage) {
  StageLedger ledger;
  EnergyReading r;
  r.seconds = 1.0;
  r.breakdown.cpu_static_j = 3.6e6;  // 1 kWh.
  ledger.Add("caml", Stage::kExecution, r);
  ledger.Add("caml", Stage::kExecution, r);
  ledger.Add("caml", Stage::kInference, r);
  EXPECT_NEAR(ledger.Get("caml", Stage::kExecution).kwh(), 2.0, 1e-9);
  EXPECT_NEAR(ledger.TotalKwh("caml"), 3.0, 1e-9);
  EXPECT_EQ(ledger.Get("caml", Stage::kDevelopment).kwh(), 0.0);
  EXPECT_EQ(ledger.Get("unknown", Stage::kExecution).kwh(), 0.0);
}

TEST(StageLedgerTest, StageNames) {
  EXPECT_STREQ(StageName(Stage::kDevelopment), "development");
  EXPECT_STREQ(StageName(Stage::kExecution), "execution");
  EXPECT_STREQ(StageName(Stage::kInference), "inference");
}

TEST(StageLedgerTest, AmortizationMatchesPaper) {
  // §3.7: 21 kWh of development amortize over ~885 runs, i.e. the tuned
  // system must save ~0.0237 kWh per run.
  EXPECT_NEAR(StageLedger::AmortizationRuns(21.0, 21.0 / 885.0), 885.0,
              1e-6);
  EXPECT_TRUE(std::isinf(StageLedger::AmortizationRuns(21.0, 0.0)));
}

TEST(StageLedgerTest, ListsSystems) {
  StageLedger ledger;
  EnergyReading r;
  ledger.Add("a", Stage::kExecution, r);
  ledger.Add("b", Stage::kInference, r);
  EXPECT_EQ(ledger.systems().size(), 2u);
}

// --- Parameterized property: energy monotone in work for any machine ---

class EnergyMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(EnergyMonotoneTest, MoreWorkNeverCheaper) {
  const double parallel_fraction = GetParam();
  for (const MachineModel& m :
       {MachineModel::Minimal(), MachineModel::XeonGold6132(),
        MachineModel::GpuNodeT4()}) {
    EnergyModel model(m);
    double prev_j = -1.0;
    double prev_s = -1.0;
    for (double flops = 1e4; flops <= 1e8; flops *= 10) {
      Work w;
      w.flops = flops;
      w.parallel_fraction = parallel_fraction;
      const WorkExecution exec = model.Execute(w, m.num_cores);
      EXPECT_GT(exec.dynamic_joules, prev_j);
      EXPECT_GT(exec.seconds, prev_s);
      prev_j = exec.dynamic_joules;
      prev_s = exec.seconds;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ParallelFractions, EnergyMonotoneTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace green
