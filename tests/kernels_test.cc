// Tests for the cache-friendly model kernels (GREEN_KERNELS): end-to-end
// bit-identity of sweep records, scope trees, and serve reports with the
// kernels on vs off (sequential and across worker counts), arena
// reuse/rewind semantics, and histogram-vs-exact split agreement on
// discrete-valued (tie-heavy) features.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "green/automl/fitted_artifact.h"
#include "green/bench_util/experiment.h"
#include "green/bench_util/record_io.h"
#include "green/common/arena.h"
#include "green/common/rng.h"
#include "green/common/stringutil.h"
#include "green/data/synthetic.h"
#include "green/ml/kernels/histogram.h"
#include "green/ml/kernels/kernels.h"
#include "green/ml/model_registry.h"
#include "green/ml/models/decision_tree.h"
#include "green/serve/artifact_ladder.h"
#include "green/serve/inference_server.h"
#include "green/serve/request_stream.h"
#include "green/serve/serve_policy.h"
#include "green/sim/execution_context.h"

namespace green {
namespace {

/// Restores the process-wide kernel toggle (default: enabled) so a test
/// that flips it cannot leak state into the rest of the binary.
class KernelsToggleGuard {
 public:
  KernelsToggleGuard() = default;
  ~KernelsToggleGuard() { SetKernelsEnabled(true); }
};

Dataset TestData(size_t rows, size_t features, int classes,
                 uint64_t seed = 7) {
  SyntheticSpec spec;
  spec.name = "kernels";
  spec.num_rows = rows;
  spec.num_features = features;
  spec.num_informative = features / 2;
  spec.num_classes = classes;
  spec.separation = 2.0;
  spec.seed = seed;
  auto data = GenerateSynthetic(spec);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

// --- End-to-end sweep identity ---------------------------------------

std::string SerializeAll(const std::vector<RunRecord>& records) {
  std::string out;
  for (const RunRecord& r : records) out += RecordToJson(r) + "\n";
  return out;
}

ExperimentConfig SmallSweepConfig() {
  ExperimentConfig config;
  config.dataset_limit = 2;
  config.repetitions = 1;
  config.collect_scopes = true;  // Identity must cover the scope trees.
  return config;
}

std::string RunSmallSweep(bool kernels, int jobs) {
  SetKernelsEnabled(kernels);
  ExperimentConfig config = SmallSweepConfig();
  config.jobs = jobs;
  ExperimentRunner runner(config);
  auto records = runner.Sweep({"caml", "flaml"}, {10.0});
  EXPECT_TRUE(records.ok());
  if (!records.ok()) return "";
  return SerializeAll(records.value());
}

TEST(KernelSweepTest, RecordsAndScopesIdenticalKernelsOnOff) {
  KernelsToggleGuard guard;
  const std::string with_kernels = RunSmallSweep(/*kernels=*/true, 1);
  const std::string reference = RunSmallSweep(/*kernels=*/false, 1);
  ASSERT_FALSE(with_kernels.empty());
  EXPECT_EQ(with_kernels, reference);
}

TEST(KernelSweepTest, RecordsIdenticalKernelsOnOffAcrossWorkerCounts) {
  KernelsToggleGuard guard;
  const std::string kernels_parallel = RunSmallSweep(/*kernels=*/true, 4);
  const std::string reference_seq = RunSmallSweep(/*kernels=*/false, 1);
  ASSERT_FALSE(kernels_parallel.empty());
  EXPECT_EQ(kernels_parallel, reference_seq);
}

// --- Serve report identity -------------------------------------------

std::string SerializeReport(const ServeReport& report) {
  std::string out = StrFormat(
      "arrived=%zu admitted=%zu completed=%zu degraded=%zu rejected=%zu "
      "deadline=%zu batches=%zu duration=%.17g joules=%.17g\n",
      report.arrived, report.admitted, report.completed, report.degraded,
      report.rejected, report.deadline_exceeded, report.batches,
      report.duration_seconds, report.total_joules);
  for (const RequestResult& r : report.results) {
    out += StrFormat("%zu %s %.17g %.17g %.17g %d %s %s\n",
                     r.request_index, RequestOutcomeName(r.outcome),
                     r.arrival_seconds, r.finish_seconds, r.joules,
                     r.predicted_class, r.tier.c_str(), r.error.c_str());
  }
  return out;
}

std::string RunServeReplay(bool kernels) {
  SetKernelsEnabled(kernels);
  EnergyModel model(MachineModel::Minimal());
  const Dataset data = TestData(200, 8, 3, /*seed=*/6);

  VirtualClock clock;
  ExecutionContext ctx(&clock, &model, 1);
  std::vector<FittedArtifact::Member> members;
  const char* configs[] = {"naive_bayes", "decision_tree"};
  for (size_t j = 0; j < 2; ++j) {
    PipelineConfig config;
    config.model = configs[j];
    config.seed = j + 1;
    auto pipeline = BuildPipeline(config);
    EXPECT_TRUE(pipeline.ok());
    EXPECT_TRUE(pipeline->Fit(data, &ctx).ok());
    FittedArtifact::Member member;
    member.folds.push_back(
        std::make_shared<Pipeline>(std::move(pipeline).value()));
    member.weight = static_cast<double>(j + 1);
    members.push_back(std::move(member));
  }
  auto ladder = ArtifactLadder::Build(
      FittedArtifact::Weighted(std::move(members)), data, &model);
  EXPECT_TRUE(ladder.ok());

  TraceSpec spec;
  spec.kind = TraceSpec::Kind::kBurst;
  spec.duration_seconds = 20.0;
  spec.rate_rps = 8.0;
  const std::vector<ServeRequest> trace =
      GenerateTrace(spec, data.num_rows());

  ServePolicy policy;
  InferenceServer server(std::move(ladder).value(), data, &model, policy);
  auto report = server.Replay(trace);
  EXPECT_TRUE(report.ok());
  if (!report.ok()) return "";
  EXPECT_TRUE(report->CheckConservation().ok());
  return SerializeReport(report.value());
}

TEST(KernelServeTest, ServeReportIdenticalKernelsOnOff) {
  KernelsToggleGuard guard;
  const std::string with_kernels = RunServeReplay(/*kernels=*/true);
  const std::string reference = RunServeReplay(/*kernels=*/false);
  ASSERT_FALSE(with_kernels.empty());
  EXPECT_EQ(with_kernels, reference);
}

// --- Arena -----------------------------------------------------------

TEST(ArenaTest, ResetKeepsBlocksAndReusesThem) {
  Arena arena(/*block_bytes=*/4096);
  for (int i = 0; i < 8; ++i) arena.AllocArray<double>(400);
  const size_t warm_blocks = arena.block_count();
  const size_t warm_reserved = arena.reserved_bytes();
  EXPECT_GT(warm_blocks, 1u);
  EXPECT_GT(arena.allocated_bytes(), 0u);

  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.block_count(), warm_blocks);  // Blocks retained.
  EXPECT_EQ(arena.reserved_bytes(), warm_reserved);

  // The warmed arena satisfies the same allocation pattern without
  // growing — the property that makes repeated fits allocation-free.
  for (int i = 0; i < 8; ++i) arena.AllocArray<double>(400);
  EXPECT_EQ(arena.block_count(), warm_blocks);
}

TEST(ArenaTest, ScopeRewindsNestedAllocations) {
  Arena arena(/*block_bytes=*/4096);
  arena.AllocArray<int>(10);
  const Arena::Mark outer = arena.CurrentMark();
  {
    ArenaScope scope(&arena);
    arena.AllocArray<double>(2000);  // Spills into further blocks.
    {
      ArenaScope inner(&arena);
      arena.AllocArray<double>(2000);
    }
    arena.AllocArray<char>(64);
  }
  const Arena::Mark after = arena.CurrentMark();
  EXPECT_EQ(after.block, outer.block);
  EXPECT_EQ(after.offset, outer.offset);
}

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  arena.Alloc(1, 1);  // Deliberately misalign the bump pointer.
  double* d = arena.AllocArray<double>(3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
  int32_t* i = arena.AllocArray<int32_t>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(i) % alignof(int32_t), 0u);
}

// --- Histogram split vs exact sweep ----------------------------------

/// Brute-force exact best split over a column: sort, sweep every gap
/// between adjacent distinct values, score by weighted Gini — the same
/// criterion both split paths optimize.
struct ExactBest {
  bool found = false;
  double score = 0.0;
  size_t n_left = 0;
};

ExactBest ExactBestSplit(const std::vector<double>& vals,
                         const std::vector<int32_t>& labels, int k,
                         int min_samples_leaf) {
  const size_t n = vals.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return vals[a] < vals[b]; });
  std::vector<double> left(static_cast<size_t>(k), 0.0);
  std::vector<double> total(static_cast<size_t>(k), 0.0);
  for (int32_t lab : labels) total[static_cast<size_t>(lab)] += 1.0;
  ExactBest best;
  for (size_t i = 0; i + 1 < n; ++i) {
    left[static_cast<size_t>(labels[order[i]])] += 1.0;
    if (vals[order[i + 1]] - vals[order[i]] <= 1e-12) continue;
    const size_t nl = i + 1;
    const size_t nr = n - nl;
    if (nl < static_cast<size_t>(min_samples_leaf) ||
        nr < static_cast<size_t>(min_samples_leaf)) {
      continue;
    }
    double gl = 1.0, gr = 1.0;
    for (int c = 0; c < k; ++c) {
      const double pl = left[static_cast<size_t>(c)] /
                        static_cast<double>(nl);
      const double pr = (total[static_cast<size_t>(c)] -
                         left[static_cast<size_t>(c)]) /
                        static_cast<double>(nr);
      gl -= pl * pl;
      gr -= pr * pr;
    }
    const double score = (static_cast<double>(nl) * gl +
                          static_cast<double>(nr) * gr) /
                         static_cast<double>(n);
    if (!best.found || score < best.score - 1e-12) {
      best.found = true;
      best.score = score;
      best.n_left = nl;
    }
  }
  return best;
}

TEST(HistogramSplitTest, AgreesWithExactSweepOnDiscreteTies) {
  // Discrete feature: 8 distinct values, each repeated 8 times (heavy
  // ties). Labels correlate with value so there is a clear best split.
  Rng rng(11);
  std::vector<double> vals;
  std::vector<int32_t> labels;
  const int k = 3;
  for (int v = 0; v < 8; ++v) {
    for (int rep = 0; rep < 8; ++rep) {
      vals.push_back(static_cast<double>(v));
      const int noisy = rng.NextBounded(4) == 0
                            ? static_cast<int>(rng.NextBounded(k))
                            : (v < 3 ? 0 : (v < 6 ? 1 : 2));
      labels.push_back(static_cast<int32_t>(noisy));
    }
  }
  const int bins = 32;  // Every distinct value lands in its own bin.
  std::vector<double> scratch((bins + 2) * k);
  const HistogramSplit hist = HistogramSplitScanCls(
      vals.data(), labels.data(), vals.size(), k, /*lo=*/0.0, /*hi=*/7.0,
      bins, /*min_samples_leaf=*/2, scratch.data());
  const ExactBest exact =
      ExactBestSplit(vals, labels, k, /*min_samples_leaf=*/2);

  ASSERT_TRUE(hist.found);
  ASSERT_TRUE(exact.found);
  // With one bin per distinct value the candidate partitions coincide,
  // so the histogram must pick the exact optimum: same left block, same
  // weighted Gini.
  EXPECT_EQ(static_cast<size_t>(hist.n_left), exact.n_left);
  EXPECT_NEAR(hist.score, exact.score, 1e-12);
  // And its threshold routes the same rows: a bin edge between distinct
  // values, not on one.
  size_t routed_left = 0;
  for (double v : vals) routed_left += v <= hist.threshold ? 1 : 0;
  EXPECT_EQ(routed_left, exact.n_left);
}

TEST(HistogramSplitTest, TreePredictionsMatchExactOnDiscreteData) {
  // A tree grown with histogram splits on discrete features must route
  // every row exactly as the exact-sweep tree does: with <= 32 distinct
  // values per feature and 64 bins, every exact midpoint threshold has a
  // matching bin edge.
  KernelsToggleGuard guard;
  SetKernelsEnabled(true);
  Dataset data = TestData(256, 6, 3, /*seed=*/13);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    for (size_t j = 0; j < data.num_features(); ++j) {
      data.Set(r, j, std::floor(data.At(r, j) * 4.0) / 4.0);
    }
  }
  EnergyModel model(MachineModel::Minimal());
  VirtualClock clock;
  ExecutionContext ctx(&clock, &model, 1);

  DecisionTreeParams exact_params;
  DecisionTree exact_tree(exact_params);
  ASSERT_TRUE(exact_tree.Fit(data, &ctx).ok());
  auto exact_proba = exact_tree.PredictProba(data, &ctx);
  ASSERT_TRUE(exact_proba.ok());

  DecisionTreeParams hist_params;
  hist_params.histogram_bins = 64;
  DecisionTree hist_tree(hist_params);
  ASSERT_TRUE(hist_tree.Fit(data, &ctx).ok());
  auto hist_proba = hist_tree.PredictProba(data, &ctx);
  ASSERT_TRUE(hist_proba.ok());

  ASSERT_EQ(exact_proba->size(), hist_proba->size());
  size_t agree = 0;
  for (size_t i = 0; i < exact_proba->size(); ++i) {
    const auto& a = (*exact_proba)[i];
    const auto& b = (*hist_proba)[i];
    ASSERT_EQ(a.size(), b.size());
    size_t am = 0, bm = 0;
    for (size_t c = 1; c < a.size(); ++c) {
      if (a[c] > a[am]) am = c;
      if (b[c] > b[bm]) bm = c;
    }
    agree += am == bm ? 1 : 0;
  }
  // The approximation is allowed to differ on a handful of rows (bin
  // edges vs midpoints shift deep-node tie-breaks); it must not diverge.
  EXPECT_GE(agree, exact_proba->size() * 95 / 100);
}

}  // namespace
}  // namespace green
