#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "green/common/thread_pool.h"

namespace green {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, WaitWithoutTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  pool.Wait();  // Idempotent.
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, DestructorCompletesPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        done.fetch_add(1);
      });
    }
    // No Wait(): the destructor must drain the queue before joining.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 200);
  // 200 x 100us of sleeping across 4 workers: more than one thread must
  // have participated.
  EXPECT_GT(seen.size(), 1u);
}

TEST(ThreadPoolTest, SubmitFromMultipleThreads) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &done] {
      for (int i = 0; i < 100; ++i) {
        pool.Submit([&done] { done.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(done.load(), 400);
}

TEST(ThreadPoolTest, DefaultThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, StealsRebalanceSkewedTaskCosts) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::atomic<bool> blocker_running{false};

  // Pin one worker on a long task first, then queue short tasks. The
  // round-robin submit path spreads them across both deques, so some
  // land behind the blocked worker's deque — they can only complete by
  // being stolen. The blocker releases only once every short task is
  // done, so completion of Wait() PROVES the steals happened (and the
  // counter confirms it).
  pool.Submit([&] {
    blocker_running.store(true, std::memory_order_release);
    while (done.load(std::memory_order_acquire) < 8) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!blocker_running.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_acq_rel); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
  EXPECT_GT(pool.steals(), 0u);
}

TEST(ThreadPoolTest, SingleWorkerNeverSteals) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(ThreadPoolTest, SubmitFromInsideWorkerCompletesBeforeWait) {
  // A task fanning out subtasks from inside the pool (the in-worker
  // Submit path targets the worker's own deque; idle workers steal the
  // overflow). Wait() must cover transitively submitted work.
  ThreadPool pool(3);
  std::atomic<int> done{0};
  pool.Submit([&pool, &done] {
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&pool, &done] {
        pool.Submit([&done] { done.fetch_add(1); });
        done.fetch_add(1);
      });
    }
    done.fetch_add(1);
  });
  pool.Wait();
  EXPECT_EQ(done.load(), 1 + 16 * 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(333);
  ParallelFor(hits.size(), 4,
              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleJobRunsInlineInOrder) {
  std::vector<size_t> order;
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  ParallelFor(16, 1, [&](size_t i) {
    order.push_back(i);
    all_on_caller &= std::this_thread::get_id() == caller;
  });
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(all_on_caller);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  int calls = 0;
  ParallelFor(0, 8, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, MoreJobsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(hits.size(), 64,
              [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace green
