#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "green/table/column.h"
#include "green/table/csv.h"
#include "green/table/dataset.h"
#include "green/table/metafeatures.h"
#include "green/table/split.h"

namespace green {
namespace {

Dataset TinyDataset() {
  Dataset data("tiny", 2, 2);
  data.SetFeatureType(1, FeatureType::kCategorical);
  EXPECT_TRUE(data.AppendRow({1.0, 0.0}, 0).ok());
  EXPECT_TRUE(data.AppendRow({2.0, 1.0}, 1).ok());
  EXPECT_TRUE(data.AppendRow({3.0, 0.0}, 0).ok());
  EXPECT_TRUE(data.AppendRow({4.0, 2.0}, 1).ok());
  return data;
}

/// Balanced k-class dataset with n rows and d features.
Dataset MakeDataset(size_t n, size_t d, int k, uint64_t seed = 1) {
  Dataset data("made", d, k);
  Rng rng(seed);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    for (double& v : row) v = rng.NextGaussian();
    EXPECT_TRUE(
        data.AppendRow(row, static_cast<int>(i % static_cast<size_t>(k)))
            .ok());
  }
  return data;
}

// --- Column ---

TEST(ColumnTest, BasicStats) {
  Column col("x", FeatureType::kNumeric);
  for (double v : std::vector<double>{1.0, 2.0, NAN, 4.0}) col.Append(v);
  EXPECT_EQ(col.size(), 4u);
  EXPECT_EQ(col.MissingCount(), 1u);
  EXPECT_NEAR(col.MeanIgnoringMissing(), 7.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(col.MinIgnoringMissing(), 1.0);
  EXPECT_DOUBLE_EQ(col.MaxIgnoringMissing(), 4.0);
}

TEST(ColumnTest, AllMissing) {
  Column col("x", FeatureType::kNumeric);
  col.Append(NAN);
  EXPECT_EQ(col.MeanIgnoringMissing(), 0.0);
  EXPECT_EQ(col.Cardinality(), 0);
}

TEST(ColumnTest, Cardinality) {
  Column col("c", FeatureType::kCategorical);
  for (double v : {0.0, 2.0, 1.0, 2.0}) col.Append(v);
  EXPECT_EQ(col.Cardinality(), 3);
}

// --- Dataset ---

TEST(DatasetTest, ShapeAndAccess) {
  const Dataset data = TinyDataset();
  EXPECT_EQ(data.num_rows(), 4u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_EQ(data.num_classes(), 2);
  EXPECT_DOUBLE_EQ(data.At(2, 0), 3.0);
  EXPECT_EQ(data.Label(3), 1);
  EXPECT_EQ(data.NumCategorical(), 1u);
}

TEST(DatasetTest, RejectsBadRows) {
  Dataset data("bad", 2, 2);
  EXPECT_FALSE(data.AppendRow({1.0}, 0).ok());          // Wrong width.
  EXPECT_FALSE(data.AppendRow({1.0, 2.0}, 2).ok());     // Label too big.
  EXPECT_FALSE(data.AppendRow({1.0, 2.0}, -1).ok());    // Negative label.
  EXPECT_EQ(data.num_rows(), 0u);
}

TEST(DatasetTest, ClassCounts) {
  const Dataset data = TinyDataset();
  const std::vector<int> counts = data.ClassCounts();
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
}

TEST(DatasetTest, SubsetPreservesMetadata) {
  const Dataset data = TinyDataset();
  const Dataset sub = data.Subset({1, 3});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.Label(0), 1);
  EXPECT_DOUBLE_EQ(sub.At(1, 0), 4.0);
  EXPECT_EQ(sub.feature_type(1), FeatureType::kCategorical);
  EXPECT_EQ(sub.name(), "tiny");
}

TEST(DatasetTest, SelectFeatures) {
  const Dataset data = TinyDataset();
  const Dataset narrow = data.SelectFeatures({1});
  EXPECT_EQ(narrow.num_features(), 1u);
  EXPECT_EQ(narrow.feature_type(0), FeatureType::kCategorical);
  EXPECT_DOUBLE_EQ(narrow.At(3, 0), 2.0);
  EXPECT_EQ(narrow.labels(), data.labels());
}

TEST(DatasetTest, ScaleFactor) {
  Dataset data = TinyDataset();
  EXPECT_DOUBLE_EQ(data.ScaleFactor(), 1.0);
  data.SetNominalSize(400, 2);
  EXPECT_DOUBLE_EQ(data.ScaleFactor(), 100.0);
  data.SetNominalSize(1, 2);  // Nominal smaller than instantiated.
  EXPECT_DOUBLE_EQ(data.ScaleFactor(), 1.0);
}

// --- splits ---

TEST(SplitTest, StratifiedFractions) {
  const Dataset data = MakeDataset(300, 3, 3);
  Rng rng(5);
  const TrainTestIndices split = StratifiedSplit(data, 0.66, &rng);
  EXPECT_EQ(split.train.size() + split.test.size(), data.num_rows());
  EXPECT_NEAR(static_cast<double>(split.train.size()) /
                  static_cast<double>(data.num_rows()),
              0.66, 0.02);
  // Stratification: each class keeps its share on both sides.
  const Dataset train = data.Subset(split.train);
  const std::vector<int> counts = train.ClassCounts();
  for (int c : counts) EXPECT_NEAR(c, 66, 2);
}

TEST(SplitTest, SplitIsDisjointAndCovering) {
  const Dataset data = MakeDataset(100, 2, 2);
  Rng rng(7);
  const TrainTestIndices split = StratifiedSplit(data, 0.5, &rng);
  std::set<size_t> all(split.train.begin(), split.train.end());
  for (size_t t : split.test) {
    EXPECT_TRUE(all.insert(t).second) << "row in both sides";
  }
  EXPECT_EQ(all.size(), data.num_rows());
}

TEST(SplitTest, KFoldPartitions) {
  const Dataset data = MakeDataset(100, 2, 4);
  Rng rng(9);
  const auto folds = StratifiedKFold(data, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> seen;
  for (const auto& fold : folds) {
    EXPECT_NEAR(fold.size(), 20, 1);
    for (size_t r : fold) EXPECT_TRUE(seen.insert(r).second);
  }
  EXPECT_EQ(seen.size(), data.num_rows());
}

TEST(SplitTest, SamplePerClassCaps) {
  const Dataset data = MakeDataset(90, 2, 3);
  Rng rng(11);
  const auto sample = SamplePerClass(data, 5, &rng);
  EXPECT_EQ(sample.size(), 15u);
  const Dataset sub = data.Subset(sample);
  for (int c : sub.ClassCounts()) EXPECT_EQ(c, 5);
}

TEST(SplitTest, SamplePerClassExhaustsSmallClasses) {
  const Dataset data = MakeDataset(10, 2, 2);
  Rng rng(13);
  const auto sample = SamplePerClass(data, 100, &rng);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(SplitTest, SampleRows) {
  const Dataset data = MakeDataset(50, 2, 2);
  Rng rng(15);
  EXPECT_EQ(SampleRows(data, 20, &rng).size(), 20u);
  EXPECT_EQ(SampleRows(data, 500, &rng).size(), 50u);
}

TEST(SplitTest, DeterministicGivenSeed) {
  const Dataset data = MakeDataset(60, 2, 2);
  Rng rng1(21);
  Rng rng2(21);
  EXPECT_EQ(StratifiedSplit(data, 0.5, &rng1).train,
            StratifiedSplit(data, 0.5, &rng2).train);
}

// Property sweep: every class present on both sides for many fractions.
class SplitFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitFractionTest, BothSidesCoverAllClasses) {
  const Dataset data = MakeDataset(120, 3, 4);
  Rng rng(33);
  const TrainTestIndices split = StratifiedSplit(data, GetParam(), &rng);
  for (int c : data.Subset(split.train).ClassCounts()) EXPECT_GT(c, 0);
  for (int c : data.Subset(split.test).ClassCounts()) EXPECT_GT(c, 0);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitFractionTest,
                         ::testing::Values(0.2, 0.34, 0.5, 0.66, 0.8));

// --- CSV ---

TEST(CsvTest, RoundTrip) {
  Dataset data = TinyDataset();
  data.Set(0, 0, NAN);  // Exercise a missing value.
  const std::string text = ToCsvString(data);
  auto parsed = FromCsvString(text, "tiny");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 4u);
  EXPECT_EQ(parsed->num_classes(), 2);
  EXPECT_TRUE(std::isnan(parsed->At(0, 0)));
  EXPECT_DOUBLE_EQ(parsed->At(3, 0), 4.0);
  EXPECT_EQ(parsed->feature_type(1), FeatureType::kCategorical);
  EXPECT_EQ(parsed->Label(1), 1);
}

TEST(CsvTest, RejectsMalformed) {
  EXPECT_FALSE(FromCsvString("", "x").ok());
  EXPECT_FALSE(FromCsvString("a,b\n1,2\n", "x").ok());  // No label col.
  EXPECT_FALSE(FromCsvString("a,label\n1\n", "x").ok());  // Short row.
  EXPECT_FALSE(FromCsvString("a,label\n", "x").ok());     // No rows.
  EXPECT_FALSE(FromCsvString("a,label\n1,-3\n", "x").ok());  // Neg label.
}

TEST(CsvTest, RejectsNonNumericCells) {
  // A word where a number belongs must be an error, not a silent 0.
  auto parsed = FromCsvString("a,b,label\n1,hello,0\n", "x");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("non-numeric"),
            std::string::npos);
  // Trailing garbage after a valid prefix is equally hostile.
  EXPECT_FALSE(FromCsvString("a,label\n12abc,0\n", "x").ok());
  EXPECT_FALSE(FromCsvString("a,label\n1e,0\n", "x").ok());
  // Scientific notation and signs are legitimate numbers.
  auto fine = FromCsvString("a,b,label\n-1.5e3,+2,1\n", "x");
  ASSERT_TRUE(fine.ok());
  EXPECT_DOUBLE_EQ(fine->At(0, 0), -1500.0);
}

TEST(CsvTest, RejectsGarbageLabels) {
  auto parsed = FromCsvString("a,label\n1,yes\n", "x");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("non-integer label"),
            std::string::npos);
  EXPECT_FALSE(FromCsvString("a,label\n1,2x\n", "x").ok());
  EXPECT_FALSE(FromCsvString("a,label\n1,\n", "x").ok());  // Empty label.
  EXPECT_FALSE(FromCsvString("a,label\n1,99999999\n", "x").ok());  // Range.
  EXPECT_FALSE(
      FromCsvString("a,label\n1,99999999999999999999\n", "x").ok());
}

TEST(CsvTest, RejectsTruncatedAndRaggedRows) {
  // A file cut off mid-row (e.g. interrupted download) must error.
  EXPECT_FALSE(FromCsvString("a,b,label\n1,2,0\n3,4", "x").ok());
  // Ragged rows: wrong field count either way.
  EXPECT_FALSE(FromCsvString("a,b,label\n1,2,0\n1,2,3,0\n", "x").ok());
  EXPECT_FALSE(FromCsvString("a,b,label\n1,2,0\n1,0\n", "x").ok());
  // Trailing newline and blank lines between rows are fine.
  auto ok = FromCsvString("a,label\n1,0\n\n2,1\n\n", "x");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_rows(), 2u);
}

TEST(CsvTest, HeaderOnlyAndWhitespaceFiles) {
  EXPECT_FALSE(FromCsvString("\n\n\n", "x").ok());
  EXPECT_FALSE(FromCsvString("   \n", "x").ok());
  // Missing feature values (empty cells) are NaN, not errors.
  auto parsed = FromCsvString("a,b,label\n,2,0\n1,,1\n", "x");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::isnan(parsed->At(0, 0)));
  EXPECT_TRUE(std::isnan(parsed->At(1, 1)));
}

TEST(CsvTest, FileRoundTrip) {
  const Dataset data = TinyDataset();
  const std::string path = ::testing::TempDir() + "/green_csv_test.csv";
  ASSERT_TRUE(WriteCsv(data, path).ok());
  auto loaded = ReadCsv(path, "tiny");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), data.num_rows());
  EXPECT_FALSE(ReadCsv("/nonexistent/no.csv", "x").ok());
}

// --- MetaFeatures ---

TEST(MetaFeaturesTest, BasicValues) {
  const Dataset data = MakeDataset(1000, 10, 2);
  const MetaFeatures mf = ComputeMetaFeatures(data);
  EXPECT_NEAR(mf.log_rows, 3.0, 1e-9);
  EXPECT_NEAR(mf.log_features, 1.0, 1e-9);
  EXPECT_NEAR(mf.log_classes, std::log10(2.0), 1e-9);
  EXPECT_NEAR(mf.class_entropy, 1.0, 1e-6);  // Perfectly balanced.
  EXPECT_NEAR(mf.class_imbalance, 0.0, 1e-9);
  EXPECT_EQ(mf.categorical_fraction, 0.0);
  EXPECT_EQ(mf.missing_fraction, 0.0);
}

TEST(MetaFeaturesTest, UsesNominalSizeWhenSet) {
  Dataset data = MakeDataset(100, 4, 2);
  data.SetNominalSize(100000, 400);
  const MetaFeatures mf = ComputeMetaFeatures(data);
  EXPECT_NEAR(mf.log_rows, 5.0, 1e-9);
  EXPECT_NEAR(mf.log_features, std::log10(400.0), 1e-9);
}

TEST(MetaFeaturesTest, ImbalanceDetected) {
  Dataset data("imb", 1, 2);
  for (int i = 0; i < 90; ++i) ASSERT_TRUE(data.AppendRow({0.0}, 0).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(data.AppendRow({0.0}, 1).ok());
  const MetaFeatures mf = ComputeMetaFeatures(data);
  EXPECT_GT(mf.class_imbalance, 0.8);
  EXPECT_LT(mf.class_entropy, 0.6);
}

TEST(MetaFeaturesTest, DistanceIsMetricLike) {
  const MetaFeatures a = ComputeMetaFeatures(MakeDataset(100, 5, 2));
  const MetaFeatures b = ComputeMetaFeatures(MakeDataset(100, 5, 2, 9));
  const MetaFeatures c = ComputeMetaFeatures(MakeDataset(5000, 50, 10));
  EXPECT_NEAR(MetaFeatureDistance(a, a), 0.0, 1e-12);
  // Same-shape datasets are closer than differently-shaped ones.
  EXPECT_LT(MetaFeatureDistance(a, b), MetaFeatureDistance(a, c));
}

TEST(MetaFeaturesTest, VectorDimensionStable) {
  const MetaFeatures mf;
  EXPECT_EQ(mf.ToVector().size(), MetaFeatures::kDim);
}

}  // namespace
}  // namespace green
