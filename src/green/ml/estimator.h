#ifndef GREEN_ML_ESTIMATOR_H_
#define GREEN_ML_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "green/common/status.h"
#include "green/sim/execution_context.h"
#include "green/table/dataset.h"

namespace green {

/// Class-probability matrix: one row per instance, one column per class.
using ProbaMatrix = std::vector<std::vector<double>>;

/// Base interface for all classifiers.
///
/// Every implementation is *instrumented*: Fit and PredictProba charge the
/// abstract work they perform through the ExecutionContext, which is what
/// drives virtual time and energy attribution. A model that does more work
/// is, by construction, a model that costs more energy — the paper's
/// central accounting principle.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Trains on `train`. Implementations must tolerate NaN-free data only;
  /// imputation is a pipeline concern.
  virtual Status Fit(const Dataset& train, ExecutionContext* ctx) = 0;

  /// Per-instance class probabilities for all rows of `data`.
  virtual Result<ProbaMatrix> PredictProba(const Dataset& data,
                                           ExecutionContext* ctx) const = 0;

  /// Hard predictions (argmax of PredictProba by default).
  /// FailedPrecondition for regression-fitted estimators, which have no
  /// class labels to predict.
  virtual Result<std::vector<int>> Predict(const Dataset& data,
                                           ExecutionContext* ctx) const;

  /// Short identifier, e.g. "random_forest".
  virtual std::string Name() const = 0;

  /// Abstract work needed to score ONE instance with `num_features`
  /// features. Used by constraint-aware search (the paper's CAML
  /// inference-time constraint) and by deployment cost projections.
  virtual double InferenceFlopsPerRow(size_t num_features) const = 0;

  /// Rough model size proxy (parameters / nodes); reported alongside
  /// energy so "simpler model" claims are checkable.
  virtual double ComplexityProxy() const = 0;

  bool fitted() const { return fitted_; }
  int num_classes() const { return num_classes_; }
  /// Task the estimator was fitted for; regression models report k=1
  /// "probability" rows holding the predicted value.
  TaskType task() const { return task_; }

 protected:
  /// Classification-only convenience: infers binary/multiclass from the
  /// class count. Regression-capable models use the two-arg overload.
  void MarkFitted(int num_classes) {
    MarkFitted(num_classes, TaskTypeForClasses(num_classes));
  }
  void MarkFitted(int num_classes, TaskType task) {
    fitted_ = true;
    num_classes_ = num_classes;
    task_ = task;
  }

 private:
  bool fitted_ = false;
  int num_classes_ = 0;
  TaskType task_ = TaskType::kBinary;
};

/// Base interface for feature transformers (preprocessors).
class Transformer {
 public:
  virtual ~Transformer() = default;

  virtual Status Fit(const Dataset& train, ExecutionContext* ctx) = 0;
  virtual Result<Dataset> Transform(const Dataset& data,
                                    ExecutionContext* ctx) const = 0;
  virtual std::string Name() const = 0;

  /// Deterministic signature of the transformer's *configuration*
  /// (constructor parameters, not fitted state). Contract: two
  /// transformers with equal signatures, fitted on identical data, reach
  /// identical fitted state — this keys the transform-prefix cache.
  /// Parameterized transformers MUST override to include every parameter
  /// that affects Fit/Transform.
  virtual std::string ConfigSignature() const { return Name(); }

  /// Abstract per-row transform cost at inference time.
  virtual double TransformFlopsPerRow(size_t num_features) const = 0;

  /// Output feature count for a given input width (identity by default;
  /// encoders/selectors override). Valid after Fit.
  virtual size_t OutputWidth(size_t input_width) const {
    return input_width;
  }
};

}  // namespace green

#endif  // GREEN_ML_ESTIMATOR_H_
