#ifndef GREEN_ML_PIPELINE_H_
#define GREEN_ML_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "green/ml/estimator.h"

namespace green {

struct TransformCacheEntry;

/// A preprocessing chain followed by a classifier — the unit every AutoML
/// system in the paper searches over ("ML pipeline").
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  void AddTransformer(std::unique_ptr<Transformer> transformer);
  void SetModel(std::unique_ptr<Estimator> model);

  /// Fits transformers left-to-right, then the model, charging all work.
  ///
  /// When the ExecutionContext carries a TransformCache, the fitted
  /// transformer chain is memoized by (train storage identity + row view,
  /// chain config signature). On a hit the host-side refit is skipped and
  /// the recorded charge tape is replayed instead, so every simulated
  /// quantity (clock, meter, scope tree) is bit-identical either way. A
  /// pipeline that adopted cached transformers cannot be refitted — build
  /// a fresh one (every call site already does).
  Status Fit(const Dataset& train, ExecutionContext* ctx);

  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const;
  Result<std::vector<int>> Predict(const Dataset& data,
                                   ExecutionContext* ctx) const;

  /// "prep1|prep2|model" — used in reports and search logs.
  std::string Describe() const;

  /// Total abstract inference work per scored row (transformers + model),
  /// the quantity CAML's inference-time constraint bounds.
  double InferenceFlopsPerRow(size_t raw_num_features) const;

  double ModelComplexity() const {
    return model_ ? model_->ComplexityProxy() : 0.0;
  }
  bool fitted() const { return fitted_; }
  const Estimator* model() const { return model_.get(); }
  size_t num_transformers() const { return transformers_.size(); }

 private:
  Result<Dataset> RunTransforms(const Dataset& data,
                                ExecutionContext* ctx) const;

  /// '|'-joined ConfigSignatures of the transformer chain (cache key).
  std::string ChainSignature() const;

  /// Shared so a fitted chain can be adopted from / donated to the
  /// transform cache; unique until the first cache interaction.
  std::vector<std::shared_ptr<Transformer>> transformers_;
  std::unique_ptr<Estimator> model_;
  /// The cache entry this pipeline's chain lives in (hit or donated miss);
  /// enables the predict-path transform memo. Null when uncached.
  std::shared_ptr<const TransformCacheEntry> cache_entry_;
  bool fitted_ = false;
  bool cache_adopted_ = false;
  size_t fitted_input_width_ = 0;
};

}  // namespace green

#endif  // GREEN_ML_PIPELINE_H_
