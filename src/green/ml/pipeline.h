#ifndef GREEN_ML_PIPELINE_H_
#define GREEN_ML_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// A preprocessing chain followed by a classifier — the unit every AutoML
/// system in the paper searches over ("ML pipeline").
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  void AddTransformer(std::unique_ptr<Transformer> transformer);
  void SetModel(std::unique_ptr<Estimator> model);

  /// Fits transformers left-to-right, then the model, charging all work.
  Status Fit(const Dataset& train, ExecutionContext* ctx);

  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const;
  Result<std::vector<int>> Predict(const Dataset& data,
                                   ExecutionContext* ctx) const;

  /// "prep1|prep2|model" — used in reports and search logs.
  std::string Describe() const;

  /// Total abstract inference work per scored row (transformers + model),
  /// the quantity CAML's inference-time constraint bounds.
  double InferenceFlopsPerRow(size_t raw_num_features) const;

  double ModelComplexity() const {
    return model_ ? model_->ComplexityProxy() : 0.0;
  }
  bool fitted() const { return fitted_; }
  const Estimator* model() const { return model_.get(); }
  size_t num_transformers() const { return transformers_.size(); }

 private:
  Result<Dataset> RunTransforms(const Dataset& data,
                                ExecutionContext* ctx) const;

  std::vector<std::unique_ptr<Transformer>> transformers_;
  std::unique_ptr<Estimator> model_;
  bool fitted_ = false;
  size_t fitted_input_width_ = 0;
};

}  // namespace green

#endif  // GREEN_ML_PIPELINE_H_
