#ifndef GREEN_ML_TRANSFORM_CACHE_H_
#define GREEN_ML_TRANSFORM_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "green/ml/estimator.h"
#include "green/sim/execution_context.h"
#include "green/table/dataset.h"

namespace green {

/// One memoized transformer-chain fit: the fitted transformers, the
/// transformed train set (sharing storage), and the charge tape recorded
/// during the original fit. `input` pins the source storage — while the
/// entry lives, its StorageId cannot be recycled by a different dataset,
/// which is what makes pointer-identity keys exact.
struct TransformCacheEntry {
  Dataset input;
  /// Fitted instances, shared with every pipeline that adopted them.
  /// Invariant: never re-Fit a cached transformer (Transform is const and
  /// thread-safe; Fit is not).
  std::vector<std::shared_ptr<Transformer>> transformers;
  Dataset transformed;
  ChargeTape tape;
  size_t bytes = 0;
  /// For predict-path memos only: the fitted-chain entry this memo was
  /// recorded through. Pins the chain so its address stays unique for the
  /// pointer-identity part of the memo key. Null for fit entries.
  std::shared_ptr<const TransformCacheEntry> parent;
};

struct TransformCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t predict_hits = 0;
  uint64_t predict_misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// Thread-safe, byte-bounded, LRU-evicting memo of fitted transformer
/// chains, keyed by (dataset storage identity, exact row view, chain
/// config signature). Purely a *host-time* optimization: on a hit the
/// caller replays the recorded charge tape, so every simulated quantity is
/// bit-identical to recomputing. Failed or interrupted fits are never
/// inserted (same rule the ASKL meta-store follows).
class TransformCache {
 public:
  explicit TransformCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  TransformCache(const TransformCache&) = delete;
  TransformCache& operator=(const TransformCache&) = delete;

  /// Exact-match lookup (storage pointer + full row-index comparison — a
  /// fingerprint collision can never surface a wrong entry). Returns null
  /// on miss. The returned entry stays valid after eviction.
  std::shared_ptr<const TransformCacheEntry> Lookup(
      const Dataset& input, const std::string& chain_signature);

  /// Memoizes a successfully fitted chain. Oversized entries (larger than
  /// the whole budget) are dropped and counted as evictions. Returns the
  /// admitted entry — the incumbent if a racing insert got there first, or
  /// null when the entry was too large to admit — so the caller can adopt
  /// the shared instance.
  std::shared_ptr<const TransformCacheEntry> Insert(
      const Dataset& input, const std::string& chain_signature,
      std::vector<std::shared_ptr<Transformer>> transformers,
      Dataset transformed, ChargeTape tape);

  /// Predict-path memo: the result of pushing `input` through the fitted
  /// chain `chain`. Memos are ordinary LRU entries (same byte budget and
  /// eviction), keyed by (chain identity, input storage identity, exact
  /// row view). Returns null on miss.
  std::shared_ptr<const TransformCacheEntry> LookupPredict(
      const std::shared_ptr<const TransformCacheEntry>& chain,
      const Dataset& input);

  /// Memoizes a completed (non-truncated) predict-path transform.
  void InsertPredict(
      const std::shared_ptr<const TransformCacheEntry>& chain,
      const Dataset& input, Dataset transformed, ChargeTape tape);

  TransformCacheStats Stats() const;
  size_t max_bytes() const { return max_bytes_; }

 private:
  using LruList =
      std::list<std::pair<std::string,
                          std::shared_ptr<const TransformCacheEntry>>>;

  static std::string MapKey(const Dataset& input,
                            const std::string& chain_signature);
  static std::string PredictKey(const TransformCacheEntry* chain,
                                const Dataset& input);
  static bool SameView(const Dataset& a, const Dataset& b);
  static size_t EstimateBytes(const TransformCacheEntry& entry,
                              const std::string& chain_signature);

  /// Admits `entry` under `key`, evicting from the LRU tail as needed.
  /// Returns the entry now stored under the key (incumbent on a race) or
  /// null if the entry exceeds the whole budget. Requires mutex_ held.
  std::shared_ptr<const TransformCacheEntry> AdmitLocked(
      std::string key, std::shared_ptr<const TransformCacheEntry> entry);

  const size_t max_bytes_;
  mutable std::mutex mutex_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t predict_hits_ = 0;
  uint64_t predict_misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace green

#endif  // GREEN_ML_TRANSFORM_CACHE_H_
