#include "green/ml/estimator.h"

#include "green/common/mathutil.h"

namespace green {

Result<std::vector<int>> Estimator::Predict(const Dataset& data,
                                            ExecutionContext* ctx) const {
  if (task() == TaskType::kRegression) {
    return Status::FailedPrecondition(
        Name() + ": regression estimator has no class predictions");
  }
  GREEN_ASSIGN_OR_RETURN(ProbaMatrix proba, PredictProba(data, ctx));
  std::vector<int> out;
  out.reserve(proba.size());
  for (const auto& row : proba) {
    out.push_back(static_cast<int>(ArgMax(row)));
  }
  return out;
}

}  // namespace green
