#include "green/ml/transform_cache.h"

#include "green/common/stringutil.h"

namespace green {

std::string TransformCache::MapKey(const Dataset& input,
                                   const std::string& chain_signature) {
  return StrFormat("%p|%zu|%zu|%016llx|", input.StorageId(),
                   input.num_rows(), input.num_features(),
                   static_cast<unsigned long long>(input.ViewFingerprint())) +
         chain_signature;
}

std::string TransformCache::PredictKey(const TransformCacheEntry* chain,
                                       const Dataset& input) {
  return StrFormat("predict:%p|%p|%zu|%zu|%016llx",
                   static_cast<const void*>(chain), input.StorageId(),
                   input.num_rows(), input.num_features(),
                   static_cast<unsigned long long>(input.ViewFingerprint()));
}

bool TransformCache::SameView(const Dataset& a, const Dataset& b) {
  const std::vector<size_t>* ia = a.RowIndex();
  const std::vector<size_t>* ib = b.RowIndex();
  if (ia == ib) return true;  // Same index object, or both contiguous.
  if (ia == nullptr || ib == nullptr) {
    // One contiguous, one indexed: equal only if the index is the
    // identity over the same row count (fingerprints differ then anyway —
    // treat as distinct, a miss just refits).
    return false;
  }
  return *ia == *ib;
}

size_t TransformCache::EstimateBytes(const TransformCacheEntry& entry,
                                     const std::string& chain_signature) {
  size_t bytes = sizeof(TransformCacheEntry) + chain_signature.size();
  // Transformed matrix; counted dense even when it still shares the input
  // storage (conservative over-estimate keeps the bound honest).
  bytes += static_cast<size_t>(entry.transformed.FeatureBytes());
  bytes += entry.transformed.num_rows() * sizeof(int);  // Labels.
  // Pinned input view: row index + labels.
  bytes += entry.input.num_rows() * (sizeof(size_t) + sizeof(int));
  bytes += entry.tape.ApproxBytes();
  bytes += entry.transformers.size() * 256;  // Fitted-state ballpark.
  return bytes;
}

std::shared_ptr<const TransformCacheEntry> TransformCache::Lookup(
    const Dataset& input, const std::string& chain_signature) {
  const std::string key = MapKey(input, chain_signature);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end() || !SameView(it->second->second->input, input)) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // Mark most recently used.
  ++hits_;
  return it->second->second;
}

std::shared_ptr<const TransformCacheEntry> TransformCache::AdmitLocked(
    std::string key, std::shared_ptr<const TransformCacheEntry> entry) {
  if (entry->bytes > max_bytes_) {
    ++evictions_;  // Bigger than the whole budget: never admitted.
    return nullptr;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Racing inserts of the same chain (parallel sweeps): keep the
    // incumbent, it is already shared with other pipelines.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(std::move(key), std::move(entry));
  index_[lru_.front().first] = lru_.begin();
  bytes_ += lru_.front().second->bytes;
  ++insertions_;
  std::shared_ptr<const TransformCacheEntry> admitted = lru_.front().second;
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    const auto& victim = lru_.back();
    bytes_ -= victim.second->bytes;
    index_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
  return admitted;
}

std::shared_ptr<const TransformCacheEntry> TransformCache::Insert(
    const Dataset& input, const std::string& chain_signature,
    std::vector<std::shared_ptr<Transformer>> transformers,
    Dataset transformed, ChargeTape tape) {
  auto entry = std::make_shared<TransformCacheEntry>();
  entry->input = input;
  entry->transformers = std::move(transformers);
  entry->transformed = std::move(transformed);
  entry->tape = std::move(tape);
  entry->bytes = EstimateBytes(*entry, chain_signature);

  std::string key = MapKey(input, chain_signature);
  std::lock_guard<std::mutex> lock(mutex_);
  return AdmitLocked(std::move(key), std::move(entry));
}

std::shared_ptr<const TransformCacheEntry> TransformCache::LookupPredict(
    const std::shared_ptr<const TransformCacheEntry>& chain,
    const Dataset& input) {
  const std::string key = PredictKey(chain.get(), input);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end() || it->second->second->parent != chain ||
      !SameView(it->second->second->input, input)) {
    ++predict_misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++predict_hits_;
  return it->second->second;
}

void TransformCache::InsertPredict(
    const std::shared_ptr<const TransformCacheEntry>& chain,
    const Dataset& input, Dataset transformed, ChargeTape tape) {
  auto entry = std::make_shared<TransformCacheEntry>();
  entry->input = input;
  entry->transformed = std::move(transformed);
  entry->tape = std::move(tape);
  entry->parent = chain;  // Pins the chain's address for the key.
  entry->bytes = EstimateBytes(*entry, /*chain_signature=*/"");

  std::string key = PredictKey(chain.get(), input);
  std::lock_guard<std::mutex> lock(mutex_);
  AdmitLocked(std::move(key), std::move(entry));
}

TransformCacheStats TransformCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TransformCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.predict_hits = predict_hits_;
  stats.predict_misses = predict_misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace green
