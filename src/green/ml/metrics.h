#ifndef GREEN_ML_METRICS_H_
#define GREEN_ML_METRICS_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Fraction of correct predictions.
double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted);

/// Mean per-class recall — the paper's primary quality metric because it
/// "can handle multi-class and unbalanced classification problems".
/// Classes absent from `truth` are skipped.
double BalancedAccuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted, int num_classes);

/// Multi-class cross-entropy with probability clipping.
double LogLoss(const std::vector<int>& truth, const ProbaMatrix& proba);

/// Macro-averaged F1.
double MacroF1(const std::vector<int>& truth,
               const std::vector<int>& predicted, int num_classes);

/// Row-major confusion matrix: counts[truth][predicted].
std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes);

}  // namespace green

#endif  // GREEN_ML_METRICS_H_
