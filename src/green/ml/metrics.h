#ifndef GREEN_ML_METRICS_H_
#define GREEN_ML_METRICS_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Fraction of correct predictions.
double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted);

/// Mean per-class recall — the paper's primary quality metric because it
/// "can handle multi-class and unbalanced classification problems".
/// Classes absent from `truth` are skipped.
double BalancedAccuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted, int num_classes);

/// Multi-class cross-entropy with probability clipping: probabilities are
/// clamped into [1e-15, 1 - 1e-15] before the log, and a truth class
/// beyond the probability row's width (e.g. a class absent from the
/// training data) scores as the clamp floor instead of reading out of
/// bounds.
double LogLoss(const std::vector<int>& truth, const ProbaMatrix& proba);

/// Macro-averaged F1.
double MacroF1(const std::vector<int>& truth,
               const std::vector<int>& predicted, int num_classes);

/// Row-major confusion matrix: counts[truth][predicted].
std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes);

// --- regression metrics ---

/// Root mean squared error.
double Rmse(const std::vector<double>& truth,
            const std::vector<double>& predicted);

/// Mean absolute error.
double Mae(const std::vector<double>& truth,
           const std::vector<double>& predicted);

/// Coefficient of determination; 0 when truth has zero variance and the
/// prediction is not exact.
double R2(const std::vector<double>& truth,
          const std::vector<double>& predicted);

// --- task dispatch ---

/// Name of the task's primary quality metric: "balanced_accuracy" for
/// classification (the paper's choice), "rmse" for regression.
const char* PrimaryMetricName(TaskType task);

/// The primary metric of `proba` against `truth`'s labels or targets:
/// balanced accuracy of the argmax for classification, RMSE of column 0
/// for regression (regression predictions are n-by-1 ProbaMatrix rows).
double PrimaryMetric(const Dataset& truth, const ProbaMatrix& proba);

/// Higher-is-better version of PrimaryMetric: balanced accuracy as-is,
/// negated RMSE for regression. Every search strategy (Caruana, BO,
/// NSGA-II, successive halving, median pruning) maximizes this score, so
/// regression losses need no special-casing downstream.
double PrimaryScore(const Dataset& truth, const ProbaMatrix& proba);

/// Converts a higher-is-better score back to the reported metric value
/// (identity for classification, negation for regression).
double MetricFromScore(TaskType task, double score);

}  // namespace green

#endif  // GREEN_ML_METRICS_H_
