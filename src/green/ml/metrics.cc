#include "green/ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "green/common/logging.h"

namespace green {

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  GREEN_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double BalancedAccuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted,
                        int num_classes) {
  GREEN_CHECK(truth.size() == predicted.size());
  std::vector<int> support(static_cast<size_t>(num_classes), 0);
  std::vector<int> hits(static_cast<size_t>(num_classes), 0);
  for (size_t i = 0; i < truth.size(); ++i) {
    const size_t c = static_cast<size_t>(truth[i]);
    GREEN_CHECK(truth[i] >= 0 && truth[i] < num_classes);
    ++support[c];
    if (truth[i] == predicted[i]) ++hits[c];
  }
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    if (support[static_cast<size_t>(c)] == 0) continue;
    sum += static_cast<double>(hits[static_cast<size_t>(c)]) /
           static_cast<double>(support[static_cast<size_t>(c)]);
    ++present;
  }
  return present > 0 ? sum / static_cast<double>(present) : 0.0;
}

double LogLoss(const std::vector<int>& truth, const ProbaMatrix& proba) {
  GREEN_CHECK(truth.size() == proba.size());
  if (truth.empty()) return 0.0;
  constexpr double kEps = 1e-15;
  double loss = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    GREEN_CHECK(truth[i] >= 0);
    const size_t c = static_cast<size_t>(truth[i]);
    // A truth class the model never saw (row too narrow) gets the clamp
    // floor: maximally wrong, but finite and well-defined.
    const double raw = c < proba[i].size() ? proba[i][c] : 0.0;
    const double p = std::clamp(raw, kEps, 1.0 - kEps);
    loss -= std::log(p);
  }
  return loss / static_cast<double>(truth.size());
}

double MacroF1(const std::vector<int>& truth,
               const std::vector<int>& predicted, int num_classes) {
  const auto cm = ConfusionMatrix(truth, predicted, num_classes);
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    const size_t cc = static_cast<size_t>(c);
    int tp = cm[cc][cc];
    int fp = 0;
    int fn = 0;
    for (int o = 0; o < num_classes; ++o) {
      const size_t oo = static_cast<size_t>(o);
      if (o != c) {
        fp += cm[oo][cc];
        fn += cm[cc][oo];
      }
    }
    if (tp + fn == 0) continue;  // Class absent from truth.
    ++present;
    const double precision =
        (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    const double recall = static_cast<double>(tp) / (tp + fn);
    if (precision + recall > 0.0) {
      sum += 2.0 * precision * recall / (precision + recall);
    }
  }
  return present > 0 ? sum / static_cast<double>(present) : 0.0;
}

std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes) {
  GREEN_CHECK(truth.size() == predicted.size());
  std::vector<std::vector<int>> cm(
      static_cast<size_t>(num_classes),
      std::vector<int>(static_cast<size_t>(num_classes), 0));
  for (size_t i = 0; i < truth.size(); ++i) {
    GREEN_CHECK(truth[i] >= 0 && truth[i] < num_classes);
    GREEN_CHECK(predicted[i] >= 0 && predicted[i] < num_classes);
    ++cm[static_cast<size_t>(truth[i])][static_cast<size_t>(predicted[i])];
  }
  return cm;
}

double Rmse(const std::vector<double>& truth,
            const std::vector<double>& predicted) {
  GREEN_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  double sse = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double e = truth[i] - predicted[i];
    sse += e * e;
  }
  return std::sqrt(sse / static_cast<double>(truth.size()));
}

double Mae(const std::vector<double>& truth,
           const std::vector<double>& predicted) {
  GREEN_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  double sae = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    sae += std::fabs(truth[i] - predicted[i]);
  }
  return sae / static_cast<double>(truth.size());
}

double R2(const std::vector<double>& truth,
          const std::vector<double>& predicted) {
  GREEN_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  double mean = 0.0;
  for (double y : truth) mean += y;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double e = truth[i] - predicted[i];
    ss_res += e * e;
    const double d = truth[i] - mean;
    ss_tot += d * d;
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

const char* PrimaryMetricName(TaskType task) {
  return task == TaskType::kRegression ? "rmse" : "balanced_accuracy";
}

namespace {

std::vector<double> RegressionValues(const ProbaMatrix& proba) {
  std::vector<double> values(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    GREEN_CHECK(!proba[i].empty());
    values[i] = proba[i][0];
  }
  return values;
}

}  // namespace

double PrimaryMetric(const Dataset& truth, const ProbaMatrix& proba) {
  GREEN_CHECK(truth.num_rows() == proba.size());
  if (truth.task() == TaskType::kRegression) {
    return Rmse(truth.targets(), RegressionValues(proba));
  }
  std::vector<int> preds(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    size_t best = 0;
    for (size_t c = 1; c < proba[i].size(); ++c) {
      if (proba[i][c] > proba[i][best]) best = c;
    }
    preds[i] = static_cast<int>(best);
  }
  return BalancedAccuracy(truth.labels(), preds, truth.num_classes());
}

double PrimaryScore(const Dataset& truth, const ProbaMatrix& proba) {
  const double metric = PrimaryMetric(truth, proba);
  return truth.task() == TaskType::kRegression ? -metric : metric;
}

double MetricFromScore(TaskType task, double score) {
  return task == TaskType::kRegression ? -score : score;
}

}  // namespace green
