#include "green/ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "green/common/logging.h"

namespace green {

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  GREEN_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double BalancedAccuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted,
                        int num_classes) {
  GREEN_CHECK(truth.size() == predicted.size());
  std::vector<int> support(static_cast<size_t>(num_classes), 0);
  std::vector<int> hits(static_cast<size_t>(num_classes), 0);
  for (size_t i = 0; i < truth.size(); ++i) {
    const size_t c = static_cast<size_t>(truth[i]);
    GREEN_CHECK(truth[i] >= 0 && truth[i] < num_classes);
    ++support[c];
    if (truth[i] == predicted[i]) ++hits[c];
  }
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    if (support[static_cast<size_t>(c)] == 0) continue;
    sum += static_cast<double>(hits[static_cast<size_t>(c)]) /
           static_cast<double>(support[static_cast<size_t>(c)]);
    ++present;
  }
  return present > 0 ? sum / static_cast<double>(present) : 0.0;
}

double LogLoss(const std::vector<int>& truth, const ProbaMatrix& proba) {
  GREEN_CHECK(truth.size() == proba.size());
  if (truth.empty()) return 0.0;
  double loss = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const size_t c = static_cast<size_t>(truth[i]);
    GREEN_CHECK(c < proba[i].size());
    const double p = std::clamp(proba[i][c], 1e-15, 1.0);
    loss -= std::log(p);
  }
  return loss / static_cast<double>(truth.size());
}

double MacroF1(const std::vector<int>& truth,
               const std::vector<int>& predicted, int num_classes) {
  const auto cm = ConfusionMatrix(truth, predicted, num_classes);
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    const size_t cc = static_cast<size_t>(c);
    int tp = cm[cc][cc];
    int fp = 0;
    int fn = 0;
    for (int o = 0; o < num_classes; ++o) {
      const size_t oo = static_cast<size_t>(o);
      if (o != c) {
        fp += cm[oo][cc];
        fn += cm[cc][oo];
      }
    }
    if (tp + fn == 0) continue;  // Class absent from truth.
    ++present;
    const double precision =
        (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    const double recall = static_cast<double>(tp) / (tp + fn);
    if (precision + recall > 0.0) {
      sum += 2.0 * precision * recall / (precision + recall);
    }
  }
  return present > 0 ? sum / static_cast<double>(present) : 0.0;
}

std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes) {
  GREEN_CHECK(truth.size() == predicted.size());
  std::vector<std::vector<int>> cm(
      static_cast<size_t>(num_classes),
      std::vector<int>(static_cast<size_t>(num_classes), 0));
  for (size_t i = 0; i < truth.size(); ++i) {
    GREEN_CHECK(truth[i] >= 0 && truth[i] < num_classes);
    GREEN_CHECK(predicted[i] >= 0 && predicted[i] < num_classes);
    ++cm[static_cast<size_t>(truth[i])][static_cast<size_t>(predicted[i])];
  }
  return cm;
}

}  // namespace green
