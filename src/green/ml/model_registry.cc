#include "green/ml/model_registry.h"

#include <cmath>
#include <memory>

#include "green/common/stringutil.h"
#include "green/ml/models/adaboost.h"
#include "green/ml/models/attention_few_shot.h"
#include "green/ml/models/decision_tree.h"
#include "green/ml/models/extra_trees.h"
#include "green/ml/models/gradient_boosting.h"
#include "green/ml/models/knn.h"
#include "green/ml/models/logistic_regression.h"
#include "green/ml/models/mlp.h"
#include "green/ml/models/naive_bayes.h"
#include "green/ml/models/random_forest.h"
#include "green/ml/preprocess/binning.h"
#include "green/ml/preprocess/feature_selection.h"
#include "green/ml/preprocess/imputer.h"
#include "green/ml/preprocess/one_hot.h"
#include "green/ml/preprocess/pca.h"
#include "green/ml/preprocess/scaler.h"

namespace green {

namespace {

double GetParam(const std::map<std::string, double>& params,
                const std::string& key, double fallback) {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

int GetInt(const std::map<std::string, double>& params,
           const std::string& key, int fallback) {
  return static_cast<int>(
      GetParam(params, key, static_cast<double>(fallback)));
}

Result<std::unique_ptr<Estimator>> BuildModel(
    const PipelineConfig& config) {
  const auto& p = config.params;
  if (config.model == "decision_tree") {
    DecisionTreeParams dt;
    dt.max_depth = GetInt(p, "max_depth", 8);
    dt.min_samples_leaf = GetInt(p, "min_samples_leaf", 2);
    dt.max_features_fraction = GetParam(p, "max_features_fraction", 0.0);
    dt.seed = config.seed;
    return std::unique_ptr<Estimator>(new DecisionTree(dt));
  }
  if (config.model == "random_forest") {
    RandomForestParams rf;
    rf.num_trees = GetInt(p, "num_trees", 32);
    rf.max_depth = GetInt(p, "max_depth", 10);
    rf.min_samples_leaf = GetInt(p, "min_samples_leaf", 2);
    rf.max_features_fraction = GetParam(p, "max_features_fraction", 0.0);
    rf.bootstrap_fraction = GetParam(p, "bootstrap_fraction", 1.0);
    rf.seed = config.seed;
    return std::unique_ptr<Estimator>(new RandomForest(rf));
  }
  if (config.model == "extra_trees") {
    ExtraTreesParams et;
    et.num_trees = GetInt(p, "num_trees", 32);
    et.max_depth = GetInt(p, "max_depth", 10);
    et.min_samples_leaf = GetInt(p, "min_samples_leaf", 2);
    et.max_features_fraction = GetParam(p, "max_features_fraction", 0.0);
    et.seed = config.seed;
    return std::unique_ptr<Estimator>(new ExtraTrees(et));
  }
  if (config.model == "gradient_boosting") {
    GradientBoostingParams gb;
    gb.num_rounds = GetInt(p, "num_rounds", 40);
    gb.max_depth = GetInt(p, "max_depth", 3);
    gb.learning_rate = GetParam(p, "learning_rate", 0.15);
    gb.min_samples_leaf = GetInt(p, "min_samples_leaf", 4);
    gb.subsample = GetParam(p, "subsample", 1.0);
    gb.seed = config.seed;
    return std::unique_ptr<Estimator>(new GradientBoosting(gb));
  }
  if (config.model == "logistic_regression") {
    LogisticRegressionParams lr;
    lr.epochs = GetInt(p, "epochs", 30);
    lr.learning_rate = GetParam(p, "learning_rate", 0.1);
    lr.l2 = GetParam(p, "l2", 1e-4);
    lr.batch_size = GetInt(p, "batch_size", 32);
    lr.seed = config.seed;
    return std::unique_ptr<Estimator>(new LogisticRegression(lr));
  }
  if (config.model == "knn") {
    KnnParams knn;
    knn.k = GetInt(p, "k", 5);
    knn.distance_weighted = GetParam(p, "distance_weighted", 0.0) > 0.5;
    return std::unique_ptr<Estimator>(new Knn(knn));
  }
  if (config.model == "naive_bayes") {
    NaiveBayesParams nb;
    nb.var_smoothing = GetParam(p, "var_smoothing", 1e-9);
    return std::unique_ptr<Estimator>(new GaussianNaiveBayes(nb));
  }
  if (config.model == "mlp") {
    MlpParams mlp;
    mlp.hidden_units = GetInt(p, "hidden_units", 32);
    mlp.epochs = GetInt(p, "epochs", 40);
    mlp.learning_rate = GetParam(p, "learning_rate", 0.05);
    mlp.l2 = GetParam(p, "l2", 1e-5);
    mlp.batch_size = GetInt(p, "batch_size", 32);
    mlp.seed = config.seed;
    return std::unique_ptr<Estimator>(new Mlp(mlp));
  }
  if (config.model == "adaboost") {
    AdaBoostParams ab;
    ab.num_rounds = GetInt(p, "num_rounds", 30);
    ab.max_depth = GetInt(p, "max_depth", 2);
    ab.learning_rate = GetParam(p, "learning_rate", 1.0);
    ab.seed = config.seed;
    return std::unique_ptr<Estimator>(new AdaBoost(ab));
  }
  if (config.model == "attention_few_shot") {
    AttentionFewShotParams af;
    af.embed_dim = GetInt(p, "embed_dim", 48);
    af.num_layers = GetInt(p, "num_layers", 3);
    af.max_context = GetInt(p, "max_context", 1024);
    af.temperature = GetParam(p, "temperature", 0.35);
    return std::unique_ptr<Estimator>(new AttentionFewShot(af));
  }
  return Status::InvalidArgument("unknown model: " + config.model);
}

}  // namespace

std::string PipelineConfig::Describe() const {
  std::string out = model + "(";
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("%s=%.4g", key.c_str(), value);
  }
  out += ")";
  std::vector<std::string> preps;
  if (impute) preps.push_back("imp");
  if (scaler != "none") preps.push_back(scaler);
  if (one_hot) preps.push_back("1hot");
  if (variance_threshold >= 0.0) preps.push_back("var");
  if (select_k_best > 0) {
    preps.push_back(StrFormat("k%d", select_k_best));
  }
  if (pca_components > 0) {
    preps.push_back(StrFormat("pca%d", pca_components));
  }
  if (quantile_binning) preps.push_back("bin");
  if (!preps.empty()) out = Join(preps, "+") + "|" + out;
  return out;
}

const std::vector<std::string>& KnownModels() {
  static const std::vector<std::string>* kModels =
      new std::vector<std::string>{
          "decision_tree",  "random_forest",       "extra_trees",
          "gradient_boosting", "adaboost",         "logistic_regression",
          "knn",            "naive_bayes",         "mlp",
          "attention_few_shot",
      };
  return *kModels;
}

bool ModelSupportsTask(const std::string& model, TaskType task) {
  if (IsClassification(task)) return true;
  return model == "decision_tree" || model == "random_forest" ||
         model == "extra_trees" || model == "gradient_boosting" ||
         model == "logistic_regression" || model == "knn" ||
         model == "mlp";
}

std::vector<std::string> FilterModelsForTask(
    const std::vector<std::string>& models, TaskType task) {
  std::vector<std::string> out;
  out.reserve(models.size());
  for (const std::string& m : models) {
    if (ModelSupportsTask(m, task)) out.push_back(m);
  }
  return out;
}

Result<Pipeline> BuildPipeline(const PipelineConfig& config) {
  Pipeline pipeline;
  if (config.impute) {
    pipeline.AddTransformer(std::make_unique<MeanModeImputer>());
  }
  if (config.one_hot) {
    pipeline.AddTransformer(std::make_unique<OneHotEncoder>());
  }
  if (config.scaler == "standard") {
    pipeline.AddTransformer(
        std::make_unique<Scaler>(ScalerKind::kStandard));
  } else if (config.scaler == "minmax") {
    pipeline.AddTransformer(std::make_unique<Scaler>(ScalerKind::kMinMax));
  } else if (config.scaler != "none") {
    return Status::InvalidArgument("unknown scaler: " + config.scaler);
  }
  if (config.quantile_binning) {
    pipeline.AddTransformer(std::make_unique<QuantileBinner>());
  }
  if (config.variance_threshold >= 0.0) {
    pipeline.AddTransformer(
        std::make_unique<VarianceThreshold>(config.variance_threshold));
  }
  if (config.select_k_best > 0) {
    pipeline.AddTransformer(std::make_unique<SelectKBest>(
        static_cast<size_t>(config.select_k_best)));
  }
  if (config.pca_components > 0) {
    pipeline.AddTransformer(std::make_unique<Pca>(
        static_cast<size_t>(config.pca_components)));
  }
  GREEN_ASSIGN_OR_RETURN(std::unique_ptr<Estimator> model,
                         BuildModel(config));
  pipeline.SetModel(std::move(model));
  return pipeline;
}

double EstimateTrainCost(const PipelineConfig& config, size_t rows,
                         size_t features, int classes) {
  const double n = static_cast<double>(rows);
  const double d = static_cast<double>(features);
  const double k = static_cast<double>(classes);
  const auto& p = config.params;
  double cost = 2.0 * n * d;  // Preprocessing floor.
  if (config.model == "decision_tree") {
    cost += n * std::log2(std::max(2.0, n)) * d *
            GetParam(p, "max_depth", 8);
  } else if (config.model == "random_forest" ||
             config.model == "extra_trees") {
    const double sqrt_frac = std::sqrt(d) / std::max(1.0, d);
    const double frac = GetParam(p, "max_features_fraction", sqrt_frac);
    cost += GetParam(p, "num_trees", 32) * n *
            std::log2(std::max(2.0, n)) * d *
            (frac > 0 ? frac : sqrt_frac) * GetParam(p, "max_depth", 10) *
            (config.model == "extra_trees" ? 0.25 : 1.0);
  } else if (config.model == "gradient_boosting") {
    cost += GetParam(p, "num_rounds", 40) * k * n *
            std::log2(std::max(2.0, n)) * d *
            GetParam(p, "max_depth", 3) * 0.5;
  } else if (config.model == "adaboost") {
    cost += GetParam(p, "num_rounds", 30) * n *
            std::log2(std::max(2.0, n)) * d *
            GetParam(p, "max_depth", 2);
  } else if (config.model == "logistic_regression") {
    cost += GetParam(p, "epochs", 30) * 4.0 * n * d * k;
  } else if (config.model == "knn") {
    cost += n;
  } else if (config.model == "naive_bayes") {
    cost += 4.0 * n * d;
  } else if (config.model == "mlp") {
    cost += GetParam(p, "epochs", 40) * 4.0 * n *
            (d + k) * GetParam(p, "hidden_units", 32);
  } else if (config.model == "attention_few_shot") {
    cost += n;
  }
  return cost;
}

double EstimatePredictCost(const PipelineConfig& config, size_t train_rows,
                           size_t predict_rows, size_t features,
                           int classes) {
  const double n = static_cast<double>(train_rows);
  const double m = static_cast<double>(predict_rows);
  const double d = static_cast<double>(features);
  const double k = static_cast<double>(classes);
  const auto& p = config.params;
  double per_row = 2.0 * d;  // Preprocessing floor.
  if (config.model == "decision_tree") {
    per_row += 2.0 * GetParam(p, "max_depth", 8);
  } else if (config.model == "random_forest" ||
             config.model == "extra_trees") {
    per_row += GetParam(p, "num_trees", 32) *
               (2.0 * GetParam(p, "max_depth", 10) + k);
  } else if (config.model == "gradient_boosting") {
    per_row += 2.0 * GetParam(p, "num_rounds", 40) * k *
               GetParam(p, "max_depth", 3);
  } else if (config.model == "adaboost") {
    per_row += 2.0 * GetParam(p, "num_rounds", 30) *
               GetParam(p, "max_depth", 2);
  } else if (config.model == "logistic_regression") {
    per_row += 2.0 * d * k;
  } else if (config.model == "knn") {
    per_row += 3.0 * n * d;
  } else if (config.model == "naive_bayes") {
    per_row += 4.0 * d * k;
  } else if (config.model == "mlp") {
    const double h = GetParam(p, "hidden_units", 32);
    per_row += 2.0 * h * (d + k);
  } else if (config.model == "attention_few_shot") {
    per_row += 3.0 * std::min(n, 1024.0) *
               (GetParam(p, "embed_dim", 48) + d);
  }
  return per_row * m;
}

}  // namespace green
