#include "green/ml/kernels/histogram.h"

#include <algorithm>

namespace green {

HistogramSplit HistogramSplitScanCls(const double* vals,
                                     const int32_t* labels, size_t n,
                                     int k, double lo, double hi, int bins,
                                     int min_samples_leaf,
                                     double* scratch) {
  const size_t kk = static_cast<size_t>(k);
  const size_t nbins = static_cast<size_t>(bins);
  double* counts = scratch;              // bins x k bin/class counts
  double* left = scratch + nbins * kk;   // running left-side class counts
  double* total_c = left + kk;           // per-class totals
  std::fill(counts, counts + nbins * kk, 0.0);
  std::fill(left, left + 2 * kk, 0.0);

  const double inv_width = static_cast<double>(bins) / (hi - lo);
  for (size_t i = 0; i < n; ++i) {
    size_t b = static_cast<size_t>((vals[i] - lo) * inv_width);
    if (b >= nbins) b = nbins - 1;  // v == hi lands past the last edge.
    counts[b * kk + static_cast<size_t>(labels[i])] += 1.0;
  }
  for (size_t b = 0; b < nbins; ++b) {
    for (size_t c = 0; c < kk; ++c) total_c[c] += counts[b * kk + c];
  }

  HistogramSplit best;
  const double total = static_cast<double>(n);
  const double width = (hi - lo) / static_cast<double>(bins);
  double n_left = 0.0;
  for (size_t b = 0; b + 1 < nbins; ++b) {
    double bin_total = 0.0;
    for (size_t c = 0; c < kk; ++c) {
      const double cnt = counts[b * kk + c];
      left[c] += cnt;
      bin_total += cnt;
    }
    n_left += bin_total;
    if (bin_total <= 0.0) continue;  // Edge repartitions nothing.
    const double n_right = total - n_left;
    if (n_left < min_samples_leaf || n_right < min_samples_leaf) continue;
    double left_gini = 1.0;
    double right_gini = 1.0;
    for (size_t c = 0; c < kk; ++c) {
      const double pl = left[c] / n_left;
      const double pr = (total_c[c] - left[c]) / n_right;
      left_gini -= pl * pl;
      right_gini -= pr * pr;
    }
    const double score =
        (n_left * left_gini + n_right * right_gini) / total;
    if (!best.found || score < best.score - 1e-12) {
      best.found = true;
      best.score = score;
      best.threshold = lo + width * static_cast<double>(b + 1);
      best.n_left = n_left;
    }
  }
  return best;
}

}  // namespace green
