#include "green/ml/kernels/tree_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "green/ml/kernels/histogram.h"

// Bit-identity contract (see kernels.h): every loop here reproduces the
// reference builders in decision_tree.cc / gradient_boosting.cc — same
// RNG draws, same candidate skip conditions, same strict-improvement
// comparisons, and the same accumulation order for every floating-point
// sum that reaches a model output. Integer class counts are order-free,
// so those loops may run over any enumeration of a node's rows; target
// sums are NOT, so node-order slot lists are carried down the recursion
// alongside the presorted per-feature lists. Work (`*flops`) is charged
// from logical dimensions at the same program points as the reference,
// never from what the kernel actually executes.

namespace green {

namespace {

/// Gini impurity of a count vector with total `n` (mirrors the reference
/// helper in decision_tree.cc bit-for-bit).
double Gini(const std::vector<double>& counts, double n) {
  if (n <= 0.0) return 0.0;
  double g = 1.0;
  for (double c : counts) {
    const double p = c / n;
    g -= p * p;
  }
  return g;
}

void Normalize(std::vector<double>* v) {
  double sum = 0.0;
  for (double x : *v) sum += x;
  if (sum <= 0.0) {
    const double u = 1.0 / static_cast<double>(v->size());
    for (double& x : *v) x = u;
    return;
  }
  for (double& x : *v) x /= sum;
}

enum class TreeMode { kExact, kApprox, kHistogram };

TreeMode ModeFor(const TreeKernelParams& p) {
  if (p.random_thresholds) return TreeMode::kApprox;
  if (p.histogram_bins > 0) return TreeMode::kHistogram;
  return TreeMode::kExact;
}

/// Per-tree working set. A "slot" is a position in the original row
/// sample (duplicates from bootstrap sampling get distinct slots), so
/// every per-slot array is immune to repeated row ids. Exact mode keeps
/// d presorted (slot, value) stripes that are stable-partitioned down
/// the recursion; approx/histogram modes keep the gathered column-major
/// matrix instead and gather each node's column contiguously once.
struct TreeWorkspace {
  size_t m = 0;
  size_t d = 0;
  uint32_t* rid = nullptr;    ///< slot -> original row id
  int32_t* lab = nullptr;     ///< slot -> label (classification)
  double* tgt = nullptr;      ///< slot -> target (regression / boosting)
  uint32_t* nslot = nullptr;  ///< node-order slot list (all modes)
  uint8_t* flag = nullptr;    ///< per-slot left/right partition flag
  uint32_t* uscratch = nullptr;
  double* dscratch = nullptr;
  uint32_t* spos = nullptr;  ///< d x m sorted slots (exact mode)
  double* sval = nullptr;    ///< d x m sorted values (exact mode)
  double* colT = nullptr;    ///< d x m column-major values (approx/hist)
  double* vals = nullptr;    ///< per-node contiguous column gather
  int32_t* nlab = nullptr;   ///< per-node contiguous labels (approx/hist)
  double* ntgt = nullptr;    ///< per-node contiguous targets (approx)
  double* hist = nullptr;    ///< histogram scratch, (bins + 2) * k
};

/// One row-major pass over the sample writing the transposed d x m
/// column-major matrix; every later column scan is then contiguous.
void GatherTransposed(const Dataset& train, const uint32_t* rid, size_t m,
                      size_t d, double* colT) {
  for (size_t slot = 0; slot < m; ++slot) {
    const double* row = train.RowPtr(rid[slot]);
    for (size_t f = 0; f < d; ++f) colT[f * m + slot] = row[f];
  }
}

/// Sorts each feature stripe by (value, row id) — the order std::sort on
/// (value, row) pairs produces in the reference; slots with fully equal
/// keys are duplicates of one row and therefore interchangeable.
void PresortStripes(const uint32_t* rid, const double* colT, size_t m,
                    size_t d, uint32_t* spos, double* sval) {
  for (size_t f = 0; f < d; ++f) {
    const double* colf = colT + f * m;
    uint32_t* sp = spos + f * m;
    std::iota(sp, sp + m, uint32_t{0});
    std::sort(sp, sp + m, [colf, rid](uint32_t a, uint32_t b) {
      const double va = colf[a];
      const double vb = colf[b];
      if (va != vb) return va < vb;
      return rid[a] < rid[b];
    });
    double* sv = sval + f * m;
    for (size_t i = 0; i < m; ++i) sv[i] = colf[sp[i]];
  }
}

void InitWorkspace(const Dataset& train, const std::vector<size_t>& rows,
                   TreeMode mode, bool classification,
                   const std::vector<double>* ext_targets, int hist_bins,
                   int k, Arena* arena, TreeWorkspace* ws) {
  const size_t m = rows.size();
  const size_t d = train.num_features();
  ws->m = m;
  ws->d = d;
  ws->rid = arena->AllocArray<uint32_t>(m);
  for (size_t i = 0; i < m; ++i) {
    ws->rid[i] = static_cast<uint32_t>(rows[i]);
  }
  if (classification) {
    ws->lab = arena->AllocArray<int32_t>(m);
    for (size_t i = 0; i < m; ++i) {
      ws->lab[i] = train.Label(ws->rid[i]);
    }
  } else {
    ws->tgt = arena->AllocArray<double>(m);
    for (size_t i = 0; i < m; ++i) {
      ws->tgt[i] = ext_targets != nullptr
                       ? (*ext_targets)[ws->rid[i]]
                       : train.Target(ws->rid[i]);
    }
  }
  ws->nslot = arena->AllocArray<uint32_t>(m);
  std::iota(ws->nslot, ws->nslot + m, uint32_t{0});
  ws->flag = arena->AllocArray<uint8_t>(m);
  ws->uscratch = arena->AllocArray<uint32_t>(m);
  ws->dscratch = arena->AllocArray<double>(m);

  if (mode == TreeMode::kExact) {
    ws->spos = arena->AllocArray<uint32_t>(d * m);
    ws->sval = arena->AllocArray<double>(d * m);
    // The column gather only feeds the presort here; reclaim it.
    ArenaScope gather_scope(arena);
    double* colT = arena->AllocArray<double>(d * m);
    GatherTransposed(train, ws->rid, m, d, colT);
    PresortStripes(ws->rid, colT, m, d, ws->spos, ws->sval);
  } else {
    ws->colT = arena->AllocArray<double>(d * m);
    GatherTransposed(train, ws->rid, m, d, ws->colT);
    ws->vals = arena->AllocArray<double>(m);
    if (classification) {
      ws->nlab = arena->AllocArray<int32_t>(m);
    } else {
      ws->ntgt = arena->AllocArray<double>(m);
    }
    if (mode == TreeMode::kHistogram) {
      ws->hist = arena->AllocArray<double>(
          (static_cast<size_t>(hist_bins) + 2) * static_cast<size_t>(k));
    }
  }
}

/// Stable-partitions the node-order slot list [lo, hi) by per-slot flag
/// (1 = left). Returns the left-block size.
size_t PartitionNodeOrder(TreeWorkspace* ws, size_t lo, size_t hi) {
  uint32_t* ns = ws->nslot + lo;
  const size_t len = hi - lo;
  size_t nl = 0;
  size_t nr = 0;
  for (size_t i = 0; i < len; ++i) {
    const uint32_t slot = ns[i];
    if (ws->flag[slot]) {
      ns[nl++] = slot;
    } else {
      ws->uscratch[nr++] = slot;
    }
  }
  std::memcpy(ns + nl, ws->uscratch, nr * sizeof(uint32_t));
  return nl;
}

/// Stable-partitions every presorted stripe's [lo, hi) subrange by the
/// per-slot flags. Left-compaction writes in place (the write index
/// never passes the read index); the right side stages through scratch.
/// A sorted subsequence filtered stably stays sorted, so each child
/// stripe needs no re-sort.
void PartitionStripes(TreeWorkspace* ws, size_t lo, size_t hi) {
  const size_t len = hi - lo;
  for (size_t f = 0; f < ws->d; ++f) {
    uint32_t* sp = ws->spos + f * ws->m + lo;
    double* sv = ws->sval + f * ws->m + lo;
    size_t nl = 0;
    size_t nr = 0;
    for (size_t i = 0; i < len; ++i) {
      const uint32_t slot = sp[i];
      if (ws->flag[slot]) {
        sp[nl] = slot;
        sv[nl] = sv[i];
        ++nl;
      } else {
        ws->uscratch[nr] = slot;
        ws->dscratch[nr] = sv[i];
        ++nr;
      }
    }
    std::memcpy(sp + nl, ws->uscratch, nr * sizeof(uint32_t));
    std::memcpy(sv + nl, ws->dscratch, nr * sizeof(double));
  }
}

/// Shared builder state for the three tree flavors.
struct TreeBuilder {
  const TreeKernelParams* params = nullptr;
  TreeMode mode = TreeMode::kExact;
  Rng* rng = nullptr;
  double* flops = nullptr;
  TreeNodeSink* sink = nullptr;
  TreeWorkspace ws;

  // Reused per-node scratch (consumed before recursing).
  std::vector<double> counts;
  std::vector<double> left_counts;
  std::vector<double> right_counts;
  std::vector<size_t> features;

  /// Candidate feature subset with the reference's exact RNG
  /// consumption: the full index vector is shuffled, then truncated.
  void SelectFeatures(size_t d) {
    features.resize(d);
    std::iota(features.begin(), features.end(), size_t{0});
    if (params->max_features_fraction > 0.0 &&
        params->max_features_fraction < 1.0) {
      const size_t d_used = std::max<size_t>(
          1,
          static_cast<size_t>(std::ceil(params->max_features_fraction *
                                        static_cast<double>(d))));
      rng->Shuffle(&features);
      features.resize(d_used);
    }
  }

  /// Gathers node column `f` contiguously (the reference's first At()
  /// scan) returning min/max; the split scan then reads the gathered
  /// copy instead of re-fetching every value.
  void GatherNodeColumn(size_t f, size_t lo, size_t hi, double* lo_v,
                        double* hi_v) {
    const double* colf = ws.colT + f * ws.m;
    double lov = colf[ws.nslot[lo]];
    double hiv = lov;
    for (size_t i = lo; i < hi; ++i) {
      const double v = colf[ws.nslot[i]];
      ws.vals[i - lo] = v;
      lov = std::min(lov, v);
      hiv = std::max(hiv, v);
    }
    *lo_v = lov;
    *hi_v = hiv;
  }

  /// Flags + partitions for an exact-mode split: the left block is the
  /// `v <= thr` prefix of the best feature's sorted subrange, and every
  /// other stripe plus the node-order list partitions stably by slot.
  size_t SplitExact(size_t lo, size_t hi, size_t best_feature,
                    double threshold) {
    const double* svb = ws.sval + best_feature * ws.m;
    const uint32_t* spb = ws.spos + best_feature * ws.m;
    const size_t nl = static_cast<size_t>(
        std::upper_bound(svb + lo, svb + hi, threshold) - (svb + lo));
    for (size_t i = lo; i < hi; ++i) {
      ws.flag[spb[i]] = i < lo + nl ? 1 : 0;
    }
    PartitionStripes(&ws, lo, hi);
    PartitionNodeOrder(&ws, lo, hi);
    return nl;
  }

  /// Flags + partitions for approx/histogram splits (predicate
  /// `value <= thr`, exactly the reference's row routing).
  size_t SplitByColumn(size_t lo, size_t hi, size_t best_feature,
                       double threshold) {
    const double* colf = ws.colT + best_feature * ws.m;
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t slot = ws.nslot[i];
      ws.flag[slot] = colf[slot] <= threshold ? 1 : 0;
    }
    return PartitionNodeOrder(&ws, lo, hi);
  }

  int BuildClsNode(int num_classes, size_t lo, size_t hi, int depth);
  int BuildRegNode(size_t lo, size_t hi, int depth);
  int BuildGbNode(size_t lo, size_t hi, int depth);
};

int TreeBuilder::BuildClsNode(int num_classes, size_t lo, size_t hi,
                              int depth) {
  const int node_index = sink->ReserveNode();
  const TreeKernelParams& p = *params;
  const size_t len = hi - lo;
  const double n = static_cast<double>(len);
  const size_t kk = static_cast<size_t>(num_classes);

  counts.assign(kk, 0.0);
  for (size_t i = lo; i < hi; ++i) {
    counts[static_cast<size_t>(ws.lab[ws.nslot[i]])] += 1.0;
  }
  const double node_gini = Gini(counts, n);
  *flops += n;

  const bool stop =
      depth >= p.max_depth ||
      len < 2 * static_cast<size_t>(p.min_samples_leaf) ||
      node_gini <= 1e-12;
  if (stop) {
    std::vector<double> proba = counts;
    Normalize(&proba);
    sink->SetLeafProba(node_index, std::move(proba));
    return node_index;
  }

  SelectFeatures(ws.d);

  if (mode != TreeMode::kExact) {
    // Approx/histogram modes scan contiguous node gathers; stage the
    // node's labels once so every feature's pass is indirection-free.
    for (size_t i = lo; i < hi; ++i) {
      ws.nlab[i - lo] = ws.lab[ws.nslot[i]];
    }
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = node_gini;  // Must strictly improve.
  left_counts.resize(kk);

  for (size_t f : features) {
    if (mode == TreeMode::kApprox) {
      // Extra-Trees: one uniformly random threshold per feature.
      double lov;
      double hiv;
      GatherNodeColumn(f, lo, hi, &lov, &hiv);
      *flops += n;
      if (hiv - lov <= 1e-12) continue;
      const double thr = rng->NextUniform(lov, hiv);
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      double n_left = 0.0;
      for (size_t i = 0; i < len; ++i) {
        if (ws.vals[i] <= thr) {
          left_counts[static_cast<size_t>(ws.nlab[i])] += 1.0;
          n_left += 1.0;
        }
      }
      *flops += n;
      const double n_right = n - n_left;
      if (n_left < p.min_samples_leaf || n_right < p.min_samples_leaf) {
        continue;
      }
      right_counts.assign(kk, 0.0);
      for (size_t c = 0; c < kk; ++c) {
        right_counts[c] = counts[c] - left_counts[c];
      }
      const double score = (n_left * Gini(left_counts, n_left) +
                            n_right * Gini(right_counts, n_right)) /
                           n;
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
      continue;
    }

    if (mode == TreeMode::kHistogram) {
      double lov;
      double hiv;
      GatherNodeColumn(f, lo, hi, &lov, &hiv);
      *flops += n;
      if (hiv - lov <= 1e-12) continue;
      const HistogramSplit hs = HistogramSplitScanCls(
          ws.vals, ws.nlab, len, num_classes, lov, hiv, p.histogram_bins,
          p.min_samples_leaf, ws.hist);
      // Logical cost: one binning pass plus the bin-edge sweep.
      *flops += n + static_cast<double>(p.histogram_bins) *
                        static_cast<double>(num_classes);
      if (hs.found && hs.score < best_score - 1e-12) {
        best_score = hs.score;
        best_feature = static_cast<int>(f);
        best_threshold = hs.threshold;
      }
      continue;
    }

    // Exact search over the presorted stripe. The reference sorts this
    // node's rows here; the stripe already holds exactly that order, so
    // only the sort's logical cost is charged.
    const uint32_t* sp = ws.spos + f * ws.m;
    const double* sv = ws.sval + f * ws.m;
    *flops += n * std::log2(std::max(2.0, n));

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double n_left = 0.0;
    for (size_t i = lo; i + 1 < hi; ++i) {
      left_counts[static_cast<size_t>(ws.lab[sp[i]])] += 1.0;
      n_left += 1.0;
      if (sv[i + 1] - sv[i] <= 1e-12) continue;
      const double n_right = n - n_left;
      if (n_left < p.min_samples_leaf || n_right < p.min_samples_leaf) {
        continue;
      }
      double right_gini = 1.0;
      double left_gini = 1.0;
      for (size_t c = 0; c < kk; ++c) {
        const double pl = left_counts[c] / n_left;
        const double pr = (counts[c] - left_counts[c]) / n_right;
        left_gini -= pl * pl;
        right_gini -= pr * pr;
      }
      const double score = (n_left * left_gini + n_right * right_gini) / n;
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sv[i] + sv[i + 1]);
      }
    }
    *flops += n * static_cast<double>(kk);
  }

  if (best_feature < 0) {
    std::vector<double> proba = counts;
    Normalize(&proba);
    sink->SetLeafProba(node_index, std::move(proba));
    return node_index;
  }

  const size_t nl =
      mode == TreeMode::kExact
          ? SplitExact(lo, hi, static_cast<size_t>(best_feature),
                       best_threshold)
          : SplitByColumn(lo, hi, static_cast<size_t>(best_feature),
                          best_threshold);
  const size_t mid = lo + nl;
  const int left = BuildClsNode(num_classes, lo, mid, depth + 1);
  const int right = BuildClsNode(num_classes, mid, hi, depth + 1);
  sink->SetSplit(node_index, best_feature, best_threshold, left, right);
  return node_index;
}

int TreeBuilder::BuildRegNode(size_t lo, size_t hi, int depth) {
  const int node_index = sink->ReserveNode();
  const TreeKernelParams& p = *params;
  const size_t len = hi - lo;
  const double n = static_cast<double>(len);

  // Node-order accumulation: bit-identical to the reference's row loop.
  double sum = 0.0;
  double sumsq = 0.0;
  for (size_t i = lo; i < hi; ++i) {
    const double y = ws.tgt[ws.nslot[i]];
    sum += y;
    sumsq += y * y;
  }
  *flops += 2.0 * n;
  const double mean = sum / n;
  const double node_sse = sumsq - sum * sum / n;

  const bool stop = depth >= p.max_depth ||
                    len < 2 * static_cast<size_t>(p.min_samples_leaf) ||
                    node_sse <= 1e-12;
  if (stop) {
    sink->SetLeafProba(node_index, {mean});
    return node_index;
  }

  SelectFeatures(ws.d);

  if (mode == TreeMode::kApprox) {
    for (size_t i = lo; i < hi; ++i) {
      ws.ntgt[i - lo] = ws.tgt[ws.nslot[i]];
    }
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_sse = node_sse;  // Must strictly improve.

  for (size_t f : features) {
    if (mode == TreeMode::kApprox) {
      double lov;
      double hiv;
      GatherNodeColumn(f, lo, hi, &lov, &hiv);
      *flops += n;
      if (hiv - lov <= 1e-12) continue;
      const double thr = rng->NextUniform(lov, hiv);
      double left_sum = 0.0;
      double left_sumsq = 0.0;
      double n_left = 0.0;
      for (size_t i = 0; i < len; ++i) {
        if (ws.vals[i] <= thr) {
          const double y = ws.ntgt[i];
          left_sum += y;
          left_sumsq += y * y;
          n_left += 1.0;
        }
      }
      *flops += 2.0 * n;
      const double n_right = n - n_left;
      if (n_left < p.min_samples_leaf || n_right < p.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sumsq = sumsq - left_sumsq;
      const double sse = (left_sumsq - left_sum * left_sum / n_left) +
                         (right_sumsq - right_sum * right_sum / n_right);
      if (sse < best_sse - 1e-12) {
        best_sse = sse;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
      continue;
    }

    const uint32_t* sp = ws.spos + f * ws.m;
    const double* sv = ws.sval + f * ws.m;
    *flops += n * std::log2(std::max(2.0, n));

    double left_sum = 0.0;
    double left_sumsq = 0.0;
    double n_left = 0.0;
    for (size_t i = lo; i + 1 < hi; ++i) {
      const double y = ws.tgt[sp[i]];
      left_sum += y;
      left_sumsq += y * y;
      n_left += 1.0;
      if (sv[i + 1] - sv[i] <= 1e-12) continue;
      const double n_right = n - n_left;
      if (n_left < p.min_samples_leaf || n_right < p.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sumsq = sumsq - left_sumsq;
      const double sse = (left_sumsq - left_sum * left_sum / n_left) +
                         (right_sumsq - right_sum * right_sum / n_right);
      if (sse < best_sse - 1e-12) {
        best_sse = sse;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sv[i] + sv[i + 1]);
      }
    }
    *flops += 4.0 * n;
  }

  if (best_feature < 0) {
    sink->SetLeafProba(node_index, {mean});
    return node_index;
  }

  const size_t nl =
      mode == TreeMode::kExact
          ? SplitExact(lo, hi, static_cast<size_t>(best_feature),
                       best_threshold)
          : SplitByColumn(lo, hi, static_cast<size_t>(best_feature),
                          best_threshold);
  const size_t mid = lo + nl;
  const int left = BuildRegNode(lo, mid, depth + 1);
  const int right = BuildRegNode(mid, hi, depth + 1);
  sink->SetSplit(node_index, best_feature, best_threshold, left, right);
  return node_index;
}

int TreeBuilder::BuildGbNode(size_t lo, size_t hi, int depth) {
  const int node_index = sink->ReserveNode();
  const TreeKernelParams& p = *params;
  const size_t len = hi - lo;
  const double n = static_cast<double>(len);

  double sum = 0.0;
  for (size_t i = lo; i < hi; ++i) sum += ws.tgt[ws.nslot[i]];
  const double mean = n > 0.0 ? sum / n : 0.0;
  *flops += n;

  const bool stop = depth >= p.max_depth ||
                    len < 2 * static_cast<size_t>(p.min_samples_leaf);
  if (!stop) {
    // Exact variance-reduction split search over all features.
    double best_gain = 1e-10;
    int best_feature = -1;
    double best_threshold = 0.0;
    for (size_t f = 0; f < ws.d; ++f) {
      const uint32_t* sp = ws.spos + f * ws.m;
      const double* sv = ws.sval + f * ws.m;
      *flops += n * std::log2(std::max(2.0, n));
      double left_sum = 0.0;
      double left_n = 0.0;
      for (size_t i = lo; i + 1 < hi; ++i) {
        left_sum += ws.tgt[sp[i]];
        left_n += 1.0;
        if (sv[i + 1] - sv[i] <= 1e-12) continue;
        const double right_n = n - left_n;
        if (left_n < p.min_samples_leaf || right_n < p.min_samples_leaf) {
          continue;
        }
        const double right_sum = sum - left_sum;
        // Variance-reduction gain (up to constants).
        const double gain = left_sum * left_sum / left_n +
                            right_sum * right_sum / right_n -
                            sum * sum / n;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (sv[i] + sv[i + 1]);
        }
      }
      *flops += n;
    }
    if (best_feature >= 0) {
      const size_t nl = SplitExact(lo, hi, static_cast<size_t>(best_feature),
                                   best_threshold);
      const size_t mid = lo + nl;
      const int left = BuildGbNode(lo, mid, depth + 1);
      const int right = BuildGbNode(mid, hi, depth + 1);
      sink->SetSplit(node_index, best_feature, best_threshold, left, right);
      return node_index;
    }
  }
  sink->SetLeafValue(node_index, mean);
  return node_index;
}

}  // namespace

void KernelBuildClsTree(const Dataset& train,
                        const std::vector<size_t>& rows,
                        const TreeKernelParams& params, int num_classes,
                        Rng* rng, double* flops, Arena* arena,
                        TreeNodeSink* sink) {
  ArenaScope scope(arena);
  TreeBuilder b;
  b.params = &params;
  b.mode = ModeFor(params);
  b.rng = rng;
  b.flops = flops;
  b.sink = sink;
  InitWorkspace(train, rows, b.mode, /*classification=*/true,
                /*ext_targets=*/nullptr, params.histogram_bins, num_classes,
                arena, &b.ws);
  b.BuildClsNode(num_classes, 0, rows.size(), 0);
}

void KernelBuildRegTree(const Dataset& train,
                        const std::vector<size_t>& rows,
                        const TreeKernelParams& params, Rng* rng,
                        double* flops, Arena* arena, TreeNodeSink* sink) {
  ArenaScope scope(arena);
  TreeBuilder b;
  b.params = &params;
  // The regression reference has no histogram path; histogram_bins only
  // redirects classification scans.
  b.mode = params.random_thresholds ? TreeMode::kApprox : TreeMode::kExact;
  b.rng = rng;
  b.flops = flops;
  b.sink = sink;
  InitWorkspace(train, rows, b.mode, /*classification=*/false,
                /*ext_targets=*/nullptr, /*hist_bins=*/0, /*k=*/1, arena,
                &b.ws);
  b.BuildRegNode(0, rows.size(), 0);
}

GbRoundPresort::GbRoundPresort(const Dataset& train,
                               const std::vector<size_t>& rows,
                               Arena* arena) {
  m_ = rows.size();
  d_ = train.num_features();
  uint32_t* rid = arena->AllocArray<uint32_t>(m_);
  for (size_t i = 0; i < m_; ++i) rid[i] = static_cast<uint32_t>(rows[i]);
  uint32_t* spos = arena->AllocArray<uint32_t>(d_ * m_);
  double* sval = arena->AllocArray<double>(d_ * m_);
  {
    ArenaScope gather_scope(arena);
    double* colT = arena->AllocArray<double>(d_ * m_);
    GatherTransposed(train, rid, m_, d_, colT);
    PresortStripes(rid, colT, m_, d_, spos, sval);
  }
  rid_ = rid;
  spos_ = spos;
  sval_ = sval;
}

void KernelBuildGbTree(const GbRoundPresort& presort,
                       const std::vector<double>& targets,
                       const TreeKernelParams& params, double* flops,
                       Arena* arena, TreeNodeSink* sink) {
  ArenaScope scope(arena);
  const size_t m = presort.m_;
  const size_t d = presort.d_;
  TreeBuilder b;
  b.params = &params;
  b.mode = TreeMode::kExact;
  b.flops = flops;
  b.sink = sink;
  b.ws.m = m;
  b.ws.d = d;
  // Working copies: the per-class trees of one round partition the same
  // presorted stripes differently, so each starts from the pristine copy.
  b.ws.spos = arena->AllocArray<uint32_t>(d * m);
  b.ws.sval = arena->AllocArray<double>(d * m);
  std::memcpy(b.ws.spos, presort.spos_, d * m * sizeof(uint32_t));
  std::memcpy(b.ws.sval, presort.sval_, d * m * sizeof(double));
  b.ws.tgt = arena->AllocArray<double>(m);
  for (size_t i = 0; i < m; ++i) {
    b.ws.tgt[i] = targets[presort.rid_[i]];
  }
  b.ws.nslot = arena->AllocArray<uint32_t>(m);
  std::iota(b.ws.nslot, b.ws.nslot + m, uint32_t{0});
  b.ws.flag = arena->AllocArray<uint8_t>(m);
  b.ws.uscratch = arena->AllocArray<uint32_t>(m);
  b.ws.dscratch = arena->AllocArray<double>(m);
  b.BuildGbNode(0, m, 0);
}

}  // namespace green
