#ifndef GREEN_ML_KERNELS_DISTANCE_KERNELS_H_
#define GREEN_ML_KERNELS_DISTANCE_KERNELS_H_

#include <cstddef>

namespace green {

/// Squared Euclidean distances from one query to every column of a
/// column-major d x n matrix (`cols[j * n + r]` is feature j of point r).
/// The loop nest is j-outer / r-inner over cache-sized row blocks with an
/// unrolled accumulate, so the inner trip vectorizes over contiguous
/// memory — but each distance still receives its per-feature adds in
/// j-ascending order, exactly like the row-major reference scan, so every
/// output double is bit-identical to `for j: s += diff * diff`.
void SquaredDistancesColMajor(const double* cols, size_t n, size_t d,
                              const double* query, double* out);

/// Dense tanh projection: out[i] = tanh(dot(w_i, x)) for the h rows of
/// the row-major h x d weight matrix. Per-output adds run j-ascending,
/// matching the reference Project() accumulation bit-for-bit when `x` is
/// the prenormalized feature vector.
void ProjectTanh(const double* w, size_t h, size_t d, const double* x,
                 double* out);

}  // namespace green

#endif  // GREEN_ML_KERNELS_DISTANCE_KERNELS_H_
