#ifndef GREEN_ML_KERNELS_HISTOGRAM_H_
#define GREEN_ML_KERNELS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>

namespace green {

/// Best split found by a fixed-bin histogram scan.
struct HistogramSplit {
  bool found = false;
  /// Bin-edge threshold (rows with value <= threshold go left).
  double threshold = 0.0;
  /// Weighted Gini of the partition, comparable to the exact sweep score.
  double score = 0.0;
  double n_left = 0.0;
};

/// Fixed-bin histogram split scan for classification: one binning pass
/// over `vals` (a gathered node column with min `lo`, max `hi`, hi > lo)
/// builds per-class counts over `bins` equal-width bins, then the bins-1
/// interior edges are swept as candidate thresholds in O(bins * k)
/// instead of the exact scan's O(n log n) sort + O(n * k) sweep. Empty
/// bins are skipped (their edge repartitions nothing). `scratch` must
/// hold (bins + 2) * k doubles.
HistogramSplit HistogramSplitScanCls(const double* vals,
                                     const int32_t* labels, size_t n,
                                     int k, double lo, double hi, int bins,
                                     int min_samples_leaf, double* scratch);

}  // namespace green

#endif  // GREEN_ML_KERNELS_HISTOGRAM_H_
