#include "green/ml/kernels/distance_kernels.h"

#include <algorithm>
#include <cmath>

namespace green {

namespace {

/// Rows per block: 8 KiB of accumulators stays L1-resident while the d
/// column slices stream through.
constexpr size_t kRowBlock = 1024;

}  // namespace

void SquaredDistancesColMajor(const double* cols, size_t n, size_t d,
                              const double* query, double* out) {
  std::fill(out, out + n, 0.0);
  for (size_t r0 = 0; r0 < n; r0 += kRowBlock) {
    const size_t r1 = std::min(n, r0 + kRowBlock);
    for (size_t j = 0; j < d; ++j) {
      const double xj = query[j];
      const double* c = cols + j * n;
      size_t r = r0;
      for (; r + 4 <= r1; r += 4) {
        const double d0 = xj - c[r];
        const double d1 = xj - c[r + 1];
        const double d2 = xj - c[r + 2];
        const double d3 = xj - c[r + 3];
        out[r] += d0 * d0;
        out[r + 1] += d1 * d1;
        out[r + 2] += d2 * d2;
        out[r + 3] += d3 * d3;
      }
      for (; r < r1; ++r) {
        const double diff = xj - c[r];
        out[r] += diff * diff;
      }
    }
  }
}

void ProjectTanh(const double* w, size_t h, size_t d, const double* x,
                 double* out) {
  for (size_t i = 0; i < h; ++i) {
    const double* wi = w + i * d;
    double z = 0.0;
    for (size_t j = 0; j < d; ++j) z += wi[j] * x[j];
    out[i] = std::tanh(z);
  }
}

}  // namespace green
