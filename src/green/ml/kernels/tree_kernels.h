#ifndef GREEN_ML_KERNELS_TREE_KERNELS_H_
#define GREEN_ML_KERNELS_TREE_KERNELS_H_

#include <cstdint>
#include <vector>

#include "green/common/arena.h"
#include "green/common/rng.h"
#include "green/table/dataset.h"

namespace green {

/// Split-search parameters shared by the tree learners (a superset of
/// DecisionTreeParams' split knobs plus GradientBoosting's).
struct TreeKernelParams {
  int max_depth = 8;
  int min_samples_leaf = 2;
  /// Features examined per split: 0 = all, otherwise ceil(fraction * d).
  double max_features_fraction = 0.0;
  /// Extra-Trees randomization: one uniform threshold per feature.
  bool random_thresholds = false;
  /// > 0 selects the fixed-bin histogram split scan instead of the exact
  /// presorted sweep (classification only). An opt-in APPROXIMATION: the
  /// chosen split may differ from the exact scan wherever a bin holds
  /// more than one distinct value, so no reproduced system sets it — the
  /// GREEN_KERNELS byte-identity invariant covers the default (0) mode.
  int histogram_bins = 0;
};

/// Receives the nodes a kernel tree build emits. Node indices are handed
/// out in the same preorder as the reference recursive builders, so a
/// sink writing into a flat node vector reproduces the reference layout
/// exactly.
class TreeNodeSink {
 public:
  virtual ~TreeNodeSink() = default;
  /// Appends an empty node, returning its index (called at node entry).
  virtual int ReserveNode() = 0;
  /// Classification leaf (normalized class distribution) or
  /// single-element regression leaf ({mean}).
  virtual void SetLeafProba(int node, std::vector<double> proba) = 0;
  /// Scalar regression leaf (gradient-boosting trees).
  virtual void SetLeafValue(int node, double value) = 0;
  virtual void SetSplit(int node, int feature, double threshold, int left,
                        int right) = 0;
};

/// Builds a classification tree over `rows` (duplicates allowed —
/// bootstrap samples), mirroring DecisionTree::BuildNode bit-for-bit in
/// the default mode: identical RNG consumption, identical split choices,
/// identical leaf distributions, identical `*flops` accumulation. The
/// exact path presorts each feature once per tree and stable-partitions
/// the per-feature index lists down the recursion; the random-threshold
/// path gathers each node's column once (fixing the double At() fetch)
/// and scans contiguous arrays. Scratch lives on `arena` inside a scope.
void KernelBuildClsTree(const Dataset& train,
                        const std::vector<size_t>& rows,
                        const TreeKernelParams& params, int num_classes,
                        Rng* rng, double* flops, Arena* arena,
                        TreeNodeSink* sink);

/// Regression analogue of KernelBuildClsTree, mirroring
/// DecisionTree::BuildRegNode (SSE criterion, {mean} proba leaves).
void KernelBuildRegTree(const Dataset& train,
                        const std::vector<size_t>& rows,
                        const TreeKernelParams& params, Rng* rng,
                        double* flops, Arena* arena, TreeNodeSink* sink);

/// Per-round presorted feature cache for gradient boosting: the k
/// per-class trees of one boosting round share the same row sample, so
/// the sort-once-per-feature work is done here once and memcpy'd into
/// each tree's working arrays.
class GbRoundPresort {
 public:
  /// Gathers and presorts all feature columns of `rows`. The presort
  /// borrows `arena` storage; keep the surrounding ArenaScope open for
  /// this object's lifetime.
  GbRoundPresort(const Dataset& train, const std::vector<size_t>& rows,
                 Arena* arena);

  size_t num_rows() const { return m_; }
  size_t num_features() const { return d_; }

 private:
  friend void KernelBuildGbTree(const GbRoundPresort&,
                                const std::vector<double>&,
                                const TreeKernelParams&, double*, Arena*,
                                TreeNodeSink*);
  size_t m_ = 0;
  size_t d_ = 0;
  const uint32_t* rid_ = nullptr;   ///< Slot -> original row id.
  const uint32_t* spos_ = nullptr;  ///< d x m sorted slot lists (pristine).
  const double* sval_ = nullptr;    ///< d x m values in sorted order.
};

/// Builds one gradient-boosting regression tree over the presorted round
/// cache, mirroring GradientBoosting::BuildRegNode bit-for-bit
/// (variance-reduction gain, scalar mean leaves, identical `*flops`).
/// `targets` is indexed by original row id.
void KernelBuildGbTree(const GbRoundPresort& presort,
                       const std::vector<double>& targets,
                       const TreeKernelParams& params, double* flops,
                       Arena* arena, TreeNodeSink* sink);

}  // namespace green

#endif  // GREEN_ML_KERNELS_TREE_KERNELS_H_
