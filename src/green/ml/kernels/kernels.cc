#include "green/ml/kernels/kernels.h"

#include <atomic>
#include <cstdlib>

namespace green {

namespace {

bool KernelsFromEnv() {
  const char* raw = std::getenv("GREEN_KERNELS");
  return raw == nullptr || raw[0] != '0';
}

std::atomic<int>& KernelsState() {
  // -1 = unresolved, 0 = off, 1 = on.
  static std::atomic<int> state{-1};
  return state;
}

}  // namespace

bool KernelsEnabled() {
  int v = KernelsState().load(std::memory_order_relaxed);
  if (v < 0) {
    v = KernelsFromEnv() ? 1 : 0;
    KernelsState().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetKernelsEnabled(bool enabled) {
  KernelsState().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace green
