#ifndef GREEN_ML_KERNELS_KERNELS_H_
#define GREEN_ML_KERNELS_KERNELS_H_

namespace green {

/// Toggle for the cache-/SIMD-friendly model hot-loop kernels (presorted
/// tree split scans, blocked distance kernels, arena scratch, flat-buffer
/// ensemble predict). Default ON; GREEN_KERNELS=0 selects the reference
/// loops. The two paths are bit-identical in every observable output —
/// fitted models, predictions, charged Work, record streams — because
/// kernels only change memory layout and allocation, never the arithmetic
/// order of any accumulation that reaches a model output, and Work is
/// always charged from logical dimensions (rows x features), never from
/// kernel implementation details.
bool KernelsEnabled();

/// Process-wide override (tests, CLI). Wins over the environment.
void SetKernelsEnabled(bool enabled);

}  // namespace green

#endif  // GREEN_ML_KERNELS_KERNELS_H_
