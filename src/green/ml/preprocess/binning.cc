#include "green/ml/preprocess/binning.h"

#include <algorithm>
#include <cmath>

#include "green/common/mathutil.h"

namespace green {

Status QuantileBinner::Fit(const Dataset& train, ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  if (n == 0) return Status::InvalidArgument("binner: empty dataset");
  if (num_bins_ < 2) {
    return Status::InvalidArgument("binner: need at least 2 bins");
  }
  ChargeScope scope(ctx, Name());
  input_width_ = d;
  edges_.assign(d, {});

  std::vector<double> column;
  column.reserve(n);
  for (size_t j = 0; j < d; ++j) {
    if (train.feature_type(j) == FeatureType::kCategorical) continue;
    column.clear();
    for (size_t r = 0; r < n; ++r) {
      const double v = train.At(r, j);
      if (!std::isnan(v)) column.push_back(v);
    }
    if (column.size() < 2) continue;  // Degenerate: pass through.
    std::vector<double>& edges = edges_[j];
    for (int b = 1; b < num_bins_; ++b) {
      edges.push_back(Quantile(
          column, static_cast<double>(b) / static_cast<double>(num_bins_)));
    }
    // Collapse duplicate edges (heavily tied columns).
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  ctx->ChargeCpu(static_cast<double>(n * d) *
                     std::log2(std::max(2.0, static_cast<double>(n))),
                 train.FeatureBytes());
  fitted_ = true;
  return Status::Ok();
}

Result<Dataset> QuantileBinner::Transform(const Dataset& data,
                                          ExecutionContext* ctx) const {
  if (!fitted_) return Status::FailedPrecondition("binner not fitted");
  if (data.num_features() != input_width_) {
    return Status::InvalidArgument("binner: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());
  Dataset out = data;
  // With no learned edges at all the input passes through as a view.
  const bool any_binned =
      std::any_of(edges_.begin(), edges_.end(),
                  [](const std::vector<double>& e) { return !e.empty(); });
  if (any_binned) {
    const size_t n = out.num_rows();
    double* x = out.MutableData();
    for (size_t j = 0; j < input_width_; ++j) {
      const std::vector<double>& edges = edges_[j];
      if (edges.empty()) continue;
      for (size_t r = 0; r < n; ++r) {
        double& v = x[r * input_width_ + j];
        if (std::isnan(v)) continue;
        v = static_cast<double>(
            std::upper_bound(edges.begin(), edges.end(), v) -
            edges.begin());
      }
    }
  }
  ctx->ChargeCpu(static_cast<double>(out.num_rows() * input_width_) *
                     std::max(1.0, std::log2(static_cast<double>(
                                      num_bins_))),
                 out.FeatureBytes());
  return out;
}

}  // namespace green
