#include "green/ml/preprocess/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "green/common/stringutil.h"

namespace green {

std::string VarianceThreshold::ConfigSignature() const {
  // %.17g round-trips the double exactly: distinct thresholds can never
  // share a cache key.
  return StrFormat("variance_threshold(%.17g)", threshold_);
}

namespace {

Result<Dataset> KeepColumns(const Dataset& data,
                            const std::vector<size_t>& keep,
                            size_t input_width, bool fitted,
                            ExecutionContext* ctx) {
  if (!fitted) return Status::FailedPrecondition("selector not fitted");
  if (data.num_features() != input_width) {
    return Status::InvalidArgument("selector: feature count mismatch");
  }
  Dataset out = data.SelectFeatures(keep);
  ctx->ChargeCpu(static_cast<double>(data.num_rows() * keep.size()),
                 out.FeatureBytes());
  return out;
}

}  // namespace

Status VarianceThreshold::Fit(const Dataset& train, ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  if (n == 0) return Status::InvalidArgument("selector: empty dataset");
  ChargeScope scope(ctx, Name());
  input_width_ = d;
  keep_.clear();
  for (size_t j = 0; j < d; ++j) {
    double sum = 0.0;
    for (size_t r = 0; r < n; ++r) sum += train.At(r, j);
    const double mean = sum / static_cast<double>(n);
    double var = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const double dlt = train.At(r, j) - mean;
      var += dlt * dlt;
    }
    var /= static_cast<double>(n);
    if (var > threshold_) keep_.push_back(j);
  }
  if (keep_.empty()) keep_.push_back(0);  // Never emit a zero-width table.
  ctx->ChargeCpu(2.0 * static_cast<double>(n * d), train.FeatureBytes());
  fitted_ = true;
  return Status::Ok();
}

Result<Dataset> VarianceThreshold::Transform(const Dataset& data,
                                             ExecutionContext* ctx) const {
  ChargeScope scope(ctx, Name());
  return KeepColumns(data, keep_, input_width_, fitted_, ctx);
}

Status SelectKBest::Fit(const Dataset& train, ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  const int k_classes = train.num_classes();
  if (n == 0) return Status::InvalidArgument("selector: empty dataset");
  ChargeScope scope(ctx, Name());
  input_width_ = d;

  std::vector<double> scores(d, 0.0);
  const std::vector<int> counts = train.ClassCounts();
  for (size_t j = 0; j < d; ++j) {
    // Per-class means.
    std::vector<double> class_sum(static_cast<size_t>(k_classes), 0.0);
    double total_sum = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const double v = train.At(r, j);
      class_sum[static_cast<size_t>(train.Label(r))] += v;
      total_sum += v;
    }
    const double grand_mean = total_sum / static_cast<double>(n);
    double between = 0.0;
    for (int c = 0; c < k_classes; ++c) {
      const size_t cc = static_cast<size_t>(c);
      if (counts[cc] == 0) continue;
      const double mu = class_sum[cc] / static_cast<double>(counts[cc]);
      between += static_cast<double>(counts[cc]) * (mu - grand_mean) *
                 (mu - grand_mean);
    }
    double within = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const size_t cc = static_cast<size_t>(train.Label(r));
      const double mu = counts[cc] > 0
                            ? class_sum[cc] / static_cast<double>(counts[cc])
                            : grand_mean;
      const double dlt = train.At(r, j) - mu;
      within += dlt * dlt;
    }
    scores[j] = between / (within + 1e-12);
  }

  std::vector<size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  const size_t take = std::max<size_t>(1, std::min(k_, d));
  keep_.assign(order.begin(), order.begin() + take);
  std::sort(keep_.begin(), keep_.end());

  ctx->ChargeCpu(3.0 * static_cast<double>(n * d), train.FeatureBytes());
  fitted_ = true;
  return Status::Ok();
}

Result<Dataset> SelectKBest::Transform(const Dataset& data,
                                       ExecutionContext* ctx) const {
  ChargeScope scope(ctx, Name());
  return KeepColumns(data, keep_, input_width_, fitted_, ctx);
}

}  // namespace green
