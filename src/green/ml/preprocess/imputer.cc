#include "green/ml/preprocess/imputer.h"

#include <cmath>
#include <map>

namespace green {

Status MeanModeImputer::Fit(const Dataset& train, ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  if (n == 0) return Status::InvalidArgument("imputer: empty dataset");
  ChargeScope scope(ctx, Name());
  fill_values_.assign(d, 0.0);

  for (size_t j = 0; j < d; ++j) {
    if (train.feature_type(j) == FeatureType::kCategorical) {
      std::map<int, int> counts;
      for (size_t r = 0; r < n; ++r) {
        const double v = train.At(r, j);
        if (!std::isnan(v)) ++counts[static_cast<int>(v)];
      }
      int best_code = 0;
      int best_count = -1;
      for (const auto& [code, count] : counts) {
        if (count > best_count) {
          best_count = count;
          best_code = code;
        }
      }
      fill_values_[j] = static_cast<double>(best_code);
    } else {
      double sum = 0.0;
      size_t seen = 0;
      for (size_t r = 0; r < n; ++r) {
        const double v = train.At(r, j);
        if (!std::isnan(v)) {
          sum += v;
          ++seen;
        }
      }
      fill_values_[j] = seen > 0 ? sum / static_cast<double>(seen) : 0.0;
    }
  }
  ctx->ChargeCpu(static_cast<double>(n * d), static_cast<double>(n * d) * 8);
  fitted_ = true;
  return Status::Ok();
}

Result<Dataset> MeanModeImputer::Transform(const Dataset& data,
                                           ExecutionContext* ctx) const {
  if (!fitted_) return Status::FailedPrecondition("imputer not fitted");
  if (data.num_features() != fill_values_.size()) {
    return Status::InvalidArgument("imputer: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());
  Dataset out = data;
  const size_t n = data.num_rows();
  const size_t d = data.num_features();
  // Scan first: NaN-free data (the common case) passes through as a view
  // with no copy at all.
  bool has_nan = false;
  for (size_t r = 0; r < n && !has_nan; ++r) {
    const double* row = data.RowPtr(r);
    for (size_t j = 0; j < d; ++j) {
      if (std::isnan(row[j])) {
        has_nan = true;
        break;
      }
    }
  }
  if (has_nan) {
    double* x = out.MutableData();
    for (size_t r = 0; r < n; ++r) {
      double* row = x + r * d;
      for (size_t j = 0; j < d; ++j) {
        if (std::isnan(row[j])) row[j] = fill_values_[j];
      }
    }
  }
  ctx->ChargeCpu(static_cast<double>(out.num_rows() * out.num_features()),
                 out.FeatureBytes());
  return out;
}

}  // namespace green
