#ifndef GREEN_ML_PREPROCESS_PCA_H_
#define GREEN_ML_PREPROCESS_PCA_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Principal-component projection onto the top `num_components`
/// directions, fitted by power iteration with deflation on the (centered)
/// covariance. One of AutoSklearn's feature preprocessors; dimensionality
/// reduction trades a one-off fitting cost for cheaper inference on wide
/// tables.
class Pca : public Transformer {
 public:
  explicit Pca(size_t num_components, int power_iterations = 30,
               uint64_t seed = 1)
      : num_components_(num_components),
        power_iterations_(power_iterations),
        seed_(seed) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<Dataset> Transform(const Dataset& data,
                            ExecutionContext* ctx) const override;
  std::string Name() const override { return "pca"; }
  std::string ConfigSignature() const override {
    return "pca(" + std::to_string(num_components_) + "," +
           std::to_string(power_iterations_) + "," +
           std::to_string(seed_) + ")";
  }
  double TransformFlopsPerRow(size_t num_features) const override {
    return 2.0 * static_cast<double>(num_features) *
           static_cast<double>(components_fitted_);
  }
  size_t OutputWidth(size_t input_width) const override {
    return components_fitted_ > 0 ? components_fitted_ : input_width;
  }

  /// Fraction of total variance captured by each fitted component.
  const std::vector<double>& explained_variance_ratio() const {
    return explained_variance_ratio_;
  }
  size_t components_fitted() const { return components_fitted_; }

 private:
  size_t num_components_;
  int power_iterations_;
  uint64_t seed_;
  size_t input_width_ = 0;
  size_t components_fitted_ = 0;
  std::vector<double> mean_;
  /// Row-major (components x input_width).
  std::vector<double> components_;
  std::vector<double> explained_variance_ratio_;
  bool fitted_ = false;
};

}  // namespace green

#endif  // GREEN_ML_PREPROCESS_PCA_H_
