#ifndef GREEN_ML_PREPROCESS_BINNING_H_
#define GREEN_ML_PREPROCESS_BINNING_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Quantile discretizer: numeric columns are mapped to integer bin codes
/// [0, num_bins) with equal-frequency boundaries learned on the training
/// data (sklearn's KBinsDiscretizer with the quantile strategy).
/// Categorical columns pass through unchanged. Binning is both a
/// robustness device (monotone-invariant, outlier-proof) and an energy
/// device: downstream trees split on tiny cardinalities.
class QuantileBinner : public Transformer {
 public:
  explicit QuantileBinner(int num_bins = 8) : num_bins_(num_bins) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<Dataset> Transform(const Dataset& data,
                            ExecutionContext* ctx) const override;
  std::string Name() const override { return "quantile_binner"; }
  std::string ConfigSignature() const override {
    return "quantile_binner(" + std::to_string(num_bins_) + ")";
  }
  double TransformFlopsPerRow(size_t num_features) const override {
    return static_cast<double>(num_features) *
           std::max(1.0, std::log2(static_cast<double>(num_bins_)));
  }

  int num_bins() const { return num_bins_; }
  /// Bin edges of column j (empty for pass-through columns).
  const std::vector<double>& edges(size_t j) const { return edges_[j]; }

 private:
  int num_bins_;
  size_t input_width_ = 0;
  /// Per column: ascending inner edges (size num_bins-1), or empty for
  /// categorical pass-through.
  std::vector<std::vector<double>> edges_;
  bool fitted_ = false;
};

}  // namespace green

#endif  // GREEN_ML_PREPROCESS_BINNING_H_
