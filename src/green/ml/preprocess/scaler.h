#ifndef GREEN_ML_PREPROCESS_SCALER_H_
#define GREEN_ML_PREPROCESS_SCALER_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

enum class ScalerKind { kStandard, kMinMax };

/// Feature scaling for numeric columns; categorical columns pass through
/// untouched. Standard: (x - mean) / std. MinMax: (x - min) / (max - min).
class Scaler : public Transformer {
 public:
  explicit Scaler(ScalerKind kind) : kind_(kind) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<Dataset> Transform(const Dataset& data,
                            ExecutionContext* ctx) const override;
  std::string Name() const override {
    return kind_ == ScalerKind::kStandard ? "standard_scaler"
                                          : "minmax_scaler";
  }
  // Name() already encodes the only parameter (the kind).
  std::string ConfigSignature() const override { return Name(); }
  double TransformFlopsPerRow(size_t num_features) const override {
    return 2.0 * static_cast<double>(num_features);
  }

 private:
  ScalerKind kind_;
  std::vector<double> offset_;
  std::vector<double> scale_;
  std::vector<bool> apply_;
  bool fitted_ = false;
};

}  // namespace green

#endif  // GREEN_ML_PREPROCESS_SCALER_H_
