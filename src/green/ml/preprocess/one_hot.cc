#include "green/ml/preprocess/one_hot.h"

#include <cmath>

#include "green/common/stringutil.h"

namespace green {

Status OneHotEncoder::Fit(const Dataset& train, ExecutionContext* ctx) {
  ChargeScope scope(ctx, Name());
  const size_t d = train.num_features();
  input_width_ = d;
  cardinality_.assign(d, 0);
  output_width_ = 0;
  for (size_t j = 0; j < d; ++j) {
    if (train.feature_type(j) == FeatureType::kCategorical) {
      int card = 0;
      for (size_t r = 0; r < train.num_rows(); ++r) {
        const double v = train.At(r, j);
        if (!std::isnan(v)) {
          card = std::max(card, static_cast<int>(v) + 1);
        }
      }
      if (card >= 2 && card <= max_cardinality_) {
        cardinality_[j] = card;
        output_width_ += static_cast<size_t>(card);
        continue;
      }
    }
    output_width_ += 1;  // Pass-through.
  }
  ctx->ChargeCpu(static_cast<double>(train.num_rows() * d),
                 train.FeatureBytes());
  fitted_ = true;
  return Status::Ok();
}

Result<Dataset> OneHotEncoder::Transform(const Dataset& data,
                                         ExecutionContext* ctx) const {
  if (!fitted_) return Status::FailedPrecondition("one_hot not fitted");
  if (data.num_features() != input_width_) {
    return Status::InvalidArgument("one_hot: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());

  // Identity shortcut: nothing to encode and every input column is
  // already numeric, so the output would be a column-for-column copy.
  // Return the input as a view instead of rebuilding it row by row.
  if (output_width_ == input_width_) {
    bool identity = true;
    for (size_t j = 0; j < input_width_; ++j) {
      if (cardinality_[j] != 0 ||
          data.feature_type(j) != FeatureType::kNumeric) {
        identity = false;
        break;
      }
    }
    if (identity) {
      Dataset out = data;
      ctx->ChargeCpu(static_cast<double>(data.num_rows() * output_width_),
                     out.FeatureBytes());
      return out;
    }
  }

  Dataset out = Dataset::Like(data, data.name(), output_width_);
  out.SetNominalSize(data.nominal_rows(), data.nominal_features());
  out.Reserve(data.num_rows());

  // Name and type the output columns once.
  {
    size_t o = 0;
    for (size_t j = 0; j < input_width_; ++j) {
      if (cardinality_[j] == 0) {
        out.SetFeatureName(o, data.feature_name(j));
        out.SetFeatureType(o, FeatureType::kNumeric);
        ++o;
      } else {
        for (int c = 0; c < cardinality_[j]; ++c) {
          out.SetFeatureName(
              o, StrFormat("%s=%d", data.feature_name(j).c_str(), c));
          out.SetFeatureType(o, FeatureType::kNumeric);
          ++o;
        }
      }
    }
  }

  std::vector<double> row(output_width_);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    size_t o = 0;
    for (size_t j = 0; j < input_width_; ++j) {
      const double v = data.At(r, j);
      if (cardinality_[j] == 0) {
        row[o++] = v;
      } else {
        for (int c = 0; c < cardinality_[j]; ++c) row[o + c] = 0.0;
        if (!std::isnan(v)) {
          const int code = static_cast<int>(v);
          if (code >= 0 && code < cardinality_[j]) {
            row[o + static_cast<size_t>(code)] = 1.0;
          }
        }
        o += static_cast<size_t>(cardinality_[j]);
      }
    }
    GREEN_RETURN_IF_ERROR(out.AppendRowLike(data, r, row));
  }
  ctx->ChargeCpu(static_cast<double>(data.num_rows() * output_width_),
                 out.FeatureBytes());
  return out;
}

}  // namespace green
