#include "green/ml/preprocess/scaler.h"

#include <algorithm>
#include <cmath>

namespace green {

Status Scaler::Fit(const Dataset& train, ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  if (n == 0) return Status::InvalidArgument("scaler: empty dataset");
  ChargeScope scope(ctx, Name());
  offset_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  apply_.assign(d, false);

  for (size_t j = 0; j < d; ++j) {
    if (train.feature_type(j) == FeatureType::kCategorical) continue;
    apply_[j] = true;
    if (kind_ == ScalerKind::kStandard) {
      double sum = 0.0;
      for (size_t r = 0; r < n; ++r) sum += train.At(r, j);
      const double mean = sum / static_cast<double>(n);
      double var = 0.0;
      for (size_t r = 0; r < n; ++r) {
        const double dlt = train.At(r, j) - mean;
        var += dlt * dlt;
      }
      var /= static_cast<double>(n);
      offset_[j] = mean;
      scale_[j] = var > 1e-12 ? std::sqrt(var) : 1.0;
    } else {
      double lo = train.At(0, j);
      double hi = lo;
      for (size_t r = 1; r < n; ++r) {
        const double v = train.At(r, j);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      offset_[j] = lo;
      scale_[j] = (hi - lo) > 1e-12 ? (hi - lo) : 1.0;
    }
  }
  ctx->ChargeCpu(2.0 * static_cast<double>(n * d), train.FeatureBytes());
  fitted_ = true;
  return Status::Ok();
}

Result<Dataset> Scaler::Transform(const Dataset& data,
                                  ExecutionContext* ctx) const {
  if (!fitted_) return Status::FailedPrecondition("scaler not fitted");
  if (data.num_features() != offset_.size()) {
    return Status::InvalidArgument("scaler: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());
  Dataset out = data;
  const bool any_scaled =
      std::find(apply_.begin(), apply_.end(), true) != apply_.end();
  if (any_scaled) {  // All-categorical input passes through as a view.
    const size_t n = out.num_rows();
    const size_t d = out.num_features();
    double* x = out.MutableData();
    for (size_t r = 0; r < n; ++r) {
      double* row = x + r * d;
      for (size_t j = 0; j < d; ++j) {
        if (!apply_[j]) continue;
        const double v = row[j];
        if (!std::isnan(v)) row[j] = (v - offset_[j]) / scale_[j];
      }
    }
  }
  ctx->ChargeCpu(2.0 * static_cast<double>(out.num_rows() *
                                           out.num_features()),
                 out.FeatureBytes());
  return out;
}

}  // namespace green
