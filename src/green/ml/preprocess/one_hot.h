#ifndef GREEN_ML_PREPROCESS_ONE_HOT_H_
#define GREEN_ML_PREPROCESS_ONE_HOT_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Expands categorical columns into indicator columns; numeric columns are
/// copied through. Categories unseen at fit time map to all-zeros.
/// Columns whose cardinality exceeds `max_cardinality` are passed through
/// as numeric codes instead (the standard high-cardinality guard).
class OneHotEncoder : public Transformer {
 public:
  explicit OneHotEncoder(int max_cardinality = 32)
      : max_cardinality_(max_cardinality) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<Dataset> Transform(const Dataset& data,
                            ExecutionContext* ctx) const override;
  std::string Name() const override { return "one_hot"; }
  std::string ConfigSignature() const override {
    return "one_hot(" + std::to_string(max_cardinality_) + ")";
  }
  double TransformFlopsPerRow(size_t num_features) const override {
    return static_cast<double>(output_width_ > 0
                                   ? output_width_
                                   : num_features);
  }

  size_t OutputWidth(size_t input_width) const override {
    return output_width_ > 0 ? output_width_ : input_width;
  }

  size_t output_width() const { return output_width_; }

 private:
  int max_cardinality_;
  std::vector<int> cardinality_;  ///< 0 = pass-through column.
  size_t input_width_ = 0;
  size_t output_width_ = 0;
  bool fitted_ = false;
};

}  // namespace green

#endif  // GREEN_ML_PREPROCESS_ONE_HOT_H_
