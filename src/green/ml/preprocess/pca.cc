#include "green/ml/preprocess/pca.h"

#include <algorithm>
#include <cmath>

#include "green/common/rng.h"

namespace green {

Status Pca::Fit(const Dataset& train, ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  if (n < 2) return Status::InvalidArgument("pca: need at least 2 rows");
  ChargeScope scope(ctx, Name());
  input_width_ = d;
  const size_t k = std::max<size_t>(1, std::min(num_components_, d));

  // Column means.
  mean_.assign(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < d; ++j) mean_[j] += train.At(r, j);
  }
  for (double& m : mean_) m /= static_cast<double>(n);

  // Centered data copy (n x d) for repeated products.
  std::vector<double> x(n * d);
  double total_variance = 0.0;
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < d; ++j) {
      const double v = train.At(r, j) - mean_[j];
      x[r * d + j] = v;
      total_variance += v * v;
    }
  }
  total_variance /= static_cast<double>(n - 1);

  Rng rng(seed_);
  components_.assign(k * d, 0.0);
  explained_variance_ratio_.assign(k, 0.0);
  double flops = static_cast<double>(n * d) * 2.0;

  std::vector<double> scores(n);
  for (size_t c = 0; c < k; ++c) {
    // Power iteration on X^T X with deflation through residualized X.
    std::vector<double> v(d);
    for (double& vi : v) vi = rng.NextGaussian();
    for (int it = 0; it < power_iterations_; ++it) {
      // scores = X v; v' = X^T scores; normalize.
      for (size_t r = 0; r < n; ++r) {
        double s = 0.0;
        const double* row = &x[r * d];
        for (size_t j = 0; j < d; ++j) s += row[j] * v[j];
        scores[r] = s;
      }
      std::vector<double> next(d, 0.0);
      for (size_t r = 0; r < n; ++r) {
        const double* row = &x[r * d];
        for (size_t j = 0; j < d; ++j) next[j] += row[j] * scores[r];
      }
      double norm = 0.0;
      for (double nj : next) norm += nj * nj;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;  // Residual variance exhausted.
      for (size_t j = 0; j < d; ++j) v[j] = next[j] / norm;
      flops += 4.0 * static_cast<double>(n * d);
    }
    // Component variance and deflation.
    double variance = 0.0;
    for (size_t r = 0; r < n; ++r) {
      double s = 0.0;
      const double* row = &x[r * d];
      for (size_t j = 0; j < d; ++j) s += row[j] * v[j];
      scores[r] = s;
      variance += s * s;
    }
    variance /= static_cast<double>(n - 1);
    for (size_t r = 0; r < n; ++r) {
      double* row = &x[r * d];
      for (size_t j = 0; j < d; ++j) row[j] -= scores[r] * v[j];
    }
    flops += 4.0 * static_cast<double>(n * d);
    std::copy(v.begin(), v.end(), components_.begin() + c * d);
    explained_variance_ratio_[c] =
        total_variance > 1e-12 ? variance / total_variance : 0.0;
  }
  components_fitted_ = k;
  ctx->ChargeCpu(flops, static_cast<double>(n * d) * 8,
                 /*parallel_fraction=*/0.85);
  fitted_ = true;
  return Status::Ok();
}

Result<Dataset> Pca::Transform(const Dataset& data,
                               ExecutionContext* ctx) const {
  if (!fitted_) return Status::FailedPrecondition("pca not fitted");
  if (data.num_features() != input_width_) {
    return Status::InvalidArgument("pca: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());
  Dataset out = Dataset::Like(data, data.name(), components_fitted_);
  out.SetNominalSize(data.nominal_rows(), data.nominal_features());
  out.Reserve(data.num_rows());
  std::vector<double> row(components_fitted_);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    const double* in = data.RowPtr(r);
    for (size_t c = 0; c < components_fitted_; ++c) {
      const double* comp = &components_[c * input_width_];
      double s = 0.0;
      for (size_t j = 0; j < input_width_; ++j) {
        s += (in[j] - mean_[j]) * comp[j];
      }
      row[c] = s;
    }
    GREEN_RETURN_IF_ERROR(out.AppendRowLike(data, r, row));
  }
  ctx->ChargeCpu(2.0 * static_cast<double>(data.num_rows() *
                                           input_width_ *
                                           components_fitted_),
                 out.FeatureBytes(), /*parallel_fraction=*/0.9);
  return out;
}

}  // namespace green
