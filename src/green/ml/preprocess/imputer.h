#ifndef GREEN_ML_PREPROCESS_IMPUTER_H_
#define GREEN_ML_PREPROCESS_IMPUTER_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Replaces missing values with the column mean (numeric) or the most
/// frequent category (categorical). The first data-preprocessing step of
/// every ASKL/CAML-style pipeline.
class MeanModeImputer : public Transformer {
 public:
  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<Dataset> Transform(const Dataset& data,
                            ExecutionContext* ctx) const override;
  std::string Name() const override { return "imputer"; }
  // Parameter-free; the name is the whole configuration.
  std::string ConfigSignature() const override { return Name(); }
  double TransformFlopsPerRow(size_t num_features) const override {
    return static_cast<double>(num_features);
  }

  const std::vector<double>& fill_values() const { return fill_values_; }

 private:
  std::vector<double> fill_values_;
  bool fitted_ = false;
};

}  // namespace green

#endif  // GREEN_ML_PREPROCESS_IMPUTER_H_
