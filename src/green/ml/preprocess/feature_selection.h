#ifndef GREEN_ML_PREPROCESS_FEATURE_SELECTION_H_
#define GREEN_ML_PREPROCESS_FEATURE_SELECTION_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Drops features whose variance is at or below `threshold`.
class VarianceThreshold : public Transformer {
 public:
  explicit VarianceThreshold(double threshold = 0.0)
      : threshold_(threshold) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<Dataset> Transform(const Dataset& data,
                            ExecutionContext* ctx) const override;
  std::string Name() const override { return "variance_threshold"; }
  std::string ConfigSignature() const override;
  double TransformFlopsPerRow(size_t num_features) const override {
    return static_cast<double>(keep_.size());
  }

  size_t OutputWidth(size_t input_width) const override {
    return keep_.empty() ? input_width : keep_.size();
  }

  const std::vector<size_t>& kept_columns() const { return keep_; }

 private:
  double threshold_;
  std::vector<size_t> keep_;
  size_t input_width_ = 0;
  bool fitted_ = false;
};

/// Keeps the k features with the highest ANOVA-style F score
/// (between-class variance over within-class variance) — the classic
/// univariate filter FLAML's feature pruning resembles.
class SelectKBest : public Transformer {
 public:
  explicit SelectKBest(size_t k) : k_(k) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<Dataset> Transform(const Dataset& data,
                            ExecutionContext* ctx) const override;
  std::string Name() const override { return "select_k_best"; }
  std::string ConfigSignature() const override {
    return "select_k_best(" + std::to_string(k_) + ")";
  }
  double TransformFlopsPerRow(size_t num_features) const override {
    return static_cast<double>(keep_.size());
  }

  size_t OutputWidth(size_t input_width) const override {
    return keep_.empty() ? input_width : keep_.size();
  }

  const std::vector<size_t>& kept_columns() const { return keep_; }

 private:
  size_t k_;
  std::vector<size_t> keep_;
  size_t input_width_ = 0;
  bool fitted_ = false;
};

}  // namespace green

#endif  // GREEN_ML_PREPROCESS_FEATURE_SELECTION_H_
