#ifndef GREEN_ML_PREDICTION_H_
#define GREEN_ML_PREDICTION_H_

#include <utility>
#include <vector>

#include "green/ml/estimator.h"
#include "green/table/task_type.h"

namespace green {

/// Task-tagged prediction batch unifying classification probabilities and
/// regression values behind one type. Internally everything is a
/// ProbaMatrix — regression predictions are n-by-1 rows whose single
/// column holds the predicted value — so blending, stacking, and caching
/// code paths stay shape-generic; this struct is the typed boundary that
/// callers consume.
struct Prediction {
  TaskType task = TaskType::kBinary;
  ProbaMatrix proba;

  static Prediction Classification(TaskType task, ProbaMatrix proba) {
    return Prediction{task, std::move(proba)};
  }

  static Prediction Regression(const std::vector<double>& values) {
    Prediction out;
    out.task = TaskType::kRegression;
    out.proba.reserve(values.size());
    for (double v : values) out.proba.push_back({v});
    return out;
  }

  /// Regression values (column 0). Meaningful only for kRegression.
  std::vector<double> Values() const {
    std::vector<double> out;
    out.reserve(proba.size());
    for (const auto& row : proba) {
      out.push_back(row.empty() ? 0.0 : row[0]);
    }
    return out;
  }

  /// Hard class labels (per-row argmax). Meaningful only for
  /// classification tasks.
  std::vector<int> Labels() const {
    std::vector<int> out;
    out.reserve(proba.size());
    for (const auto& row : proba) {
      size_t best = 0;
      for (size_t c = 1; c < row.size(); ++c) {
        if (row[c] > row[best]) best = c;
      }
      out.push_back(static_cast<int>(best));
    }
    return out;
  }
};

}  // namespace green

#endif  // GREEN_ML_PREDICTION_H_
