#include "green/ml/models/naive_bayes.h"

#include <cmath>

#include "green/common/mathutil.h"

namespace green {

Status GaussianNaiveBayes::Fit(const Dataset& train,
                               ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  const int k = train.num_classes();
  if (n == 0) return Status::InvalidArgument("nb: empty training data");
  if (train.task() == TaskType::kRegression) {
    return Status::Unimplemented("naive_bayes: regression not supported");
  }

  ChargeScope scope(ctx, Name());
  num_features_ = d;
  mean_.assign(static_cast<size_t>(k) * d, 0.0);
  var_.assign(static_cast<size_t>(k) * d, 0.0);
  log_prior_.assign(static_cast<size_t>(k), 0.0);

  const std::vector<int> counts = train.ClassCounts();
  for (size_t r = 0; r < n; ++r) {
    const size_t c = static_cast<size_t>(train.Label(r));
    for (size_t j = 0; j < d; ++j) mean_[c * d + j] += train.At(r, j);
  }
  for (int c = 0; c < k; ++c) {
    const size_t cc = static_cast<size_t>(c);
    const double nc = std::max(1.0, static_cast<double>(counts[cc]));
    for (size_t j = 0; j < d; ++j) mean_[cc * d + j] /= nc;
    log_prior_[cc] = std::log(
        std::max(1e-12, static_cast<double>(counts[cc]) /
                            static_cast<double>(n)));
  }
  for (size_t r = 0; r < n; ++r) {
    const size_t c = static_cast<size_t>(train.Label(r));
    for (size_t j = 0; j < d; ++j) {
      const double dlt = train.At(r, j) - mean_[c * d + j];
      var_[c * d + j] += dlt * dlt;
    }
  }
  for (int c = 0; c < k; ++c) {
    const size_t cc = static_cast<size_t>(c);
    const double nc = std::max(1.0, static_cast<double>(counts[cc]));
    for (size_t j = 0; j < d; ++j) {
      var_[cc * d + j] =
          var_[cc * d + j] / nc + params_.var_smoothing + 1e-9;
    }
  }
  ctx->ChargeCpu(4.0 * static_cast<double>(n * d), train.FeatureBytes(),
                 /*parallel_fraction=*/0.8);
  MarkFitted(k);
  return Status::Ok();
}

Result<ProbaMatrix> GaussianNaiveBayes::PredictProba(
    const Dataset& data, ExecutionContext* ctx) const {
  if (!fitted()) return Status::FailedPrecondition("nb not fitted");
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("nb: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());
  const size_t d = num_features_;
  const int k = num_classes();
  ProbaMatrix out(data.num_rows());
  double flops = 0.0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    std::vector<double> log_like(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) {
      const size_t cc = static_cast<size_t>(c);
      double ll = log_prior_[cc];
      for (size_t j = 0; j < d; ++j) {
        const double v = var_[cc * d + j];
        const double dlt = data.At(r, j) - mean_[cc * d + j];
        ll += -0.5 * (std::log(2.0 * M_PI * v) + dlt * dlt / v);
      }
      log_like[cc] = ll;
    }
    SoftmaxInPlace(&log_like);
    out[r] = std::move(log_like);
    flops += 4.0 * static_cast<double>(k) * static_cast<double>(d);
  }
  ctx->ChargeCpu(flops, data.FeatureBytes(), /*parallel_fraction=*/0.9);
  return out;
}

}  // namespace green
