#include "green/ml/models/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "green/common/mathutil.h"
#include "green/common/rng.h"

namespace green {

void Mlp::Forward(const double* x, std::vector<double>* hidden,
                  std::vector<double>* logits) const {
  const size_t d = num_features_;
  const size_t h = static_cast<size_t>(params_.hidden_units);
  const size_t k = logits->size();
  for (size_t i = 0; i < h; ++i) {
    const double* w = &w1_[i * (d + 1)];
    double z = w[d];
    for (size_t j = 0; j < d; ++j) z += w[j] * x[j];
    (*hidden)[i] = z > 0.0 ? z : 0.0;  // ReLU.
  }
  for (size_t c = 0; c < k; ++c) {
    const double* w = &w2_[c * (h + 1)];
    double z = w[h];
    for (size_t i = 0; i < h; ++i) z += w[i] * (*hidden)[i];
    (*logits)[c] = z;
  }
}

Status Mlp::Fit(const Dataset& train, ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  const size_t h = static_cast<size_t>(params_.hidden_units);
  const int k = train.num_classes();
  if (n == 0) return Status::InvalidArgument("mlp: empty training data");

  ChargeScope scope(ctx, Name());
  const bool regression = train.task() == TaskType::kRegression;
  num_features_ = d;
  Rng rng(params_.seed);
  if (regression) {
    // Standardized targets keep the shared learning-rate schedule stable
    // across target scales; predictions are unscaled at the output.
    target_mean_ = train.TargetMean();
    double var = 0.0;
    for (double y : train.targets()) {
      const double dy = y - target_mean_;
      var += dy * dy;
    }
    var /= static_cast<double>(n);
    target_scale_ = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
  w1_.resize(h * (d + 1));
  w2_.resize(static_cast<size_t>(k) * (h + 1));
  const double scale1 = std::sqrt(2.0 / static_cast<double>(d + 1));
  const double scale2 = std::sqrt(2.0 / static_cast<double>(h + 1));
  for (double& w : w1_) w = rng.NextGaussian() * scale1;
  for (double& w : w2_) w = rng.NextGaussian() * scale2;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> hidden(h);
  std::vector<double> logits(static_cast<size_t>(k));
  std::vector<double> dhidden(h);
  double flops = 0.0;

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    if (ctx->Interrupted()) {
      return Status::DeadlineExceeded("mlp: interrupted mid-fit");
    }
    rng.Shuffle(&order);
    const double lr = params_.learning_rate /
                      (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t idx = 0; idx < n; ++idx) {
      const size_t r = order[idx];
      const double* x = train.RowPtr(r);
      Forward(x, &hidden, &logits);
      if (!regression) SoftmaxInPlace(&logits);

      // Output-layer gradient and hidden backprop. (Squared loss on the
      // single linear output and softmax cross-entropy share the same
      // err-times-activation gradient form.)
      std::fill(dhidden.begin(), dhidden.end(), 0.0);
      for (int c = 0; c < k; ++c) {
        const size_t cc = static_cast<size_t>(c);
        // Softmax cross-entropy bounds |err| by 1; squared loss does
        // not, so the regression step is Huber-clipped and normalized by
        // the hidden-activation energy (NLMS) — per-sample SGD then
        // stays stable at every learning rate the searchers propose.
        double err =
            regression
                ? logits[0] -
                      (train.Target(r) - target_mean_) / target_scale_
                : logits[cc] - (train.Label(r) == c ? 1.0 : 0.0);
        if (regression) {
          err = std::max(-3.0, std::min(3.0, err));
          double hidden_energy = 0.0;
          for (size_t i = 0; i < h; ++i) {
            hidden_energy += hidden[i] * hidden[i];
          }
          err /= 1.0 + hidden_energy;
        }
        double* w = &w2_[cc * (h + 1)];
        for (size_t i = 0; i < h; ++i) {
          dhidden[i] += err * w[i];
          w[i] -= lr * (err * hidden[i] + params_.l2 * w[i]);
        }
        w[h] -= lr * err;
      }
      for (size_t i = 0; i < h; ++i) {
        if (hidden[i] <= 0.0) continue;  // ReLU derivative.
        double* w = &w1_[i * (d + 1)];
        const double g = dhidden[i];
        for (size_t j = 0; j < d; ++j) {
          w[j] -= lr * (g * x[j] + params_.l2 * w[j]);
        }
        w[d] -= lr * g;
      }
      flops += 4.0 * (static_cast<double>(h) * static_cast<double>(d + 1) +
                      static_cast<double>(k) * static_cast<double>(h + 1));
    }
  }
  ctx->ChargeCpu(flops, train.FeatureBytes(), /*parallel_fraction=*/0.6);
  if (ctx->Interrupted()) {
    return Status::DeadlineExceeded("mlp: interrupted mid-fit");
  }
  MarkFitted(k, train.task());
  return Status::Ok();
}

Result<ProbaMatrix> Mlp::PredictProba(const Dataset& data,
                                      ExecutionContext* ctx) const {
  if (!fitted()) return Status::FailedPrecondition("mlp not fitted");
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("mlp: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());
  const size_t h = static_cast<size_t>(params_.hidden_units);
  const int k = num_classes();
  ProbaMatrix out(data.num_rows());
  std::vector<double> hidden(h);
  double flops = 0.0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    std::vector<double> logits(static_cast<size_t>(k));
    Forward(data.RowPtr(r), &hidden, &logits);
    if (task() == TaskType::kRegression) {
      logits[0] = target_mean_ + target_scale_ * logits[0];
    } else {
      SoftmaxInPlace(&logits);
    }
    out[r] = std::move(logits);
    flops += 2.0 * (static_cast<double>(h) *
                        static_cast<double>(num_features_ + 1) +
                    static_cast<double>(k) * static_cast<double>(h + 1));
  }
  ctx->ChargeCpu(flops, data.FeatureBytes(), /*parallel_fraction=*/0.9);
  return out;
}

}  // namespace green
