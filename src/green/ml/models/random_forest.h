#ifndef GREEN_ML_MODELS_RANDOM_FOREST_H_
#define GREEN_ML_MODELS_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "green/ml/models/decision_tree.h"

namespace green {

/// Bootstrap-aggregated forest of Gini trees with per-split feature
/// subsampling. Tree construction is embarrassingly parallel, so the
/// charged work carries a high parallel fraction — this is the property
/// that makes forest-heavy systems (AutoGluon) profit from multi-core
/// execution in the paper's Fig. 5.
struct RandomForestParams {
  int num_trees = 32;
  int max_depth = 10;
  int min_samples_leaf = 2;
  double max_features_fraction = 0.0;  ///< 0 = sqrt(d)/d heuristic.
  double bootstrap_fraction = 1.0;
  uint64_t seed = 1;
};

class RandomForest : public Estimator {
 public:
  explicit RandomForest(const RandomForestParams& params)
      : params_(params) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "random_forest"; }
  double InferenceFlopsPerRow(size_t num_features) const override;
  double ComplexityProxy() const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_RANDOM_FOREST_H_
