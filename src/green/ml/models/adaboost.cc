#include "green/ml/models/adaboost.h"

#include <algorithm>
#include <cmath>

#include "green/common/mathutil.h"
#include "green/common/rng.h"

namespace green {

Status AdaBoost::Fit(const Dataset& train, ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const int k = train.num_classes();
  if (n == 0) return Status::InvalidArgument("adaboost: empty data");
  if (train.task() == TaskType::kRegression) {
    return Status::Unimplemented("adaboost: regression not supported");
  }
  if (k < 2) return Status::InvalidArgument("adaboost: need >= 2 classes");
  ChargeScope scope(ctx, Name());
  stages_.clear();

  Rng rng(params_.seed);
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  std::vector<double> cumulative(n);
  double flops = 0.0;

  DecisionTreeParams tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_samples_leaf = 2;

  for (int round = 0; round < params_.num_rounds; ++round) {
    if (ctx->Interrupted()) {
      return Status::DeadlineExceeded("adaboost: interrupted mid-fit");
    }
    // Weighted-bootstrap approximation of weighted fitting: draw n rows
    // from the current weight distribution.
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += weights[i];
      cumulative[i] = acc;
    }
    std::vector<size_t> sample(n);
    for (size_t& s : sample) {
      const double u = rng.NextDouble() * acc;
      s = static_cast<size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), u) -
          cumulative.begin());
      if (s >= n) s = n - 1;
    }
    flops += static_cast<double>(n) *
             std::log2(std::max(2.0, static_cast<double>(n)));

    Rng tree_rng = rng.Fork();
    tree_params.seed = tree_rng.NextUint64();
    Stage stage(tree_params);
    GREEN_RETURN_IF_ERROR(
        stage.tree.FitCounted(train, sample, &tree_rng, &flops));

    // Weighted training error of the stage.
    ProbaMatrix proba;
    stage.tree.PredictProbaCounted(train, &proba, &flops);
    double err = 0.0;
    std::vector<int> preds(n);
    for (size_t i = 0; i < n; ++i) {
      preds[i] = static_cast<int>(ArgMax(proba[i]));
      if (preds[i] != train.Label(i)) err += weights[i];
    }
    err = Clamp(err, 1e-10, 1.0 - 1e-10);
    if (err >= 1.0 - 1.0 / static_cast<double>(k)) {
      // Worse than chance: SAMME stops (keep at least one stage).
      if (!stages_.empty()) break;
    }
    const double alpha =
        params_.learning_rate *
        (std::log((1.0 - err) / err) +
         std::log(static_cast<double>(k) - 1.0));
    stage.weight = std::max(1e-6, alpha);

    // Reweight: misclassified rows gain weight.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (preds[i] != train.Label(i)) {
        weights[i] *= std::exp(stage.weight);
      }
      total += weights[i];
    }
    for (double& w : weights) w /= total;
    flops += 4.0 * static_cast<double>(n);

    stages_.push_back(std::move(stage));
    if (err <= 1e-9) break;  // Perfect stage; no signal left.
  }
  if (stages_.empty()) {
    return Status::Internal("adaboost: no usable stage fitted");
  }
  // Sequential rounds; only per-stage tree work parallelizes.
  ctx->ChargeCpu(flops, train.FeatureBytes(), /*parallel_fraction=*/0.4);
  if (ctx->Interrupted()) {
    return Status::DeadlineExceeded("adaboost: interrupted mid-fit");
  }
  MarkFitted(k);
  return Status::Ok();
}

Result<ProbaMatrix> AdaBoost::PredictProba(const Dataset& data,
                                           ExecutionContext* ctx) const {
  if (!fitted()) return Status::FailedPrecondition("adaboost not fitted");
  ChargeScope scope(ctx, Name());
  const size_t k = static_cast<size_t>(num_classes());
  ProbaMatrix out(data.num_rows(), std::vector<double>(k, 0.0));
  double flops = 0.0;
  ProbaMatrix stage_out;
  for (const Stage& stage : stages_) {
    stage.tree.PredictProbaCounted(data, &stage_out, &flops);
    for (size_t i = 0; i < out.size(); ++i) {
      // SAMME votes with the stage's hard prediction, alpha-weighted.
      out[i][ArgMax(stage_out[i])] += stage.weight;
    }
    flops += static_cast<double>(data.num_rows());
  }
  for (auto& row : out) {
    double total = 0.0;
    for (double v : row) total += v;
    if (total <= 0.0) total = 1.0;
    for (double& v : row) v /= total;
  }
  ctx->ChargeCpu(flops, data.FeatureBytes(), /*parallel_fraction=*/0.9);
  return out;
}

double AdaBoost::InferenceFlopsPerRow(size_t num_features) const {
  double sum = 0.0;
  for (const Stage& stage : stages_) {
    sum += stage.tree.InferenceFlopsPerRow(num_features);
  }
  return sum + static_cast<double>(stages_.size());
}

double AdaBoost::ComplexityProxy() const {
  double sum = 0.0;
  for (const Stage& stage : stages_) sum += stage.tree.ComplexityProxy();
  return sum;
}

}  // namespace green
