#ifndef GREEN_ML_MODELS_ADABOOST_H_
#define GREEN_ML_MODELS_ADABOOST_H_

#include <vector>

#include "green/ml/estimator.h"
#include "green/ml/models/decision_tree.h"

namespace green {

/// SAMME multiclass AdaBoost over depth-limited decision stumps/trees —
/// another classic sklearn family in the studied systems' search spaces.
/// Sits between a single tree and gradient boosting in both training and
/// inference cost.
struct AdaBoostParams {
  int num_rounds = 30;
  int max_depth = 2;
  double learning_rate = 1.0;
  uint64_t seed = 1;
};

class AdaBoost : public Estimator {
 public:
  explicit AdaBoost(const AdaBoostParams& params) : params_(params) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "adaboost"; }
  double InferenceFlopsPerRow(size_t num_features) const override;
  double ComplexityProxy() const override;

  int rounds_fitted() const { return static_cast<int>(stages_.size()); }

 private:
  struct Stage {
    DecisionTree tree;
    double weight = 0.0;

    explicit Stage(const DecisionTreeParams& params) : tree(params) {}
  };

  AdaBoostParams params_;
  std::vector<Stage> stages_;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_ADABOOST_H_
