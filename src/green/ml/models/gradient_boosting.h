#ifndef GREEN_ML_MODELS_GRADIENT_BOOSTING_H_
#define GREEN_ML_MODELS_GRADIENT_BOOSTING_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Multiclass gradient boosting with shallow regression trees on the
/// softmax cross-entropy gradient (a compact LightGBM/XGBoost-style
/// learner, the backbone model family of AutoGluon and FLAML).
/// Boosting rounds are inherently sequential, so the charged work carries
/// a low parallel fraction — the opposite profile of bagged forests.
struct GradientBoostingParams {
  int num_rounds = 40;
  int max_depth = 3;
  double learning_rate = 0.15;
  int min_samples_leaf = 4;
  /// Rows subsampled per round (stochastic gradient boosting).
  double subsample = 1.0;
  uint64_t seed = 1;
};

class GradientBoosting : public Estimator {
 public:
  explicit GradientBoosting(const GradientBoostingParams& params)
      : params_(params) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "gradient_boosting"; }
  double InferenceFlopsPerRow(size_t num_features) const override;
  double ComplexityProxy() const override;

  int rounds_fitted() const { return rounds_fitted_; }

  /// Tree node layout, public so the kernel sink adapter can emit nodes.
  struct RegNode {
    int feature = -1;  ///< -1 marks a leaf.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };
  /// One regression tree: flat node array, root at 0.
  using RegTree = std::vector<RegNode>;

 private:
  RegTree FitRegTree(const Dataset& train,
                     const std::vector<size_t>& rows,
                     const std::vector<double>& target, double* flops) const;
  int BuildRegNode(const Dataset& train, std::vector<size_t>* rows,
                   const std::vector<double>& target, int depth,
                   RegTree* tree, double* flops) const;
  static double PredictRegTree(const RegTree& tree, const Dataset& data,
                               size_t row, double* flops);

  GradientBoostingParams params_;
  /// trees_[round][class].
  std::vector<std::vector<RegTree>> trees_;
  std::vector<double> base_score_;  ///< Log-prior per class.
  int rounds_fitted_ = 0;
  double total_nodes_ = 0.0;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_GRADIENT_BOOSTING_H_
