#include "green/ml/models/knn.h"

#include <algorithm>
#include <cmath>

#include "green/ml/kernels/distance_kernels.h"
#include "green/ml/kernels/kernels.h"

namespace green {

Status Knn::Fit(const Dataset& train, ExecutionContext* ctx) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("knn: empty training data");
  }
  ChargeScope scope(ctx, Name());
  train_ = train;
  train_cols_.clear();
  if (KernelsEnabled()) {
    const size_t n = train.num_rows();
    const size_t d = train.num_features();
    train_cols_.resize(n * d);
    for (size_t r = 0; r < n; ++r) {
      const double* row = train.RowPtr(r);
      for (size_t j = 0; j < d; ++j) train_cols_[j * n + r] = row[j];
    }
  }
  // Training is a copy: charge the bytes, not compute.
  ctx->ChargeCpu(static_cast<double>(train.num_rows()),
                 train.FeatureBytes());
  MarkFitted(train.num_classes(), train.task());
  return Status::Ok();
}

Result<ProbaMatrix> Knn::PredictProba(const Dataset& data,
                                      ExecutionContext* ctx) const {
  if (!fitted()) return Status::FailedPrecondition("knn not fitted");
  if (data.num_features() != train_.num_features()) {
    return Status::InvalidArgument("knn: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());
  const size_t n_train = train_.num_rows();
  const size_t d = train_.num_features();
  const int k_classes = num_classes();
  const size_t k = std::min<size_t>(
      n_train, std::max<size_t>(1, static_cast<size_t>(params_.k)));

  const bool use_kernels =
      KernelsEnabled() && train_cols_.size() == n_train * d;
  ProbaMatrix out(data.num_rows());
  double flops = 0.0;
  std::vector<double> acc;
  if (use_kernels) acc.resize(n_train);
  std::vector<std::pair<double, size_t>> dist(n_train);
  for (size_t q = 0; q < data.num_rows(); ++q) {
    const double* x = data.RowPtr(q);
    if (use_kernels) {
      // Blocked column-major scan; per-distance adds stay j-ascending,
      // so every distance is bit-identical to the row-major loop below.
      SquaredDistancesColMajor(train_cols_.data(), n_train, d, x,
                               acc.data());
      for (size_t r = 0; r < n_train; ++r) dist[r] = {acc[r], r};
    } else {
      for (size_t r = 0; r < n_train; ++r) {
        const double* t = train_.RowPtr(r);
        double s = 0.0;
        for (size_t j = 0; j < d; ++j) {
          const double diff = x[j] - t[j];
          s += diff * diff;
        }
        dist[r] = {s, r};
      }
    }
    flops += 3.0 * static_cast<double>(n_train) * static_cast<double>(d);
    std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
    flops += static_cast<double>(n_train) *
             std::log2(std::max<double>(2.0, static_cast<double>(k)));

    if (task() == TaskType::kRegression) {
      // Regression: (distance-weighted) mean of the neighbor targets.
      double weight_sum = 0.0;
      double value_sum = 0.0;
      for (size_t i = 0; i < k; ++i) {
        const double w = params_.distance_weighted
                             ? 1.0 / (1.0 + std::sqrt(dist[i].first))
                             : 1.0;
        value_sum += w * train_.Target(dist[i].second);
        weight_sum += w;
      }
      out[q] = {value_sum / weight_sum};
      continue;
    }
    std::vector<double> votes(static_cast<size_t>(k_classes), 0.0);
    for (size_t i = 0; i < k; ++i) {
      const double w = params_.distance_weighted
                           ? 1.0 / (1.0 + std::sqrt(dist[i].first))
                           : 1.0;
      votes[static_cast<size_t>(train_.Label(dist[i].second))] += w;
    }
    double sum = 0.0;
    for (double v : votes) sum += v;
    for (double& v : votes) v /= sum;
    out[q] = std::move(votes);
  }
  ctx->ChargeCpu(flops, data.FeatureBytes() + train_.FeatureBytes(),
                 /*parallel_fraction=*/0.9);
  return out;
}

}  // namespace green
