#ifndef GREEN_ML_MODELS_MLP_H_
#define GREEN_ML_MODELS_MLP_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Single-hidden-layer multilayer perceptron (ReLU + softmax) trained
/// with SGD. The expensive-to-train, moderately-expensive-to-serve model
/// family; the paper's tuned CAML only admits MLPs at the 5-minute budget.
/// On regression tasks the output layer is a single linear unit trained
/// with squared loss on standardized targets.
struct MlpParams {
  int hidden_units = 32;
  int epochs = 40;
  double learning_rate = 0.05;
  double l2 = 1e-5;
  int batch_size = 32;
  uint64_t seed = 1;
};

class Mlp : public Estimator {
 public:
  explicit Mlp(const MlpParams& params) : params_(params) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "mlp"; }
  double InferenceFlopsPerRow(size_t num_features) const override {
    return 2.0 * static_cast<double>(num_features) *
               static_cast<double>(params_.hidden_units) +
           2.0 * static_cast<double>(params_.hidden_units) *
               static_cast<double>(num_classes());
  }
  double ComplexityProxy() const override {
    return static_cast<double>(w1_.size() + w2_.size());
  }

 private:
  void Forward(const double* x, std::vector<double>* hidden,
               std::vector<double>* logits) const;

  MlpParams params_;
  size_t num_features_ = 0;
  /// w1: (hidden x (d+1)), w2: (k x (hidden+1)); last columns are biases.
  std::vector<double> w1_;
  std::vector<double> w2_;
  /// Target standardization (regression mode only).
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_MLP_H_
