#include "green/ml/models/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "green/common/arena.h"
#include "green/common/logging.h"
#include "green/ml/kernels/kernels.h"
#include "green/ml/kernels/tree_kernels.h"

namespace green {

namespace {

/// Gini impurity of a count vector with total `n`.
double Gini(const std::vector<double>& counts, double n) {
  if (n <= 0.0) return 0.0;
  double g = 1.0;
  for (double c : counts) {
    const double p = c / n;
    g -= p * p;
  }
  return g;
}

std::vector<double> ClassDistribution(const Dataset& train,
                                      const std::vector<size_t>& rows) {
  std::vector<double> counts(static_cast<size_t>(train.num_classes()), 0.0);
  for (size_t r : rows) {
    counts[static_cast<size_t>(train.Label(r))] += 1.0;
  }
  return counts;
}

void Normalize(std::vector<double>* v) {
  double sum = 0.0;
  for (double x : *v) sum += x;
  if (sum <= 0.0) {
    const double u = 1.0 / static_cast<double>(v->size());
    for (double& x : *v) x = u;
    return;
  }
  for (double& x : *v) x /= sum;
}

}  // namespace

/// Writes kernel-built nodes into the tree's flat node vector; reserve
/// order matches the reference builders' preorder emplace_back exactly.
struct DecisionTree::KernelSink : TreeNodeSink {
  explicit KernelSink(std::vector<Node>* nodes) : nodes(nodes) {}
  std::vector<Node>* nodes;

  int ReserveNode() override {
    nodes->emplace_back();
    return static_cast<int>(nodes->size() - 1);
  }
  void SetLeafProba(int node, std::vector<double> proba) override {
    (*nodes)[static_cast<size_t>(node)].proba = std::move(proba);
  }
  void SetLeafValue(int node, double value) override {
    (*nodes)[static_cast<size_t>(node)].proba = {value};
  }
  void SetSplit(int node, int feature, double threshold, int left,
                int right) override {
    Node& n = (*nodes)[static_cast<size_t>(node)];
    n.feature = feature;
    n.threshold = threshold;
    n.left = left;
    n.right = right;
  }
};

Status DecisionTree::Fit(const Dataset& train, ExecutionContext* ctx) {
  ChargeScope scope(ctx, Name());
  std::vector<size_t> all(train.num_rows());
  std::iota(all.begin(), all.end(), 0);
  Rng rng(params_.seed);
  double flops = 0.0;
  GREEN_RETURN_IF_ERROR(FitCounted(train, all, &rng, &flops));
  // Single-tree induction is mostly sequential (node-by-node greedy).
  ctx->ChargeCpu(flops, train.FeatureBytes(), /*parallel_fraction=*/0.3);
  if (ctx->Interrupted()) {
    return Status::DeadlineExceeded("decision_tree: interrupted mid-fit");
  }
  return Status::Ok();
}

Status DecisionTree::FitCounted(const Dataset& train,
                                const std::vector<size_t>& row_indices,
                                Rng* rng, double* flops) {
  if (train.num_rows() == 0 || row_indices.empty()) {
    return Status::InvalidArgument("decision_tree: empty training data");
  }
  nodes_.clear();
  if (KernelsEnabled() &&
      train.num_rows() <= std::numeric_limits<uint32_t>::max()) {
    TreeKernelParams kp;
    kp.max_depth = params_.max_depth;
    kp.min_samples_leaf = params_.min_samples_leaf;
    kp.max_features_fraction = params_.max_features_fraction;
    kp.random_thresholds = params_.random_thresholds;
    kp.histogram_bins = params_.histogram_bins;
    KernelSink sink(&nodes_);
    if (train.task() == TaskType::kRegression) {
      KernelBuildRegTree(train, row_indices, kp, rng, flops,
                         ScratchArena(), &sink);
    } else {
      KernelBuildClsTree(train, row_indices, kp, train.num_classes(), rng,
                         flops, ScratchArena(), &sink);
    }
  } else {
    std::vector<size_t> rows = row_indices;
    if (train.task() == TaskType::kRegression) {
      BuildRegNode(train, &rows, 0, rng, flops);
    } else {
      BuildNode(train, &rows, 0, rng, flops);
    }
  }

  // Mean leaf depth drives the per-row inference cost estimate.
  double total_depth = 0.0;
  size_t leaves = 0;
  std::vector<std::pair<int, int>> stack = {{0, 0}};  // (node, depth)
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(idx)];
    if (node.feature < 0) {
      total_depth += depth;
      ++leaves;
    } else {
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
  }
  mean_leaf_depth_ = leaves > 0 ? total_depth / static_cast<double>(leaves)
                                : 0.0;
  MarkFitted(train.num_classes(), train.task());
  return Status::Ok();
}

int DecisionTree::BuildRegNode(const Dataset& train,
                               std::vector<size_t>* rows, int depth,
                               Rng* rng, double* flops) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  const double n = static_cast<double>(rows->size());
  double sum = 0.0;
  double sumsq = 0.0;
  for (size_t r : *rows) {
    const double y = train.Target(r);
    sum += y;
    sumsq += y * y;
  }
  *flops += 2.0 * n;
  const double mean = sum / n;
  const double node_sse = sumsq - sum * sum / n;

  const bool stop = depth >= params_.max_depth ||
                    rows->size() <
                        2 * static_cast<size_t>(params_.min_samples_leaf) ||
                    node_sse <= 1e-12;
  if (stop) {
    nodes_[static_cast<size_t>(node_index)].proba = {mean};
    return node_index;
  }

  // Candidate feature subset (same policy as the classification path).
  const size_t d = train.num_features();
  std::vector<size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  if (params_.max_features_fraction > 0.0 &&
      params_.max_features_fraction < 1.0) {
    const size_t d_used = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(params_.max_features_fraction *
                                         static_cast<double>(d))));
    rng->Shuffle(&features);
    features.resize(d_used);
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_sse = node_sse;  // Must strictly improve.

  std::vector<std::pair<double, size_t>> sorted;
  sorted.reserve(rows->size());
  std::vector<double> col;
  col.reserve(rows->size());
  for (size_t f : features) {
    if (params_.random_thresholds) {
      // Extra-Trees: one uniformly random threshold per feature. The
      // min/max pass gathers the column so the threshold scan below
      // reads the gathered copy instead of re-fetching every value.
      double lo = train.At((*rows)[0], f);
      double hi = lo;
      col.clear();
      for (size_t r : *rows) {
        const double v = train.At(r, f);
        col.push_back(v);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      *flops += n;
      if (hi - lo <= 1e-12) continue;
      const double thr = rng->NextUniform(lo, hi);
      double left_sum = 0.0;
      double left_sumsq = 0.0;
      double n_left = 0.0;
      for (size_t i = 0; i < col.size(); ++i) {
        if (col[i] <= thr) {
          const double y = train.Target((*rows)[i]);
          left_sum += y;
          left_sumsq += y * y;
          n_left += 1.0;
        }
      }
      *flops += 2.0 * n;
      const double n_right = n - n_left;
      if (n_left < params_.min_samples_leaf ||
          n_right < params_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sumsq = sumsq - left_sumsq;
      const double sse = (left_sumsq - left_sum * left_sum / n_left) +
                         (right_sumsq - right_sum * right_sum / n_right);
      if (sse < best_sse - 1e-12) {
        best_sse = sse;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
      continue;
    }

    // Exact search: sort node rows by feature value, sweep split points
    // keeping running sums so each candidate is O(1).
    sorted.clear();
    for (size_t r : *rows) sorted.emplace_back(train.At(r, f), r);
    std::sort(sorted.begin(), sorted.end());
    *flops += n * std::log2(std::max(2.0, n));

    double left_sum = 0.0;
    double left_sumsq = 0.0;
    double n_left = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double y = train.Target(sorted[i].second);
      left_sum += y;
      left_sumsq += y * y;
      n_left += 1.0;
      if (sorted[i + 1].first - sorted[i].first <= 1e-12) continue;
      const double n_right = n - n_left;
      if (n_left < params_.min_samples_leaf ||
          n_right < params_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sumsq = sumsq - left_sumsq;
      const double sse = (left_sumsq - left_sum * left_sum / n_left) +
                         (right_sumsq - right_sum * right_sum / n_right);
      if (sse < best_sse - 1e-12) {
        best_sse = sse;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
    *flops += 4.0 * n;
  }

  if (best_feature < 0) {
    nodes_[static_cast<size_t>(node_index)].proba = {mean};
    return node_index;
  }

  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (size_t r : *rows) {
    if (train.At(r, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  rows->clear();
  rows->shrink_to_fit();

  const int left = BuildRegNode(train, &left_rows, depth + 1, rng, flops);
  const int right = BuildRegNode(train, &right_rows, depth + 1, rng, flops);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

int DecisionTree::BuildNode(const Dataset& train, std::vector<size_t>* rows,
                            int depth, Rng* rng, double* flops) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  std::vector<double> counts = ClassDistribution(train, *rows);
  const double n = static_cast<double>(rows->size());
  const double node_gini = Gini(counts, n);
  *flops += n;

  const bool stop = depth >= params_.max_depth ||
                    rows->size() <
                        2 * static_cast<size_t>(params_.min_samples_leaf) ||
                    node_gini <= 1e-12;
  if (stop) {
    Normalize(&counts);
    nodes_[static_cast<size_t>(node_index)].proba = std::move(counts);
    return node_index;
  }

  // Candidate feature subset.
  const size_t d = train.num_features();
  std::vector<size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  size_t d_used = d;
  if (params_.max_features_fraction > 0.0 &&
      params_.max_features_fraction < 1.0) {
    d_used = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(params_.max_features_fraction *
                                         static_cast<double>(d))));
    rng->Shuffle(&features);
    features.resize(d_used);
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = node_gini;  // Must strictly improve.
  std::vector<double> left_counts(counts.size());

  std::vector<std::pair<double, size_t>> sorted;
  sorted.reserve(rows->size());
  std::vector<double> col;
  col.reserve(rows->size());
  for (size_t f : features) {
    if (params_.random_thresholds) {
      // Extra-Trees: one uniformly random threshold per feature. The
      // min/max pass gathers the column so the threshold scan below
      // reads the gathered copy instead of re-fetching every value.
      double lo = train.At((*rows)[0], f);
      double hi = lo;
      col.clear();
      for (size_t r : *rows) {
        const double v = train.At(r, f);
        col.push_back(v);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      *flops += n;
      if (hi - lo <= 1e-12) continue;
      const double thr = rng->NextUniform(lo, hi);
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      double n_left = 0.0;
      for (size_t i = 0; i < col.size(); ++i) {
        if (col[i] <= thr) {
          left_counts[static_cast<size_t>(train.Label((*rows)[i]))] += 1.0;
          n_left += 1.0;
        }
      }
      *flops += n;
      const double n_right = n - n_left;
      if (n_left < params_.min_samples_leaf ||
          n_right < params_.min_samples_leaf) {
        continue;
      }
      std::vector<double> right_counts(counts.size());
      for (size_t c = 0; c < counts.size(); ++c) {
        right_counts[c] = counts[c] - left_counts[c];
      }
      const double score = (n_left * Gini(left_counts, n_left) +
                            n_right * Gini(right_counts, n_right)) /
                           n;
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
      continue;
    }

    // Exact search: sort node rows by feature value, sweep split points.
    sorted.clear();
    for (size_t r : *rows) sorted.emplace_back(train.At(r, f), r);
    std::sort(sorted.begin(), sorted.end());
    *flops += n * std::log2(std::max(2.0, n));

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double n_left = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      const size_t r = sorted[i].second;
      left_counts[static_cast<size_t>(train.Label(r))] += 1.0;
      n_left += 1.0;
      if (sorted[i + 1].first - sorted[i].first <= 1e-12) continue;
      const double n_right = n - n_left;
      if (n_left < params_.min_samples_leaf ||
          n_right < params_.min_samples_leaf) {
        continue;
      }
      double right_gini = 1.0;
      double left_gini = 1.0;
      for (size_t c = 0; c < counts.size(); ++c) {
        const double pl = left_counts[c] / n_left;
        const double pr = (counts[c] - left_counts[c]) / n_right;
        left_gini -= pl * pl;
        right_gini -= pr * pr;
      }
      const double score = (n_left * left_gini + n_right * right_gini) / n;
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
    *flops += n * static_cast<double>(counts.size());
  }

  if (best_feature < 0) {
    Normalize(&counts);
    nodes_[static_cast<size_t>(node_index)].proba = std::move(counts);
    return node_index;
  }

  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (size_t r : *rows) {
    if (train.At(r, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  rows->clear();
  rows->shrink_to_fit();

  const int left = BuildNode(train, &left_rows, depth + 1, rng, flops);
  const int right = BuildNode(train, &right_rows, depth + 1, rng, flops);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

const std::vector<double>& DecisionTree::RowProba(const Dataset& data,
                                                  size_t row,
                                                  double* flops) const {
  int idx = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    if (node.feature < 0) return node.proba;
    *flops += 2.0;
    idx = data.At(row, static_cast<size_t>(node.feature)) <= node.threshold
              ? node.left
              : node.right;
  }
}

void DecisionTree::PredictProbaCounted(const Dataset& data,
                                       ProbaMatrix* out,
                                       double* flops) const {
  out->resize(data.num_rows());
  for (size_t r = 0; r < data.num_rows(); ++r) {
    (*out)[r] = RowProba(data, r, flops);
  }
}

void DecisionTree::AccumulateProbaCounted(const Dataset& data, double* acc,
                                          size_t k, double* flops) const {
  for (size_t r = 0; r < data.num_rows(); ++r) {
    const std::vector<double>& proba = RowProba(data, r, flops);
    double* row = acc + r * k;
    for (size_t c = 0; c < proba.size(); ++c) row[c] += proba[c];
  }
}

Result<ProbaMatrix> DecisionTree::PredictProba(const Dataset& data,
                                               ExecutionContext* ctx) const {
  if (!fitted()) return Status::FailedPrecondition("tree not fitted");
  ChargeScope scope(ctx, Name());
  ProbaMatrix out;
  double flops = 0.0;
  PredictProbaCounted(data, &out, &flops);
  ctx->ChargeCpu(flops, data.FeatureBytes(), /*parallel_fraction=*/0.9);
  return out;
}

double DecisionTree::InferenceFlopsPerRow(size_t num_features) const {
  return 2.0 * std::max(1.0, mean_leaf_depth_);
}

}  // namespace green
