#ifndef GREEN_ML_MODELS_DECISION_TREE_H_
#define GREEN_ML_MODELS_DECISION_TREE_H_

#include <vector>

#include "green/common/rng.h"
#include "green/ml/estimator.h"

namespace green {

/// CART-style tree: Gini impurity for classification, variance reduction
/// with target-mean leaves for regression (the task is taken from the
/// training dataset; regression leaves store a single-element proba row
/// holding the leaf mean).
///
/// The paper's tuned CAML repeatedly selects decision trees because "they
/// can be both simple (shallow and narrow) and complex (deep and wide)" —
/// the depth/leaf hyperparameters below span exactly that range.
struct DecisionTreeParams {
  int max_depth = 8;
  int min_samples_leaf = 2;
  /// Features examined per split: 0 = all, otherwise ceil(fraction * d).
  double max_features_fraction = 0.0;
  /// If true, thresholds are drawn uniformly at random between the
  /// feature's node-local min/max instead of exhaustively searched —
  /// the Extra-Trees randomization.
  bool random_thresholds = false;
  /// > 0 replaces the exact classification split scan with a fixed-bin
  /// histogram scan of that many bins (kernel path only; ignored when
  /// GREEN_KERNELS=0 or random_thresholds is set). An approximation —
  /// default 0 keeps the exact sweep, which no reproduced system
  /// overrides, preserving the kernels-on/off byte-identity invariant.
  int histogram_bins = 0;
  uint64_t seed = 1;
};

class DecisionTree : public Estimator {
 public:
  explicit DecisionTree(const DecisionTreeParams& params)
      : params_(params) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "decision_tree"; }
  double InferenceFlopsPerRow(size_t num_features) const override;
  double ComplexityProxy() const override {
    return static_cast<double>(nodes_.size());
  }

  /// Ensemble-internal entry points: train/score on behalf of a parent
  /// that does its own (parallel) work accounting. `flops` accumulates
  /// the abstract work performed.
  Status FitCounted(const Dataset& train,
                    const std::vector<size_t>& row_indices, Rng* rng,
                    double* flops);
  void PredictProbaCounted(const Dataset& data, ProbaMatrix* out,
                           double* flops) const;
  /// Adds each row's leaf distribution into a flat rows x k accumulator
  /// (acc[r * k + c]) without materializing a per-tree ProbaMatrix —
  /// the ensemble-predict kernel path. Charges the same flops as
  /// PredictProbaCounted.
  void AccumulateProbaCounted(const Dataset& data, double* acc, size_t k,
                              double* flops) const;

  size_t num_nodes() const { return nodes_.size(); }
  double mean_leaf_depth() const { return mean_leaf_depth_; }

 private:
  struct Node {
    int feature = -1;           ///< -1 marks a leaf.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<double> proba;  ///< Leaf class distribution.
  };

  struct KernelSink;  ///< TreeNodeSink adapter (decision_tree.cc).

  int BuildNode(const Dataset& train, std::vector<size_t>* rows, int depth,
                Rng* rng, double* flops);
  int BuildRegNode(const Dataset& train, std::vector<size_t>* rows,
                   int depth, Rng* rng, double* flops);
  const std::vector<double>& RowProba(const Dataset& data, size_t row,
                                      double* flops) const;

  DecisionTreeParams params_;
  std::vector<Node> nodes_;
  double mean_leaf_depth_ = 0.0;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_DECISION_TREE_H_
