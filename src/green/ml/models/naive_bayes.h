#ifndef GREEN_ML_MODELS_NAIVE_BAYES_H_
#define GREEN_ML_MODELS_NAIVE_BAYES_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Gaussian naive Bayes: the cheapest learner in the zoo (one pass over
/// the data to train, O(d*k) per prediction). FLAML-style cost-frugal
/// search starts from models of exactly this complexity class.
struct NaiveBayesParams {
  double var_smoothing = 1e-9;
};

class GaussianNaiveBayes : public Estimator {
 public:
  explicit GaussianNaiveBayes(const NaiveBayesParams& params)
      : params_(params) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "naive_bayes"; }
  double InferenceFlopsPerRow(size_t num_features) const override {
    return 4.0 * static_cast<double>(num_features) *
           static_cast<double>(num_classes());
  }
  double ComplexityProxy() const override {
    return static_cast<double>(mean_.size() * 2 + log_prior_.size());
  }

 private:
  NaiveBayesParams params_;
  size_t num_features_ = 0;
  /// Row-major (k x d).
  std::vector<double> mean_;
  std::vector<double> var_;
  std::vector<double> log_prior_;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_NAIVE_BAYES_H_
