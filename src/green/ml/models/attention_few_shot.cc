#include "green/ml/models/attention_few_shot.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "green/common/mathutil.h"
#include "green/common/rng.h"
#include "green/ml/kernels/distance_kernels.h"
#include "green/ml/kernels/kernels.h"
#include "green/table/split.h"

namespace green {

AttentionFewShot::AttentionFewShot(const AttentionFewShotParams& params)
    : params_(params) {}

Status AttentionFewShot::Fit(const Dataset& train, ExecutionContext* ctx) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("few_shot: empty training data");
  }
  if (train.task() == TaskType::kRegression) {
    return Status::Unimplemented("few_shot: regression not supported");
  }
  ChargeScope scope(ctx, Name());
  class_limit_exceeded_ = train.num_classes() > params_.max_classes;

  // TabPFN was "mainly developed for datasets with up to 1k instances":
  // larger training sets are stratified-subsampled into the context.
  if (train.num_rows() > static_cast<size_t>(params_.max_context)) {
    Rng rng(HashCombine(params_.pretrain_seed, train.num_rows()));
    const int per_class = std::max(
        1, params_.max_context / std::max(1, train.num_classes()));
    context_ = train.Subset(SamplePerClass(train, per_class, &rng));
  } else {
    context_ = train;
  }

  // Class prior (the fallback beyond the class limit, and a smoother).
  prior_.assign(static_cast<size_t>(train.num_classes()), 0.0);
  const std::vector<int> counts = train.ClassCounts();
  for (size_t c = 0; c < prior_.size(); ++c) {
    prior_[c] = (static_cast<double>(counts[c]) + 1.0) /
                (static_cast<double>(train.num_rows()) +
                 static_cast<double>(prior_.size()));
  }

  // Execution cost is just loading the pretrained weights and memorizing
  // the context — this is what makes TabPFN a single near-zero-energy
  // point on the execution chart.
  ctx->ChargeAccelerated(
      1.5e4 + static_cast<double>(context_.num_rows()),
      context_.FeatureBytes() + 4.0e6 /* weight load */);
  MarkFitted(train.num_classes());
  return Status::Ok();
}

std::vector<double> AttentionFewShot::Project(const double* x,
                                              size_t d) const {
  const size_t h = static_cast<size_t>(params_.embed_dim);
  std::vector<double> out(h, 0.0);
  for (size_t i = 0; i < h; ++i) {
    const double* w = &projection_[i * d];
    double z = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double norm =
          (x[j] - feature_mean_[j]) / feature_std_[j];
      z += w[j] * norm;
    }
    out[i] = std::tanh(z);  // Bounded embedding, like a trained encoder.
  }
  return out;
}

Result<ProbaMatrix> AttentionFewShot::PredictProba(
    const Dataset& data, ExecutionContext* ctx) const {
  if (!fitted()) return Status::FailedPrecondition("few_shot not fitted");
  if (data.num_features() != context_.num_features()) {
    return Status::InvalidArgument("few_shot: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());
  const size_t n_ctx = context_.num_rows();
  const size_t d = context_.num_features();
  const size_t h = static_cast<size_t>(params_.embed_dim);
  const int k = num_classes();
  ProbaMatrix out(data.num_rows());

  if (class_limit_exceeded_) {
    // Official-implementation limit: degrade to the class prior.
    for (auto& row : out) row = prior_;
    ctx->ChargeAccelerated(static_cast<double>(data.num_rows() * k),
                           data.FeatureBytes());
    return out;
  }

  // The "forward pass over the training data": feature normalization
  // statistics and context embeddings are recomputed here, at inference —
  // that is TabPFN's cost structure, and the reason its inference energy
  // dwarfs its execution energy.
  feature_mean_.assign(d, 0.0);
  feature_std_.assign(d, 1.0);
  for (size_t r = 0; r < n_ctx; ++r) {
    for (size_t j = 0; j < d; ++j) {
      feature_mean_[j] += context_.At(r, j);
    }
  }
  for (size_t j = 0; j < d; ++j) {
    feature_mean_[j] /= static_cast<double>(n_ctx);
  }
  for (size_t j = 0; j < d; ++j) {
    double var = 0.0;
    for (size_t r = 0; r < n_ctx; ++r) {
      const double dlt = context_.At(r, j) - feature_mean_[j];
      var += dlt * dlt;
    }
    var /= static_cast<double>(n_ctx);
    feature_std_[j] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }

  // Pretrained projection: fixed random weights from the pretrain seed.
  if (projection_.size() != h * d) {
    Rng rng(params_.pretrain_seed);
    projection_.resize(h * d);
    const double scale = 1.0 / std::sqrt(static_cast<double>(d));
    for (double& w : projection_) w = rng.NextGaussian() * scale;
  }

  if (KernelsEnabled()) {
    // Kernel path: each row is normalized once into a scratch vector
    // (the reference recomputes (x - mean) / std for every embedding
    // dimension — identical doubles, h x fewer divisions) and the keys
    // live in one contiguous n_ctx x h buffer. Per-score dot products
    // keep the same ascending accumulation as Dot().
    std::vector<double> norm(d);
    std::vector<double> keys_flat(n_ctx * h);
    for (size_t r = 0; r < n_ctx; ++r) {
      const double* p = context_.RowPtr(r);
      for (size_t j = 0; j < d; ++j) {
        norm[j] = (p[j] - feature_mean_[j]) / feature_std_[j];
      }
      ProjectTanh(projection_.data(), h, d, norm.data(),
                  keys_flat.data() + r * h);
    }
    std::vector<double> query(h);
    std::vector<double> scores(n_ctx);
    const double denom =
        params_.temperature * std::sqrt(static_cast<double>(h));
    for (size_t q = 0; q < data.num_rows(); ++q) {
      const double* x = data.RowPtr(q);
      for (size_t j = 0; j < d; ++j) {
        norm[j] = (x[j] - feature_mean_[j]) / feature_std_[j];
      }
      ProjectTanh(projection_.data(), h, d, norm.data(), query.data());
      for (size_t r = 0; r < n_ctx; ++r) {
        const double* key = keys_flat.data() + r * h;
        double s = 0.0;
        for (size_t i = 0; i < h; ++i) s += query[i] * key[i];
        scores[r] = s / denom;
      }
      SoftmaxInPlace(&scores);
      std::vector<double> proba(static_cast<size_t>(k), 0.0);
      for (size_t r = 0; r < n_ctx; ++r) {
        proba[static_cast<size_t>(context_.Label(r))] += scores[r];
      }
      for (int c = 0; c < k; ++c) {
        const size_t cc = static_cast<size_t>(c);
        proba[cc] = 0.95 * proba[cc] + 0.05 * prior_[cc];
      }
      out[q] = std::move(proba);
    }
  } else {
    std::vector<std::vector<double>> keys(n_ctx);
    for (size_t r = 0; r < n_ctx; ++r) {
      keys[r] = Project(context_.RowPtr(r), d);
    }

    std::vector<double> scores(n_ctx);
    for (size_t q = 0; q < data.num_rows(); ++q) {
      const std::vector<double> query = Project(data.RowPtr(q), d);
      for (size_t r = 0; r < n_ctx; ++r) {
        scores[r] =
            Dot(query, keys[r]) /
            (params_.temperature * std::sqrt(static_cast<double>(h)));
      }
      SoftmaxInPlace(&scores);
      std::vector<double> proba(static_cast<size_t>(k), 0.0);
      for (size_t r = 0; r < n_ctx; ++r) {
        proba[static_cast<size_t>(context_.Label(r))] += scores[r];
      }
      // Prior smoothing (the transformer's calibrated head).
      for (int c = 0; c < k; ++c) {
        const size_t cc = static_cast<size_t>(c);
        proba[cc] = 0.95 * proba[cc] + 0.05 * prior_[cc];
      }
      out[q] = std::move(proba);
    }
  }

  // Charged as `num_layers` transformer blocks over (context + query):
  // embeddings, attention scores, and value aggregation.
  const double per_query =
      static_cast<double>(params_.num_layers) *
      (static_cast<double>(n_ctx) * static_cast<double>(h) +
       static_cast<double>(h) * static_cast<double>(d) * 2.0);
  const double context_embed =
      static_cast<double>(params_.num_layers) * static_cast<double>(n_ctx) *
      static_cast<double>(h) * static_cast<double>(d) * 2.0;
  ctx->ChargeAccelerated(
      context_embed + per_query * static_cast<double>(data.num_rows()),
      data.FeatureBytes() + context_.FeatureBytes());
  return out;
}

double AttentionFewShot::InferenceFlopsPerRow(size_t num_features) const {
  const double n_ctx = static_cast<double>(context_.num_rows());
  const double h = static_cast<double>(params_.embed_dim);
  const double layers = static_cast<double>(params_.num_layers);
  return layers * (n_ctx * h +
                   h * static_cast<double>(num_features) * 2.0 +
                   n_ctx * h * static_cast<double>(num_features) * 0.1);
}

double AttentionFewShot::ComplexityProxy() const {
  return static_cast<double>(params_.embed_dim) *
             static_cast<double>(context_.num_features()) +
         static_cast<double>(context_.num_rows() *
                             context_.num_features());
}

}  // namespace green
