#include "green/ml/models/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <optional>

#include "green/common/arena.h"
#include "green/common/mathutil.h"
#include "green/common/rng.h"
#include "green/ml/kernels/kernels.h"
#include "green/ml/kernels/tree_kernels.h"

namespace green {

namespace {

/// Writes kernel-built nodes into a RegTree; reserve order matches the
/// reference BuildRegNode's preorder emplace_back exactly.
struct RegTreeSink : TreeNodeSink {
  explicit RegTreeSink(std::vector<GradientBoosting::RegNode>* tree)
      : tree(tree) {}
  std::vector<GradientBoosting::RegNode>* tree;

  int ReserveNode() override {
    tree->emplace_back();
    return static_cast<int>(tree->size() - 1);
  }
  void SetLeafProba(int node, std::vector<double> proba) override {
    (*tree)[static_cast<size_t>(node)].value = proba[0];
  }
  void SetLeafValue(int node, double value) override {
    (*tree)[static_cast<size_t>(node)].value = value;
  }
  void SetSplit(int node, int feature, double threshold, int left,
                int right) override {
    GradientBoosting::RegNode& n = (*tree)[static_cast<size_t>(node)];
    n.feature = feature;
    n.threshold = threshold;
    n.left = left;
    n.right = right;
  }
};

}  // namespace

Status GradientBoosting::Fit(const Dataset& train, ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const int k = train.num_classes();
  if (n == 0) return Status::InvalidArgument("gboost: empty training data");

  ChargeScope scope(ctx, Name());
  trees_.clear();
  rounds_fitted_ = 0;
  total_nodes_ = 0.0;
  double flops = 0.0;
  Rng rng(params_.seed);

  const bool regression = train.task() == TaskType::kRegression;
  if (regression) {
    // Regression base score: the target mean (squared-loss optimum).
    base_score_.assign(1, train.TargetMean());
  } else {
    // Class log-priors as the base score.
    base_score_.assign(static_cast<size_t>(k), 0.0);
    const std::vector<int> counts = train.ClassCounts();
    for (int c = 0; c < k; ++c) {
      const double p = std::max(
          1e-6, static_cast<double>(counts[static_cast<size_t>(c)]) /
                    static_cast<double>(n));
      base_score_[static_cast<size_t>(c)] = std::log(p);
    }
  }

  // Raw scores per row per class.
  std::vector<std::vector<double>> score(
      n, std::vector<double>(base_score_.begin(), base_score_.end()));
  std::vector<double> target(n);
  std::vector<double> proba;

  for (int round = 0; round < params_.num_rounds; ++round) {
    if (ctx->Interrupted()) {
      return Status::DeadlineExceeded("gboost: interrupted mid-fit");
    }
    std::vector<size_t> rows;
    if (params_.subsample < 1.0) {
      for (size_t r = 0; r < n; ++r) {
        if (rng.NextBool(params_.subsample)) rows.push_back(r);
      }
      if (rows.size() < 4) {
        rows.resize(std::min<size_t>(n, 4));
        std::iota(rows.begin(), rows.end(), 0);
      }
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), 0);
    }

    const bool use_kernels =
        KernelsEnabled() &&
        train.num_rows() <= std::numeric_limits<uint32_t>::max();
    // The k per-class trees of one round share the row sample, so the
    // kernel path presorts each feature once per round and hands every
    // tree a pristine copy.
    Arena* arena = ScratchArena();
    ArenaScope round_scope(arena);
    std::optional<GbRoundPresort> presort;
    TreeKernelParams kp;
    if (use_kernels) {
      presort.emplace(train, rows, arena);
      kp.max_depth = params_.max_depth;
      kp.min_samples_leaf = params_.min_samples_leaf;
    }

    std::vector<RegTree> round_trees;
    round_trees.reserve(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) {
      if (regression) {
        // Negative gradient of squared loss: the residual y - score.
        for (size_t r = 0; r < n; ++r) {
          target[r] = train.Target(r) - score[r][0];
        }
      } else {
        // Negative gradient of softmax cross-entropy: 1{y=c} - p_c.
        for (size_t r = 0; r < n; ++r) {
          proba = score[r];
          SoftmaxInPlace(&proba);
          target[r] = (train.Label(r) == c ? 1.0 : 0.0) -
                      proba[static_cast<size_t>(c)];
        }
      }
      flops += static_cast<double>(n) * static_cast<double>(k);
      RegTree tree;
      if (use_kernels) {
        RegTreeSink sink(&tree);
        KernelBuildGbTree(*presort, target, kp, &flops, arena, &sink);
      } else {
        tree = FitRegTree(train, rows, target, &flops);
      }
      for (size_t r = 0; r < n; ++r) {
        score[r][static_cast<size_t>(c)] +=
            params_.learning_rate * PredictRegTree(tree, train, r, &flops);
      }
      total_nodes_ += static_cast<double>(tree.size());
      round_trees.push_back(std::move(tree));
    }
    trees_.push_back(std::move(round_trees));
    ++rounds_fitted_;
  }
  // Boosting is sequential across rounds; per-round tree fits parallelize
  // only over classes.
  ctx->ChargeCpu(flops, train.FeatureBytes(), /*parallel_fraction=*/0.4);
  if (ctx->Interrupted()) {
    return Status::DeadlineExceeded("gboost: interrupted mid-fit");
  }
  MarkFitted(k, train.task());
  return Status::Ok();
}

GradientBoosting::RegTree GradientBoosting::FitRegTree(
    const Dataset& train, const std::vector<size_t>& rows,
    const std::vector<double>& target, double* flops) const {
  RegTree tree;
  std::vector<size_t> work = rows;
  BuildRegNode(train, &work, target, 0, &tree, flops);
  return tree;
}

int GradientBoosting::BuildRegNode(const Dataset& train,
                                   std::vector<size_t>* rows,
                                   const std::vector<double>& target,
                                   int depth, RegTree* tree,
                                   double* flops) const {
  const int node_index = static_cast<int>(tree->size());
  tree->emplace_back();

  const double n = static_cast<double>(rows->size());
  double sum = 0.0;
  for (size_t r : *rows) sum += target[r];
  const double mean = n > 0.0 ? sum / n : 0.0;
  *flops += n;

  const bool stop =
      depth >= params_.max_depth ||
      rows->size() < 2 * static_cast<size_t>(params_.min_samples_leaf);
  if (!stop) {
    // Exact variance-reduction split search over all features.
    double best_gain = 1e-10;
    int best_feature = -1;
    double best_threshold = 0.0;
    std::vector<std::pair<double, size_t>> sorted;
    sorted.reserve(rows->size());
    for (size_t f = 0; f < train.num_features(); ++f) {
      sorted.clear();
      for (size_t r : *rows) sorted.emplace_back(train.At(r, f), r);
      std::sort(sorted.begin(), sorted.end());
      *flops += n * std::log2(std::max(2.0, n));
      double left_sum = 0.0;
      double left_n = 0.0;
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        left_sum += target[sorted[i].second];
        left_n += 1.0;
        if (sorted[i + 1].first - sorted[i].first <= 1e-12) continue;
        const double right_n = n - left_n;
        if (left_n < params_.min_samples_leaf ||
            right_n < params_.min_samples_leaf) {
          continue;
        }
        const double right_sum = sum - left_sum;
        // Variance-reduction gain (up to constants).
        const double gain = left_sum * left_sum / left_n +
                            right_sum * right_sum / right_n -
                            sum * sum / n;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        }
      }
      *flops += n;
    }
    if (best_feature >= 0) {
      std::vector<size_t> left_rows;
      std::vector<size_t> right_rows;
      for (size_t r : *rows) {
        if (train.At(r, static_cast<size_t>(best_feature)) <=
            best_threshold) {
          left_rows.push_back(r);
        } else {
          right_rows.push_back(r);
        }
      }
      rows->clear();
      rows->shrink_to_fit();
      const int left =
          BuildRegNode(train, &left_rows, target, depth + 1, tree, flops);
      const int right =
          BuildRegNode(train, &right_rows, target, depth + 1, tree, flops);
      RegNode& node = (*tree)[static_cast<size_t>(node_index)];
      node.feature = best_feature;
      node.threshold = best_threshold;
      node.left = left;
      node.right = right;
      return node_index;
    }
  }
  (*tree)[static_cast<size_t>(node_index)].value = mean;
  return node_index;
}

double GradientBoosting::PredictRegTree(const RegTree& tree,
                                        const Dataset& data, size_t row,
                                        double* flops) {
  int idx = 0;
  for (;;) {
    const RegNode& node = tree[static_cast<size_t>(idx)];
    if (node.feature < 0) return node.value;
    *flops += 2.0;
    idx = data.At(row, static_cast<size_t>(node.feature)) <= node.threshold
              ? node.left
              : node.right;
  }
}

Result<ProbaMatrix> GradientBoosting::PredictProba(
    const Dataset& data, ExecutionContext* ctx) const {
  if (!fitted()) return Status::FailedPrecondition("gboost not fitted");
  ChargeScope scope(ctx, Name());
  const int k = num_classes();
  ProbaMatrix out(data.num_rows());
  double flops = 0.0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    std::vector<double> score(base_score_.begin(), base_score_.end());
    for (const auto& round_trees : trees_) {
      for (int c = 0; c < k; ++c) {
        score[static_cast<size_t>(c)] +=
            params_.learning_rate *
            PredictRegTree(round_trees[static_cast<size_t>(c)], data, r,
                           &flops);
      }
    }
    if (task() != TaskType::kRegression) SoftmaxInPlace(&score);
    flops += static_cast<double>(k);
    out[r] = std::move(score);
  }
  ctx->ChargeCpu(flops, data.FeatureBytes(), /*parallel_fraction=*/0.9);
  return out;
}

double GradientBoosting::InferenceFlopsPerRow(size_t num_features) const {
  return 2.0 * static_cast<double>(rounds_fitted_) *
             static_cast<double>(num_classes()) *
             static_cast<double>(params_.max_depth) +
         static_cast<double>(num_classes());
}

double GradientBoosting::ComplexityProxy() const { return total_nodes_; }

}  // namespace green
