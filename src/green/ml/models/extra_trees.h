#ifndef GREEN_ML_MODELS_EXTRA_TREES_H_
#define GREEN_ML_MODELS_EXTRA_TREES_H_

#include <vector>

#include "green/ml/models/decision_tree.h"

namespace green {

/// Extremely randomized trees: no bootstrap, random split thresholds.
/// Cheaper to train than a random forest (no per-split exact search) at
/// slightly higher bias — a useful point on the cost/quality spectrum the
/// AutoML systems search over.
struct ExtraTreesParams {
  int num_trees = 32;
  int max_depth = 10;
  int min_samples_leaf = 2;
  double max_features_fraction = 0.0;  ///< 0 = sqrt heuristic.
  uint64_t seed = 1;
};

class ExtraTrees : public Estimator {
 public:
  explicit ExtraTrees(const ExtraTreesParams& params) : params_(params) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "extra_trees"; }
  double InferenceFlopsPerRow(size_t num_features) const override;
  double ComplexityProxy() const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  ExtraTreesParams params_;
  std::vector<DecisionTree> trees_;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_EXTRA_TREES_H_
