#include "green/ml/models/random_forest.h"

#include <cmath>

#include "green/ml/kernels/kernels.h"

namespace green {

Status RandomForest::Fit(const Dataset& train, ExecutionContext* ctx) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("random_forest: empty training data");
  }
  ChargeScope scope(ctx, Name());
  trees_.clear();
  Rng rng(params_.seed);
  double flops = 0.0;

  DecisionTreeParams tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_samples_leaf = params_.min_samples_leaf;
  tree_params.max_features_fraction =
      params_.max_features_fraction > 0.0
          ? params_.max_features_fraction
          : std::sqrt(static_cast<double>(train.num_features())) /
                static_cast<double>(train.num_features());

  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(params_.bootstrap_fraction *
                             static_cast<double>(train.num_rows())));
  for (int t = 0; t < params_.num_trees; ++t) {
    if (ctx->Interrupted()) {
      return Status::DeadlineExceeded("random_forest: interrupted mid-fit");
    }
    Rng tree_rng = rng.Fork();
    std::vector<size_t> sample(sample_size);
    for (size_t& s : sample) {
      s = static_cast<size_t>(tree_rng.NextBounded(train.num_rows()));
    }
    tree_params.seed = tree_rng.NextUint64();
    trees_.emplace_back(tree_params);
    GREEN_RETURN_IF_ERROR(
        trees_.back().FitCounted(train, sample, &tree_rng, &flops));
  }
  // Independent trees: embarrassingly parallel training.
  ctx->ChargeCpu(flops, train.FeatureBytes(), /*parallel_fraction=*/0.95);
  if (ctx->Interrupted()) {
    return Status::DeadlineExceeded("random_forest: interrupted mid-fit");
  }
  MarkFitted(train.num_classes(), train.task());
  return Status::Ok();
}

Result<ProbaMatrix> RandomForest::PredictProba(const Dataset& data,
                                               ExecutionContext* ctx) const {
  if (!fitted()) return Status::FailedPrecondition("forest not fitted");
  ChargeScope scope(ctx, Name());
  const size_t k = static_cast<size_t>(num_classes());
  ProbaMatrix total(data.num_rows(), std::vector<double>(k, 0.0));
  double flops = 0.0;
  if (KernelsEnabled()) {
    // Each tree streams its leaf distributions straight into one flat
    // rows x k accumulator — no per-tree ProbaMatrix, same add order.
    std::vector<double> acc(data.num_rows() * k, 0.0);
    for (const DecisionTree& tree : trees_) {
      tree.AccumulateProbaCounted(data, acc.data(), k, &flops);
      flops += static_cast<double>(data.num_rows()) *
               static_cast<double>(num_classes());
    }
    for (size_t r = 0; r < data.num_rows(); ++r) {
      for (size_t c = 0; c < k; ++c) total[r][c] = acc[r * k + c];
    }
  } else {
    ProbaMatrix tree_out;
    for (const DecisionTree& tree : trees_) {
      tree.PredictProbaCounted(data, &tree_out, &flops);
      for (size_t r = 0; r < data.num_rows(); ++r) {
        for (size_t c = 0; c < total[r].size(); ++c) {
          total[r][c] += tree_out[r][c];
        }
      }
      flops += static_cast<double>(data.num_rows()) *
               static_cast<double>(num_classes());
    }
  }
  const double inv = trees_.empty()
                         ? 1.0
                         : 1.0 / static_cast<double>(trees_.size());
  for (auto& row : total) {
    for (double& p : row) p *= inv;
  }
  ctx->ChargeCpu(flops, data.FeatureBytes(), /*parallel_fraction=*/0.95);
  return total;
}

double RandomForest::InferenceFlopsPerRow(size_t num_features) const {
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) {
    sum += tree.InferenceFlopsPerRow(num_features);
  }
  return sum + static_cast<double>(trees_.size() * num_classes());
}

double RandomForest::ComplexityProxy() const {
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.ComplexityProxy();
  return sum;
}

}  // namespace green
