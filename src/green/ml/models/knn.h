#ifndef GREEN_ML_MODELS_KNN_H_
#define GREEN_ML_MODELS_KNN_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// k-nearest-neighbours classifier (brute-force Euclidean scan).
/// The inverse energy profile of a linear model: training is free, but
/// every prediction costs O(n_train * d) — the same asymmetry that makes
/// TabPFN's in-context inference expensive in the paper.
struct KnnParams {
  int k = 5;
  bool distance_weighted = false;
};

class Knn : public Estimator {
 public:
  explicit Knn(const KnnParams& params) : params_(params) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "knn"; }
  double InferenceFlopsPerRow(size_t num_features) const override {
    return 3.0 * static_cast<double>(train_.num_rows()) *
           static_cast<double>(num_features);
  }
  double ComplexityProxy() const override {
    return static_cast<double>(train_.num_rows() * train_.num_features());
  }

 private:
  KnnParams params_;
  Dataset train_;  ///< Memorized training set.
  /// Column-major copy of the training matrix (cols_[j * n + r]), built
  /// at fit when kernels are enabled so the per-query distance scan runs
  /// contiguously; empty on the reference path.
  std::vector<double> train_cols_;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_KNN_H_
