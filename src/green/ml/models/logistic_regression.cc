#include "green/ml/models/logistic_regression.h"

#include <cmath>
#include <numeric>

#include "green/common/mathutil.h"
#include "green/common/rng.h"

namespace green {

Status LogisticRegression::Fit(const Dataset& train,
                               ExecutionContext* ctx) {
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  const int k = train.num_classes();
  if (n == 0) return Status::InvalidArgument("logreg: empty training data");

  ChargeScope scope(ctx, Name());
  const bool regression = train.task() == TaskType::kRegression;
  num_features_ = d;
  weights_.assign(static_cast<size_t>(k) * (d + 1), 0.0);
  Rng rng(params_.seed);

  if (regression) {
    // Standardize targets so the shared learning-rate schedule works on
    // arbitrary target scales; predictions are unscaled on the way out.
    target_mean_ = train.TargetMean();
    double var = 0.0;
    for (double y : train.targets()) {
      const double dy = y - target_mean_;
      var += dy * dy;
    }
    var /= static_cast<double>(n);
    target_scale_ = var > 1e-24 ? std::sqrt(var) : 1.0;
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> logits(static_cast<size_t>(k));
  double flops = 0.0;

  const size_t batch =
      std::max<size_t>(1, static_cast<size_t>(params_.batch_size));
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    if (ctx->Interrupted()) {
      return Status::DeadlineExceeded("logreg: interrupted mid-fit");
    }
    rng.Shuffle(&order);
    const double lr = params_.learning_rate /
                      (1.0 + 0.1 * static_cast<double>(epoch));
    for (size_t start = 0; start < n; start += batch) {
      const size_t end = std::min(n, start + batch);
      for (size_t i = start; i < end; ++i) {
        const size_t r = order[i];
        const double* x = train.RowPtr(r);
        for (int c = 0; c < k; ++c) {
          const double* w = &weights_[static_cast<size_t>(c) * (d + 1)];
          double z = w[d];  // Bias.
          for (size_t j = 0; j < d; ++j) z += w[j] * x[j];
          logits[static_cast<size_t>(c)] = z;
        }
        if (!regression) SoftmaxInPlace(&logits);
        for (int c = 0; c < k; ++c) {
          const double err =
              regression
                  ? logits[0] -
                        (train.Target(r) - target_mean_) / target_scale_
                  : logits[static_cast<size_t>(c)] -
                        (train.Label(r) == c ? 1.0 : 0.0);
          double* w = &weights_[static_cast<size_t>(c) * (d + 1)];
          for (size_t j = 0; j < d; ++j) {
            w[j] -= lr * (err * x[j] + params_.l2 * w[j]);
          }
          w[d] -= lr * err;
        }
        flops += 4.0 * static_cast<double>(k) * static_cast<double>(d + 1);
      }
    }
  }
  // Mini-batch SGD parallelizes only within a batch.
  ctx->ChargeCpu(flops, train.FeatureBytes(), /*parallel_fraction=*/0.5);
  if (ctx->Interrupted()) {
    return Status::DeadlineExceeded("logreg: interrupted mid-fit");
  }
  MarkFitted(k, train.task());
  return Status::Ok();
}

Result<ProbaMatrix> LogisticRegression::PredictProba(
    const Dataset& data, ExecutionContext* ctx) const {
  if (!fitted()) return Status::FailedPrecondition("logreg not fitted");
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("logreg: feature count mismatch");
  }
  ChargeScope scope(ctx, Name());
  const size_t d = num_features_;
  const int k = num_classes();
  ProbaMatrix out(data.num_rows());
  double flops = 0.0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    const double* x = data.RowPtr(r);
    std::vector<double> logits(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) {
      const double* w = &weights_[static_cast<size_t>(c) * (d + 1)];
      double z = w[d];
      for (size_t j = 0; j < d; ++j) z += w[j] * x[j];
      logits[static_cast<size_t>(c)] = z;
    }
    if (task() == TaskType::kRegression) {
      logits[0] = target_mean_ + target_scale_ * logits[0];
    } else {
      SoftmaxInPlace(&logits);
    }
    out[r] = std::move(logits);
    flops += 2.0 * static_cast<double>(k) * static_cast<double>(d + 1);
  }
  ctx->ChargeCpu(flops, data.FeatureBytes(), /*parallel_fraction=*/0.9);
  return out;
}

}  // namespace green
