#ifndef GREEN_ML_MODELS_ATTENTION_FEW_SHOT_H_
#define GREEN_ML_MODELS_ATTENTION_FEW_SHOT_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// TabPFN stand-in: an in-context (few-shot) classifier.
///
/// The real TabPFN is a transformer pretrained offline on synthetic tasks;
/// at use time it performs NO search and NO training — it forward-passes
/// the labeled training set together with each query. We reproduce that
/// contract with a single scaled-dot-product attention layer over a fixed
/// random feature projection ("pretrained" weights derived from a
/// pretraining seed, independent of any user data):
///   * Fit() only memorizes (up to max_context rows of) the training set —
///     near-zero execution energy, like the paper's 0.29 s TabPFN column;
///   * PredictProba() projects the context AND the query and attends over
///     it — inference cost scales with context size, orders of magnitude
///     above a single tree/linear model;
///   * at most 10 classes are supported (the official implementation's
///     limit); beyond that the model degrades to the class prior;
///   * the matmul-shaped work is marked GPU-eligible, so on a GPU machine
///     inference gets dramatically cheaper (the paper's Table 3).
struct AttentionFewShotParams {
  int embed_dim = 48;
  int num_layers = 3;       ///< Scales the charged forward-pass cost.
  int max_context = 1024;   ///< TabPFN's small-data design point.
  int max_classes = 10;     ///< Hard limit of the official implementation.
  double temperature = 0.35;
  /// All "pretrained" weights derive from this seed, never from user data.
  uint64_t pretrain_seed = 0x7ab9f42023ULL;
};

class AttentionFewShot : public Estimator {
 public:
  explicit AttentionFewShot(const AttentionFewShotParams& params);

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "attention_few_shot"; }
  double InferenceFlopsPerRow(size_t num_features) const override;
  double ComplexityProxy() const override;

  bool class_limit_exceeded() const { return class_limit_exceeded_; }
  size_t context_size() const { return context_.num_rows(); }

 private:
  std::vector<double> Project(const double* x, size_t d) const;

  AttentionFewShotParams params_;
  Dataset context_;  ///< Memorized (sub)set of the training data.
  // Recomputed inside PredictProba — TabPFN's forward pass re-processes
  // the context on every call, so these caches are logically part of
  // inference, not model state.
  mutable std::vector<double> projection_;  ///< (embed_dim x input dim).
  mutable std::vector<double> feature_mean_;
  mutable std::vector<double> feature_std_;
  std::vector<double> prior_;
  bool class_limit_exceeded_ = false;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_ATTENTION_FEW_SHOT_H_
