#ifndef GREEN_ML_MODELS_LOGISTIC_REGRESSION_H_
#define GREEN_ML_MODELS_LOGISTIC_REGRESSION_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Multinomial logistic regression trained with mini-batch SGD and L2
/// regularization. Cheap to train and extremely cheap at inference
/// (one dense d x k product per row) — the "simple linear model" end of
/// the energy/quality spectrum. On regression tasks it degrades to a
/// linear model with squared loss on standardized targets (k = 1, no
/// softmax).
struct LogisticRegressionParams {
  int epochs = 30;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int batch_size = 32;
  uint64_t seed = 1;
};

class LogisticRegression : public Estimator {
 public:
  explicit LogisticRegression(const LogisticRegressionParams& params)
      : params_(params) {}

  Status Fit(const Dataset& train, ExecutionContext* ctx) override;
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const override;
  std::string Name() const override { return "logistic_regression"; }
  double InferenceFlopsPerRow(size_t num_features) const override {
    return 2.0 * static_cast<double>(num_features) *
           static_cast<double>(num_classes());
  }
  double ComplexityProxy() const override {
    return static_cast<double>(weights_.size());
  }

 private:
  LogisticRegressionParams params_;
  size_t num_features_ = 0;
  /// Row-major (k x (d+1)); last column is the bias.
  std::vector<double> weights_;
  /// Target standardization (regression mode only).
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
};

}  // namespace green

#endif  // GREEN_ML_MODELS_LOGISTIC_REGRESSION_H_
