#ifndef GREEN_ML_MODEL_REGISTRY_H_
#define GREEN_ML_MODEL_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "green/common/status.h"
#include "green/ml/pipeline.h"

namespace green {

/// Declarative description of one ML pipeline: preprocessing switches plus
/// a model name and its hyperparameters. This is the unit the search
/// substrate samples and the AutoML systems evaluate.
struct PipelineConfig {
  // --- data preprocessing ---
  bool impute = true;
  /// "none" | "standard" | "minmax".
  std::string scaler = "standard";
  bool one_hot = true;
  /// 0 disables variance filtering.
  double variance_threshold = -1.0;
  /// 0 disables univariate selection; otherwise keep this many features.
  int select_k_best = 0;
  /// 0 disables PCA; otherwise project onto this many components.
  int pca_components = 0;
  /// Discretize numeric columns into equal-frequency bins.
  bool quantile_binning = false;

  // --- model ---
  std::string model = "decision_tree";
  std::map<std::string, double> params;

  uint64_t seed = 1;

  /// Compact "model(p=v,...)" string for logs and reports.
  std::string Describe() const;
};

/// Model names known to the registry.
const std::vector<std::string>& KnownModels();

/// Whether the named model family can fit the given task. Every family
/// handles classification; regression is limited to the tree, linear,
/// neighbor, boosting, and MLP learners (the rest return Unimplemented
/// from Fit, which the harness maps to a skipped cell).
bool ModelSupportsTask(const std::string& model, TaskType task);

/// The subset of `models` admissible for `task`, order preserved. Search
/// spaces are filtered through this so systems never propose a
/// (model, task) pair that is known to be rejected.
std::vector<std::string> FilterModelsForTask(
    const std::vector<std::string>& models, TaskType task);

/// Builds an unfitted pipeline from a config. Unknown model names or
/// out-of-domain hyperparameters yield InvalidArgument.
Result<Pipeline> BuildPipeline(const PipelineConfig& config);

/// Relative single-evaluation training cost estimate for a config on a
/// dataset of (rows x features) — the prior FLAML-style cost-frugal
/// search orders candidates by, and the estimate budget policies use.
double EstimateTrainCost(const PipelineConfig& config, size_t rows,
                         size_t features, int classes);

/// Relative cost estimate for predicting `predict_rows` instances with a
/// model of this config trained on `train_rows` rows (matters for
/// memory-based models like kNN whose inference dominates).
double EstimatePredictCost(const PipelineConfig& config, size_t train_rows,
                           size_t predict_rows, size_t features,
                           int classes);

}  // namespace green

#endif  // GREEN_ML_MODEL_REGISTRY_H_
