#include "green/ml/pipeline.h"

#include "green/common/stringutil.h"
#include "green/ml/transform_cache.h"

namespace green {

void Pipeline::AddTransformer(std::unique_ptr<Transformer> transformer) {
  transformers_.push_back(std::move(transformer));
}

void Pipeline::SetModel(std::unique_ptr<Estimator> model) {
  model_ = std::move(model);
}

std::string Pipeline::ChainSignature() const {
  std::vector<std::string> parts;
  parts.reserve(transformers_.size());
  for (const auto& t : transformers_) parts.push_back(t->ConfigSignature());
  return Join(parts, "|");
}

Status Pipeline::Fit(const Dataset& train, ExecutionContext* ctx) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("pipeline has no model");
  }
  if (cache_adopted_) {
    // The transformers are shared with the cache; re-Fit would mutate
    // state other pipelines may be reading.
    return Status::FailedPrecondition(
        "pipeline adopted cache-shared transformers and cannot be refitted");
  }
  ChargeScope scope(ctx, "fit");
  fitted_input_width_ = train.num_features();

  TransformCache* cache = ctx->transform_cache();
  const bool cacheable = cache != nullptr && !transformers_.empty();
  std::string chain_signature;
  if (cacheable) {
    chain_signature = ChainSignature();
    if (auto hit = cache->Lookup(train, chain_signature)) {
      ctx->ReplayTape(hit->tape);
      if (ctx->Interrupted()) {
        return Status::DeadlineExceeded("pipeline: interrupted mid-fit");
      }
      transformers_ = hit->transformers;
      cache_entry_ = hit;
      cache_adopted_ = true;
      GREEN_RETURN_IF_ERROR(model_->Fit(hit->transformed, ctx));
      fitted_ = true;
      return Status::Ok();
    }
  }

  Dataset current = train;
  ChargeTape tape;
  const bool recording = cacheable && ctx->StartTapeRecording(&tape);
  Status status = Status::Ok();
  for (auto& t : transformers_) {
    if (ctx->Interrupted()) {
      status = Status::DeadlineExceeded("pipeline: interrupted mid-fit");
      break;
    }
    status = t->Fit(current, ctx);
    if (!status.ok()) break;
    Result<Dataset> transformed = t->Transform(current, ctx);
    if (!transformed.ok()) {
      status = transformed.status();
      break;
    }
    current = std::move(transformed).value();
  }
  if (recording) ctx->StopTapeRecording();
  GREEN_RETURN_IF_ERROR(status);
  if (recording && !ctx->charge_truncated()) {
    cache_entry_ = cache->Insert(train, chain_signature, transformers_,
                                 current, std::move(tape));
    if (cache_entry_ != nullptr) {
      // The chain is now shared with the cache (possibly a racing
      // incumbent's equivalently fitted instances): adopt it so later
      // hits and this pipeline use the same objects.
      transformers_ = cache_entry_->transformers;
      cache_adopted_ = true;
    }
  }
  GREEN_RETURN_IF_ERROR(model_->Fit(current, ctx));
  fitted_ = true;
  return Status::Ok();
}

Result<Dataset> Pipeline::RunTransforms(const Dataset& data,
                                        ExecutionContext* ctx) const {
  if (transformers_.empty()) return data;

  // Predict-path memo: the same eval/test view flows through the same
  // fitted chain once per scoring pass; memoize the result keyed by the
  // adopted cache entry. Replaying the recorded tape keeps all simulated
  // quantities bit-identical to recomputing (the compute path below also
  // stops metering at truncation, so no interrupt special-case is
  // needed).
  TransformCache* cache = ctx->transform_cache();
  const bool memoable = cache != nullptr && cache_entry_ != nullptr;
  if (memoable) {
    if (auto memo = cache->LookupPredict(cache_entry_, data)) {
      ctx->ReplayTape(memo->tape);
      return memo->transformed;
    }
  }

  ChargeTape tape;
  const bool recording = memoable && ctx->StartTapeRecording(&tape);
  Dataset current = data;
  Status status = Status::Ok();
  for (const auto& t : transformers_) {
    Result<Dataset> transformed = t->Transform(current, ctx);
    if (!transformed.ok()) {
      status = transformed.status();
      break;
    }
    current = std::move(transformed).value();
  }
  if (recording) ctx->StopTapeRecording();
  GREEN_RETURN_IF_ERROR(status);
  if (recording && !ctx->charge_truncated()) {
    cache->InsertPredict(cache_entry_, data, current, std::move(tape));
  }
  return current;
}

Result<ProbaMatrix> Pipeline::PredictProba(const Dataset& data,
                                           ExecutionContext* ctx) const {
  if (!fitted_) return Status::FailedPrecondition("pipeline not fitted");
  ChargeScope scope(ctx, "predict");
  GREEN_ASSIGN_OR_RETURN(Dataset transformed, RunTransforms(data, ctx));
  return model_->PredictProba(transformed, ctx);
}

Result<std::vector<int>> Pipeline::Predict(const Dataset& data,
                                           ExecutionContext* ctx) const {
  if (!fitted_) return Status::FailedPrecondition("pipeline not fitted");
  ChargeScope scope(ctx, "predict");
  GREEN_ASSIGN_OR_RETURN(Dataset transformed, RunTransforms(data, ctx));
  return model_->Predict(transformed, ctx);
}

std::string Pipeline::Describe() const {
  std::vector<std::string> parts;
  for (const auto& t : transformers_) parts.push_back(t->Name());
  parts.push_back(model_ ? model_->Name() : "<none>");
  return Join(parts, "|");
}

double Pipeline::InferenceFlopsPerRow(size_t raw_num_features) const {
  double flops = 0.0;
  size_t width = raw_num_features;
  for (const auto& t : transformers_) {
    flops += t->TransformFlopsPerRow(width);
    width = t->OutputWidth(width);
  }
  if (model_ != nullptr) flops += model_->InferenceFlopsPerRow(width);
  return flops;
}

}  // namespace green
