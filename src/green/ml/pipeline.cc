#include "green/ml/pipeline.h"

#include "green/common/stringutil.h"

namespace green {

void Pipeline::AddTransformer(std::unique_ptr<Transformer> transformer) {
  transformers_.push_back(std::move(transformer));
}

void Pipeline::SetModel(std::unique_ptr<Estimator> model) {
  model_ = std::move(model);
}

Status Pipeline::Fit(const Dataset& train, ExecutionContext* ctx) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("pipeline has no model");
  }
  ChargeScope scope(ctx, "fit");
  fitted_input_width_ = train.num_features();
  Dataset current = train;
  for (auto& t : transformers_) {
    if (ctx->Interrupted()) {
      return Status::DeadlineExceeded("pipeline: interrupted mid-fit");
    }
    GREEN_RETURN_IF_ERROR(t->Fit(current, ctx));
    GREEN_ASSIGN_OR_RETURN(current, t->Transform(current, ctx));
  }
  GREEN_RETURN_IF_ERROR(model_->Fit(current, ctx));
  fitted_ = true;
  return Status::Ok();
}

Result<Dataset> Pipeline::RunTransforms(const Dataset& data,
                                        ExecutionContext* ctx) const {
  Dataset current = data;
  for (const auto& t : transformers_) {
    GREEN_ASSIGN_OR_RETURN(current, t->Transform(current, ctx));
  }
  return current;
}

Result<ProbaMatrix> Pipeline::PredictProba(const Dataset& data,
                                           ExecutionContext* ctx) const {
  if (!fitted_) return Status::FailedPrecondition("pipeline not fitted");
  ChargeScope scope(ctx, "predict");
  GREEN_ASSIGN_OR_RETURN(Dataset transformed, RunTransforms(data, ctx));
  return model_->PredictProba(transformed, ctx);
}

Result<std::vector<int>> Pipeline::Predict(const Dataset& data,
                                           ExecutionContext* ctx) const {
  if (!fitted_) return Status::FailedPrecondition("pipeline not fitted");
  ChargeScope scope(ctx, "predict");
  GREEN_ASSIGN_OR_RETURN(Dataset transformed, RunTransforms(data, ctx));
  return model_->Predict(transformed, ctx);
}

std::string Pipeline::Describe() const {
  std::vector<std::string> parts;
  for (const auto& t : transformers_) parts.push_back(t->Name());
  parts.push_back(model_ ? model_->Name() : "<none>");
  return Join(parts, "|");
}

double Pipeline::InferenceFlopsPerRow(size_t raw_num_features) const {
  double flops = 0.0;
  size_t width = raw_num_features;
  for (const auto& t : transformers_) {
    flops += t->TransformFlopsPerRow(width);
    width = t->OutputWidth(width);
  }
  if (model_ != nullptr) flops += model_->InferenceFlopsPerRow(width);
  return flops;
}

}  // namespace green
