#ifndef GREEN_TABLE_METAFEATURES_H_
#define GREEN_TABLE_METAFEATURES_H_

#include <vector>

#include "green/table/dataset.h"

namespace green {

/// Dataset-level meta-features, the descriptors both the paper's
/// development-stage optimizer (K-Means representative selection, §2.5)
/// and AutoSklearn-2-style warm starting use to judge dataset similarity.
struct MetaFeatures {
  double log_rows = 0.0;           ///< log10 of (nominal) row count.
  double log_features = 0.0;       ///< log10 of (nominal) feature count.
  double log_classes = 0.0;        ///< log10 of class count.
  double class_entropy = 0.0;      ///< Normalized label entropy in [0,1].
  double class_imbalance = 0.0;    ///< 1 - min/max class frequency.
  double categorical_fraction = 0.0;
  double missing_fraction = 0.0;
  double rows_per_feature_log = 0.0;  ///< log10(rows / features).

  /// Flattened vector representation for clustering / distance.
  std::vector<double> ToVector() const;

  static constexpr size_t kDim = 8;
};

/// Computes meta-features from a dataset. Uses the nominal task size when
/// set (so scaled-down instantiations cluster like their real tasks).
MetaFeatures ComputeMetaFeatures(const Dataset& data);

/// Euclidean distance between meta-feature vectors.
double MetaFeatureDistance(const MetaFeatures& a, const MetaFeatures& b);

}  // namespace green

#endif  // GREEN_TABLE_METAFEATURES_H_
