#include "green/table/task_type.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace green {

const char* TaskTypeName(TaskType task) {
  switch (task) {
    case TaskType::kBinary:
      return "binary";
    case TaskType::kMulticlass:
      return "multiclass";
    case TaskType::kRegression:
      return "regression";
  }
  return "binary";
}

Result<TaskType> ParseTaskType(const std::string& name) {
  if (name == "binary") return TaskType::kBinary;
  if (name == "multiclass") return TaskType::kMulticlass;
  if (name == "regression") return TaskType::kRegression;
  return Status::InvalidArgument("unknown task type: " + name);
}

TaskType TaskTypeForClasses(int num_classes) {
  return num_classes >= 3 ? TaskType::kMulticlass : TaskType::kBinary;
}

TaskType InferTaskType(const std::vector<double>& targets,
                       int max_classes) {
  if (targets.empty()) return TaskType::kBinary;
  std::set<double> levels;
  for (double y : targets) {
    if (std::isnan(y)) continue;
    // Fractional or negative values can only be a continuous target.
    if (y < 0.0 || y != std::floor(y)) return TaskType::kRegression;
    levels.insert(y);
    if (levels.size() > static_cast<size_t>(max_classes)) {
      return TaskType::kRegression;
    }
  }
  if (levels.empty()) return TaskType::kBinary;
  // Integer levels but sparse/large codes (e.g. years, zip codes) are a
  // continuous target, not class indices.
  const double max_level = *levels.rbegin();
  if (max_level >= static_cast<double>(max_classes)) {
    return TaskType::kRegression;
  }
  return levels.size() >= 3 ? TaskType::kMulticlass : TaskType::kBinary;
}

}  // namespace green
