#ifndef GREEN_TABLE_TASK_TYPE_H_
#define GREEN_TABLE_TASK_TYPE_H_

#include <string>
#include <vector>

#include "green/common/status.h"

namespace green {

/// The learning task a dataset represents. Everything downstream — the
/// splitter, the primary metric, the search score direction, which model
/// families are admissible — dispatches on this enum, so a dataset's task
/// is decided exactly once, at construction or inference time.
enum class TaskType {
  kBinary,      ///< Two-class classification.
  kMulticlass,  ///< N-class classification, N >= 3.
  kRegression,  ///< Continuous target.
};

/// Stable lowercase identifier: "binary" / "multiclass" / "regression".
const char* TaskTypeName(TaskType task);

/// Inverse of TaskTypeName; InvalidArgument on unknown names.
Result<TaskType> ParseTaskType(const std::string& name);

inline bool IsClassification(TaskType task) {
  return task != TaskType::kRegression;
}

/// Task implied by a class count (classification side only): 2 or fewer
/// distinct classes is binary, 3+ is multiclass.
TaskType TaskTypeForClasses(int num_classes);

/// Task detection from a raw target column, the automl-tabular heuristic:
/// a target whose values are all small non-negative integers with few
/// distinct levels is classification (binary for two levels, multiclass
/// above); anything fractional, negative, or high-cardinality is
/// regression. `max_classes` caps the distinct-level count still treated
/// as classification.
TaskType InferTaskType(const std::vector<double>& targets,
                       int max_classes = 50);

}  // namespace green

#endif  // GREEN_TABLE_TASK_TYPE_H_
