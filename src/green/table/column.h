#ifndef GREEN_TABLE_COLUMN_H_
#define GREEN_TABLE_COLUMN_H_

#include <cmath>
#include <string>
#include <vector>

namespace green {

/// The two attribute kinds the paper's scope covers ("tabular data with
/// numeric and categorical attributes").
enum class FeatureType { kNumeric = 0, kCategorical = 1 };

/// A single typed column. Values are stored as doubles; categorical
/// columns hold non-negative integral category codes; missing values are
/// NaN for both kinds.
class Column {
 public:
  Column(std::string name, FeatureType type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  FeatureType type() const { return type_; }
  size_t size() const { return values_.size(); }

  void Reserve(size_t n) { values_.reserve(n); }
  void Append(double v) { values_.push_back(v); }
  double Get(size_t i) const { return values_[i]; }
  void Set(size_t i, double v) { values_[i] = v; }
  const std::vector<double>& values() const { return values_; }

  static bool IsMissing(double v) { return std::isnan(v); }

  /// Number of NaN entries.
  size_t MissingCount() const;

  /// Mean over non-missing entries; 0 if all missing.
  double MeanIgnoringMissing() const;

  /// Min/max over non-missing entries; 0 if all missing.
  double MinIgnoringMissing() const;
  double MaxIgnoringMissing() const;

  /// For categorical columns: one plus the largest observed code
  /// (0 if empty / all missing).
  int Cardinality() const;

 private:
  std::string name_;
  FeatureType type_;
  std::vector<double> values_;
};

}  // namespace green

#endif  // GREEN_TABLE_COLUMN_H_
