#include "green/table/metafeatures.h"

#include <algorithm>
#include <cmath>

#include "green/common/mathutil.h"

namespace green {

std::vector<double> MetaFeatures::ToVector() const {
  return {log_rows,        log_features,         log_classes,
          class_entropy,   class_imbalance,      categorical_fraction,
          missing_fraction, rows_per_feature_log};
}

MetaFeatures ComputeMetaFeatures(const Dataset& data) {
  MetaFeatures mf;
  const double rows = data.nominal_rows() > 0
                          ? static_cast<double>(data.nominal_rows())
                          : static_cast<double>(data.num_rows());
  const double features =
      data.nominal_features() > 0
          ? static_cast<double>(data.nominal_features())
          : static_cast<double>(data.num_features());
  mf.log_rows = std::log10(std::max(rows, 1.0));
  mf.log_features = std::log10(std::max(features, 1.0));
  mf.log_classes =
      std::log10(std::max(static_cast<double>(data.num_classes()), 1.0));
  mf.rows_per_feature_log =
      std::log10(std::max(rows / std::max(features, 1.0), 1e-6));

  const std::vector<int> counts = data.ClassCounts();
  const double n = static_cast<double>(data.num_rows());
  if (n > 0 && data.num_classes() > 1) {
    double entropy = 0.0;
    int min_count = counts.empty() ? 0 : counts[0];
    int max_count = 0;
    for (int c : counts) {
      min_count = std::min(min_count, c);
      max_count = std::max(max_count, c);
      if (c > 0) {
        const double p = static_cast<double>(c) / n;
        entropy -= p * std::log(p);
      }
    }
    mf.class_entropy =
        entropy / std::log(static_cast<double>(data.num_classes()));
    mf.class_imbalance =
        max_count > 0 ? 1.0 - static_cast<double>(min_count) /
                                  static_cast<double>(max_count)
                      : 0.0;
  }

  if (data.num_features() > 0) {
    mf.categorical_fraction = static_cast<double>(data.NumCategorical()) /
                              static_cast<double>(data.num_features());
    size_t missing = 0;
    for (size_t r = 0; r < data.num_rows(); ++r) {
      for (size_t j = 0; j < data.num_features(); ++j) {
        if (std::isnan(data.At(r, j))) ++missing;
      }
    }
    const double cells =
        static_cast<double>(data.num_rows() * data.num_features());
    mf.missing_fraction = cells > 0 ? static_cast<double>(missing) / cells
                                    : 0.0;
  }
  return mf;
}

double MetaFeatureDistance(const MetaFeatures& a, const MetaFeatures& b) {
  return std::sqrt(SquaredDistance(a.ToVector(), b.ToVector()));
}

}  // namespace green
