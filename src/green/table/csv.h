#ifndef GREEN_TABLE_CSV_H_
#define GREEN_TABLE_CSV_H_

#include <string>

#include "green/common/status.h"
#include "green/table/dataset.h"

namespace green {

/// CSV interchange for datasets. Format: a header row of feature names
/// followed by "label" (classification) or "target" (regression);
/// categorical columns are marked by a "#cat" suffix in the header;
/// missing values are empty fields. Targets parse strictly — a
/// non-numeric target is an error, never a silent 0.
Status WriteCsv(const Dataset& data, const std::string& path);

/// Parses a CSV written by WriteCsv (or hand-authored with the same
/// conventions). `num_classes` of the result is one plus the largest
/// label.
Result<Dataset> ReadCsv(const std::string& path, const std::string& name);

/// In-memory variants, used by tests and by the CLI examples.
std::string ToCsvString(const Dataset& data);
Result<Dataset> FromCsvString(const std::string& text,
                              const std::string& name);

}  // namespace green

#endif  // GREEN_TABLE_CSV_H_
