#include "green/table/csv.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "green/common/stringutil.h"

namespace green {

std::string ToCsvString(const Dataset& data) {
  const bool regression = data.task() == TaskType::kRegression;
  std::string out;
  for (size_t j = 0; j < data.num_features(); ++j) {
    out += data.feature_name(j);
    if (data.feature_type(j) == FeatureType::kCategorical) out += "#cat";
    out += ",";
  }
  out += regression ? "target\n" : "label\n";
  for (size_t r = 0; r < data.num_rows(); ++r) {
    for (size_t j = 0; j < data.num_features(); ++j) {
      const double v = data.At(r, j);
      if (!std::isnan(v)) out += StrFormat("%.10g", v);
      out += ",";
    }
    if (regression) {
      out += StrFormat("%.17g\n", data.Target(r));
    } else {
      out += StrFormat("%d\n", data.Label(r));
    }
  }
  return out;
}

Result<Dataset> FromCsvString(const std::string& text,
                              const std::string& name) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || Trim(lines[0]).empty()) {
    return Status::InvalidArgument("empty CSV");
  }
  std::vector<std::string> header = Split(std::string(Trim(lines[0])), ',');
  const std::string last_col =
      header.empty() ? "" : std::string(Trim(header.back()));
  // "label" closes a classification CSV; "target" a regression one.
  const bool regression = last_col == "target";
  if (header.empty() || (last_col != "label" && !regression)) {
    return Status::InvalidArgument(
        "last CSV column must be 'label' or 'target'");
  }
  const size_t num_features = header.size() - 1;

  // First pass: parse rows, track max label.
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<double> targets;
  int max_label = -1;
  for (size_t li = 1; li < lines.size(); ++li) {
    const std::string_view line = Trim(lines[li]);
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(std::string(line), ',');
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", li,
                    fields.size(), header.size()));
    }
    std::vector<double> row(num_features);
    for (size_t j = 0; j < num_features; ++j) {
      const std::string f(Trim(fields[j]));
      if (f.empty()) {
        row[j] = NAN;  // Missing value.
        continue;
      }
      // Strict parse: the whole field must be consumed, so "12abc" or
      // "hello" in a numeric column is an error instead of a silent 0.
      char* end = nullptr;
      row[j] = std::strtod(f.c_str(), &end);
      if (end == f.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("non-numeric value '%s' in column %zu on line %zu",
                      f.c_str(), j, li));
      }
    }
    const std::string label_field(Trim(fields.back()));
    if (regression) {
      // Same hostile-input discipline as the feature columns: the whole
      // field must parse, so "12abc" or "" errors instead of becoming 0.
      char* target_end = nullptr;
      const double target = std::strtod(label_field.c_str(), &target_end);
      if (label_field.empty() || target_end == label_field.c_str() ||
          *target_end != '\0') {
        return Status::InvalidArgument(
            StrFormat("non-numeric target '%s' on line %zu",
                      label_field.c_str(), li));
      }
      if (std::isnan(target) || std::isinf(target)) {
        return Status::InvalidArgument(
            StrFormat("non-finite target on line %zu", li));
      }
      rows.push_back(std::move(row));
      targets.push_back(target);
      continue;
    }
    char* label_end = nullptr;
    const long parsed_label =
        std::strtol(label_field.c_str(), &label_end, 10);
    if (label_field.empty() || label_end == label_field.c_str() ||
        *label_end != '\0') {
      return Status::InvalidArgument(
          StrFormat("non-integer label '%s' on line %zu",
                    label_field.c_str(), li));
    }
    if (parsed_label < 0 || parsed_label > 1000000L) {
      return Status::InvalidArgument(
          StrFormat("label out of range on line %zu", li));
    }
    const int label = static_cast<int>(parsed_label);
    max_label = std::max(max_label, label);
    rows.push_back(std::move(row));
    labels.push_back(label);
  }
  if (rows.empty()) return Status::InvalidArgument("CSV has no data rows");

  Dataset data = regression ? Dataset::Regression(name, num_features)
                            : Dataset(name, num_features, max_label + 1);
  for (size_t j = 0; j < num_features; ++j) {
    std::string col_name = std::string(Trim(header[j]));
    if (EndsWith(col_name, "#cat")) {
      data.SetFeatureType(j, FeatureType::kCategorical);
      col_name.resize(col_name.size() - 4);
    }
    data.SetFeatureName(j, col_name);
  }
  data.Reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (regression) {
      GREEN_RETURN_IF_ERROR(data.AppendTargetRow(rows[r], targets[r]));
    } else {
      GREEN_RETURN_IF_ERROR(data.AppendRow(rows[r], labels[r]));
    }
  }
  return data;
}

Status WriteCsv(const Dataset& data, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  const std::string text = ToCsvString(data);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

Result<Dataset> ReadCsv(const std::string& path, const std::string& name) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  std::string text;
  char buf[65536];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return FromCsvString(text, name);
}

}  // namespace green
