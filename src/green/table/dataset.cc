#include "green/table/dataset.h"

#include "green/common/logging.h"
#include "green/common/rng.h"
#include "green/common/stringutil.h"

namespace green {

Dataset::Dataset(std::string name, size_t num_features, int num_classes)
    : name_(std::move(name)),
      num_features_(num_features),
      num_classes_(num_classes),
      task_(TaskTypeForClasses(num_classes)),
      storage_(std::make_shared<Storage>()) {
  storage_->feature_types.assign(num_features, FeatureType::kNumeric);
  storage_->feature_names.reserve(num_features);
  for (size_t j = 0; j < num_features; ++j) {
    storage_->feature_names.push_back(StrFormat("f%zu", j));
  }
}

Dataset Dataset::Regression(std::string name, size_t num_features) {
  Dataset out(std::move(name), num_features, /*num_classes=*/1);
  out.task_ = TaskType::kRegression;
  return out;
}

Dataset Dataset::Like(const Dataset& proto, std::string name,
                      size_t num_features) {
  Dataset out(std::move(name), num_features, proto.num_classes());
  out.task_ = proto.task();
  return out;
}

void Dataset::EnsureOwned() {
  if (storage_ != nullptr && row_index_ == nullptr &&
      storage_.use_count() == 1) {
    return;
  }
  auto fresh = std::make_shared<Storage>();
  if (storage_ != nullptr) {
    fresh->feature_types = storage_->feature_types;
    fresh->feature_names = storage_->feature_names;
    fresh->x.reserve(num_rows() * num_features_);
    for (size_t r = 0; r < num_rows(); ++r) {
      const double* p = RowPtr(r);
      fresh->x.insert(fresh->x.end(), p, p + num_features_);
    }
  }
  storage_ = std::move(fresh);
  row_index_ = nullptr;
}

Status Dataset::AppendRow(const std::vector<double>& features, int label) {
  if (task_ == TaskType::kRegression) {
    return Status::FailedPrecondition(
        "AppendRow on a regression dataset; use AppendTargetRow");
  }
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        StrFormat("row has %zu features, expected %zu", features.size(),
                  num_features_));
  }
  if (label < 0 || label >= num_classes_) {
    return Status::InvalidArgument(
        StrFormat("label %d out of range [0, %d)", label, num_classes_));
  }
  EnsureOwned();
  storage_->x.insert(storage_->x.end(), features.begin(), features.end());
  labels_.push_back(label);
  return Status::Ok();
}

Status Dataset::AppendTargetRow(const std::vector<double>& features,
                                double target) {
  if (task_ != TaskType::kRegression) {
    return Status::FailedPrecondition(
        "AppendTargetRow on a classification dataset; use AppendRow");
  }
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        StrFormat("row has %zu features, expected %zu", features.size(),
                  num_features_));
  }
  EnsureOwned();
  storage_->x.insert(storage_->x.end(), features.begin(), features.end());
  labels_.push_back(0);  // All-zero labels keep class invariants alive.
  targets_.push_back(target);
  return Status::Ok();
}

Status Dataset::AppendRowLike(const Dataset& src, size_t src_row,
                              const std::vector<double>& features) {
  if (src.task() != task_) {
    return Status::InvalidArgument("AppendRowLike: task mismatch");
  }
  if (task_ == TaskType::kRegression) {
    return AppendTargetRow(features, src.Target(src_row));
  }
  return AppendRow(features, src.Label(src_row));
}

double Dataset::TargetMean() const {
  if (targets_.empty()) return 0.0;
  double sum = 0.0;
  for (double y : targets_) sum += y;
  return sum / static_cast<double>(targets_.size());
}

void Dataset::Reserve(size_t rows) {
  EnsureOwned();
  storage_->x.reserve(rows * num_features_);
  labels_.reserve(rows);
  if (task_ == TaskType::kRegression) targets_.reserve(rows);
}

void Dataset::SetFeatureType(size_t j, FeatureType type) {
  GREEN_CHECK(j < num_features_);
  EnsureOwned();
  storage_->feature_types[j] = type;
}

void Dataset::SetFeatureName(size_t j, std::string name) {
  GREEN_CHECK(j < num_features_);
  EnsureOwned();
  storage_->feature_names[j] = std::move(name);
}

void Dataset::SetNominalSize(int64_t rows, int64_t features) {
  nominal_rows_ = rows;
  nominal_features_ = features;
}

double Dataset::ScaleFactor() const {
  if (nominal_rows_ <= 0 || num_rows() == 0) return 1.0;
  const double f =
      static_cast<double>(nominal_rows_) / static_cast<double>(num_rows());
  return f < 1.0 ? 1.0 : f;
}

std::vector<double> Dataset::Row(size_t row) const {
  const double* p = RowPtr(row);
  return std::vector<double>(p, p + num_features_);
}

size_t Dataset::NumCategorical() const {
  if (storage_ == nullptr) return 0;
  size_t n = 0;
  for (FeatureType t : storage_->feature_types) {
    if (t == FeatureType::kCategorical) ++n;
  }
  return n;
}

std::vector<int> Dataset::ClassCounts() const {
  std::vector<int> counts(static_cast<size_t>(num_classes_), 0);
  for (int y : labels_) ++counts[static_cast<size_t>(y)];
  return counts;
}

Dataset Dataset::Subset(const std::vector<size_t>& rows) const {
  Dataset out;
  out.name_ = name_;
  out.num_features_ = num_features_;
  out.num_classes_ = num_classes_;
  out.task_ = task_;
  out.nominal_rows_ = nominal_rows_;
  out.nominal_features_ = nominal_features_;
  out.storage_ = storage_;
  auto index = std::make_shared<std::vector<size_t>>();
  index->reserve(rows.size());
  out.labels_.reserve(rows.size());
  if (!targets_.empty()) out.targets_.reserve(rows.size());
  for (size_t r : rows) {
    GREEN_CHECK(r < num_rows());
    index->push_back(PhysRow(r));  // Compose views: map through our index.
    out.labels_.push_back(labels_[r]);
    if (!targets_.empty()) out.targets_.push_back(targets_[r]);
  }
  out.row_index_ = std::move(index);
  return out;
}

Dataset Dataset::SelectFeatures(const std::vector<size_t>& cols) const {
  Dataset out = Like(*this, name_, cols.size());
  out.targets_ = targets_;
  for (size_t k = 0; k < cols.size(); ++k) {
    GREEN_CHECK(cols[k] < num_features_);
    out.storage_->feature_types[k] = storage_->feature_types[cols[k]];
    out.storage_->feature_names[k] = storage_->feature_names[cols[k]];
  }
  out.nominal_rows_ = nominal_rows_;
  out.nominal_features_ = nominal_features_;
  out.storage_->x.resize(num_rows() * cols.size());
  out.labels_ = labels_;
  for (size_t r = 0; r < num_rows(); ++r) {
    for (size_t k = 0; k < cols.size(); ++k) {
      out.storage_->x[r * cols.size() + k] = At(r, cols[k]);
    }
  }
  return out;
}

uint64_t Dataset::ViewFingerprint() const {
  uint64_t h = HashCombine(0x9e3779b97f4a7c15ull, num_rows());
  h = HashCombine(h, num_features_);
  if (row_index_ != nullptr) {
    for (size_t r : *row_index_) h = HashCombine(h, r);
  }
  return h;
}

}  // namespace green
