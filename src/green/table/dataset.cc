#include "green/table/dataset.h"

#include "green/common/logging.h"
#include "green/common/stringutil.h"

namespace green {

Dataset::Dataset(std::string name, size_t num_features, int num_classes)
    : name_(std::move(name)),
      num_features_(num_features),
      num_classes_(num_classes) {
  feature_types_.assign(num_features, FeatureType::kNumeric);
  feature_names_.reserve(num_features);
  for (size_t j = 0; j < num_features; ++j) {
    feature_names_.push_back(StrFormat("f%zu", j));
  }
}

Status Dataset::AppendRow(const std::vector<double>& features, int label) {
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        StrFormat("row has %zu features, expected %zu", features.size(),
                  num_features_));
  }
  if (label < 0 || label >= num_classes_) {
    return Status::InvalidArgument(
        StrFormat("label %d out of range [0, %d)", label, num_classes_));
  }
  x_.insert(x_.end(), features.begin(), features.end());
  labels_.push_back(label);
  return Status::Ok();
}

void Dataset::SetFeatureType(size_t j, FeatureType type) {
  GREEN_CHECK(j < num_features_);
  feature_types_[j] = type;
}

void Dataset::SetFeatureName(size_t j, std::string name) {
  GREEN_CHECK(j < num_features_);
  feature_names_[j] = std::move(name);
}

void Dataset::SetNominalSize(int64_t rows, int64_t features) {
  nominal_rows_ = rows;
  nominal_features_ = features;
}

double Dataset::ScaleFactor() const {
  if (nominal_rows_ <= 0 || num_rows() == 0) return 1.0;
  const double f =
      static_cast<double>(nominal_rows_) / static_cast<double>(num_rows());
  return f < 1.0 ? 1.0 : f;
}

std::vector<double> Dataset::Row(size_t row) const {
  const double* p = RowPtr(row);
  return std::vector<double>(p, p + num_features_);
}

size_t Dataset::NumCategorical() const {
  size_t n = 0;
  for (FeatureType t : feature_types_) {
    if (t == FeatureType::kCategorical) ++n;
  }
  return n;
}

std::vector<int> Dataset::ClassCounts() const {
  std::vector<int> counts(static_cast<size_t>(num_classes_), 0);
  for (int y : labels_) ++counts[static_cast<size_t>(y)];
  return counts;
}

Dataset Dataset::Subset(const std::vector<size_t>& rows) const {
  Dataset out(name_, num_features_, num_classes_);
  out.feature_types_ = feature_types_;
  out.feature_names_ = feature_names_;
  out.nominal_rows_ = nominal_rows_;
  out.nominal_features_ = nominal_features_;
  out.x_.reserve(rows.size() * num_features_);
  out.labels_.reserve(rows.size());
  for (size_t r : rows) {
    GREEN_CHECK(r < num_rows());
    const double* p = RowPtr(r);
    out.x_.insert(out.x_.end(), p, p + num_features_);
    out.labels_.push_back(labels_[r]);
  }
  return out;
}

Dataset Dataset::SelectFeatures(const std::vector<size_t>& cols) const {
  Dataset out(name_, cols.size(), num_classes_);
  for (size_t k = 0; k < cols.size(); ++k) {
    GREEN_CHECK(cols[k] < num_features_);
    out.feature_types_[k] = feature_types_[cols[k]];
    out.feature_names_[k] = feature_names_[cols[k]];
  }
  out.nominal_rows_ = nominal_rows_;
  out.nominal_features_ = nominal_features_;
  out.x_.resize(num_rows() * cols.size());
  out.labels_ = labels_;
  for (size_t r = 0; r < num_rows(); ++r) {
    for (size_t k = 0; k < cols.size(); ++k) {
      out.x_[r * cols.size() + k] = At(r, cols[k]);
    }
  }
  return out;
}

}  // namespace green
