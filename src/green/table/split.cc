#include "green/table/split.h"

#include <algorithm>

namespace green {

namespace {

/// Row indices grouped per class, each group shuffled.
std::vector<std::vector<size_t>> GroupByClass(const Dataset& data,
                                              Rng* rng) {
  std::vector<std::vector<size_t>> by_class(
      static_cast<size_t>(data.num_classes()));
  for (size_t r = 0; r < data.num_rows(); ++r) {
    by_class[static_cast<size_t>(data.Label(r))].push_back(r);
  }
  for (auto& group : by_class) rng->Shuffle(&group);
  return by_class;
}

/// All row indices in one shuffled group.
std::vector<size_t> ShuffledRows(const Dataset& data, Rng* rng) {
  std::vector<size_t> rows(data.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  rng->Shuffle(&rows);
  return rows;
}

/// Partitions one shuffled group with StratifiedSplit's rounding policy.
void SplitGroup(const std::vector<size_t>& group, double train_fraction,
                TrainTestIndices* out) {
  if (group.empty()) return;
  size_t n_train = static_cast<size_t>(
      static_cast<double>(group.size()) * train_fraction + 0.5);
  if (n_train == 0 && group.size() > 1) n_train = 1;
  if (n_train >= group.size()) n_train = group.size() - 1;
  if (group.size() == 1) n_train = 1;  // Lone row goes to train.
  for (size_t i = 0; i < group.size(); ++i) {
    (i < n_train ? out->train : out->test).push_back(group[i]);
  }
}

}  // namespace

TrainTestIndices StratifiedSplit(const Dataset& data, double train_fraction,
                                 Rng* rng) {
  TrainTestIndices out;
  for (auto& group : GroupByClass(data, rng)) {
    SplitGroup(group, train_fraction, &out);
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

TrainTestIndices PlainSplit(const Dataset& data, double train_fraction,
                            Rng* rng) {
  TrainTestIndices out;
  SplitGroup(ShuffledRows(data, rng), train_fraction, &out);
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

std::vector<std::vector<size_t>> StratifiedKFold(const Dataset& data,
                                                 int k, Rng* rng) {
  std::vector<std::vector<size_t>> folds(static_cast<size_t>(k));
  for (auto& group : GroupByClass(data, rng)) {
    for (size_t i = 0; i < group.size(); ++i) {
      folds[i % static_cast<size_t>(k)].push_back(group[i]);
    }
  }
  for (auto& f : folds) std::sort(f.begin(), f.end());
  return folds;
}

std::vector<std::vector<size_t>> PlainKFold(const Dataset& data, int k,
                                            Rng* rng) {
  std::vector<std::vector<size_t>> folds(static_cast<size_t>(k));
  const std::vector<size_t> rows = ShuffledRows(data, rng);
  for (size_t i = 0; i < rows.size(); ++i) {
    folds[i % static_cast<size_t>(k)].push_back(rows[i]);
  }
  for (auto& f : folds) std::sort(f.begin(), f.end());
  return folds;
}

TrainTestIndices SplitForTask(const Dataset& data, double train_fraction,
                              Rng* rng) {
  return data.task() == TaskType::kRegression
             ? PlainSplit(data, train_fraction, rng)
             : StratifiedSplit(data, train_fraction, rng);
}

std::vector<std::vector<size_t>> KFoldForTask(const Dataset& data, int k,
                                              Rng* rng) {
  return data.task() == TaskType::kRegression
             ? PlainKFold(data, k, rng)
             : StratifiedKFold(data, k, rng);
}

const char* SplitterNameForTask(TaskType task) {
  return task == TaskType::kRegression ? "plain" : "stratified";
}

std::vector<size_t> SamplePerClass(const Dataset& data, int per_class,
                                   Rng* rng) {
  std::vector<size_t> out;
  for (auto& group : GroupByClass(data, rng)) {
    const size_t take =
        std::min(group.size(), static_cast<size_t>(per_class));
    out.insert(out.end(), group.begin(), group.begin() + take);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> SampleRows(const Dataset& data, size_t n, Rng* rng) {
  std::vector<size_t> all(data.num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  rng->Shuffle(&all);
  if (n < all.size()) all.resize(n);
  std::sort(all.begin(), all.end());
  return all;
}

TrainTestData Materialize(const Dataset& data,
                          const TrainTestIndices& indices) {
  return TrainTestData{data.Subset(indices.train),
                       data.Subset(indices.test)};
}

}  // namespace green
