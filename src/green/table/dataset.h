#ifndef GREEN_TABLE_DATASET_H_
#define GREEN_TABLE_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "green/common/status.h"
#include "green/table/column.h"
#include "green/table/task_type.h"

namespace green {

/// A labeled classification dataset: dense row-major feature matrix with
/// per-column types plus integer class labels in [0, num_classes).
///
/// Datasets carry two sizes: the *instantiated* size (rows actually held in
/// memory, possibly scaled down for simulation speed) and the *nominal*
/// size of the task they represent (e.g. covertype's 581,012 rows). The
/// energy cost model can extrapolate to nominal scale while learning runs
/// on the instantiated sample; see DESIGN.md §3.
///
/// Storage model: the feature matrix and per-column metadata live behind a
/// shared immutable block, so copying a Dataset is O(rows) (labels only)
/// and `Subset` returns an O(rows) *view* — a row-index indirection over
/// the same storage — instead of a dense copy. Mutators (`Set`,
/// `AppendRow`, `SetFeatureType`, `SetFeatureName`) copy-on-write: they
/// first collapse the view / unshare the storage, so no mutation is ever
/// visible through another Dataset. `Materialize()` collapses a view into
/// owned dense storage explicitly for code that wants contiguity.
class Dataset {
 public:
  Dataset() = default;
  /// Classification dataset; the task is kBinary for num_classes <= 2 and
  /// kMulticlass otherwise.
  Dataset(std::string name, size_t num_features, int num_classes);

  /// Regression dataset: continuous targets, num_classes() == 1 (labels
  /// are all zero so every labels_-based invariant — row counts, class
  /// counts, stratified grouping — degrades gracefully to "one class").
  static Dataset Regression(std::string name, size_t num_features);

  /// Empty dataset shaped like `proto` (same task and class count) with a
  /// fresh feature width. Used wherever code rebuilds a dataset row by
  /// row (encoders, stacking augmentation) so the task survives.
  static Dataset Like(const Dataset& proto, std::string name,
                      size_t num_features);

  // --- construction ---
  /// Appends one labeled row. `features.size()` must equal num_features().
  /// FailedPrecondition on regression datasets — use AppendTargetRow.
  Status AppendRow(const std::vector<double>& features, int label);

  /// Appends one row with a continuous target. FailedPrecondition on
  /// classification datasets.
  Status AppendTargetRow(const std::vector<double>& features, double target);

  /// Appends one row copying the label (or target) of `src`'s row
  /// `src_row`; `src` must have the same task and class count.
  Status AppendRowLike(const Dataset& src, size_t src_row,
                       const std::vector<double>& features);

  /// Pre-allocates capacity for `rows` total rows (copy-on-write first, so
  /// a view materializes once instead of growing geometrically from zero).
  void Reserve(size_t rows);

  void SetFeatureType(size_t j, FeatureType type);
  void SetFeatureName(size_t j, std::string name);
  void SetNominalSize(int64_t rows, int64_t features);

  // --- shape ---
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }
  TaskType task() const { return task_; }
  int64_t nominal_rows() const { return nominal_rows_; }
  int64_t nominal_features() const { return nominal_features_; }

  /// Ratio of nominal to instantiated row count (>= 1 for scaled-down
  /// instantiations); used to extrapolate work to the task's true size.
  double ScaleFactor() const;

  // --- access ---
  double At(size_t row, size_t col) const {
    return storage_->x[PhysRow(row) * num_features_ + col];
  }
  void Set(size_t row, size_t col, double v) {
    EnsureOwned();
    storage_->x[row * num_features_ + col] = v;
  }
  /// Direct mutable access to the dense row-major matrix. Materializes
  /// (CoW) once, so element-wise transform loops pay one ownership check
  /// instead of one per Set(). The pointer is invalidated by the next
  /// mutation or copy of this Dataset.
  double* MutableData() {
    EnsureOwned();
    return storage_->x.data();
  }
  int Label(size_t row) const { return labels_[row]; }
  const std::vector<int>& labels() const { return labels_; }
  /// Continuous target of a regression row; empty for classification.
  double Target(size_t row) const { return targets_[row]; }
  const std::vector<double>& targets() const { return targets_; }
  /// Mean of the regression targets (0 when empty) — the regression
  /// analogue of the class prior.
  double TargetMean() const;
  const double* RowPtr(size_t row) const {
    return storage_->x.data() + PhysRow(row) * num_features_;
  }
  std::vector<double> Row(size_t row) const;
  FeatureType feature_type(size_t j) const {
    return storage_->feature_types[j];
  }
  const std::string& feature_name(size_t j) const {
    return storage_->feature_names[j];
  }

  /// Number of categorical features.
  size_t NumCategorical() const;

  /// Count of rows per class.
  std::vector<int> ClassCounts() const;

  /// New dataset containing the given rows (in order). O(rows): returns a
  /// view sharing this dataset's feature storage.
  Dataset Subset(const std::vector<size_t>& rows) const;

  /// New dataset containing the given feature columns (in order), same
  /// rows and labels. Materializes (column selection changes row layout).
  Dataset SelectFeatures(const std::vector<size_t>& cols) const;

  /// Logical in-memory footprint of the feature matrix in bytes. Views
  /// report the same value as an equivalent dense copy, so modeled work
  /// is independent of the storage representation.
  double FeatureBytes() const {
    return static_cast<double>(num_rows()) *
           static_cast<double>(num_features_) * sizeof(double);
  }

  // --- storage identity (views / caching) ---
  /// True when rows are accessed through an index indirection.
  bool IsView() const { return row_index_ != nullptr; }

  /// Collapses a view (or shared storage) into owned dense storage.
  void Materialize() { EnsureOwned(); }

  /// Identity of the shared feature storage; two datasets with equal
  /// StorageId see the same underlying matrix. Null for an empty default-
  /// constructed dataset. Valid only while either dataset is alive.
  const void* StorageId() const { return storage_.get(); }

  /// The row-index indirection, or nullptr when rows are contiguous.
  const std::vector<size_t>* RowIndex() const { return row_index_.get(); }

  /// Order-sensitive hash of (rows, features, row indices) — a cheap view
  /// fingerprint for cache keys. Callers needing exactness must still
  /// compare RowIndex() contents (see TransformCache).
  uint64_t ViewFingerprint() const;

 private:
  /// Immutable once shared; mutation goes through EnsureOwned().
  struct Storage {
    std::vector<double> x;  // Row-major, physical_rows * num_features.
    std::vector<FeatureType> feature_types;
    std::vector<std::string> feature_names;
  };

  size_t PhysRow(size_t row) const {
    return row_index_ == nullptr ? row : (*row_index_)[row];
  }

  /// Copy-on-write: after this call, storage is non-null, uniquely owned,
  /// dense (no row index), and safe to mutate.
  void EnsureOwned();

  std::string name_;
  size_t num_features_ = 0;
  int num_classes_ = 0;
  TaskType task_ = TaskType::kBinary;
  std::shared_ptr<Storage> storage_;
  /// Maps logical row -> physical row in storage. Null = identity.
  std::shared_ptr<const std::vector<size_t>> row_index_;
  std::vector<int> labels_;  // Per-view: labels_[i] labels logical row i.
  /// Parallel to labels_ for regression datasets; empty otherwise.
  std::vector<double> targets_;
  int64_t nominal_rows_ = 0;
  int64_t nominal_features_ = 0;
};

}  // namespace green

#endif  // GREEN_TABLE_DATASET_H_
