#ifndef GREEN_TABLE_DATASET_H_
#define GREEN_TABLE_DATASET_H_

#include <string>
#include <vector>

#include "green/common/status.h"
#include "green/table/column.h"

namespace green {

/// A labeled classification dataset: dense row-major feature matrix with
/// per-column types plus integer class labels in [0, num_classes).
///
/// Datasets carry two sizes: the *instantiated* size (rows actually held in
/// memory, possibly scaled down for simulation speed) and the *nominal*
/// size of the task they represent (e.g. covertype's 581,012 rows). The
/// energy cost model can extrapolate to nominal scale while learning runs
/// on the instantiated sample; see DESIGN.md §3.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, size_t num_features, int num_classes);

  // --- construction ---
  /// Appends one labeled row. `features.size()` must equal num_features().
  Status AppendRow(const std::vector<double>& features, int label);

  void SetFeatureType(size_t j, FeatureType type);
  void SetFeatureName(size_t j, std::string name);
  void SetNominalSize(int64_t rows, int64_t features);

  // --- shape ---
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }
  int64_t nominal_rows() const { return nominal_rows_; }
  int64_t nominal_features() const { return nominal_features_; }

  /// Ratio of nominal to instantiated row count (>= 1 for scaled-down
  /// instantiations); used to extrapolate work to the task's true size.
  double ScaleFactor() const;

  // --- access ---
  double At(size_t row, size_t col) const {
    return x_[row * num_features_ + col];
  }
  void Set(size_t row, size_t col, double v) {
    x_[row * num_features_ + col] = v;
  }
  int Label(size_t row) const { return labels_[row]; }
  const std::vector<int>& labels() const { return labels_; }
  const double* RowPtr(size_t row) const {
    return x_.data() + row * num_features_;
  }
  std::vector<double> Row(size_t row) const;
  FeatureType feature_type(size_t j) const { return feature_types_[j]; }
  const std::string& feature_name(size_t j) const {
    return feature_names_[j];
  }

  /// Number of categorical features.
  size_t NumCategorical() const;

  /// Count of rows per class.
  std::vector<int> ClassCounts() const;

  /// New dataset containing the given rows (in order).
  Dataset Subset(const std::vector<size_t>& rows) const;

  /// New dataset containing the given feature columns (in order), same
  /// rows and labels.
  Dataset SelectFeatures(const std::vector<size_t>& cols) const;

  /// Approximate in-memory footprint of the feature matrix in bytes.
  double FeatureBytes() const {
    return static_cast<double>(x_.size()) * sizeof(double);
  }

 private:
  std::string name_;
  size_t num_features_ = 0;
  int num_classes_ = 0;
  std::vector<double> x_;  // Row-major, num_rows * num_features.
  std::vector<int> labels_;
  std::vector<FeatureType> feature_types_;
  std::vector<std::string> feature_names_;
  int64_t nominal_rows_ = 0;
  int64_t nominal_features_ = 0;
};

}  // namespace green

#endif  // GREEN_TABLE_DATASET_H_
