#ifndef GREEN_TABLE_SPLIT_H_
#define GREEN_TABLE_SPLIT_H_

#include <vector>

#include "green/common/rng.h"
#include "green/table/dataset.h"

namespace green {

/// A train/test partition by row index.
struct TrainTestIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Stratified split: each class contributes `train_fraction` of its rows
/// to the train side (rounded; every non-empty class keeps at least one
/// training row when possible). The paper uses 66/34 for its outer split.
TrainTestIndices StratifiedSplit(const Dataset& data, double train_fraction,
                                 Rng* rng);

/// Plain (non-stratified) shuffled split with the same rounding policy as
/// StratifiedSplit applied to the whole dataset at once. The splitter for
/// regression tasks, where labels carry no class structure.
TrainTestIndices PlainSplit(const Dataset& data, double train_fraction,
                            Rng* rng);

/// Stratified k-fold cross-validation indices; fold f's test rows are
/// `folds[f]`, its training rows are everything else. Used by TPOT
/// (5-fold CV) and AutoGluon bagging.
std::vector<std::vector<size_t>> StratifiedKFold(const Dataset& data,
                                                 int k, Rng* rng);

/// Plain shuffled k-fold (round-robin assignment after one shuffle).
std::vector<std::vector<size_t>> PlainKFold(const Dataset& data, int k,
                                            Rng* rng);

/// Task dispatch: stratified for classification, plain for regression.
/// Classification behavior (including RNG consumption) is identical to
/// calling StratifiedSplit / StratifiedKFold directly.
TrainTestIndices SplitForTask(const Dataset& data, double train_fraction,
                              Rng* rng);
std::vector<std::vector<size_t>> KFoldForTask(const Dataset& data, int k,
                                              Rng* rng);

/// Name of the splitter SplitForTask would choose: "stratified"/"plain".
const char* SplitterNameForTask(TaskType task);

/// Draws up to `per_class` rows per class (without replacement); the
/// incremental-training strategy of CAML grows samples this way.
std::vector<size_t> SamplePerClass(const Dataset& data, int per_class,
                                   Rng* rng);

/// Uniform sample of up to `n` rows without replacement.
std::vector<size_t> SampleRows(const Dataset& data, size_t n, Rng* rng);

/// Materializes a partition into datasets.
struct TrainTestData {
  Dataset train;
  Dataset test;
};
TrainTestData Materialize(const Dataset& data,
                          const TrainTestIndices& indices);

}  // namespace green

#endif  // GREEN_TABLE_SPLIT_H_
