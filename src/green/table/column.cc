#include "green/table/column.h"

#include <algorithm>

namespace green {

size_t Column::MissingCount() const {
  size_t n = 0;
  for (double v : values_) {
    if (IsMissing(v)) ++n;
  }
  return n;
}

double Column::MeanIgnoringMissing() const {
  double sum = 0.0;
  size_t n = 0;
  for (double v : values_) {
    if (!IsMissing(v)) {
      sum += v;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double Column::MinIgnoringMissing() const {
  double best = 0.0;
  bool found = false;
  for (double v : values_) {
    if (IsMissing(v)) continue;
    if (!found || v < best) {
      best = v;
      found = true;
    }
  }
  return best;
}

double Column::MaxIgnoringMissing() const {
  double best = 0.0;
  bool found = false;
  for (double v : values_) {
    if (IsMissing(v)) continue;
    if (!found || v > best) {
      best = v;
      found = true;
    }
  }
  return best;
}

int Column::Cardinality() const {
  double mx = -1.0;
  for (double v : values_) {
    if (!IsMissing(v)) mx = std::max(mx, v);
  }
  return mx < 0.0 ? 0 : static_cast<int>(mx) + 1;
}

}  // namespace green
