#include "green/sim/charge_trace.h"

#include <cstdlib>

namespace green {

namespace {

/// Scope names are identifier-like, but a defensive escape keeps the
/// trace valid JSON no matter what a caller passes.
std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

ChargeTrace& ChargeTrace::Instance() {
  static ChargeTrace* kInstance = new ChargeTrace();
  return *kInstance;
}

ChargeTrace::ChargeTrace() { ReopenFromEnv(); }

void ChargeTrace::ReopenFromEnv() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  enabled_.store(false, std::memory_order_relaxed);
  const char* path = std::getenv("GREEN_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  file_ = std::fopen(path, "a");
  if (file_ == nullptr) {
    std::fprintf(stderr, "GREEN_TRACE: cannot open %s; tracing disabled\n",
                 path);
    return;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void ChargeTrace::Enter(const std::string& path, double now) {
  if (!enabled()) return;
  WriteLine("enter", path, now, 0.0, /*has_duration=*/false);
}

void ChargeTrace::Exit(const std::string& path, double now,
                       double duration) {
  if (!enabled()) return;
  WriteLine("exit", path, now, duration, /*has_duration=*/true);
}

void ChargeTrace::WriteLine(const char* event, const std::string& path,
                            double now, double duration,
                            bool has_duration) {
  const std::string escaped = EscapeJson(path);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (has_duration) {
    std::fprintf(file_, "{\"ev\":\"%s\",\"path\":\"%s\",\"t\":%.10g,\"dt\":%.10g}\n",
                 event, escaped.c_str(), now, duration);
  } else {
    std::fprintf(file_, "{\"ev\":\"%s\",\"path\":\"%s\",\"t\":%.10g}\n",
                 event, escaped.c_str(), now);
  }
  std::fflush(file_);
  events_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace green
