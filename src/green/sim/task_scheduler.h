#ifndef GREEN_SIM_TASK_SCHEDULER_H_
#define GREEN_SIM_TASK_SCHEDULER_H_

#include <vector>

namespace green {

/// Simulates running a batch of independent tasks on a fixed number of
/// cores with greedy longest-processing-time-first assignment — the
/// classic list-scheduling bound. Used for embarrassingly parallel phases
/// such as AutoGluon's bagged-fold training (the paper's Fig. 5 shows why
/// this matters: parallel phases amortize static power, sequential ones do
/// not).
class TaskGraphScheduler {
 public:
  struct Schedule {
    double makespan_seconds = 0.0;    ///< Wall time of the batch.
    double busy_core_seconds = 0.0;   ///< Sum of all task durations.
    double utilization = 0.0;         ///< busy / (makespan * cores).
  };

  /// `task_seconds` are single-core durations. `cores` >= 1.
  static Schedule ScheduleBatch(const std::vector<double>& task_seconds,
                                int cores);
};

}  // namespace green

#endif  // GREEN_SIM_TASK_SCHEDULER_H_
