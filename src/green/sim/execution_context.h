#ifndef GREEN_SIM_EXECUTION_CONTEXT_H_
#define GREEN_SIM_EXECUTION_CONTEXT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "green/common/cancel.h"
#include "green/energy/energy_meter.h"
#include "green/energy/energy_model.h"
#include "green/sim/virtual_clock.h"
#include "green/sim/work_counter.h"

namespace green {

class ChargeScope;
class TransformCache;

/// One completed charge, recorded relative to the scope path that was
/// active when tape recording started ("" = at the base path itself).
struct ChargeTapeEntry {
  std::string rel_path;
  Work work;
};

/// A recorded sequence of completed charges. Replaying a tape re-issues
/// each Work through Charge() at the recorded relative scope path, so the
/// clock, meter, counters, and slicing behave bit-identically to the
/// original computation (WorkExecution is a pure function of the Work and
/// the machine model — the tape stores only the Work).
struct ChargeTape {
  std::vector<ChargeTapeEntry> entries;
  size_t ApproxBytes() const;
};

/// The handle every instrumented kernel threads through.
///
/// An ExecutionContext glues together the virtual clock, the machine's
/// energy model, the currently metering EnergyMeter (if any), the number of
/// CPU cores allotted to the workload, and an optional deadline. Charging
/// work advances virtual time and attributes dynamic energy — this single
/// funnel is what makes the library's energy numbers a pure function of the
/// algorithms executed.
///
/// Attribution is hierarchical: instrumented layers open RAII ChargeScopes
/// ("caml/search/pipeline/fit/random_forest"), and every charge lands on
/// the scope path active at the moment it is issued. Large charges are
/// split into bounded virtual-time slices, polling the CancelToken (and,
/// optionally, the deadline) between slices so the sweep watchdog can stop
/// a cell mid-fit instead of at the next search-loop head. Slicing is
/// bit-identical to a single Advance: the work is executed once, the final
/// slice lands exactly on start + seconds, and a completed charge issues
/// one meter record.
class ExecutionContext {
 public:
  ExecutionContext(VirtualClock* clock, const EnergyModel* model, int cores)
      : clock_(clock),
        model_(model),
        cores_(cores),
        max_slice_seconds_(DefaultMaxSliceSeconds()) {}

  /// Executes `work`: advances the clock, records energy and counters.
  /// Returns the virtual seconds consumed. When the charge is truncated
  /// mid-way (cancellation, or hard-deadline mode), the clock stops at the
  /// last completed slice, the completed fraction of the work is metered,
  /// and Interrupted() turns true — callers unwind with DEADLINE_EXCEEDED.
  double Charge(const Work& work);

  /// Convenience: CPU work with given parallel fraction.
  double ChargeCpu(double flops, double bytes,
                   double parallel_fraction = 0.9);

  /// Convenience: runs on the GPU when one exists (falls back to CPU).
  double ChargeAccelerated(double flops, double bytes);

  double Now() const { return clock_->Now(); }

  /// Deadline handling for budget-bounded search.
  void SetDeadline(double deadline_seconds) { deadline_ = deadline_seconds; }
  void ClearDeadline() {
    deadline_ = std::numeric_limits<double>::infinity();
  }
  double deadline() const { return deadline_; }
  bool DeadlineExceeded() const { return clock_->Now() >= deadline_; }
  double RemainingBudget() const { return deadline_ - clock_->Now(); }

  /// Cooperative cancellation: a watchdog holds the token and flips it
  /// when a cell overruns its wall-clock allowance; search loops poll
  /// Cancelled() at their heads and unwind with DEADLINE_EXCEEDED.
  void SetCancelToken(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }
  bool Cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }

  /// True once the context should stop doing work: either the token was
  /// cancelled or a charge was truncated mid-slice. Model fit loops poll
  /// this between units of work (trees, boosting rounds, epochs) so a
  /// watchdog cancellation unwinds mid-fit, not at the next search head.
  bool Interrupted() const { return charge_truncated_ || Cancelled(); }

  /// True when the most recent Charge stopped before completing all of
  /// its slices. Sticky until the context is destroyed or explicitly
  /// re-armed — for sweep cells a truncated charge means the surrounding
  /// run is being torn down.
  bool charge_truncated() const { return charge_truncated_; }

  /// Re-arms the context after a truncated charge. Long-lived serving
  /// contexts enforce a *per-request* deadline via hard-deadline slicing
  /// and then keep going (degrade, serve the next request); sweep cells
  /// never call this. Does not clear an external CancelToken.
  void ClearChargeTruncation() { charge_truncated_ = false; }

  /// Total charge slices completed on this context. A charge shorter than
  /// the slice bound counts one slice; a cancelled fit completes fewer
  /// slices than the same fit run to completion.
  uint64_t charge_slices() const { return charge_slices_; }

  /// Maximum virtual seconds per charge slice; <= 0 disables slicing.
  /// Defaults to kDefaultMaxSliceSeconds, overridable with
  /// GREEN_CHARGE_SLICE.
  void SetMaxSliceSeconds(double seconds) { max_slice_seconds_ = seconds; }
  double max_slice_seconds() const { return max_slice_seconds_; }

  /// When enabled, sliced charges also stop at the virtual deadline. Off
  /// by default: the paper's budget-overrun semantics (Table 7) require
  /// systems to finish the evaluation that straddles the budget.
  void SetHardDeadline(bool hard) { hard_deadline_ = hard; }
  bool hard_deadline() const { return hard_deadline_; }

  /// Attaches/detaches the meter that receives dynamic-energy records.
  void SetMeter(EnergyMeter* meter) { meter_ = meter; }
  EnergyMeter* meter() const { return meter_; }

  void SetCores(int cores) { cores_ = cores; }
  int cores() const { return cores_; }

  bool HasGpu() const { return model_->machine().has_gpu; }

  /// The '/'-joined path of currently open ChargeScopes; empty at the
  /// root. Charges issued now are attributed to this path.
  const std::string& scope_path() const { return scope_path_; }
  size_t scope_depth() const { return scope_depth_; }

  VirtualClock* clock() const { return clock_; }
  const EnergyModel* model() const { return model_; }
  WorkCounter* counter() { return &counter_; }

  // --- charge tape (transform-cache record/replay) ---
  /// Starts recording completed charges into `tape`, with scope paths
  /// stored relative to the current path. Returns false (and records
  /// nothing) if a recording is already active — tapes don't nest.
  bool StartTapeRecording(ChargeTape* tape);
  void StopTapeRecording() { tape_ = nullptr; }

  /// Re-issues every charge on the tape at its recorded relative scope
  /// path. Stops early if a charge is truncated (cancellation / hard
  /// deadline), exactly like the original computation would have. Returns
  /// the virtual seconds consumed. Never records into an active tape.
  double ReplayTape(const ChargeTape& tape);

  /// The transform cache runs attach so Pipeline::Fit can memoize fitted
  /// transformer prefixes (null = caching disabled). Not owned.
  void SetTransformCache(TransformCache* cache) { transform_cache_ = cache; }
  TransformCache* transform_cache() const { return transform_cache_; }

  static constexpr double kDefaultMaxSliceSeconds = 0.05;
  static constexpr int kMaxSlicesPerCharge = 4096;

 private:
  friend class ChargeScope;

  /// Reads GREEN_CHARGE_SLICE once per process; falls back to
  /// kDefaultMaxSliceSeconds.
  static double DefaultMaxSliceSeconds();

  /// Appends one segment to the scope path; returns the previous path
  /// length so ChargeScope can restore it on destruction.
  size_t PushScope(std::string_view name);
  void PopScope(size_t previous_length, double entered_at);

  VirtualClock* clock_;       // Not owned.
  const EnergyModel* model_;  // Not owned.
  EnergyMeter* meter_ = nullptr;
  const CancelToken* cancel_ = nullptr;  // Not owned.
  int cores_;
  double deadline_ = std::numeric_limits<double>::infinity();
  double max_slice_seconds_;
  bool hard_deadline_ = false;
  bool charge_truncated_ = false;
  uint64_t charge_slices_ = 0;
  std::string scope_path_;
  size_t scope_depth_ = 0;
  WorkCounter counter_;
  ChargeTape* tape_ = nullptr;  // Not owned; non-null while recording.
  size_t tape_base_length_ = 0;
  TransformCache* transform_cache_ = nullptr;  // Not owned.
};

/// RAII scope segment: pushes `name` onto the context's scope path for
/// its lifetime. Cheap (string append/resize), safe to nest, and emits
/// enter/exit events to the GREEN_TRACE sink when tracing is on.
///
///   ChargeScope scope(ctx, "search");
///   { ChargeScope fit(ctx, "fit"); ctx->ChargeCpu(...); }  // "search/fit"
class ChargeScope {
 public:
  ChargeScope(ExecutionContext* ctx, std::string_view name);
  ~ChargeScope();

  ChargeScope(const ChargeScope&) = delete;
  ChargeScope& operator=(const ChargeScope&) = delete;

 private:
  ExecutionContext* ctx_;
  size_t previous_length_;
  double entered_at_;
};

}  // namespace green

#endif  // GREEN_SIM_EXECUTION_CONTEXT_H_
