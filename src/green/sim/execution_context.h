#ifndef GREEN_SIM_EXECUTION_CONTEXT_H_
#define GREEN_SIM_EXECUTION_CONTEXT_H_

#include <limits>

#include "green/common/cancel.h"
#include "green/energy/energy_meter.h"
#include "green/energy/energy_model.h"
#include "green/sim/virtual_clock.h"
#include "green/sim/work_counter.h"

namespace green {

/// The handle every instrumented kernel threads through.
///
/// An ExecutionContext glues together the virtual clock, the machine's
/// energy model, the currently metering EnergyMeter (if any), the number of
/// CPU cores allotted to the workload, and an optional deadline. Charging
/// work advances virtual time and attributes dynamic energy — this single
/// funnel is what makes the library's energy numbers a pure function of the
/// algorithms executed.
class ExecutionContext {
 public:
  ExecutionContext(VirtualClock* clock, const EnergyModel* model, int cores)
      : clock_(clock), model_(model), cores_(cores) {}

  /// Executes `work`: advances the clock, records energy and counters.
  /// Returns the virtual seconds consumed.
  double Charge(const Work& work);

  /// Convenience: CPU work with given parallel fraction.
  double ChargeCpu(double flops, double bytes,
                   double parallel_fraction = 0.9);

  /// Convenience: runs on the GPU when one exists (falls back to CPU).
  double ChargeAccelerated(double flops, double bytes);

  double Now() const { return clock_->Now(); }

  /// Deadline handling for budget-bounded search.
  void SetDeadline(double deadline_seconds) { deadline_ = deadline_seconds; }
  void ClearDeadline() {
    deadline_ = std::numeric_limits<double>::infinity();
  }
  double deadline() const { return deadline_; }
  bool DeadlineExceeded() const { return clock_->Now() >= deadline_; }
  double RemainingBudget() const { return deadline_ - clock_->Now(); }

  /// Cooperative cancellation: a watchdog holds the token and flips it
  /// when a cell overruns its wall-clock allowance; search loops poll
  /// Cancelled() at their heads and unwind with DEADLINE_EXCEEDED.
  void SetCancelToken(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }
  bool Cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }

  /// Attaches/detaches the meter that receives dynamic-energy records.
  void SetMeter(EnergyMeter* meter) { meter_ = meter; }
  EnergyMeter* meter() const { return meter_; }

  void SetCores(int cores) { cores_ = cores; }
  int cores() const { return cores_; }

  bool HasGpu() const { return model_->machine().has_gpu; }

  VirtualClock* clock() const { return clock_; }
  const EnergyModel* model() const { return model_; }
  WorkCounter* counter() { return &counter_; }

 private:
  VirtualClock* clock_;       // Not owned.
  const EnergyModel* model_;  // Not owned.
  EnergyMeter* meter_ = nullptr;
  const CancelToken* cancel_ = nullptr;  // Not owned.
  int cores_;
  double deadline_ = std::numeric_limits<double>::infinity();
  WorkCounter counter_;
};

}  // namespace green

#endif  // GREEN_SIM_EXECUTION_CONTEXT_H_
