#ifndef GREEN_SIM_WORK_COUNTER_H_
#define GREEN_SIM_WORK_COUNTER_H_

#include <cstdint>

#include "green/energy/energy_model.h"

namespace green {

/// Aggregates the abstract work charged through an ExecutionContext.
/// Useful for tests (energy must be monotone in counted work) and for
/// reporting FLOP-level statistics alongside kWh.
class WorkCounter {
 public:
  void Add(const Work& work) {
    if (work.device == Device::kGpu) {
      gpu_flops_ += work.flops;
    } else {
      cpu_flops_ += work.flops;
    }
    bytes_ += work.bytes;
    ++num_charges_;
  }

  void Reset() { *this = WorkCounter(); }

  double cpu_flops() const { return cpu_flops_; }
  double gpu_flops() const { return gpu_flops_; }
  double total_flops() const { return cpu_flops_ + gpu_flops_; }
  double bytes() const { return bytes_; }
  uint64_t num_charges() const { return num_charges_; }

 private:
  double cpu_flops_ = 0.0;
  double gpu_flops_ = 0.0;
  double bytes_ = 0.0;
  uint64_t num_charges_ = 0;
};

}  // namespace green

#endif  // GREEN_SIM_WORK_COUNTER_H_
