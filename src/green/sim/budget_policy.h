#ifndef GREEN_SIM_BUDGET_POLICY_H_
#define GREEN_SIM_BUDGET_POLICY_H_

namespace green {

/// How a system interprets its search-time budget. The paper's Table 7
/// shows that "search time" is a soft criterion for several systems and
/// attributes the overruns to concrete implementation policies; we model
/// those policies explicitly.
enum class BudgetPolicyKind {
  /// Stops before the deadline; never starts work that would exceed it
  /// (CAML, and CAML(tuned)).
  kStrict,
  /// Starts an evaluation whenever time remains and lets the last one
  /// finish (FLAML's mild overrun).
  kFinishLastEvaluation,
  /// Counts only pipeline search against the budget; post-hoc ensemble
  /// weighting runs after the deadline (AutoSklearn's large overrun,
  /// which grows with validation-set size).
  kEnsemblingNotCounted,
  /// Plans a fixed workload from a runtime estimate; generous estimates
  /// overshoot short budgets (AutoGluon's ~2x overrun at 10s).
  kEstimatedPlan,
  /// No budget at all; runs a fixed tiny workload (TabPFN).
  kNoBudget,
};

/// Helper shared by the AutoML systems for budget decisions.
class BudgetPolicy {
 public:
  explicit BudgetPolicy(BudgetPolicyKind kind) : kind_(kind) {}

  BudgetPolicyKind kind() const { return kind_; }

  /// Whether a new evaluation expected to take `estimated_seconds` may
  /// start at time `now` under deadline `deadline`.
  bool MayStartEvaluation(double now, double deadline,
                          double estimated_seconds) const;

 private:
  BudgetPolicyKind kind_;
};

}  // namespace green

#endif  // GREEN_SIM_BUDGET_POLICY_H_
