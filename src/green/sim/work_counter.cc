#include "green/sim/work_counter.h"
