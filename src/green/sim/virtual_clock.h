#ifndef GREEN_SIM_VIRTUAL_CLOCK_H_
#define GREEN_SIM_VIRTUAL_CLOCK_H_

namespace green {

/// Deterministic virtual wall clock, advanced only by accounted work.
/// All budgets, runtimes, and energy readings in this repository are
/// expressed in virtual seconds; host wall-clock never leaks into results.
class VirtualClock {
 public:
  VirtualClock() = default;

  double Now() const { return now_; }

  /// Moves time forward. Negative advances are programming errors.
  void Advance(double seconds);

  /// Moves time forward to at least absolute time `seconds`; no-op when
  /// already past. Sliced charges step through intermediate targets with
  /// this so the final slice lands bit-identically on the same
  /// `start + total_seconds` an unsliced Advance would have produced.
  void AdvanceTo(double seconds);

  /// Resets to t=0 (used between independent experiments).
  void Reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace green

#endif  // GREEN_SIM_VIRTUAL_CLOCK_H_
