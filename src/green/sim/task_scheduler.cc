#include "green/sim/task_scheduler.h"

#include <algorithm>
#include <queue>

#include "green/common/logging.h"

namespace green {

TaskGraphScheduler::Schedule TaskGraphScheduler::ScheduleBatch(
    const std::vector<double>& task_seconds, int cores) {
  GREEN_CHECK(cores >= 1);
  Schedule out;
  if (task_seconds.empty()) return out;

  std::vector<double> sorted = task_seconds;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  // Min-heap of per-core finish times.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      finish;
  for (int i = 0; i < cores; ++i) finish.push(0.0);

  for (double t : sorted) {
    GREEN_CHECK(t >= 0.0);
    const double earliest = finish.top();
    finish.pop();
    finish.push(earliest + t);
    out.busy_core_seconds += t;
  }
  while (!finish.empty()) {
    out.makespan_seconds = finish.top();
    finish.pop();
  }
  if (out.makespan_seconds > 0.0) {
    out.utilization = out.busy_core_seconds /
                      (out.makespan_seconds * static_cast<double>(cores));
  }
  return out;
}

}  // namespace green
