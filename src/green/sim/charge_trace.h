#ifndef GREEN_SIM_CHARGE_TRACE_H_
#define GREEN_SIM_CHARGE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace green {

/// Process-wide JSONL sink for scope enter/exit events, enabled by
/// setting GREEN_TRACE=<path> in the environment. Every ChargeScope
/// emits one "enter" and one "exit" line:
///
///   {"ev":"enter","path":"caml/search/pipeline/fit","t":1.25}
///   {"ev":"exit","path":"caml/search/pipeline/fit","t":1.5,"dt":0.25}
///
/// `t` is virtual seconds on the emitting context's clock and `dt` the
/// virtual duration of the scope. Lines from concurrent sweep workers
/// are interleaved but each line is written atomically, so the file is
/// always parseable; pair enter/exit per path to rebuild each tree.
/// Tracing is off (and free apart from one atomic load per event) when
/// the variable is unset.
class ChargeTrace {
 public:
  static ChargeTrace& Instance();

  ChargeTrace(const ChargeTrace&) = delete;
  ChargeTrace& operator=(const ChargeTrace&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Enter(const std::string& path, double now);
  void Exit(const std::string& path, double now, double duration);

  uint64_t events_written() const {
    return events_.load(std::memory_order_relaxed);
  }

  /// Re-reads GREEN_TRACE and reopens (or closes) the sink. Only used by
  /// tests; production code inherits the environment at first use.
  void ReopenFromEnv();

 private:
  ChargeTrace();

  void WriteLine(const char* event, const std::string& path, double now,
                 double duration, bool has_duration);

  std::mutex mu_;
  std::FILE* file_ = nullptr;  // Owned; never closed at exit (singleton).
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> events_{0};
};

}  // namespace green

#endif  // GREEN_SIM_CHARGE_TRACE_H_
