#include "green/sim/budget_policy.h"

namespace green {

bool BudgetPolicy::MayStartEvaluation(double now, double deadline,
                                      double estimated_seconds) const {
  switch (kind_) {
    case BudgetPolicyKind::kStrict:
      return now + estimated_seconds <= deadline;
    case BudgetPolicyKind::kFinishLastEvaluation:
    case BudgetPolicyKind::kEnsemblingNotCounted:
      return now < deadline;
    case BudgetPolicyKind::kEstimatedPlan:
      // Planning happened up front; individual evaluations always run.
      return true;
    case BudgetPolicyKind::kNoBudget:
      return true;
  }
  return false;
}

}  // namespace green
