#include "green/sim/virtual_clock.h"

#include "green/common/logging.h"

namespace green {

void VirtualClock::Advance(double seconds) {
  GREEN_CHECK(seconds >= 0.0);
  now_ += seconds;
}

void VirtualClock::AdvanceTo(double seconds) {
  if (seconds > now_) now_ = seconds;
}

}  // namespace green
