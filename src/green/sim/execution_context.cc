#include "green/sim/execution_context.h"

#include <cmath>
#include <cstdlib>

#include "green/sim/charge_trace.h"

namespace green {

double ExecutionContext::DefaultMaxSliceSeconds() {
  static const double kFromEnv = [] {
    const char* raw = std::getenv("GREEN_CHARGE_SLICE");
    if (raw == nullptr || raw[0] == '\0') return kDefaultMaxSliceSeconds;
    return std::atof(raw);
  }();
  return kFromEnv;
}

double ExecutionContext::Charge(const Work& work) {
  // The work is executed (priced) exactly once; slicing only staggers how
  // the clock walks to the same end time, so a completed sliced charge is
  // bit-identical to an unsliced one.
  const WorkExecution exec = model_->Execute(work, cores_);
  const double start = clock_->Now();
  const double target = start + exec.seconds;

  int slices = 1;
  if (max_slice_seconds_ > 0.0 && exec.seconds > max_slice_seconds_) {
    const double wanted = std::ceil(exec.seconds / max_slice_seconds_);
    slices = wanted < static_cast<double>(kMaxSlicesPerCharge)
                 ? static_cast<int>(wanted)
                 : kMaxSlicesPerCharge;
  }

  int completed = 0;
  for (int i = 1; i <= slices; ++i) {
    if (i > 1 &&
        (Cancelled() || (hard_deadline_ && clock_->Now() >= deadline_))) {
      charge_truncated_ = true;
      break;
    }
    if (i == slices) {
      clock_->AdvanceTo(target);
    } else {
      clock_->AdvanceTo(start + exec.seconds *
                                    (static_cast<double>(i) /
                                     static_cast<double>(slices)));
    }
    ++completed;
    ++charge_slices_;
  }

  if (completed == slices) {
    counter_.Add(work);
    if (meter_ != nullptr) meter_->Record(work, exec, scope_path_);
    if (tape_ != nullptr) {
      const size_t skip =
          tape_base_length_ == 0 ? 0 : tape_base_length_ + 1;
      tape_->entries.push_back(
          {scope_path_.size() > tape_base_length_ ? scope_path_.substr(skip)
                                                  : std::string(),
           work});
    }
    return exec.seconds;
  }

  // Truncated: meter and count only the completed fraction so energy
  // stays a pure function of the virtual time actually elapsed.
  const double fraction =
      static_cast<double>(completed) / static_cast<double>(slices);
  Work partial_work = work;
  partial_work.flops *= fraction;
  partial_work.bytes *= fraction;
  WorkExecution partial_exec = exec;
  partial_exec.seconds *= fraction;
  partial_exec.busy_core_seconds *= fraction;
  partial_exec.gpu_busy_seconds *= fraction;
  partial_exec.dynamic_joules *= fraction;
  counter_.Add(partial_work);
  if (meter_ != nullptr) meter_->Record(partial_work, partial_exec, scope_path_);
  return clock_->Now() - start;
}

double ExecutionContext::ChargeCpu(double flops, double bytes,
                                   double parallel_fraction) {
  Work w;
  w.flops = flops;
  w.bytes = bytes;
  w.device = Device::kCpu;
  w.parallel_fraction = parallel_fraction;
  return Charge(w);
}

double ExecutionContext::ChargeAccelerated(double flops, double bytes) {
  Work w;
  w.flops = flops;
  w.bytes = bytes;
  w.device = HasGpu() ? Device::kGpu : Device::kCpu;
  w.parallel_fraction = 0.98;  // Matmul-heavy work parallelizes well.
  return Charge(w);
}

size_t ChargeTape::ApproxBytes() const {
  size_t bytes = entries.size() * sizeof(ChargeTapeEntry);
  for (const ChargeTapeEntry& entry : entries) {
    bytes += entry.rel_path.capacity();
  }
  return bytes;
}

bool ExecutionContext::StartTapeRecording(ChargeTape* tape) {
  if (tape_ != nullptr) return false;
  tape_ = tape;
  tape_base_length_ = scope_path_.size();
  return true;
}

double ExecutionContext::ReplayTape(const ChargeTape& tape) {
  ChargeTape* saved = tape_;  // A replayed charge is already on its tape.
  tape_ = nullptr;
  double total = 0.0;
  for (const ChargeTapeEntry& entry : tape.entries) {
    const size_t previous_length = scope_path_.size();
    if (!entry.rel_path.empty()) {
      if (!scope_path_.empty()) scope_path_.push_back('/');
      scope_path_.append(entry.rel_path);
    }
    total += Charge(entry.work);
    scope_path_.resize(previous_length);
    if (charge_truncated_) break;
  }
  tape_ = saved;
  return total;
}

size_t ExecutionContext::PushScope(std::string_view name) {
  const size_t previous_length = scope_path_.size();
  if (!scope_path_.empty()) scope_path_.push_back('/');
  scope_path_.append(name);
  ++scope_depth_;
  ChargeTrace& trace = ChargeTrace::Instance();
  if (trace.enabled()) trace.Enter(scope_path_, clock_->Now());
  return previous_length;
}

void ExecutionContext::PopScope(size_t previous_length, double entered_at) {
  ChargeTrace& trace = ChargeTrace::Instance();
  if (trace.enabled()) {
    trace.Exit(scope_path_, clock_->Now(), clock_->Now() - entered_at);
  }
  scope_path_.resize(previous_length);
  --scope_depth_;
}

ChargeScope::ChargeScope(ExecutionContext* ctx, std::string_view name)
    : ctx_(ctx), entered_at_(ctx->Now()) {
  previous_length_ = ctx_->PushScope(name);
}

ChargeScope::~ChargeScope() { ctx_->PopScope(previous_length_, entered_at_); }

}  // namespace green
