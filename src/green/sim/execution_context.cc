#include "green/sim/execution_context.h"

namespace green {

double ExecutionContext::Charge(const Work& work) {
  const WorkExecution exec = model_->Execute(work, cores_);
  clock_->Advance(exec.seconds);
  counter_.Add(work);
  if (meter_ != nullptr) meter_->Record(work, exec);
  return exec.seconds;
}

double ExecutionContext::ChargeCpu(double flops, double bytes,
                                   double parallel_fraction) {
  Work w;
  w.flops = flops;
  w.bytes = bytes;
  w.device = Device::kCpu;
  w.parallel_fraction = parallel_fraction;
  return Charge(w);
}

double ExecutionContext::ChargeAccelerated(double flops, double bytes) {
  Work w;
  w.flops = flops;
  w.bytes = bytes;
  w.device = HasGpu() ? Device::kGpu : Device::kCpu;
  w.parallel_fraction = 0.98;  // Matmul-heavy work parallelizes well.
  return Charge(w);
}

}  // namespace green
