#ifndef GREEN_METAOPT_TUNED_CONFIG_STORE_H_
#define GREEN_METAOPT_TUNED_CONFIG_STORE_H_

#include <map>
#include <string>

#include "green/automl/caml_system.h"

namespace green {

/// Stores tuned CAML parameters per search-time budget — the paper's
/// point that tuned AutoML parameters are *search-time dependent*
/// (Table 5: a small space wins at 30 s, a wider one at 5 min).
class TunedConfigStore {
 public:
  void Put(double budget_seconds, const CamlParams& params);

  /// Parameters tuned for the closest stored budget; NotFound if empty.
  Result<CamlParams> Get(double budget_seconds) const;

  size_t size() const { return entries_.size(); }

  /// Reference tuned configurations mirroring the paper's Table 5
  /// (shipped so benchmarks can exercise CAML(tuned) without re-running
  /// the multi-hour tuning campaign; `AutoMlTuner` regenerates them).
  static TunedConfigStore PaperDefaults();

  /// Human-readable rendering of the stored parameters (Table 5).
  std::string Render() const;

 private:
  std::map<double, CamlParams> entries_;
};

}  // namespace green

#endif  // GREEN_METAOPT_TUNED_CONFIG_STORE_H_
