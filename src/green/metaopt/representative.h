#ifndef GREEN_METAOPT_REPRESENTATIVE_H_
#define GREEN_METAOPT_REPRESENTATIVE_H_

#include <vector>

#include "green/common/status.h"
#include "green/table/dataset.h"

namespace green {

/// §2.5 / Fig. 2 of the paper: cluster the corpus's meta-features with
/// K-Means and keep, for each centroid, the closest dataset — the top-k
/// most representative datasets the AutoML-parameter tuner evaluates on
/// instead of the full corpus.
Result<std::vector<size_t>> SelectRepresentativeDatasets(
    const std::vector<Dataset>& corpus, int top_k, uint64_t seed);

}  // namespace green

#endif  // GREEN_METAOPT_REPRESENTATIVE_H_
