#include "green/metaopt/representative.h"

#include "green/search/kmeans.h"
#include "green/table/metafeatures.h"

namespace green {

Result<std::vector<size_t>> SelectRepresentativeDatasets(
    const std::vector<Dataset>& corpus, int top_k, uint64_t seed) {
  if (corpus.empty()) {
    return Status::InvalidArgument("empty corpus");
  }
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  std::vector<std::vector<double>> points;
  points.reserve(corpus.size());
  for (const Dataset& d : corpus) {
    points.push_back(ComputeMetaFeatures(d).ToVector());
  }
  KMeansOptions options;
  options.k = top_k;
  options.seed = seed;
  GREEN_ASSIGN_OR_RETURN(KMeansResult clustering, KMeans(points, options));
  return ClosestPointPerCentroid(points, clustering);
}

}  // namespace green
