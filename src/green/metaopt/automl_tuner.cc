#include "green/metaopt/automl_tuner.h"

#include <algorithm>
#include <cmath>

#include "green/automl/automl_system.h"
#include "green/common/logging.h"
#include "green/common/mathutil.h"
#include "green/common/stringutil.h"
#include "green/metaopt/representative.h"
#include "green/ml/metrics.h"
#include "green/search/bayes_opt.h"
#include "green/search/median_pruner.h"
#include "green/table/split.h"

namespace green {

namespace {

/// Trial layout: 8 model-inclusion switches, then the six AutoML system
/// parameters §3.7 lists (hold-out fraction, evaluation fraction,
/// sampling, refit, random validation splitting, incremental training).
constexpr size_t kNumModelSwitches = 8;

const std::vector<std::string>& SwitchableModels() {
  static const std::vector<std::string>* kModels =
      new std::vector<std::string>{
          "decision_tree",  "random_forest",       "extra_trees",
          "gradient_boosting", "logistic_regression", "knn",
          "naive_bayes",    "mlp"};
  return *kModels;
}

}  // namespace

size_t AutoMlTuner::TrialDimension() { return kNumModelSwitches + 6; }

CamlParams AutoMlTuner::DecodeTrial(const std::vector<double>& unit) {
  GREEN_CHECK(unit.size() == TrialDimension());
  CamlParams params;
  params.models.clear();
  for (size_t m = 0; m < kNumModelSwitches; ++m) {
    if (unit[m] > 0.5) params.models.push_back(SwitchableModels()[m]);
  }
  if (params.models.empty()) {
    // Decision trees "can be both simple and complex" — the safe core.
    params.models.push_back("decision_tree");
  }
  size_t i = kNumModelSwitches;
  params.holdout_fraction = 0.15 + 0.35 * unit[i++];
  params.evaluation_fraction =
      std::exp(std::log(0.03) +
               (std::log(0.35) - std::log(0.03)) * unit[i++]);
  params.sampling_fraction = 0.15 + 0.85 * unit[i++];
  params.refit = unit[i++] > 0.5;
  params.random_validation_split = unit[i++] > 0.5;
  params.incremental_training = unit[i++] > 0.5;
  return params;
}

Result<AutoMlTunerResult> AutoMlTuner::Tune(
    const std::vector<Dataset>& corpus, ExecutionContext* ctx) {
  if (corpus.empty()) return Status::InvalidArgument("empty corpus");

  EnergyMeter meter(ctx->model());
  ScopedMeter scope(ctx, &meter);
  ChargeScope tuner_scope(ctx, "automl_tuner");
  const double start = ctx->Now();

  AutoMlTunerResult result;
  GREEN_ASSIGN_OR_RETURN(
      result.representative_indices,
      SelectRepresentativeDatasets(corpus, options_.top_k_datasets,
                                   options_.seed));
  // Clustering cost: meta-features + Lloyd iterations.
  ctx->ChargeCpu(static_cast<double>(corpus.size()) * 400.0, 0.0);

  // Pre-split each representative dataset once.
  struct TuningTask {
    Dataset train;
    Dataset test;
  };
  std::vector<TuningTask> tasks;
  Rng rng(HashCombine(options_.seed, 0x7u));
  for (size_t idx : result.representative_indices) {
    TrainTestIndices split = StratifiedSplit(corpus[idx], 0.66, &rng);
    TrainTestData data = Materialize(corpus[idx], split);
    tasks.push_back(TuningTask{std::move(data.train),
                               std::move(data.test)});
  }

  AutoMlOptions run_options;
  run_options.search_budget_seconds = options_.search_time_seconds;
  run_options.cores = ctx->cores();

  // Accuracy of one CamlParams setting on one task, averaged over the
  // configured repetitions (AutoML is nondeterministic; the paper uses 2).
  auto evaluate_on_task =
      [&](const CamlParams& params, const TuningTask& task,
          uint64_t seed) -> Result<double> {
    double sum = 0.0;
    for (int rep = 0; rep < options_.repetitions; ++rep) {
      CamlSystem system(params, "caml_trial");
      AutoMlOptions local = run_options;
      local.seed = HashCombine(seed, rep + 1);
      GREEN_ASSIGN_OR_RETURN(AutoMlRunResult run,
                             system.Fit(task.train, local, ctx));
      GREEN_ASSIGN_OR_RETURN(
          std::vector<int> preds,
          run.artifact.Predict(task.test, ctx));
      sum += BalancedAccuracy(task.test.labels(), preds,
                              task.test.num_classes());
    }
    return sum / static_cast<double>(options_.repetitions);
  };

  // Baseline: the default parameters ("full search space and 0.33
  // hold-out validation").
  const CamlParams default_params;
  std::vector<double> baseline(tasks.size(), 0.0);
  for (size_t t = 0; t < tasks.size(); ++t) {
    GREEN_ASSIGN_OR_RETURN(
        baseline[t],
        evaluate_on_task(default_params, tasks[t],
                         HashCombine(options_.seed, 1000 + t)));
  }

  // BO over the trial space with median pruning across dataset steps.
  ParamSpace space;
  for (size_t i = 0; i < TrialDimension(); ++i) {
    space.Add(ParamSpec::Double(StrFormat("u%zu", i), 0.0, 1.0));
  }
  BayesOpt::Options bo_options;
  bo_options.num_initial_random =
      std::max(4, options_.bo_iterations / 10);
  bo_options.seed = HashCombine(options_.seed, 0x709);
  BayesOpt optimizer(&space, bo_options);
  MedianPruner pruner;

  for (int trial = 0; trial < options_.bo_iterations; ++trial) {
    const ParamPoint point = optimizer.Ask();
    const CamlParams params = DecodeTrial(point.unit);

    double objective = 0.0;
    double accuracy_sum = 0.0;
    bool pruned = false;
    size_t completed = 0;
    for (size_t t = 0; t < tasks.size(); ++t) {
      auto acc = evaluate_on_task(
          params, tasks[t],
          HashCombine(options_.seed, 2000 + trial * 131 + t));
      if (!acc.ok()) {
        pruned = true;
        break;
      }
      accuracy_sum += acc.value();
      const double denom = std::max({acc.value(), baseline[t], 1e-9});
      objective += (acc.value() - baseline[t]) / denom;
      ++completed;
      if (pruner.ShouldPrune(static_cast<int>(t), objective)) {
        pruned = true;
        break;
      }
      pruner.ReportIntermediate(static_cast<int>(t), objective);
    }
    ++result.trials_run;
    if (pruned) {
      ++result.trials_pruned;
      // Pessimistic extrapolation of the partial objective.
      const double partial =
          completed > 0 ? objective / static_cast<double>(completed) *
                              static_cast<double>(tasks.size())
                        : -1.0;
      const double work = optimizer.Tell(point, partial - 0.25);
      ctx->ChargeCpu(work, 0.0, 0.2);
      continue;
    }
    const double work = optimizer.Tell(point, objective);
    ctx->ChargeCpu(work, 0.0, 0.2);
    if (objective > result.best_objective) {
      result.best_objective = objective;
      result.best_params = params;
      result.best_mean_accuracy =
          accuracy_sum / static_cast<double>(tasks.size());
    }
  }

  if (result.best_objective <= -1e300) {
    result.best_params = default_params;
    result.best_objective = 0.0;
  }
  result.development = scope.Stop();
  result.development_seconds = ctx->Now() - start;
  return result;
}

}  // namespace green
