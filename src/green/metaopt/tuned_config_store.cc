#include "green/metaopt/tuned_config_store.h"

#include <cmath>
#include <limits>

#include "green/common/stringutil.h"

namespace green {

void TunedConfigStore::Put(double budget_seconds,
                           const CamlParams& params) {
  entries_[budget_seconds] = params;
}

Result<CamlParams> TunedConfigStore::Get(double budget_seconds) const {
  if (entries_.empty()) return Status::NotFound("store is empty");
  double best_gap = std::numeric_limits<double>::infinity();
  const CamlParams* best = nullptr;
  for (const auto& [budget, params] : entries_) {
    const double gap = std::fabs(std::log(budget_seconds + 1.0) -
                                 std::log(budget + 1.0));
    if (gap < best_gap) {
      best_gap = gap;
      best = &params;
    }
  }
  return *best;
}

TunedConfigStore TunedConfigStore::PaperDefaults() {
  TunedConfigStore store;
  // Table 5's qualitative structure, with values verified against THIS
  // simulation scale (the tuner's output depends on the hardware/scale it
  // runs on — the paper makes the same point): the admitted search space
  // grows with the budget; decision trees appear at every budget ("both
  // simple and complex"); the most expensive family (MLP) only joins at
  // 5 min; up-front sampling, incremental training and random validation
  // splitting are always selected; refit is chosen at intermediate
  // budgets but not at 5 min.
  {
    CamlParams p;  // 10 s
    p.models = {"decision_tree", "extra_trees", "naive_bayes",
                "logistic_regression"};
    p.holdout_fraction = 0.2;
    p.evaluation_fraction = 0.25;
    p.sampling_fraction = 0.9;
    p.refit = false;
    p.random_validation_split = true;
    p.incremental_training = true;
    p.num_initial_random = 4;
    store.Put(10.0, p);
  }
  {
    CamlParams p;  // 30 s
    p.models = {"decision_tree", "extra_trees", "naive_bayes",
                "logistic_regression", "random_forest",
                "gradient_boosting"};
    p.holdout_fraction = 0.2;
    p.evaluation_fraction = 0.2;
    p.sampling_fraction = 0.95;
    p.refit = true;
    p.random_validation_split = true;
    p.incremental_training = true;
    p.num_initial_random = 6;
    store.Put(30.0, p);
  }
  {
    CamlParams p;  // 1 min
    p.models = {"decision_tree", "extra_trees", "naive_bayes",
                "logistic_regression", "random_forest",
                "gradient_boosting"};
    p.holdout_fraction = 0.22;
    p.evaluation_fraction = 0.2;
    p.sampling_fraction = 0.95;
    p.refit = true;
    p.random_validation_split = true;
    p.incremental_training = true;
    p.num_initial_random = 6;
    store.Put(60.0, p);
  }
  {
    CamlParams p;  // 5 min: the widest space (MLP joins only here).
    // kNN stays excluded from every tuned space: its O(n*d) per-row
    // scoring conflicts with the inference-efficiency objective the
    // tuned system is deployed for (Observation O1/O3).
    p.models = {"decision_tree", "extra_trees", "naive_bayes",
                "logistic_regression", "random_forest",
                "gradient_boosting", "mlp"};
    p.holdout_fraction = 0.25;
    p.evaluation_fraction = 0.1;
    p.sampling_fraction = 0.95;
    p.refit = false;
    p.random_validation_split = true;
    p.incremental_training = true;
    store.Put(300.0, p);
  }
  return store;
}

std::string TunedConfigStore::Render() const {
  std::string out;
  for (const auto& [budget, p] : entries_) {
    out += StrFormat("budget=%gs\n", budget);
    out += "  search space: " + Join(p.models, ", ") + "\n";
    out += StrFormat(
        "  holdout=%.2f eval_fraction=%.2f sampling=%.2f refit=%s "
        "random_val_split=%s incremental=%s\n",
        p.holdout_fraction, p.evaluation_fraction, p.sampling_fraction,
        p.refit ? "yes" : "no", p.random_validation_split ? "yes" : "no",
        p.incremental_training ? "yes" : "no");
  }
  return out;
}

}  // namespace green
