#ifndef GREEN_METAOPT_AUTOML_TUNER_H_
#define GREEN_METAOPT_AUTOML_TUNER_H_

#include <vector>

#include "green/automl/caml_system.h"
#include "green/energy/energy_meter.h"
#include "green/table/dataset.h"

namespace green {

/// §2.5's development-stage optimizer: Bayesian optimization over CAML's
/// AutoML-system parameters, evaluated on the top-k representative
/// datasets with median pruning, two repetitions per (trial, dataset),
/// and the paper's relative-improvement objective
///   sum_d (Acc(w,d) - Acc(w0,d)) / max(Acc(w,d), Acc(w0,d)).
/// The whole procedure's energy is the "development stage" cost of
/// Fig. 7; run it under a development-stage meter.
struct AutoMlTunerOptions {
  double search_time_seconds = 10.0;  ///< Budget the tuned CAML targets.
  int bo_iterations = 300;
  int top_k_datasets = 20;
  int repetitions = 2;
  uint64_t seed = 1;
};

struct AutoMlTunerResult {
  CamlParams best_params;
  double best_objective = -1e300;
  /// Mean balanced accuracy of the best trial across the tuning datasets.
  double best_mean_accuracy = 0.0;
  int trials_run = 0;
  int trials_pruned = 0;
  /// Development-stage energy consumed by the tuning run.
  EnergyReading development;
  double development_seconds = 0.0;
  std::vector<size_t> representative_indices;
};

class AutoMlTuner {
 public:
  explicit AutoMlTuner(const AutoMlTunerOptions& options)
      : options_(options) {}

  /// Tunes on `corpus` (binary classification datasets). All work is
  /// charged through `ctx`.
  Result<AutoMlTunerResult> Tune(const std::vector<Dataset>& corpus,
                                 ExecutionContext* ctx);

  /// The tuner's parameter space decoded to CamlParams (exposed for
  /// tests and for Table 5 introspection).
  static CamlParams DecodeTrial(const std::vector<double>& unit);
  static size_t TrialDimension();

 private:
  AutoMlTunerOptions options_;
};

}  // namespace green

#endif  // GREEN_METAOPT_AUTOML_TUNER_H_
