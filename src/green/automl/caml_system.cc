#include "green/automl/caml_system.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "green/common/logging.h"
#include "green/search/bayes_opt.h"
#include "green/table/split.h"

namespace green {

Result<AutoMlRunResult> CamlSystem::Fit(const Dataset& train,
                                        const AutoMlOptions& options,
                                        ExecutionContext* ctx) {
  if (train.num_rows() < 4) {
    return Status::InvalidArgument("caml: too few rows");
  }
  if (ctx->Cancelled()) {
    return Status::DeadlineExceeded("caml: cancelled before start");
  }
  EnergyMeter meter(ctx->model());
  ScopedMeter scope(ctx, &meter);
  ChargeScope sys_scope(ctx, Name());
  const double start = ctx->Now();
  const double deadline = start + options.search_budget_seconds;
  ctx->SetDeadline(deadline);
  const BudgetPolicy policy(budget_policy());

  Rng rng(options.seed);

  // Optional up-front sampling (the search-time-specific sampling step
  // the paper's tuned CAML always selects). The no-subsample path works
  // on the caller's dataset directly — no copy, not even of labels.
  Dataset sampled;
  const Dataset& working =
      params_.sampling_fraction < 1.0 ? sampled : train;
  if (params_.sampling_fraction < 1.0) {
    ChargeScope phase(ctx, "sampling");
    const size_t n = std::max<size_t>(
        static_cast<size_t>(train.num_classes()) * 2,
        static_cast<size_t>(params_.sampling_fraction *
                            static_cast<double>(train.num_rows())));
    sampled = train.Subset(SampleRows(train, n, &rng));
    ctx->ChargeCpu(static_cast<double>(working.num_rows()),
                   working.FeatureBytes());
  }

  // Hold-out split (re-drawn per iteration under random_validation_split).
  TrainTestIndices split =
      SplitForTask(working, 1.0 - params_.holdout_fraction, &rng);
  TrainTestData holdout = Materialize(working, split);

  PipelineSpaceOptions space_options;
  space_options.models = FilterModelsForTask(params_.models, train.task());
  space_options.include_data_preprocessors = true;
  space_options.include_feature_preprocessors = false;  // Table 1: CAML.
  PipelineSearchSpace space(space_options);

  BayesOpt::Options bo_options;
  bo_options.num_initial_random = params_.num_initial_random;
  bo_options.seed = HashCombine(options.seed, 0xca31);
  BayesOpt optimizer(&space.space(), bo_options);

  AutoMlRunResult result;
  result.configured_budget_seconds = options.search_budget_seconds;

  std::shared_ptr<Pipeline> best_pipeline;
  double best_score = -std::numeric_limits<double>::infinity();
  PipelineConfig best_config;

  const double eval_time_cap =
      params_.evaluation_fraction * options.search_budget_seconds;

  int iteration = 0;
  int stall = 0;  // Consecutive evaluations without improvement.
  {
  ChargeScope search_scope(ctx, "search");
  while (!ctx->DeadlineExceeded()) {
    if (ctx->Cancelled()) {
      ctx->ClearDeadline();
      return Status::DeadlineExceeded("caml: cancelled mid-search");
    }
    if (params_.early_stopping_patience > 0 &&
        stall >= params_.early_stopping_patience) {
      break;  // §3.8: stop once the search stops improving.
    }
    const ParamPoint point = optimizer.Ask();
    const PipelineConfig config =
        space.ToConfig(point, HashCombine(options.seed, iteration + 1));
    ++iteration;

    // Evaluation-fraction pruning: skip configurations whose estimated
    // training time exceeds the per-evaluation cap (strict policy also
    // refuses anything that would cross the deadline).
    // Full-evaluation estimate (training + validation scoring) with a
    // safety margin: CAML enforces its budget strictly, so it would
    // rather skip a borderline evaluation than overrun (Table 7).
    const double estimated =
        1.4 * EstimateEvaluationSeconds(
                  config, holdout.train.num_rows(),
                  holdout.test.num_rows(), holdout.train.num_features(),
                  holdout.train.num_classes(), *ctx);
    if (estimated > eval_time_cap) {
      // Discourage this region. Proposal + surrogate bookkeeping is not
      // free: charging it keeps the virtual clock moving even when every
      // candidate is too expensive for the evaluation cap.
      const double work = optimizer.Tell(point, 0.0);
      ctx->ChargeCpu(std::max(work, 500.0), 0.0,
                     /*parallel_fraction=*/0.2);
      continue;
    }
    if (!policy.MayStartEvaluation(ctx->Now(), deadline, estimated)) {
      break;
    }

    if (params_.random_validation_split) {
      split = SplitForTask(working, 1.0 - params_.holdout_fraction, &rng);
      holdout = Materialize(working, split);
      ctx->ChargeCpu(static_cast<double>(working.num_rows()),
                     working.FeatureBytes());
    }

    Result<EvaluatedPipeline> evaluated = Status::Internal("unset");
    if (params_.incremental_training &&
        holdout.train.num_rows() >
            static_cast<size_t>(40 * holdout.train.num_classes())) {
      // Incremental training: fit on growing per-class samples; abandon
      // early if the small-sample score is hopeless vs the incumbent.
      const int start_per_class = 10;
      int per_class = start_per_class;
      Result<EvaluatedPipeline> last = Status::Internal("unset");
      while (true) {
        Dataset stage = holdout.train.Subset(
            SamplePerClass(holdout.train, per_class, &rng));
        last = TrainAndScore(config, stage, holdout.test, ctx);
        if (!last.ok()) break;
        const bool full = stage.num_rows() == holdout.train.num_rows();
        if (full) break;
        if (last.value().val_score < 0.5 * best_score &&
            best_score > 0.0) {
          break;  // Abandoned at low fidelity.
        }
        if (ctx->Now() + estimated > deadline) break;
        per_class *= 4;
        if (static_cast<size_t>(per_class) *
                static_cast<size_t>(holdout.train.num_classes()) >=
            holdout.train.num_rows()) {
          // Full-fidelity pass only if it still fits the strict budget.
          if (ctx->Now() + estimated <= deadline) {
            last =
                TrainAndScore(config, holdout.train, holdout.test, ctx);
          }
          break;
        }
      }
      evaluated = std::move(last);
    } else {
      evaluated = TrainAndScore(config, holdout.train, holdout.test, ctx);
    }

    if (!evaluated.ok()) {
      const double work = optimizer.Tell(point, 0.0);
      ctx->ChargeCpu(std::max(work, 500.0), 0.0,
                     /*parallel_fraction=*/0.2);
      continue;
    }
    ++result.pipelines_evaluated;

    double score = evaluated.value().val_score;
    // Inference-time constraint as a hard filter on trained candidates.
    if (std::isfinite(options.max_inference_seconds_per_row)) {
      const double per_row = EstimateInferenceSecondsPerRow(
          *evaluated.value().pipeline, train.num_features(), *ctx);
      if (per_row > options.max_inference_seconds_per_row) {
        optimizer.Tell(point, 0.0);
        continue;
      }
    }

    // CO2-aware objective: penalize serving cost on a log scale so the
    // search prefers equally-accurate-but-cheaper pipelines.
    if (params_.energy_weight > 0.0) {
      const double flops_per_row =
          evaluated.value().pipeline->InferenceFlopsPerRow(
              train.num_features());
      score -= params_.energy_weight *
               std::log10(1.0 + flops_per_row) / 6.0;
    }

    const double surrogate_work = optimizer.Tell(point, score);
    ctx->ChargeCpu(surrogate_work, 0.0, /*parallel_fraction=*/0.2);

    if (score > best_score) {
      best_score = score;
      best_pipeline = evaluated.value().pipeline;
      best_config = config;
      stall = 0;
    } else {
      ++stall;
    }
  }
  }

  if (best_pipeline == nullptr) {
    ChargeScope phase(ctx, "fallback");
    // Any-time guarantee: fall back to the cheapest model if nothing
    // finished (can happen at extreme budgets).
    PipelineConfig fallback;
    fallback.model = train.task() == TaskType::kRegression
                         ? "decision_tree"
                         : "naive_bayes";
    fallback.seed = options.seed;
    auto evaluated =
        TrainAndScore(fallback, holdout.train, holdout.test, ctx);
    if (!evaluated.ok()) return evaluated.status();
    best_pipeline = evaluated.value().pipeline;
    best_score = evaluated.value().val_score;
    best_config = fallback;
    ++result.pipelines_evaluated;
  }

  // Optional refit on the merged training + validation data (a tuned
  // AutoML parameter; affects inference energy through model size).
  if (params_.refit &&
      policy.MayStartEvaluation(
          ctx->Now(), deadline,
          EstimateTrainSeconds(best_config, working.num_rows(),
                               working.num_features(),
                               working.num_classes(), *ctx))) {
    ChargeScope phase(ctx, "refit");
    GREEN_ASSIGN_OR_RETURN(Pipeline refitted, BuildPipeline(best_config));
    Status st = refitted.Fit(working, ctx);
    if (st.ok()) {
      best_pipeline = std::make_shared<Pipeline>(std::move(refitted));
    }
  }

  ctx->ClearDeadline();
  result.artifact = FittedArtifact::Single(best_pipeline);
  result.best_validation_score = best_score;
  result.execution = scope.Stop();
  result.actual_seconds = ctx->Now() - start;
  return result;
}

}  // namespace green
