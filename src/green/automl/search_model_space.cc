#include "green/automl/search_model_space.h"

#include <cmath>

#include "green/common/logging.h"

namespace green {

PipelineSearchSpace::PipelineSearchSpace(
    const PipelineSpaceOptions& options)
    : options_(options) {
  GREEN_CHECK(!options_.models.empty());
  space_.Add(ParamSpec::Categorical("model", options_.models));
  // Union of model hyperparameters; decode applies only the relevant ones
  // (the standard flattened encoding of a conditional space).
  space_.Add(ParamSpec::Int("max_depth", 2, 16, /*log_scale=*/true));
  space_.Add(ParamSpec::Int("num_trees", 4, 64, /*log_scale=*/true));
  space_.Add(ParamSpec::Int("min_samples_leaf", 1, 16, /*log_scale=*/true));
  space_.Add(
      ParamSpec::Double("learning_rate", 0.02, 0.5, /*log_scale=*/true));
  space_.Add(ParamSpec::Int("num_rounds", 5, 80, /*log_scale=*/true));
  space_.Add(ParamSpec::Int("epochs", 5, 60, /*log_scale=*/true));
  space_.Add(ParamSpec::Int("hidden_units", 8, 64, /*log_scale=*/true));
  space_.Add(ParamSpec::Int("knn_k", 1, 25, /*log_scale=*/true));
  space_.Add(ParamSpec::Double("max_features_fraction", 0.1, 1.0));
  space_.Add(ParamSpec::Double("subsample", 0.5, 1.0));
  if (options_.include_data_preprocessors) {
    space_.Add(ParamSpec::Categorical("scaler",
                                      {"none", "standard", "minmax"}));
  }
  if (options_.include_feature_preprocessors) {
    space_.Add(ParamSpec::Categorical(
        "feature_prep", {"none", "variance", "select_k", "pca",
                         "binning"}));
    space_.Add(ParamSpec::Double("select_fraction", 0.2, 1.0));
  }
}

PipelineConfig PipelineSearchSpace::ToConfig(const ParamPoint& point,
                                             uint64_t seed) const {
  PipelineConfig config;
  config.seed = seed;
  config.model = point.choices.at("model");

  auto value = [&](const char* name) { return point.values.at(name); };

  if (config.model == "decision_tree") {
    config.params["max_depth"] = value("max_depth");
    config.params["min_samples_leaf"] = value("min_samples_leaf");
    config.params["max_features_fraction"] =
        value("max_features_fraction");
  } else if (config.model == "random_forest" ||
             config.model == "extra_trees") {
    config.params["num_trees"] = value("num_trees");
    config.params["max_depth"] = value("max_depth");
    config.params["min_samples_leaf"] = value("min_samples_leaf");
    config.params["max_features_fraction"] =
        value("max_features_fraction");
  } else if (config.model == "adaboost") {
    config.params["num_rounds"] = value("num_rounds");
    config.params["max_depth"] =
        std::min(3.0, std::max(1.0, value("max_depth") / 4.0));
    config.params["learning_rate"] = value("learning_rate") * 2.0;
  } else if (config.model == "gradient_boosting") {
    config.params["num_rounds"] = value("num_rounds");
    config.params["max_depth"] =
        std::min(4.0, std::max(2.0, value("max_depth") / 3.0));
    config.params["learning_rate"] = value("learning_rate");
    config.params["subsample"] = value("subsample");
  } else if (config.model == "logistic_regression") {
    config.params["epochs"] = value("epochs");
    config.params["learning_rate"] = value("learning_rate");
  } else if (config.model == "knn") {
    config.params["k"] = value("knn_k");
  } else if (config.model == "naive_bayes") {
    // No tunables beyond smoothing; keep the default.
  } else if (config.model == "mlp") {
    config.params["hidden_units"] = value("hidden_units");
    config.params["epochs"] = value("epochs");
    config.params["learning_rate"] =
        std::min(0.2, value("learning_rate"));
  }

  if (options_.include_data_preprocessors) {
    config.scaler = point.choices.at("scaler");
  } else {
    config.scaler = "standard";
  }
  config.impute = true;
  config.one_hot = true;

  if (options_.include_feature_preprocessors) {
    const std::string& prep = point.choices.at("feature_prep");
    if (prep == "variance") {
      config.variance_threshold = 1e-4;
    } else if (prep == "pca") {
      config.pca_components = std::max(
          2, static_cast<int>(std::round(value("select_fraction") * 16)));
    } else if (prep == "binning") {
      config.quantile_binning = true;
    } else if (prep == "select_k") {
      // Fraction of (post-one-hot) columns; resolved against the input
      // width at fit time via a generous constant basis.
      config.select_k_best = std::max(
          1, static_cast<int>(std::round(value("select_fraction") * 32)));
    }
  }
  return config;
}

PipelineConfig PipelineSearchSpace::SampleConfig(Rng* rng,
                                                 uint64_t seed) const {
  return ToConfig(space_.Sample(rng), seed);
}

}  // namespace green
