#ifndef GREEN_AUTOML_SEARCH_MODEL_SPACE_H_
#define GREEN_AUTOML_SEARCH_MODEL_SPACE_H_

#include <string>
#include <vector>

#include "green/ml/model_registry.h"
#include "green/search/param_space.h"

namespace green {

/// Declarative description of a pipeline search space, realizing the
/// paper's Table 1 differences:
///   * ASKL searches data + feature preprocessors + models,
///   * CAML searches data preprocessors + models (no feature prep.),
///   * FLAML searches models only,
///   * TPOT searches data/feature preprocessors + models.
struct PipelineSpaceOptions {
  std::vector<std::string> models;      ///< Allowed model families.
  bool include_data_preprocessors = true;   ///< Scaler choice.
  bool include_feature_preprocessors = false;  ///< Selection / variance.
  uint64_t seed_base = 1;
};

/// Wraps a ParamSpace over pipeline configurations with decode logic.
class PipelineSearchSpace {
 public:
  explicit PipelineSearchSpace(const PipelineSpaceOptions& options);

  const ParamSpace& space() const { return space_; }
  const PipelineSpaceOptions& options() const { return options_; }

  /// Decodes a search point into a buildable pipeline config. `seed`
  /// individualizes stochastic models per evaluation.
  PipelineConfig ToConfig(const ParamPoint& point, uint64_t seed) const;

  /// Uniformly samples a configuration.
  PipelineConfig SampleConfig(Rng* rng, uint64_t seed) const;

 private:
  PipelineSpaceOptions options_;
  ParamSpace space_;
};

}  // namespace green

#endif  // GREEN_AUTOML_SEARCH_MODEL_SPACE_H_
