#include "green/automl/askl_meta_cache.h"

namespace green {

AsklMetaStoreCache& AsklMetaStoreCache::Instance() {
  static AsklMetaStoreCache* kInstance = new AsklMetaStoreCache();
  return *kInstance;
}

Result<AsklMetaStoreCache::Entry> AsklMetaStoreCache::GetOrBuild(
    const std::string& key,
    const std::function<Result<Entry>()>& builder) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  GREEN_ASSIGN_OR_RETURN(Entry entry, builder());
  entries_[key] = entry;
  return entry;
}

size_t AsklMetaStoreCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t AsklMetaStoreCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void AsklMetaStoreCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace green
