#ifndef GREEN_AUTOML_TABPFN_SYSTEM_H_
#define GREEN_AUTOML_TABPFN_SYSTEM_H_

#include <string>

#include "green/automl/automl_system.h"
#include "green/ml/models/attention_few_shot.h"

namespace green {

/// TabPFN: zero-search few-shot AutoML. Execution is a fixed, tiny cost
/// (weight loading + context memorization); ALL interesting energy is
/// spent at inference, where the training context is forward-passed per
/// prediction. Has no search-time parameter at all — the single dot in
/// the paper's Fig. 3.
class TabPfnSystem : public AutoMlSystem {
 public:
  TabPfnSystem() = default;
  explicit TabPfnSystem(const AttentionFewShotParams& model_params)
      : model_params_(model_params) {}

  std::string Name() const override { return "tabpfn"; }
  BudgetPolicyKind budget_policy() const override {
    return BudgetPolicyKind::kNoBudget;
  }
  /// Classification only: the pretrained prior has no regression head.
  bool SupportsTask(TaskType task) const override {
    return IsClassification(task);
  }

  Result<AutoMlRunResult> Fit(const Dataset& train,
                              const AutoMlOptions& options,
                              ExecutionContext* ctx) override;

 private:
  AttentionFewShotParams model_params_;
};

}  // namespace green

#endif  // GREEN_AUTOML_TABPFN_SYSTEM_H_
