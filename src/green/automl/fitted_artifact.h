#ifndef GREEN_AUTOML_FITTED_ARTIFACT_H_
#define GREEN_AUTOML_FITTED_ARTIFACT_H_

#include <memory>
#include <string>
#include <vector>

#include "green/ml/pipeline.h"

namespace green {

/// The deployable output of an AutoML run. Three shapes cover all the
/// systems in the paper:
///   * single  — one pipeline (CAML, FLAML, TPOT, TabPFN);
///   * weighted — Caruana-weighted probability blend (AutoSklearn);
///   * stacked — bagged base layer whose out-of-fold probabilities feed a
///     meta layer, itself Caruana-weighted (AutoGluon).
/// Inference energy follows directly from shape: every member pipeline
/// charges its own work, which is what produces the paper's
/// order-of-magnitude gap between ensembles and single models (O1).
class FittedArtifact {
 public:
  /// One logical ensemble member: `folds` holds either a single pipeline
  /// (plain member / refit member) or the k bagged fold-pipelines whose
  /// probabilities are averaged at inference (AutoGluon without refit).
  struct Member {
    std::vector<std::shared_ptr<const Pipeline>> folds;
    double weight = 1.0;
  };

  FittedArtifact() = default;

  static FittedArtifact Single(std::shared_ptr<const Pipeline> pipeline);
  static FittedArtifact Weighted(std::vector<Member> members);
  /// `base` members produce class probabilities that are appended to the
  /// raw features before `meta` members score the instance.
  static FittedArtifact Stacked(std::vector<Member> base,
                                std::vector<Member> meta);

  bool empty() const { return base_.empty(); }
  bool stacked() const { return !meta_.empty(); }

  /// Task of the underlying model(s), read off the first base pipeline
  /// (all members of one artifact share a task). kBinary when empty.
  TaskType task() const;

  /// Total pipelines that execute per prediction (all folds, all layers).
  size_t NumPipelines() const;

  /// Both predict entry points poll the context between member
  /// pipelines and unwind with DEADLINE_EXCEEDED when a charge was
  /// truncated mid-predict (watchdog cancellation, or a serving-layer
  /// hard deadline) — the inference-side mirror of the mid-fit unwind.
  Result<ProbaMatrix> PredictProba(const Dataset& data,
                                   ExecutionContext* ctx) const;
  Result<std::vector<int>> Predict(const Dataset& data,
                                   ExecutionContext* ctx) const;

  /// The one-pipeline degradation of this artifact: the highest-weight
  /// base member's first fold as a Single artifact. For a stack this
  /// drops the meta layer entirely. This is the serving ladder's middle
  /// tier — the cheaper fallback an overloaded server degrades to
  /// (inference cost shrinks by the ensemble factor of O1).
  Result<FittedArtifact> DistillBestSingle() const;

  /// Abstract inference work per row — the quantity CAML's constraint
  /// bounds and Table 4's trillion-prediction projection scales up.
  double InferenceFlopsPerRow(size_t raw_num_features) const;

  std::string Describe() const;

 private:
  Result<ProbaMatrix> MemberProba(const Member& member, const Dataset& data,
                                  ExecutionContext* ctx) const;

  std::vector<Member> base_;
  std::vector<Member> meta_;
};

}  // namespace green

#endif  // GREEN_AUTOML_FITTED_ARTIFACT_H_
