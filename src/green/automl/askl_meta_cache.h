#ifndef GREEN_AUTOML_ASKL_META_CACHE_H_
#define GREEN_AUTOML_ASKL_META_CACHE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "green/automl/askl_system.h"

namespace green {

/// Process-wide keyed cache of built ASKL meta-stores.
///
/// Every fig/table binary and test that constructs an ExperimentRunner
/// and touches an autosklearn cell used to rebuild the meta-store from
/// scratch — the single most expensive simulated artifact. The store is
/// a pure function of its build inputs (corpus seed, simulation profile,
/// machine, cores), so identical keys can share one immutable instance.
///
/// The cached development energy is the RAW virtual-scale kWh of the
/// build; callers rescale by their own budget_scale so a cache hit
/// reports exactly the energy a fresh build would have reported.
class AsklMetaStoreCache {
 public:
  struct Entry {
    std::shared_ptr<const AsklMetaStore> store;
    double development_kwh = 0.0;  ///< Virtual scale, unscaled.
  };

  static AsklMetaStoreCache& Instance();

  /// Returns the cached entry for `key`, or runs `builder` (under the
  /// cache lock, so concurrent callers with the same key build once) and
  /// caches its result. A failed build is NOT memoized: the next caller
  /// retries.
  Result<Entry> GetOrBuild(const std::string& key,
                           const std::function<Result<Entry>()>& builder);

  size_t hits() const;
  size_t misses() const;

  /// Drops all cached stores and resets the counters (tests only).
  void Clear();

 private:
  AsklMetaStoreCache() = default;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace green

#endif  // GREEN_AUTOML_ASKL_META_CACHE_H_
