#ifndef GREEN_AUTOML_FLAML_SYSTEM_H_
#define GREEN_AUTOML_FLAML_SYSTEM_H_

#include <string>

#include "green/automl/automl_system.h"

namespace green {

/// FLAML: cost-frugal search for a single low-cost model. Starts with
/// the cheapest learner family on a tiny training sample, locally mutates
/// hyperparameters, and escalates (bigger sample, then costlier family)
/// only when cheap options stop improving (Table 1 row "FLAML"). Budget
/// policy: the evaluation running at the deadline is allowed to finish
/// (Table 7's mild overruns).
struct FlamlParams {
  size_t initial_sample = 64;
  double sample_growth = 4.0;
  /// Consecutive non-improving proposals before escalation.
  int patience = 3;
  double holdout_fraction = 0.33;
  /// Keep this many features at most via univariate pruning when the
  /// dataset is very wide (FLAML's feature-pruning strategy that the
  /// paper credits for its strength on >2k-feature tasks).
  int wide_data_feature_cap = 32;
};

class FlamlSystem : public AutoMlSystem {
 public:
  FlamlSystem() : FlamlSystem(FlamlParams{}) {}
  explicit FlamlSystem(const FlamlParams& params) : params_(params) {}

  std::string Name() const override { return "flaml"; }
  BudgetPolicyKind budget_policy() const override {
    return BudgetPolicyKind::kFinishLastEvaluation;
  }

  Result<AutoMlRunResult> Fit(const Dataset& train,
                              const AutoMlOptions& options,
                              ExecutionContext* ctx) override;

 private:
  FlamlParams params_;
};

}  // namespace green

#endif  // GREEN_AUTOML_FLAML_SYSTEM_H_
