#ifndef GREEN_AUTOML_GLUON_SYSTEM_H_
#define GREEN_AUTOML_GLUON_SYSTEM_H_

#include <string>
#include <vector>

#include "green/automl/automl_system.h"
#include "green/ml/model_registry.h"

namespace green {

/// AutoGluon: no hyperparameter search — a hand-picked portfolio of
/// pipelines is bagged over k folds, a second stacking layer consumes the
/// out-of-fold probabilities of the first, and Caruana weighting blends
/// the final layer (Table 1 row "AutoGluon"). The budget is interpreted
/// as an ESTIMATE used for planning the portfolio; generous plans
/// overshoot short budgets (Table 7's ~2x overrun at 10 s).
struct GluonParams {
  int bagging_folds = 3;
  /// "good quality, faster inference, only refit": collapse each bagged
  /// member into one pipeline refit on all data — cheaper inference at a
  /// small accuracy cost (the paper's Fig. 6 AutoGluon arm).
  bool refit_for_inference = false;
  int caruana_rounds = 12;
};

class GluonSystem : public AutoMlSystem {
 public:
  GluonSystem() : GluonSystem(GluonParams{}) {}
  explicit GluonSystem(const GluonParams& params) : params_(params) {}

  std::string Name() const override {
    return params_.refit_for_inference ? "autogluon_refit" : "autogluon";
  }
  BudgetPolicyKind budget_policy() const override {
    return BudgetPolicyKind::kEstimatedPlan;
  }

  Result<AutoMlRunResult> Fit(const Dataset& train,
                              const AutoMlOptions& options,
                              ExecutionContext* ctx) override;

  /// The hand-picked default portfolio, cheap models first.
  static std::vector<PipelineConfig> DefaultPortfolio(uint64_t seed);

 private:
  GluonParams params_;
};

}  // namespace green

#endif  // GREEN_AUTOML_GLUON_SYSTEM_H_
