#include "green/automl/tabpfn_system.h"

#include "green/ml/metrics.h"
#include "green/ml/preprocess/imputer.h"

namespace green {

Result<AutoMlRunResult> TabPfnSystem::Fit(const Dataset& train,
                                          const AutoMlOptions& options,
                                          ExecutionContext* ctx) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("tabpfn: empty training data");
  }
  if (train.task() == TaskType::kRegression) {
    // The pretrained prior is a classifier; there is no regression head.
    return Status::Unimplemented("tabpfn: regression not supported");
  }
  if (ctx->Cancelled()) {
    return Status::DeadlineExceeded("tabpfn: cancelled before start");
  }
  EnergyMeter meter(ctx->model());
  ScopedMeter scope(ctx, &meter);
  ChargeScope sys_scope(ctx, Name());
  const double start = ctx->Now();

  // TabPFN consumes the raw table directly; only missing values need
  // handling before the forward pass.
  Pipeline pipeline;
  pipeline.AddTransformer(std::make_unique<MeanModeImputer>());
  pipeline.SetModel(std::make_unique<AttentionFewShot>(model_params_));
  GREEN_RETURN_IF_ERROR(pipeline.Fit(train, ctx));

  AutoMlRunResult result;
  result.configured_budget_seconds = options.search_budget_seconds;
  result.pipelines_evaluated = 1;
  result.artifact = FittedArtifact::Single(
      std::make_shared<Pipeline>(std::move(pipeline)));
  // Zero search: there is no validation score to report; the paper's
  // benchmarks score TabPFN on test data only.
  result.best_validation_score = 0.0;
  result.execution = scope.Stop();
  result.actual_seconds = ctx->Now() - start;
  return result;
}

}  // namespace green
