#include "green/automl/guideline.h"

namespace green {

GuidelineRecommendation RecommendSystem(const GuidelineQuery& query) {
  GuidelineRecommendation out;

  // Branch 1: development resources + recurring executions -> tune the
  // AutoML system parameters; the tuned system wins both execution and
  // inference energy (Fig. 7).
  if (query.has_development_resources &&
      query.planned_executions >= kAmortizationRuns) {
    out.system = "caml_tuned";
    out.rationale =
        "A tuned AutoML system needs the least energy for execution and "
        "inference once the tuning cost amortizes over recurring runs.";
    return out;
  }

  // Branch 2: tiny search budgets.
  if (query.search_budget_seconds < 10.0) {
    if (query.num_classes <= kTabPfnClassLimit) {
      out.system = query.gpu_available ? "tabpfn(gpu)" : "tabpfn";
      out.rationale =
          "Zero-shot AutoML needs no search; with few classes TabPFN "
          "delivers competitive accuracy instantly.";
    } else {
      out.system = "caml";
      out.rationale =
          "Beyond 10 classes TabPFN is unsupported; CAML's incremental "
          "training finds pipelines even for very large datasets.";
    }
    return out;
  }

  // Branch 3: bigger budgets — decided by the user's priority.
  switch (query.priority) {
    case GuidelineQuery::Priority::kFastInference:
      out.system = "flaml";
      out.rationale =
          "FLAML searches low-cost models first and yields the cheapest "
          "inference at some accuracy cost.";
      break;
    case GuidelineQuery::Priority::kAccuracy:
      out.system = "autogluon";
      out.rationale =
          "Stacked ensembling converges to the best predictive "
          "performance, at an order of magnitude more inference energy.";
      break;
    case GuidelineQuery::Priority::kParetoOptimal:
      out.system = "caml";
      out.rationale =
          "CAML's constraint-aware single-pipeline search sits on the "
          "Pareto front between accuracy and inference cost.";
      break;
  }
  return out;
}

std::string RenderGuidelineChart() {
  return
      "Fig. 8 — picking the most energy-efficient AutoML solution\n"
      "\n"
      "  [dev resources >1 machine-week AND >=885 planned runs?]\n"
      "      |-- yes --> tune AutoML parameters (CAML(tuned))\n"
      "      |-- no\n"
      "          [search budget < 10 s?]\n"
      "              |-- yes\n"
      "              |     [<= 10 classes?]\n"
      "              |         |-- yes --> TabPFN (GPU if available)\n"
      "              |         |-- no  --> CAML (incremental training)\n"
      "              |-- no\n"
      "                  [priority?]\n"
      "                      |-- fast inference  --> FLAML\n"
      "                      |-- accuracy        --> AutoGluon\n"
      "                      |-- Pareto-optimal  --> CAML\n";
}

}  // namespace green
