#ifndef GREEN_AUTOML_AUTOML_SYSTEM_H_
#define GREEN_AUTOML_AUTOML_SYSTEM_H_

#include <limits>
#include <memory>
#include <string>

#include "green/automl/fitted_artifact.h"
#include "green/energy/energy_meter.h"
#include "green/ml/model_registry.h"
#include "green/sim/budget_policy.h"
#include "green/sim/execution_context.h"
#include "green/table/dataset.h"

namespace green {

/// Options common to all systems (each system additionally has its own
/// parameter struct — those are the "AutoML system parameters" the
/// paper's development stage tunes).
struct AutoMlOptions {
  /// The search-time termination criterion of the paper's §3.2. How
  /// strictly it is honoured depends on the system's BudgetPolicy
  /// (Table 7).
  double search_budget_seconds = 60.0;
  int cores = 1;
  uint64_t seed = 1;
  /// CAML-style ML-application constraint: maximum admissible inference
  /// time per instance (seconds); infinity disables it.
  double max_inference_seconds_per_row =
      std::numeric_limits<double>::infinity();
};

/// Outcome of one AutoML execution.
struct AutoMlRunResult {
  FittedArtifact artifact;
  /// Energy metered over the whole execution, including any overrun
  /// beyond the configured budget.
  EnergyReading execution;
  double configured_budget_seconds = 0.0;
  double actual_seconds = 0.0;
  int pipelines_evaluated = 0;
  double best_validation_score = 0.0;
};

/// Interface every miniature AutoML system implements. Fit() meters its
/// own execution energy (attaching a meter to the context), trains on
/// `train`, and returns a deployable artifact.
class AutoMlSystem {
 public:
  virtual ~AutoMlSystem() = default;

  virtual std::string Name() const = 0;

  /// Smallest supported PAPER-scale budget; e.g. AutoSklearn has no 10 s
  /// mode and TPOT only supports minutes (the gaps in the paper's Fig. 3
  /// series). Metadata for the experiment harness, which gates budget
  /// points before scaling them to virtual seconds.
  virtual double MinBudgetSeconds() const { return 0.0; }

  virtual BudgetPolicyKind budget_policy() const = 0;

  /// Whether the system can fit datasets of this task type. Systems that
  /// cannot (e.g. TabPFN is classification-only) return false here AND
  /// reject from Fit with Unimplemented; the harness maps either signal
  /// to a skipped cell rather than a failure.
  virtual bool SupportsTask(TaskType task) const {
    (void)task;
    return true;
  }

  virtual Result<AutoMlRunResult> Fit(const Dataset& train,
                                      const AutoMlOptions& options,
                                      ExecutionContext* ctx) = 0;
};

/// One evaluated candidate during search: the fitted pipeline plus its
/// holdout score and probabilities (kept for post-hoc ensembling).
struct EvaluatedPipeline {
  std::shared_ptr<Pipeline> pipeline;
  double val_score = 0.0;
  ProbaMatrix val_proba;
};

/// Builds a pipeline from `config`, fits it on `fit_data`, and scores
/// balanced accuracy on `val_data`. All work is charged to `ctx`.
Result<EvaluatedPipeline> TrainAndScore(const PipelineConfig& config,
                                        const Dataset& fit_data,
                                        const Dataset& val_data,
                                        ExecutionContext* ctx);

/// Estimated virtual seconds to score one row with `pipeline` on the
/// context's machine — the quantity CAML's inference constraint bounds.
double EstimateInferenceSecondsPerRow(const Pipeline& pipeline,
                                      size_t raw_num_features,
                                      const ExecutionContext& ctx);

/// Estimated virtual seconds to train `config` on (rows x features).
double EstimateTrainSeconds(const PipelineConfig& config, size_t rows,
                            size_t features, int classes,
                            const ExecutionContext& ctx);

/// Estimated virtual seconds for one full evaluation: training on
/// `train_rows` plus scoring `val_rows` (which dominates for
/// memory-based models like kNN). Budget policies gate on this.
double EstimateEvaluationSeconds(const PipelineConfig& config,
                                 size_t train_rows, size_t val_rows,
                                 size_t features, int classes,
                                 const ExecutionContext& ctx);

/// Meters `ctx` around a callable; restores any previously attached meter.
class ScopedMeter {
 public:
  ScopedMeter(ExecutionContext* ctx, EnergyMeter* meter)
      : ctx_(ctx), previous_(ctx->meter()) {
    meter->Start(ctx->Now());
    ctx_->SetMeter(meter);
    meter_ = meter;
  }
  ~ScopedMeter() { ctx_->SetMeter(previous_); }

  ScopedMeter(const ScopedMeter&) = delete;
  ScopedMeter& operator=(const ScopedMeter&) = delete;

  EnergyReading Stop() {
    ctx_->SetMeter(previous_);
    return meter_->Stop(ctx_->Now());
  }

 private:
  ExecutionContext* ctx_;
  EnergyMeter* previous_;
  EnergyMeter* meter_ = nullptr;
};

}  // namespace green

#endif  // GREEN_AUTOML_AUTOML_SYSTEM_H_
