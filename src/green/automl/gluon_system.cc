#include "green/automl/gluon_system.h"

#include <algorithm>

#include "green/common/logging.h"
#include "green/common/mathutil.h"
#include "green/ml/metrics.h"
#include "green/search/caruana.h"
#include "green/sim/task_scheduler.h"
#include "green/table/split.h"

namespace green {

std::vector<PipelineConfig> GluonSystem::DefaultPortfolio(uint64_t seed) {
  std::vector<PipelineConfig> portfolio;
  auto add = [&](const std::string& model,
                 std::map<std::string, double> params) {
    PipelineConfig config;
    config.model = model;
    config.params = std::move(params);
    config.seed = HashCombine(seed, portfolio.size() + 1);
    portfolio.push_back(std::move(config));
  };
  // Cheap -> expensive by full evaluation cost (training + out-of-fold
  // scoring), mirroring AutoGluon's default model order; kNN trains for
  // free but its fold scoring is O(n^2 d), so it sits late in the plan.
  add("naive_bayes", {});
  add("decision_tree", {{"max_depth", 6}});
  add("logistic_regression", {{"epochs", 8}});
  add("extra_trees", {{"num_trees", 12}, {"max_depth", 8}});
  add("random_forest", {{"num_trees", 20}, {"max_depth", 10}});
  add("gradient_boosting",
      {{"num_rounds", 25}, {"max_depth", 3}, {"learning_rate", 0.15}});
  add("knn", {{"k", 7}});
  add("mlp", {{"hidden_units", 24}, {"epochs", 20}});
  return portfolio;
}

Result<AutoMlRunResult> GluonSystem::Fit(const Dataset& train,
                                         const AutoMlOptions& options,
                                         ExecutionContext* ctx) {
  if (train.num_rows() < 8) {
    return Status::InvalidArgument("autogluon: too few rows");
  }
  if (ctx->Cancelled()) {
    return Status::DeadlineExceeded("autogluon: cancelled before start");
  }
  EnergyMeter meter(ctx->model());
  ScopedMeter scope(ctx, &meter);
  ChargeScope sys_scope(ctx, Name());
  const double start = ctx->Now();

  Rng rng(options.seed);
  AutoMlRunResult result;
  result.configured_budget_seconds = options.search_budget_seconds;

  // --- Planning: pick the portfolio prefix whose ESTIMATED runtime fits
  // the budget. The estimate is generous (it ignores stacking and
  // weighting overhead), so short budgets overshoot — by design, this is
  // AutoGluon's documented behaviour the paper measures in Table 7.
  std::vector<PipelineConfig> portfolio = DefaultPortfolio(options.seed);
  // Regression drops the classification-only portfolio entries; the
  // survivors keep their original per-slot seeds so classification runs
  // are untouched.
  portfolio.erase(
      std::remove_if(portfolio.begin(), portfolio.end(),
                     [&](const PipelineConfig& config) {
                       return !ModelSupportsTask(config.model, train.task());
                     }),
      portfolio.end());
  const int k_folds = params_.bagging_folds;
  std::vector<PipelineConfig> planned;
  {
    // AutoGluon's planning estimates are calibrated once, not per host:
    // the plan is made against the reference machine's single-core
    // throughput, so the ensemble composition does not change on a
    // slower host (it just takes longer) — this is what makes the
    // paper's Table 3 GPU-node comparison apples-to-apples.
    const double throughput =
        MachineModel::XeonGold6132().Throughput(Device::kCpu, 1);
    const size_t fold_train =
        train.num_rows() * static_cast<size_t>(k_folds - 1) /
        static_cast<size_t>(k_folds);
    const size_t fold_val = train.num_rows() / static_cast<size_t>(k_folds);
    std::vector<double> task_seconds;
    for (const PipelineConfig& config : portfolio) {
      // One bagged fold = train on (k-1)/k of the rows, score the rest.
      // Estimated at SINGLE-CORE speed so the plan's composition is
      // core-independent (extra cores only shorten the wall time).
      const double per_fold =
          (EstimateTrainCost(config, fold_train, train.num_features(),
                             train.num_classes()) +
           EstimatePredictCost(config, fold_train, fold_val,
                               train.num_features(),
                               train.num_classes())) /
          throughput;
      std::vector<double> with_this = task_seconds;
      for (int f = 0; f < k_folds; ++f) with_this.push_back(per_fold);
      // The plan is computed against a single-core schedule so the
      // ensemble composition does not depend on the core count — the
      // paper observes AutoGluon "builds always the same ensemble";
      // extra cores then only shorten the wall time (Fig. 5).
      const double makespan =
          TaskGraphScheduler::ScheduleBatch(with_this, 1)
              .makespan_seconds;
      // Always keep at least the three cheapest members (the minimum
      // ensemble AutoGluon insists on — the source of small-budget
      // overruns). The estimate ignores stacking and weighting overhead,
      // which adds AutoGluon's characteristic extra overshoot.
      if (planned.size() >= 3 &&
          makespan > 0.7 * options.search_budget_seconds) {
        break;
      }
      task_seconds = std::move(with_this);
      planned.push_back(config);
    }
  }

  // --- Layer 1: bagged training with out-of-fold predictions.
  const std::vector<std::vector<size_t>> folds =
      KFoldForTask(train, k_folds, &rng);
  // One fit/val view pair per fold, shared by every planned config, so
  // the transform cache keys on the same storage + row index throughout.
  std::vector<Dataset> fold_fit;
  std::vector<Dataset> fold_val;
  fold_fit.reserve(static_cast<size_t>(k_folds));
  fold_val.reserve(static_cast<size_t>(k_folds));
  for (int f = 0; f < k_folds; ++f) {
    std::vector<size_t> fit_rows;
    for (int g = 0; g < k_folds; ++g) {
      if (g == f) continue;
      fit_rows.insert(fit_rows.end(), folds[static_cast<size_t>(g)].begin(),
                      folds[static_cast<size_t>(g)].end());
    }
    std::sort(fit_rows.begin(), fit_rows.end());
    fold_fit.push_back(train.Subset(fit_rows));
    fold_val.push_back(train.Subset(folds[static_cast<size_t>(f)]));
  }
  std::vector<FittedArtifact::Member> base_members;
  std::vector<PipelineConfig> base_configs;  // Config per successful member.
  std::vector<ProbaMatrix> base_oof;  // One (n x k) matrix per member.
  const size_t n = train.num_rows();
  const size_t k_classes = static_cast<size_t>(train.num_classes());

  {
  ChargeScope phase(ctx, "bagging");
  for (const PipelineConfig& config : planned) {
    if (ctx->Cancelled()) {
      return Status::DeadlineExceeded("autogluon: cancelled mid-bagging");
    }
    FittedArtifact::Member member;
    // Out-of-fold prior for rows no fold scored: the uniform class
    // distribution, or the target mean for regression (k_classes is 1
    // there, so the uniform prior would be a constant 1.0).
    const double oof_prior = train.task() == TaskType::kRegression
                                 ? train.TargetMean()
                                 : 1.0 / static_cast<double>(k_classes);
    ProbaMatrix oof(n, std::vector<double>(k_classes, oof_prior));
    bool ok = true;
    for (int f = 0; f < k_folds; ++f) {
      const Dataset& fit_data = fold_fit[static_cast<size_t>(f)];
      const Dataset& val_data = fold_val[static_cast<size_t>(f)];

      auto built = BuildPipeline(config);
      if (!built.ok()) {
        ok = false;
        break;
      }
      Pipeline pipeline = std::move(built).value();
      if (!pipeline.Fit(fit_data, ctx).ok()) {
        ok = false;
        break;
      }
      auto proba = pipeline.PredictProba(val_data, ctx);
      if (!proba.ok()) {
        ok = false;
        break;
      }
      for (size_t i = 0; i < folds[static_cast<size_t>(f)].size(); ++i) {
        oof[folds[static_cast<size_t>(f)][i]] = proba.value()[i];
      }
      member.folds.push_back(
          std::make_shared<Pipeline>(std::move(pipeline)));
    }
    if (!ok || member.folds.empty()) continue;
    ++result.pipelines_evaluated;
    base_members.push_back(std::move(member));
    base_configs.push_back(config);
    base_oof.push_back(std::move(oof));
  }
  }
  if (base_members.empty()) {
    return Status::Internal("autogluon: portfolio training failed");
  }

  // --- Layer 2: stacker models on [X | OOF probabilities].
  const size_t aug_width = train.num_features() + base_members.size() *
                                                       k_classes;
  Dataset augmented = Dataset::Like(train, train.name(), aug_width);
  augmented.SetNominalSize(train.nominal_rows(), train.nominal_features());
  for (size_t j = 0; j < train.num_features(); ++j) {
    augmented.SetFeatureType(j, train.feature_type(j));
  }
  {
    ChargeScope phase(ctx, "stacking");
    augmented.Reserve(n);
    std::vector<double> row(aug_width);
    for (size_t i = 0; i < n; ++i) {
      const double* p = train.RowPtr(i);
      std::copy(p, p + train.num_features(), row.begin());
      size_t o = train.num_features();
      for (size_t m = 0; m < base_members.size(); ++m) {
        for (size_t c = 0; c < k_classes; ++c) {
          row[o++] = base_oof[m][i][c];
        }
      }
      GREEN_RETURN_IF_ERROR(augmented.AppendRowLike(train, i, row));
    }
    ctx->ChargeCpu(static_cast<double>(n * aug_width),
                   augmented.FeatureBytes());
  }

  TrainTestIndices meta_split = SplitForTask(augmented, 0.75, &rng);
  TrainTestData meta_holdout = Materialize(augmented, meta_split);

  // A compact stacker set, scaled to the budget remaining after layer 1:
  // a linear stacker always runs; forest and boosted-tree stackers join
  // when their estimated cost fits what is left of the (soft) budget.
  std::vector<PipelineConfig> stackers;
  {
    PipelineConfig lr;
    lr.model = "logistic_regression";
    lr.params = {{"epochs", 5}};
    lr.seed = HashCombine(options.seed, 0x9003);
    stackers.push_back(lr);

    // Stacker admission uses SINGLE-CORE cost estimates against the
    // budget, like the portfolio plan: the ensemble composition must not
    // depend on the core count (Fig. 5's fixed-workload premise).
    const double throughput_1core =
        MachineModel::XeonGold6132().Throughput(Device::kCpu, 1);
    auto single_core_seconds = [&](const PipelineConfig& config) {
      return EstimateTrainCost(config, augmented.num_rows(),
                               augmented.num_features(),
                               augmented.num_classes()) /
             throughput_1core;
    };
    double stacker_allowance = 0.3 * options.search_budget_seconds;
    PipelineConfig rf;
    rf.model = "random_forest";
    rf.params = {{"num_trees", 12}, {"max_depth", 8}};
    rf.seed = HashCombine(options.seed, 0x9002);
    const double rf_cost = single_core_seconds(rf);
    if (rf_cost < stacker_allowance) {
      stackers.push_back(rf);
      stacker_allowance -= rf_cost;
    }
    PipelineConfig gb;
    gb.model = "gradient_boosting";
    gb.params = {{"num_rounds", 15}, {"max_depth", 2}};
    gb.seed = HashCombine(options.seed, 0x9001);
    if (single_core_seconds(gb) < stacker_allowance) {
      stackers.push_back(gb);
    }
  }

  std::vector<EvaluatedPipeline> meta_models;
  {
  ChargeScope phase(ctx, "stacking");
  for (const PipelineConfig& config : stackers) {
    if (ctx->Cancelled()) {
      return Status::DeadlineExceeded("autogluon: cancelled mid-stacking");
    }
    auto evaluated = TrainAndScore(config, meta_holdout.train,
                                   meta_holdout.test, ctx);
    if (!evaluated.ok()) continue;
    ++result.pipelines_evaluated;
    meta_models.push_back(std::move(evaluated).value());
  }
  }
  if (meta_models.empty()) {
    return Status::Internal("autogluon: stacking layer failed");
  }

  // --- Caruana weighting over the stacker outputs.
  std::vector<ProbaMatrix> meta_proba;
  for (const auto& m : meta_models) meta_proba.push_back(m.val_proba);
  CaruanaOptions caruana_options;
  caruana_options.max_rounds = params_.caruana_rounds;
  const CaruanaResult caruana = CaruanaEnsembleSelection(
      meta_proba, meta_holdout.test, caruana_options);
  {
    ChargeScope ensemble_scope(ctx, "ensemble");
    ctx->ChargeCpu(caruana.work, 0.0, /*parallel_fraction=*/0.5);
  }

  std::vector<FittedArtifact::Member> meta_members;
  for (size_t i = 0; i < meta_models.size(); ++i) {
    const double w =
        caruana.weights.empty() ? 1.0 : caruana.weights[i];
    if (w <= 0.0) continue;
    FittedArtifact::Member member;
    member.folds.push_back(meta_models[i].pipeline);
    member.weight = w;
    meta_members.push_back(std::move(member));
  }
  if (meta_members.empty()) {
    FittedArtifact::Member member;
    member.folds.push_back(meta_models[0].pipeline);
    meta_members.push_back(std::move(member));
  }

  // --- Optional refit for faster inference: collapse each bagged member
  // into ONE pipeline trained on all rows.
  if (params_.refit_for_inference) {
    ChargeScope phase(ctx, "refit");
    std::vector<FittedArtifact::Member> refit_members;
    for (size_t m = 0; m < base_members.size(); ++m) {
      PipelineConfig config = base_configs[m];
      config.seed = HashCombine(options.seed, 0x7e17 + m);
      auto built = BuildPipeline(config);
      if (!built.ok()) continue;
      Pipeline pipeline = std::move(built).value();
      if (!pipeline.Fit(train, ctx).ok()) continue;
      FittedArtifact::Member member;
      member.folds.push_back(
          std::make_shared<Pipeline>(std::move(pipeline)));
      refit_members.push_back(std::move(member));
    }
    if (!refit_members.empty()) base_members = std::move(refit_members);
  }

  result.artifact = FittedArtifact::Stacked(std::move(base_members),
                                            std::move(meta_members));
  result.best_validation_score = caruana.validation_score;
  result.execution = scope.Stop();
  result.actual_seconds = ctx->Now() - start;
  return result;
}

}  // namespace green
