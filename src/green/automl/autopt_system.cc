#include "green/automl/autopt_system.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <vector>

#include "green/common/logging.h"
#include "green/search/successive_halving.h"
#include "green/table/split.h"

namespace green {

namespace {

/// One ladder arm: an MLP pipeline config at FULL fidelity; rungs scale
/// the epoch count down by their budget fraction.
struct Arm {
  PipelineConfig config;
  int full_epochs = 0;
};

std::vector<Arm> SampleArms(int num_arms, uint64_t seed, Rng* rng) {
  static const int kHiddenChoices[] = {8, 16, 24, 32, 48, 64};
  static const int kEpochChoices[] = {20, 30, 40, 60};
  std::vector<Arm> arms;
  arms.reserve(static_cast<size_t>(num_arms));
  for (int a = 0; a < num_arms; ++a) {
    Arm arm;
    arm.config.model = "mlp";
    arm.config.scaler = rng->NextBool() ? "standard" : "minmax";
    arm.config.params["hidden_units"] = static_cast<double>(
        kHiddenChoices[rng->NextBounded(std::size(kHiddenChoices))]);
    arm.full_epochs =
        kEpochChoices[rng->NextBounded(std::size(kEpochChoices))];
    // Log-uniform learning rate in [0.01, 0.2].
    arm.config.params["learning_rate"] =
        0.01 * std::pow(20.0, rng->NextDouble());
    arm.config.params["batch_size"] =
        rng->NextBool() ? 32.0 : 64.0;
    arm.config.seed = HashCombine(seed, static_cast<uint64_t>(a) + 0xa7);
    arms.push_back(std::move(arm));
  }
  return arms;
}

}  // namespace

Result<AutoMlRunResult> AutoPtSystem::Fit(const Dataset& train,
                                          const AutoMlOptions& options,
                                          ExecutionContext* ctx) {
  if (train.num_rows() < 4) {
    return Status::InvalidArgument("autopt: too few rows");
  }
  if (ctx->Cancelled()) {
    return Status::DeadlineExceeded("autopt: cancelled before start");
  }
  EnergyMeter meter(ctx->model());
  ScopedMeter scope(ctx, &meter);
  ChargeScope sys_scope(ctx, Name());
  const double start = ctx->Now();
  const double deadline = start + options.search_budget_seconds;
  ctx->SetDeadline(deadline);
  const BudgetPolicy policy(budget_policy());

  Rng rng(options.seed);
  TrainTestIndices split =
      SplitForTask(train, 1.0 - params_.holdout_fraction, &rng);
  TrainTestData holdout = Materialize(train, split);

  AutoMlRunResult result;
  result.configured_budget_seconds = options.search_budget_seconds;

  std::vector<Arm> arms =
      SampleArms(params_.num_arms, options.seed, &rng);
  // Highest-fidelity pipeline/score seen per arm; the ladder winner's
  // entry becomes the artifact (or the refit seed).
  std::vector<std::shared_ptr<Pipeline>> arm_pipeline(arms.size());
  std::vector<double> arm_score(
      arms.size(), -std::numeric_limits<double>::infinity());

  SuccessiveHalvingOptions sh_options;
  sh_options.num_rungs = params_.num_rungs;
  sh_options.eta = params_.eta;
  sh_options.min_fraction = params_.min_budget_fraction;

  auto evaluate = [&](int arm_index, int rung,
                      double budget_fraction) -> Result<double> {
    if (ctx->Cancelled()) {
      return Status::DeadlineExceeded("autopt: cancelled mid-search");
    }
    const Arm& arm = arms[static_cast<size_t>(arm_index)];
    PipelineConfig config = arm.config;
    const int epochs = std::max(
        2, static_cast<int>(budget_fraction *
                                static_cast<double>(arm.full_epochs) +
                            0.5));
    config.params["epochs"] = static_cast<double>(epochs);
    config.seed = HashCombine(arm.config.seed,
                              static_cast<uint64_t>(rung) + 1);
    const double estimated =
        1.2 * EstimateEvaluationSeconds(
                  config, holdout.train.num_rows(),
                  holdout.test.num_rows(), holdout.train.num_features(),
                  holdout.train.num_classes(), *ctx);
    if (!policy.MayStartEvaluation(ctx->Now(), deadline, estimated)) {
      return Status::DeadlineExceeded("autopt: budget exhausted");
    }
    GREEN_ASSIGN_OR_RETURN(
        EvaluatedPipeline evaluated,
        TrainAndScore(config, holdout.train, holdout.test, ctx));
    ++result.pipelines_evaluated;
    arm_pipeline[static_cast<size_t>(arm_index)] = evaluated.pipeline;
    arm_score[static_cast<size_t>(arm_index)] = evaluated.val_score;
    return evaluated.val_score;
  };

  SuccessiveHalvingResult halving;
  {
    ChargeScope search_scope(ctx, "search");
    halving = SuccessiveHalving(
        static_cast<int>(arms.size()), sh_options, evaluate, [&]() {
          return ctx->DeadlineExceeded() || ctx->Cancelled();
        });
  }
  if (ctx->Cancelled()) {
    ctx->ClearDeadline();
    return Status::DeadlineExceeded("autopt: cancelled mid-search");
  }

  std::shared_ptr<Pipeline> best_pipeline;
  double best_score = -std::numeric_limits<double>::infinity();
  PipelineConfig best_config;
  if (halving.best_arm >= 0 &&
      arm_pipeline[static_cast<size_t>(halving.best_arm)] != nullptr) {
    const size_t b = static_cast<size_t>(halving.best_arm);
    best_pipeline = arm_pipeline[b];
    best_score = arm_score[b];
    best_config = arms[b].config;
    best_config.params["epochs"] =
        static_cast<double>(arms[b].full_epochs);
  } else {
    // Any-time guarantee: a minimal MLP when the ladder produced nothing
    // (extreme budgets eliminate every arm up front).
    ChargeScope phase(ctx, "fallback");
    PipelineConfig fallback;
    fallback.model = "mlp";
    fallback.params = {{"hidden_units", 8.0}, {"epochs", 4.0}};
    fallback.seed = options.seed;
    GREEN_ASSIGN_OR_RETURN(
        EvaluatedPipeline evaluated,
        TrainAndScore(fallback, holdout.train, holdout.test, ctx));
    best_pipeline = evaluated.pipeline;
    best_score = evaluated.val_score;
    best_config = fallback;
    ++result.pipelines_evaluated;
  }

  // Refit the winner on ALL rows at full fidelity (Auto-PyTorch's final
  // training pass), budget permitting.
  if (params_.refit &&
      policy.MayStartEvaluation(
          ctx->Now(), deadline,
          EstimateTrainSeconds(best_config, train.num_rows(),
                               train.num_features(), train.num_classes(),
                               *ctx))) {
    ChargeScope phase(ctx, "refit");
    GREEN_ASSIGN_OR_RETURN(Pipeline refitted, BuildPipeline(best_config));
    Status st = refitted.Fit(train, ctx);
    if (st.ok()) {
      best_pipeline = std::make_shared<Pipeline>(std::move(refitted));
    }
  }

  ctx->ClearDeadline();
  result.artifact = FittedArtifact::Single(best_pipeline);
  result.best_validation_score = best_score;
  result.execution = scope.Stop();
  result.actual_seconds = ctx->Now() - start;
  return result;
}

}  // namespace green
