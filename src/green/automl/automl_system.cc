#include "green/automl/automl_system.h"

#include "green/common/mathutil.h"
#include "green/ml/metrics.h"

namespace green {

Result<EvaluatedPipeline> TrainAndScore(const PipelineConfig& config,
                                        const Dataset& fit_data,
                                        const Dataset& val_data,
                                        ExecutionContext* ctx) {
  ChargeScope scope(ctx, "pipeline");
  GREEN_ASSIGN_OR_RETURN(Pipeline pipeline, BuildPipeline(config));
  GREEN_RETURN_IF_ERROR(pipeline.Fit(fit_data, ctx));

  EvaluatedPipeline out;
  out.pipeline = std::make_shared<Pipeline>(std::move(pipeline));
  GREEN_ASSIGN_OR_RETURN(out.val_proba,
                         out.pipeline->PredictProba(val_data, ctx));
  // Higher-is-better for every task (balanced accuracy, or -RMSE for
  // regression), so every system's "keep the best" logic is task-blind.
  out.val_score = PrimaryScore(val_data, out.val_proba);
  return out;
}

double EstimateInferenceSecondsPerRow(const Pipeline& pipeline,
                                      size_t raw_num_features,
                                      const ExecutionContext& ctx) {
  const double flops = pipeline.InferenceFlopsPerRow(raw_num_features);
  const double throughput =
      ctx.model()->machine().Throughput(Device::kCpu, 1);
  return flops / throughput;
}

double EstimateTrainSeconds(const PipelineConfig& config, size_t rows,
                            size_t features, int classes,
                            const ExecutionContext& ctx) {
  const double flops =
      EstimateTrainCost(config, rows, features, classes);
  const double throughput =
      ctx.model()->machine().Throughput(Device::kCpu, ctx.cores());
  return flops / throughput;
}

double EstimateEvaluationSeconds(const PipelineConfig& config,
                                 size_t train_rows, size_t val_rows,
                                 size_t features, int classes,
                                 const ExecutionContext& ctx) {
  const double flops =
      EstimateTrainCost(config, train_rows, features, classes) +
      EstimatePredictCost(config, train_rows, val_rows, features,
                          classes);
  const double throughput =
      ctx.model()->machine().Throughput(Device::kCpu, ctx.cores());
  return flops / throughput;
}

}  // namespace green
