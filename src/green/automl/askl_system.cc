#include "green/automl/askl_system.h"

#include <algorithm>
#include <limits>

#include "green/common/logging.h"
#include "green/search/bayes_opt.h"
#include "green/search/caruana.h"
#include "green/table/split.h"

namespace green {

std::vector<PipelineConfig> AsklMetaStore::WarmStartConfigs(
    const MetaFeatures& meta, size_t max_configs) const {
  if (entries_.empty()) return {};
  double best = std::numeric_limits<double>::infinity();
  const Entry* nearest = &entries_[0];
  for (const Entry& entry : entries_) {
    const double dist = MetaFeatureDistance(entry.meta, meta);
    if (dist < best) {
      best = dist;
      nearest = &entry;
    }
  }
  std::vector<PipelineConfig> out = nearest->top_configs;
  if (out.size() > max_configs) out.resize(max_configs);
  return out;
}

Result<AsklMetaStore> AsklMetaStore::BuildFromCorpus(
    const std::vector<Dataset>& corpus, int evals_per_dataset,
    uint64_t seed, ExecutionContext* ctx) {
  ChargeScope scope(ctx, "askl_meta_store");
  AsklMetaStore store;
  PipelineSpaceOptions space_options;
  space_options.models = {"decision_tree",  "random_forest",
                          "extra_trees",    "gradient_boosting",
                          "adaboost",       "logistic_regression",
                          "naive_bayes"};
  space_options.include_feature_preprocessors = true;
  PipelineSearchSpace space(space_options);

  Rng rng(seed);
  for (const Dataset& dataset : corpus) {
    if (ctx->Cancelled()) {
      return Status::DeadlineExceeded("askl: meta-store build cancelled");
    }
    Rng local = rng.Fork();
    TrainTestIndices split = StratifiedSplit(dataset, 0.67, &local);
    TrainTestData holdout = Materialize(dataset, split);

    std::vector<std::pair<double, PipelineConfig>> scored;
    for (int e = 0; e < evals_per_dataset; ++e) {
      const PipelineConfig config =
          space.SampleConfig(&local, HashCombine(seed, e + 1));
      auto evaluated =
          TrainAndScore(config, holdout.train, holdout.test, ctx);
      if (!evaluated.ok()) continue;
      scored.emplace_back(evaluated.value().val_score, config);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    Entry entry;
    entry.meta = ComputeMetaFeatures(dataset);
    for (size_t i = 0; i < std::min<size_t>(3, scored.size()); ++i) {
      entry.top_configs.push_back(scored[i].second);
    }
    if (!entry.top_configs.empty()) store.AddEntry(std::move(entry));
  }
  if (store.size() == 0) {
    return Status::Internal("meta store construction produced no entries");
  }
  return store;
}

Result<AutoMlRunResult> AsklSystem::Fit(const Dataset& train,
                                        const AutoMlOptions& options,
                                        ExecutionContext* ctx) {
  if (ctx->Cancelled()) {
    return Status::DeadlineExceeded("askl: cancelled before start");
  }
  EnergyMeter meter(ctx->model());
  ScopedMeter scope(ctx, &meter);
  ChargeScope sys_scope(ctx, Name());
  const double start = ctx->Now();
  const double deadline = start + options.search_budget_seconds;
  ctx->SetDeadline(deadline);
  const BudgetPolicy policy(budget_policy());

  Rng rng(options.seed);
  TrainTestIndices split =
      SplitForTask(train, 1.0 - params_.holdout_fraction, &rng);
  TrainTestData holdout = Materialize(train, split);

  // Table 1: ASKL searches data AND feature preprocessors + models, the
  // broadest space of the studied systems (also the reason its very
  // first sampled pipeline can blow the whole budget).
  PipelineSpaceOptions space_options;
  space_options.models = FilterModelsForTask(
      {"decision_tree", "random_forest", "extra_trees",
       "gradient_boosting", "adaboost", "logistic_regression", "knn",
       "naive_bayes", "mlp"},
      train.task());
  space_options.include_data_preprocessors = true;
  space_options.include_feature_preprocessors = true;
  PipelineSearchSpace space(space_options);

  BayesOpt::Options bo_options;
  bo_options.num_initial_random = params_.num_initial_random;
  bo_options.seed = HashCombine(options.seed, 0xa5c1);
  BayesOpt optimizer(&space.space(), bo_options);

  AutoMlRunResult result;
  result.configured_budget_seconds = options.search_budget_seconds;

  std::vector<EvaluatedPipeline> library;

  // ASKL 2: evaluate the warm-start candidates from the most similar
  // repository dataset first (meta-learning moves this cost to the
  // development stage).
  if (params_.warm_start && meta_store_ != nullptr) {
    ChargeScope phase(ctx, "warm_start");
    const MetaFeatures meta = ComputeMetaFeatures(train);
    ctx->ChargeCpu(
        static_cast<double>(train.num_rows() * train.num_features()),
        train.FeatureBytes());
    for (PipelineConfig config : meta_store_->WarmStartConfigs(meta, 3)) {
      if (ctx->Cancelled()) {
        ctx->ClearDeadline();
        return Status::DeadlineExceeded("askl: cancelled mid-warm-start");
      }
      if (!policy.MayStartEvaluation(ctx->Now(), deadline, 0.0)) break;
      config.seed = HashCombine(options.seed, 0x3a3a);
      auto evaluated =
          TrainAndScore(config, holdout.train, holdout.test, ctx);
      if (!evaluated.ok()) continue;
      ++result.pipelines_evaluated;
      library.push_back(evaluated.value());
      // Warm-start observations seed the surrogate through a synthetic
      // point at the config's nearest unit encoding — approximated by a
      // fresh sample carrying the observed score.
      optimizer.Tell(space.space().Sample(&rng),
                     evaluated.value().val_score);
    }
  }

  int iteration = 0;
  {
    ChargeScope phase(ctx, "search");
    while (policy.MayStartEvaluation(ctx->Now(), deadline, 0.0)) {
      if (ctx->Cancelled()) {
        ctx->ClearDeadline();
        return Status::DeadlineExceeded("askl: cancelled mid-search");
      }
      const ParamPoint point = optimizer.Ask();
      const PipelineConfig config =
          space.ToConfig(point, HashCombine(options.seed, iteration + 101));
      ++iteration;
      auto evaluated =
          TrainAndScore(config, holdout.train, holdout.test, ctx);
      if (!evaluated.ok()) {
        const double work = optimizer.Tell(point, 0.0);
        ctx->ChargeCpu(std::max(work, 500.0), 0.0,
                       /*parallel_fraction=*/0.2);
        continue;
      }
      ++result.pipelines_evaluated;
      const double surrogate_work =
          optimizer.Tell(point, evaluated.value().val_score);
      ctx->ChargeCpu(surrogate_work, 0.0, /*parallel_fraction=*/0.2);
      library.push_back(std::move(evaluated).value());
    }
  }

  if (library.empty()) {
    ChargeScope phase(ctx, "fallback");
    PipelineConfig fallback;
    fallback.model = train.task() == TaskType::kRegression
                         ? "decision_tree"
                         : "naive_bayes";
    fallback.seed = options.seed;
    GREEN_ASSIGN_OR_RETURN(
        EvaluatedPipeline evaluated,
        TrainAndScore(fallback, holdout.train, holdout.test, ctx));
    library.push_back(std::move(evaluated));
    ++result.pipelines_evaluated;
  }

  // Keep the top `ensemble_size` pipelines by validation score.
  std::sort(library.begin(), library.end(),
            [](const EvaluatedPipeline& a, const EvaluatedPipeline& b) {
              return a.val_score > b.val_score;
            });
  if (library.size() > static_cast<size_t>(params_.ensemble_size)) {
    library.resize(static_cast<size_t>(params_.ensemble_size));
  }

  // Caruana ensemble weighting — NOT counted against the search budget
  // (runs after the deadline; the cost grows with the validation set,
  // reproducing ASKL's Table 7 overruns).
  ChargeScope ensemble_scope(ctx, "ensemble");
  std::vector<ProbaMatrix> lib_proba;
  lib_proba.reserve(library.size());
  for (const auto& member : library) lib_proba.push_back(member.val_proba);
  CaruanaOptions caruana_options;
  caruana_options.max_rounds = params_.caruana_rounds;
  const CaruanaResult caruana =
      CaruanaEnsembleSelection(lib_proba, holdout.test, caruana_options);
  ctx->ChargeCpu(caruana.work, 0.0, /*parallel_fraction=*/0.5);

  std::vector<FittedArtifact::Member> members;
  for (size_t i = 0; i < library.size(); ++i) {
    if (caruana.weights.empty() || caruana.weights[i] <= 0.0) continue;
    FittedArtifact::Member member;
    member.folds.push_back(library[i].pipeline);
    member.weight = caruana.weights[i];
    members.push_back(std::move(member));
  }
  if (members.empty()) {
    FittedArtifact::Member member;
    member.folds.push_back(library[0].pipeline);
    member.weight = 1.0;
    members.push_back(std::move(member));
  }

  ctx->ClearDeadline();
  result.artifact = FittedArtifact::Weighted(std::move(members));
  result.best_validation_score =
      std::max(caruana.validation_score, library[0].val_score);
  result.execution = scope.Stop();
  result.actual_seconds = ctx->Now() - start;
  return result;
}

}  // namespace green
