#include "green/automl/fitted_artifact.h"

#include "green/common/logging.h"
#include "green/common/mathutil.h"
#include "green/common/stringutil.h"
#include "green/ml/kernels/kernels.h"

namespace green {

namespace {

/// Kernel-path weighted blend: streams every member's probabilities into
/// one flat rows x k accumulator instead of per-row vectors. Per-(row,
/// class) adds keep member order, and zero-weight members are skipped
/// exactly like the reference loop, so the result is bit-identical.
ProbaMatrix BlendFlat(const std::vector<ProbaMatrix>& probas,
                      const std::vector<double>& weights, size_t rows,
                      size_t k) {
  std::vector<double> acc(rows * k, 0.0);
  for (size_t j = 0; j < probas.size(); ++j) {
    const double w = weights[j];
    if (w <= 0.0) continue;
    const ProbaMatrix& p = probas[j];
    for (size_t i = 0; i < rows; ++i) {
      double* row = acc.data() + i * k;
      const std::vector<double>& src = p[i];
      for (size_t c = 0; c < k; ++c) row[c] += w * src[c];
    }
  }
  ProbaMatrix out(rows);
  for (size_t i = 0; i < rows; ++i) {
    out[i].assign(acc.begin() + static_cast<ptrdiff_t>(i * k),
                  acc.begin() + static_cast<ptrdiff_t>((i + 1) * k));
  }
  return out;
}

}  // namespace

FittedArtifact FittedArtifact::Single(
    std::shared_ptr<const Pipeline> pipeline) {
  FittedArtifact out;
  Member member;
  member.folds.push_back(std::move(pipeline));
  member.weight = 1.0;
  out.base_.push_back(std::move(member));
  return out;
}

FittedArtifact FittedArtifact::Weighted(std::vector<Member> members) {
  FittedArtifact out;
  out.base_ = std::move(members);
  return out;
}

FittedArtifact FittedArtifact::Stacked(std::vector<Member> base,
                                       std::vector<Member> meta) {
  FittedArtifact out;
  out.base_ = std::move(base);
  out.meta_ = std::move(meta);
  return out;
}

Result<FittedArtifact> FittedArtifact::DistillBestSingle() const {
  if (base_.empty()) {
    return Status::FailedPrecondition("artifact is empty");
  }
  const Member* best = &base_[0];
  for (const Member& m : base_) {
    if (m.weight > best->weight) best = &m;
  }
  GREEN_CHECK(!best->folds.empty());
  return Single(best->folds[0]);
}

size_t FittedArtifact::NumPipelines() const {
  size_t n = 0;
  for (const Member& m : base_) n += m.folds.size();
  for (const Member& m : meta_) n += m.folds.size();
  return n;
}

Result<ProbaMatrix> FittedArtifact::MemberProba(
    const Member& member, const Dataset& data,
    ExecutionContext* ctx) const {
  GREEN_CHECK(!member.folds.empty());
  ProbaMatrix sum;
  for (const auto& fold : member.folds) {
    GREEN_ASSIGN_OR_RETURN(ProbaMatrix proba,
                           fold->PredictProba(data, ctx));
    if (ctx->Interrupted()) {
      return Status::DeadlineExceeded("artifact: interrupted mid-predict");
    }
    if (sum.empty()) {
      sum = std::move(proba);
    } else {
      for (size_t i = 0; i < sum.size(); ++i) {
        for (size_t c = 0; c < sum[i].size(); ++c) {
          sum[i][c] += proba[i][c];
        }
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(member.folds.size());
  for (auto& row : sum) {
    for (double& p : row) p *= inv;
  }
  return sum;
}

Result<ProbaMatrix> FittedArtifact::PredictProba(
    const Dataset& data, ExecutionContext* ctx) const {
  if (base_.empty()) {
    return Status::FailedPrecondition("artifact is empty");
  }
  ChargeScope scope(ctx, meta_.empty() ? "blend" : "stack");

  // Base layer.
  std::vector<ProbaMatrix> base_probas;
  base_probas.reserve(base_.size());
  for (const Member& member : base_) {
    GREEN_ASSIGN_OR_RETURN(ProbaMatrix proba,
                           MemberProba(member, data, ctx));
    base_probas.push_back(std::move(proba));
  }

  if (meta_.empty()) {
    // Weighted blend of the base layer.
    const size_t k = base_probas[0][0].size();
    double weight_sum = 0.0;
    for (const Member& m : base_) weight_sum += m.weight;
    if (weight_sum <= 0.0) weight_sum = 1.0;
    ProbaMatrix out;
    if (KernelsEnabled()) {
      std::vector<double> weights(base_.size());
      for (size_t j = 0; j < base_.size(); ++j) {
        weights[j] = base_[j].weight / weight_sum;
      }
      out = BlendFlat(base_probas, weights, data.num_rows(), k);
    } else {
      out.resize(data.num_rows());
      for (size_t i = 0; i < data.num_rows(); ++i) {
        out[i].assign(k, 0.0);
      }
      for (size_t j = 0; j < base_.size(); ++j) {
        const double w = base_[j].weight / weight_sum;
        if (w <= 0.0) continue;
        for (size_t i = 0; i < data.num_rows(); ++i) {
          for (size_t c = 0; c < out[i].size(); ++c) {
            out[i][c] += w * base_probas[j][i][c];
          }
        }
      }
    }
    ctx->ChargeCpu(static_cast<double>(data.num_rows()) *
                       static_cast<double>(base_.size()) *
                       static_cast<double>(base_probas[0][0].size()),
                   0.0);
    if (ctx->Interrupted()) {
      return Status::DeadlineExceeded("artifact: interrupted mid-predict");
    }
    return out;
  }

  // Stacked: augment features with base probabilities, then run the meta
  // layer and blend it.
  const size_t k = base_probas[0][0].size();
  const size_t aug_width =
      data.num_features() + base_.size() * k;
  Dataset augmented = Dataset::Like(data, data.name(), aug_width);
  augmented.SetNominalSize(data.nominal_rows(), data.nominal_features());
  for (size_t j = 0; j < data.num_features(); ++j) {
    augmented.SetFeatureType(j, data.feature_type(j));
    augmented.SetFeatureName(j, data.feature_name(j));
  }
  augmented.Reserve(data.num_rows());
  std::vector<double> row(aug_width);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const double* p = data.RowPtr(i);
    std::copy(p, p + data.num_features(), row.begin());
    size_t o = data.num_features();
    for (size_t j = 0; j < base_.size(); ++j) {
      for (size_t c = 0; c < k; ++c) row[o++] = base_probas[j][i][c];
    }
    Status st = augmented.AppendRowLike(data, i, row);
    if (!st.ok()) return st;
  }
  ctx->ChargeCpu(static_cast<double>(data.num_rows() * aug_width),
                 augmented.FeatureBytes());

  std::vector<ProbaMatrix> meta_probas;
  meta_probas.reserve(meta_.size());
  for (const Member& member : meta_) {
    GREEN_ASSIGN_OR_RETURN(ProbaMatrix proba,
                           MemberProba(member, augmented, ctx));
    meta_probas.push_back(std::move(proba));
  }
  double weight_sum = 0.0;
  for (const Member& m : meta_) weight_sum += m.weight;
  if (weight_sum <= 0.0) weight_sum = 1.0;
  ProbaMatrix out;
  if (KernelsEnabled()) {
    std::vector<double> weights(meta_.size());
    for (size_t j = 0; j < meta_.size(); ++j) {
      weights[j] = meta_[j].weight / weight_sum;
    }
    out = BlendFlat(meta_probas, weights, data.num_rows(), k);
  } else {
    out.resize(data.num_rows());
    for (size_t i = 0; i < data.num_rows(); ++i) out[i].assign(k, 0.0);
    for (size_t j = 0; j < meta_.size(); ++j) {
      const double w = meta_[j].weight / weight_sum;
      if (w <= 0.0) continue;
      for (size_t i = 0; i < data.num_rows(); ++i) {
        for (size_t c = 0; c < k; ++c) {
          out[i][c] += w * meta_probas[j][i][c];
        }
      }
    }
  }
  if (ctx->Interrupted()) {
    return Status::DeadlineExceeded("artifact: interrupted mid-predict");
  }
  return out;
}

TaskType FittedArtifact::task() const {
  if (!base_.empty() && !base_[0].folds.empty()) {
    const Estimator* model = base_[0].folds[0]->model();
    if (model != nullptr) return model->task();
  }
  return TaskType::kBinary;
}

Result<std::vector<int>> FittedArtifact::Predict(
    const Dataset& data, ExecutionContext* ctx) const {
  if (task() == TaskType::kRegression) {
    return Status::FailedPrecondition(
        "artifact: Predict (class labels) undefined for regression; use "
        "PredictProba and read column 0");
  }
  GREEN_ASSIGN_OR_RETURN(ProbaMatrix proba, PredictProba(data, ctx));
  std::vector<int> out;
  out.reserve(proba.size());
  for (const auto& row : proba) {
    out.push_back(static_cast<int>(ArgMax(row)));
  }
  return out;
}

double FittedArtifact::InferenceFlopsPerRow(size_t raw_num_features) const {
  double flops = 0.0;
  for (const Member& m : base_) {
    for (const auto& fold : m.folds) {
      flops += fold->InferenceFlopsPerRow(raw_num_features);
    }
  }
  if (!meta_.empty() && !base_.empty() && !base_[0].folds.empty()) {
    const Estimator* any_model = base_[0].folds[0]->model();
    const size_t k =
        any_model != nullptr && any_model->num_classes() > 0
            ? static_cast<size_t>(any_model->num_classes())
            : 2;
    const size_t aug_width = raw_num_features + base_.size() * k;
    for (const Member& m : meta_) {
      for (const auto& fold : m.folds) {
        flops += fold->InferenceFlopsPerRow(aug_width);
      }
    }
  }
  return flops;
}

std::string FittedArtifact::Describe() const {
  std::vector<std::string> parts;
  for (const Member& m : base_) {
    if (m.weight <= 0.0) continue;
    parts.push_back(StrFormat("%.2f*%s%s", m.weight,
                              m.folds[0]->Describe().c_str(),
                              m.folds.size() > 1
                                  ? StrFormat("(x%zu folds)",
                                              m.folds.size())
                                        .c_str()
                                  : ""));
  }
  std::string out = Join(parts, " + ");
  if (!meta_.empty()) {
    std::vector<std::string> meta_parts;
    for (const Member& m : meta_) {
      if (m.weight <= 0.0) continue;
      meta_parts.push_back(
          StrFormat("%.2f*%s", m.weight, m.folds[0]->Describe().c_str()));
    }
    out = "stack[base: " + out + " | meta: " + Join(meta_parts, " + ") +
          "]";
  }
  return out;
}

}  // namespace green
