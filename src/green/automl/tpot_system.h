#ifndef GREEN_AUTOML_TPOT_SYSTEM_H_
#define GREEN_AUTOML_TPOT_SYSTEM_H_

#include <string>

#include "green/automl/automl_system.h"

namespace green {

/// TPOT: genetic programming (NSGA-II) over pipelines, scored by 5-fold
/// cross-validation. CV multiplies the per-candidate cost by k, which is
/// why the paper finds TPOT evaluates the fewest distinct pipelines per
/// budget and trails at 5 minutes. Only minute-scale budgets are
/// supported (Table 7 has no 10s/30s TPOT column).
struct TpotParams {
  int population_size = 8;
  int cv_folds = 5;
  double mutation_prob = 0.25;
  double crossover_prob = 0.8;
};

class TpotSystem : public AutoMlSystem {
 public:
  TpotSystem() : TpotSystem(TpotParams{}) {}
  explicit TpotSystem(const TpotParams& params) : params_(params) {}

  std::string Name() const override { return "tpot"; }
  double MinBudgetSeconds() const override { return 60.0; }
  BudgetPolicyKind budget_policy() const override {
    return BudgetPolicyKind::kFinishLastEvaluation;
  }

  Result<AutoMlRunResult> Fit(const Dataset& train,
                              const AutoMlOptions& options,
                              ExecutionContext* ctx) override;

 private:
  TpotParams params_;
};

}  // namespace green

#endif  // GREEN_AUTOML_TPOT_SYSTEM_H_
