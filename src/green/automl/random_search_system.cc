#include "green/automl/random_search_system.h"

#include <algorithm>
#include <limits>

#include "green/automl/search_model_space.h"
#include "green/common/logging.h"
#include "green/table/split.h"

namespace green {

Result<AutoMlRunResult> RandomSearchSystem::Fit(
    const Dataset& train, const AutoMlOptions& options,
    ExecutionContext* ctx) {
  if (train.num_rows() < 4) {
    return Status::InvalidArgument("random_search: too few rows");
  }
  if (ctx->Cancelled()) {
    return Status::DeadlineExceeded("random_search: cancelled before start");
  }
  EnergyMeter meter(ctx->model());
  ScopedMeter scope(ctx, &meter);
  ChargeScope sys_scope(ctx, Name());
  const double start = ctx->Now();
  const double deadline = start + options.search_budget_seconds;
  ctx->SetDeadline(deadline);
  const BudgetPolicy policy(budget_policy());

  Rng rng(options.seed);
  TrainTestIndices split =
      SplitForTask(train, 1.0 - params_.holdout_fraction, &rng);
  TrainTestData holdout = Materialize(train, split);

  // The same space CAML searches, so the only difference is the strategy.
  PipelineSpaceOptions space_options;
  space_options.models = FilterModelsForTask(
      {"decision_tree", "random_forest", "extra_trees",
       "gradient_boosting", "logistic_regression", "knn", "naive_bayes",
       "mlp"},
      train.task());
  PipelineSearchSpace space(space_options);

  AutoMlRunResult result;
  result.configured_budget_seconds = options.search_budget_seconds;

  std::shared_ptr<Pipeline> best_pipeline;
  double best_score = -std::numeric_limits<double>::infinity();
  const double eval_time_cap =
      params_.evaluation_fraction * options.search_budget_seconds;

  int iteration = 0;
  {
  ChargeScope search_scope(ctx, "search");
  while (!ctx->DeadlineExceeded()) {
    if (ctx->Cancelled()) {
      ctx->ClearDeadline();
      return Status::DeadlineExceeded("random_search: cancelled mid-search");
    }
    const PipelineConfig config = space.SampleConfig(
        &rng, HashCombine(options.seed, ++iteration));
    const double estimated =
        1.4 * EstimateEvaluationSeconds(
                  config, holdout.train.num_rows(),
                  holdout.test.num_rows(), holdout.train.num_features(),
                  holdout.train.num_classes(), *ctx);
    if (estimated > eval_time_cap) {
      ctx->ChargeCpu(500.0, 0.0, 0.2);  // Sampling bookkeeping.
      continue;
    }
    if (!policy.MayStartEvaluation(ctx->Now(), deadline, estimated)) break;

    auto evaluated =
        TrainAndScore(config, holdout.train, holdout.test, ctx);
    if (!evaluated.ok()) continue;
    ++result.pipelines_evaluated;
    if (evaluated.value().val_score > best_score) {
      best_score = evaluated.value().val_score;
      best_pipeline = evaluated.value().pipeline;
    }
  }
  }

  if (best_pipeline == nullptr) {
    ChargeScope phase(ctx, "fallback");
    PipelineConfig fallback;
    fallback.model = train.task() == TaskType::kRegression
                         ? "decision_tree"
                         : "naive_bayes";
    fallback.seed = options.seed;
    GREEN_ASSIGN_OR_RETURN(
        EvaluatedPipeline evaluated,
        TrainAndScore(fallback, holdout.train, holdout.test, ctx));
    best_pipeline = evaluated.pipeline;
    best_score = evaluated.val_score;
    ++result.pipelines_evaluated;
  }

  ctx->ClearDeadline();
  result.artifact = FittedArtifact::Single(best_pipeline);
  result.best_validation_score = best_score;
  result.execution = scope.Stop();
  result.actual_seconds = ctx->Now() - start;
  return result;
}

}  // namespace green
