#include "green/automl/tpot_system.h"

#include <algorithm>

#include "green/automl/search_model_space.h"
#include "green/common/logging.h"
#include "green/common/mathutil.h"
#include "green/ml/metrics.h"
#include "green/search/nsga2.h"
#include "green/table/split.h"

namespace green {

Result<AutoMlRunResult> TpotSystem::Fit(const Dataset& train,
                                        const AutoMlOptions& options,
                                        ExecutionContext* ctx) {
  if (train.num_rows() < static_cast<size_t>(2 * params_.cv_folds)) {
    return Status::InvalidArgument("tpot: too few rows for CV");
  }
  if (ctx->Cancelled()) {
    return Status::DeadlineExceeded("tpot: cancelled before start");
  }
  EnergyMeter meter(ctx->model());
  ScopedMeter scope(ctx, &meter);
  ChargeScope sys_scope(ctx, Name());
  const double start = ctx->Now();
  const double deadline = start + options.search_budget_seconds;
  ctx->SetDeadline(deadline);

  Rng rng(options.seed);

  // Table 1: TPOT searches data/feature preprocessors and models.
  PipelineSpaceOptions space_options;
  space_options.models = FilterModelsForTask(
      {"decision_tree", "random_forest", "extra_trees",
       "gradient_boosting", "adaboost", "logistic_regression", "knn",
       "naive_bayes"},
      train.task());
  space_options.include_data_preprocessors = true;
  space_options.include_feature_preprocessors = true;
  PipelineSearchSpace space(space_options);

  const std::vector<std::vector<size_t>> folds =
      KFoldForTask(train, params_.cv_folds, &rng);

  // Build each fold's fit/val views once; every pipeline evaluation
  // reuses the same view objects, so the transform cache keys on the
  // same storage + row index across the whole evolution.
  std::vector<Dataset> fold_fit;
  std::vector<Dataset> fold_val;
  fold_fit.reserve(static_cast<size_t>(params_.cv_folds));
  fold_val.reserve(static_cast<size_t>(params_.cv_folds));
  for (int f = 0; f < params_.cv_folds; ++f) {
    std::vector<size_t> fit_rows;
    for (int g = 0; g < params_.cv_folds; ++g) {
      if (g == f) continue;
      fit_rows.insert(fit_rows.end(), folds[static_cast<size_t>(g)].begin(),
                      folds[static_cast<size_t>(g)].end());
    }
    std::sort(fit_rows.begin(), fit_rows.end());
    fold_fit.push_back(train.Subset(fit_rows));
    fold_val.push_back(train.Subset(folds[static_cast<size_t>(f)]));
  }

  AutoMlRunResult result;
  result.configured_budget_seconds = options.search_budget_seconds;

  int eval_counter = 0;
  // k-fold CV score of one configuration; every fold trains a fresh
  // pipeline — the cost multiplier that slows TPOT down.
  auto cross_validate =
      [&](const ParamPoint& point) -> Result<std::vector<double>> {
    if (ctx->Cancelled()) {
      return Status::DeadlineExceeded("tpot: cancelled mid-evolution");
    }
    const PipelineConfig config =
        space.ToConfig(point, HashCombine(options.seed, ++eval_counter));
    // TPOT enforces a per-evaluation timeout: pipelines whose k-fold CV
    // would not finish within a slice of the remaining budget are killed
    // (here: rejected up front from the cost estimate).
    const size_t fold_rows =
        train.num_rows() / static_cast<size_t>(params_.cv_folds);
    const double estimated =
        static_cast<double>(params_.cv_folds) *
        EstimateEvaluationSeconds(config, train.num_rows() - fold_rows,
                                  fold_rows, train.num_features(),
                                  train.num_classes(), *ctx);
    const double remaining = deadline - ctx->Now();
    if (estimated > std::max(0.25 * options.search_budget_seconds,
                             remaining)) {
      ctx->ChargeCpu(500.0, 0.0, 0.2);  // Proposal bookkeeping.
      return Status::ResourceExhausted("pipeline exceeds eval timeout");
    }
    double score_sum = 0.0;
    double complexity = 0.0;
    int folds_done = 0;
    for (int f = 0; f < params_.cv_folds; ++f) {
      const Dataset& fit_data = fold_fit[static_cast<size_t>(f)];
      const Dataset& val_data = fold_val[static_cast<size_t>(f)];
      GREEN_ASSIGN_OR_RETURN(
          EvaluatedPipeline evaluated,
          TrainAndScore(config, fit_data, val_data, ctx));
      score_sum += evaluated.val_score;
      complexity += evaluated.pipeline->ModelComplexity();
      ++folds_done;
    }
    ++result.pipelines_evaluated;
    const double mean_score =
        score_sum / static_cast<double>(folds_done);
    // TPOT's classic bi-objective: maximize accuracy, minimize pipeline
    // complexity (negated for maximization).
    return std::vector<double>{
        mean_score,
        -complexity / static_cast<double>(folds_done)};
  };

  Nsga2Options ga;
  ga.population_size = params_.population_size;
  ga.generations = 1000;  // Budget-bound, not generation-bound.
  ga.mutation_prob = params_.mutation_prob;
  ga.crossover_prob = params_.crossover_prob;
  ga.seed = HashCombine(options.seed, 0x9307);
  const Nsga2Result evolved = [&]() {
    ChargeScope search_scope(ctx, "search");
    return Nsga2(space.space(), ga, cross_validate,
                 [&]() { return ctx->DeadlineExceeded() || ctx->Cancelled(); });
  }();

  if (ctx->Cancelled()) {
    ctx->ClearDeadline();
    return Status::DeadlineExceeded("tpot: cancelled mid-evolution");
  }

  if (evolved.population.empty()) {
    return Status::Internal("tpot: no pipeline survived evolution");
  }
  // Final selection honours BOTH objectives: among first-front
  // individuals within 1% of the best CV accuracy, take the least
  // complex pipeline (TPOT's parsimony pressure at selection time).
  const Nsga2Individual* best = &evolved.population[0];
  for (const auto& ind : evolved.population) {
    if (ind.rank != 0) break;
    if (ind.objectives[0] > best->objectives[0]) best = &ind;
  }
  const double accuracy_floor = best->objectives[0] - 0.01;
  for (const auto& ind : evolved.population) {
    if (ind.rank != 0) break;
    if (ind.objectives[0] >= accuracy_floor &&
        ind.objectives[1] > best->objectives[1]) {
      best = &ind;  // Higher objectives[1] = lower complexity.
    }
  }
  GREEN_ASSIGN_OR_RETURN(ParamPoint best_point,
                         space.space().Decode(best->unit));
  const PipelineConfig best_config =
      space.ToConfig(best_point, HashCombine(options.seed, 0xbe57));
  GREEN_ASSIGN_OR_RETURN(Pipeline final_pipeline,
                         BuildPipeline(best_config));
  {
    ChargeScope phase(ctx, "refit");
    GREEN_RETURN_IF_ERROR(final_pipeline.Fit(train, ctx));
  }

  ctx->ClearDeadline();
  result.artifact = FittedArtifact::Single(
      std::make_shared<Pipeline>(std::move(final_pipeline)));
  result.best_validation_score = best->objectives[0];
  result.execution = scope.Stop();
  result.actual_seconds = ctx->Now() - start;
  return result;
}

}  // namespace green
