#ifndef GREEN_AUTOML_RANDOM_SEARCH_SYSTEM_H_
#define GREEN_AUTOML_RANDOM_SEARCH_SYSTEM_H_

#include <string>

#include "green/automl/automl_system.h"

namespace green {

/// The naive baseline the AutoML literature measures itself against
/// (Bergstra & Bengio's random search): uniform sampling of the full
/// pipeline space, hold-out validation, best single pipeline wins. The
/// paper's premise is that the development cost of advanced systems
/// amortizes against exactly this strategy — having it in the harness
/// makes that claim testable (see bench/ablation_search_strategies).
struct RandomSearchSystemParams {
  double holdout_fraction = 0.33;
  /// Skip configurations whose estimated evaluation cost exceeds this
  /// fraction of the budget (the same guard CAML uses, so the comparison
  /// isolates the SEARCH strategy).
  double evaluation_fraction = 0.25;
};

class RandomSearchSystem : public AutoMlSystem {
 public:
  RandomSearchSystem() : RandomSearchSystem(RandomSearchSystemParams{}) {}
  explicit RandomSearchSystem(const RandomSearchSystemParams& params)
      : params_(params) {}

  std::string Name() const override { return "random_search"; }
  BudgetPolicyKind budget_policy() const override {
    return BudgetPolicyKind::kStrict;
  }

  Result<AutoMlRunResult> Fit(const Dataset& train,
                              const AutoMlOptions& options,
                              ExecutionContext* ctx) override;

 private:
  RandomSearchSystemParams params_;
};

}  // namespace green

#endif  // GREEN_AUTOML_RANDOM_SEARCH_SYSTEM_H_
