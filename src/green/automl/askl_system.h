#ifndef GREEN_AUTOML_ASKL_SYSTEM_H_
#define GREEN_AUTOML_ASKL_SYSTEM_H_

#include <string>
#include <vector>

#include "green/automl/automl_system.h"
#include "green/automl/search_model_space.h"
#include "green/ml/model_registry.h"
#include "green/table/metafeatures.h"

namespace green {

/// The meta-learning store behind AutoSklearn 2's warm start: for each
/// repository dataset, its meta-features and the best pipeline configs an
/// offline search found. Building it is a *development-stage* cost (the
/// paper: 140 datasets x 24 h) — callers meter it accordingly.
class AsklMetaStore {
 public:
  struct Entry {
    MetaFeatures meta;
    std::vector<PipelineConfig> top_configs;
  };

  void AddEntry(Entry entry) { entries_.push_back(std::move(entry)); }
  size_t size() const { return entries_.size(); }

  /// Top configs of the repository dataset most similar to `meta`
  /// (empty if the store is empty).
  std::vector<PipelineConfig> WarmStartConfigs(const MetaFeatures& meta,
                                               size_t max_configs) const;

  /// Builds a store by running short random searches over `corpus`,
  /// charging everything to `ctx` (attach a development-stage meter).
  static Result<AsklMetaStore> BuildFromCorpus(
      const std::vector<Dataset>& corpus, int evals_per_dataset,
      uint64_t seed, ExecutionContext* ctx);

 private:
  std::vector<Entry> entries_;
};

/// AutoSklearn 1 & 2: Bayesian optimization over data/feature
/// preprocessors + models, Caruana ensembling of the top evaluated
/// pipelines. Version 2 warm-starts BO from the meta store. The ensemble
/// weighting step runs AFTER the search deadline (the paper's Table 7:
/// ASKL's actual runtime exceeds the budget the most, growing with
/// validation size).
struct AsklParams {
  bool warm_start = false;          ///< true = ASKL 2.
  int ensemble_size = 50;           ///< Library size eligible for Caruana.
  int caruana_rounds = 15;
  int num_initial_random = 8;
  double holdout_fraction = 0.33;
};

class AsklSystem : public AutoMlSystem {
 public:
  AsklSystem(const AsklParams& params, const AsklMetaStore* meta_store)
      : params_(params), meta_store_(meta_store) {}

  std::string Name() const override {
    return params_.warm_start ? "autosklearn2" : "autosklearn1";
  }
  double MinBudgetSeconds() const override { return 30.0; }
  BudgetPolicyKind budget_policy() const override {
    return BudgetPolicyKind::kEnsemblingNotCounted;
  }

  Result<AutoMlRunResult> Fit(const Dataset& train,
                              const AutoMlOptions& options,
                              ExecutionContext* ctx) override;

 private:
  AsklParams params_;
  const AsklMetaStore* meta_store_;  // Not owned; may be null (ASKL 1).
};

}  // namespace green

#endif  // GREEN_AUTOML_ASKL_SYSTEM_H_
