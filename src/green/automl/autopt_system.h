#ifndef GREEN_AUTOML_AUTOPT_SYSTEM_H_
#define GREEN_AUTOML_AUTOPT_SYSTEM_H_

#include <string>

#include "green/automl/automl_system.h"

namespace green {

/// Auto-PyTorch-style neural AutoML: a JOINT search over MLP architecture
/// (hidden width) and training hyperparameters (epochs, learning rate,
/// input scaling), pruned by multi-fidelity successive halving where the
/// fidelity axis is the training-epoch budget. Every arm is a full
/// pipeline config, so the search space is the cross product the
/// Auto-PyTorch papers advocate instead of tuning architecture and
/// hyperparameters in separate phases. Task-agnostic: the underlying MLP
/// fits classification heads and (standardized-target) regression alike,
/// which makes this the reference system for the TaskType plumbing.
struct AutoPtParams {
  double holdout_fraction = 0.33;
  /// Arms sampled for the halving ladder (eta^(rungs-1) keeps one).
  int num_arms = 9;
  int num_rungs = 3;
  double eta = 3.0;
  /// Epoch fraction at the lowest rung of the ladder.
  double min_budget_fraction = 0.111;
  /// Retrain the winning config on train+validation at full fidelity.
  bool refit = true;
};

class AutoPtSystem : public AutoMlSystem {
 public:
  AutoPtSystem() : AutoPtSystem(AutoPtParams{}) {}
  explicit AutoPtSystem(const AutoPtParams& params) : params_(params) {}

  std::string Name() const override { return "autopt"; }
  BudgetPolicyKind budget_policy() const override {
    return BudgetPolicyKind::kFinishLastEvaluation;
  }

  Result<AutoMlRunResult> Fit(const Dataset& train,
                              const AutoMlOptions& options,
                              ExecutionContext* ctx) override;

 private:
  AutoPtParams params_;
};

}  // namespace green

#endif  // GREEN_AUTOML_AUTOPT_SYSTEM_H_
