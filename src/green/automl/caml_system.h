#ifndef GREEN_AUTOML_CAML_SYSTEM_H_
#define GREEN_AUTOML_CAML_SYSTEM_H_

#include <string>
#include <vector>

#include "green/automl/automl_system.h"
#include "green/automl/search_model_space.h"

namespace green {

/// The tunable "AutoML system parameters" of CAML — exactly the knobs the
/// paper's development-stage optimizer searches (§3.7 lists them: search
/// space design, hold-out fraction, evaluation fraction, sampling, refit,
/// random validation splitting, incremental training).
struct CamlParams {
  /// Model families admitted to the search space (search-space design).
  std::vector<std::string> models = {
      "decision_tree", "random_forest",       "extra_trees",
      "gradient_boosting", "logistic_regression", "knn",
      "naive_bayes",    "mlp"};
  /// Hold-out validation fraction.
  double holdout_fraction = 0.33;
  /// Maximum fraction of the total budget one evaluation may take before
  /// it is preemptively skipped ("evaluation fraction").
  double evaluation_fraction = 0.1;
  /// If < 1, the AutoML run trains on a row subsample of this fraction.
  double sampling_fraction = 1.0;
  /// Refit the final pipeline on train+validation before returning.
  bool refit = true;
  /// Draw a fresh validation split for every BO iteration (reduces
  /// validation overfitting).
  bool random_validation_split = false;
  /// Grow the training set successive-halving-style (10 instances per
  /// class upward), abandoning configurations that fall behind.
  bool incremental_training = true;
  /// Random BO warm-up evaluations.
  int num_initial_random = 10;
  /// §3.8 (early stopping): end the search after this many consecutive
  /// evaluations without validation improvement; 0 disables. Saves the
  /// energy the paper shows is wasted once small datasets start
  /// overfitting (Table 6).
  int early_stopping_patience = 0;
  /// §1 / [47] (CO2-aware objective): subtract
  /// energy_weight * log10(1 + inference FLOPs/row) / 6 from each
  /// candidate's validation score, steering BO toward pipelines that are
  /// cheap to serve; 0 disables. CAML's Pareto-oriented design ships a
  /// mild default — near-tied candidates resolve toward the cheaper
  /// pipeline (the paper's Table 4: CAML "chooses small models").
  double energy_weight = 0.08;
};

/// CAML: Bayesian optimization + successive halving + first-class ML
/// application constraints, strict budget adherence, single-pipeline
/// output (Table 1 row "CAML").
class CamlSystem : public AutoMlSystem {
 public:
  CamlSystem() : CamlSystem(CamlParams{}, "caml") {}
  CamlSystem(const CamlParams& params, std::string name)
      : params_(params), name_(std::move(name)) {}

  std::string Name() const override { return name_; }
  BudgetPolicyKind budget_policy() const override {
    return BudgetPolicyKind::kStrict;
  }

  Result<AutoMlRunResult> Fit(const Dataset& train,
                              const AutoMlOptions& options,
                              ExecutionContext* ctx) override;

  const CamlParams& params() const { return params_; }

 private:
  CamlParams params_;
  std::string name_;
};

}  // namespace green

#endif  // GREEN_AUTOML_CAML_SYSTEM_H_
