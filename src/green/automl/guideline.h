#ifndef GREEN_AUTOML_GUIDELINE_H_
#define GREEN_AUTOML_GUIDELINE_H_

#include <string>

namespace green {

/// Inputs to the paper's Fig. 8 decision flowchart.
struct GuidelineQuery {
  /// Access to large CPU resources for > a week AND thousands of planned
  /// AutoML executions (the amortization precondition of §3.7).
  bool has_development_resources = false;
  int planned_executions = 1;
  double search_budget_seconds = 60.0;
  int num_classes = 2;
  bool gpu_available = false;

  enum class Priority { kFastInference, kAccuracy, kParetoOptimal };
  Priority priority = Priority::kParetoOptimal;
};

/// Outcome: which system to use and why.
struct GuidelineRecommendation {
  std::string system;     ///< e.g. "caml_tuned", "tabpfn", "autogluon".
  std::string rationale;  ///< One-sentence justification from the paper.
};

/// The number of executions after which tuning the AutoML system
/// parameters amortizes (the paper's §3.7 measures ~885 runs).
constexpr int kAmortizationRuns = 885;

/// TabPFN's supported class limit; beyond it the flowchart picks CAML
/// for small budgets.
constexpr int kTabPfnClassLimit = 10;

/// Evaluates the flowchart.
GuidelineRecommendation RecommendSystem(const GuidelineQuery& query);

/// Renders the full decision tree as ASCII (the Fig. 8 reproduction).
std::string RenderGuidelineChart();

}  // namespace green

#endif  // GREEN_AUTOML_GUIDELINE_H_
