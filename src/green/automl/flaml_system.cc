#include "green/automl/flaml_system.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "green/common/logging.h"
#include "green/table/split.h"

namespace green {

namespace {

/// Learner ladder, cheapest first, with FLAML-style low-cost starting
/// points (e.g. "a random forest with 5 trees and at most 10 leaves").
struct Rung {
  const char* model;
  std::map<std::string, double> start_params;
};

const std::vector<Rung>& LearnerLadder() {
  static const std::vector<Rung>* kLadder = new std::vector<Rung>{
      {"naive_bayes", {}},
      {"decision_tree", {{"max_depth", 4}}},
      {"logistic_regression", {{"epochs", 8}}},
      {"extra_trees", {{"num_trees", 5}, {"max_depth", 4}}},
      {"random_forest", {{"num_trees", 5}, {"max_depth", 4}}},
      {"gradient_boosting",
       {{"num_rounds", 8}, {"max_depth", 2}, {"learning_rate", 0.2}}},
  };
  return *kLadder;
}

/// Local hyperparameter mutation: multiplicative jitter on the current
/// numeric parameters (FLAML's randomized directional search, reduced to
/// its cost-aware essence).
std::map<std::string, double> Mutate(
    const std::map<std::string, double>& params, Rng* rng,
    bool toward_complexity) {
  std::map<std::string, double> out = params;
  for (auto& [key, value] : out) {
    double factor = std::exp(rng->NextGaussian() * 0.25);
    if (toward_complexity && (key == "num_trees" || key == "max_depth" ||
                              key == "num_rounds" || key == "epochs")) {
      factor = std::max(factor, 1.0 + rng->NextDouble());
    }
    double v = value * factor;
    if (key == "max_depth") v = std::clamp(v, 2.0, 16.0);
    if (key == "num_trees") v = std::clamp(v, 3.0, 64.0);
    if (key == "num_rounds") v = std::clamp(v, 4.0, 80.0);
    if (key == "epochs") v = std::clamp(v, 4.0, 60.0);
    if (key == "learning_rate") v = std::clamp(v, 0.02, 0.5);
    out[key] = v;
  }
  return out;
}

}  // namespace

Result<AutoMlRunResult> FlamlSystem::Fit(const Dataset& train,
                                         const AutoMlOptions& options,
                                         ExecutionContext* ctx) {
  if (train.num_rows() < 4) {
    return Status::InvalidArgument("flaml: too few rows");
  }
  if (ctx->Cancelled()) {
    return Status::DeadlineExceeded("flaml: cancelled before start");
  }
  EnergyMeter meter(ctx->model());
  ScopedMeter scope(ctx, &meter);
  ChargeScope sys_scope(ctx, Name());
  const double start = ctx->Now();
  const double deadline = start + options.search_budget_seconds;
  ctx->SetDeadline(deadline);
  const BudgetPolicy policy(budget_policy());

  Rng rng(options.seed);
  TrainTestIndices split =
      SplitForTask(train, 1.0 - params_.holdout_fraction, &rng);
  TrainTestData holdout = Materialize(train, split);

  // Regression drops the ladder rungs whose learners cannot fit it
  // (e.g. naive_bayes); classification keeps the full ladder verbatim.
  std::vector<Rung> ladder;
  for (const Rung& rung : LearnerLadder()) {
    if (ModelSupportsTask(rung.model, train.task())) {
      ladder.push_back(rung);
    }
  }

  AutoMlRunResult result;
  result.configured_budget_seconds = options.search_budget_seconds;

  // Wide-data feature pruning: enabled automatically for very wide
  // tasks, carried by every candidate pipeline.
  const bool prune_features =
      train.num_features() >
      static_cast<size_t>(params_.wide_data_feature_cap);

  size_t ladder_index = 0;
  size_t sample_size =
      std::min(params_.initial_sample, holdout.train.num_rows());
  std::map<std::string, double> current_params = ladder[0].start_params;

  std::shared_ptr<Pipeline> best_pipeline;
  double best_score = -std::numeric_limits<double>::infinity();
  double best_cost = 0.0;
  int stall = 0;
  int iteration = 0;

  {
  ChargeScope search_scope(ctx, "search");
  while (policy.MayStartEvaluation(ctx->Now(), deadline, 0.0)) {
    if (ctx->Cancelled()) {
      ctx->ClearDeadline();
      return Status::DeadlineExceeded("flaml: cancelled mid-search");
    }
    const Rung& rung = ladder[ladder_index];
    PipelineConfig config;
    config.model = rung.model;
    config.params = iteration == 0
                        ? rung.start_params
                        : Mutate(current_params, &rng,
                                 /*toward_complexity=*/stall > 0);
    config.scaler = "standard";
    if (prune_features) {
      config.select_k_best = params_.wide_data_feature_cap;
    }
    config.seed = HashCombine(options.seed, iteration + 1);
    ++iteration;

    Dataset stage =
        sample_size < holdout.train.num_rows()
            ? holdout.train.Subset(
                  SampleRows(holdout.train, sample_size, &rng))
            : holdout.train;
    auto evaluated = TrainAndScore(config, stage, holdout.test, ctx);
    if (!evaluated.ok()) continue;
    ++result.pipelines_evaluated;

    const double score = evaluated.value().val_score;
    const double cost =
        evaluated.value().pipeline->InferenceFlopsPerRow(
            train.num_features());
    // Accept if better, or equal quality at lower inference cost.
    const bool improved =
        score > best_score + 1e-9 ||
        (score > best_score - 1e-9 && cost < best_cost);
    if (improved) {
      best_score = score;
      best_cost = cost;
      best_pipeline = evaluated.value().pipeline;
      current_params = config.params;
      stall = 0;
    } else {
      ++stall;
    }

    // Escalation: first grow the sample, then move up the ladder.
    if (stall >= params_.patience) {
      stall = 0;
      if (sample_size < holdout.train.num_rows()) {
        sample_size = std::min(
            holdout.train.num_rows(),
            static_cast<size_t>(static_cast<double>(sample_size) *
                                params_.sample_growth));
      } else if (ladder_index + 1 < ladder.size()) {
        ++ladder_index;
        current_params = ladder[ladder_index].start_params;
      }
    }
  }
  }

  if (best_pipeline == nullptr) {
    ChargeScope phase(ctx, "fallback");
    PipelineConfig fallback;
    fallback.model = train.task() == TaskType::kRegression
                         ? "decision_tree"
                         : "naive_bayes";
    fallback.seed = options.seed;
    GREEN_ASSIGN_OR_RETURN(
        EvaluatedPipeline evaluated,
        TrainAndScore(fallback, holdout.train, holdout.test, ctx));
    best_pipeline = evaluated.pipeline;
    best_score = evaluated.val_score;
    ++result.pipelines_evaluated;
  }

  ctx->ClearDeadline();
  result.artifact = FittedArtifact::Single(best_pipeline);
  result.best_validation_score = best_score;
  result.execution = scope.Stop();
  result.actual_seconds = ctx->Now() - start;
  return result;
}

}  // namespace green
