#ifndef GREEN_SEARCH_SUCCESSIVE_HALVING_H_
#define GREEN_SEARCH_SUCCESSIVE_HALVING_H_

#include <functional>
#include <vector>

#include "green/common/status.h"

namespace green {

/// Successive halving over a fixed set of arms (CAML's pruning device):
/// all arms are evaluated at the smallest budget; the best 1/eta fraction
/// advances to the next budget level, and so on. Evaluation receives
/// (arm index, budget level, budget fraction) and returns a score or an
/// error (errors eliminate the arm).
struct SuccessiveHalvingOptions {
  int num_rungs = 3;
  double eta = 3.0;              ///< Keep top 1/eta per rung.
  double min_fraction = 0.111;   ///< Budget fraction at the lowest rung.
};

struct SuccessiveHalvingResult {
  int best_arm = -1;
  double best_score = -1e300;
  /// Arms still alive after the last rung, best first.
  std::vector<int> survivors;
  int evaluations = 0;
};

SuccessiveHalvingResult SuccessiveHalving(
    int num_arms, const SuccessiveHalvingOptions& options,
    const std::function<Result<double>(int arm, int rung,
                                       double budget_fraction)>& evaluate,
    const std::function<bool()>& should_stop = nullptr);

}  // namespace green

#endif  // GREEN_SEARCH_SUCCESSIVE_HALVING_H_
