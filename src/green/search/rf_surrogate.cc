#include "green/search/rf_surrogate.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace green {

double RfSurrogate::Fit(const std::vector<std::vector<double>>& x,
                        const std::vector<double>& y) {
  trees_.clear();
  if (x.empty() || x.size() != y.size()) return 0.0;
  Rng rng(options_.seed);
  double work = 0.0;
  for (int t = 0; t < options_.num_trees; ++t) {
    Rng tree_rng = rng.Fork();
    // Bootstrap sample.
    std::vector<size_t> rows(x.size());
    for (size_t& r : rows) {
      r = static_cast<size_t>(tree_rng.NextBounded(x.size()));
    }
    Tree tree;
    BuildNode(x, y, &rows, 0, &tree, &tree_rng, &work);
    trees_.push_back(std::move(tree));
  }
  return work;
}

int RfSurrogate::BuildNode(const std::vector<std::vector<double>>& x,
                           const std::vector<double>& y,
                           std::vector<size_t>* rows, int depth,
                           Tree* tree, Rng* rng, double* work) {
  const int node_index = static_cast<int>(tree->size());
  tree->emplace_back();

  const double n = static_cast<double>(rows->size());
  double sum = 0.0;
  for (size_t r : *rows) sum += y[r];
  const double mean = n > 0 ? sum / n : 0.0;
  *work += n;

  const bool stop =
      depth >= options_.max_depth ||
      rows->size() < 2 * static_cast<size_t>(options_.min_samples_leaf);
  if (!stop && !x.empty()) {
    const size_t d = x[0].size();
    // A handful of random (feature, threshold) probes; keep the best by
    // variance reduction — extra-trees style.
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_gain = 1e-12;
    for (int probe = 0; probe < 8; ++probe) {
      const size_t f = static_cast<size_t>(rng->NextBounded(d));
      double lo = 1e300;
      double hi = -1e300;
      for (size_t r : *rows) {
        lo = std::min(lo, x[r][f]);
        hi = std::max(hi, x[r][f]);
      }
      if (hi - lo <= 1e-12) continue;
      const double thr = rng->NextUniform(lo, hi);
      double left_sum = 0.0;
      double left_n = 0.0;
      for (size_t r : *rows) {
        if (x[r][f] <= thr) {
          left_sum += y[r];
          left_n += 1.0;
        }
      }
      *work += 2.0 * n;
      const double right_n = n - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double gain = left_sum * left_sum / left_n +
                          right_sum * right_sum / right_n - sum * sum / n;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
    }
    if (best_feature >= 0) {
      std::vector<size_t> left_rows;
      std::vector<size_t> right_rows;
      for (size_t r : *rows) {
        (x[r][static_cast<size_t>(best_feature)] <= best_threshold
             ? left_rows
             : right_rows)
            .push_back(r);
      }
      rows->clear();
      const int left =
          BuildNode(x, y, &left_rows, depth + 1, tree, rng, work);
      const int right =
          BuildNode(x, y, &right_rows, depth + 1, tree, rng, work);
      Node& node = (*tree)[static_cast<size_t>(node_index)];
      node.feature = best_feature;
      node.threshold = best_threshold;
      node.left = left;
      node.right = right;
      return node_index;
    }
  }
  (*tree)[static_cast<size_t>(node_index)].value = mean;
  return node_index;
}

double RfSurrogate::PredictTree(const Tree& tree,
                                const std::vector<double>& x) {
  int idx = 0;
  for (;;) {
    const Node& node = tree[static_cast<size_t>(idx)];
    if (node.feature < 0) return node.value;
    idx = x[static_cast<size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
}

RfSurrogate::Prediction RfSurrogate::Predict(
    const std::vector<double>& x) const {
  Prediction out;
  if (trees_.empty()) return out;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const Tree& tree : trees_) {
    const double v = PredictTree(tree, x);
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(trees_.size());
  out.mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - out.mean * out.mean);
  out.stddev = std::sqrt(var);
  return out;
}

double RfSurrogate::ExpectedImprovement(const std::vector<double>& x,
                                        double best_so_far) const {
  const Prediction p = Predict(x);
  if (p.stddev < 1e-12) return std::max(0.0, p.mean - best_so_far);
  const double z = (p.mean - best_so_far) / p.stddev;
  // EI = sigma * (z * Phi(z) + phi(z)).
  const double phi = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  return p.stddev * (z * cdf + phi);
}

}  // namespace green
