#include "green/search/random_search.h"

namespace green {

RandomSearchResult RandomSearch(
    const ParamSpace& space, int max_evaluations, Rng* rng,
    const std::function<Result<double>(const ParamPoint&)>& evaluate,
    const std::function<bool()>& should_stop) {
  RandomSearchResult result;
  for (int i = 0; i < max_evaluations; ++i) {
    if (should_stop && should_stop()) break;
    ParamPoint point = space.Sample(rng);
    Result<double> score = evaluate(point);
    if (!score.ok()) continue;
    ++result.evaluations;
    if (score.value() > result.best_score) {
      result.best_score = score.value();
      result.best = std::move(point);
    }
  }
  return result;
}

}  // namespace green
