#ifndef GREEN_SEARCH_PARAM_SPACE_H_
#define GREEN_SEARCH_PARAM_SPACE_H_

#include <map>
#include <string>
#include <vector>

#include "green/common/rng.h"
#include "green/common/status.h"

namespace green {

/// One tunable dimension.
struct ParamSpec {
  enum class Kind { kDouble, kInt, kCategorical };

  std::string name;
  Kind kind = Kind::kDouble;
  double lo = 0.0;    ///< For double/int kinds.
  double hi = 1.0;
  bool log_scale = false;
  std::vector<std::string> categories;  ///< For kCategorical.

  static ParamSpec Double(std::string name, double lo, double hi,
                          bool log_scale = false);
  static ParamSpec Int(std::string name, int lo, int hi,
                       bool log_scale = false);
  static ParamSpec Categorical(std::string name,
                               std::vector<std::string> categories);
};

/// A point in the space, both as raw unit-cube coordinates (what
/// surrogates and genetic operators manipulate) and as decoded values.
struct ParamPoint {
  std::vector<double> unit;  ///< One coordinate in [0,1] per dimension.

  /// Decoded views, filled by ParamSpace::Decode.
  std::map<std::string, double> values;       ///< Double + int params.
  std::map<std::string, std::string> choices; ///< Categorical params.
};

/// An ordered collection of ParamSpecs with unit-cube encode/decode.
/// All search strategies in this library (random, BO, NSGA-II, the
/// AutoML-parameter tuner) operate on the same representation.
class ParamSpace {
 public:
  void Add(ParamSpec spec);

  size_t dimension() const { return specs_.size(); }
  const std::vector<ParamSpec>& specs() const { return specs_; }

  /// Uniform sample in the unit cube, decoded.
  ParamPoint Sample(Rng* rng) const;

  /// Decodes unit coordinates into parameter values. The unit vector's
  /// size must equal dimension().
  Result<ParamPoint> Decode(const std::vector<double>& unit) const;

  /// Index of a named spec, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

 private:
  std::vector<ParamSpec> specs_;
};

}  // namespace green

#endif  // GREEN_SEARCH_PARAM_SPACE_H_
