#ifndef GREEN_SEARCH_KMEANS_H_
#define GREEN_SEARCH_KMEANS_H_

#include <vector>

#include "green/common/rng.h"
#include "green/common/status.h"

namespace green {

/// Plain K-Means (k-means++ init, Lloyd iterations). The paper's
/// development-stage optimizer clusters dataset meta-features with it and
/// tunes on the datasets closest to each centroid (Fig. 2).
struct KMeansOptions {
  int k = 8;
  int max_iterations = 50;
  uint64_t seed = 1;
};

struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<int> assignment;  ///< Cluster index per input point.
  double inertia = 0.0;         ///< Sum of squared distances to centroids.
  int iterations = 0;
};

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansOptions& options);

/// Index of the input point closest to each centroid (the "most
/// representative datasets"), deduplicated, in centroid order.
std::vector<size_t> ClosestPointPerCentroid(
    const std::vector<std::vector<double>>& points,
    const KMeansResult& clustering);

}  // namespace green

#endif  // GREEN_SEARCH_KMEANS_H_
