#include "green/search/bayes_opt.h"

#include "green/common/logging.h"

namespace green {

BayesOpt::BayesOpt(const ParamSpace* space, const Options& options)
    : space_(space),
      options_(options),
      rng_(options.seed),
      surrogate_([&] {
        RfSurrogate::Options o = options.surrogate;
        o.seed = HashCombine(options.seed, 0x50f7);
        return o;
      }()) {
  GREEN_CHECK(space_ != nullptr);
}

ParamPoint BayesOpt::Ask() {
  if (num_observations() < options_.num_initial_random ||
      !surrogate_.fitted()) {
    return space_->Sample(&rng_);
  }
  // Optimize EI by candidate sampling: cheap, derivative-free, and good
  // enough in low-dimensional pipeline spaces.
  ParamPoint best_candidate = space_->Sample(&rng_);
  double best_ei =
      surrogate_.ExpectedImprovement(best_candidate.unit, best_score_);
  for (int i = 1; i < options_.candidates_per_ask; ++i) {
    ParamPoint candidate = space_->Sample(&rng_);
    const double ei =
        surrogate_.ExpectedImprovement(candidate.unit, best_score_);
    if (ei > best_ei) {
      best_ei = ei;
      best_candidate = std::move(candidate);
    }
  }
  return best_candidate;
}

double BayesOpt::Tell(const ParamPoint& point, double score) {
  xs_.push_back(point.unit);
  ys_.push_back(score);
  if (score > best_score_) {
    best_score_ = score;
    best_point_ = point;
  }
  ++tells_since_refit_;
  double work = 0.0;
  if (num_observations() >= options_.num_initial_random &&
      tells_since_refit_ >= options_.refit_every) {
    work = surrogate_.Fit(xs_, ys_);
    tells_since_refit_ = 0;
  }
  return work;
}

double BayesOpt::TellMany(const std::vector<ParamPoint>& points,
                          const std::vector<double>& scores) {
  GREEN_CHECK(points.size() == scores.size());
  double work = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    xs_.push_back(points[i].unit);
    ys_.push_back(scores[i]);
    if (scores[i] > best_score_) {
      best_score_ = scores[i];
      best_point_ = points[i];
    }
  }
  if (!xs_.empty()) work = surrogate_.Fit(xs_, ys_);
  tells_since_refit_ = 0;
  return work;
}

}  // namespace green
