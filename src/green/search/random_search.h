#ifndef GREEN_SEARCH_RANDOM_SEARCH_H_
#define GREEN_SEARCH_RANDOM_SEARCH_H_

#include <functional>

#include "green/search/param_space.h"

namespace green {

/// The baseline every AutoML comparison needs: i.i.d. uniform sampling of
/// the search space. `evaluate` returns the score of a point (higher is
/// better) or an error status to skip it; the loop stops after
/// `max_evaluations` or when `should_stop` fires (budget exhaustion).
struct RandomSearchResult {
  ParamPoint best;
  double best_score = -1e300;
  int evaluations = 0;
};

RandomSearchResult RandomSearch(
    const ParamSpace& space, int max_evaluations, Rng* rng,
    const std::function<Result<double>(const ParamPoint&)>& evaluate,
    const std::function<bool()>& should_stop = nullptr);

}  // namespace green

#endif  // GREEN_SEARCH_RANDOM_SEARCH_H_
