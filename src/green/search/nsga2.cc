#include "green/search/nsga2.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "green/common/mathutil.h"

namespace green {

namespace {

/// True if a dominates b (all objectives >=, at least one >).
bool Dominates(const Nsga2Individual& a, const Nsga2Individual& b) {
  bool strictly_better = false;
  for (size_t i = 0; i < a.objectives.size(); ++i) {
    if (a.objectives[i] < b.objectives[i]) return false;
    if (a.objectives[i] > b.objectives[i]) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace

std::vector<std::vector<size_t>> NonDominatedSort(
    std::vector<Nsga2Individual>* population) {
  const size_t n = population->size();
  std::vector<std::vector<size_t>> dominated(n);
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<size_t>> fronts;
  std::vector<size_t> current;

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (Dominates((*population)[i], (*population)[j])) {
        dominated[i].push_back(j);
      } else if (Dominates((*population)[j], (*population)[i])) {
        ++domination_count[i];
      }
    }
    if (domination_count[i] == 0) {
      (*population)[i].rank = 0;
      current.push_back(i);
    }
  }
  int rank = 0;
  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<size_t> next;
    for (size_t i : current) {
      for (size_t j : dominated[i]) {
        if (--domination_count[j] == 0) {
          (*population)[j].rank = rank + 1;
          next.push_back(j);
        }
      }
    }
    current = std::move(next);
    ++rank;
  }
  return fronts;
}

void AssignCrowdingDistance(const std::vector<size_t>& front,
                            std::vector<Nsga2Individual>* population) {
  if (front.empty()) return;
  const size_t m = (*population)[front[0]].objectives.size();
  for (size_t i : front) (*population)[i].crowding = 0.0;
  std::vector<size_t> order = front;
  for (size_t obj = 0; obj < m; ++obj) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*population)[a].objectives[obj] <
             (*population)[b].objectives[obj];
    });
    (*population)[order.front()].crowding =
        std::numeric_limits<double>::infinity();
    (*population)[order.back()].crowding =
        std::numeric_limits<double>::infinity();
    const double lo = (*population)[order.front()].objectives[obj];
    const double hi = (*population)[order.back()].objectives[obj];
    if (hi - lo <= 1e-15) continue;
    for (size_t i = 1; i + 1 < order.size(); ++i) {
      (*population)[order[i]].crowding +=
          ((*population)[order[i + 1]].objectives[obj] -
           (*population)[order[i - 1]].objectives[obj]) /
          (hi - lo);
    }
  }
}

Nsga2Result Nsga2(
    const ParamSpace& space, const Nsga2Options& options,
    const std::function<Result<std::vector<double>>(const ParamPoint&)>&
        evaluate,
    const std::function<bool()>& should_stop) {
  Nsga2Result result;
  Rng rng(options.seed);

  auto evaluate_unit =
      [&](const std::vector<double>& unit) -> Result<Nsga2Individual> {
    GREEN_ASSIGN_OR_RETURN(ParamPoint point, space.Decode(unit));
    GREEN_ASSIGN_OR_RETURN(std::vector<double> objectives,
                           evaluate(point));
    ++result.evaluations;
    Nsga2Individual ind;
    ind.unit = unit;
    ind.objectives = std::move(objectives);
    return ind;
  };

  // Initial random population.
  std::vector<Nsga2Individual> population;
  for (int i = 0;
       i < options.population_size &&
       !(should_stop && should_stop());
       ++i) {
    auto ind = evaluate_unit(space.Sample(&rng).unit);
    if (ind.ok()) population.push_back(std::move(ind).value());
  }
  if (population.empty()) return result;

  auto tournament = [&]() -> const Nsga2Individual& {
    const size_t a =
        static_cast<size_t>(rng.NextBounded(population.size()));
    const size_t b =
        static_cast<size_t>(rng.NextBounded(population.size()));
    const Nsga2Individual& ia = population[a];
    const Nsga2Individual& ib = population[b];
    if (ia.rank != ib.rank) return ia.rank < ib.rank ? ia : ib;
    return ia.crowding > ib.crowding ? ia : ib;
  };

  for (int gen = 0; gen < options.generations; ++gen) {
    if (should_stop && should_stop()) break;
    {
      auto fronts = NonDominatedSort(&population);
      for (const auto& front : fronts) {
        AssignCrowdingDistance(front, &population);
      }
    }
    // Offspring.
    std::vector<Nsga2Individual> offspring;
    while (offspring.size() < population.size()) {
      if (should_stop && should_stop()) break;
      std::vector<double> child = tournament().unit;
      if (rng.NextBool(options.crossover_prob)) {
        const std::vector<double>& other = tournament().unit;
        for (size_t i = 0; i < child.size(); ++i) {
          if (rng.NextBool(0.5)) child[i] = other[i];
        }
      }
      for (double& gene : child) {
        if (rng.NextBool(options.mutation_prob)) {
          gene = Clamp(gene + rng.NextGaussian() * options.mutation_sigma,
                       0.0, 1.0);
        }
      }
      auto ind = evaluate_unit(child);
      if (ind.ok()) offspring.push_back(std::move(ind).value());
    }
    // Environmental selection from parents + offspring.
    for (auto& ind : offspring) population.push_back(std::move(ind));
    auto fronts = NonDominatedSort(&population);
    for (const auto& front : fronts) {
      AssignCrowdingDistance(front, &population);
    }
    std::vector<Nsga2Individual> next;
    for (const auto& front : fronts) {
      if (next.size() >= static_cast<size_t>(options.population_size)) {
        break;
      }
      std::vector<size_t> sorted = front;
      std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
        return population[a].crowding > population[b].crowding;
      });
      for (size_t i : sorted) {
        if (next.size() >= static_cast<size_t>(options.population_size)) {
          break;
        }
        next.push_back(population[i]);
      }
    }
    population = std::move(next);
  }

  {
    auto fronts = NonDominatedSort(&population);
    for (const auto& front : fronts) {
      AssignCrowdingDistance(front, &population);
    }
  }
  std::sort(population.begin(), population.end(),
            [](const Nsga2Individual& a, const Nsga2Individual& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.crowding > b.crowding;
            });
  result.population = std::move(population);
  return result;
}

}  // namespace green
