#include "green/search/caruana.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "green/common/logging.h"
#include "green/common/mathutil.h"
#include "green/ml/metrics.h"

namespace green {

namespace {

double ScoreBlend(const std::vector<std::vector<double>>& blended,
                  const std::vector<int>& val_labels, int num_classes) {
  std::vector<int> preds(blended.size());
  for (size_t i = 0; i < blended.size(); ++i) {
    preds[i] = static_cast<int>(ArgMax(blended[i]));
  }
  return BalancedAccuracy(val_labels, preds, num_classes);
}

/// The greedy loop itself, parameterized over a higher-is-better blend
/// scorer so classification (balanced accuracy) and regression (-RMSE,
/// which is negative — hence the -inf initializers) share one
/// implementation.
CaruanaResult GreedySelect(
    const std::vector<ProbaMatrix>& library_proba, size_t n,
    int num_classes, const CaruanaOptions& options,
    const std::function<double(const ProbaMatrix&)>& score_blend) {
  CaruanaResult result;
  const size_t m = library_proba.size();
  if (m == 0 || n == 0) return result;
  for (const auto& proba : library_proba) {
    GREEN_CHECK(proba.size() == n);
  }

  result.weights.assign(m, 0.0);
  std::vector<int> counts(m, 0);
  int total = 0;

  // Running sum of selected members' probabilities.
  ProbaMatrix sum(n,
                  std::vector<double>(static_cast<size_t>(num_classes),
                                      0.0));
  ProbaMatrix trial = sum;
  double best_score = -std::numeric_limits<double>::infinity();

  for (int round = 0; round < options.max_rounds; ++round) {
    int best_member = -1;
    double best_round_score = -std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < m; ++j) {
      // trial = (sum + library[j]) / (total + 1): evaluate incremental add.
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < trial[i].size(); ++c) {
          trial[i][c] = (sum[i][c] + library_proba[j][i][c]) /
                        static_cast<double>(total + 1);
        }
      }
      const double score = score_blend(trial);
      result.work += static_cast<double>(n) *
                     static_cast<double>(num_classes) * 2.0;
      if (score > best_round_score) {
        best_round_score = score;
        best_member = static_cast<int>(j);
      }
    }
    if (best_member < 0) break;
    if (options.stop_on_plateau && best_round_score <= best_score &&
        round > 0) {
      break;
    }
    best_score = std::max(best_score, best_round_score);
    ++counts[static_cast<size_t>(best_member)];
    ++total;
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < sum[i].size(); ++c) {
        sum[i][c] += library_proba[static_cast<size_t>(best_member)][i][c];
      }
    }
    ++result.rounds_used;
  }

  if (total == 0) {
    // Degenerate: fall back to the single best member.
    result.weights[0] = 1.0;
    result.validation_score = score_blend(library_proba[0]);
    return result;
  }
  for (size_t j = 0; j < m; ++j) {
    result.weights[j] =
        static_cast<double>(counts[j]) / static_cast<double>(total);
  }
  result.validation_score = best_score;
  return result;
}

}  // namespace

CaruanaResult CaruanaEnsembleSelection(
    const std::vector<ProbaMatrix>& library_proba,
    const std::vector<int>& val_labels, int num_classes,
    const CaruanaOptions& options) {
  return GreedySelect(
      library_proba, val_labels.size(), num_classes, options,
      [&](const ProbaMatrix& blended) {
        return ScoreBlend(blended, val_labels, num_classes);
      });
}

CaruanaResult CaruanaEnsembleSelection(
    const std::vector<ProbaMatrix>& library_proba, const Dataset& val_data,
    const CaruanaOptions& options) {
  return GreedySelect(library_proba, val_data.num_rows(),
                      val_data.num_classes(), options,
                      [&](const ProbaMatrix& blended) {
                        return PrimaryScore(val_data, blended);
                      });
}

ProbaMatrix BlendProba(const std::vector<ProbaMatrix>& library_proba,
                       const std::vector<double>& weights) {
  ProbaMatrix out;
  GREEN_CHECK(library_proba.size() == weights.size());
  if (library_proba.empty()) return out;
  const size_t n = library_proba[0].size();
  const size_t k = n > 0 ? library_proba[0][0].size() : 0;
  out.assign(n, std::vector<double>(k, 0.0));
  for (size_t j = 0; j < library_proba.size(); ++j) {
    if (weights[j] <= 0.0) continue;
    GREEN_CHECK(library_proba[j].size() == n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < k; ++c) {
        out[i][c] += weights[j] * library_proba[j][i][c];
      }
    }
  }
  return out;
}

}  // namespace green
