#ifndef GREEN_SEARCH_MEDIAN_PRUNER_H_
#define GREEN_SEARCH_MEDIAN_PRUNER_H_

#include <cstddef>
#include <map>
#include <vector>

namespace green {

/// Optuna-style median pruning: a trial reporting an intermediate value
/// below the median of completed trials' values at the same step is
/// stopped early. The paper's development-stage tuner (§2.5) uses this to
/// kill poor AutoML-parameter settings after only a few datasets.
class MedianPruner {
 public:
  /// Trials report intermediate values (higher = better) at integer steps.
  /// Returns true if the trial should be pruned at this step.
  bool ShouldPrune(int step, double value) const;

  /// Records an intermediate value of a still-running trial.
  void ReportIntermediate(int step, double value);

  /// Number of completed observations at `step`.
  size_t NumObservations(int step) const;

  /// Minimum completed trials at a step before pruning activates.
  void set_min_trials(int min_trials) { min_trials_ = min_trials; }

 private:
  std::map<int, std::vector<double>> history_;
  int min_trials_ = 3;
};

}  // namespace green

#endif  // GREEN_SEARCH_MEDIAN_PRUNER_H_
