#include "green/search/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "green/common/mathutil.h"

namespace green {

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansOptions& options) {
  if (points.empty()) return Status::InvalidArgument("kmeans: no points");
  if (options.k <= 0) return Status::InvalidArgument("kmeans: k <= 0");
  const size_t n = points.size();
  const size_t d = points[0].size();
  for (const auto& p : points) {
    if (p.size() != d) {
      return Status::InvalidArgument("kmeans: ragged input");
    }
  }
  const size_t k = std::min<size_t>(static_cast<size_t>(options.k), n);

  Rng rng(options.seed);
  KMeansResult result;

  // k-means++ seeding.
  result.centroids.push_back(
      points[static_cast<size_t>(rng.NextBounded(n))]);
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(
          min_dist[i], SquaredDistance(points[i], result.centroids.back()));
      total += min_dist[i];
    }
    if (total <= 1e-15) break;  // All points coincide with centroids.
    double target = rng.NextDouble() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      target -= min_dist[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  // Lloyd iterations.
  result.assignment.assign(n, 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < result.centroids.size(); ++c) {
        const double dist = SquaredDistance(points[i], result.centroids[c]);
        if (dist < best) {
          best = dist;
          best_c = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    std::vector<std::vector<double>> sums(result.centroids.size(),
                                          std::vector<double>(d, 0.0));
    std::vector<int> counts(result.centroids.size(), 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(result.assignment[i]);
      ++counts[c];
      for (size_t j = 0; j < d; ++j) sums[c][j] += points[i][j];
    }
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      if (counts[c] == 0) continue;  // Keep empty centroids in place.
      for (size_t j = 0; j < d; ++j) {
        result.centroids[c][j] =
            sums[c][j] / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(
        points[i],
        result.centroids[static_cast<size_t>(result.assignment[i])]);
  }
  return result;
}

std::vector<size_t> ClosestPointPerCentroid(
    const std::vector<std::vector<double>>& points,
    const KMeansResult& clustering) {
  std::vector<size_t> out;
  for (const auto& centroid : clustering.centroids) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      const double dist = SquaredDistance(points[i], centroid);
      if (dist < best) {
        best = dist;
        best_i = i;
      }
    }
    if (std::find(out.begin(), out.end(), best_i) == out.end()) {
      out.push_back(best_i);
    }
  }
  return out;
}

}  // namespace green
