#include "green/search/median_pruner.h"

#include "green/common/mathutil.h"

namespace green {

bool MedianPruner::ShouldPrune(int step, double value) const {
  auto it = history_.find(step);
  if (it == history_.end() ||
      it->second.size() < static_cast<size_t>(min_trials_)) {
    return false;
  }
  return value < Median(it->second);
}

void MedianPruner::ReportIntermediate(int step, double value) {
  history_[step].push_back(value);
}

size_t MedianPruner::NumObservations(int step) const {
  auto it = history_.find(step);
  return it == history_.end() ? 0 : it->second.size();
}

}  // namespace green
