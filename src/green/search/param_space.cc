#include "green/search/param_space.h"

#include <cmath>

#include "green/common/logging.h"
#include "green/common/mathutil.h"

namespace green {

ParamSpec ParamSpec::Double(std::string name, double lo, double hi,
                            bool log_scale) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kDouble;
  spec.lo = lo;
  spec.hi = hi;
  spec.log_scale = log_scale;
  return spec;
}

ParamSpec ParamSpec::Int(std::string name, int lo, int hi, bool log_scale) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kInt;
  spec.lo = lo;
  spec.hi = hi;
  spec.log_scale = log_scale;
  return spec;
}

ParamSpec ParamSpec::Categorical(std::string name,
                                 std::vector<std::string> categories) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kCategorical;
  spec.categories = std::move(categories);
  return spec;
}

void ParamSpace::Add(ParamSpec spec) {
  GREEN_CHECK(spec.kind != ParamSpec::Kind::kCategorical ||
              !spec.categories.empty());
  specs_.push_back(std::move(spec));
}

ParamPoint ParamSpace::Sample(Rng* rng) const {
  std::vector<double> unit(specs_.size());
  for (double& u : unit) u = rng->NextDouble();
  auto decoded = Decode(unit);
  GREEN_CHECK(decoded.ok());
  return std::move(decoded).value();
}

Result<ParamPoint> ParamSpace::Decode(
    const std::vector<double>& unit) const {
  if (unit.size() != specs_.size()) {
    return Status::InvalidArgument("unit vector dimension mismatch");
  }
  ParamPoint point;
  point.unit = unit;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const ParamSpec& spec = specs_[i];
    const double u = Clamp(unit[i], 0.0, 1.0);
    switch (spec.kind) {
      case ParamSpec::Kind::kDouble: {
        double v = 0.0;
        if (spec.log_scale) {
          const double llo = std::log(spec.lo);
          const double lhi = std::log(spec.hi);
          v = std::exp(llo + (lhi - llo) * u);
        } else {
          v = spec.lo + (spec.hi - spec.lo) * u;
        }
        point.values[spec.name] = v;
        break;
      }
      case ParamSpec::Kind::kInt: {
        double v = 0.0;
        if (spec.log_scale) {
          const double llo = std::log(spec.lo);
          const double lhi = std::log(spec.hi);
          v = std::exp(llo + (lhi - llo) * u);
        } else {
          // +1 so the upper bound is reachable with u just below 1.
          v = spec.lo + (spec.hi - spec.lo + 1.0) * u;
        }
        point.values[spec.name] =
            Clamp(std::floor(v), spec.lo, spec.hi);
        break;
      }
      case ParamSpec::Kind::kCategorical: {
        const size_t n = spec.categories.size();
        size_t idx = static_cast<size_t>(u * static_cast<double>(n));
        if (idx >= n) idx = n - 1;
        point.choices[spec.name] = spec.categories[idx];
        break;
      }
    }
  }
  return point;
}

Result<size_t> ParamSpace::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return Status::NotFound("no param named " + name);
}

}  // namespace green
