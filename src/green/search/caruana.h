#ifndef GREEN_SEARCH_CARUANA_H_
#define GREEN_SEARCH_CARUANA_H_

#include <vector>

#include "green/ml/estimator.h"

namespace green {

/// Caruana et al.'s greedy ensemble selection from a library of models —
/// the ensembling step of both AutoSklearn and AutoGluon in the paper
/// (its Observation O1 is about what this does to inference energy).
///
/// Greedily adds (with replacement) the library member whose inclusion
/// maximizes validation balanced accuracy of the probability-averaged
/// ensemble; returns per-member weights that sum to 1.
struct CaruanaOptions {
  int max_rounds = 20;
  /// Stop early when a round fails to improve the score.
  bool stop_on_plateau = true;
};

struct CaruanaResult {
  std::vector<double> weights;  ///< One per library member; sums to 1.
  double validation_score = 0.0;
  int rounds_used = 0;
  /// Abstract work performed (proportional to rounds * library size *
  /// validation predictions); callers charge this to the search stage.
  double work = 0.0;
};

/// `library_proba[m]` holds model m's probabilities on the validation
/// rows whose labels are `val_labels`. Classification-only legacy entry
/// point; greedy selection maximizes balanced accuracy.
CaruanaResult CaruanaEnsembleSelection(
    const std::vector<ProbaMatrix>& library_proba,
    const std::vector<int>& val_labels, int num_classes,
    const CaruanaOptions& options);

/// Task-aware entry point: scores blends with PrimaryScore() against
/// `val_data` (balanced accuracy, or -RMSE for regression, both
/// higher-is-better), so the same greedy loop ensembles any task.
CaruanaResult CaruanaEnsembleSelection(
    const std::vector<ProbaMatrix>& library_proba, const Dataset& val_data,
    const CaruanaOptions& options);

/// Weighted average of library probabilities on new data.
ProbaMatrix BlendProba(const std::vector<ProbaMatrix>& library_proba,
                       const std::vector<double>& weights);

}  // namespace green

#endif  // GREEN_SEARCH_CARUANA_H_
