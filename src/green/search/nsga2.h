#ifndef GREEN_SEARCH_NSGA2_H_
#define GREEN_SEARCH_NSGA2_H_

#include <functional>
#include <vector>

#include "green/search/param_space.h"

namespace green {

/// NSGA-II multi-objective genetic search over the unit hypercube — the
/// engine TPOT evolves its pipeline population with. Objectives are
/// maximized. Individuals are unit vectors decoded through the caller's
/// ParamSpace.
struct Nsga2Options {
  int population_size = 16;
  int generations = 10;
  double crossover_prob = 0.9;
  double mutation_prob = 0.2;
  double mutation_sigma = 0.15;
  uint64_t seed = 1;
};

struct Nsga2Individual {
  std::vector<double> unit;
  std::vector<double> objectives;  ///< Higher is better for all.
  int rank = 0;                    ///< Pareto front index (0 = best).
  double crowding = 0.0;
};

struct Nsga2Result {
  /// Final population, non-dominated first.
  std::vector<Nsga2Individual> population;
  int evaluations = 0;
};

/// `evaluate` maps a decoded point to the objective vector (all
/// maximized); an error status discards the individual (it is replaced by
/// a fresh random one). `should_stop` ends evolution early (budget).
Nsga2Result Nsga2(
    const ParamSpace& space, const Nsga2Options& options,
    const std::function<Result<std::vector<double>>(const ParamPoint&)>&
        evaluate,
    const std::function<bool()>& should_stop = nullptr);

/// Exposed for testing: fast non-dominated sort; fills rank fields and
/// returns the fronts (indices into `population`).
std::vector<std::vector<size_t>> NonDominatedSort(
    std::vector<Nsga2Individual>* population);

/// Exposed for testing: crowding distance within one front.
void AssignCrowdingDistance(const std::vector<size_t>& front,
                            std::vector<Nsga2Individual>* population);

}  // namespace green

#endif  // GREEN_SEARCH_NSGA2_H_
