#include "green/search/successive_halving.h"

#include <algorithm>
#include <cmath>

namespace green {

SuccessiveHalvingResult SuccessiveHalving(
    int num_arms, const SuccessiveHalvingOptions& options,
    const std::function<Result<double>(int arm, int rung,
                                       double budget_fraction)>& evaluate,
    const std::function<bool()>& should_stop) {
  SuccessiveHalvingResult result;
  std::vector<int> alive(static_cast<size_t>(std::max(0, num_arms)));
  for (size_t i = 0; i < alive.size(); ++i) alive[i] = static_cast<int>(i);

  double fraction = options.min_fraction;
  for (int rung = 0; rung < options.num_rungs && !alive.empty(); ++rung) {
    const bool last_rung = rung == options.num_rungs - 1;
    if (last_rung) fraction = 1.0;

    std::vector<std::pair<double, int>> scored;
    for (int arm : alive) {
      if (should_stop && should_stop()) {
        // Budget exhausted mid-rung: fall back to what we know.
        break;
      }
      Result<double> score = evaluate(arm, rung, std::min(1.0, fraction));
      ++result.evaluations;
      if (!score.ok()) continue;  // Errors eliminate the arm.
      scored.emplace_back(score.value(), arm);
      if (last_rung && score.value() > result.best_score) {
        result.best_score = score.value();
        result.best_arm = arm;
      }
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    if (last_rung || scored.empty()) {
      result.survivors.clear();
      for (const auto& [score, arm] : scored) {
        result.survivors.push_back(arm);
      }
      if (result.best_arm < 0 && !scored.empty()) {
        result.best_score = scored[0].first;
        result.best_arm = scored[0].second;
      }
      break;
    }

    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::floor(
               static_cast<double>(scored.size()) / options.eta)));
    alive.clear();
    for (size_t i = 0; i < keep; ++i) alive.push_back(scored[i].second);
    result.survivors = alive;
    // Provisional best in case the budget runs out before the top rung.
    if (result.best_arm < 0 || scored[0].first > result.best_score) {
      result.best_score = scored[0].first;
      result.best_arm = scored[0].second;
    }
    fraction = std::min(1.0, fraction * options.eta);
  }
  return result;
}

}  // namespace green
