#ifndef GREEN_SEARCH_BAYES_OPT_H_
#define GREEN_SEARCH_BAYES_OPT_H_

#include <vector>

#include "green/search/param_space.h"
#include "green/search/rf_surrogate.h"

namespace green {

/// Ask/tell Bayesian optimizer with a random-forest surrogate and
/// expected-improvement acquisition — the SMAC recipe behind ASKL and
/// CAML. The ask/tell split lets callers interleave budget checks,
/// successive halving, and energy accounting between proposals.
class BayesOpt {
 public:
  struct Options {
    int num_initial_random = 10;  ///< Random warm-up before the surrogate.
    int candidates_per_ask = 64;  ///< EI is optimized by candidate sampling.
    int refit_every = 1;          ///< Surrogate refit cadence (in tells).
    RfSurrogate::Options surrogate;
    uint64_t seed = 1;
  };

  BayesOpt(const ParamSpace* space, const Options& options);

  /// Next point to evaluate. The first `num_initial_random` asks are
  /// uniform; afterwards EI over sampled candidates.
  ParamPoint Ask();

  /// Reports the observed score (higher = better). Returns the abstract
  /// surrogate-fitting work performed, for the caller to charge as search
  /// overhead.
  double Tell(const ParamPoint& point, double score);

  /// Seeds the optimizer with prior observations (warm starting, the
  /// ASKL-2 meta-learning hook).
  double TellMany(const std::vector<ParamPoint>& points,
                  const std::vector<double>& scores);

  double best_score() const { return best_score_; }
  const ParamPoint& best_point() const { return best_point_; }
  int num_observations() const { return static_cast<int>(ys_.size()); }

 private:
  const ParamSpace* space_;  // Not owned.
  Options options_;
  Rng rng_;
  RfSurrogate surrogate_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  ParamPoint best_point_;
  double best_score_ = -1e300;
  int tells_since_refit_ = 0;
};

}  // namespace green

#endif  // GREEN_SEARCH_BAYES_OPT_H_
