#ifndef GREEN_SEARCH_RF_SURROGATE_H_
#define GREEN_SEARCH_RF_SURROGATE_H_

#include <vector>

#include "green/common/rng.h"

namespace green {

/// Random-forest regression surrogate over the unit hypercube — the model
/// class SMAC-style Bayesian optimization (used by ASKL and CAML in the
/// paper) fits to past (configuration, score) observations. Trees use
/// random thresholds for speed; predictive uncertainty is the variance of
/// per-tree predictions.
class RfSurrogate {
 public:
  struct Options {
    int num_trees = 24;
    int max_depth = 6;
    int min_samples_leaf = 3;
    uint64_t seed = 1;
  };

  explicit RfSurrogate(const Options& options) : options_(options) {}

  /// Fits on observations; returns abstract work performed (charged by
  /// the caller to the search stage — surrogate fitting is AutoML
  /// overhead, not model training).
  double Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y);

  /// Mean and standard deviation of the prediction at `x`.
  struct Prediction {
    double mean = 0.0;
    double stddev = 0.0;
  };
  Prediction Predict(const std::vector<double>& x) const;

  /// Expected improvement over `best_so_far` (maximization).
  double ExpectedImprovement(const std::vector<double>& x,
                             double best_so_far) const;

  bool fitted() const { return !trees_.empty(); }

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };
  using Tree = std::vector<Node>;

  int BuildNode(const std::vector<std::vector<double>>& x,
                const std::vector<double>& y, std::vector<size_t>* rows,
                int depth, Tree* tree, Rng* rng, double* work);
  static double PredictTree(const Tree& tree,
                            const std::vector<double>& x);

  Options options_;
  std::vector<Tree> trees_;
};

}  // namespace green

#endif  // GREEN_SEARCH_RF_SURROGATE_H_
