#include "green/data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "green/common/mathutil.h"
#include "green/common/stringutil.h"

namespace green {

Result<Dataset> GenerateSynthetic(const SyntheticSpec& spec) {
  if (spec.num_rows == 0 || spec.num_features == 0 ||
      spec.num_classes <= 0) {
    return Status::InvalidArgument("empty synthetic spec");
  }
  if (spec.num_rows < static_cast<size_t>(spec.num_classes)) {
    return Status::InvalidArgument(
        StrFormat("%zu rows cannot cover %d classes", spec.num_rows,
                  spec.num_classes));
  }
  const size_t informative =
      std::max<size_t>(1, std::min(spec.num_informative, spec.num_features));
  const size_t categorical = std::min(spec.num_categorical,
                                      spec.num_features);
  const int clusters = std::max(1, spec.clusters_per_class);

  Rng rng(spec.seed);

  // Cluster centers: [class][cluster][informative-dim].
  std::vector<std::vector<std::vector<double>>> centers(
      static_cast<size_t>(spec.num_classes));
  for (auto& per_class : centers) {
    per_class.resize(static_cast<size_t>(clusters));
    for (auto& center : per_class) {
      center.resize(informative);
      for (double& c : center) c = rng.NextGaussian() * spec.separation;
    }
  }

  Dataset data(spec.name, spec.num_features, spec.num_classes);
  data.SetNominalSize(
      spec.nominal_rows > 0 ? spec.nominal_rows
                            : static_cast<int64_t>(spec.num_rows),
      spec.nominal_features > 0
          ? spec.nominal_features
          : static_cast<int64_t>(spec.num_features));

  // Categorical columns sit at the end of the feature vector; each gets a
  // small random cardinality and is produced by binning a latent value.
  const size_t first_categorical = spec.num_features - categorical;
  std::vector<int> cardinalities(categorical);
  for (auto& c : cardinalities) {
    c = static_cast<int>(rng.NextInt(2, 8));
  }
  for (size_t j = first_categorical; j < spec.num_features; ++j) {
    data.SetFeatureType(j, FeatureType::kCategorical);
  }

  data.Reserve(spec.num_rows);
  std::vector<double> row(spec.num_features);
  for (size_t r = 0; r < spec.num_rows; ++r) {
    // Round-robin base class guarantees every class is populated, then
    // shuffled assignment keeps the mixture balanced-ish.
    int label = static_cast<int>(r % static_cast<size_t>(spec.num_classes));
    const auto& center =
        centers[static_cast<size_t>(label)]
               [static_cast<size_t>(rng.NextBounded(
                   static_cast<uint64_t>(clusters)))];

    for (size_t j = 0; j < spec.num_features; ++j) {
      double latent = (j < informative)
                          ? center[j] + rng.NextGaussian()
                          : rng.NextGaussian();  // Pure noise feature.
      if (j >= first_categorical) {
        const int card = cardinalities[j - first_categorical];
        // Bin the latent value into [0, card): informative categorical
        // columns keep class signal, noise ones do not.
        const double q = Sigmoid(latent);
        latent = std::min<double>(card - 1,
                                  std::floor(q * static_cast<double>(card)));
      }
      row[j] = latent;
    }

    if (spec.label_noise > 0.0 && rng.NextBool(spec.label_noise)) {
      label = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(spec.num_classes)));
    }
    if (spec.missing_fraction > 0.0) {
      for (size_t j = 0; j < spec.num_features; ++j) {
        if (rng.NextBool(spec.missing_fraction)) row[j] = NAN;
      }
    }
    GREEN_RETURN_IF_ERROR(data.AppendRow(row, label));
  }
  return data;
}

Result<Dataset> GenerateSyntheticRegression(
    const SyntheticRegressionSpec& spec) {
  if (spec.num_rows == 0 || spec.num_features == 0) {
    return Status::InvalidArgument("empty synthetic regression spec");
  }
  const size_t informative =
      std::max<size_t>(1, std::min(spec.num_informative, spec.num_features));
  const size_t categorical =
      std::min(spec.num_categorical, spec.num_features);

  Rng rng(spec.seed);

  // Fixed linear weights over the informative subspace, normalized so the
  // linear part of the signal has roughly unit variance before scaling.
  std::vector<double> weights(informative);
  double norm = 0.0;
  for (double& w : weights) {
    w = rng.NextGaussian();
    norm += w * w;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (double& w : weights) w /= norm;

  Dataset data = Dataset::Regression(spec.name, spec.num_features);
  data.SetNominalSize(
      spec.nominal_rows > 0 ? spec.nominal_rows
                            : static_cast<int64_t>(spec.num_rows),
      spec.nominal_features > 0
          ? spec.nominal_features
          : static_cast<int64_t>(spec.num_features));

  const size_t first_categorical = spec.num_features - categorical;
  std::vector<int> cardinalities(categorical);
  for (auto& c : cardinalities) {
    c = static_cast<int>(rng.NextInt(2, 8));
  }
  for (size_t j = first_categorical; j < spec.num_features; ++j) {
    data.SetFeatureType(j, FeatureType::kCategorical);
  }

  data.Reserve(spec.num_rows);
  std::vector<double> row(spec.num_features);
  for (size_t r = 0; r < spec.num_rows; ++r) {
    double signal = 0.0;
    for (size_t j = 0; j < spec.num_features; ++j) {
      double latent = rng.NextGaussian();
      if (j < informative) {
        signal += weights[j] * latent;
        // Mild curvature on the first informative feature keeps purely
        // linear fits from saturating R^2.
        if (j == 0) signal += 0.25 * (latent * latent - 1.0);
      }
      if (j >= first_categorical) {
        const int card = cardinalities[j - first_categorical];
        const double q = Sigmoid(latent);
        latent = std::min<double>(card - 1,
                                  std::floor(q * static_cast<double>(card)));
      }
      row[j] = latent;
    }
    const double target = spec.target_shift +
                          spec.target_scale *
                              (signal + spec.noise * rng.NextGaussian());
    if (spec.missing_fraction > 0.0) {
      for (size_t j = 0; j < spec.num_features; ++j) {
        if (rng.NextBool(spec.missing_fraction)) row[j] = NAN;
      }
    }
    GREEN_RETURN_IF_ERROR(data.AppendTargetRow(row, target));
  }
  return data;
}

}  // namespace green
