#ifndef GREEN_DATA_AMLB_SUITE_H_
#define GREEN_DATA_AMLB_SUITE_H_

#include <string>
#include <vector>

#include "green/common/status.h"
#include "green/table/dataset.h"

namespace green {

/// One row of the paper's Table 2: the 39 OpenML test datasets proposed by
/// Gijsbers et al. (the AutoML Benchmark).
struct AmlbTaskSpec {
  std::string name;
  int openml_id = 0;
  int64_t instances = 0;
  int64_t features = 0;
  int num_classes = 0;
};

/// Controls how nominal task sizes are scaled down to instantiated
/// simulation sizes so a full benchmark sweep stays CI-grade on one core.
/// `Full()` raises the caps for higher-fidelity (slower) runs; selected by
/// GREEN_FULL=1 in the bench harness.
struct SimulationProfile {
  size_t max_rows = 1400;
  size_t min_rows = 120;
  size_t max_features = 48;
  size_t min_features = 4;
  int max_classes = 20;
  double row_scale = 4.0;      ///< instantiated ~ row_scale * sqrt(nominal).
  double feature_scale = 1.6;  ///< instantiated ~ feature_scale * sqrt(nominal).
  int repetitions = 3;         ///< Default experiment repetitions.

  static SimulationProfile Fast();
  static SimulationProfile Full();
  /// Fast() unless the environment variable GREEN_FULL=1 is set.
  static SimulationProfile FromEnv();
};

/// The 39 specs of Table 2, in the paper's order.
const std::vector<AmlbTaskSpec>& AmlbTable2();

/// Instantiates one task as a synthetic dataset at simulation scale.
/// Task difficulty (separation, noise, cluster structure) is derived
/// deterministically from the task name so every run of the suite sees
/// the same 39 problems.
Result<Dataset> InstantiateAmlbTask(const AmlbTaskSpec& spec,
                                    const SimulationProfile& profile,
                                    uint64_t seed);

/// Instantiates the whole suite (or its first `limit` tasks; 0 = all).
Result<std::vector<Dataset>> InstantiateAmlbSuite(
    const SimulationProfile& profile, uint64_t seed, size_t limit = 0);

}  // namespace green

#endif  // GREEN_DATA_AMLB_SUITE_H_
