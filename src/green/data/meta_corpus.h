#ifndef GREEN_DATA_META_CORPUS_H_
#define GREEN_DATA_META_CORPUS_H_

#include <vector>

#include "green/common/status.h"
#include "green/data/amlb_suite.h"
#include "green/table/dataset.h"

namespace green {

/// The development-stage corpora the paper relies on:
///  * §3.7 tunes CAML on the top-k most representative of 124 binary
///    classification OpenML datasets;
///  * AutoSklearn 2's warm start is meta-learned on a repository of
///    pre-searched datasets.
/// We generate a deterministic family of binary tasks spanning several
/// orders of magnitude in (nominal) rows and features, log-uniformly,
/// mirroring the diversity of the OpenML pool.
struct MetaCorpusOptions {
  size_t num_datasets = 124;
  int64_t min_rows = 500;
  int64_t max_rows = 120000;
  int64_t min_features = 5;
  int64_t max_features = 3000;
  uint64_t seed = 20240101;
};

/// Instantiates the corpus at simulation scale. Every dataset is binary.
Result<std::vector<Dataset>> GenerateMetaCorpus(
    const MetaCorpusOptions& options, const SimulationProfile& profile);

}  // namespace green

#endif  // GREEN_DATA_META_CORPUS_H_
