#include "green/data/amlb_suite.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "green/common/rng.h"
#include "green/data/synthetic.h"

namespace green {

SimulationProfile SimulationProfile::Fast() { return SimulationProfile{}; }

SimulationProfile SimulationProfile::Full() {
  SimulationProfile p;
  p.max_rows = 4000;
  p.max_features = 96;
  p.max_classes = 40;
  p.row_scale = 8.0;
  p.feature_scale = 2.4;
  p.repetitions = 10;
  return p;
}

SimulationProfile SimulationProfile::FromEnv() {
  const char* full = std::getenv("GREEN_FULL");
  if (full != nullptr && full[0] == '1') return Full();
  return Fast();
}

const std::vector<AmlbTaskSpec>& AmlbTable2() {
  // Table 2 of the paper, verbatim.
  static const std::vector<AmlbTaskSpec>* kSpecs =
      new std::vector<AmlbTaskSpec>{
          {"robert", 41165, 10000, 7200, 10},
          {"riccardo", 41161, 20000, 4296, 2},
          {"guillermo", 41159, 20000, 4296, 2},
          {"dilbert", 41163, 10000, 2000, 5},
          {"christine", 41142, 5418, 1636, 2},
          {"cnae-9", 1468, 1080, 856, 9},
          {"fabert", 41164, 8237, 800, 7},
          {"Fashion-MNIST", 40996, 70000, 784, 10},
          {"KDDCup09_appetency", 1111, 50000, 230, 2},
          {"mfeat-factors", 12, 2000, 216, 10},
          {"volkert", 41166, 58310, 180, 10},
          {"APSFailure", 41138, 76000, 170, 2},
          {"jasmine", 41143, 2984, 144, 2},
          {"nomao", 1486, 34465, 118, 2},
          {"albert", 41147, 425240, 78, 2},
          {"dionis", 41167, 416188, 60, 355},
          {"jannis", 41168, 83733, 54, 4},
          {"covertype", 1596, 581012, 54, 7},
          {"MiniBooNE", 41150, 130064, 50, 2},
          {"connect-4", 40668, 67557, 42, 3},
          {"kr-vs-kp", 3, 3196, 36, 2},
          {"higgs", 23512, 98050, 28, 2},
          {"helena", 41169, 65196, 27, 100},
          {"kc1", 1067, 2109, 21, 2},
          {"numerai28.6", 23517, 96320, 21, 2},
          {"credit-g", 31, 1000, 20, 2},
          {"sylvine", 41146, 5124, 20, 2},
          {"segment", 40984, 2310, 16, 7},
          {"vehicle", 54, 846, 18, 4},
          {"bank-marketing", 1461, 45211, 16, 2},
          {"Australian", 40981, 690, 14, 2},
          {"adult", 1590, 48842, 14, 2},
          {"Amazon_employee_access", 4135, 32769, 9, 2},
          {"shuttle", 40685, 58000, 9, 7},
          {"airlines", 1169, 539383, 7, 2},
          {"car", 40975, 1728, 6, 4},
          {"jungle_chess_2pcs_raw_endgame_complete", 41027, 44819, 6, 3},
          {"phoneme", 1489, 5404, 5, 2},
          {"blood-transfusion-service-center", 1464, 748, 4, 2},
      };
  return *kSpecs;
}

namespace {

uint64_t NameHash(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Result<Dataset> InstantiateAmlbTask(const AmlbTaskSpec& spec,
                                    const SimulationProfile& profile,
                                    uint64_t seed) {
  SyntheticSpec s;
  s.name = spec.name;
  s.nominal_rows = spec.instances;
  s.nominal_features = spec.features;

  const double nr = static_cast<double>(spec.instances);
  const double nf = static_cast<double>(spec.features);
  s.num_classes = std::min(spec.num_classes, profile.max_classes);
  size_t rows = static_cast<size_t>(profile.row_scale * std::sqrt(nr));
  // Keep enough rows per class that the hardest many-class tasks remain
  // learnable at simulation scale.
  rows = std::max(rows, static_cast<size_t>(30 * s.num_classes));
  s.num_rows = std::clamp(rows, profile.min_rows, profile.max_rows);
  s.num_features = std::clamp(
      static_cast<size_t>(profile.feature_scale * std::sqrt(nf)),
      profile.min_features, profile.max_features);

  // Deterministic per-task difficulty: a hash of the name seeds the knobs,
  // so "credit-g" is always the same problem regardless of the run seed.
  Rng knobs(NameHash(spec.name));
  s.num_informative = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(s.num_features) *
                             knobs.NextUniform(0.3, 0.7)));
  s.num_categorical = static_cast<size_t>(
      static_cast<double>(s.num_features) * knobs.NextUniform(0.0, 0.4));
  s.clusters_per_class = static_cast<int>(knobs.NextInt(1, 3));
  s.separation = knobs.NextUniform(1.2, 2.6);
  s.label_noise = knobs.NextUniform(0.01, 0.12);
  s.missing_fraction = knobs.NextBool(0.3) ? knobs.NextUniform(0.0, 0.05)
                                           : 0.0;
  // Wide, many-class tasks get a little more separation so they are not
  // uniformly at chance level at simulation scale.
  if (s.num_classes > 10) s.separation += 0.8;

  s.seed = HashCombine(seed, NameHash(spec.name));
  return GenerateSynthetic(s);
}

Result<std::vector<Dataset>> InstantiateAmlbSuite(
    const SimulationProfile& profile, uint64_t seed, size_t limit) {
  const auto& specs = AmlbTable2();
  const size_t n = (limit == 0) ? specs.size()
                                : std::min(limit, specs.size());
  std::vector<Dataset> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GREEN_ASSIGN_OR_RETURN(Dataset d,
                           InstantiateAmlbTask(specs[i], profile, seed));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace green
