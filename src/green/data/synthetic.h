#ifndef GREEN_DATA_SYNTHETIC_H_
#define GREEN_DATA_SYNTHETIC_H_

#include <string>

#include "green/common/rng.h"
#include "green/common/status.h"
#include "green/table/dataset.h"

namespace green {

/// Specification for one synthetic classification task.
///
/// Tasks are Gaussian-mixture problems: each class owns
/// `clusters_per_class` Gaussian clusters in an informative subspace;
/// remaining features are noise; a subset of features is discretized into
/// categorical codes; labels are flipped with probability `label_noise`.
/// The knobs give a controllable Bayes error, so harder tasks stay hard
/// for every model family — which is what lets search quality separate the
/// AutoML systems like the paper's real OpenML tasks do.
struct SyntheticSpec {
  std::string name;
  size_t num_rows = 500;
  size_t num_features = 20;
  int num_classes = 2;
  size_t num_informative = 10;    ///< Clamped to num_features.
  size_t num_categorical = 0;     ///< Clamped to num_features.
  int clusters_per_class = 2;
  double separation = 2.0;        ///< Cluster-center spread vs unit noise.
  double label_noise = 0.05;
  double missing_fraction = 0.0;
  uint64_t seed = 1;
  /// Nominal (real-task) size recorded on the dataset for cost
  /// extrapolation and meta-features; 0 means "same as instantiated".
  int64_t nominal_rows = 0;
  int64_t nominal_features = 0;
};

/// Materializes the task. Returns InvalidArgument for degenerate specs
/// (zero rows/features/classes, or fewer rows than classes).
///
/// `num_classes > 2` yields a genuine k-class Gaussian mixture; the
/// round-robin base assignment guarantees every class is populated.
Result<Dataset> GenerateSynthetic(const SyntheticSpec& spec);

/// Specification for one synthetic regression task.
///
/// Targets are a sparse linear signal over the informative subspace plus a
/// mild quadratic term and Gaussian noise, so linear learners capture most
/// of the variance but tree/MLP learners can still separate themselves —
/// mirroring what the classification generator does for search quality.
struct SyntheticRegressionSpec {
  std::string name;
  size_t num_rows = 500;
  size_t num_features = 20;
  size_t num_informative = 10;    ///< Clamped to num_features.
  size_t num_categorical = 0;     ///< Clamped to num_features.
  double noise = 0.5;             ///< Target-noise stddev vs unit signal.
  double target_scale = 10.0;     ///< Spread of the target distribution.
  double target_shift = 50.0;     ///< Mean offset of the targets.
  double missing_fraction = 0.0;
  uint64_t seed = 1;
  /// Nominal (real-task) size recorded on the dataset for cost
  /// extrapolation and meta-features; 0 means "same as instantiated".
  int64_t nominal_rows = 0;
  int64_t nominal_features = 0;
};

/// Materializes the regression task. Returns InvalidArgument for
/// degenerate specs (zero rows or features). Deterministic in `seed`.
Result<Dataset> GenerateSyntheticRegression(
    const SyntheticRegressionSpec& spec);

}  // namespace green

#endif  // GREEN_DATA_SYNTHETIC_H_
