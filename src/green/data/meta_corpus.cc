#include "green/data/meta_corpus.h"

#include <algorithm>
#include <cmath>

#include "green/common/rng.h"
#include "green/common/stringutil.h"
#include "green/data/synthetic.h"

namespace green {

Result<std::vector<Dataset>> GenerateMetaCorpus(
    const MetaCorpusOptions& options, const SimulationProfile& profile) {
  if (options.num_datasets == 0) {
    return Status::InvalidArgument("empty meta corpus");
  }
  Rng rng(options.seed);
  std::vector<Dataset> out;
  out.reserve(options.num_datasets);

  const double log_row_lo = std::log(static_cast<double>(options.min_rows));
  const double log_row_hi = std::log(static_cast<double>(options.max_rows));
  const double log_feat_lo =
      std::log(static_cast<double>(options.min_features));
  const double log_feat_hi =
      std::log(static_cast<double>(options.max_features));

  for (size_t i = 0; i < options.num_datasets; ++i) {
    const int64_t nominal_rows = static_cast<int64_t>(
        std::exp(rng.NextUniform(log_row_lo, log_row_hi)));
    const int64_t nominal_features = static_cast<int64_t>(
        std::exp(rng.NextUniform(log_feat_lo, log_feat_hi)));

    SyntheticSpec s;
    s.name = StrFormat("meta-%03zu", i);
    s.num_classes = 2;
    s.nominal_rows = nominal_rows;
    s.nominal_features = nominal_features;
    s.num_rows = std::clamp(
        static_cast<size_t>(profile.row_scale *
                            std::sqrt(static_cast<double>(nominal_rows))),
        profile.min_rows, profile.max_rows);
    s.num_features = std::clamp(
        static_cast<size_t>(
            profile.feature_scale *
            std::sqrt(static_cast<double>(nominal_features))),
        profile.min_features, profile.max_features);
    s.num_informative = std::max<size_t>(
        2, static_cast<size_t>(static_cast<double>(s.num_features) *
                               rng.NextUniform(0.3, 0.7)));
    s.num_categorical = static_cast<size_t>(
        static_cast<double>(s.num_features) * rng.NextUniform(0.0, 0.35));
    s.clusters_per_class = static_cast<int>(rng.NextInt(1, 3));
    s.separation = rng.NextUniform(1.2, 2.6);
    s.label_noise = rng.NextUniform(0.01, 0.12);
    s.seed = HashCombine(options.seed, i + 1);

    GREEN_ASSIGN_OR_RETURN(Dataset d, GenerateSynthetic(s));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace green
