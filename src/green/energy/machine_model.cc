#include "green/energy/machine_model.h"

#include <algorithm>

namespace green {

MachineModel MachineModel::XeonGold6132() {
  MachineModel m;
  m.name = "xeon-gold-6132";
  m.num_cores = 28;
  m.cpu_flops_per_core = 1.0e6;
  m.cpu_static_watts = 25.0;
  m.cpu_active_watts_per_core = 10.5;
  m.dram_joules_per_byte = 5.0e-9;
  return m;
}

MachineModel MachineModel::GpuNodeT4() {
  MachineModel m;
  m.name = "gpu-node-t4";
  m.num_cores = 8;
  // The GPU machine's CPU cores are clocked lower (2.0 vs 2.6 GHz) and the
  // part is a smaller SKU; per-core throughput is reduced accordingly.
  m.cpu_flops_per_core = 0.55e6;
  m.cpu_static_watts = 14.0;
  m.cpu_active_watts_per_core = 9.0;
  m.dram_joules_per_byte = 5.0e-9;
  m.has_gpu = true;
  // T4-like: an order of magnitude more matmul throughput than the host CPU,
  // 10 W idle draw, 60 W additional when active.
  m.gpu_flops = 60.0e6;
  m.gpu_idle_watts = 10.0;
  m.gpu_active_watts = 60.0;
  return m;
}

MachineModel MachineModel::Minimal() {
  MachineModel m;
  m.name = "minimal";
  m.num_cores = 1;
  m.cpu_flops_per_core = 1.0e6;
  m.cpu_static_watts = 10.0;
  m.cpu_active_watts_per_core = 5.0;
  m.dram_joules_per_byte = 5.0e-9;
  return m;
}

double MachineModel::Throughput(Device device, int cores) const {
  if (device == Device::kGpu) {
    return has_gpu ? gpu_flops : 0.0;
  }
  const int c = std::clamp(cores, 1, num_cores);
  return cpu_flops_per_core * static_cast<double>(c);
}

}  // namespace green
