#ifndef GREEN_ENERGY_CO2_H_
#define GREEN_ENERGY_CO2_H_

#include <string>
#include <vector>

#include "green/common/status.h"

namespace green {

/// Converts measured energy into CO2 emissions and monetary cost, with the
/// constants the paper uses for its Table 4 (German grid intensity of
/// 0.222 kg CO2/kWh, average EU electricity price of 0.20 EUR/kWh).
struct EmissionFactors {
  double kg_co2_per_kwh = 0.222;
  double eur_per_kwh = 0.20;

  static EmissionFactors Germany2023() { return EmissionFactors{}; }
};

/// Grid carbon intensity per country (kg CO2 / kWh); a small subset of the
/// electricitymaps-style table CodeCarbon bundles. The paper stresses that
/// emissions per kWh differ strongly across countries, which is why it
/// reports kWh and treats CO2 as derived.
class GridIntensityTable {
 public:
  GridIntensityTable();

  /// ISO-3166 alpha-2 code lookup, e.g. "DE", "FR", "PL".
  Result<double> KgCo2PerKwh(const std::string& country_code) const;

  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

/// Derived environmental + monetary cost for a given amount of energy.
struct ImpactEstimate {
  double kwh = 0.0;
  double kg_co2 = 0.0;
  double eur = 0.0;
};

ImpactEstimate EstimateImpact(double kwh, const EmissionFactors& factors);

}  // namespace green

#endif  // GREEN_ENERGY_CO2_H_
