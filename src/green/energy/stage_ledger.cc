#include "green/energy/stage_ledger.h"

#include <limits>

namespace green {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kDevelopment:
      return "development";
    case Stage::kExecution:
      return "execution";
    case Stage::kInference:
      return "inference";
    case Stage::kServing:
      return "serving";
  }
  return "?";
}

void StageLedger::Add(const std::string& system, Stage stage,
                      const EnergyReading& reading) {
  totals_[{system, stage}] += reading;
  std::map<std::string, ScopeCharge>& tree = scopes_[system];
  const std::string prefix = std::string(StageName(stage)) + "/";
  if (reading.scopes.empty()) {
    // Pre-scope-tree readings still land somewhere visible.
    if (reading.joules() > 0.0) {
      ScopeCharge& sc = tree[prefix + kUnscopedPath];
      sc.seconds += reading.seconds;
      sc.joules += reading.breakdown.cpu_dynamic_j +
                   reading.breakdown.gpu_dynamic_j +
                   reading.breakdown.dram_j;
    }
    return;
  }
  for (const auto& [path, charge] : reading.scopes) {
    tree[prefix + path] += charge;
  }
}

EnergyReading StageLedger::Get(const std::string& system,
                               Stage stage) const {
  auto it = totals_.find({system, stage});
  if (it == totals_.end()) return EnergyReading{};
  return it->second;
}

double StageLedger::TotalKwh(const std::string& system) const {
  double total = 0.0;
  for (Stage s : {Stage::kDevelopment, Stage::kExecution,
                  Stage::kInference, Stage::kServing}) {
    total += Get(system, s).kwh();
  }
  return total;
}

std::vector<ScopeRow> StageLedger::ScopeRows(
    const std::string& system) const {
  std::vector<ScopeRow> out;
  auto it = scopes_.find(system);
  if (it == scopes_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [path, charge] : it->second) {
    out.push_back(ScopeRow{path, charge});
  }
  return out;
}

ScopeCharge StageLedger::Rollup(const std::string& system,
                                const std::string& path_prefix) const {
  ScopeCharge out;
  auto it = scopes_.find(system);
  if (it == scopes_.end()) return out;
  for (const auto& [path, charge] : it->second) {
    if (path == path_prefix ||
        (path.size() > path_prefix.size() &&
         path.compare(0, path_prefix.size(), path_prefix) == 0 &&
         path[path_prefix.size()] == '/')) {
      out += charge;
    }
  }
  return out;
}

double StageLedger::AttributedKwh(const std::string& system,
                                  Stage stage) const {
  return Rollup(system, StageName(stage)).kwh();
}

double StageLedger::AmortizationRuns(double development_kwh,
                                     double per_run_saving_kwh) {
  if (per_run_saving_kwh <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return development_kwh / per_run_saving_kwh;
}

std::vector<std::string> StageLedger::systems() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : totals_) {
    if (out.empty() || out.back() != key.first) out.push_back(key.first);
  }
  return out;
}

}  // namespace green
