#include "green/energy/stage_ledger.h"

#include <limits>

namespace green {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kDevelopment:
      return "development";
    case Stage::kExecution:
      return "execution";
    case Stage::kInference:
      return "inference";
  }
  return "?";
}

void StageLedger::Add(const std::string& system, Stage stage,
                      const EnergyReading& reading) {
  entries_[{system, stage}] += reading;
}

EnergyReading StageLedger::Get(const std::string& system,
                               Stage stage) const {
  auto it = entries_.find({system, stage});
  if (it == entries_.end()) return EnergyReading{};
  return it->second;
}

double StageLedger::TotalKwh(const std::string& system) const {
  double total = 0.0;
  for (Stage s : {Stage::kDevelopment, Stage::kExecution,
                  Stage::kInference}) {
    total += Get(system, s).kwh();
  }
  return total;
}

double StageLedger::AmortizationRuns(double development_kwh,
                                     double per_run_saving_kwh) {
  if (per_run_saving_kwh <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return development_kwh / per_run_saving_kwh;
}

std::vector<std::string> StageLedger::systems() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : entries_) {
    if (out.empty() || out.back() != key.first) out.push_back(key.first);
  }
  return out;
}

}  // namespace green
