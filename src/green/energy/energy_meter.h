#ifndef GREEN_ENERGY_ENERGY_METER_H_
#define GREEN_ENERGY_ENERGY_METER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "green/common/status.h"
#include "green/energy/energy_model.h"

namespace green {

/// Dynamic work attributed to one scope path ("caml/search/pipeline/
/// fit/random_forest"). Only per-charge quantities live here — static
/// package power and GPU idle power are properties of elapsed wall time,
/// not of any one scope, so they stay on the flat EnergyBreakdown.
struct ScopeCharge {
  double seconds = 0.0;  ///< Virtual seconds the scope's charges took.
  double joules = 0.0;   ///< Dynamic energy (CPU + GPU + DRAM).
  double flops = 0.0;
  double bytes = 0.0;
  uint64_t charges = 0;  ///< Number of Charge calls attributed here.

  double kwh() const { return joules / 3.6e6; }

  ScopeCharge& operator+=(const ScopeCharge& o) {
    seconds += o.seconds;
    joules += o.joules;
    flops += o.flops;
    bytes += o.bytes;
    charges += o.charges;
    return *this;
  }
};

/// Scope path used for charges issued with no ChargeScope open.
inline constexpr const char* kUnscopedPath = "(unscoped)";

/// Result of one metered scope.
struct EnergyReading {
  double seconds = 0.0;  ///< Virtual wall time covered by the scope.
  EnergyBreakdown breakdown;

  /// Dynamic energy per scope path, keyed by the '/'-joined ChargeScope
  /// stack at the moment each charge was issued. Since every charge
  /// lands on exactly one path, the paths' joules sum to the dynamic
  /// part of `breakdown` (the flat stage totals stay derivable).
  std::map<std::string, ScopeCharge> scopes;

  double kwh() const { return breakdown.TotalKwh(); }
  double joules() const { return breakdown.TotalJoules(); }

  EnergyReading& operator+=(const EnergyReading& o) {
    seconds += o.seconds;
    breakdown += o.breakdown;
    for (const auto& [path, charge] : o.scopes) scopes[path] += charge;
    return *this;
  }
};

/// CodeCarbon-style scoped tracker.
///
/// Usage:
///   EnergyMeter meter(&model);
///   meter.Start(clock.Now());
///   ... instrumented code records Work executions ...
///   EnergyReading r = meter.Stop(clock.Now());
///
/// Dynamic energy is attributed per recorded execution; static package
/// power and GPU idle power are charged for the scope's full wall time at
/// Stop(), mirroring how a physical power meter sees a mostly-idle
/// accelerator.
class EnergyMeter {
 public:
  explicit EnergyMeter(const EnergyModel* model);

  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;

  /// Begins a scope at virtual time `clock_now` (seconds).
  void Start(double clock_now);

  /// Attributes one executed work item to the running scope, filed under
  /// `scope_path` (empty = kUnscopedPath).
  void Record(const Work& work, const WorkExecution& exec,
              std::string_view scope_path);
  void Record(const Work& work, const WorkExecution& exec) {
    Record(work, exec, std::string_view());
  }

  /// Ends the scope, charging baseline power for the elapsed wall time.
  EnergyReading Stop(double clock_now);

  /// Reading of the scope so far (baseline power up to `clock_now`)
  /// without ending it.
  EnergyReading Peek(double clock_now) const;

  /// Dynamic joules recorded so far (CPU + GPU + DRAM; excludes the
  /// static/idle baseline that Stop charges for elapsed wall time).
  /// Cheap enough to poll per request/batch: the serving layer takes
  /// deltas of this around each micro-batch to attribute Joules/request.
  double dynamic_joules() const { return dynamic_.TotalJoules(); }

  bool running() const { return running_; }

 private:
  const EnergyModel* model_;  // Not owned.
  bool running_ = false;
  double start_time_ = 0.0;
  EnergyBreakdown dynamic_;
  std::map<std::string, ScopeCharge, std::less<>> scopes_;
};

}  // namespace green

#endif  // GREEN_ENERGY_ENERGY_METER_H_
