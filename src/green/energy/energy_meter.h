#ifndef GREEN_ENERGY_ENERGY_METER_H_
#define GREEN_ENERGY_ENERGY_METER_H_

#include "green/common/status.h"
#include "green/energy/energy_model.h"

namespace green {

/// Result of one metered scope.
struct EnergyReading {
  double seconds = 0.0;  ///< Virtual wall time covered by the scope.
  EnergyBreakdown breakdown;

  double kwh() const { return breakdown.TotalKwh(); }
  double joules() const { return breakdown.TotalJoules(); }

  EnergyReading& operator+=(const EnergyReading& o) {
    seconds += o.seconds;
    breakdown += o.breakdown;
    return *this;
  }
};

/// CodeCarbon-style scoped tracker.
///
/// Usage:
///   EnergyMeter meter(&model);
///   meter.Start(clock.Now());
///   ... instrumented code records Work executions ...
///   EnergyReading r = meter.Stop(clock.Now());
///
/// Dynamic energy is attributed per recorded execution; static package
/// power and GPU idle power are charged for the scope's full wall time at
/// Stop(), mirroring how a physical power meter sees a mostly-idle
/// accelerator.
class EnergyMeter {
 public:
  explicit EnergyMeter(const EnergyModel* model);

  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;

  /// Begins a scope at virtual time `clock_now` (seconds).
  void Start(double clock_now);

  /// Attributes one executed work item to the running scope.
  void Record(const Work& work, const WorkExecution& exec);

  /// Ends the scope, charging baseline power for the elapsed wall time.
  EnergyReading Stop(double clock_now);

  /// Reading of the scope so far (baseline power up to `clock_now`)
  /// without ending it.
  EnergyReading Peek(double clock_now) const;

  bool running() const { return running_; }

 private:
  const EnergyModel* model_;  // Not owned.
  bool running_ = false;
  double start_time_ = 0.0;
  EnergyBreakdown dynamic_;
};

}  // namespace green

#endif  // GREEN_ENERGY_ENERGY_METER_H_
