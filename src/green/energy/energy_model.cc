#include "green/energy/energy_model.h"

#include <algorithm>

namespace green {

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& o) {
  cpu_dynamic_j += o.cpu_dynamic_j;
  cpu_static_j += o.cpu_static_j;
  dram_j += o.dram_j;
  gpu_dynamic_j += o.gpu_dynamic_j;
  gpu_idle_j += o.gpu_idle_j;
  return *this;
}

WorkExecution EnergyModel::Execute(const Work& work, int cores) const {
  WorkExecution out;
  if (work.flops <= 0.0 && work.bytes <= 0.0) return out;

  if (work.device == Device::kGpu && machine_.has_gpu) {
    const double seconds = work.flops / machine_.gpu_flops;
    out.seconds = seconds;
    out.gpu_busy_seconds = seconds;
    out.dynamic_joules = machine_.gpu_active_watts * seconds +
                         machine_.dram_joules_per_byte * work.bytes;
    return out;
  }

  // CPU path (also the fallback when GPU work lands on a CPU-only machine).
  const int c = std::clamp(cores, 1, machine_.num_cores);
  const double f =
      std::clamp(work.parallel_fraction, 0.0, 1.0);
  const double serial_flops = work.flops * (1.0 - f);
  const double parallel_flops = work.flops * f;
  const double per_core = machine_.cpu_flops_per_core;

  const double serial_seconds = serial_flops / per_core;
  const double parallel_seconds =
      parallel_flops / (per_core * static_cast<double>(c));

  out.seconds = serial_seconds + parallel_seconds;
  // Utilization: one core busy in the serial section, all c cores busy in
  // the parallel section. Total busy core-seconds is therefore invariant
  // in c — which is what makes single-core execution Pareto-optimal for
  // sequential workloads (the paper's Fig. 5 CAML result) while fixed
  // workloads still save wall time and amortize static power.
  out.busy_core_seconds =
      serial_seconds + parallel_seconds * static_cast<double>(c);
  out.dynamic_joules =
      machine_.cpu_active_watts_per_core * out.busy_core_seconds +
      machine_.dram_joules_per_byte * work.bytes;
  return out;
}

double EnergyModel::BaselineWatts() const {
  double watts = machine_.cpu_static_watts;
  if (machine_.has_gpu) watts += machine_.gpu_idle_watts;
  return watts;
}

}  // namespace green
