#ifndef GREEN_ENERGY_MACHINE_MODEL_H_
#define GREEN_ENERGY_MACHINE_MODEL_H_

#include <string>

namespace green {

/// Compute device a piece of work runs on.
enum class Device { kCpu = 0, kGpu = 1 };

/// Deterministic stand-in for the paper's measurement hardware.
///
/// The paper measures energy with CodeCarbon on two machines:
///   * a 28-core Intel Xeon Gold 6132 @ 2.60 GHz, 264 GB RAM (CPU machine),
///   * an 8-core Xeon @ 2.00 GHz with one Nvidia T4 (GPU machine).
/// We model a machine as throughput (abstract FLOP-equivalents per second
/// per core) plus a linear power model: package static power, active power
/// per busy core, DRAM energy per byte, and GPU idle/active power. All
/// energy results in this library are pure functions of counted work and
/// these constants, never of host wall-clock, so experiments are exactly
/// reproducible on any build machine.
struct MachineModel {
  std::string name;

  // --- CPU ---
  int num_cores = 1;
  /// Abstract FLOP-equivalents per second per core at the chosen
  /// simulation fidelity. Scaling this up/down scales virtual time, not
  /// relative results.
  double cpu_flops_per_core = 1.0e6;
  /// Package power drawn regardless of load (W).
  double cpu_static_watts = 40.0;
  /// Additional power per busy core (W).
  double cpu_active_watts_per_core = 8.0;

  // --- DRAM ---
  /// Energy per byte moved through the memory system (J/B).
  double dram_joules_per_byte = 5.0e-9;

  // --- GPU (optional) ---
  bool has_gpu = false;
  double gpu_flops = 0.0;         ///< FLOP-equivalents per second (whole GPU).
  double gpu_idle_watts = 0.0;    ///< Drawn whenever the GPU is present.
  double gpu_active_watts = 0.0;  ///< Additional power while computing.

  /// The paper's primary machine: 28-core Xeon Gold 6132, no GPU.
  static MachineModel XeonGold6132();

  /// The paper's GPU machine: 8 weaker cores + one T4.
  static MachineModel GpuNodeT4();

  /// A small single-core machine, useful for unit tests.
  static MachineModel Minimal();

  /// Throughput of `cores` busy cores on `device` (FLOP-equivalents/s).
  double Throughput(Device device, int cores) const;
};

}  // namespace green

#endif  // GREEN_ENERGY_MACHINE_MODEL_H_
