#ifndef GREEN_ENERGY_STAGE_LEDGER_H_
#define GREEN_ENERGY_STAGE_LEDGER_H_

#include <map>
#include <string>
#include <vector>

#include "green/energy/energy_meter.h"

namespace green {

/// The three AutoML life-cycle stages of Tornede et al. that the paper's
/// holistic analysis attributes energy to.
enum class Stage { kDevelopment = 0, kExecution = 1, kInference = 2 };

const char* StageName(Stage stage);

/// Accumulates energy readings per (system, stage). This is the paper's
/// central bookkeeping device: savings in one stage (e.g. TabPFN's free
/// execution) can be paid for in another (its expensive inference), and
/// only a ledger across all three stages makes the trade-offs visible.
class StageLedger {
 public:
  void Add(const std::string& system, Stage stage,
           const EnergyReading& reading);

  /// Total reading accumulated for (system, stage); zero if absent.
  EnergyReading Get(const std::string& system, Stage stage) const;

  /// kWh across all stages for one system.
  double TotalKwh(const std::string& system) const;

  /// Amortization: number of executions after which investing
  /// `development_kwh` up-front pays off against a baseline whose
  /// per-execution energy is higher by `per_run_saving_kwh`.
  /// Returns a large sentinel if the saving is non-positive.
  static double AmortizationRuns(double development_kwh,
                                 double per_run_saving_kwh);

  std::vector<std::string> systems() const;

 private:
  std::map<std::pair<std::string, Stage>, EnergyReading> entries_;
};

}  // namespace green

#endif  // GREEN_ENERGY_STAGE_LEDGER_H_
