#ifndef GREEN_ENERGY_STAGE_LEDGER_H_
#define GREEN_ENERGY_STAGE_LEDGER_H_

#include <map>
#include <string>
#include <vector>

#include "green/energy/energy_meter.h"

namespace green {

/// The three AutoML life-cycle stages of Tornede et al. that the paper's
/// holistic analysis attributes energy to, plus the online serving stage
/// the inference server adds on top (per-request inference under load,
/// ML.ENERGY-style — distinct from the paper's offline test-set pass).
enum class Stage {
  kDevelopment = 0,
  kExecution = 1,
  kInference = 2,
  kServing = 3,
};

const char* StageName(Stage stage);

/// One aggregated row of the ledger's scope tree: a stage-prefixed scope
/// path ("execution/caml/search/pipeline/fit/random_forest") and the
/// dynamic work charged to it.
struct ScopeRow {
  std::string path;
  ScopeCharge charge;
};

/// Accumulates energy readings per (system, scope path). This is the
/// paper's central bookkeeping device, rebuilt hierarchically: each
/// reading's per-scope charges are filed under a stage-prefixed path, so
/// "which operator inside the search burned the kWh?" is answerable,
/// while the flat per-(system, stage) totals remain derivable (Get /
/// TotalKwh are unchanged) — savings in one stage (e.g. TabPFN's free
/// execution) can be paid for in another (its expensive inference), and
/// only a ledger across all three stages makes the trade-offs visible.
class StageLedger {
 public:
  void Add(const std::string& system, Stage stage,
           const EnergyReading& reading);

  /// Total reading accumulated for (system, stage); zero if absent.
  EnergyReading Get(const std::string& system, Stage stage) const;

  /// kWh across all stages for one system.
  double TotalKwh(const std::string& system) const;

  /// All aggregated scope rows for one system, sorted by path. Paths are
  /// stage-prefixed; charges issued with no ChargeScope open appear
  /// under "<stage>/(unscoped)".
  std::vector<ScopeRow> ScopeRows(const std::string& system) const;

  /// Sum of all scope charges whose path equals `path_prefix` or lies
  /// beneath it ("execution/caml/search" rolls up the whole subtree).
  ScopeCharge Rollup(const std::string& system,
                     const std::string& path_prefix) const;

  /// Dynamic kWh attributed to scopes under `stage`. The remainder of
  /// Get(system, stage).kwh() is baseline (static + idle) power, which
  /// belongs to elapsed wall time rather than to any scope.
  double AttributedKwh(const std::string& system, Stage stage) const;

  /// Amortization: number of executions after which investing
  /// `development_kwh` up-front pays off against a baseline whose
  /// per-execution energy is higher by `per_run_saving_kwh`.
  /// Returns a large sentinel if the saving is non-positive.
  static double AmortizationRuns(double development_kwh,
                                 double per_run_saving_kwh);

  std::vector<std::string> systems() const;

 private:
  std::map<std::pair<std::string, Stage>, EnergyReading> totals_;
  /// system -> stage-prefixed scope path -> aggregated charge.
  std::map<std::string, std::map<std::string, ScopeCharge>> scopes_;
};

}  // namespace green

#endif  // GREEN_ENERGY_STAGE_LEDGER_H_
