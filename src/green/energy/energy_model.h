#ifndef GREEN_ENERGY_ENERGY_MODEL_H_
#define GREEN_ENERGY_ENERGY_MODEL_H_

#include "green/energy/machine_model.h"

namespace green {

/// One unit of accounted work, as reported by instrumented kernels.
struct Work {
  double flops = 0.0;  ///< Abstract FLOP-equivalents.
  double bytes = 0.0;  ///< Bytes moved through the memory system.
  Device device = Device::kCpu;
  /// Fraction of the work that can execute in parallel (Amdahl). Tree
  /// ensembles are close to 1; boosting/BO inner loops are lower.
  double parallel_fraction = 0.9;
};

/// Outcome of executing one Work item on a machine.
struct WorkExecution {
  double seconds = 0.0;            ///< Virtual wall time consumed.
  double busy_core_seconds = 0.0;  ///< CPU core-seconds actually busy.
  double gpu_busy_seconds = 0.0;   ///< GPU busy time.
  double dynamic_joules = 0.0;     ///< Energy excluding static/idle draw.
};

/// Breakdown of energy attributed to a metered scope (Joules).
struct EnergyBreakdown {
  double cpu_dynamic_j = 0.0;
  double cpu_static_j = 0.0;
  double dram_j = 0.0;
  double gpu_dynamic_j = 0.0;
  double gpu_idle_j = 0.0;

  double TotalJoules() const {
    return cpu_dynamic_j + cpu_static_j + dram_j + gpu_dynamic_j +
           gpu_idle_j;
  }
  double TotalKwh() const { return TotalJoules() / 3.6e6; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o);
};

/// Pure-function energy model: Work x MachineModel x core count ->
/// duration + dynamic energy. Static/idle power is charged per elapsed
/// wall time by the EnergyMeter, so that a present-but-unused accelerator
/// still costs energy (the paper's Table 3 AutoGluon-on-GPU effect).
class EnergyModel {
 public:
  explicit EnergyModel(const MachineModel& machine) : machine_(machine) {}

  /// Executes `work` on `cores` CPU cores (ignored for GPU work).
  /// Duration follows Amdahl's law; busy core-seconds follow utilization
  /// (serial sections keep one core busy, parallel sections keep all).
  WorkExecution Execute(const Work& work, int cores) const;

  /// Static + idle power of the machine (W): charged for every second of
  /// metered wall time.
  double BaselineWatts() const;

  const MachineModel& machine() const { return machine_; }

 private:
  MachineModel machine_;
};

/// Converts Joules to kWh.
inline double JoulesToKwh(double joules) { return joules / 3.6e6; }

}  // namespace green

#endif  // GREEN_ENERGY_ENERGY_MODEL_H_
