#include "green/energy/rapl_simulator.h"

namespace green {

void RaplSimulator::Deposit(double package_joules, double dram_joules) {
  if (package_joules > 0.0) {
    package_units_ += static_cast<uint64_t>(package_joules / kJoulesPerUnit);
  }
  if (dram_joules > 0.0) {
    dram_units_ += static_cast<uint64_t>(dram_joules / kJoulesPerUnit);
  }
}

uint32_t RaplSimulator::ReadPackageCounter() const {
  return static_cast<uint32_t>(package_units_ & 0xffffffffULL);
}

uint32_t RaplSimulator::ReadDramCounter() const {
  return static_cast<uint32_t>(dram_units_ & 0xffffffffULL);
}

double RaplSimulator::CounterDeltaJoules(uint32_t before, uint32_t after) {
  const uint64_t delta =
      (after >= before)
          ? static_cast<uint64_t>(after - before)
          : (static_cast<uint64_t>(after) + (1ULL << 32) - before);
  return static_cast<double>(delta) * kJoulesPerUnit;
}

}  // namespace green
