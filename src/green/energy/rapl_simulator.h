#ifndef GREEN_ENERGY_RAPL_SIMULATOR_H_
#define GREEN_ENERGY_RAPL_SIMULATOR_H_

#include <cstdint>

namespace green {

/// Simulates Intel RAPL energy MSRs: monotonically increasing energy
/// counters in fixed 15.3-microjoule units that wrap around at 32 bits,
/// exactly like MSR_PKG_ENERGY_STATUS / MSR_DRAM_ENERGY_STATUS. The
/// EnergyMeter is validated against this low-level substrate (CodeCarbon
/// reads the real registers the same way).
class RaplSimulator {
 public:
  /// Default RAPL energy unit: 1/2^16 J ~= 15.3 uJ.
  static constexpr double kJoulesPerUnit = 1.0 / 65536.0;

  /// Adds energy to the underlying (hidden) accumulators.
  void Deposit(double package_joules, double dram_joules);

  /// Raw 32-bit counter reads, wrapping like the hardware registers.
  uint32_t ReadPackageCounter() const;
  uint32_t ReadDramCounter() const;

  /// Joules represented by the difference of two raw counter reads,
  /// assuming at most one wraparound between them (the CodeCarbon
  /// sampling assumption).
  static double CounterDeltaJoules(uint32_t before, uint32_t after);

 private:
  uint64_t package_units_ = 0;
  uint64_t dram_units_ = 0;
};

}  // namespace green

#endif  // GREEN_ENERGY_RAPL_SIMULATOR_H_
