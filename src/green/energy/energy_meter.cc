#include "green/energy/energy_meter.h"

#include "green/common/logging.h"

namespace green {

EnergyMeter::EnergyMeter(const EnergyModel* model) : model_(model) {
  GREEN_CHECK(model_ != nullptr);
}

void EnergyMeter::Start(double clock_now) {
  GREEN_CHECK(!running_);
  running_ = true;
  start_time_ = clock_now;
  dynamic_ = EnergyBreakdown{};
  scopes_.clear();
}

void EnergyMeter::Record(const Work& work, const WorkExecution& exec,
                         std::string_view scope_path) {
  if (!running_) return;
  double dynamic_joules = 0.0;
  if (exec.gpu_busy_seconds > 0.0) {
    const double j =
        model_->machine().gpu_active_watts * exec.gpu_busy_seconds;
    dynamic_.gpu_dynamic_j += j;
    dynamic_joules += j;
  }
  if (exec.busy_core_seconds > 0.0) {
    const double j = model_->machine().cpu_active_watts_per_core *
                     exec.busy_core_seconds;
    dynamic_.cpu_dynamic_j += j;
    dynamic_joules += j;
  }
  const double dram_j =
      model_->machine().dram_joules_per_byte * work.bytes;
  dynamic_.dram_j += dram_j;
  dynamic_joules += dram_j;

  if (scope_path.empty()) scope_path = kUnscopedPath;
  auto it = scopes_.find(scope_path);
  if (it == scopes_.end()) {
    it = scopes_.emplace(std::string(scope_path), ScopeCharge{}).first;
  }
  ScopeCharge& sc = it->second;
  sc.seconds += exec.seconds;
  sc.joules += dynamic_joules;
  sc.flops += work.flops;
  sc.bytes += work.bytes;
  ++sc.charges;
}

EnergyReading EnergyMeter::Stop(double clock_now) {
  GREEN_CHECK(running_);
  EnergyReading out = Peek(clock_now);
  running_ = false;
  return out;
}

EnergyReading EnergyMeter::Peek(double clock_now) const {
  EnergyReading out;
  if (!running_) return out;
  const double elapsed = clock_now - start_time_;
  out.seconds = elapsed > 0.0 ? elapsed : 0.0;
  out.breakdown = dynamic_;
  for (const auto& [path, charge] : scopes_) out.scopes[path] = charge;
  out.breakdown.cpu_static_j +=
      model_->machine().cpu_static_watts * out.seconds;
  if (model_->machine().has_gpu) {
    out.breakdown.gpu_idle_j +=
        model_->machine().gpu_idle_watts * out.seconds;
  }
  return out;
}

}  // namespace green
