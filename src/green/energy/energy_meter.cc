#include "green/energy/energy_meter.h"

#include "green/common/logging.h"

namespace green {

EnergyMeter::EnergyMeter(const EnergyModel* model) : model_(model) {
  GREEN_CHECK(model_ != nullptr);
}

void EnergyMeter::Start(double clock_now) {
  GREEN_CHECK(!running_);
  running_ = true;
  start_time_ = clock_now;
  dynamic_ = EnergyBreakdown{};
}

void EnergyMeter::Record(const Work& work, const WorkExecution& exec) {
  if (!running_) return;
  if (exec.gpu_busy_seconds > 0.0) {
    dynamic_.gpu_dynamic_j +=
        model_->machine().gpu_active_watts * exec.gpu_busy_seconds;
  }
  if (exec.busy_core_seconds > 0.0) {
    dynamic_.cpu_dynamic_j += model_->machine().cpu_active_watts_per_core *
                              exec.busy_core_seconds;
  }
  dynamic_.dram_j += model_->machine().dram_joules_per_byte * work.bytes;
}

EnergyReading EnergyMeter::Stop(double clock_now) {
  GREEN_CHECK(running_);
  EnergyReading out = Peek(clock_now);
  running_ = false;
  return out;
}

EnergyReading EnergyMeter::Peek(double clock_now) const {
  EnergyReading out;
  if (!running_) return out;
  const double elapsed = clock_now - start_time_;
  out.seconds = elapsed > 0.0 ? elapsed : 0.0;
  out.breakdown = dynamic_;
  out.breakdown.cpu_static_j +=
      model_->machine().cpu_static_watts * out.seconds;
  if (model_->machine().has_gpu) {
    out.breakdown.gpu_idle_j +=
        model_->machine().gpu_idle_watts * out.seconds;
  }
  return out;
}

}  // namespace green
