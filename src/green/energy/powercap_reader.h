#ifndef GREEN_ENERGY_POWERCAP_READER_H_
#define GREEN_ENERGY_POWERCAP_READER_H_

#include <string>
#include <vector>

#include "green/common/status.h"

namespace green {

/// Best-effort reader for the Linux powercap interface
/// (/sys/class/powercap/intel-rapl*), the same source CodeCarbon uses.
/// All simulated experiments in this repository are driven by the
/// deterministic EnergyModel; this reader exists so the library can be
/// pointed at real hardware when RAPL is accessible, and degrades
/// gracefully (NotFound) when it is not — e.g. in containers or on
/// non-Intel machines.
class PowercapReader {
 public:
  struct Zone {
    std::string name;         ///< e.g. "package-0", "dram".
    std::string energy_path;  ///< sysfs file with cumulative microjoules.
    /// Wrap point of the cumulative counter (max_energy_range_uj);
    /// 0 when the range file is unreadable (no wrap correction possible).
    double max_energy_range_uj = 0.0;
  };

  /// Scans `root` for RAPL zones. Default root is the live sysfs tree.
  static Result<PowercapReader> Discover(
      const std::string& root = "/sys/class/powercap");

  const std::vector<Zone>& zones() const { return zones_; }

  /// Cumulative energy of one zone in Joules (raw counter: wraps at
  /// max_energy_range_uj — use the interval API for deltas).
  Result<double> ReadZoneJoules(size_t zone_index) const;

  /// Sum over all discovered zones, in Joules. Raw counters, see above.
  Result<double> ReadTotalJoules() const;

  /// Snapshots every zone counter, delimiting a measurement interval.
  Status BeginInterval();

  /// Wrap-corrected Joules consumed across all zones since the last
  /// BeginInterval. RAPL counters wrap at max_energy_range_uj (every few
  /// minutes under load on some packages); a raw delta across a wrap
  /// goes negative, so each zone delta is corrected by its range. A
  /// counter wrapping more than once per interval is undetectable —
  /// callers should sample at least every few minutes.
  Result<double> IntervalJoules() const;

  /// Delta between two cumulative microjoule readings of a counter that
  /// wraps at `max_range_uj`: adds one wrap when cur < prev. With an
  /// unknown range (0), a negative delta clamps to 0 instead of
  /// reporting negative energy. Exposed for tests.
  static double WrapCorrectedDeltaUj(double prev_uj, double cur_uj,
                                     double max_range_uj);

 private:
  explicit PowercapReader(std::vector<Zone> zones)
      : zones_(std::move(zones)) {}

  std::vector<Zone> zones_;
  std::vector<double> interval_baseline_uj_;  ///< Set by BeginInterval.
};

}  // namespace green

#endif  // GREEN_ENERGY_POWERCAP_READER_H_
