#ifndef GREEN_ENERGY_POWERCAP_READER_H_
#define GREEN_ENERGY_POWERCAP_READER_H_

#include <string>
#include <vector>

#include "green/common/fault.h"
#include "green/common/status.h"

namespace green {

/// Best-effort reader for the Linux powercap interface
/// (/sys/class/powercap/intel-rapl*), the same source CodeCarbon uses.
/// All simulated experiments in this repository are driven by the
/// deterministic EnergyModel; this reader exists so the library can be
/// pointed at real hardware when RAPL is accessible, and degrades
/// gracefully (NotFound) when it is not — e.g. in containers or on
/// non-Intel machines.
class PowercapReader {
 public:
  struct Zone {
    std::string name;         ///< e.g. "package-0", "dram".
    std::string energy_path;  ///< sysfs file with cumulative microjoules.
    /// Wrap point of the cumulative counter (max_energy_range_uj);
    /// 0 when the range file is unreadable (no wrap correction possible).
    double max_energy_range_uj = 0.0;
  };

  /// Scans `root` for RAPL zones. Default root is the live sysfs tree.
  static Result<PowercapReader> Discover(
      const std::string& root = "/sys/class/powercap");

  const std::vector<Zone>& zones() const { return zones_; }

  /// Cumulative energy of one zone in Joules (raw counter: wraps at
  /// max_energy_range_uj — use the interval API for deltas).
  Result<double> ReadZoneJoules(size_t zone_index) const;

  /// Sum over readable zones, in Joules. Raw counters, see above. A zone
  /// whose sysfs file has become unreadable (hotplug, permission flip)
  /// is dropped with a warning; only all zones failing is an error.
  Result<double> ReadTotalJoules() const;

  /// Snapshots every zone counter, delimiting a measurement interval.
  /// Zones that fail to read are marked absent from the interval (with a
  /// warning) instead of failing the snapshot; errors only when no zone
  /// at all is readable.
  Status BeginInterval();

  /// Wrap-corrected Joules consumed across all zones since the last
  /// BeginInterval. RAPL counters wrap at max_energy_range_uj (every few
  /// minutes under load on some packages); a raw delta across a wrap
  /// goes negative, so each zone delta is corrected by its range. A
  /// counter wrapping more than once per interval is undetectable —
  /// callers should sample at least every few minutes.
  ///
  /// Degrades per zone: a zone that disappeared mid-interval (or had no
  /// baseline) contributes nothing, with a warning. Only every zone
  /// failing is an error.
  Result<double> IntervalJoules() const;

  /// Optional fault injection (site `powercap.read`, applied to every
  /// zone-counter read) for exercising the degradation paths in tests.
  /// The injector must outlive the reader; nullptr disables.
  void set_fault_injector(const FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Delta between two cumulative microjoule readings of a counter that
  /// wraps at `max_range_uj`: adds one wrap when cur < prev. With an
  /// unknown range (0), a negative delta clamps to 0 instead of
  /// reporting negative energy. Exposed for tests.
  static double WrapCorrectedDeltaUj(double prev_uj, double cur_uj,
                                     double max_range_uj);

 private:
  explicit PowercapReader(std::vector<Zone> zones)
      : zones_(std::move(zones)) {}

  /// One zone counter read with fault injection applied.
  Result<double> ReadCounterUj(size_t zone_index) const;

  std::vector<Zone> zones_;
  std::vector<double> interval_baseline_uj_;  ///< Set by BeginInterval.
  const FaultInjector* fault_injector_ = nullptr;  // Not owned.
};

}  // namespace green

#endif  // GREEN_ENERGY_POWERCAP_READER_H_
