#ifndef GREEN_ENERGY_POWERCAP_READER_H_
#define GREEN_ENERGY_POWERCAP_READER_H_

#include <string>
#include <vector>

#include "green/common/status.h"

namespace green {

/// Best-effort reader for the Linux powercap interface
/// (/sys/class/powercap/intel-rapl*), the same source CodeCarbon uses.
/// All simulated experiments in this repository are driven by the
/// deterministic EnergyModel; this reader exists so the library can be
/// pointed at real hardware when RAPL is accessible, and degrades
/// gracefully (NotFound) when it is not — e.g. in containers or on
/// non-Intel machines.
class PowercapReader {
 public:
  struct Zone {
    std::string name;         ///< e.g. "package-0", "dram".
    std::string energy_path;  ///< sysfs file with cumulative microjoules.
  };

  /// Scans `root` for RAPL zones. Default root is the live sysfs tree.
  static Result<PowercapReader> Discover(
      const std::string& root = "/sys/class/powercap");

  const std::vector<Zone>& zones() const { return zones_; }

  /// Cumulative energy of one zone in Joules.
  Result<double> ReadZoneJoules(size_t zone_index) const;

  /// Sum over all discovered zones, in Joules.
  Result<double> ReadTotalJoules() const;

 private:
  explicit PowercapReader(std::vector<Zone> zones)
      : zones_(std::move(zones)) {}

  std::vector<Zone> zones_;
};

}  // namespace green

#endif  // GREEN_ENERGY_POWERCAP_READER_H_
