#include "green/energy/powercap_reader.h"

#include <dirent.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "green/common/logging.h"
#include "green/common/stringutil.h"

namespace green {

namespace {

Result<std::string> ReadSmallFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  char buf[256];
  std::string out;
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
    if (out.size() > 4096) break;  // Sysfs values are tiny.
  }
  std::fclose(f);
  return out;
}

}  // namespace

Result<PowercapReader> PowercapReader::Discover(const std::string& root) {
  DIR* dir = opendir(root.c_str());
  if (dir == nullptr) {
    return Status::NotFound("powercap root not available: " + root);
  }
  std::vector<Zone> zones;
  for (dirent* e = readdir(dir); e != nullptr; e = readdir(dir)) {
    const std::string entry = e->d_name;
    if (!StartsWith(entry, "intel-rapl")) continue;
    const std::string dir_path = root + "/" + entry;
    const std::string name_path = dir_path + "/name";
    const std::string energy_path = dir_path + "/energy_uj";
    auto name = ReadSmallFile(name_path);
    if (!name.ok()) continue;
    auto probe = ReadSmallFile(energy_path);
    if (!probe.ok()) continue;  // Often unreadable without privileges.
    Zone z;
    z.name = std::string(Trim(name.value()));
    z.energy_path = energy_path;
    // The counter wraps at max_energy_range_uj; keep it for delta
    // correction. Unreadable range (rare) => 0 = no correction.
    auto range = ReadSmallFile(dir_path + "/max_energy_range_uj");
    if (range.ok()) {
      z.max_energy_range_uj = std::strtod(range.value().c_str(), nullptr);
    }
    zones.push_back(std::move(z));
  }
  closedir(dir);
  if (zones.empty()) {
    return Status::NotFound("no readable RAPL zones under " + root);
  }
  return PowercapReader(std::move(zones));
}

Result<double> PowercapReader::ReadCounterUj(size_t zone_index) const {
  if (fault_injector_ != nullptr) {
    GREEN_RETURN_IF_ERROR(fault_injector_->Check("powercap.read"));
  }
  GREEN_ASSIGN_OR_RETURN(std::string raw,
                         ReadSmallFile(zones_[zone_index].energy_path));
  return std::strtod(raw.c_str(), nullptr);
}

Result<double> PowercapReader::ReadZoneJoules(size_t zone_index) const {
  if (zone_index >= zones_.size()) {
    return Status::OutOfRange("zone index out of range");
  }
  GREEN_ASSIGN_OR_RETURN(double micro_joules, ReadCounterUj(zone_index));
  return micro_joules * 1e-6;
}

Result<double> PowercapReader::ReadTotalJoules() const {
  double total = 0.0;
  size_t readable = 0;
  for (size_t i = 0; i < zones_.size(); ++i) {
    auto joules = ReadZoneJoules(i);
    if (!joules.ok()) {
      // Hotplug or permission flip mid-run: drop the zone, keep the
      // reading usable.
      LogWarning("powercap: dropping zone " + zones_[i].name + ": " +
                 joules.status().ToString());
      continue;
    }
    total += joules.value();
    ++readable;
  }
  if (readable == 0) {
    return Status::IoError("no RAPL zone readable");
  }
  return total;
}

double PowercapReader::WrapCorrectedDeltaUj(double prev_uj, double cur_uj,
                                            double max_range_uj) {
  double delta = cur_uj - prev_uj;
  if (delta < 0.0 && max_range_uj > 0.0) delta += max_range_uj;
  // Still negative: unknown range or a counter reset — clamp rather
  // than report negative energy.
  return delta < 0.0 ? 0.0 : delta;
}

Status PowercapReader::BeginInterval() {
  // NaN marks a zone absent from this interval (its baseline could not
  // be read); IntervalJoules then excludes it rather than computing a
  // delta against garbage.
  std::vector<double> baseline;
  baseline.reserve(zones_.size());
  size_t readable = 0;
  for (size_t i = 0; i < zones_.size(); ++i) {
    auto counter = ReadCounterUj(i);
    if (!counter.ok()) {
      LogWarning("powercap: zone " + zones_[i].name +
                 " absent from interval: " + counter.status().ToString());
      baseline.push_back(std::numeric_limits<double>::quiet_NaN());
      continue;
    }
    baseline.push_back(counter.value());
    ++readable;
  }
  if (readable == 0) {
    return Status::IoError("no RAPL zone readable at interval start");
  }
  interval_baseline_uj_ = std::move(baseline);
  return Status::Ok();
}

Result<double> PowercapReader::IntervalJoules() const {
  if (interval_baseline_uj_.size() != zones_.size()) {
    return Status::FailedPrecondition(
        "IntervalJoules without a matching BeginInterval");
  }
  double total_uj = 0.0;
  size_t contributed = 0;
  for (size_t i = 0; i < zones_.size(); ++i) {
    if (std::isnan(interval_baseline_uj_[i])) continue;  // No baseline.
    auto counter = ReadCounterUj(i);
    if (!counter.ok()) {
      // The zone disappeared mid-interval: its partial energy is lost,
      // but the other zones' deltas are still valid.
      LogWarning("powercap: dropping zone " + zones_[i].name +
                 " mid-interval: " + counter.status().ToString());
      continue;
    }
    total_uj += WrapCorrectedDeltaUj(interval_baseline_uj_[i],
                                     counter.value(),
                                     zones_[i].max_energy_range_uj);
    ++contributed;
  }
  if (contributed == 0) {
    return Status::IoError("no RAPL zone contributed to the interval");
  }
  return total_uj * 1e-6;
}

}  // namespace green
