#include "green/energy/powercap_reader.h"

#include <dirent.h>

#include <cstdio>
#include <cstdlib>

#include "green/common/stringutil.h"

namespace green {

namespace {

Result<std::string> ReadSmallFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  char buf[256];
  std::string out;
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
    if (out.size() > 4096) break;  // Sysfs values are tiny.
  }
  std::fclose(f);
  return out;
}

}  // namespace

Result<PowercapReader> PowercapReader::Discover(const std::string& root) {
  DIR* dir = opendir(root.c_str());
  if (dir == nullptr) {
    return Status::NotFound("powercap root not available: " + root);
  }
  std::vector<Zone> zones;
  for (dirent* e = readdir(dir); e != nullptr; e = readdir(dir)) {
    const std::string entry = e->d_name;
    if (!StartsWith(entry, "intel-rapl")) continue;
    const std::string dir_path = root + "/" + entry;
    const std::string name_path = dir_path + "/name";
    const std::string energy_path = dir_path + "/energy_uj";
    auto name = ReadSmallFile(name_path);
    if (!name.ok()) continue;
    auto probe = ReadSmallFile(energy_path);
    if (!probe.ok()) continue;  // Often unreadable without privileges.
    Zone z;
    z.name = std::string(Trim(name.value()));
    z.energy_path = energy_path;
    zones.push_back(std::move(z));
  }
  closedir(dir);
  if (zones.empty()) {
    return Status::NotFound("no readable RAPL zones under " + root);
  }
  return PowercapReader(std::move(zones));
}

Result<double> PowercapReader::ReadZoneJoules(size_t zone_index) const {
  if (zone_index >= zones_.size()) {
    return Status::OutOfRange("zone index out of range");
  }
  GREEN_ASSIGN_OR_RETURN(std::string raw,
                         ReadSmallFile(zones_[zone_index].energy_path));
  const double micro_joules = std::strtod(raw.c_str(), nullptr);
  return micro_joules * 1e-6;
}

Result<double> PowercapReader::ReadTotalJoules() const {
  double total = 0.0;
  for (size_t i = 0; i < zones_.size(); ++i) {
    GREEN_ASSIGN_OR_RETURN(double j, ReadZoneJoules(i));
    total += j;
  }
  return total;
}

}  // namespace green
