#include "green/energy/co2.h"

namespace green {

GridIntensityTable::GridIntensityTable() {
  // kg CO2 per kWh, representative 2023 values per grid.
  entries_ = {
      {"DE", 0.222}, {"FR", 0.056}, {"PL", 0.662}, {"SE", 0.025},
      {"US", 0.367}, {"CN", 0.582}, {"IN", 0.713}, {"NO", 0.019},
      {"GB", 0.207}, {"ES", 0.165},
  };
}

Result<double> GridIntensityTable::KgCo2PerKwh(
    const std::string& country_code) const {
  for (const auto& [code, value] : entries_) {
    if (code == country_code) return value;
  }
  return Status::NotFound("no grid intensity for " + country_code);
}

ImpactEstimate EstimateImpact(double kwh, const EmissionFactors& factors) {
  ImpactEstimate out;
  out.kwh = kwh;
  out.kg_co2 = kwh * factors.kg_co2_per_kwh;
  out.eur = kwh * factors.eur_per_kwh;
  return out;
}

}  // namespace green
