#include "green/bench_util/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "green/bench_util/table_printer.h"
#include "green/common/fault.h"
#include "green/common/mathutil.h"
#include "green/common/stringutil.h"

namespace green {

Stats ComputeStats(const std::vector<double>& values) {
  Stats out;
  out.n = values.size();
  out.mean = Mean(values);
  out.stddev = StdDev(values);
  return out;
}

Stats BootstrapAcrossDatasets(
    const std::vector<RunRecord>& records,
    const std::function<double(const RunRecord&)>& metric,
    int bootstrap_samples, uint64_t seed) {
  // Group metric values by dataset.
  std::map<std::string, std::vector<double>> by_dataset;
  for (const RunRecord& record : records) {
    by_dataset[record.dataset].push_back(metric(record));
  }
  if (by_dataset.empty()) return Stats{};

  Rng rng(seed);
  std::vector<double> bootstrap_means;
  bootstrap_means.reserve(static_cast<size_t>(bootstrap_samples));
  for (int b = 0; b < bootstrap_samples; ++b) {
    double sum = 0.0;
    for (const auto& [dataset, values] : by_dataset) {
      sum += values[static_cast<size_t>(rng.NextBounded(values.size()))];
    }
    bootstrap_means.push_back(sum /
                              static_cast<double>(by_dataset.size()));
  }
  return ComputeStats(bootstrap_means);
}

std::vector<RunRecord> Filter(const std::vector<RunRecord>& records,
                              const std::string& system,
                              double paper_budget) {
  std::vector<RunRecord> out;
  for (const RunRecord& record : records) {
    if (record.system == system &&
        std::fabs(record.paper_budget_seconds - paper_budget) < 1e-9) {
      out.push_back(record);
    }
  }
  return out;
}

std::vector<RunRecord> Filter(const std::vector<RunRecord>& records,
                              const std::string& system,
                              double paper_budget,
                              const std::string& variant) {
  std::vector<RunRecord> out;
  for (const RunRecord& record : Filter(records, system, paper_budget)) {
    if (record.variant == variant) out.push_back(record);
  }
  return out;
}

std::vector<RunRecord> OkOnly(const std::vector<RunRecord>& records) {
  std::vector<RunRecord> out;
  out.reserve(records.size());
  for (const RunRecord& record : records) {
    if (record.ok()) out.push_back(record);
  }
  return out;
}

std::vector<std::pair<std::string, OutcomeCounts>> CountOutcomes(
    const std::vector<RunRecord>& records) {
  std::vector<std::pair<std::string, OutcomeCounts>> out;
  for (const RunRecord& record : records) {
    auto it = std::find_if(out.begin(), out.end(),
                           [&](const auto& entry) {
                             return entry.first == record.system;
                           });
    if (it == out.end()) {
      out.emplace_back(record.system, OutcomeCounts{});
      it = std::prev(out.end());
    }
    switch (record.outcome) {
      case RunOutcome::kOk:
        ++it->second.ok;
        break;
      case RunOutcome::kFailed:
        ++it->second.failed;
        break;
      case RunOutcome::kTimeout:
        ++it->second.timeout;
        break;
      case RunOutcome::kSkipped:
        ++it->second.skipped;
        break;
    }
  }
  return out;
}

std::string RenderFailureSummary(
    const std::vector<RunRecord>& records,
    const std::vector<std::pair<std::string, size_t>>& extra_failures) {
  size_t extra_total = 0;
  for (const auto& [site, count] : extra_failures) extra_total += count;

  const auto counts = CountOutcomes(records);
  bool any_non_ok = false;
  for (const auto& [system, c] : counts) {
    if (c.failed + c.timeout + c.skipped > 0) any_non_ok = true;
  }
  if (!any_non_ok && extra_total == 0) return std::string();

  std::string out;
  if (any_non_ok) {
    TablePrinter table({"system", "cells", "ok", "failed", "timeout",
                        "skipped"});
    for (const auto& [system, c] : counts) {
      table.AddRow({system, StrFormat("%zu", c.total()),
                    StrFormat("%zu", c.ok), StrFormat("%zu", c.failed),
                    StrFormat("%zu", c.timeout),
                    StrFormat("%zu", c.skipped)});
    }
    out += table.Render();
  }

  // Per-fault-site breakdown: only failures that trace back to an
  // injected fault (or were handed in via extra_failures) appear, so
  // sweeps with purely organic skips/timeouts keep the original output.
  struct SiteCounts {
    size_t failed = 0;
    size_t timeout = 0;
    size_t skipped = 0;
  };
  std::map<std::string, SiteCounts> sites;
  for (const RunRecord& record : records) {
    if (record.ok()) continue;
    const std::string site = InjectedFaultSite(record.error);
    if (site.empty()) continue;
    SiteCounts& c = sites[site];
    switch (record.outcome) {
      case RunOutcome::kOk:
        break;
      case RunOutcome::kFailed:
        ++c.failed;
        break;
      case RunOutcome::kTimeout:
        ++c.timeout;
        break;
      case RunOutcome::kSkipped:
        ++c.skipped;
        break;
    }
  }
  for (const auto& [site, count] : extra_failures) {
    if (count > 0) sites[site].failed += count;
  }
  if (!sites.empty()) {
    TablePrinter table({"fault site", "failed", "timeout", "skipped"});
    for (const auto& [site, c] : sites) {
      table.AddRow({site, StrFormat("%zu", c.failed),
                    StrFormat("%zu", c.timeout),
                    StrFormat("%zu", c.skipped)});
    }
    out += "-- failures by injected fault site --\n";
    out += table.Render();
  }
  return out;
}

std::string RenderTransformCacheStats(const TransformCacheStats& stats,
                                      double budget_mb) {
  if (stats.hits + stats.misses + stats.predict_hits +
          stats.predict_misses ==
      0) {
    return std::string();
  }
  auto rate = [](uint64_t hits, uint64_t misses) {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(hits) /
                            static_cast<double>(total);
  };
  TablePrinter table({"cache path", "hits", "misses", "hit rate"});
  table.AddRow({"fit", StrFormat("%llu",
                                 static_cast<unsigned long long>(stats.hits)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(stats.misses)),
                StrFormat("%.1f%%", rate(stats.hits, stats.misses))});
  table.AddRow(
      {"predict",
       StrFormat("%llu", static_cast<unsigned long long>(stats.predict_hits)),
       StrFormat("%llu",
                 static_cast<unsigned long long>(stats.predict_misses)),
       StrFormat("%.1f%%", rate(stats.predict_hits, stats.predict_misses))});
  std::string out = table.Render();
  out += StrFormat(
      "transform cache  : %zu entries, %.1f MB of %.0f MB, %llu "
      "eviction(s)\n",
      stats.entries, static_cast<double>(stats.bytes) / (1024.0 * 1024.0),
      budget_mb, static_cast<unsigned long long>(stats.evictions));
  return out;
}

std::string RenderEnergyBreakdown(const std::vector<RunRecord>& records) {
  const std::vector<RunRecord> ok = OkOnly(records);
  bool any_scopes = false;
  for (const RunRecord& record : ok) {
    if (!record.scopes.empty()) any_scopes = true;
  }
  if (!any_scopes) return std::string();

  struct StageSpec {
    const char* prefix;
    const char* title;
    const char* unit;
    double (*total)(const RunRecord&);
  };
  const StageSpec stages[] = {
      {"execution/", "execution energy by scope", "kWh",
       [](const RunRecord& r) { return r.execution_kwh; }},
      {"inference/", "inference energy by scope", "kWh/instance",
       [](const RunRecord& r) { return r.inference_kwh_per_instance; }},
  };

  std::string out;
  for (const StageSpec& stage : stages) {
    TablePrinter table({"system", "scope", stage.unit, "share", "charges"});
    bool any_rows = false;
    for (const std::string& system : DistinctSystems(ok)) {
      double total = 0.0;
      double attributed = 0.0;
      std::map<std::string, std::pair<double, uint64_t>> rows;
      for (const RunRecord& record : ok) {
        if (record.system != system) continue;
        total += stage.total(record);
        for (const RunScope& scope : record.scopes) {
          if (scope.path.rfind(stage.prefix, 0) != 0) continue;
          auto& row = rows[scope.path.substr(strlen(stage.prefix))];
          row.first += scope.kwh;
          row.second += scope.charges;
          attributed += scope.kwh;
        }
      }
      if (rows.empty()) continue;
      any_rows = true;
      for (const auto& [path, row] : rows) {
        table.AddRow({system, path, StrFormat("%.6g", row.first),
                      StrFormat("%.1f%%", total > 0.0
                                    ? 100.0 * row.first / total
                                    : 0.0),
                      StrFormat("%llu",
                                static_cast<unsigned long long>(
                                    row.second))});
      }
      // Static package + idle power belongs to elapsed wall time, not to
      // any scope; this remainder row makes the column sum to `total`.
      const double baseline = total - attributed;
      table.AddRow({system, "(baseline: static+idle)",
                    StrFormat("%.6g", baseline),
                    StrFormat("%.1f%%",
                              total > 0.0 ? 100.0 * baseline / total : 0.0),
                    "-"});
      table.AddRow({system, "total", StrFormat("%.6g", total), "100.0%",
                    "-"});
    }
    if (!any_rows) continue;
    out += StrFormat("-- %s (%s) --\n", stage.title, stage.unit);
    out += table.Render();
  }
  return out;
}

std::vector<std::string> DistinctSystems(
    const std::vector<RunRecord>& records) {
  std::vector<std::string> out;
  for (const RunRecord& record : records) {
    if (std::find(out.begin(), out.end(), record.system) == out.end()) {
      out.push_back(record.system);
    }
  }
  return out;
}

std::vector<double> DistinctBudgets(const std::vector<RunRecord>& records,
                                    const std::string& system) {
  std::vector<double> out;
  for (const RunRecord& record : records) {
    if (record.system != system) continue;
    if (std::find(out.begin(), out.end(),
                  record.paper_budget_seconds) == out.end()) {
      out.push_back(record.paper_budget_seconds);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace green
