#ifndef GREEN_BENCH_UTIL_EXPERIMENT_H_
#define GREEN_BENCH_UTIL_EXPERIMENT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "green/automl/askl_system.h"
#include "green/automl/automl_system.h"
#include "green/data/amlb_suite.h"
#include "green/energy/machine_model.h"
#include "green/metaopt/tuned_config_store.h"

namespace green {

/// Configuration shared by all paper-experiment benches.
///
/// Budgets are quoted in PAPER seconds (10/30/60/300); `budget_scale`
/// converts them to virtual seconds on the simulated machine so a full
/// sweep stays CI-grade. Reported seconds and kWh are scaled back to
/// paper scale (energy is approximately linear in time at fixed power),
/// keeping magnitudes comparable with the paper's charts.
struct ExperimentConfig {
  SimulationProfile profile = SimulationProfile::FromEnv();
  double budget_scale = 0.15;
  std::vector<double> paper_budgets = {10.0, 30.0, 60.0, 300.0};
  size_t dataset_limit = 8;  ///< 0 = all 39 tasks.
  int repetitions = 2;
  uint64_t seed = 42;
  MachineModel machine = MachineModel::XeonGold6132();
  int cores = 1;
  /// Host worker threads for Sweep (NOT the simulated `cores`): cells run
  /// concurrently on `jobs` threads, results stay in enumeration order.
  int jobs = 1;

  /// Reads GREEN_FULL to decide between the fast subset and the full
  /// 39-task x 10-repetition configuration, and GREEN_JOBS for the
  /// number of sweep worker threads (0 = all hardware threads).
  static ExperimentConfig FromEnv();
};

/// Parses GREEN_JOBS: unset/invalid = 1, 0 = hardware concurrency,
/// otherwise the given worker count (clamped to >= 1).
int JobsFromEnv();

/// One (system, dataset, budget, repetition) measurement.
struct RunRecord {
  std::string system;
  std::string dataset;
  double paper_budget_seconds = 0.0;
  int repetition = 0;

  double test_balanced_accuracy = 0.0;
  /// Execution stage, scaled back to paper scale.
  double execution_seconds = 0.0;
  double execution_kwh = 0.0;
  /// Inference on the held-out test set, per instance.
  double inference_kwh_per_instance = 0.0;
  double inference_seconds_per_instance = 0.0;
  size_t num_pipelines = 0;
  int pipelines_evaluated = 0;
  double best_validation_score = 0.0;
};

/// Names accepted by MakeSystem / RunOne.
const std::vector<std::string>& AllSystemNames();

/// Runs paper experiments: constructs systems by name, instantiates AMLB
/// tasks, meters execution and inference separately, scales readings back
/// to paper scale.
///
/// Thread safety: RunOne is safe to call concurrently from multiple
/// threads (Sweep does so when config.jobs > 1). Every run gets its own
/// clock/context/meter; the shared EnergyModel and TunedConfigStore are
/// strictly read-only, the ASKL meta-store is built exactly once behind
/// std::call_once, and the development-energy accumulator is atomic.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const ExperimentConfig& config);

  /// The instantiated evaluation suite (possibly limited).
  const std::vector<Dataset>& suite() const { return suite_; }

  /// Runs one (system, dataset, budget, repetition). `cores` overrides
  /// the config for the parallelism study; pass 0 to use the default.
  Result<RunRecord> RunOne(const std::string& system_name,
                           const Dataset& dataset, double paper_budget,
                           int repetition, int cores = 0);

  /// Full sweep over the suite for the given systems and budgets.
  /// With config.jobs > 1 the cells execute on that many host worker
  /// threads; run seeds are order-independent, so the records are
  /// bit-identical to the sequential sweep and always emitted in
  /// enumeration order (system, budget, dataset, repetition).
  Result<std::vector<RunRecord>> Sweep(
      const std::vector<std::string>& systems,
      const std::vector<double>& paper_budgets);

  /// Minimum supported paper budget, as declared by the system itself
  /// (AutoMlSystem::MinBudgetSeconds: 30 s for ASKL, 60 s for TPOT) —
  /// used to skip unsupported points like the paper does. Unknown
  /// systems report 0 (the sweep surfaces the NotFound per cell).
  double MinBudget(const std::string& system_name) const;

  const ExperimentConfig& config() const { return config_; }

  /// Development-stage energy spent inside this runner so far (meta-store
  /// construction for autosklearn2), at paper scale.
  double development_kwh() const { return development_kwh_.load(); }

  /// Real (host) wall-clock seconds of the most recent Sweep, for
  /// reporting parallel speedup. 0 before the first sweep.
  double last_sweep_wall_seconds() const {
    return last_sweep_wall_seconds_;
  }

  /// Builds a system instance; `budget` selects CAML(tuned) parameters.
  Result<std::unique_ptr<AutoMlSystem>> MakeSystem(
      const std::string& system_name, double paper_budget);

 private:
  Status EnsureMetaStore();

  ExperimentConfig config_;
  EnergyModel energy_model_;
  std::vector<Dataset> suite_;
  TunedConfigStore tuned_store_;
  std::once_flag meta_once_;
  Status meta_status_;
  std::unique_ptr<AsklMetaStore> meta_store_;
  std::atomic<double> development_kwh_{0.0};
  double last_sweep_wall_seconds_ = 0.0;
};

}  // namespace green

#endif  // GREEN_BENCH_UTIL_EXPERIMENT_H_
