#ifndef GREEN_BENCH_UTIL_EXPERIMENT_H_
#define GREEN_BENCH_UTIL_EXPERIMENT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "green/automl/askl_system.h"
#include "green/automl/automl_system.h"
#include "green/common/cancel.h"
#include "green/common/fault.h"
#include "green/common/retry.h"
#include "green/common/shard.h"
#include "green/data/amlb_suite.h"
#include "green/energy/machine_model.h"
#include "green/metaopt/tuned_config_store.h"
#include "green/ml/transform_cache.h"

namespace green {

/// Configuration shared by all paper-experiment benches.
///
/// Budgets are quoted in PAPER seconds (10/30/60/300); `budget_scale`
/// converts them to virtual seconds on the simulated machine so a full
/// sweep stays CI-grade. Reported seconds and kWh are scaled back to
/// paper scale (energy is approximately linear in time at fixed power),
/// keeping magnitudes comparable with the paper's charts.
struct ExperimentConfig {
  SimulationProfile profile = SimulationProfile::FromEnv();
  double budget_scale = 0.15;
  std::vector<double> paper_budgets = {10.0, 30.0, 60.0, 300.0};
  size_t dataset_limit = 8;  ///< 0 = all 39 tasks.
  int repetitions = 2;
  uint64_t seed = 42;
  MachineModel machine = MachineModel::XeonGold6132();
  int cores = 1;
  /// Host worker threads for Sweep (NOT the simulated `cores`): cells run
  /// concurrently on `jobs` threads, results stay in enumeration order.
  int jobs = 1;
  /// Multi-process sharding (GREEN_SHARD="i/n", CLI --shard i/n): cells
  /// keep their canonical enumeration order, and this process runs only
  /// the cells whose global index shard-index i of n owns (round-robin).
  /// Point each shard at its own journal and recombine them with
  /// MergeShardJournals / --merge-journals; the merged stream is
  /// byte-identical to an unsharded sweep. Defaults to unsharded.
  int shard_index = 0;
  int shard_count = 1;

  /// Per-cell retry policy for transient failures (max_attempts = 1
  /// disables retries). Backoff advances a bookkeeping virtual clock,
  /// never a host sleep.
  RetryPolicy retry;
  /// Host wall-clock seconds a single cell may run before the sweep
  /// watchdog cancels it (recorded as a `timeout`). 0 disables the
  /// watchdog.
  double cell_timeout_seconds = 0.0;
  /// Fault-injection spec (GREEN_FAULTS grammar, see common/fault.h).
  /// Empty = no injected faults.
  std::string faults;
  /// JSONL journal Sweep appends each completed cell to; empty disables
  /// journaling.
  std::string journal_path;
  /// With a journal: load cells already present in it instead of
  /// re-running them. Without: the journal is truncated at sweep start.
  bool resume = false;
  /// Copy per-scope energy breakdowns onto each RunRecord (CLI
  /// `--breakdown`, GREEN_SCOPES=1). Off by default so record streams
  /// written by the fig/table benches stay byte-identical to before the
  /// scope tree existed.
  bool collect_scopes = false;
  /// Memoize fitted transformer chains across search trials
  /// (GREEN_TRANSFORM_CACHE=0|1, CLI --transform-cache 0|1). Purely a
  /// host-time optimization: cache hits replay the recorded charge tape,
  /// so records, energy totals, and scope trees are bit-identical with
  /// the cache on or off.
  bool transform_cache = true;
  /// Transform-cache byte budget in MB (GREEN_TRANSFORM_CACHE_MB);
  /// LRU-evicts beyond it.
  double transform_cache_mb = 256.0;

  /// Reads GREEN_FULL to decide between the fast subset and the full
  /// 39-task x 10-repetition configuration, plus GREEN_JOBS,
  /// GREEN_FAULTS, GREEN_JOURNAL, GREEN_RESUME, GREEN_RETRIES, and
  /// GREEN_CELL_TIMEOUT.
  static ExperimentConfig FromEnv();
};

/// Parses GREEN_JOBS: unset/invalid = 1, 0 = hardware concurrency,
/// otherwise the given worker count (clamped to [1, 4096]).
int JobsFromEnv();

/// Parses GREEN_FAULTS leniently (bad clauses dropped with a warning);
/// returns the raw spec string ("" when unset).
std::string FaultsFromEnv();

/// GREEN_JOURNAL: journal path, "" when unset.
std::string JournalFromEnv();

/// GREEN_RESUME: true iff set to a value starting with '1'.
bool ResumeFromEnv();

/// GREEN_RETRIES: max attempts per cell, clamped to [1, 100];
/// unset/invalid = the RetryPolicy default.
int RetriesFromEnv();

/// GREEN_CELL_TIMEOUT: per-cell watchdog seconds, clamped to >= 0;
/// unset/invalid = 0 (disabled).
double CellTimeoutFromEnv();

/// GREEN_SCOPES: true iff set to a value starting with '1'.
bool ScopesFromEnv();

/// GREEN_TRANSFORM_CACHE: false iff set to a value starting with '0'
/// (default on).
bool TransformCacheFromEnv();

/// GREEN_TRANSFORM_CACHE_MB: cache budget in MB, clamped to [1, 65536];
/// unset/invalid = 256.
double TransformCacheMbFromEnv();

/// One point on Sweep's per-cell option-override axis. A variant scales
/// the cell grid by a configuration dimension that is not (system,
/// dataset, budget, repetition): simulated core count (fig5) or CAML's
/// per-row inference-time constraint (fig6). The name becomes part of
/// the cell identity (RunRecord::variant, journal keys); run seeds stay
/// variant-independent, so two variants of the same cell share their
/// train/test split and search trajectory and differ only through the
/// overridden option — exactly the controlled comparison the figures
/// plot.
struct SweepVariant {
  /// Distinguishes the cell in records and journals; must be unique
  /// within one Sweep call. Empty = the default variant, whose records
  /// and journal keys are byte-identical to a variant-less sweep.
  std::string name;
  /// Simulated cores override; 0 keeps ExperimentConfig::cores.
  int cores = 0;
  /// CAML inference constraint (AutoMlOptions::
  /// max_inference_seconds_per_row); 0 = unconstrained.
  double max_inference_seconds_per_row = 0.0;
};

/// Where a cell ended up. Every enumerated cell gets exactly one record;
/// the outcome is the AMLB-style failure taxonomy.
enum class RunOutcome {
  kOk = 0,      ///< Measured successfully.
  kFailed,      ///< Errored (after exhausting retries if retryable).
  kTimeout,     ///< Cancelled by the watchdog or hit DEADLINE_EXCEEDED.
  kSkipped,     ///< Not applicable (unsupported budget, semantic reject).
};

const char* RunOutcomeName(RunOutcome outcome);
Result<RunOutcome> RunOutcomeFromName(const std::string& name);

/// Maps a Status to the taxonomy: DEADLINE_EXCEEDED -> timeout;
/// INVALID_ARGUMENT / UNIMPLEMENTED / FAILED_PRECONDITION -> skipped;
/// any other error -> failed. OK maps to ok.
RunOutcome OutcomeForStatus(const Status& status);

/// One row of a per-record energy breakdown: a stage-prefixed scope path
/// ("execution/caml/search/pipeline/fit/random_forest") and the dynamic
/// energy attributed to it, at the same scale as the record's headline
/// numbers (execution scopes at paper scale, inference scopes per
/// instance).
struct RunScope {
  std::string path;
  double kwh = 0.0;
  double seconds = 0.0;
  double flops = 0.0;
  uint64_t charges = 0;
};

/// One (system, dataset, budget, repetition) measurement.
struct RunRecord {
  std::string system;
  std::string dataset;
  double paper_budget_seconds = 0.0;
  int repetition = 0;

  /// Task of the dataset this cell ran on, plus the task's primary test
  /// metric (PrimaryMetricName). Always populated in memory; serialized
  /// ("task"/"metric"/"test_metric") only for regression cells, so every
  /// pre-existing classification record stream stays byte-identical.
  TaskType task = TaskType::kBinary;
  std::string metric_name = "balanced_accuracy";
  /// Primary test metric: equal to test_balanced_accuracy on
  /// classification; RMSE on regression.
  double test_metric = 0.0;

  double test_balanced_accuracy = 0.0;
  /// Execution stage, scaled back to paper scale.
  double execution_seconds = 0.0;
  double execution_kwh = 0.0;
  /// Inference on the held-out test set, per instance.
  double inference_kwh_per_instance = 0.0;
  double inference_seconds_per_instance = 0.0;
  size_t num_pipelines = 0;
  int pipelines_evaluated = 0;
  double best_validation_score = 0.0;

  /// Failure taxonomy. Non-ok records keep the metric fields at zero and
  /// carry the final error in `error`. `attempts` counts tries actually
  /// made (0 for cells skipped before any run).
  RunOutcome outcome = RunOutcome::kOk;
  std::string error;
  int attempts = 1;

  /// Per-scope dynamic-energy breakdown; populated only when
  /// ExperimentConfig::collect_scopes is set (the serialized record grows
  /// a "scopes" field only when non-empty).
  std::vector<RunScope> scopes;

  /// Sweep-variant name (empty outside the override axis). Part of the
  /// cell identity; serialized as "variant" only when non-empty so
  /// variant-less records stay byte-identical to before the axis
  /// existed.
  std::string variant;

  /// Global enumeration index of the cell within its sweep. Stamped
  /// (>= 0) only by sharded sweeps, where the journal merge needs it to
  /// restore canonical order across shard files; -1 (not serialized)
  /// everywhere else, and cleared again by MergeShardJournals so the
  /// merged stream is byte-identical to an unsharded sweep's records.
  int64_t cell_index = -1;

  bool ok() const { return outcome == RunOutcome::kOk; }
};

/// Canonical "system|dataset|budget|rep[|variant]" key identifying a
/// sweep cell in journals, resume matching, and compaction. The variant
/// segment appears only when non-empty, so keys of variant-less cells
/// are unchanged from before the override axis existed.
std::string RunRecordCellKey(const RunRecord& record);
std::string RunRecordCellKey(const std::string& system,
                             const std::string& dataset, double budget,
                             int repetition,
                             const std::string& variant = std::string());

/// Names accepted by MakeSystem / RunOne.
const std::vector<std::string>& AllSystemNames();

/// Runs paper experiments: constructs systems by name, instantiates AMLB
/// tasks, meters execution and inference separately, scales readings back
/// to paper scale.
///
/// Thread safety: RunOne/RunCell are safe to call concurrently from
/// multiple threads (Sweep does so when config.jobs > 1). Every run gets
/// its own clock/context/meter; the shared EnergyModel and
/// TunedConfigStore are strictly read-only, the ASKL meta-store is built
/// under a mutex (a failed build retries on the next call instead of
/// being memoized forever), and the development-energy accumulator is
/// atomic.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const ExperimentConfig& config);

  /// The instantiated evaluation suite (possibly limited).
  const std::vector<Dataset>& suite() const { return suite_; }

  /// Replaces the evaluation suite — e.g. with synthetic regression or
  /// k-class tasks for the mixed-task bench. Each dataset carries its own
  /// TaskType; cells dispatch on it per dataset, so one sweep can mix
  /// tasks freely.
  void SetSuite(std::vector<Dataset> suite) { suite_ = std::move(suite); }

  /// Runs one (system, dataset, budget, repetition) attempt. `cores`
  /// overrides the config for the parallelism study; pass 0 to use the
  /// default. `cancel` (optional) is polled by the system's search loop;
  /// `attempt` keys the fault-injection scope so each retry redraws its
  /// probabilistic faults. `variant` (optional) applies a per-cell
  /// option override and stamps RunRecord::variant.
  Result<RunRecord> RunOne(const std::string& system_name,
                           const Dataset& dataset, double paper_budget,
                           int repetition, int cores = 0,
                           const CancelToken* cancel = nullptr,
                           int attempt = 1,
                           const SweepVariant* variant = nullptr);

  /// Runs one cell through the full fault-tolerance path: the min-budget
  /// gate (-> skipped), the retry policy for transient errors, and the
  /// outcome taxonomy. Never fails — an errored cell comes back as a
  /// non-ok record.
  RunRecord RunCell(const std::string& system_name, const Dataset& dataset,
                    double paper_budget, int repetition, int cores = 0,
                    const CancelToken* cancel = nullptr,
                    const SweepVariant* variant = nullptr);

  /// Full sweep over the suite for the given systems and budgets.
  /// Returns one record per enumerated cell — including skipped, failed,
  /// and timed-out cells — in enumeration order (system, budget, dataset,
  /// repetition). With config.jobs > 1 the cells execute on that many
  /// host worker threads; run seeds and fault draws are cell-local, so
  /// the records are bit-identical to the sequential sweep.
  ///
  /// With config.journal_path set, each completed cell is appended to the
  /// JSONL journal as it finishes; with config.resume additionally set,
  /// cells already present in the journal are loaded instead of re-run,
  /// and the returned stream is byte-identical to an uninterrupted sweep.
  ///
  /// With config.shard_count > 1, only the cells this process's shard
  /// owns are run (and returned, in enumeration order); the journals of
  /// all shards recombine through MergeShardJournals into the unsharded
  /// record stream. --resume applies per shard, unchanged.
  Result<std::vector<RunRecord>> Sweep(
      const std::vector<std::string>& systems,
      const std::vector<double>& paper_budgets);

  /// Sweep with a per-cell option-override axis: the cell grid becomes
  /// (system, budget, variant, dataset, repetition), every variant
  /// inheriting retry, fault injection, the watchdog, journaling, and
  /// sharding exactly like the default axis. Variant names must be
  /// unique (duplicates would collide in journals); the plain overload
  /// is this one with the single default variant.
  Result<std::vector<RunRecord>> Sweep(
      const std::vector<std::string>& systems,
      const std::vector<double>& paper_budgets,
      const std::vector<SweepVariant>& variants);

  /// Minimum supported paper budget, as declared by the system itself
  /// (AutoMlSystem::MinBudgetSeconds: 30 s for ASKL, 60 s for TPOT) —
  /// cells below it are recorded as `skipped` like the paper does.
  /// Unknown systems report 0 (the cell surfaces the NotFound as failed).
  double MinBudget(const std::string& system_name) const;

  const ExperimentConfig& config() const { return config_; }

  /// Development-stage energy spent inside this runner so far (meta-store
  /// construction for autosklearn2), at paper scale.
  double development_kwh() const { return development_kwh_.load(); }

  /// Real (host) wall-clock seconds of the most recent Sweep, for
  /// reporting parallel speedup. 0 before the first sweep.
  double last_sweep_wall_seconds() const {
    return last_sweep_wall_seconds_;
  }

  /// Cells loaded from the journal (not re-run) in the most recent Sweep.
  size_t last_sweep_resumed_cells() const {
    return last_sweep_resumed_cells_;
  }

  /// Records the most recent Sweep could not append to its journal even
  /// after the end-of-sweep retry pass. Non-zero means the journal on
  /// disk is NOT a complete transcript of the sweep (an incompleteness
  /// marker is left in it, best-effort, so later --resume runs refuse to
  /// claim completeness).
  size_t last_sweep_journal_append_failures() const {
    return last_sweep_journal_append_failures_;
  }

  /// True iff the most recent Sweep resumed from a journal carrying an
  /// incompleteness marker (a previous run lost appends): the loaded
  /// cells are trusted individually, but the journal as a whole was not
  /// treated as complete and missing cells were re-run.
  bool last_sweep_resumed_from_incomplete_journal() const {
    return last_sweep_resumed_from_incomplete_journal_;
  }

  /// Builds a system instance; `budget` selects CAML(tuned) parameters.
  Result<std::unique_ptr<AutoMlSystem>> MakeSystem(
      const std::string& system_name, double paper_budget);

  /// The runner's fault injector (seeded from config.seed and
  /// config.faults). Exposed so benches can share it with subsystems
  /// (e.g. PowercapReader).
  const FaultInjector& fault_injector() const { return faults_; }

  /// Hit/miss/eviction counters of the runner's transform cache (all
  /// zero when config.transform_cache is off).
  TransformCacheStats transform_cache_stats() const {
    return transform_cache_.Stats();
  }

 private:
  Status EnsureMetaStore();

  ExperimentConfig config_;
  EnergyModel energy_model_;
  std::vector<Dataset> suite_;
  TunedConfigStore tuned_store_;
  std::mutex meta_mutex_;
  /// Shared with the process-wide AsklMetaStoreCache: runners with
  /// identical build inputs reuse one immutable store.
  std::shared_ptr<const AsklMetaStore> meta_store_;
  FaultInjector faults_;
  /// Shared by all cells this runner executes (thread-safe; Sweep workers
  /// hit it concurrently).
  TransformCache transform_cache_;
  std::atomic<double> development_kwh_{0.0};
  double last_sweep_wall_seconds_ = 0.0;
  size_t last_sweep_resumed_cells_ = 0;
  size_t last_sweep_journal_append_failures_ = 0;
  bool last_sweep_resumed_from_incomplete_journal_ = false;
};

}  // namespace green

#endif  // GREEN_BENCH_UTIL_EXPERIMENT_H_
