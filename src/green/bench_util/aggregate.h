#ifndef GREEN_BENCH_UTIL_AGGREGATE_H_
#define GREEN_BENCH_UTIL_AGGREGATE_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "green/bench_util/experiment.h"
#include "green/common/rng.h"

namespace green {

/// Mean and sample standard deviation.
struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  size_t n = 0;
};

Stats ComputeStats(const std::vector<double>& values);

/// The paper's uncertainty protocol: "report the average performance
/// across datasets by repeatedly sampling one result out of N runs with
/// replacement". Returns the bootstrap mean/stddev of the across-dataset
/// average of `metric`.
Stats BootstrapAcrossDatasets(
    const std::vector<RunRecord>& records,
    const std::function<double(const RunRecord&)>& metric,
    int bootstrap_samples, uint64_t seed);

/// Records filtered to one (system, budget) cell, any variant.
std::vector<RunRecord> Filter(const std::vector<RunRecord>& records,
                              const std::string& system,
                              double paper_budget);

/// Records filtered to one (system, budget, variant) cell of a sweep run
/// with an option-override axis; "" selects the default variant.
std::vector<RunRecord> Filter(const std::vector<RunRecord>& records,
                              const std::string& system,
                              double paper_budget,
                              const std::string& variant);

/// Only the successfully measured records. Sweep returns every
/// enumerated cell (including skipped/failed/timeout ones); metric
/// aggregation must run on this subset so a failed cell's zeroed metrics
/// never dilute a mean.
std::vector<RunRecord> OkOnly(const std::vector<RunRecord>& records);

/// Per-outcome cell counts.
struct OutcomeCounts {
  size_t ok = 0;
  size_t failed = 0;
  size_t timeout = 0;
  size_t skipped = 0;
  size_t total() const { return ok + failed + timeout + skipped; }
};

/// Counts outcomes per system (insertion order of first appearance).
std::vector<std::pair<std::string, OutcomeCounts>> CountOutcomes(
    const std::vector<RunRecord>& records);

/// AMLB-style failure table: one row per system with ok/failed/timeout/
/// skipped counts. Empty string when every cell succeeded.
///
/// When any non-ok record's error carries an injected-fault marker (see
/// InjectedFaultSite), a second table breaks the failures down per fault
/// site, so a chaos run shows exactly which injection points produced
/// which outcomes. `extra_failures` appends failure counts that never
/// surface as records — e.g. lost `journal.append` writes — as their own
/// site rows; zero-count entries are dropped. Sweeps without injections
/// and without extra failures render exactly the original table.
std::string RenderFailureSummary(
    const std::vector<RunRecord>& records,
    const std::vector<std::pair<std::string, size_t>>& extra_failures = {});

/// Hierarchical energy attribution table from the per-scope breakdowns
/// collected under --breakdown (ExperimentConfig::collect_scopes). One
/// section per stage: execution (kWh, summed over ok records) and
/// inference (kWh per instance). Within a system, the scope rows plus
/// the "(baseline: static+idle)" row sum exactly to the system's
/// reported total, so every Joule of the headline number is accounted
/// for. Empty string when no record carries scopes.
std::string RenderEnergyBreakdown(const std::vector<RunRecord>& records);

/// One-table summary of the transform-prefix cache (hit/miss/eviction
/// counters for the fit and predict paths plus residency against the
/// byte budget). Empty string when the cache saw no traffic.
std::string RenderTransformCacheStats(const TransformCacheStats& stats,
                                      double budget_mb);

/// Distinct (in insertion order) values of a record field.
std::vector<std::string> DistinctSystems(
    const std::vector<RunRecord>& records);
std::vector<double> DistinctBudgets(const std::vector<RunRecord>& records,
                                    const std::string& system);

}  // namespace green

#endif  // GREEN_BENCH_UTIL_AGGREGATE_H_
